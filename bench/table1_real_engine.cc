// Table I on the *real-thread* engine: per-socket throughput under the
// island memory-placement policies, plus the measured remote-traffic ratio
// from mem::AllocStats — the functional counterpart of the simulator's
// table1_memory_policy.
//
// Setup mirrors the paper's per-socket Shore-MT instances: one table per
// socket, partitioned across that socket's cores, clients of socket s
// reading `txn_reads` random rows of table s per transaction. The memory
// policy decides which island's arena serves each table's pages and B-tree
// nodes; every record access is charged (requesting socket, serving
// socket), so the printed ratio is measured, not modeled.
//
// Hosts without real NUMA can't show a hardware latency difference, so the
// arena layer optionally emulates interconnect latency (--emulate_ns per
// hop per record access, applied only to off-island accesses). Expected
// shape: Local fastest with ratio ~0; Central fast only for the hosting
// socket; Remote slowest with the highest ratio.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "util/rng.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;

namespace {

std::unique_ptr<storage::Table> LoadTable(int id, uint64_t rows,
                                          std::vector<uint64_t> bounds) {
  auto t = std::make_unique<storage::Table>(id, "T" + std::to_string(id),
                                            workload::MicroTableSchema(),
                                            std::move(bounds));
  for (uint64_t k = 0; k < rows; ++k) {
    storage::Tuple row(&t->schema());
    row.SetInt(0, static_cast<int64_t>(k));
    row.SetInt(1, 100);
    (void)t->Insert(k, row);
  }
  return t;
}

std::string FmtRatio(double r) {
  if (r > 99.0) return ">99";
  return TablePrinter::Num(r, 2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int sockets = static_cast<int>(flags.GetInt("sockets", 2));
  int cores = static_cast<int>(flags.GetInt("cores", 2));
  uint64_t rows = static_cast<uint64_t>(flags.GetInt("rows", 20000));
  int txn_reads = static_cast<int>(flags.GetInt("txn_reads", 100));
  double duration = flags.GetDouble("duration", 0.4);
  uint32_t emulate_ns =
      static_cast<uint32_t>(flags.GetInt("emulate_ns", 5000));
  std::string json_path = flags.GetString("json", "");

  hw::Topology topo = [&] {
    switch (sockets) {
      case 1: return hw::Topology::SingleSocket(cores);
      case 2: return hw::Topology::Cube(1, cores);
      case 4: return hw::Topology::Cube(2, cores);
      default: return hw::Topology::Cube(3, cores);
    }
  }();

  PrintHeader("table1_real_engine",
              "Table I — real-thread engine, island memory policies");
  std::printf("%d sockets x %d cores, %llu rows/socket-instance, "
              "%d reads/txn, emulated interconnect latency %u ns/hop\n\n",
              topo.num_sockets(), topo.cores_per_socket(),
              static_cast<unsigned long long>(rows), txn_reads, emulate_ns);

  std::vector<mem::PlacementPolicy> policies = {
      mem::PlacementPolicy::kLocal, mem::PlacementPolicy::kCentral,
      mem::PlacementPolicy::kRemote, mem::PlacementPolicy::kInterleaved,
      mem::PlacementPolicy::kFirstTouch};

  std::vector<std::string> header = {"Policy"};
  for (int s = 0; s < topo.num_sockets(); ++s)
    header.push_back("Socket" + std::to_string(s + 1));
  header.push_back("TotalTPS");
  header.push_back("RemoteRatio");
  TablePrinter tp(header);
  JsonValue json_rows = JsonValue::Array();

  for (mem::PlacementPolicy pol : policies) {
    engine::Database db({.topo = topo,
                         .mem = {.policy = pol,
                                 .central_socket = 0,
                                 .emulate_ns_per_hop = emulate_ns}});
    // One "instance" per socket: table s partitioned over socket s's cores.
    core::Scheme scheme;
    for (int s = 0; s < topo.num_sockets(); ++s) {
      std::vector<uint64_t> bounds;
      core::TableScheme ts;
      for (int c = 0; c < topo.cores_per_socket(); ++c) {
        uint64_t b = rows * static_cast<uint64_t>(c) /
                     static_cast<uint64_t>(topo.cores_per_socket());
        bounds.push_back(b);
        ts.boundaries.push_back(b);
        ts.placement.push_back(topo.first_core(s) + c);
      }
      (void)db.AddTable(LoadTable(s, rows, bounds));
      scheme.tables.push_back(std::move(ts));
    }
    engine::PartitionedExecutor exec(&db, topo, scheme);
    db.memory().stats().Reset();  // measure steady state, not the load

    // One client per socket, issuing read-`txn_reads` transactions against
    // its own instance's table.
    std::atomic<bool> stop{false};
    std::vector<uint64_t> committed(static_cast<size_t>(topo.num_sockets()));
    std::vector<std::thread> clients;
    for (int s = 0; s < topo.num_sockets(); ++s) {
      clients.emplace_back([&, s] {
        Rng rng(static_cast<uint64_t>(s) + 17);
        uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          engine::ActionGraph g;
          for (int i = 0; i < txn_reads; ++i) {
            uint64_t k = rng.Uniform(rows);
            g.Add(s, k, [k](storage::Table* t, engine::ActionCtx&) {
              storage::Tuple row;
              return t->Read(k, &row);
            });
          }
          (void)exec.SubmitAndWait(std::move(g));
          ++n;
        }
        committed[static_cast<size_t>(s)] = n;
      });
    }
    auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(duration * 1000)));
    stop = true;
    for (auto& c : clients) c.join();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    const mem::AllocStats& stats = db.memory().stats();
    // Hardware ground truth next to the software ratio: the per-island
    // node-local/node-remote DRAM split from the workers' perf groups,
    // when the host lets us open them (paper Table I's IMC counters).
    obs::StatsSnapshot snap = db.StatsSnapshot();
    JsonValue hw_islands = JsonValue::Array();
    if (snap.hw_available) {
      for (size_t i = 0; i < snap.hw_islands.size(); ++i) {
        const obs::HwCounterValues& v = snap.hw_islands[i];
        JsonValue o = JsonValue::Object();
        o.Add("island", static_cast<long long>(i));
        if (v.has(obs::HwCounterId::kNodeLocal))
          o.Add("dram_local",
                static_cast<long long>(v[obs::HwCounterId::kNodeLocal]));
        if (v.has(obs::HwCounterId::kNodeRemote))
          o.Add("dram_remote",
                static_cast<long long>(v[obs::HwCounterId::kNodeRemote]));
        double ratio = snap.hw_remote_dram_ratio(i);
        if (ratio >= 0) o.Add("hw_remote_dram_ratio", ratio);
        hw_islands.Push(std::move(o));
        if (ratio >= 0)
          std::printf("  %s island %zu: hw remote-DRAM ratio %.3f\n",
                      mem::ToString(pol), i, ratio);
      }
    }
    std::vector<std::string> row = {mem::ToString(pol)};
    JsonValue socket_tps = JsonValue::Array();
    uint64_t total = 0;
    for (int s = 0; s < topo.num_sockets(); ++s) {
      uint64_t c = committed[static_cast<size_t>(s)];
      total += c;
      double tps = static_cast<double>(c) / secs;
      row.push_back(TablePrinter::Int(static_cast<long long>(tps)));
      socket_tps.Push(JsonValue::Object().Add("tps", tps));
    }
    double total_tps = static_cast<double>(total) / secs;
    row.push_back(TablePrinter::Int(static_cast<long long>(total_tps)));
    row.push_back(FmtRatio(stats.AccessRemoteRatio()));
    tp.AddRow(row);
    json_rows.Push(JsonValue::Object()
                       .Add("policy", std::string(mem::ToString(pol)))
                       .Add("tps", total_tps)
                       .Add("remote_ratio", stats.AccessRemoteRatio())
                       .Add("hw_available",
                            static_cast<long long>(snap.hw_available ? 1 : 0))
                       .Add("hw_islands", hw_islands)
                       .Add("per_socket", socket_tps));
  }
  tp.Print();
  std::printf(
      "\nRemoteRatio = remote/local access bytes measured by mem::AllocStats"
      "\n(the software analogue of the paper's QPI/IMC ratio).\n");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Add("bench", std::string("table1_real_engine"))
        .Add("schema", std::string("BENCH_submission"))
        .Add("config",
             JsonValue::Object()
                 .Add("sockets", static_cast<long long>(topo.num_sockets()))
                 .Add("cores", static_cast<long long>(cores))
                 .Add("rows", static_cast<long long>(rows))
                 .Add("txn_reads", static_cast<long long>(txn_reads))
                 .Add("emulate_ns", static_cast<long long>(emulate_ns))
                 .Add("duration_s", duration))
        .Add("rows", json_rows);
    if (!doc.WriteTo(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
