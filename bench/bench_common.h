// Shared helpers for the figure/table reproduction harnesses. Every bench
// binary prints the same rows/series the paper reports (see DESIGN.md §3)
// and accepts --duration=<sim seconds> and --seed=<n> overrides.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "hw/topology.h"
#include "sim/cost_params.h"
#include "simengine/centralized.h"
#include "simengine/dora.h"
#include "simengine/shared_nothing.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace atrapos::bench {

/// Topology for an n-socket sweep point: 10 cores per socket as on the
/// paper's machine; the 8-socket point uses the twisted cube.
inline hw::Topology TopoFor(int sockets) {
  switch (sockets) {
    case 1: return hw::Topology::SingleSocket(10);
    case 2: return hw::Topology::Cube(1, 10);
    case 4: return hw::Topology::Cube(2, 10);
    default: return hw::Topology::TwistedCube8x10();
  }
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper.c_str());
  std::printf("(deterministic simulation; compare shapes, not absolutes)\n\n");
}

/// Append-only JSON value builder for the BENCH_*.json perf-trajectory
/// files the real-engine benches emit with --json=<path> (schema
/// "BENCH_submission"): numbers, strings, nested objects, and arrays —
/// just enough to write machine-comparable TPS/traffic rows without a
/// JSON dependency.
class JsonValue {
 public:
  static JsonValue Object() { return JsonValue(true); }
  static JsonValue Array() { return JsonValue(false); }

  JsonValue& Add(const std::string& key, double v) {
    return AddRaw(key, Num(v));
  }
  JsonValue& Add(const std::string& key, long long v) {
    return AddRaw(key, std::to_string(v));
  }
  JsonValue& Add(const std::string& key, const std::string& v) {
    return AddRaw(key, Quote(v));
  }
  JsonValue& Add(const std::string& key, const JsonValue& v) {
    return AddRaw(key, v.Dump());
  }
  JsonValue& Push(const JsonValue& v) { return AddRaw("", v.Dump()); }

  std::string Dump() const {
    std::string out(1, object_ ? '{' : '[');
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) out += ',';
      out += items_[i];
    }
    out += object_ ? '}' : ']';
    return out;
  }

  /// Writes the value to `path`; returns false (with a message on stderr)
  /// on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string s = Dump();
    std::fwrite(s.data(), 1, s.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  explicit JsonValue(bool object) : object_(object) {}

  JsonValue& AddRaw(const std::string& key, std::string value) {
    items_.push_back(object_ ? Quote(key) + ":" + std::move(value)
                             : std::move(value));
    return *this;
  }

  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  bool object_;
  std::vector<std::string> items_;
};

}  // namespace atrapos::bench
