// Shared helpers for the figure/table reproduction harnesses. Every bench
// binary prints the same rows/series the paper reports (see DESIGN.md §3)
// and accepts --duration=<sim seconds> and --seed=<n> overrides.
#pragma once

#include <cstdio>
#include <string>

#include "hw/topology.h"
#include "sim/cost_params.h"
#include "simengine/centralized.h"
#include "simengine/dora.h"
#include "simengine/shared_nothing.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace atrapos::bench {

/// Topology for an n-socket sweep point: 10 cores per socket as on the
/// paper's machine; the 8-socket point uses the twisted cube.
inline hw::Topology TopoFor(int sockets) {
  switch (sockets) {
    case 1: return hw::Topology::SingleSocket(10);
    case 2: return hw::Topology::Cube(1, 10);
    case 4: return hw::Topology::Cube(2, 10);
    default: return hw::Topology::TwistedCube8x10();
  }
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper.c_str());
  std::printf("(deterministic simulation; compare shapes, not absolutes)\n\n");
}

}  // namespace atrapos::bench
