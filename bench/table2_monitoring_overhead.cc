// Table II: throughput of ATraPos with monitoring disabled vs enabled for
// TATP transactions; the paper reports at most 3.32% overhead (GetSubData,
// the shortest transaction, is the worst case).
//
// Two modes:
//   default      — the deterministic simulator sweep (DoraOptions.monitoring),
//                  the original Table II shape.
//   --real       — the same question asked of the real-thread engine: TATP
//                  ActionGraphs at --depth/--batch with the obs registry
//                  (src/obs/) fully off, metrics-on/tracing-off (the
//                  production configuration), and metrics+tracing. Each
//                  configuration runs --reps times and the best rep is kept
//                  (CI machines are noisy; overhead is a property of the
//                  fastest run, not the median scheduler hiccup).
//                  --max_overhead_pct=<p> exits 2 when the metrics-on
//                  configuration loses more than p% TPS vs metrics-off;
//                  --trace_out=<path> dumps a chrome://tracing JSON from the
//                  tracing rep; --json=<path> writes the measured rows.
#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>

#include "bench/bench_common.h"
#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "util/rng.h"
#include "workload/tatp.h"
#include "workload/tatp_graphs.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

namespace {

core::Scheme TatpScheme(uint64_t subscribers, int partitions) {
  core::Scheme scheme;
  for (int t = 0; t < 4; ++t) {
    uint64_t factor = t == 0 ? 1 : (t == 3 ? 32 : 4);
    core::TableScheme ts;
    for (int p = 0; p < partitions; ++p) {
      ts.boundaries.push_back(subscribers * factor *
                              static_cast<uint64_t>(p) /
                              static_cast<uint64_t>(partitions));
      ts.placement.push_back(p);
    }
    scheme.tables.push_back(ts);
  }
  return scheme;
}

struct RealResult {
  double tps = 0;
  uint64_t commit_p50_us = 0;
  uint64_t commit_p95_us = 0;
  uint64_t commit_p99_us = 0;
  uint64_t trace_recorded = 0;
  uint64_t trace_dropped = 0;
  uint64_t sampler_ticks = 0;
  bool hw_available = false;
};

/// One TATP measurement on the real partitioned executor. No adaptive
/// manager and no durability: the run isolates the cost the registry,
/// tracer, sampler thread, and hardware counter groups add to the
/// submit → drain → complete path itself.
RealResult RunReal(const hw::Topology& topo, uint64_t subscribers,
                   size_t depth, size_t batch, double duration, uint64_t seed,
                   bool metrics, bool trace, const std::string& trace_out,
                   bool sampler = false, bool hw = false,
                   const std::string& series_out = "") {
  engine::Database::Options dopt;
  dopt.topo = topo;
  dopt.obs.metrics = metrics;
  dopt.obs.trace = trace;
  dopt.sampler.enabled = sampler;
  // A few ticks even on CI's 0.3s smokes. 50 ms is the cadence the 5%
  // gate was calibrated at: a full StatsSnapshot per tick is not free on
  // a saturated 2-core smoke host, and halving the interval pushes the
  // sampler configuration's overhead into the gate's noise band.
  dopt.sampler.interval_ms = 50;
  engine::Database db(dopt);
  std::vector<uint64_t> bounds;
  for (int p = 0; p < topo.num_cores(); ++p)
    bounds.push_back(subscribers * static_cast<uint64_t>(p) /
                     static_cast<uint64_t>(topo.num_cores()));
  for (auto& t : workload::BuildTatpTables(subscribers, bounds, seed))
    db.AddTable(std::move(t));
  engine::PartitionedExecutor::Options eopt;
  eopt.hw_counters = hw;  // the A/B baselines must not pay for perf groups
  engine::PartitionedExecutor exec(&db, topo,
                                   TatpScheme(subscribers, topo.num_cores()),
                                   eopt);

  workload::TatpActionGraphs graphs(subscribers);
  Rng rng(seed);
  std::deque<engine::TxnFuture> window;
  std::vector<engine::ActionGraph> wave;
  uint64_t done = 0;
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration<double>(duration);
  while (std::chrono::steady_clock::now() < deadline) {
    if (batch <= 1) {
      auto f = exec.Submit(graphs.Mix(rng));
      if (!f.ok()) continue;
      window.push_back(f.take());
    } else {
      wave.clear();
      for (size_t i = 0; i < batch; ++i) wave.push_back(graphs.Mix(rng));
      auto fs = exec.SubmitBatch(wave);
      if (!fs.ok()) continue;
      for (auto& f : fs.value()) window.push_back(std::move(f));
    }
    while (window.size() >= depth) {
      (void)window.front().Wait();
      window.pop_front();
      ++done;
    }
  }
  while (!window.empty()) {
    (void)window.front().Wait();
    window.pop_front();
    ++done;
  }
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RealResult out;
  out.tps = static_cast<double>(done) / secs;
  obs::StatsSnapshot snap = db.StatsSnapshot();
  const obs::Histogram& lat = snap.hist(obs::HistId::kCommitLatencyUs);
  out.commit_p50_us = lat.Quantile(0.5);
  out.commit_p95_us = lat.Quantile(0.95);
  out.commit_p99_us = lat.Quantile(0.99);
  out.trace_recorded = snap.trace_events_recorded;
  out.trace_dropped = snap.trace_events_dropped;
  out.hw_available = snap.hw_available;
  if (db.sampler() != nullptr) out.sampler_ticks = db.sampler()->samples();
  if (trace && !trace_out.empty() && db.DumpTrace(trace_out))
    std::printf("wrote trace %s (%llu events recorded, %llu dropped)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(out.trace_recorded),
                static_cast<unsigned long long>(out.trace_dropped));
  if (sampler && !series_out.empty() && db.DumpTimeSeries(series_out))
    std::printf("wrote time series %s\n", series_out.c_str());
  return out;
}

/// Runs every configuration `reps` times, interleaved (off, on, trace,
/// off, on, trace, ...) so frequency scaling and cache warm-up hit all
/// configurations equally instead of penalizing whichever ran first.
/// Returns one row per round per configuration: rounds[i][c].
std::vector<std::vector<RealResult>> RunRounds(
    int reps, const std::vector<std::function<RealResult(bool)>>& runs) {
  std::vector<std::vector<RealResult>> rounds;
  for (int i = 0; i < reps; ++i) {
    rounds.emplace_back();
    for (const auto& run : runs)
      rounds.back().push_back(run(/*last_round=*/i + 1 == reps));
  }
  return rounds;
}

/// Median of the per-round TPS ratios config[c] / config[0]. Pairing each
/// configuration against the baseline measured in the *same* round
/// cancels the machine's slow drift (thermal/frequency/noisy neighbors),
/// and the median discards rounds where one side hit a scheduler hiccup —
/// overhead inferred from unpaired best-of reps flaps wildly on shared CI
/// runners.
double MedianRatioVsBaseline(const std::vector<std::vector<RealResult>>& r,
                             size_t c) {
  std::vector<double> ratios;
  for (const auto& round : r)
    if (round[0].tps > 0) ratios.push_back(round[c].tps / round[0].tps);
  if (ratios.empty()) return 1.0;
  std::sort(ratios.begin(), ratios.end());
  size_t n = ratios.size();
  return n % 2 == 1 ? ratios[n / 2]
                    : (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.006);
  bool real = flags.GetBool("real", false);
  PrintHeader("table2_monitoring_overhead",
              "Table II — ATraPos monitoring overhead (TATP)");

  if (!real) {
    hw::Topology topo = TopoFor(8);
    TablePrinter tp({"Workload", "No monitoring (TPS)", "Monitoring (TPS)",
                     "Overhead (%)"});

    struct Entry {
      std::string name;
      core::WorkloadSpec spec;
    };
    std::vector<Entry> entries;
    entries.push_back({"GetSubData",
                       workload::TatpSingleTxnSpec(workload::kGetSubData)});
    entries.push_back({"GetNewDest",
                       workload::TatpSingleTxnSpec(workload::kGetNewDest)});
    entries.push_back({"UpdSubData",
                       workload::TatpSingleTxnSpec(workload::kUpdSubData)});
    entries.push_back({"TATP-Mix", workload::TatpSpec()});

    for (auto& e : entries) {
      DoraOptions off;
      off.run.duration_s = duration;
      RunMetrics roff = RunAtrapos(topo, sim::CostParams{}, e.spec, off);
      DoraOptions on = off;
      on.monitoring = true;
      RunMetrics ron = RunAtrapos(topo, sim::CostParams{}, e.spec, on);
      double overhead = roff.tps > 0 ? (1.0 - ron.tps / roff.tps) * 100.0 : 0;
      tp.AddRow({e.name, TablePrinter::Num(roff.tps, 1),
                 TablePrinter::Num(ron.tps, 1),
                 TablePrinter::Num(overhead, 2)});
    }
    tp.Print();
    return 0;
  }

  // ---- real-engine mode -----------------------------------------------
  uint64_t subscribers =
      static_cast<uint64_t>(flags.GetInt("subscribers", 20000));
  int cores = static_cast<int>(flags.GetInt("cores", 4));
  size_t depth = static_cast<size_t>(flags.GetInt("depth", 32));
  size_t batch = static_cast<size_t>(flags.GetInt("batch", 32));
  double real_duration = flags.GetDouble("real_duration", 0.5);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  int reps = static_cast<int>(flags.GetInt("reps", 3));
  double max_overhead_pct = flags.GetDouble("max_overhead_pct", 0);
  std::string trace_out = flags.GetString("trace_out", "");
  std::string series_out = flags.GetString("series_out", "");
  std::string json_path = flags.GetString("json", "");

  hw::Topology topo = hw::Topology::SingleSocket(cores);
  std::printf("real engine: %llu subscribers, %d partitions, depth %zu, "
              "batch %zu, %.1fs x %d reps (best kept)\n\n",
              static_cast<unsigned long long>(subscribers), cores, depth,
              batch, real_duration, reps);

  // Warm-up run (discarded): first-touch page faults, frequency ramp.
  (void)RunReal(topo, subscribers, depth, batch, real_duration, seed,
                /*metrics=*/false, /*trace=*/false, "");
  std::vector<std::vector<RealResult>> rounds = RunRounds(
      reps,
      {[&](bool) {
         return RunReal(topo, subscribers, depth, batch, real_duration, seed,
                        /*metrics=*/false, /*trace=*/false, "");
       },
       [&](bool) {
         return RunReal(topo, subscribers, depth, batch, real_duration, seed,
                        /*metrics=*/true, /*trace=*/false, "");
       },
       [&](bool last_round) {
         // The chrome://tracing dump rides on the final round only.
         return RunReal(topo, subscribers, depth, batch, real_duration, seed,
                        /*metrics=*/true, /*trace=*/true,
                        last_round ? trace_out : std::string());
       },
       [&](bool last_round) {
         // The full-telemetry configuration: metrics + sampler thread +
         // hardware counter groups (probe-gated — identical to metrics-on
         // where perf is unavailable, which is what the gate then checks).
         return RunReal(topo, subscribers, depth, batch, real_duration, seed,
                        /*metrics=*/true, /*trace=*/false, "",
                        /*sampler=*/true, /*hw=*/true,
                        last_round ? series_out : std::string());
       }});
  // Table rows show each configuration's best rep; the overhead verdict
  // uses the median same-round ratio vs the obs-off baseline.
  auto best_of = [&](size_t c) {
    RealResult best;
    for (const auto& round : rounds)
      if (round[c].tps > best.tps) best = round[c];
    return best;
  };
  RealResult off = best_of(0);
  RealResult on = best_of(1);
  RealResult tr = best_of(2);
  RealResult sm = best_of(3);
  double on_overhead = (1.0 - MedianRatioVsBaseline(rounds, 1)) * 100.0;
  double tr_overhead = (1.0 - MedianRatioVsBaseline(rounds, 2)) * 100.0;
  double sm_overhead = (1.0 - MedianRatioVsBaseline(rounds, 3)) * 100.0;
  TablePrinter tp({"Config", "TPS", "Overhead (%)", "P50us", "P95us",
                   "P99us"});
  tp.AddRow({"obs off", TablePrinter::Num(off.tps, 0),
             TablePrinter::Num(0.0, 2), "-", "-", "-"});
  tp.AddRow({"metrics on", TablePrinter::Num(on.tps, 0),
             TablePrinter::Num(on_overhead, 2),
             TablePrinter::Int(static_cast<long long>(on.commit_p50_us)),
             TablePrinter::Int(static_cast<long long>(on.commit_p95_us)),
             TablePrinter::Int(static_cast<long long>(on.commit_p99_us))});
  tp.AddRow({"metrics+trace", TablePrinter::Num(tr.tps, 0),
             TablePrinter::Num(tr_overhead, 2),
             TablePrinter::Int(static_cast<long long>(tr.commit_p50_us)),
             TablePrinter::Int(static_cast<long long>(tr.commit_p95_us)),
             TablePrinter::Int(static_cast<long long>(tr.commit_p99_us))});
  tp.AddRow({sm.hw_available ? "metrics+sampler+hw" : "metrics+sampler",
             TablePrinter::Num(sm.tps, 0), TablePrinter::Num(sm_overhead, 2),
             TablePrinter::Int(static_cast<long long>(sm.commit_p50_us)),
             TablePrinter::Int(static_cast<long long>(sm.commit_p95_us)),
             TablePrinter::Int(static_cast<long long>(sm.commit_p99_us))});
  tp.Print();
  std::printf("\nTPS = best rep per configuration; Overhead = median of the "
              "per-round paired\nratios vs obs-off. Paper budget: <= 3.32%% "
              "(Table II worst case). The\nmetrics-on row is the production "
              "configuration.\n");

  if (!json_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Add("bench", std::string("table2_monitoring_overhead"))
        .Add("schema", std::string("BENCH_submission"))
        .Add("config",
             JsonValue::Object()
                 .Add("subscribers", static_cast<long long>(subscribers))
                 .Add("cores", static_cast<long long>(cores))
                 .Add("depth", static_cast<long long>(depth))
                 .Add("batch", static_cast<long long>(batch))
                 .Add("duration_s", real_duration)
                 .Add("reps", static_cast<long long>(reps))
                 .Add("seed", static_cast<long long>(seed)))
        .Add("off_tps", off.tps)
        .Add("metrics_tps", on.tps)
        .Add("metrics_overhead_pct", on_overhead)
        .Add("trace_tps", tr.tps)
        .Add("trace_overhead_pct", tr_overhead)
        .Add("commit_p50_us", static_cast<long long>(on.commit_p50_us))
        .Add("commit_p95_us", static_cast<long long>(on.commit_p95_us))
        .Add("commit_p99_us", static_cast<long long>(on.commit_p99_us))
        .Add("trace_events_recorded",
             static_cast<long long>(tr.trace_recorded))
        .Add("trace_events_dropped",
             static_cast<long long>(tr.trace_dropped))
        .Add("sampler_tps", sm.tps)
        .Add("sampler_overhead_pct", sm_overhead)
        .Add("sampler_ticks", static_cast<long long>(sm.sampler_ticks))
        .Add("hw_available", static_cast<long long>(sm.hw_available ? 1 : 0));
    if (!doc.WriteTo(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (max_overhead_pct > 0 && on_overhead > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: metrics-on overhead %.2f%% exceeds "
                 "--max_overhead_pct=%g\n",
                 on_overhead, max_overhead_pct);
    return 2;
  }
  if (max_overhead_pct > 0 && sm_overhead > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: metrics+sampler+hw overhead %.2f%% exceeds "
                 "--max_overhead_pct=%g\n",
                 sm_overhead, max_overhead_pct);
    return 2;
  }
  return 0;
}
