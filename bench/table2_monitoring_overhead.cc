// Table II: throughput of ATraPos with monitoring disabled vs enabled for
// TATP transactions; the paper reports at most 3.32% overhead (GetSubData,
// the shortest transaction, is the worst case).
#include "bench/bench_common.h"
#include "workload/tatp.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.006);
  PrintHeader("table2_monitoring_overhead",
              "Table II — ATraPos monitoring overhead (TATP)");

  hw::Topology topo = TopoFor(8);
  TablePrinter tp({"Workload", "No monitoring (TPS)", "Monitoring (TPS)",
                   "Overhead (%)"});

  struct Entry {
    std::string name;
    core::WorkloadSpec spec;
  };
  std::vector<Entry> entries;
  entries.push_back({"GetSubData",
                     workload::TatpSingleTxnSpec(workload::kGetSubData)});
  entries.push_back({"GetNewDest",
                     workload::TatpSingleTxnSpec(workload::kGetNewDest)});
  entries.push_back({"UpdSubData",
                     workload::TatpSingleTxnSpec(workload::kUpdSubData)});
  entries.push_back({"TATP-Mix", workload::TatpSpec()});

  for (auto& e : entries) {
    DoraOptions off;
    off.run.duration_s = duration;
    RunMetrics roff = RunAtrapos(topo, sim::CostParams{}, e.spec, off);
    DoraOptions on = off;
    on.monitoring = true;
    RunMetrics ron = RunAtrapos(topo, sim::CostParams{}, e.spec, on);
    double overhead = roff.tps > 0 ? (1.0 - ron.tps / roff.tps) * 100.0 : 0;
    tp.AddRow({e.name, TablePrinter::Num(roff.tps, 1),
               TablePrinter::Num(ron.tps, 1),
               TablePrinter::Num(overhead, 2)});
  }
  tp.Print();
  return 0;
}
