// Fig. 8: ATraPos throughput normalized over PLP (y = ATraPos/PLP) on the
// standard benchmarks: TATP (GetSubData, GetNewDest, UpdSubData, TATP-Mix)
// and TPC-C (StockLevel, OrderStatus, TPCC-Mix).
//
// PLP runs the standard partitioning (one partition of each table per
// core). ATraPos runs NUMA-aware state plus the scheme chosen by its own
// cost-model search (Algorithms 1+2) from the workload's static flow
// graphs and expected load.
//
// Expected shape: large gains for short perfectly partitionable
// transactions (paper: GetSubData 6.7x), moderate for multi-table reads
// (GetNewDest 3.2x) and TPC-C (StockLevel 2.7x, OrderStatus 1.4x).
#include "bench/bench_common.h"
#include "core/search.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

namespace {

/// Expected-load statistics derived from the spec (uniform keys): what the
/// monitor would converge to on a steady workload.
core::WorkloadStats AnalyticStats(const core::WorkloadSpec& spec,
                                  size_t bins) {
  core::WorkloadStats w;
  w.tables.resize(spec.tables.size());
  std::vector<double> load(spec.tables.size(), 0.0);
  double total_weight = spec.TotalWeight();
  for (const auto& c : spec.classes) {
    double share = total_weight > 0 ? c.weight / total_weight : 0;
    for (const auto& a : c.actions) {
      double op_cost = a.op == core::OpType::kRead ? 1.0 : 2.0;
      load[static_cast<size_t>(a.table)] +=
          share * a.rows * a.AvgRepeat() * op_cost;
    }
  }
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    uint64_t rows = spec.tables[t].num_rows;
    for (size_t b = 0; b < bins; ++b) {
      w.tables[t].sub_starts.push_back(rows * b / bins);
      w.tables[t].sub_cost.push_back(load[t] * 1000.0 /
                                     static_cast<double>(bins));
    }
  }
  for (const auto& c : spec.classes) w.class_counts.push_back(c.weight * 10);
  return w;
}

double RunPair(const hw::Topology& topo, const core::WorkloadSpec& spec,
               double duration, double* plp_tps, double* atr_tps) {
  sim::CostParams params;
  DoraOptions plp;
  plp.run.duration_s = duration;
  RunMetrics rplp = RunPlp(topo, params, spec, plp);

  core::CostModel model(&topo, &spec);
  core::WorkloadStats stats = AnalyticStats(spec, 160);
  DoraOptions atr;
  atr.run.duration_s = duration;
  atr.initial = core::ChooseScheme(model, stats);
  RunMetrics ratr = RunAtrapos(topo, params, spec, atr);

  *plp_tps = rplp.tps;
  *atr_tps = ratr.tps;
  return rplp.tps > 0 ? ratr.tps / rplp.tps : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.004);
  PrintHeader("fig08_standard_benchmarks",
              "Fig. 8 — ATraPos/PLP normalized throughput, TATP & TPC-C");

  hw::Topology topo = TopoFor(8);
  TablePrinter tp({"workload", "PLP (KTPS)", "ATraPos (KTPS)",
                   "ATraPos/PLP"});

  struct Entry {
    std::string name;
    core::WorkloadSpec spec;
  };
  std::vector<Entry> entries;
  entries.push_back({"GetSubData",
                     workload::TatpSingleTxnSpec(workload::kGetSubData)});
  entries.push_back({"GetNewDest",
                     workload::TatpSingleTxnSpec(workload::kGetNewDest)});
  entries.push_back({"UpdSubData",
                     workload::TatpSingleTxnSpec(workload::kUpdSubData)});
  entries.push_back({"TATP-Mix", workload::TatpSpec()});
  entries.push_back({"StockLevel",
                     workload::TpccSingleTxnSpec(workload::kStockLevel)});
  entries.push_back({"OrderStatus",
                     workload::TpccSingleTxnSpec(workload::kOrderStatus)});
  entries.push_back({"TPCC-Mix", workload::TpccSpec()});

  for (auto& e : entries) {
    double plp = 0, atr = 0;
    double ratio = RunPair(topo, e.spec, duration, &plp, &atr);
    tp.AddRow({e.name, TablePrinter::Num(plp / 1e3, 1),
               TablePrinter::Num(atr / 1e3, 1), TablePrinter::Num(ratio, 2)});
  }
  tp.Print();
  return 0;
}
