// Fig. 6: throughput of the simple two-table dependent-read transaction
// under increasingly informed partitioning/placement:
//   Centralized, PLP, HW-aware (naive: one partition of each table per core
//   -> oversaturation), Workload-aware (balanced partition counts, spread
//   placement), ATraPos (Algorithm 2 co-locates dependent partitions).
//
// Expected shape: HW-aware ~1.7-2x over the baselines; removing
// oversaturation buys ~2x more; hardware-aware placement adds ~10%.
#include "bench/bench_common.h"
#include "core/search.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

namespace {

/// Balanced partitioning: half the cores for each table's partitions.
core::Scheme BalancedScheme(const hw::Topology& topo, uint64_t rows,
                            bool co_locate) {
  core::Scheme s;
  auto cores = topo.AvailableCores();
  size_t half = cores.size() / 2;
  core::TableScheme ta, tb;
  for (size_t i = 0; i < half; ++i) {
    ta.boundaries.push_back(rows * i / half);
    tb.boundaries.push_back(rows * i / half);
    if (co_locate) {
      // ATraPos placement: partition i of A next to partition i of B on the
      // same socket (adjacent cores).
      ta.placement.push_back(cores[2 * i]);
      tb.placement.push_back(cores[2 * i + 1]);
    } else {
      // Hardware-oblivious spread: A on the first half of the machine, B on
      // the second; dependent partitions usually on different sockets.
      ta.placement.push_back(cores[i]);
      tb.placement.push_back(cores[half + i]);
    }
  }
  s.tables = {ta, tb};
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.006);
  PrintHeader("fig06_partition_strategies",
              "Fig. 6 — Simple transaction, partitioning/placement variants");

  hw::Topology topo = TopoFor(8);
  uint64_t rows = 800000;
  auto spec = workload::SimpleTwoTableSpec(rows);
  sim::CostParams params;

  TablePrinter tp({"configuration", "throughput (KTPS)"});

  CentralizedOptions ce;
  ce.run.duration_s = duration;
  RunMetrics rce = RunCentralized(topo, params, spec, ce);
  tp.AddRow({"Centralized", TablePrinter::Num(rce.tps / 1e3, 1)});

  DoraOptions plp;
  plp.run.duration_s = duration;
  RunMetrics rplp = RunPlp(topo, params, spec, plp);  // naive + PLP state
  tp.AddRow({"PLP", TablePrinter::Num(rplp.tps / 1e3, 1)});

  DoraOptions hw;
  hw.run.duration_s = duration;
  RunMetrics rhw = RunAtrapos(topo, params, spec, hw);  // naive scheme
  tp.AddRow({"HW-aware (naive)", TablePrinter::Num(rhw.tps / 1e3, 1)});

  DoraOptions wl;
  wl.run.duration_s = duration;
  wl.initial = BalancedScheme(topo, rows, /*co_locate=*/false);
  RunMetrics rwl = RunAtrapos(topo, params, spec, wl);
  tp.AddRow({"Workload-aware", TablePrinter::Num(rwl.tps / 1e3, 1)});

  DoraOptions at;
  at.run.duration_s = duration;
  at.initial = BalancedScheme(topo, rows, /*co_locate=*/true);
  RunMetrics rat = RunAtrapos(topo, params, spec, at);
  tp.AddRow({"ATraPos", TablePrinter::Num(rat.tps / 1e3, 1)});

  tp.Print();
  std::printf("\nATraPos vs Centralized: %.1fx;  vs HW-aware: %.2fx;  vs "
              "Workload-aware: %+.1f%%\n",
              rat.tps / rce.tps, rat.tps / rhw.tps,
              (rat.tps / rwl.tps - 1.0) * 100.0);
  return 0;
}
