// Table I: per-instance throughput (TPS) under the Local / Central / Remote
// memory-allocation policies, one Shore-MT instance per socket, each
// transaction reading 100 random rows of a 1 M-row table; plus QPI/IMC
// traffic ratios.
//
// Expected shape: Local instances within ~1% of each other; Central loses
// a few percent except on the hosting node; Remote loses 3-7%. QPI/IMC
// ratio near 0 for Local and >1 for Central/Remote.
#include "bench/bench_common.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.05);
  PrintHeader("table1_memory_policy",
              "Table I — Throughput under memory-allocation policies");

  hw::Topology topo = TopoFor(8);
  auto spec = workload::Read100Spec(1000000);

  struct Policy {
    const char* name;
    std::function<hw::SocketId(hw::SocketId)> fn;
  };
  std::vector<Policy> policies = {
      {"Local", [](hw::SocketId s) { return s; }},
      {"Central", [&](hw::SocketId) {
         return static_cast<hw::SocketId>(topo.num_sockets() - 1);
       }},
      {"Remote", [&](hw::SocketId s) {
         return static_cast<hw::SocketId>((s + 1) % topo.num_sockets());
       }},
  };

  std::vector<std::string> header = {"Policy"};
  for (int s = 0; s < topo.num_sockets(); ++s)
    header.push_back("Socket" + std::to_string(s + 1));
  header.push_back("QPI/IMC");
  TablePrinter tp(header);

  for (const auto& pol : policies) {
    SharedNothingOptions opt;
    opt.run.duration_s = duration;
    opt.per_socket_instances = true;
    opt.mem_policy = pol.fn;
    RunMetrics r = RunSharedNothing(topo, sim::CostParams{}, spec, opt);
    std::vector<std::string> row = {pol.name};
    for (uint64_t c : r.per_instance_committed)
      row.push_back(TablePrinter::Int(
          static_cast<long long>(static_cast<double>(c) / r.seconds)));
    row.push_back(TablePrinter::Num(r.qpi_imc_ratio, 2));
    tp.AddRow(row);
  }
  tp.Print();
  return 0;
}
