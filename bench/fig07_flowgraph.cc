// Fig. 7: the transaction flow graph of the TPC-C NewOrder transaction —
// actions (R/I/U on tables, with the x(5-15) variable part) and the four
// synchronization points — plus the static workload information ATraPos
// derives from it (paper §V-A).
#include "bench/bench_common.h"
#include "workload/tpcc.h"

using namespace atrapos;
using namespace atrapos::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  PrintHeader("fig07_flowgraph", "Fig. 7 — TPC-C NewOrder flow graph");

  auto spec = workload::TpccSpec(80);
  const auto& cls = spec.classes[workload::kNewOrderTxn];
  std::printf("%s\n", core::RenderFlowGraph(spec, cls).c_str());

  std::printf("static workload information derived from the graph:\n");
  auto per_table = cls.ActionsPerTable(static_cast<int>(spec.tables.size()));
  TablePrinter tp({"table", "actions", "rows/txn (avg)"});
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    double rows = 0;
    for (const auto& a : cls.actions)
      if (a.table == static_cast<int>(t)) rows += a.rows * a.AvgRepeat();
    tp.AddRow({spec.tables[t].name, TablePrinter::Int(per_table[t]),
               TablePrinter::Num(rows, 1)});
  }
  tp.Print();
  std::printf("\nsynchronization points: %zu (all but s1 involve a variable "
              "number of partitions)\n",
              cls.sync_points.size());
  return 0;
}
