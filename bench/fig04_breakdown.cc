// Fig. 4: per-transaction time breakdown (µs) for the coarse shared-nothing
// configuration as the multi-site percentage grows: transaction management,
// execution, communication, locking, logging.
//
// Expected shape: total time per transaction grows several-fold toward 100%
// multi-site, with communication and logging growing fastest.
#include "bench/bench_common.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.01);
  PrintHeader("fig04_breakdown",
              "Fig. 4 — Time breakdown, coarse shared-nothing (us/txn)");

  hw::Topology topo = TopoFor(8);
  TablePrinter tp({"% multi-site", "xct mgmt", "xct exec", "communication",
                   "locking", "logging", "total"});
  for (int pct : {0, 20, 40, 60, 80, 100}) {
    auto spec = workload::MultisiteUpdateSpec(pct, 800000);
    SharedNothingOptions opt;
    opt.run.duration_s = duration;
    opt.per_socket_instances = true;
    RunMetrics r = RunSharedNothing(topo, sim::CostParams{}, spec, opt);
    double n = r.committed ? static_cast<double>(r.committed) : 1.0;
    auto us = [&](sim::Tick t) {
      return TablePrinter::Num(sim::CyclesToUs(t) / n, 1);
    };
    tp.AddRow({TablePrinter::Int(pct), us(r.breakdown.xct_mgmt),
               us(r.breakdown.xct_exec), us(r.breakdown.communication),
               us(r.breakdown.locking), us(r.breakdown.logging),
               us(r.breakdown.total())});
  }
  tp.Print();
  return 0;
}
