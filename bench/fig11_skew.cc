// Fig. 11: adapting to sudden workload skew. TATP GetSubData with uniform
// keys; at t = 20 s, 50% of the requests start hitting 20% of the data.
//
// Expected shape: heavy throughput drop at the skew onset for both systems;
// ATraPos detects the change, repartitions the hot range across more cores,
// and ends up a multiple of the static system's throughput.
#include "bench/timeline_common.h"
#include "workload/tatp.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TimelineSetup tl;
  tl.scale = flags.GetDouble("scale", 0.004);
  tl.duration_paper_s = 50;
  PrintHeader("fig11_skew", "Fig. 11 — Adapting to sudden workload skew");

  hw::Topology topo = TopoFor(8);
  auto spec = workload::TatpSingleTxnSpec(workload::kGetSubData, 800000);
  double scale = tl.scale;

  auto routing_fn = [scale](Rng& rng, Tick now, uint64_t rows) {
    double t = sim::CyclesToSec(now) / scale;
    if (t >= 20.0 && rng.Chance(0.5)) return rng.Uniform(rows / 5);
    return rng.Uniform(rows);
  };

  DoraOptions stat;
  ApplyTimelineScaling(tl, &stat);
  stat.run.routing_fn = routing_fn;
  RunMetrics rstat = RunAtrapos(topo, sim::CostParams{}, spec, stat);

  DoraOptions adapt = stat;
  adapt.monitoring = true;
  adapt.adaptive = true;
  RunMetrics radapt = RunAtrapos(topo, sim::CostParams{}, spec, adapt);

  PrintTimeline(tl, rstat, radapt, "MTPS", 1e6);
  return 0;
}
