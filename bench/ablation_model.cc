// Ablation of the simulator's key modeling choices and of ATraPos design
// parameters (not a paper figure; supports DESIGN.md §4-5):
//
//  1. cas_queue_penalty — the CAS retry-storm term: without it, PLP's
//     centralized lines never convoy and the paper's Figs. 1/2/5 shapes
//     disappear.
//  2. NUMA-aware state split — which of ATraPos' two §IV structures
//     (per-socket transaction lists vs partitioned volume lock) carries the
//     win for perfectly partitionable workloads.
//  3. Sub-partitions per partition — the monitoring resolution the paper
//     fixes at 10 (§V-D): resolution vs repartitioning granularity.
#include "bench/bench_common.h"
#include "core/search.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.003);
  PrintHeader("ablation_model",
              "Ablations: convoy term, state split, monitor resolution");

  hw::Topology topo = TopoFor(8);
  auto spec = workload::ReadOneSpec(800000);

  // ---- 1. CAS queue penalty ------------------------------------------------
  std::printf("1) cas_queue_penalty (PLP on 8 sockets; 21 = calibrated):\n");
  TablePrinter t1({"penalty (cycles)", "PLP (MTPS)", "ATraPos (MTPS)"});
  for (sim::Tick penalty : {0ULL, 7ULL, 21ULL, 63ULL}) {
    sim::CostParams p;
    p.cas_queue_penalty = penalty;
    DoraOptions opt;
    opt.run.duration_s = duration;
    RunMetrics plp = RunPlp(topo, p, spec, opt);
    RunMetrics atr = RunAtrapos(topo, p, spec, opt);
    t1.AddRow({TablePrinter::Int(static_cast<long long>(penalty)),
               TablePrinter::Num(plp.mtps, 3), TablePrinter::Num(atr.mtps, 3)});
  }
  t1.Print();

  // ---- 2. Which NUMA-aware structure matters -------------------------------
  // numa_aware_state toggles both structures together in the engine; the
  // single-socket run isolates how much of PLP's loss is multisocket CAS.
  std::printf("\n2) state split (read-one-row):\n");
  TablePrinter t2({"configuration", "MTPS (8 sockets)", "MTPS (1 socket)"});
  {
    DoraOptions opt;
    opt.run.duration_s = duration;
    auto one = hw::Topology::SingleSocket(10);
    RunMetrics plp8 = RunPlp(topo, sim::CostParams{}, spec, opt);
    RunMetrics plp1 = RunPlp(one, sim::CostParams{}, spec, opt);
    RunMetrics atr8 = RunAtrapos(topo, sim::CostParams{}, spec, opt);
    RunMetrics atr1 = RunAtrapos(one, sim::CostParams{}, spec, opt);
    t2.AddRow({"centralized state (PLP)", TablePrinter::Num(plp8.mtps, 3),
               TablePrinter::Num(plp1.mtps, 3)});
    t2.AddRow({"per-socket state (ATraPos)", TablePrinter::Num(atr8.mtps, 3),
               TablePrinter::Num(atr1.mtps, 3)});
  }
  t2.Print();
  std::printf("   (equal on 1 socket, far apart on 8: the win is entirely "
              "cross-socket state locality)\n");

  // ---- 3. Monitoring sub-partitions ----------------------------------------
  std::printf("\n3) sub-partitions per partition (search quality under "
              "skew; paper uses 10):\n");
  TablePrinter t3({"subs/partition", "RU imbalance after search"});
  auto topo4 = hw::Topology::Cube(2, 4);
  auto spec4 = workload::ReadOneSpec(16000);
  for (int subs : {2, 5, 10, 20}) {
    core::CostModel model(&topo4, &spec4);
    // Build stats as the monitor would: 16 partitions x `subs` bins, with a
    // hot first quarter.
    core::WorkloadStats stats;
    stats.tables.resize(1);
    size_t bins = 16 * static_cast<size_t>(subs);
    for (size_t b = 0; b < bins; ++b) {
      stats.tables[0].sub_starts.push_back(16000 * b / bins);
      stats.tables[0].sub_cost.push_back(b < bins / 4 ? 4.0 : 1.0);
    }
    stats.class_counts = {100.0};
    core::Scheme s = core::ChooseScheme(model, stats);
    t3.AddRow({TablePrinter::Int(subs),
               TablePrinter::Num(model.ResourceImbalance(s, stats), 2)});
  }
  t3.Print();
  std::printf("   (resolution interacts with boundary snapping — more subs "
              "give Algorithm 1 finer moves at linearly higher trace cost; "
              "the paper settles on 10 as the size/agility trade-off)\n");
  return 0;
}
