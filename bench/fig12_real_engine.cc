// Fig. 12 on the real engine: island-failure graceful degradation.
//
// The simulator version (fig12_hw_failure.cc) models the throughput
// timeline around a hardware-island failure; this harness measures it on
// the real-thread partitioned executor. TATP runs under group-commit
// durability with closed-loop client threads (depth 32, batch 32 — the
// acceptance point of tatp_real_engine); at --kill_at of the run one of
// the two hardware islands fail-stops via KillIsland: its in-flight
// transactions abort kUnavailable (never hang), its partitions are
// evacuated onto the survivor through the Repartition path, and the log
// shards seal + re-home so recovery stays crash-consistent.
//
// Reported, per 25ms timeline bucket: completed TPS; plus the derived
// robustness metrics —
//   pre_kill_tps     steady throughput before the kill
//   dip_min_tps      the deepest bucket after the kill
//   time_to_recover  kill instant → first sustained window back at
//                    --min_recovery_frac of pre-kill throughput
//   evacuation_ms    KillIsland wall time (quarantine + evacuation)
// and the correctness gates: zero lost committed transactions (live
// state equals log::Recover of the post-run crash cut), zero hung
// futures, zero non-OK/non-kUnavailable failures.
//
// --json=<path> writes BENCH_fig12.json; --max_recover_s and
// --min_recovery_frac gate CI (exit 2 on violation, exit 3 on a
// correctness violation).
#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "bench/bench_common.h"
#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "log/recovery.h"
#include "util/rng.h"
#include "workload/tatp.h"
#include "workload/tatp_graphs.h"

using namespace atrapos;
using namespace atrapos::bench;

namespace {

core::Scheme TatpScheme(uint64_t subscribers, int partitions) {
  core::Scheme scheme;
  for (int t = 0; t < 4; ++t) {
    uint64_t factor = t == 0 ? 1 : (t == 3 ? 32 : 4);
    core::TableScheme ts;
    for (int p = 0; p < partitions; ++p) {
      ts.boundaries.push_back(subscribers * factor *
                              static_cast<uint64_t>(p) /
                              static_cast<uint64_t>(partitions));
      ts.placement.push_back(p);
    }
    scheme.tables.push_back(ts);
  }
  return scheme;
}

constexpr int kBucketMs = 25;

struct FigResult {
  /// The sampler's view of the run: cumulative client_ok per 25ms tick
  /// (the timeline source) plus the island_kill annotation.
  obs::Sampler::Collected series;
  uint64_t submitted = 0;
  uint64_t ok = 0;
  uint64_t unavailable = 0;  ///< aborted by the quarantine (expected)
  uint64_t other = 0;        ///< anything else (must stay 0)
  uint64_t hung = 0;         ///< futures that never settled (must stay 0)
  uint64_t sheds = 0;        ///< Submit itself refused (evacuation window)
  double kill_s = 0;         ///< kill instant, seconds into the run
  double evacuation_ms = 0;  ///< KillIsland wall time
  uint64_t moved = 0;        ///< partitions evacuated
  bool lost_commits = false;
  uint64_t evacuation_us_obs = 0;  ///< the obs histogram's view
};

FigResult RunOnce(const hw::Topology& topo, uint64_t subscribers, int clients,
                  double duration, double kill_at, uint64_t seed,
                  engine::PartitionedExecutor::Options exec_opt,
                  const std::string& series_out) {
  // Declared before the database: the sampler thread reads `ok` through
  // its registered series until the database (declared below, destroyed
  // first) shuts it down.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> submitted{0}, ok{0}, unavailable{0}, other{0},
      hung{0}, sheds{0};

  engine::Database::Options dopt;
  dopt.topo = topo;
  dopt.sampler.enabled = true;
  dopt.sampler.interval_ms = kBucketMs;
  dopt.sampler.capacity =
      static_cast<uint32_t>(duration * 1000.0 / kBucketMs) + 256;
  engine::Database db(std::move(dopt));
  // Client-observed successful completions, cumulative — the sampler
  // differences adjacent ticks into the TPS timeline.
  db.sampler()->AddSeries("client_ok", [&ok] {
    return static_cast<double>(ok.load(std::memory_order_relaxed));
  });
  std::vector<uint64_t> bounds;
  for (int p = 0; p < topo.num_cores(); ++p)
    bounds.push_back(subscribers * static_cast<uint64_t>(p) /
                     static_cast<uint64_t>(topo.num_cores()));
  for (auto& t : workload::BuildTatpTables(subscribers, bounds, seed))
    db.AddTable(std::move(t));
  engine::PartitionedExecutor exec(&db, topo,
                                   TatpScheme(subscribers, topo.num_cores()),
                                   exec_opt);

  workload::TatpActionGraphs graphs(subscribers);

  auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed * 31 + static_cast<uint64_t>(c));
      std::deque<engine::TxnFuture> window;
      std::vector<engine::ActionGraph> wave;
      constexpr size_t kDepth = 32, kBatch = 32;
      auto settle_front = [&] {
        // Bounded wait: a hung future is a reported gate failure, not a
        // wedged benchmark.
        auto give_up =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (!window.front().Done()) {
          if (std::chrono::steady_clock::now() > give_up) {
            hung.fetch_add(1, std::memory_order_relaxed);
            window.pop_front();
            return;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        Status s = window.front().Wait();
        window.pop_front();
        // TATP misses (NotFound / AlreadyExists) are successful executions
        // per the spec — only kUnavailable (quarantine) and real errors
        // are outages.
        if (workload::TatpActionGraphs::CountsAsSuccess(s)) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (s.code() == StatusCode::kUnavailable) {
          unavailable.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        wave.clear();
        for (size_t i = 0; i < kBatch; ++i)
          wave.push_back(graphs.Mix(rng));
        auto fs = exec.SubmitBatch(wave);
        if (!fs.ok()) {
          // Evacuation in progress: back off instead of hammering the gate.
          sheds.fetch_add(kBatch, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        submitted.fetch_add(kBatch, std::memory_order_relaxed);
        for (auto& f : fs.value()) window.push_back(std::move(f));
        while (window.size() >= kDepth) settle_front();
      }
      while (!window.empty()) settle_front();
    });
  }

  FigResult out;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration * kill_at * 1000)));
  out.kill_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  db.sampler()->Annotate("island_kill");
  auto t0 = std::chrono::steady_clock::now();
  auto moved = exec.KillIsland(1);
  out.evacuation_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() *
      1000.0;
  if (moved.ok()) out.moved = moved.value();
  std::this_thread::sleep_for(std::chrono::milliseconds(
      static_cast<int>(duration * (1.0 - kill_at) * 1000)));
  stop = true;
  for (auto& t : threads) t.join();

  out.submitted = submitted.load();
  out.ok = ok.load();
  out.unavailable = unavailable.load();
  out.other = other.load();
  out.hung = hung.load();
  out.sheds = sheds.load();

  // Zero lost committed transactions: recover the post-run crash cut into
  // a fresh load and compare the TATP invariants against the live tables.
  exec.Drain();
  exec.log_manager()->FlushAll();
  auto cut = exec.log_manager()->SnapshotDurable();
  auto fresh = workload::BuildTatpTables(subscribers, bounds, seed);
  std::vector<storage::Table*> raw;
  for (auto& t : fresh) raw.push_back(t.get());
  log::RecoveryReport report = log::Recover(cut, raw);
  auto sum_vlr = [&](storage::Table* t) {
    long long sum = 0;
    for (uint64_t s = 0; s < subscribers; ++s) {
      storage::Tuple row;
      if (t->Read(s, &row).ok()) sum += row.GetInt(workload::kVlrLoc);
    }
    return sum;
  };
  long long live = sum_vlr(db.table(workload::kSubscriber));
  long long rec = sum_vlr(raw[workload::kSubscriber]);
  if (live != rec || report.txns_undecided != 0 || report.txns_poisoned != 0 ||
      db.table(workload::kCallForwarding)->num_rows() !=
          raw[workload::kCallForwarding]->num_rows()) {
    std::fprintf(stderr,
                 "fig12: LOST COMMITS — vlr sum %lld (live) vs %lld "
                 "(recovered), %llu undecided, %llu poisoned\n",
                 live, rec,
                 static_cast<unsigned long long>(report.txns_undecided),
                 static_cast<unsigned long long>(report.txns_poisoned));
    out.lost_commits = true;
  }
  obs::StatsSnapshot snap = db.StatsSnapshot();
  out.evacuation_us_obs =
      snap.hist(obs::HistId::kEvacuationUs).Quantile(0.5);
  out.series = db.sampler()->Collect();
  if (!series_out.empty() && db.DumpTimeSeries(series_out))
    std::printf("wrote %s\n", series_out.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t subscribers =
      static_cast<uint64_t>(flags.GetInt("subscribers", 20000));
  int cores_per_socket = static_cast<int>(flags.GetInt("cores_per_socket", 2));
  int clients = static_cast<int>(flags.GetInt("clients", 2));
  double duration = flags.GetDouble("duration", 2.0);
  double kill_at = flags.GetDouble("kill_at", 0.4);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  double max_recover_s = flags.GetDouble("max_recover_s", 2.0);
  double min_recovery_frac = flags.GetDouble("min_recovery_frac", 0.7);
  std::string json_path = flags.GetString("json", "");
  std::string series_out = flags.GetString("series_out", "");

  engine::PartitionedExecutor::Options exec_opt;
  exec_opt.durability = engine::DurabilityMode::kGroup;
  exec_opt.log_flush_interval_us =
      static_cast<uint64_t>(flags.GetInt("log_flush_interval_us", 50));

  hw::Topology topo = hw::Topology::Cube(1, cores_per_socket);
  PrintHeader("fig12_real_engine",
              "Fig. 12 — island failure on the real engine: quarantine, "
              "evacuation, throughput dip and recovery");
  std::printf("%llu subscribers, 2 islands x %d cores, %d client thread(s), "
              "%.1fs run, island 1 killed at %.0f%%, group commit\n\n",
              static_cast<unsigned long long>(subscribers), cores_per_socket,
              clients, duration, kill_at * 100.0);

  FigResult r = RunOnce(topo, subscribers, clients, duration, kill_at, seed,
                        exec_opt, series_out);

  // The TPS timeline: adjacent-tick deltas of the sampler's cumulative
  // client_ok series. The island_kill annotation pins the kill instant on
  // the same clock as the tick timestamps.
  const std::vector<double>* ok_series = nullptr;
  for (const auto& s : r.series.series)
    if (s.name == "client_ok") ok_series = &s.v;
  std::vector<double> t_s, tps;
  if (ok_series != nullptr) {
    for (size_t i = 1; i < r.series.t_ms.size() && i < ok_series->size();
         ++i) {
      double dt_ms =
          static_cast<double>(r.series.t_ms[i] - r.series.t_ms[i - 1]);
      if (dt_ms <= 0) continue;
      t_s.push_back(static_cast<double>(r.series.t_ms[i]) / 1000.0);
      tps.push_back(((*ok_series)[i] - (*ok_series)[i - 1]) * 1000.0 / dt_ms);
    }
  }
  double kill_t_s = r.kill_s;
  for (const auto& [a_ms, label] : r.series.annotations)
    if (label == "island_kill") kill_t_s = static_cast<double>(a_ms) / 1000.0;

  // Pre-kill steady TPS: the ticks of the window [kill/2, kill).
  double pre = 0;
  size_t pre_n = 0;
  for (size_t i = 0; i < t_s.size(); ++i) {
    if (t_s[i] >= kill_t_s / 2 && t_s[i] < kill_t_s) {
      pre += tps[i];
      ++pre_n;
    }
  }
  if (pre_n > 0) pre /= static_cast<double>(pre_n);

  // Dip + recovery: the first post-kill instant where a 4-tick (100ms)
  // sliding window sustains min_recovery_frac of the pre-kill rate.
  double dip = pre;
  double recover_s = -1;
  const double target = pre * min_recovery_frac;
  for (size_t i = 0; i + 4 <= t_s.size(); ++i) {
    if (t_s[i] < kill_t_s) continue;
    dip = std::min(dip, tps[i]);
    double win = 0;
    for (size_t k = 0; k < 4; ++k) win += tps[i + k];
    win /= 4.0;
    if (win >= target) {
      recover_s = std::max(0.0, t_s[i] - kill_t_s);
      break;
    }
  }

  TablePrinter tp({"t (s)", "TPS"});
  for (size_t i = 0; i + 4 <= t_s.size(); i += 4)  // 100ms granularity
    tp.AddRow({TablePrinter::Num(t_s[i], 2),
               TablePrinter::Int(static_cast<long long>(
                   (tps[i] + tps[i + 1] + tps[i + 2] + tps[i + 3]) / 4.0))});
  tp.Print();

  std::printf(
      "\npre-kill %.0f TPS, dip %.0f TPS, evacuation %.1f ms (%llu "
      "partitions), time-to-recover %s (target >= %.0f%% of pre-kill)\n",
      pre, dip, r.evacuation_ms, static_cast<unsigned long long>(r.moved),
      recover_s < 0 ? "NEVER" : (std::to_string(recover_s) + " s").c_str(),
      min_recovery_frac * 100.0);
  std::printf("statuses: %llu ok, %llu kUnavailable (quarantine aborts), "
              "%llu shed at submit, %llu other, %llu hung futures\n",
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.unavailable),
              static_cast<unsigned long long>(r.sheds),
              static_cast<unsigned long long>(r.other),
              static_cast<unsigned long long>(r.hung));

  if (!json_path.empty()) {
    JsonValue timeline = JsonValue::Array();
    for (size_t i = 0; i < t_s.size(); ++i)
      timeline.Push(
          JsonValue::Object().Add("t_s", t_s[i]).Add("tps", tps[i]));
    JsonValue annotations = JsonValue::Array();
    for (const auto& [a_ms, label] : r.series.annotations)
      annotations.Push(JsonValue::Object()
                           .Add("t_s", static_cast<double>(a_ms) / 1000.0)
                           .Add("label", label));
    JsonValue doc = JsonValue::Object();
    doc.Add("bench", std::string("fig12_real_engine"))
        .Add("schema", std::string("BENCH_fig12"))
        .Add("config",
             JsonValue::Object()
                 .Add("subscribers", static_cast<long long>(subscribers))
                 .Add("cores_per_socket",
                      static_cast<long long>(cores_per_socket))
                 .Add("clients", static_cast<long long>(clients))
                 .Add("duration_s", duration)
                 .Add("kill_at", kill_at)
                 .Add("seed", static_cast<long long>(seed)))
        .Add("pre_kill_tps", pre)
        .Add("dip_min_tps", dip)
        .Add("kill_s", r.kill_s)
        .Add("time_to_recover_s", recover_s)
        .Add("evacuation_ms", r.evacuation_ms)
        .Add("evacuation_us_obs",
             static_cast<long long>(r.evacuation_us_obs))
        .Add("partitions_evacuated", static_cast<long long>(r.moved))
        .Add("ok", static_cast<long long>(r.ok))
        .Add("unavailable", static_cast<long long>(r.unavailable))
        .Add("shed_at_submit", static_cast<long long>(r.sheds))
        .Add("other_failures", static_cast<long long>(r.other))
        .Add("hung_futures", static_cast<long long>(r.hung))
        .Add("lost_commits", static_cast<long long>(r.lost_commits ? 1 : 0))
        .Add("sampler_interval_ms",
             static_cast<long long>(r.series.interval_ms))
        .Add("sampler_ticks_missed",
             static_cast<long long>(r.series.ticks_missed))
        .Add("annotations", annotations)
        .Add("timeline", timeline);
    if (!doc.WriteTo(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (r.lost_commits || r.other != 0 || r.hung != 0) {
    std::fprintf(stderr, "FAIL: correctness violation (lost commits, hung "
                         "futures, or unexpected failure statuses)\n");
    return 3;
  }
  if (r.moved == 0) {
    std::fprintf(stderr, "FAIL: KillIsland evacuated nothing\n");
    return 2;
  }
  if (recover_s < 0 || recover_s > max_recover_s) {
    std::fprintf(stderr,
                 "FAIL: throughput did not recover to %.0f%% of pre-kill "
                 "within %.1fs (measured %s)\n",
                 min_recovery_frac * 100.0, max_recover_s,
                 recover_s < 0 ? "never" : std::to_string(recover_s).c_str());
    return 2;
  }
  return 0;
}
