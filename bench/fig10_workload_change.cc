// Fig. 10: adapting to workload changes. TATP; every 30 s the transaction
// type switches: UpdSubData (0-30 s) -> GetNewDest (30-60 s) -> TATP-Mix
// (60-90 s). Static (monitoring/adaptation disabled) vs ATraPos.
//
// Expected shape: after each switch ATraPos detects the change within a few
// seconds, repartitions, and runs measurably above the static system.
#include "bench/timeline_common.h"
#include "workload/tatp.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TimelineSetup tl;
  tl.scale = flags.GetDouble("scale", 0.004);
  tl.duration_paper_s = 90;
  PrintHeader("fig10_workload_change",
              "Fig. 10 — Adapting to workload changes (TATP, 30 s phases)");

  hw::Topology topo = TopoFor(8);
  auto spec = workload::TatpSpec(800000);
  size_t n_classes = spec.classes.size();
  double scale = tl.scale;

  auto weights_fn = [n_classes, scale, &spec](Tick now) {
    double t = sim::CyclesToSec(now) / scale;  // paper seconds
    std::vector<double> w(n_classes, 0.0);
    if (t < 30) {
      w[workload::kUpdSubData] = 1.0;
    } else if (t < 60) {
      w[workload::kGetNewDest] = 1.0;
    } else {
      for (size_t c = 0; c < n_classes; ++c) w[c] = spec.classes[c].weight;
    }
    return w;
  };

  DoraOptions stat;
  ApplyTimelineScaling(tl, &stat);
  stat.run.weights_fn = weights_fn;
  RunMetrics rstat = RunAtrapos(topo, sim::CostParams{}, spec, stat);

  DoraOptions adapt = stat;
  adapt.monitoring = true;
  adapt.adaptive = true;
  RunMetrics radapt = RunAtrapos(topo, sim::CostParams{}, spec, adapt);

  PrintTimeline(tl, rstat, radapt, "KTPS", 1e3);
  return 0;
}
