// Fig. 9: scalability of the repartitioning mechanism, measured on the
// *real* storage manager (not the simulator): on an 800 K-row table of 10
// integer columns, trigger 10..80 repartitioning actions of each kind
// (merge / split / rearrange) and measure wall-clock completion time.
//
// Expected shape: cost linear in the number of actions; merges cheaper
// than splits; even the largest sequence completes in a fraction of a
// second (paper: < 200 ms for 80 rearrangements).
#include <chrono>

#include "bench/bench_common.h"
#include "storage/mrbtree.h"
#include "util/stats.h"

using namespace atrapos;
using namespace atrapos::bench;

namespace {

constexpr uint64_t kRows = 800000;

/// Builds an 800 K-entry multi-rooted B-tree with `parts` partitions.
storage::MultiRootedBTree BuildTree(size_t parts) {
  std::vector<uint64_t> bounds;
  for (size_t p = 0; p < parts; ++p) bounds.push_back(kRows * p / parts);
  storage::MultiRootedBTree tree(bounds);
  for (size_t p = 0; p < parts; ++p) {
    uint64_t lo = kRows * p / parts;
    uint64_t hi = kRows * (p + 1) / parts;
    std::vector<std::pair<uint64_t, uint64_t>> chunk;
    chunk.reserve(hi - lo);
    for (uint64_t k = lo; k < hi; ++k) chunk.emplace_back(k, k * 10 + 7);
    tree.subtree(p).BulkLoad(std::move(chunk));
  }
  return tree;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Like the paper's setup, every action operates on partitions of the
// standard 80-core partitioning (plus a 160-way one for merges), so the
// per-action data volume is fixed and total sequence cost grows linearly
// with the number of actions.

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

double TimeMerges(int n) {
  auto tree = BuildTree(160);
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) {
    // Merge the disjoint pair (2i, 2i+1) of the original partitioning.
    size_t p = tree.PartitionOf(2 * i * kRows / 160);
    Check(tree.Merge(p), "merge");
  }
  return MsSince(t0);
}

double TimeSplits(int n) {
  auto tree = BuildTree(80);
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) {
    // Split partition i at its midpoint.
    uint64_t key = (2 * i + 1) * kRows / 160;
    Check(tree.Split(tree.PartitionOf(key), key), "split");
  }
  return MsSince(t0);
}

double TimeRearranges(int n) {
  // A rearrangement = one split + one merge (paper §VI-C): split partition
  // i at its midpoint, then merge the right half into the next partition —
  // net effect, a moved boundary.
  auto tree = BuildTree(80);
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) {
    uint64_t key = (2 * i + 1) * kRows / 160;
    size_t p = tree.PartitionOf(key);
    Check(tree.Split(p, key), "rearrange/split");
    Check(tree.Merge(p), "rearrange/merge");
  }
  return MsSince(t0);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  PrintHeader("fig09_repartition_cost",
              "Fig. 9 — Repartitioning cost on the real storage manager");

  TablePrinter tp({"actions", "merge (ms)", "+/-", "split (ms)", "+/-",
                   "rearrange (ms)", "+/-"});
  for (int n = 10; n <= 80; n += 10) {
    StreamingStats merge, split, rearrange;
    for (int r = 0; r < repeats; ++r) {
      merge.Add(TimeMerges(n));
      split.Add(TimeSplits(n));
      rearrange.Add(TimeRearranges(n));
    }
    tp.AddRow({TablePrinter::Int(n), TablePrinter::Num(merge.mean(), 1),
               TablePrinter::Num(merge.stddev(), 1),
               TablePrinter::Num(split.mean(), 1),
               TablePrinter::Num(split.stddev(), 1),
               TablePrinter::Num(rearrange.mean(), 1),
               TablePrinter::Num(rearrange.stddev(), 1)});
  }
  tp.Print();
  return 0;
}
