// google-benchmark microbenchmarks of the building blocks: centralized vs
// partitioned transaction lists and rwlocks (real threads, paper §IV), the
// multi-rooted B-tree, the cost model, and the partitioning search.
#include <benchmark/benchmark.h>

#include "core/cost_model.h"
#include "core/monitor.h"
#include "core/search.h"
#include "storage/btree.h"
#include "storage/mrbtree.h"
#include "sync/partitioned_rwlock.h"
#include "txn/txn_list.h"
#include "util/rng.h"
#include "workload/micro.h"
#include "workload/tatp.h"

namespace atrapos {
namespace {

void BM_CentralizedTxnList_AddRemove(benchmark::State& state) {
  txn::CentralizedTxnList list;
  txn::TxnId id = 1;
  for (auto _ : state) {
    txn::TxnNode* n = list.Add(id++, 0);
    list.Remove(n, 0);
  }
}
BENCHMARK(BM_CentralizedTxnList_AddRemove)->Threads(1)->Threads(4);

void BM_PartitionedTxnList_AddRemove(benchmark::State& state) {
  static txn::PartitionedTxnList list(8);
  txn::TxnId id = 1;
  auto socket = static_cast<hw::SocketId>(state.thread_index() % 8);
  for (auto _ : state) {
    txn::TxnNode* n = list.Add(id++, socket);
    list.Remove(n, socket);
  }
}
BENCHMARK(BM_PartitionedTxnList_AddRemove)->Threads(1)->Threads(4);

void BM_PartitionedRWLock_SharedAcquire(benchmark::State& state) {
  static sync::PartitionedRWLock lock(8);
  auto socket = static_cast<hw::SocketId>(state.thread_index() % 8);
  for (auto _ : state) {
    lock.LockShared(socket);
    lock.UnlockShared(socket);
  }
}
BENCHMARK(BM_PartitionedRWLock_SharedAcquire)->Threads(1)->Threads(4);

void BM_SharedMutex_SharedAcquire(benchmark::State& state) {
  static std::shared_mutex mu;
  for (auto _ : state) {
    mu.lock_shared();
    mu.unlock_shared();
  }
}
BENCHMARK(BM_SharedMutex_SharedAcquire)->Threads(1)->Threads(4);

void BM_BTree_Insert(benchmark::State& state) {
  storage::BPlusTree bt;
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bt.Insert(k++, k));
  }
  state.SetItemsProcessed(static_cast<int64_t>(k));
}
BENCHMARK(BM_BTree_Insert);

void BM_BTree_Get(benchmark::State& state) {
  storage::BPlusTree bt;
  constexpr uint64_t kN = 100000;
  for (uint64_t k = 0; k < kN; ++k) (void)bt.Insert(k, k);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bt.Get(rng.Uniform(kN)));
  }
}
BENCHMARK(BM_BTree_Get);

void BM_MRBTree_RouteAndGet(benchmark::State& state) {
  auto parts = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> bounds;
  constexpr uint64_t kN = 100000;
  for (size_t p = 0; p < parts; ++p) bounds.push_back(kN * p / parts);
  storage::MultiRootedBTree t(bounds);
  for (uint64_t k = 0; k < kN; ++k) (void)t.Insert(k, k);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Get(rng.Uniform(kN)));
  }
}
BENCHMARK(BM_MRBTree_RouteAndGet)->Arg(1)->Arg(8)->Arg(80);

void BM_Monitor_RecordAction(benchmark::State& state) {
  core::PartitionMonitor pm(0, 1000000);
  Rng rng(3);
  for (auto _ : state) {
    pm.RecordAction(rng.Uniform(1000000), 1.0);
  }
}
BENCHMARK(BM_Monitor_RecordAction);

void BM_CostModel_Evaluate(benchmark::State& state) {
  auto topo = hw::Topology::TwistedCube8x10();
  auto spec = workload::TatpSpec(800000);
  core::CostModel model(&topo, &spec);
  core::WorkloadStats stats;
  stats.tables.resize(spec.tables.size());
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    for (size_t b = 0; b < 160; ++b) {
      stats.tables[t].sub_starts.push_back(spec.tables[t].num_rows * b / 160);
      stats.tables[t].sub_cost.push_back(1.0);
    }
  }
  for (const auto& c : spec.classes) stats.class_counts.push_back(c.weight);
  std::vector<uint64_t> rows;
  for (const auto& t : spec.tables) rows.push_back(t.num_rows);
  core::Scheme s = core::NaiveScheme(topo, rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ResourceImbalance(s, stats));
    benchmark::DoNotOptimize(model.SyncCost(s, stats));
  }
}
BENCHMARK(BM_CostModel_Evaluate);

void BM_PartitionSearch_Tatp(benchmark::State& state) {
  auto topo = hw::Topology::TwistedCube8x10();
  auto spec = workload::TatpSpec(800000);
  core::CostModel model(&topo, &spec);
  core::WorkloadStats stats;
  stats.tables.resize(spec.tables.size());
  Rng rng(11);
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    for (size_t b = 0; b < 80; ++b) {
      stats.tables[t].sub_starts.push_back(spec.tables[t].num_rows * b / 80);
      stats.tables[t].sub_cost.push_back(1.0 + rng.NextDouble());
    }
  }
  for (const auto& c : spec.classes) stats.class_counts.push_back(c.weight);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ChoosePartitioning(model, stats));
  }
}
BENCHMARK(BM_PartitionSearch_Tatp)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atrapos

BENCHMARK_MAIN();
