// Fig. 1: instructions retired per cycle (IPC) for extreme shared-nothing,
// centralized shared-everything, and PLP at 1/2/4/8 sockets on the
// perfectly partitionable read-one-row microbenchmark.
//
// Expected shape: shared-nothing constant ~0.5; centralized *rises* beyond
// 1 with more sockets (cores spin at high IPC on contended lock words
// while doing no useful work); PLP collapses (cores stall on cross-socket
// CAS, retiring almost nothing).
#include "bench/bench_common.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.004);
  PrintHeader("fig01_ipc", "Fig. 1 — Instructions retired per cycle");

  TablePrinter tp({"sockets", "extreme-SN", "centralized", "PLP"});
  for (int sockets : {1, 2, 4, 8}) {
    hw::Topology topo = TopoFor(sockets);
    auto spec = workload::ReadOneSpec(800000);

    SharedNothingOptions sn;
    sn.run.duration_s = duration;
    RunMetrics rsn = RunSharedNothing(topo, sim::CostParams{}, spec, sn);

    CentralizedOptions ce;
    ce.run.duration_s = duration;
    RunMetrics rce = RunCentralized(topo, sim::CostParams{}, spec, ce);

    DoraOptions plp;
    plp.run.duration_s = duration;
    RunMetrics rplp = RunPlp(topo, sim::CostParams{}, spec, plp);

    tp.AddRow({TablePrinter::Int(sockets), TablePrinter::Num(rsn.ipc, 3),
               TablePrinter::Num(rce.ipc, 3), TablePrinter::Num(rplp.ipc, 3)});
  }
  tp.Print();
  return 0;
}
