// Fig. 3: throughput (KTPS) as the percentage of multi-site update
// transactions grows from 0 to 100, for extreme shared-nothing, coarse
// shared-nothing, and centralized shared-everything on the 8-socket box.
//
// Expected shape: both shared-nothing variants start high and fall steeply
// (distributed transactions run 2PC); centralized is flat and low; the
// curves cross somewhere in the low-multi-site-percentage range.
#include "bench/bench_common.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.01);
  PrintHeader("fig03_multisite",
              "Fig. 3 — Throughput vs % multi-site transactions");

  hw::Topology topo = TopoFor(8);
  TablePrinter tp({"% multi-site", "extreme-SN (KTPS)", "coarse-SN (KTPS)",
                   "centralized (KTPS)"});
  for (int pct : {0, 20, 40, 60, 80, 100}) {
    auto spec = workload::MultisiteUpdateSpec(pct, 800000);

    SharedNothingOptions ext;
    ext.run.duration_s = duration;
    ext.lock_reads = true;  // update workload: locking enabled everywhere
    RunMetrics rext = RunSharedNothing(topo, sim::CostParams{}, spec, ext);

    SharedNothingOptions coarse = ext;
    coarse.per_socket_instances = true;
    RunMetrics rcoarse =
        RunSharedNothing(topo, sim::CostParams{}, spec, coarse);

    CentralizedOptions ce;
    ce.run.duration_s = duration;
    RunMetrics rce = RunCentralized(topo, sim::CostParams{}, spec, ce);

    tp.AddRow({TablePrinter::Int(pct), TablePrinter::Num(rext.tps / 1e3, 1),
               TablePrinter::Num(rcoarse.tps / 1e3, 1),
               TablePrinter::Num(rce.tps / 1e3, 1)});
  }
  tp.Print();
  return 0;
}
