// Fig. 12: adapting to hardware failures. TATP GetSubData; at t = 20 s one
// 10-core socket fails. The static system's partitions migrate onto one
// surviving socket (overloading it); ATraPos detects the topology change
// and repartitions to one partition per surviving core.
//
// Expected shape: both drop at the failure; ATraPos recovers ~10% above the
// static system by removing the overload.
#include "bench/timeline_common.h"
#include "workload/tatp.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TimelineSetup tl;
  tl.scale = flags.GetDouble("scale", 0.004);
  tl.duration_paper_s = 50;
  PrintHeader("fig12_hw_failure", "Fig. 12 — Adapting to hardware failures");

  hw::Topology topo = TopoFor(8);
  auto spec = workload::TatpSingleTxnSpec(workload::kGetSubData, 800000);

  DoraOptions stat;
  ApplyTimelineScaling(tl, &stat);
  stat.fail_socket_at_s = 20.0 * tl.scale;
  stat.fail_socket = 3;
  RunMetrics rstat = RunAtrapos(topo, sim::CostParams{}, spec, stat);

  DoraOptions adapt = stat;
  adapt.monitoring = true;
  adapt.adaptive = true;
  RunMetrics radapt = RunAtrapos(topo, sim::CostParams{}, spec, adapt);

  PrintTimeline(tl, rstat, radapt, "MTPS", 1e6);

  // Post-failure averages (t > 30 s, past the adaptation window).
  auto avg_after = [&](const RunMetrics& r) {
    double sum = 0;
    int n = 0;
    for (size_t i = 0; i < r.timeline_tps.size(); ++i) {
      if (r.timeline_t[i] / tl.scale > 30.0) {
        sum += r.timeline_tps[i];
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  double s = avg_after(rstat), a = avg_after(radapt);
  std::printf("\npost-failure steady state: static %.2f MTPS, ATraPos %.2f "
              "MTPS (%+.1f%%)\n",
              s / 1e6, a / 1e6, s > 0 ? (a / s - 1.0) * 100.0 : 0.0);
  return 0;
}
