// Fig. 13: adapting to frequent workload changes. Workloads A (GetNewDest)
// and B (TATP-Mix) alternate with shrinking phases: A 0-60, B 60-90,
// A 90-120, B 120-140, A 140-160, B 160-180. The monitoring interval
// stretches from 1 s to 8 s while the workload is stable and snaps back to
// 1 s after each repartition.
#include "bench/timeline_common.h"
#include "workload/tatp.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TimelineSetup tl;
  tl.scale = flags.GetDouble("scale", 0.004);
  tl.duration_paper_s = 180;
  PrintHeader("fig13_change_frequency",
              "Fig. 13 — Adapting to frequent changes (A=GetNewDest, "
              "B=TATP-Mix)");

  hw::Topology topo = TopoFor(8);
  auto spec = workload::TatpSpec(800000);
  size_t n_classes = spec.classes.size();
  double scale = tl.scale;

  // Phase boundaries in paper seconds; phases alternate A, B, A, B, ...
  const double shifts[] = {60, 90, 120, 140, 160, 1e9};
  auto phase_of = [&](double t) {
    int i = 0;
    while (t >= shifts[i]) ++i;
    return i;  // even = A, odd = B
  };
  auto weights_fn = [&, scale](Tick now) {
    double t = sim::CyclesToSec(now) / scale;
    std::vector<double> w(n_classes, 0.0);
    if (phase_of(t) % 2 == 0) {
      w[workload::kGetNewDest] = 1.0;
    } else {
      for (size_t c = 0; c < n_classes; ++c) w[c] = spec.classes[c].weight;
    }
    return w;
  };

  DoraOptions adapt;
  ApplyTimelineScaling(tl, &adapt);
  adapt.run.weights_fn = weights_fn;
  adapt.monitoring = true;
  adapt.adaptive = true;
  RunMetrics r = RunAtrapos(topo, sim::CostParams{}, spec, adapt);

  TablePrinter tp({"t (s)", "phase", "ATraPos (KTPS)"});
  for (size_t i = 0; i < r.timeline_tps.size(); ++i) {
    double t = r.timeline_t[i] / tl.scale;
    tp.AddRow({TablePrinter::Int(static_cast<long long>(t + 0.5)),
               phase_of(t) % 2 == 0 ? "A" : "B",
               TablePrinter::Num(r.timeline_tps[i] / 1e3, 1)});
  }
  tp.Print();

  std::printf("\nmonitoring interval over time (paper seconds):\n");
  TablePrinter ti({"t (s)", "interval (s)"});
  for (size_t i = 0; i < r.interval_t.size(); ++i) {
    ti.AddRow({TablePrinter::Num(r.interval_t[i] / tl.scale, 1),
               TablePrinter::Num(r.interval_s[i] / tl.scale, 2)});
  }
  ti.Print();
  std::printf("\nrepartitions: %llu\n",
              static_cast<unsigned long long>(r.repartitions));
  return 0;
}
