// TATP over the wire: the networked front-end (src/server/) measured
// against the in-process submission path it wraps.
//
// Closed-loop sweep over connection counts × client batch size: every
// connection keeps `--window` requests outstanding; batch 1 sends one TXN
// frame per request (the per-request round-trip baseline), batch 32 packs
// a TXN_BATCH per flush so one socket write (and one server-side
// SubmitBatch wave) amortizes many transactions — the wire counterpart of
// the executor's depth/batch levers. Client threads each own a
// server::Client multiplexing `conns/threads` connections and measure
// per-request latency at the callback (p50/p95/p99 from obs::Histogram).
//
// The in-process baseline (depth 32, batch 32, the tatp_real_engine
// acceptance point) runs first; each wire row reports its TPS ratio
// against it. --open_rate=<tps> adds an open-loop row: requests are
// issued on a fixed schedule regardless of completions (enforce_window
// off), so an overloaded server sheds with OVERLOADED instead of
// queueing — the shed fraction is reported.
//
// --json=<path> writes the established BENCH schema ("bench":
// "wire_tatp"); --min_tps fails the run when any wire row with batch > 1
// measured below it; --min_ratio fails when the best batched wire row
// delivers less than that fraction of the in-process baseline; --quick
// trims the sweep for CI.
#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "bench/bench_common.h"
#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "obs/histogram.h"
#include "server/client.h"
#include "server/server.h"
#include "util/rng.h"
#include "workload/tatp.h"
#include "workload/tatp_graphs.h"

using namespace atrapos;
using namespace atrapos::bench;

namespace {

core::Scheme TatpScheme(uint64_t subscribers, int partitions) {
  core::Scheme scheme;
  for (int t = 0; t < 4; ++t) {
    uint64_t factor = t == 0 ? 1 : (t == 3 ? 32 : 4);
    core::TableScheme ts;
    for (int p = 0; p < partitions; ++p) {
      ts.boundaries.push_back(subscribers * factor *
                              static_cast<uint64_t>(p) /
                              static_cast<uint64_t>(partitions));
      ts.placement.push_back(p);
    }
    scheme.tables.push_back(ts);
  }
  return scheme;
}

/// The service under test, rebuilt per sweep row so rows are independent.
struct Service {
  Service(const hw::Topology& topo, uint64_t subscribers, uint64_t seed) {
    db = std::make_unique<engine::Database>(
        engine::Database::Options{.topo = topo});
    std::vector<uint64_t> bounds;
    for (int p = 0; p < topo.num_cores(); ++p)
      bounds.push_back(subscribers * static_cast<uint64_t>(p) /
                       static_cast<uint64_t>(topo.num_cores()));
    for (auto& t : workload::BuildTatpTables(subscribers, bounds, seed))
      db->AddTable(std::move(t));
    exec = std::make_unique<engine::PartitionedExecutor>(
        db.get(), topo, TatpScheme(subscribers, topo.num_cores()));
  }

  ~Service() {
    if (server) server->Stop();
    db->Drain();
    server.reset();
    exec.reset();
    db.reset();
  }

  std::unique_ptr<engine::Database> db;
  std::unique_ptr<engine::PartitionedExecutor> exec;
  std::unique_ptr<server::Server> server;
};

struct WireResult {
  double tps = 0;
  double success_frac = 0;  ///< acks that counted as TATP success
  double shed_frac = 0;     ///< acks that came back OVERLOADED
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
};

/// Closed loop: `threads` client threads × `conns_per_thread` connections,
/// each connection holding `window` requests in flight, batched `batch`
/// per frame. Open loop (open_rate > 0): one thread issues on a fixed
/// schedule with the window gate off.
WireResult RunWire(Service& svc, uint64_t subscribers, int connections,
                   size_t batch, uint32_t window, double duration,
                   uint64_t seed, double open_rate = 0) {
  WireResult out;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> done{0}, ok{0}, shed{0};
  obs::Histogram lat;  // merged under mutex at thread exit
  std::mutex lat_mu;

  // Client threads: enough to keep the connections fed without drowning
  // the machine in context switches (each thread multiplexes its share).
  int threads = open_rate > 0 ? 1 : std::max(1, std::min(connections, 8));
  int conns_per_thread = connections / threads;
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      server::Client::Options copt;
      copt.port = svc.server->port();
      copt.connections = conns_per_thread;
      copt.window = window;
      copt.batch = batch;
      copt.enforce_window = open_rate <= 0;
      server::Client client(copt);
      if (!client.Connect().ok()) return;
      Rng rng(seed * 131 + static_cast<uint64_t>(w));
      obs::Histogram local;
      auto steady_us = [] {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
      };
      // Open loop: inter-arrival gap in microseconds.
      double gap_us = open_rate > 0 ? 1e6 / open_rate : 0;
      double next_issue = static_cast<double>(steady_us());
      int rr = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (open_rate > 0) {
          double now = static_cast<double>(steady_us());
          if (now < next_issue) {
            client.Poll(0);
            continue;
          }
          next_issue += gap_us;
        }
        int conn = rr++ % conns_per_thread;
        int64_t t0 = steady_us();
        Status s = client.Submit(
            conn, server::DrawTatpMix(rng, subscribers),
            [&, t0](server::WireStatus ws) {
              local.Add(static_cast<uint64_t>(steady_us() - t0));
              done.fetch_add(1, std::memory_order_relaxed);
              if (ws == server::WireStatus::kOverloaded)
                shed.fetch_add(1, std::memory_order_relaxed);
              else if (server::WireCountsAsSuccess(ws))
                ok.fetch_add(1, std::memory_order_relaxed);
            });
        if (!s.ok()) break;  // server draining/connection gone
        // Open loop reaps opportunistically; the closed loop reaps inside
        // Submit's window wait (one poll per ack, not one per submit).
        if (open_rate > 0) client.Poll(0);
      }
      client.FlushAll();
      for (int spin = 0; client.outstanding() > 0 && spin < 2000; ++spin)
        client.Poll(5);
      client.CloseAll();
      std::lock_guard lk(lat_mu);
      lat.Merge(local);
    });
  }
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration * 1000)));
  stop = true;
  for (auto& t : workers) t.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  uint64_t n = done.load();
  out.tps = static_cast<double>(n) / secs;
  out.success_frac =
      n ? static_cast<double>(ok.load()) / static_cast<double>(n) : 0;
  out.shed_frac =
      n ? static_cast<double>(shed.load()) / static_cast<double>(n) : 0;
  out.p50_us = lat.Quantile(0.5);
  out.p95_us = lat.Quantile(0.95);
  out.p99_us = lat.Quantile(0.99);
  return out;
}

/// The in-process acceptance point (depth 32, batch 32, one client thread
/// per two cores) the wire rows are measured against.
double RunInProcessBaseline(Service& svc, uint64_t subscribers, int clients,
                            double duration, uint64_t seed) {
  workload::TatpActionGraphs graphs(subscribers);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> done{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed * 31 + static_cast<uint64_t>(c));
      std::deque<engine::TxnFuture> window;
      std::vector<engine::ActionGraph> wave;
      while (!stop.load(std::memory_order_relaxed)) {
        wave.clear();
        for (int i = 0; i < 32; ++i) wave.push_back(graphs.Mix(rng));
        auto fs = svc.exec->SubmitBatch(wave);
        if (!fs.ok()) continue;
        for (auto& f : fs.value()) window.push_back(std::move(f));
        while (window.size() >= 32) {
          (void)window.front().Wait();
          window.pop_front();
          done.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (!window.empty()) {
        (void)window.front().Wait();
        window.pop_front();
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration * 1000)));
  stop = true;
  for (auto& t : threads) t.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(done.load()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t subscribers =
      static_cast<uint64_t>(flags.GetInt("subscribers", 20000));
  int cores = static_cast<int>(flags.GetInt("cores", 4));
  double duration = flags.GetDouble("duration", 0.5);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  uint32_t window = static_cast<uint32_t>(flags.GetInt("window", 32));
  bool quick = flags.GetBool("quick", false);
  double min_tps = flags.GetDouble("min_tps", 0);
  double min_ratio = flags.GetDouble("min_ratio", 0);
  double open_rate = flags.GetDouble("open_rate", 0);
  std::string json_path = flags.GetString("json", "");

  hw::Topology topo = hw::Topology::SingleSocket(cores);
  PrintHeader("wire_tatp",
              "TATP through the networked front-end (island-affine epoll "
              "listeners, TXN_BATCH framing, SubmitBatch waves) vs the "
              "in-process submission path");

  // In-process acceptance point first (its own service, no server).
  double baseline_tps;
  {
    Service svc(topo, subscribers, seed);
    baseline_tps = RunInProcessBaseline(
        svc, subscribers, std::max(1, cores / 2), duration, seed);
  }
  std::printf("in-process baseline (depth 32, batch 32): %.0f TPS\n\n",
              baseline_tps);

  // (connections, batch) sweep: batch 1 vs 32 at each connection count.
  std::vector<std::pair<int, size_t>> points;
  if (quick) {
    // One unbatched contrast point plus the acceptance point (64 conns,
    // batched) so CI exercises the configuration that matters.
    points = {{4, 1}, {64, 32}};
  } else {
    for (int conns : {4, 16, 64})
      for (size_t batch : {size_t{1}, size_t{32}}) points.push_back({conns, batch});
  }

  TablePrinter tp({"Conns", "Batch", "TPS", "vsInproc", "P50us", "P95us",
                   "P99us", "Success", "Shed"});
  JsonValue rows = JsonValue::Array();
  bool below_min = false;
  double best_batched_ratio = 0;
  for (auto [conns, batch] : points) {
    Service svc(topo, subscribers, seed);
    server::Server::Options sopt;
    sopt.max_window = window;
    sopt.bind_listeners = false;
    svc.server = std::make_unique<server::Server>(
        svc.db.get(), svc.exec.get(), subscribers, sopt);
    Status st = svc.server->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    WireResult r =
        RunWire(svc, subscribers, conns, batch, window, duration, seed);
    double ratio = baseline_tps > 0 ? r.tps / baseline_tps : 0;
    if (batch > 1) best_batched_ratio = std::max(best_batched_ratio, ratio);
    tp.AddRow({TablePrinter::Int(conns),
               TablePrinter::Int(static_cast<long long>(batch)),
               TablePrinter::Int(static_cast<long long>(r.tps)),
               TablePrinter::Num(ratio, 2),
               TablePrinter::Int(static_cast<long long>(r.p50_us)),
               TablePrinter::Int(static_cast<long long>(r.p95_us)),
               TablePrinter::Int(static_cast<long long>(r.p99_us)),
               TablePrinter::Num(r.success_frac, 3),
               TablePrinter::Num(r.shed_frac, 3)});
    rows.Push(JsonValue::Object()
                  .Add("connections", static_cast<long long>(conns))
                  .Add("batch", static_cast<long long>(batch))
                  .Add("tps", r.tps)
                  .Add("vs_inprocess", ratio)
                  .Add("p50_us", static_cast<long long>(r.p50_us))
                  .Add("p95_us", static_cast<long long>(r.p95_us))
                  .Add("p99_us", static_cast<long long>(r.p99_us))
                  .Add("success_frac", r.success_frac)
                  .Add("shed_frac", r.shed_frac)
                  .Add("mode", std::string("closed")));
    if (min_tps > 0 && batch > 1 && r.tps < min_tps) below_min = true;
  }

  // Optional open-loop overload row: issue faster than the service
  // absorbs; admission control must shed (OVERLOADED) instead of queueing.
  if (open_rate > 0) {
    Service svc(topo, subscribers, seed);
    server::Server::Options sopt;
    sopt.max_window = window;
    sopt.bind_listeners = false;
    svc.server = std::make_unique<server::Server>(
        svc.db.get(), svc.exec.get(), subscribers, sopt);
    if (!svc.server->Start().ok()) return 1;
    WireResult r = RunWire(svc, subscribers, 4, 1, window, duration, seed,
                           open_rate);
    std::printf("\nopen loop @ %.0f req/s: %.0f acks/s, %.1f%% shed, "
                "p99 %llu us\n",
                open_rate, r.tps, r.shed_frac * 100,
                static_cast<unsigned long long>(r.p99_us));
    rows.Push(JsonValue::Object()
                  .Add("connections", 4LL)
                  .Add("batch", 1LL)
                  .Add("tps", r.tps)
                  .Add("open_rate", open_rate)
                  .Add("p99_us", static_cast<long long>(r.p99_us))
                  .Add("success_frac", r.success_frac)
                  .Add("shed_frac", r.shed_frac)
                  .Add("mode", std::string("open")));
  }
  tp.Print();
  std::printf(
      "\nConns = client connections (closed loop, %u outstanding each);\n"
      "Batch = transactions per TXN_BATCH frame (1 = one TXN frame per\n"
      "request). vsInproc = TPS ratio against the in-process depth-32/\n"
      "batch-32 SubmitBatch baseline; latency is client-measured\n"
      "submit -> ack.\n",
      window);

  if (!json_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Add("bench", std::string("wire_tatp"))
        .Add("schema", std::string("BENCH_submission"))
        .Add("config",
             JsonValue::Object()
                 .Add("subscribers", static_cast<long long>(subscribers))
                 .Add("cores", static_cast<long long>(cores))
                 .Add("window", static_cast<long long>(window))
                 .Add("duration_s", duration)
                 .Add("seed", static_cast<long long>(seed)))
        .Add("baseline_inprocess_tps", baseline_tps)
        .Add("rows", rows);
    if (!doc.WriteTo(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (below_min) {
    std::fprintf(stderr, "FAIL: a batched wire row below --min_tps=%g\n",
                 min_tps);
    return 2;
  }
  if (min_ratio > 0 && best_batched_ratio < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: best batched wire row at %.2fx of in-process, "
                 "need %.2fx\n",
                 best_batched_ratio, min_ratio);
    return 3;
  }
  return 0;
}
