// Shared machinery for the adaptivity timeline figures (Figs. 10-13).
//
// The paper's experiments run 50-180 wall-clock seconds. The simulator
// compresses time: 1 "paper second" is simulated as `scale` seconds, and
// every time constant of the adaptive machinery (monitoring intervals,
// repartitioning pauses, decision time) is scaled identically, so the
// *dynamics* — detection delay in intervals, pause lengths relative to the
// sampling period — are preserved while the simulation stays fast.
#pragma once

#include "bench/bench_common.h"

namespace atrapos::bench {

struct TimelineSetup {
  double scale = 0.01;          ///< sim seconds per paper second
  double duration_paper_s = 90;  ///< figure x-axis length
};

/// Fills the time-scaled knobs of a DoraOptions.
inline void ApplyTimelineScaling(const TimelineSetup& tl,
                                 simengine::DoraOptions* opt) {
  opt->run.duration_s = tl.duration_paper_s * tl.scale;
  opt->run.sample_interval_s = 1.0 * tl.scale;  // one sample per paper second
  opt->controller.initial_interval_s = 1.0 * tl.scale;
  opt->controller.max_interval_s = 8.0 * tl.scale;
  opt->split_ms = 1.6 * tl.scale;
  opt->merge_ms = 1.2 * tl.scale;
  opt->move_ms = 0.05 * tl.scale;
  opt->decide_ms = 2.0 * tl.scale;
}

/// Prints a two-series timeline (static vs ATraPos) in paper seconds.
inline void PrintTimeline(const TimelineSetup& tl,
                          const simengine::RunMetrics& stat,
                          const simengine::RunMetrics& atra,
                          const char* unit, double div) {
  TablePrinter tp({"t (s)", std::string("Static (") + unit + ")",
                   std::string("ATraPos (") + unit + ")"});
  size_t n = std::min(stat.timeline_tps.size(), atra.timeline_tps.size());
  for (size_t i = 0; i < n; ++i) {
    tp.AddRow({TablePrinter::Int(static_cast<long long>(
                   stat.timeline_t[i] / tl.scale + 0.5)),
               TablePrinter::Num(stat.timeline_tps[i] / div, 1),
               TablePrinter::Num(atra.timeline_tps[i] / div, 1)});
  }
  tp.Print();
  std::printf("\nATraPos repartitioned %llu time(s)\n",
              static_cast<unsigned long long>(atra.repartitions));
}

}  // namespace atrapos::bench
