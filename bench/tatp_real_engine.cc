// TATP on the real-thread partitioned engine, submitted as routed
// ActionGraphs (workload::TatpActionGraphs) with pipelined asynchronous
// Submit — the functional counterpart of the simulator's fig08 TATP bars.
//
// Each client thread keeps `--depth` transactions in flight (depth 1
// reproduces the old blocking one-at-a-time submission) and submits them
// `batch` graphs at a time: batch 1 uses Submit (one publish wave per
// transaction), batch > 1 uses SubmitBatch, which groups all stage-0
// actions by destination partition and pays one inbox enqueue + at most
// one wake per partition for the whole batch. The sweep shows both levers:
// pipelining fills the partition workers from far fewer client threads,
// batching cuts the per-transaction submission cost on top. The adaptive
// manager runs throughout: class counts are populated by the executor's
// completion path, and under the skewed workload (--hot_pct of traffic on
// the first 10% of subscribers) the monitor + cost model split the hot
// range online.
//
// --durability={off,async,group} switches the src/log/ subsystem on:
// async logs records and commit markers but acks at marker append; group
// defers each TxnFuture until the markers are durable on every shard the
// transaction touched (asynchronous acks — workers never block).
// --log_shards=0 (default) places one log shard per partition on its
// owner island; --log_shards=1 runs the retired centralized WAL protocol
// (per-record appends under one mutex, commit blocking in the flush
// window under group) — the Fig. 4 logging-contention baseline the
// per-partition design is measured against.
//
// --json=<path> writes a BENCH_submission.json perf trajectory (TPS per
// depth/batch point plus the measured remote-traffic ratio) so runs are
// machine-comparable across commits; --min_tps=<n> makes the binary exit
// nonzero when any point measured below it (the CI bench smoke check);
// --quick trims the sweep for CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "bench/bench_common.h"
#include "engine/adaptive_manager.h"
#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "log/recovery.h"
#include "util/rng.h"
#include "workload/tatp.h"
#include "workload/tatp_graphs.h"

using namespace atrapos;
using namespace atrapos::bench;

namespace {

core::Scheme TatpScheme(uint64_t subscribers, int partitions) {
  core::Scheme scheme;
  for (int t = 0; t < 4; ++t) {
    uint64_t factor = t == 0 ? 1 : (t == 3 ? 32 : 4);
    core::TableScheme ts;
    for (int p = 0; p < partitions; ++p) {
      ts.boundaries.push_back(subscribers * factor *
                              static_cast<uint64_t>(p) /
                              static_cast<uint64_t>(partitions));
      ts.placement.push_back(p);
    }
    scheme.tables.push_back(ts);
  }
  return scheme;
}

struct RunResult {
  double tps = 0;
  double remote_ratio = 0;
  uint64_t repartitions = 0;
  uint64_t completed = 0;
  uint64_t committed = 0;  ///< futures that resolved OK (TATP misses abort)
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t durable_epoch = 0;
  // Commit latency (submit → completion ack) from the obs registry's
  // merged histogram, in microseconds.
  uint64_t commit_p50_us = 0;
  uint64_t commit_p95_us = 0;
  uint64_t commit_p99_us = 0;
  uint64_t interleave_suspensions = 0;  ///< warm-pipeline suspend count

  double log_bytes_per_commit() const {
    return committed > 0
               ? static_cast<double>(log_bytes) / static_cast<double>(committed)
               : 0.0;
  }
};

RunResult RunOnce(const hw::Topology& topo, uint64_t subscribers,
                  int clients, size_t depth, size_t batch, double duration,
                  double hot_pct, uint64_t seed,
                  engine::PartitionedExecutor::Options exec_opt,
                  mem::IslandAllocator::Options mem_opt = {},
                  const std::string& trace_path = "") {
  engine::Database::Options dopt;
  dopt.topo = topo;
  dopt.mem = mem_opt;
  dopt.obs.trace = !trace_path.empty();
  engine::Database db(dopt);
  std::vector<uint64_t> bounds;
  for (int p = 0; p < topo.num_cores(); ++p)
    bounds.push_back(subscribers * static_cast<uint64_t>(p) /
                     static_cast<uint64_t>(topo.num_cores()));
  for (auto& t : workload::BuildTatpTables(subscribers, bounds, seed))
    db.AddTable(std::move(t));
  engine::PartitionedExecutor exec(&db, topo,
                                   TatpScheme(subscribers, topo.num_cores()),
                                   exec_opt);
  auto spec = workload::TatpSpec(subscribers);
  engine::AdaptiveManager::Options mopt;
  mopt.controller.initial_interval_s = 0.1;
  mopt.controller.max_interval_s = 0.5;
  engine::AdaptiveManager mgr(&exec, &topo, &spec, mopt);
  mgr.Start();
  db.memory().stats().Reset();  // measure steady state, not the load

  workload::TatpActionGraphs graphs(subscribers);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> done{0};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed * 31 + static_cast<uint64_t>(c));
      std::deque<engine::TxnFuture> window;
      std::vector<engine::ActionGraph> wave;
      auto draw_sid = [&] {
        // Skew: hot_pct% of transactions (every class) target the first
        // 10% of subscribers.
        return rng.Chance(hot_pct / 100.0) ? rng.Uniform(subscribers / 10)
                                           : rng.Uniform(subscribers);
      };
      while (!stop.load(std::memory_order_relaxed)) {
        if (batch <= 1) {
          auto f = exec.Submit(graphs.Mix(rng, draw_sid()));
          if (!f.ok()) continue;
          window.push_back(f.take());
        } else {
          wave.clear();
          for (size_t i = 0; i < batch; ++i)
            wave.push_back(graphs.Mix(rng, draw_sid()));
          auto fs = exec.SubmitBatch(wave);
          if (!fs.ok()) continue;
          for (auto& f : fs.value()) window.push_back(std::move(f));
        }
        while (window.size() >= depth) {
          if (window.front().Wait().ok())
            committed.fetch_add(1, std::memory_order_relaxed);
          window.pop_front();
          done.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (!window.empty()) {
        if (window.front().Wait().ok())
          committed.fetch_add(1, std::memory_order_relaxed);
        window.pop_front();
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration * 1000)));
  stop = true;
  for (auto& t : threads) t.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  mgr.Stop();
  RunResult out;
  out.tps = static_cast<double>(done.load()) / secs;
  out.remote_ratio = db.memory().stats().AccessRemoteRatio();
  out.repartitions = mgr.repartitions();
  out.completed = mgr.completed_transactions();
  out.committed = committed.load();
  if (log::LogManager* lm = exec.log_manager()) {
    out.log_records = lm->num_records();
    out.log_bytes = lm->bytes_logged();
    out.durable_epoch = lm->durable_epoch();
  }
  obs::StatsSnapshot snap = db.StatsSnapshot();
  const obs::Histogram& lat = snap.hist(obs::HistId::kCommitLatencyUs);
  out.commit_p50_us = lat.Quantile(0.5);
  out.commit_p95_us = lat.Quantile(0.95);
  out.commit_p99_us = lat.Quantile(0.99);
  out.interleave_suspensions =
      snap.counter(obs::CounterId::kInterleaveSuspensions);
  if (!trace_path.empty() && db.DumpTrace(trace_path))
    std::printf("wrote trace %s (%llu events recorded, %llu dropped)\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(snap.trace_events_recorded),
                static_cast<unsigned long long>(snap.trace_events_dropped));
  return out;
}

/// Simulated-crash recovery smoke (CI): run TATP under group commit, take
/// a mid-run crash cut and a complete post-drain cut, recover both into
/// fresh copies of the load, and assert the TATP sum invariant — the
/// recovered Subscriber vlr_location sum (and CallForwarding row count)
/// of the complete cut equals the live tables', and every cut replays
/// without image-less or unresolvable records. Returns false on any
/// violation.
bool RunRecoveryCheck(const hw::Topology& topo, uint64_t subscribers,
                      uint64_t seed,
                      engine::PartitionedExecutor::Options exec_opt) {
  std::vector<uint64_t> bounds;
  for (int p = 0; p < topo.num_cores(); ++p)
    bounds.push_back(subscribers * static_cast<uint64_t>(p) /
                     static_cast<uint64_t>(topo.num_cores()));
  engine::Database db({.topo = topo});
  for (auto& t : workload::BuildTatpTables(subscribers, bounds, seed))
    db.AddTable(std::move(t));
  engine::PartitionedExecutor exec(
      &db, topo, TatpScheme(subscribers, topo.num_cores()), exec_opt);

  workload::TatpActionGraphs graphs(subscribers);
  Rng rng(seed);
  std::deque<engine::TxnFuture> window;
  std::vector<log::ShardSnapshot> mid_cut;
  constexpr int kTxns = 4000;
  for (int i = 0; i < kTxns; ++i) {
    // Snapshot first so a failed Submit at the halfway iteration cannot
    // silently skip the mid-run crash cut.
    if (i == kTxns / 2) mid_cut = exec.log_manager()->SnapshotDurable();
    auto f = exec.Submit(graphs.Mix(rng));
    if (!f.ok()) continue;
    window.push_back(f.take());
    while (window.size() >= 32) {
      (void)window.front().Wait();
      window.pop_front();
    }
  }
  while (!window.empty()) {
    (void)window.front().Wait();
    window.pop_front();
  }
  exec.Drain();
  exec.log_manager()->FlushAll();
  auto final_cut = exec.log_manager()->SnapshotDurable();

  auto sum_vlr = [&](storage::Table* t) {
    long long sum = 0;
    for (uint64_t s = 0; s < subscribers; ++s) {
      storage::Tuple row;
      if (t->Read(s, &row).ok()) sum += row.GetInt(workload::kVlrLoc);
    }
    return sum;
  };

  bool ok = true;
  if (mid_cut.empty() || final_cut.empty()) {
    std::fprintf(stderr, "recovery_check: a crash cut is empty — the "
                         "property was never exercised\n");
    ok = false;
  }
  for (const auto* cut : {&mid_cut, &final_cut}) {
    auto fresh = workload::BuildTatpTables(subscribers, bounds, seed);
    std::vector<storage::Table*> raw;
    for (auto& t : fresh) raw.push_back(t.get());
    log::RecoveryReport report = log::Recover(*cut, raw);
    if (report.records_without_image != 0 || report.records_diff_missed != 0) {
      std::fprintf(stderr,
                   "recovery_check: %llu image-less / %llu unresolvable "
                   "records in a cut\n",
                   static_cast<unsigned long long>(report.records_without_image),
                   static_cast<unsigned long long>(report.records_diff_missed));
      ok = false;
    }
    if (cut == &final_cut) {
      if (report.txns_undecided != 0 || report.txns_poisoned != 0) {
        std::fprintf(stderr,
                     "recovery_check: complete cut left %llu undecided / "
                     "%llu poisoned txns\n",
                     static_cast<unsigned long long>(report.txns_undecided),
                     static_cast<unsigned long long>(report.txns_poisoned));
        ok = false;
      }
      long long live = sum_vlr(db.table(workload::kSubscriber));
      long long rec = sum_vlr(raw[workload::kSubscriber]);
      if (live != rec) {
        std::fprintf(stderr,
                     "recovery_check: vlr_location sum %lld (live) != %lld "
                     "(recovered)\n",
                     live, rec);
        ok = false;
      }
      if (db.table(workload::kCallForwarding)->num_rows() !=
          raw[workload::kCallForwarding]->num_rows()) {
        std::fprintf(stderr, "recovery_check: CallForwarding row count "
                             "diverged after recovery\n");
        ok = false;
      }
    }
  }
  std::printf("recovery_check: %s (mid-run + complete crash cuts, "
              "%zu + %zu shard snapshots)\n",
              ok ? "OK" : "FAILED", mid_cut.size(), final_cut.size());
  return ok;
}

bool ParseDurability(const std::string& name,
                     engine::DurabilityMode* out) {
  if (name == "off") *out = engine::DurabilityMode::kOff;
  else if (name == "async") *out = engine::DurabilityMode::kAsync;
  else if (name == "group") *out = engine::DurabilityMode::kGroup;
  else return false;
  return true;
}

bool ParseWire(const std::string& name, log::WireFormat* out) {
  if (name == "diff") *out = log::WireFormat::kCompactDiffV2;
  else if (name == "afterimage") *out = log::WireFormat::kAfterImageV1;
  else return false;
  return true;
}

const char* ToString(log::WireFormat w) {
  return w == log::WireFormat::kCompactDiffV2 ? "diff" : "afterimage";
}

const char* ToString(engine::DurabilityMode m) {
  switch (m) {
    case engine::DurabilityMode::kOff: return "off";
    case engine::DurabilityMode::kAsync: return "async";
    case engine::DurabilityMode::kGroup: return "group";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t subscribers =
      static_cast<uint64_t>(flags.GetInt("subscribers", 20000));
  int cores = static_cast<int>(flags.GetInt("cores", 4));
  int clients = static_cast<int>(flags.GetInt("clients", 1));
  double duration = flags.GetDouble("duration", 0.5);
  double hot_pct = flags.GetDouble("hot_pct", 60);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  bool quick = flags.GetBool("quick", false);
  double min_tps = flags.GetDouble("min_tps", 0);
  std::string json_path = flags.GetString("json", "");
  std::string durability_name = flags.GetString("durability", "off");
  int log_shards = static_cast<int>(flags.GetInt("log_shards", 0));
  uint64_t flush_us =
      static_cast<uint64_t>(flags.GetInt("log_flush_interval_us", 50));
  std::string wire_name = flags.GetString("log_encoding", "diff");
  bool recovery_check = flags.GetBool("recovery_check", false);
  // --trace=<path>: re-run the last sweep point with txn lifecycle tracing
  // enabled and dump a chrome://tracing-loadable JSON there.
  std::string trace_path = flags.GetString("trace", "");
  // --placement={local,central,remote,interleaved,first_touch}: arena
  // placement policy for every table (remote = every partition's data on
  // a non-home island — the worst-case Island traffic the interleaved
  // worker loop is built to hide). --islands>1 picks a Cube topology so
  // "remote" means something.
  std::string placement_name = flags.GetString("placement", "local");
  int islands = static_cast<int>(flags.GetInt("islands", 1));
  int interleave = static_cast<int>(flags.GetInt("interleave", 1));
  bool interleave_sweep = flags.GetBool("interleave_sweep", false);
  int interleave_reps = static_cast<int>(flags.GetInt("interleave_reps", 3));
  std::string interleave_json = flags.GetString("interleave_json", "");
  double min_interleave_ratio = flags.GetDouble("min_interleave_ratio", 0);

  engine::PartitionedExecutor::Options exec_opt;
  if (!ParseDurability(durability_name, &exec_opt.durability)) {
    std::fprintf(stderr, "unknown --durability=%s (off|async|group)\n",
                 durability_name.c_str());
    return 1;
  }
  if (!ParseWire(wire_name, &exec_opt.log_wire)) {
    std::fprintf(stderr, "unknown --log_encoding=%s (diff|afterimage)\n",
                 wire_name.c_str());
    return 1;
  }
  if (log_shards != 0 && log_shards != 1) {
    std::fprintf(stderr,
                 "--log_shards=%d unsupported (0 = per-partition, "
                 "1 = centralized)\n",
                 log_shards);
    return 1;
  }
  exec_opt.log_shards = log_shards;
  exec_opt.log_flush_interval_us = flush_us;
  exec_opt.interleave_depth = interleave;

  mem::IslandAllocator::Options mem_opt;
  auto policy = mem::ParsePlacementPolicy(placement_name);
  if (!policy) {
    std::fprintf(stderr,
                 "unknown --placement=%s (local|central|remote|"
                 "interleaved|first_touch)\n",
                 placement_name.c_str());
    return 1;
  }
  mem_opt.policy = *policy;

  hw::Topology topo = hw::Topology::SingleSocket(cores);
  if (islands == 2 && cores % 2 == 0)
    topo = hw::Topology::Cube(1, cores / 2);
  else if (islands == 4 && cores % 4 == 0)
    topo = hw::Topology::Cube(2, cores / 4);
  else if (islands != 1) {
    std::fprintf(stderr, "--islands=%d needs 2|4 and cores %% islands == 0\n",
                 islands);
    return 1;
  }
  PrintHeader("tatp_real_engine",
              "TATP as routed ActionGraphs on the partitioned executor "
              "(async Submit/SubmitBatch, completion-path class accounting)");
  std::printf("%llu subscribers, %d partitions/table, %d client thread(s), "
              "%.0f%% hot traffic, %.1fs per row, durability=%s (%s)\n\n",
              static_cast<unsigned long long>(subscribers), cores, clients,
              hot_pct, duration, ToString(exec_opt.durability),
              exec_opt.durability == engine::DurabilityMode::kOff
                  ? "no logging"
                  : (log_shards == 1 ? "1 centralized shard"
                                     : "per-partition shards"));

  // (depth, batch) sweep: batch 1 is the per-transaction Submit path,
  // batch > 1 submits whole waves through SubmitBatch.
  std::vector<std::pair<size_t, size_t>> points =
      quick ? std::vector<std::pair<size_t, size_t>>{{1, 1}, {32, 1}, {32, 32}}
            : std::vector<std::pair<size_t, size_t>>{
                  {1, 1}, {8, 1}, {32, 1}, {8, 8}, {32, 8}, {32, 32}};

  TablePrinter tp({"Depth", "Batch", "TPS", "P50us", "P95us", "P99us",
                   "Repartitions", "Completed", "LogRecords", "LogB/Commit"});
  JsonValue rows = JsonValue::Array();
  bool below_min = false;
  for (size_t i = 0; i < points.size(); ++i) {
    auto [depth, batch] = points[i];
    // Tracing rides on the last sweep point only, so the earlier rows
    // stay comparable run-to-run.
    const std::string tpath =
        i + 1 == points.size() ? trace_path : std::string();
    RunResult r = RunOnce(topo, subscribers, clients, depth, batch, duration,
                          hot_pct, seed, exec_opt, mem_opt, tpath);
    tp.AddRow({TablePrinter::Int(static_cast<long long>(depth)),
               TablePrinter::Int(static_cast<long long>(batch)),
               TablePrinter::Int(static_cast<long long>(r.tps)),
               TablePrinter::Int(static_cast<long long>(r.commit_p50_us)),
               TablePrinter::Int(static_cast<long long>(r.commit_p95_us)),
               TablePrinter::Int(static_cast<long long>(r.commit_p99_us)),
               TablePrinter::Int(static_cast<long long>(r.repartitions)),
               TablePrinter::Int(static_cast<long long>(r.completed)),
               TablePrinter::Int(static_cast<long long>(r.log_records)),
               TablePrinter::Num(r.log_bytes_per_commit(), 1)});
    rows.Push(JsonValue::Object()
                  .Add("depth", static_cast<long long>(depth))
                  .Add("batch", static_cast<long long>(batch))
                  .Add("tps", r.tps)
                  .Add("commit_p50_us",
                       static_cast<long long>(r.commit_p50_us))
                  .Add("commit_p95_us",
                       static_cast<long long>(r.commit_p95_us))
                  .Add("commit_p99_us",
                       static_cast<long long>(r.commit_p99_us))
                  .Add("remote_ratio", r.remote_ratio)
                  .Add("repartitions", static_cast<long long>(r.repartitions))
                  .Add("completed", static_cast<long long>(r.completed))
                  .Add("committed", static_cast<long long>(r.committed))
                  .Add("log_records", static_cast<long long>(r.log_records))
                  .Add("log_bytes", static_cast<long long>(r.log_bytes))
                  .Add("log_bytes_per_commit", r.log_bytes_per_commit())
                  .Add("durable_epoch",
                       static_cast<long long>(r.durable_epoch)));
    if (min_tps > 0 && r.tps < min_tps) below_min = true;
  }
  tp.Print();

  // Encoding A/B at the acceptance point (depth 32, batch 32): same
  // workload once per wire format, reporting mean log bytes per committed
  // transaction and the diff-vs-after-image ratio.
  JsonValue encoding_compare = JsonValue::Object();
  if (exec_opt.durability != engine::DurabilityMode::kOff) {
    auto run_wire = [&](log::WireFormat w) {
      auto o = exec_opt;
      o.log_wire = w;
      return RunOnce(topo, subscribers, clients, 32, 32, duration, hot_pct,
                     seed, o, mem_opt);
    };
    RunResult diff = run_wire(log::WireFormat::kCompactDiffV2);
    RunResult ai = run_wire(log::WireFormat::kAfterImageV1);
    double ratio = diff.log_bytes_per_commit() > 0
                       ? ai.log_bytes_per_commit() / diff.log_bytes_per_commit()
                       : 0.0;
    std::printf(
        "\nLog encoding (depth 32, batch 32): diff %.1f B/commit vs "
        "after-image %.1f B/commit (%.2fx smaller); TPS %.0f vs %.0f\n",
        diff.log_bytes_per_commit(), ai.log_bytes_per_commit(), ratio,
        diff.tps, ai.tps);
    encoding_compare.Add("diff_log_bytes_per_commit",
                         diff.log_bytes_per_commit())
        .Add("afterimage_log_bytes_per_commit", ai.log_bytes_per_commit())
        .Add("log_bytes_ratio", ratio)
        .Add("diff_tps", diff.tps)
        .Add("afterimage_tps", ai.tps);
  }
  std::printf(
      "\nDepth = transactions each client keeps in flight (1 = the old\n"
      "blocking submission); Batch = transactions per SubmitBatch wave\n"
      "(1 = per-transaction Submit). Higher depth keeps partition workers\n"
      "busy without extra client threads; higher batch amortizes the\n"
      "enqueue + wake cost per partition; Repartitions > 0 shows the\n"
      "adaptive manager acting on completion-path class counts under "
      "skew.\n");

  // ---- interleave-depth sweep (depth 32, batch 32) -------------------------
  // Paired rounds: each rep runs every K back-to-back in the same order,
  // so machine drift hits all depths equally; per-K TPS is the median
  // across reps. Run it under --placement=remote --islands=2 to see the
  // stall-hiding effect the worker pipeline exists for.
  bool below_interleave_ratio = false;
  if (interleave_sweep) {
    std::vector<int> ks = quick ? std::vector<int>{1, 4, 16}
                                : std::vector<int>{1, 2, 4, 8, 16, 32};
    std::vector<std::vector<double>> tps(ks.size());
    std::vector<uint64_t> suspensions(ks.size(), 0);
    std::vector<uint64_t> txns(ks.size(), 0);
    for (int rep = 0; rep < std::max(1, interleave_reps); ++rep) {
      for (size_t i = 0; i < ks.size(); ++i) {
        auto o = exec_opt;
        o.interleave_depth = ks[i];
        RunResult r = RunOnce(topo, subscribers, clients, 32, 32, duration,
                              hot_pct, seed + static_cast<uint64_t>(rep),
                              o, mem_opt);
        tps[i].push_back(r.tps);
        suspensions[i] += r.interleave_suspensions;
        txns[i] += r.completed;
      }
    }
    auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    TablePrinter itp({"K", "TPS(med)", "TPS(min)", "TPS(max)",
                      "Suspensions/txn", "vs K=1"});
    JsonValue irows = JsonValue::Array();
    double base = median(tps[0]);
    double best = 0, best_k = 1;
    for (size_t i = 0; i < ks.size(); ++i) {
      double med = median(tps[i]);
      double lo = *std::min_element(tps[i].begin(), tps[i].end());
      double hi = *std::max_element(tps[i].begin(), tps[i].end());
      double per_txn = txns[i] > 0 ? static_cast<double>(suspensions[i]) /
                                         static_cast<double>(txns[i])
                                   : 0.0;
      if (ks[i] > 1 && med > best) {
        best = med;
        best_k = ks[i];
      }
      itp.AddRow({TablePrinter::Int(ks[i]),
                  TablePrinter::Int(static_cast<long long>(med)),
                  TablePrinter::Int(static_cast<long long>(lo)),
                  TablePrinter::Int(static_cast<long long>(hi)),
                  TablePrinter::Num(per_txn, 1),
                  TablePrinter::Num(base > 0 ? med / base : 0.0, 3)});
      irows.Push(JsonValue::Object()
                     .Add("interleave_depth", static_cast<long long>(ks[i]))
                     .Add("tps_median", med)
                     .Add("tps_min", lo)
                     .Add("tps_max", hi)
                     .Add("suspensions_per_txn", per_txn)
                     .Add("tps_vs_k1", base > 0 ? med / base : 0.0));
    }
    std::printf("\nInterleave sweep (depth 32, batch 32, placement=%s, "
                "%d island(s), %d rep(s)):\n",
                mem::ToString(mem_opt.policy), islands,
                std::max(1, interleave_reps));
    itp.Print();
    std::printf("best K>1: K=%d at %.0f TPS (%.3fx of K=1)\n",
                static_cast<int>(best_k), best,
                base > 0 ? best / base : 0.0);
    if (min_interleave_ratio > 0 && best < min_interleave_ratio * base)
      below_interleave_ratio = true;
    if (!interleave_json.empty()) {
      JsonValue idoc = JsonValue::Object();
      idoc.Add("bench", std::string("tatp_real_engine"))
          .Add("schema", std::string("BENCH_interleave"))
          .Add("config",
               JsonValue::Object()
                   .Add("subscribers", static_cast<long long>(subscribers))
                   .Add("cores", static_cast<long long>(topo.num_cores()))
                   .Add("islands", static_cast<long long>(islands))
                   .Add("clients", static_cast<long long>(clients))
                   .Add("placement", std::string(mem::ToString(mem_opt.policy)))
                   .Add("hot_pct", hot_pct)
                   .Add("duration_s", duration)
                   .Add("reps",
                        static_cast<long long>(std::max(1, interleave_reps)))
                   .Add("depth", 32LL)
                   .Add("batch", 32LL)
                   .Add("durability",
                        std::string(ToString(exec_opt.durability))))
          .Add("rows", irows)
          .Add("base_tps", base)
          .Add("best_k", static_cast<long long>(best_k))
          .Add("best_tps", best)
          .Add("best_vs_k1", base > 0 ? best / base : 0.0);
      if (!idoc.WriteTo(interleave_json)) return 1;
      std::printf("wrote %s\n", interleave_json.c_str());
    }
  }

  if (!json_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Add("bench", std::string("tatp_real_engine"))
        .Add("schema", std::string("BENCH_submission"))
        .Add("config", JsonValue::Object()
                           .Add("subscribers",
                                static_cast<long long>(subscribers))
                           .Add("cores", static_cast<long long>(cores))
                           .Add("clients", static_cast<long long>(clients))
                           .Add("hot_pct", hot_pct)
                           .Add("duration_s", duration)
                           .Add("seed", static_cast<long long>(seed))
                           .Add("durability",
                                std::string(ToString(exec_opt.durability)))
                           .Add("log_shards",
                                static_cast<long long>(log_shards))
                           .Add("log_encoding",
                                std::string(ToString(exec_opt.log_wire))))
        .Add("rows", rows);
    if (exec_opt.durability != engine::DurabilityMode::kOff)
      doc.Add("encoding_compare", encoding_compare);
    if (!doc.WriteTo(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  bool recovery_ok = true;
  if (recovery_check) {
    auto o = exec_opt;
    if (o.durability == engine::DurabilityMode::kOff)
      o.durability = engine::DurabilityMode::kGroup;
    recovery_ok = RunRecoveryCheck(topo, subscribers, seed, o);
  }
  if (below_min) {
    std::fprintf(stderr, "FAIL: at least one point below --min_tps=%g\n",
                 min_tps);
    return 2;
  }
  if (below_interleave_ratio) {
    std::fprintf(stderr,
                 "FAIL: best interleaved TPS below --min_interleave_ratio=%g "
                 "of the K=1 baseline\n",
                 min_interleave_ratio);
    return 4;
  }
  return recovery_ok ? 0 : 3;
}
