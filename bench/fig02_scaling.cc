// Fig. 2: throughput (MTPS) of extreme shared-nothing, centralized, and PLP
// as sockets grow, on the perfectly partitionable read-one-row workload.
//
// Expected shape: shared-nothing scales linearly (~6.5 MTPS at 8 sockets);
// centralized is low and declines; PLP is competitive on one socket and
// degrades across sockets.
#include "bench/bench_common.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.004);
  PrintHeader("fig02_scaling",
              "Fig. 2 — Throughput of shared-nothing, centralized, PLP");

  TablePrinter tp(
      {"sockets", "extreme-SN (MTPS)", "centralized (MTPS)", "PLP (MTPS)"});
  for (int sockets : {1, 2, 4, 8}) {
    hw::Topology topo = TopoFor(sockets);
    auto spec = workload::ReadOneSpec(800000);

    SharedNothingOptions sn;
    sn.run.duration_s = duration;
    RunMetrics rsn = RunSharedNothing(topo, sim::CostParams{}, spec, sn);

    CentralizedOptions ce;
    ce.run.duration_s = duration;
    RunMetrics rce = RunCentralized(topo, sim::CostParams{}, spec, ce);

    DoraOptions plp;
    plp.run.duration_s = duration;
    RunMetrics rplp = RunPlp(topo, sim::CostParams{}, spec, plp);

    tp.AddRow({TablePrinter::Int(sockets), TablePrinter::Num(rsn.mtps, 3),
               TablePrinter::Num(rce.mtps, 3),
               TablePrinter::Num(rplp.mtps, 3)});
  }
  tp.Print();
  return 0;
}
