// Fig. 5: the Fig. 2 sweep extended with coarse shared-nothing and ATraPos.
//
// Expected shape: ATraPos scales like the shared-nothing designs on the
// perfectly partitionable workload (the paper's contribution #2); PLP stays
// flat or worse beyond one socket.
#include "bench/bench_common.h"
#include "workload/micro.h"

using namespace atrapos;
using namespace atrapos::bench;
using namespace atrapos::simengine;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 0.004);
  PrintHeader("fig05_scaling_atrapos",
              "Fig. 5 — Throughput of a perfectly partitionable workload");

  TablePrinter tp({"sockets", "extreme-SN", "coarse-SN", "ATraPos", "PLP"});
  for (int sockets : {1, 2, 4, 8}) {
    hw::Topology topo = TopoFor(sockets);
    auto spec = workload::ReadOneSpec(800000);

    SharedNothingOptions ext;
    ext.run.duration_s = duration;
    RunMetrics rext = RunSharedNothing(topo, sim::CostParams{}, spec, ext);

    SharedNothingOptions coarse = ext;
    coarse.per_socket_instances = true;
    RunMetrics rcoarse =
        RunSharedNothing(topo, sim::CostParams{}, spec, coarse);

    DoraOptions atr;
    atr.run.duration_s = duration;
    RunMetrics ratr = RunAtrapos(topo, sim::CostParams{}, spec, atr);

    DoraOptions plp;
    plp.run.duration_s = duration;
    RunMetrics rplp = RunPlp(topo, sim::CostParams{}, spec, plp);

    tp.AddRow({TablePrinter::Int(sockets), TablePrinter::Num(rext.mtps, 3),
               TablePrinter::Num(rcoarse.mtps, 3),
               TablePrinter::Num(ratr.mtps, 3),
               TablePrinter::Num(rplp.mtps, 3)});
  }
  tp.Print();
  return 0;
}
