// Transaction lifecycle tracing: fixed-size per-worker ring buffers of
// epoch-stamped trace events, written at the span boundaries
//
//   submit → inbox-publish → drain → action-execute → RVP-resolve →
//   commit-marker-append → durable-ack
//
// plus instants for repartition decisions and group-commit flushes.
// Tracing is toggled per Database::Options (obs::Registry::Options) and
// costs one relaxed atomic load when off — no clock read, no allocation.
//
// Each ring is single-writer (the owning worker/thread) and fixed-size:
// recording is three relaxed atomic stores plus a release head publish,
// and on overflow the oldest events are overwritten (total_recorded tracks
// how many were dropped). Readers collect concurrently with relaxed loads
// — a live dump is best-effort around the wrap point (slots being
// overwritten can carry a mix of old and new fields, never a data race);
// a quiescent dump (Drain() first) is exact.
//
// DumpChromeTrace serializes the merged rings as a chrome://tracing /
// Perfetto-loadable JSON array: the submit→durable-ack lifetime of each
// transaction is an async span keyed by txn id, worker-local work (drain
// batches, individual actions) are complete ("X") events with durations,
// and RVP resolution, marker appends, durable acks, and repartitions are
// instants.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace atrapos::obs {

enum class SpanId : uint8_t {
  kTxn = 0,           ///< async: submit (begin) → completion ack (end)
  kSubmitPublish,     ///< X on the client thread: stage-0 bucket + publish
  kDrain,             ///< X on a worker: one drained inbox batch
  kAction,            ///< X on a worker: one action body
  kRvpResolve,        ///< instant: stage finisher advanced the graph
  kCommitMarker,      ///< instant: worker appended this txn's marker
  kDurableAck,        ///< instant: commit ack (durable or append-fired)
  kRepartition,       ///< instant: AdaptiveManager applied a new scheme
  kLogFlush,          ///< X on the flusher: one group-commit pass
  // Wire tier: these carry the wire trace id (req id | 1<<62, see
  // server::WireTraceId) so a remote transaction's client-send →
  // durable-ack chain links up in one chrome dump.
  kClientSend,        ///< instant: client wrote the TXN request frame
  kWireDecode,        ///< instant: server decoded + admitted the request
  kWireAck,           ///< instant: server queued the response frame
  /// X on a worker: one action's warm pipeline, admission (first prefetch
  /// issued / first suspend) → last resume; arg = duration in ns. The
  /// suspend/resume lifecycle of interleaved execution — recorded at
  /// retirement, immediately before the body's kAction span.
  kInterleaveWarm,
  kCount
};
const char* SpanName(SpanId s);

enum class TracePhase : uint8_t {
  kBegin = 0,   ///< async begin ("b")
  kEnd,         ///< async end ("e")
  kInstant,     ///< instant ("i"); arg = small payload
  kComplete,    ///< complete ("X"); arg = duration in ns
};

/// One decoded event. `arg` is the duration in ns for kComplete spans and
/// a span-specific payload otherwise (batch size for kSubmitPublish /
/// kDrain instants, stage index for kRvpResolve, actions applied for
/// kRepartition).
struct TraceEvent {
  uint64_t ts_ns = 0;  ///< steady-clock ns since the registry's epoch
  uint64_t txn = 0;    ///< engine txn id (0 = not transaction-scoped)
  uint64_t arg = 0;
  SpanId span = SpanId::kTxn;
  TracePhase phase = TracePhase::kInstant;
  uint16_t shard = 0;  ///< writer shard ("tid" in the chrome dump)
};

/// Single-writer ring of trace events. All slot fields are relaxed
/// atomics so concurrent collection is race-free by construction.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit TraceRing(uint32_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Writer side (one thread). arg is packed to 48 bits.
  void Record(uint64_t ts_ns, SpanId span, TracePhase phase, uint64_t txn,
              uint64_t arg);

  /// Appends the ring's events (oldest first) to `out`, tagging them with
  /// `shard`. Returns the number of events ever recorded (so
  /// `recorded - min(recorded, capacity)` is the overwritten count).
  uint64_t Collect(uint16_t shard, std::vector<TraceEvent>* out) const;

  uint32_t capacity() const { return cap_; }
  uint64_t recorded() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    uint64_t n = recorded();
    return n > cap_ ? n - cap_ : 0;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> ts{0};
    std::atomic<uint64_t> txn{0};
    std::atomic<uint64_t> meta{0};  ///< arg:48 | span:8 | phase:8
  };

  uint32_t cap_;       // power of two
  uint32_t mask_;
  std::atomic<uint64_t> head_{0};
  std::unique_ptr<Slot[]> slots_;
};

/// Serializes events (any order; sorted internally by timestamp) as a
/// chrome://tracing JSON array. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      std::vector<TraceEvent> events);

}  // namespace atrapos::obs
