// Log-bucketed latency histograms — the single binning implementation the
// whole engine shares (paper §V-D: monitoring must be budgeted into every
// transaction, so the write side is one relaxed fetch_add per observation).
//
// Two flavors over the same power-of-two bucket layout:
//
//  - Histogram: plain counters. The single-writer/snapshot form — merged
//    views, bench reporting, and the former util::stats histogram (which
//    is now an alias of this class; the duplicate binning logic is gone).
//  - AtomicHistogram: one relaxed-atomic bin array per writer shard
//    (obs::Registry gives every worker its own), written with
//    release-ordered fetch_add on the hot path and read with acquire loads
//    at snapshot time, so a snapshot observes every observation that
//    happened-before it (the visibility-ordering fix PartitionMonitor's
//    bins needed). Snapshot() merges into a plain Histogram.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace atrapos::obs {

/// Power-of-two bucket boundaries: bucket 0 holds v == 0 and v == 1 lands
/// in bucket 1; bucket b (b >= 1) covers [2^(b-1), 2^b).
inline constexpr int kHistogramBuckets = 64;

int BucketOf(uint64_t v);
/// Inclusive lower bound of bucket `b`.
uint64_t BucketLo(int b);
/// Exclusive upper bound of bucket `b`.
uint64_t BucketHi(int b);

/// Fixed-bucket histogram with power-of-two bucket boundaries, suitable
/// for latency distributions. Records values in [0, 2^63). Not
/// thread-safe — this is the merged/snapshot form (see AtomicHistogram).
class Histogram {
 public:
  void Add(uint64_t v);
  uint64_t count() const { return total_; }
  /// Approximate quantile (q in [0,1]) assuming uniform density in-bucket.
  uint64_t Quantile(double q) const;
  uint64_t min() const { return total_ ? min_ : 0; }
  uint64_t max() const { return total_ ? max_ : 0; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  uint64_t bucket(int b) const { return buckets_[static_cast<size_t>(b)]; }
  void Merge(const Histogram& other);
  void Reset();
  std::string ToString() const;

 private:
  friend class AtomicHistogram;
  std::array<uint64_t, kHistogramBuckets> buckets_{};
  uint64_t total_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Concurrent histogram: any number of writers Record() with one
/// release-ordered fetch_add per bin touch; Snapshot() pairs with acquire
/// loads, so every Record that happened-before the snapshot is visible in
/// it. Between concurrent snapshots, counts are monotonically
/// non-decreasing (bins only grow; Reset is only legal quiescent).
class AtomicHistogram {
 public:
  AtomicHistogram() = default;
  AtomicHistogram(const AtomicHistogram&) = delete;
  AtomicHistogram& operator=(const AtomicHistogram&) = delete;

  void Record(uint64_t v);

  /// Merged plain view. Safe concurrently with writers: acquire-paired
  /// with Record's release adds; a racing Record may or may not be
  /// included, but never torn and never lost by a later snapshot.
  Histogram Snapshot() const;

  /// Folds this histogram into `out` (same acquire semantics).
  void MergeInto(Histogram* out) const;

  uint64_t count() const { return total_.load(std::memory_order_acquire); }

  /// Quiescent-only (writers stopped), like PartitionMonitor::Reset.
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

/// A release-add / acquire-read atomic double cell array: the bin storage
/// PartitionMonitor delegates to. fetch_add(release) on the write side and
/// acquire loads on the snapshot side form the visibility pair the old
/// all-relaxed bins lacked (a harvest could miss a cost update whose
/// action completion it had already observed).
class AtomicDoubleBins {
 public:
  explicit AtomicDoubleBins(size_t n) : bins_(n) {
    for (auto& b : bins_) b.store(0.0, std::memory_order_relaxed);
  }
  size_t size() const { return bins_.size(); }
  void Add(size_t i, double v) {
    bins_[i].fetch_add(v, std::memory_order_release);
  }
  double Read(size_t i) const {
    return bins_[i].load(std::memory_order_acquire);
  }
  void Reset() {
    for (auto& b : bins_) b.store(0.0, std::memory_order_release);
  }

 private:
  std::vector<std::atomic<double>> bins_;
};

/// Same pairing for integer bins.
class AtomicCountBins {
 public:
  explicit AtomicCountBins(size_t n) : bins_(n) {
    for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  }
  size_t size() const { return bins_.size(); }
  void Add(size_t i, uint64_t v = 1) {
    bins_[i].fetch_add(v, std::memory_order_release);
  }
  uint64_t Read(size_t i) const {
    return bins_[i].load(std::memory_order_acquire);
  }
  void Reset() {
    for (auto& b : bins_) b.store(0, std::memory_order_release);
  }

 private:
  std::vector<std::atomic<uint64_t>> bins_;
};

}  // namespace atrapos::obs
