// obs::Sampler — continuous time-series telemetry over the registry.
//
// A StatsSnapshot answers "what are the totals now"; every bench and
// fault drill instead wants "what happened over time" (the TPS dip and
// recovery of fig12, the stall/remote-miss timeline of a placement
// sweep). The sampler closes that gap: a background thread scrapes a
// snapshot provider at a fixed interval and appends one point per series
// into preallocated ring buffers — fixed capacity, keep-newest, zero
// steady-state allocation in the rings themselves (the scrape builds one
// bounded StatsSnapshot per tick).
//
// Built-in series are derived from the snapshot (txn counters, commit
// quantiles, queue depth, log bytes, remote-traffic ratio, trace drops,
// and — when perf is available — the per-island hardware counters).
// Benches add their own series with AddSeries (e.g. fig12's
// client-observed success count) and mark instants with Annotate (e.g.
// the island-kill moment); both surface in ToJson/ToCsv and over the
// wire via the STATS_SERIES opcode.
//
// Scheduling is by absolute deadline (epoch + k·interval): ticks never
// drift, and a stalled scrape skips the missed ticks (counted in
// ticks_missed) instead of bunching late samples. NextTickIndex exposes
// the schedule arithmetic pure, for the determinism tests; manual-tick
// mode (Options::start_thread=false + Tick()) makes tests fully
// deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace atrapos::obs {

class Sampler {
 public:
  struct Options {
    /// Used by Database::Options to decide whether to build a sampler at
    /// all; the sampler itself ignores it.
    bool enabled = false;
    /// Scrape period.
    uint64_t interval_ms = 100;
    /// Points per series ring (keep-newest past this).
    uint32_t capacity = 1024;
    /// False = no background thread; the owner drives Tick() manually
    /// (tests, single-shot scrapes). Start()/Stop() are then no-ops.
    bool start_thread = true;
  };

  using SnapshotFn = std::function<StatsSnapshot()>;
  /// One custom series' per-tick value (called on the sampler thread).
  using SeriesFn = std::function<double()>;

  /// Everything a consumer needs, copied out under the lock: one shared
  /// timestamp ring plus per-series value rings, all the same length and
  /// aligned index-by-index.
  struct Series {
    std::string name;
    std::vector<double> v;
  };
  struct Collected {
    uint64_t interval_ms = 0;
    uint64_t samples = 0;       ///< total ticks taken (>= t_ms.size())
    uint64_t ticks_missed = 0;  ///< deadlines skipped by stalled scrapes
    std::vector<uint64_t> t_ms;  ///< ms since sampler start, oldest first
    std::vector<Series> series;
    std::vector<std::pair<uint64_t, std::string>> annotations;
  };

  Sampler(SnapshotFn snapshot, Options opt);
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers a caller-owned series (call before Start; a series added
  /// after ticks were taken is zero-backfilled so all rings stay aligned).
  void AddSeries(std::string name, SeriesFn fn);

  /// Marks an instant (e.g. "island_kill") at the current elapsed time.
  /// Bounded: past kMaxAnnotations the oldest annotations win.
  void Annotate(std::string label);

  void Start();
  void Stop();

  /// Manual-tick mode: takes one sample stamped samples()·interval_ms
  /// (deterministic). Also usable with the thread stopped.
  void Tick();

  uint64_t samples() const { return samples_.load(std::memory_order_acquire); }
  uint64_t ticks_missed() const {
    return ticks_missed_.load(std::memory_order_acquire);
  }

  Collected Collect() const;
  /// {"interval_ms":..,"samples":..,"t_ms":[..],
  ///  "series":{"name":[..],..},"annotations":[{"t_ms":..,"label":".."}]}
  std::string ToJson() const;
  /// Header "t_ms,<series...>", one row per retained tick.
  std::string ToCsv() const;

  /// Index (1-based) of the next tick strictly after `now_ns` on the
  /// absolute-deadline schedule epoch + k·interval: a slow tick k
  /// resumes at this index, skipping — never bunching — missed
  /// deadlines, and deadline(k) − deadline(0) is exactly k·interval
  /// (no drift). Pure; exposed for the determinism tests.
  static uint64_t NextTickIndex(uint64_t epoch_ns, uint64_t now_ns,
                                uint64_t interval_ns) {
    if (interval_ns == 0) interval_ns = 1;
    if (now_ns <= epoch_ns) return 1;
    return (now_ns - epoch_ns) / interval_ns + 1;
  }

  static constexpr size_t kMaxAnnotations = 64;

 private:
  /// Fixed-capacity keep-newest ring; all rings advance together.
  struct Ring {
    explicit Ring(uint32_t cap) : buf(cap, 0.0) {}
    void Push(double x) { buf[count++ % buf.size()] = x; }
    std::vector<double> buf;
    uint64_t count = 0;
  };

  void TickAt(uint64_t t_ms);
  void Run();
  /// Oldest-first copy of a ring's retained points.
  static std::vector<double> Unwrap(const Ring& r);

  SnapshotFn snapshot_;
  Options opt_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> ticks_missed_{0};

  mutable std::mutex mu_;  // rings, names, custom series, annotations
  Ring ts_;                // t_ms per tick (stored as double, exact < 2^53)
  std::vector<std::string> names_;
  std::vector<Ring> values_;
  std::vector<std::pair<std::string, SeriesFn>> custom_;
  std::vector<std::pair<uint64_t, std::string>> annotations_;
  /// Built-in hw series are created on the first tick that sees
  /// hw_available (island count is unknown before the executor runs).
  /// The column set is fixed then — one column per (island, counter)
  /// pair, all islands × all counters — because workers open their perf
  /// groups asynchronously: a valid flag that flips on later must land
  /// in its own preassigned column, never shift its neighbors'.
  bool hw_series_added_ = false;
  std::vector<std::pair<size_t, size_t>> hw_cols_;  // (island, counter)

  /// Serializes Start/Stop whole-call (so two Stop()s — or Stop racing
  /// the destructor — can never both join thread_). running_ and
  /// thread_ are touched only under it.
  std::mutex lifecycle_mu_;
  bool running_ = false;
  std::thread thread_;

  std::mutex run_mu_;  // guards stop_, the run_cv_ predicate
  std::condition_variable run_cv_;
  bool stop_ = false;
};

}  // namespace atrapos::obs
