// obs::PerfCounters — hardware-counter profiling via perf_event_open(2).
//
// ATraPos's island argument is a *hardware* argument: the paper's Table 1
// numbers (and the whole "OLTP on Hardware Islands" study it builds on)
// come from cycles, stalled cycles, LLC misses, and local-vs-remote DRAM
// access counters — not from software accounting. mem::AllocStats charges
// logical touches; this class supplies the ground truth to check it
// against.
//
// Each engine worker opens one counter *group* on itself (pid=0, cpu=-1:
// this thread, any CPU — perf requires the measured thread to be the
// opener, which is why PartitionedExecutor opens inside WorkerLoop).
// A group schedules all its events on and off the PMU together, so
// ratios between siblings (stalls/cycles, remote/local DRAM) stay
// meaningful. Siblings that the PMU cannot host (e.g. the NODE cache
// events on many VMs) are skipped individually; the rest keep counting.
//
// Reads go through the fds, which is cross-thread safe: the snapshot
// source reads every worker's group from the snapshotting thread.
//
// Fallback: perf may be entirely unavailable (perf_event_paranoid,
// seccomp, containers, non-Linux). Available() probes once per process
// (EACCES/EPERM/ENOENT/ENOSYS/ENODEV → unavailable) and everything
// degrades to hw_available=false in StatsSnapshot — this is the CI path.
// ForceUnavailableForTest() pins the probe for the fallback tests.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace atrapos::obs {

/// The counter set of the hardware-island study, in fixed order.
enum class HwCounterId : uint8_t {
  kCycles = 0,          ///< PERF_COUNT_HW_CPU_CYCLES (group leader)
  kStalledBackend = 1,  ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND
  kLlcMisses = 2,       ///< LL cache read misses
  kNodeLocal = 3,       ///< NODE read accesses ≈ local-DRAM accesses
  kNodeRemote = 4,      ///< NODE read misses ≈ remote-DRAM accesses
  kCount = 5,
};

inline constexpr size_t kNumHwCounters =
    static_cast<size_t>(HwCounterId::kCount);

/// Metric-suffix name ("cycles", "node_local_dram", ...).
const char* HwCounterName(HwCounterId id);

/// Per-island (or per-thread) totals. valid[i] is false when that sibling
/// never opened anywhere it was aggregated from.
struct HwCounterValues {
  std::array<uint64_t, kNumHwCounters> v{};
  std::array<bool, kNumHwCounters> valid{};

  uint64_t operator[](HwCounterId id) const {
    return v[static_cast<size_t>(id)];
  }
  bool has(HwCounterId id) const { return valid[static_cast<size_t>(id)]; }
  void Accumulate(const HwCounterValues& o);
};

class PerfCounters {
 public:
  PerfCounters() = default;
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// One-shot process-wide capability probe, cached. False when the
  /// kernel/container refuses perf (or ForceUnavailableForTest is set).
  static bool Available();
  /// Test hook: true forces Available() to report false (and OpenForCurrentThread
  /// to refuse); false restores the real probe.
  static void ForceUnavailableForTest(bool forced);

  /// Opens the counter group on the *calling* thread. Returns true when
  /// at least the cycles leader opened; unopenable siblings are skipped.
  /// Call at most once, from the thread to be measured.
  bool OpenForCurrentThread();

  /// True once OpenForCurrentThread succeeded (acquire: values readable
  /// from any thread afterwards).
  bool open() const { return open_.load(std::memory_order_acquire); }

  /// Cross-thread read of the current totals. All-invalid when not open.
  HwCounterValues Read() const;

 private:
  std::array<int, kNumHwCounters> fd_{-1, -1, -1, -1, -1};
  std::atomic<bool> open_{false};
};

}  // namespace atrapos::obs
