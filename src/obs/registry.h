// obs::Registry — the unified observability substrate (ATraPos Table 2:
// monitoring is budgeted into every transaction and must stay ≪2%, so the
// hot path is one release-ordered fetch_add into a per-worker shard).
//
// Layout: the registry owns up to Options::max_shards metric shards; every
// thread that records is assigned its own shard on first use (workers,
// client submitters, and the group-commit flusher each get one;
// round-robin reuse past the cap). Writers touch only their shard —
// no cross-socket cache-line traffic on the record path, exactly the
// per-partition monitoring discipline of core::PartitionMonitor — and
// Snapshot() merges all shards with acquire loads, pairing with the
// writers' release adds so a snapshot observes everything that
// happened-before it. Counts are monotonically non-decreasing across
// snapshots.
//
// Three metric kinds:
//  - counters: shard-local fetch_add, summed at snapshot time
//  - gauges:   registry-global last-write cells (set on slow paths only:
//              flush passes, snapshot sources)
//  - latency histograms: obs::AtomicHistogram per shard, merged at
//              snapshot time (log-bucketed; quantiles on the merged view)
//
// Engine subsystems that own their own counters (PartitionedExecutor's
// executed-action count, log::LogManager's byte totals, mem::AllocStats'
// traffic matrix) are folded in at snapshot time through registered
// sources instead of double-counting on the hot path.
//
// Tracing (see trace.h) rides on the same shards: each shard owns a
// fixed-size TraceRing, toggled by SetTraceEnabled with one relaxed load
// when off.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace atrapos::obs {

enum class CounterId : uint16_t {
  kTxnSubmitted = 0,      ///< graphs accepted by Submit/SubmitBatch
  kTxnCommitted,          ///< futures completed OK
  kTxnAborted,            ///< futures completed with an error status
  kBatchesDrained,        ///< worker inbox drains (kDrainBatchSize sums tasks)
  kCommitMarkersAppended, ///< per-partition commit markers staged by workers
  kDurableAcks,           ///< commit acks delivered (group or async)
  kLogFlushes,            ///< group-commit passes over the shards
  kRepartitions,          ///< schemes applied by the adaptive manager
  // ---- wire tier (src/server/) -------------------------------------------
  kNetAccepts,            ///< connections accepted across all listeners
  kNetFramesIn,           ///< request frames decoded off sockets
  kNetFramesOut,          ///< response frames queued for write
  kNetBytesIn,            ///< request bytes read off sockets
  kNetBytesOut,           ///< response bytes written to sockets
  kNetTxnsShed,           ///< requests shed by admission control (OVERLOADED)
  kNetProtocolErrors,     ///< malformed/oversized frames, unknown opcodes
  // ---- fault tolerance (src/fault/, executor quarantine) ------------------
  kFaultIslandKills,      ///< islands fail-stopped (injected or KillIsland)
  kFaultPartitionsEvacuated, ///< partitions re-homed off a failed island
  kFaultTxnsUnavailable,  ///< actions failed kUnavailable by a quarantined worker
  // ---- interleaved execution (storage/interleave.h) -----------------------
  kInterleaveSuspensions, ///< warm-pipeline suspend/resume hops (flushed per batch)
  kCount
};
const char* CounterName(CounterId c);

enum class GaugeId : uint16_t {
  kQueueDepthTotal = 0,  ///< tasks published, not yet drained (all inboxes)
  kDurableLagEpochs,     ///< last commit epoch minus durable epoch watermark
  kNetOpenConnections,   ///< wire-tier connections currently open
  kNetInflightTxns,      ///< wire-tier requests submitted, response not queued
  kInterleaveDepth,      ///< configured in-flight actions per worker (1 = serial)
  kCount
};
const char* GaugeName(GaugeId g);

// Convention for the drain-shape histograms: kDrainBatchSize and
// kActionAvgUs are both recorded on the *action* basis — commit-marker
// tasks (durability fan-out, ActionTask::act == nullptr) are excluded
// from the size exactly as they are excluded from the per-action divisor,
// so marker-heavy group-commit batches cannot skew size against average.
// Marker traffic is visible separately via kCommitMarkersAppended.
enum class HistId : uint16_t {
  kCommitLatencyUs = 0,  ///< submit → completion ack, per transaction
  kDrainBatchUs,         ///< one drained inbox batch, per batch
  kDrainBatchSize,       ///< actions per drained batch (markers excluded)
  kActionAvgUs,          ///< batch-average per-action cost, per batch
  kSubmitPublishUs,      ///< stage-0 bucket + publish wave, per wave
  kLogFlushUs,           ///< one group-commit pass over all active shards
  kWireLatencyUs,        ///< wire txn: decode/submit → response queued
  kEvacuationUs,         ///< KillIsland: quarantine → repartitioned onto survivors
  kCount
};
const char* HistName(HistId h);

/// Rewrites `name` to satisfy the Prometheus metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every offending character with
/// '_' ("" becomes "_"). ToPrometheus routes every emitted name through
/// this, so the exposition can never go out of grammar even if a future
/// metric name slips in something illegal.
std::string SanitizeMetricName(const std::string& name);

inline constexpr size_t kNumCounters = static_cast<size_t>(CounterId::kCount);
inline constexpr size_t kNumGauges = static_cast<size_t>(GaugeId::kCount);
inline constexpr size_t kNumHists = static_cast<size_t>(HistId::kCount);

/// The merged, point-in-time view Database::StatsSnapshot() returns.
/// Counters/hists are merged from the shards; the engine-wired fields
/// below them are filled by registered sources (executor, log) and by
/// Database itself (memory traffic).
struct StatsSnapshot {
  uint64_t seq = 0;        ///< monotonically increasing snapshot number
  uint64_t uptime_ns = 0;  ///< since registry creation

  std::array<uint64_t, kNumCounters> counters{};
  std::array<int64_t, kNumGauges> gauges{};
  std::array<Histogram, kNumHists> hists;

  // ---- executor (source) --------------------------------------------------
  std::vector<uint64_t> queue_depths;  ///< per partition seq
  uint64_t executed_actions = 0;

  // ---- log (source) -------------------------------------------------------
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t durable_epoch = 0;
  uint64_t last_epoch = 0;
  uint64_t durable_lag_epochs = 0;

  // ---- wire tier (source, when a server::Server is running) --------------
  std::vector<uint64_t> net_island_accepts;  ///< accepted conns per island

  // ---- memory (Database) --------------------------------------------------
  double remote_traffic_ratio = 0.0;  ///< AccessRemoteRatio (QPI/IMC analogue)
  double alloc_remote_ratio = 0.0;
  uint64_t migrated_bytes = 0;

  // ---- fault injection (process-global fault::Injector, when armed) -------
  /// (site name, fires) per armed injection site with at least one
  /// evaluation; emitted as atrapos_fault_injected_total{site="..."}.
  std::vector<std::pair<std::string, uint64_t>> fault_site_fires;

  // ---- hardware counters (executor source; perf_event_open groups) --------
  /// True when perf was available and at least one worker opened its
  /// group. False is the clean fallback (containers, paranoid kernels,
  /// CI) — hw_islands stays empty and no atrapos_hw_* line is emitted.
  bool hw_available = false;
  /// Per-island totals (live workers + totals retired across
  /// Repartition/KillIsland, so values are monotone), indexed by island.
  std::vector<HwCounterValues> hw_islands;
  /// Remote fraction of measured DRAM accesses on one island: the
  /// hardware ground truth for remote_traffic_ratio. -1 when the NODE
  /// events were unavailable or nothing was measured.
  double hw_remote_dram_ratio(size_t island) const {
    if (island >= hw_islands.size()) return -1.0;
    const HwCounterValues& hv = hw_islands[island];
    if (!hv.has(HwCounterId::kNodeLocal) || !hv.has(HwCounterId::kNodeRemote))
      return -1.0;
    uint64_t total =
        hv[HwCounterId::kNodeLocal] + hv[HwCounterId::kNodeRemote];
    if (total == 0) return -1.0;
    return static_cast<double>(hv[HwCounterId::kNodeRemote]) /
           static_cast<double>(total);
  }

  // ---- tracing ------------------------------------------------------------
  uint64_t trace_events_recorded = 0;
  uint64_t trace_events_dropped = 0;
  /// Ring-overwrite loss per writer shard (keep-newest eviction), so span
  /// loss is attributable instead of silent. Empty until tracing was
  /// enabled at least once.
  std::vector<uint64_t> trace_dropped_per_shard;

  uint64_t counter(CounterId c) const {
    return counters[static_cast<size_t>(c)];
  }
  int64_t gauge(GaugeId g) const { return gauges[static_cast<size_t>(g)]; }
  const Histogram& hist(HistId h) const {
    return hists[static_cast<size_t>(h)];
  }
  /// Mean log bytes per committed transaction (0 when nothing committed).
  double log_bytes_per_commit() const {
    uint64_t c = counter(CounterId::kTxnCommitted);
    return c ? static_cast<double>(log_bytes) / static_cast<double>(c) : 0.0;
  }

  /// Prometheus text exposition (counters, gauges, histogram quantiles,
  /// per-partition queue depths, the memory/log wire-ins).
  std::string ToPrometheus() const;
};

class Registry {
 public:
  struct Options {
    /// Metric recording (counters/hists). Off = every Record is one
    /// relaxed load + branch, for the overhead A/B in
    /// bench/table2_monitoring_overhead.
    bool metrics = true;
    /// Transaction lifecycle tracing (off by default; also toggleable at
    /// runtime with SetTraceEnabled).
    bool trace = false;
    /// Events per shard ring (rounded up to a power of two). Rings are
    /// only allocated once tracing is first enabled.
    uint32_t trace_capacity = 1u << 13;
    /// Distinct writer shards before round-robin reuse.
    size_t max_shards = 64;
  };

  /// One writer's slice: counters + histograms + its trace ring. Stable
  /// address for the registry's lifetime.
  struct Shard {
    std::array<std::atomic<uint64_t>, kNumCounters> counters{};
    std::array<AtomicHistogram, kNumHists> hists;
    std::atomic<TraceRing*> ring{nullptr};
  };

  Registry() : Registry(Options{}) {}
  explicit Registry(Options opt);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool metrics_enabled() const {
    return metrics_on_.load(std::memory_order_relaxed);
  }
  bool trace_enabled() const {
    return trace_on_.load(std::memory_order_relaxed);
  }
  /// Enabling allocates the shard rings on first use (existing and future
  /// shards); disabling keeps recorded events for collection.
  void SetTraceEnabled(bool on);

  /// Steady-clock ns since the registry's creation (the trace epoch).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// The calling thread's shard (assigned round-robin on first use;
  /// cached thread-locally, so the steady-state cost is two thread-local
  /// reads and a compare).
  Shard& Local();

  // ---- hot-path recording -------------------------------------------------

  void Count(CounterId c, uint64_t n = 1) {
    if (!metrics_enabled()) return;
    Local().counters[static_cast<size_t>(c)].fetch_add(
        n, std::memory_order_release);
  }
  void RecordLatency(HistId h, uint64_t v) {
    if (!metrics_enabled()) return;
    Local().hists[static_cast<size_t>(h)].Record(v);
  }
  /// Gauges are registry-global, last-write-wins; callers are slow paths
  /// (flush passes, snapshot sources).
  void SetGauge(GaugeId g, int64_t v) {
    gauges_[static_cast<size_t>(g)].store(v, std::memory_order_release);
  }
  int64_t gauge(GaugeId g) const {
    return gauges_[static_cast<size_t>(g)].load(std::memory_order_acquire);
  }

  /// Trace-event record: one relaxed load when tracing is off.
  void Trace(SpanId span, TracePhase phase, uint64_t txn, uint64_t arg = 0) {
    if (!trace_enabled()) return;
    TraceSlow(span, phase, txn, arg);
  }

  // ---- snapshotting -------------------------------------------------------

  /// Fills engine-owned fields of a snapshot (queue depths, log totals).
  /// Runs on the snapshotting thread; keep it lock-light.
  using Source = std::function<void(StatsSnapshot&)>;
  int AddSource(Source src);
  /// Blocks until no in-flight Snapshot() can still call the removed
  /// source, so the caller may destroy the captured state immediately
  /// afterwards (the executor removes its source in its destructor).
  void RemoveSource(int id);

  /// Merges every shard (acquire-paired with the writers' release adds)
  /// and runs the registered sources. Safe concurrently with writers and
  /// with other snapshotters; counts never decrease between snapshots.
  StatsSnapshot Snapshot();

  /// All trace events currently held in the shard rings, merged (and the
  /// per-ring overflow accounting via recorded/dropped in Snapshot()).
  /// Exact when writers are quiescent; best-effort around a live ring's
  /// wrap point.
  std::vector<TraceEvent> CollectTrace() const;

  /// CollectTrace + chrome://tracing JSON serialization.
  bool DumpChromeTrace(const std::string& path) const;

  size_t num_shards() const;

 private:
  Shard& AssignShard();
  void TraceSlow(SpanId span, TracePhase phase, uint64_t txn, uint64_t arg);

  Options opt_;
  const uint64_t id_;  ///< process-unique, keys the thread-local cache
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> metrics_on_;
  std::atomic<bool> trace_on_;
  std::array<std::atomic<int64_t>, kNumGauges> gauges_{};
  std::atomic<uint64_t> snapshot_seq_{0};

  mutable std::mutex mu_;                        // shards + rings + sources
  std::vector<std::unique_ptr<Shard>> shards_;   // stable pointers
  std::vector<std::unique_ptr<TraceRing>> rings_;
  size_t next_shard_ = 0;
  std::vector<std::pair<int, Source>> sources_;
  int next_source_ = 0;
  /// Snapshots currently running copied sources outside mu_; RemoveSource
  /// waits for this to drain so removal implies no further calls.
  int sources_running_ = 0;  // guarded by mu_
  std::condition_variable sources_cv_;
};

}  // namespace atrapos::obs
