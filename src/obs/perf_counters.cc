#include "obs/perf_counters.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define ATRAPOS_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define ATRAPOS_HAVE_PERF 0
#endif

namespace atrapos::obs {

namespace {

// -1 = unprobed, 0 = unavailable, 1 = available.
std::atomic<int> g_probe{-1};
std::atomic<bool> g_forced_unavailable{false};

#if ATRAPOS_HAVE_PERF

int PerfOpen(perf_event_attr* attr, int group_fd) {
  // pid=0, cpu=-1: count this thread wherever it runs. Monitoring one's
  // own thread is the least privileged perf mode (allowed up to
  // perf_event_paranoid=2, the common default).
  return static_cast<int>(::syscall(SYS_perf_event_open, attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

perf_event_attr MakeAttr(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  // Kernel/hypervisor exclusion keeps the paranoid requirement low and
  // matches what the island study measures (user-space OLTP work).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return attr;
}

constexpr uint64_t CacheConfig(uint64_t cache, uint64_t op, uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

/// attr for each HwCounterId slot.
perf_event_attr AttrFor(HwCounterId id) {
  switch (id) {
    case HwCounterId::kCycles:
      return MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    case HwCounterId::kStalledBackend:
      return MakeAttr(PERF_TYPE_HARDWARE,
                      PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
    case HwCounterId::kLlcMisses:
      return MakeAttr(PERF_TYPE_HW_CACHE,
                      CacheConfig(PERF_COUNT_HW_CACHE_LL,
                                  PERF_COUNT_HW_CACHE_OP_READ,
                                  PERF_COUNT_HW_CACHE_RESULT_MISS));
    case HwCounterId::kNodeLocal:
      // NODE read *accesses*: requests satisfied by the local memory node.
      return MakeAttr(PERF_TYPE_HW_CACHE,
                      CacheConfig(PERF_COUNT_HW_CACHE_NODE,
                                  PERF_COUNT_HW_CACHE_OP_READ,
                                  PERF_COUNT_HW_CACHE_RESULT_ACCESS));
    case HwCounterId::kNodeRemote:
      // NODE read *misses*: requests that went to a remote node.
      return MakeAttr(PERF_TYPE_HW_CACHE,
                      CacheConfig(PERF_COUNT_HW_CACHE_NODE,
                                  PERF_COUNT_HW_CACHE_OP_READ,
                                  PERF_COUNT_HW_CACHE_RESULT_MISS));
    case HwCounterId::kCount:
      break;
  }
  return MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
}

bool ProbeOnce() {
  perf_event_attr attr = AttrFor(HwCounterId::kCycles);
  int fd = PerfOpen(&attr, -1);
  if (fd >= 0) {
    ::close(fd);
    return true;
  }
  // EACCES/EPERM: perf_event_paranoid or seccomp. ENOENT/ENODEV/EOPNOTSUPP:
  // no PMU (VMs). ENOSYS: kernel without perf. All mean "run the fallback";
  // so does anything else — a failed probe never degrades correctness.
  return false;
}

#endif  // ATRAPOS_HAVE_PERF

}  // namespace

const char* HwCounterName(HwCounterId id) {
  switch (id) {
    case HwCounterId::kCycles:
      return "cycles";
    case HwCounterId::kStalledBackend:
      return "stalled_cycles_backend";
    case HwCounterId::kLlcMisses:
      return "llc_misses";
    case HwCounterId::kNodeLocal:
      return "node_local_dram";
    case HwCounterId::kNodeRemote:
      return "node_remote_dram";
    case HwCounterId::kCount:
      break;
  }
  return "unknown";
}

void HwCounterValues::Accumulate(const HwCounterValues& o) {
  for (size_t i = 0; i < kNumHwCounters; ++i) {
    if (!o.valid[i]) continue;
    v[i] += o.v[i];
    valid[i] = true;
  }
}

bool PerfCounters::Available() {
  if (g_forced_unavailable.load(std::memory_order_acquire)) return false;
#if ATRAPOS_HAVE_PERF
  int p = g_probe.load(std::memory_order_acquire);
  if (p < 0) {
    p = ProbeOnce() ? 1 : 0;
    g_probe.store(p, std::memory_order_release);
  }
  return p == 1;
#else
  return false;
#endif
}

void PerfCounters::ForceUnavailableForTest(bool forced) {
  g_forced_unavailable.store(forced, std::memory_order_release);
}

PerfCounters::~PerfCounters() {
#if ATRAPOS_HAVE_PERF
  for (int fd : fd_)
    if (fd >= 0) ::close(fd);
#endif
}

bool PerfCounters::OpenForCurrentThread() {
  if (!Available()) return false;
#if ATRAPOS_HAVE_PERF
  perf_event_attr leader = AttrFor(HwCounterId::kCycles);
  int lead_fd = PerfOpen(&leader, -1);
  if (lead_fd < 0) return false;  // probe raced a policy change: fall back
  fd_[static_cast<size_t>(HwCounterId::kCycles)] = lead_fd;
  // Siblings join the leader's group so the PMU schedules them together;
  // each keeps its own fd (a plain 8-byte read returns that counter).
  for (size_t i = 1; i < kNumHwCounters; ++i) {
    perf_event_attr attr = AttrFor(static_cast<HwCounterId>(i));
    fd_[i] = PerfOpen(&attr, lead_fd);  // < 0 (e.g. no NODE events): skip
  }
  open_.store(true, std::memory_order_release);
  return true;
#else
  return false;
#endif
}

HwCounterValues PerfCounters::Read() const {
  HwCounterValues out;
  if (!open()) return out;
#if ATRAPOS_HAVE_PERF
  for (size_t i = 0; i < kNumHwCounters; ++i) {
    if (fd_[i] < 0) continue;
    uint64_t value = 0;
    if (::read(fd_[i], &value, sizeof(value)) == sizeof(value)) {
      out.v[i] = value;
      out.valid[i] = true;
    }
  }
#endif
  return out;
}

}  // namespace atrapos::obs
