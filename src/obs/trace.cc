#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace atrapos::obs {

const char* SpanName(SpanId s) {
  switch (s) {
    case SpanId::kTxn: return "txn";
    case SpanId::kSubmitPublish: return "submit_publish";
    case SpanId::kDrain: return "drain";
    case SpanId::kAction: return "action";
    case SpanId::kRvpResolve: return "rvp_resolve";
    case SpanId::kCommitMarker: return "commit_marker_append";
    case SpanId::kDurableAck: return "durable_ack";
    case SpanId::kRepartition: return "repartition";
    case SpanId::kLogFlush: return "log_flush";
    case SpanId::kClientSend: return "client_send";
    case SpanId::kWireDecode: return "wire_decode";
    case SpanId::kWireAck: return "wire_ack";
    case SpanId::kInterleaveWarm: return "interleave_warm";
    case SpanId::kCount: break;
  }
  return "?";
}

TraceRing::TraceRing(uint32_t capacity) {
  cap_ = std::bit_ceil(std::max<uint32_t>(capacity, 8));
  mask_ = cap_ - 1;
  slots_ = std::make_unique<Slot[]>(cap_);
}

void TraceRing::Record(uint64_t ts_ns, SpanId span, TracePhase phase,
                       uint64_t txn, uint64_t arg) {
  uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[h & mask_];
  s.ts.store(ts_ns, std::memory_order_relaxed);
  s.txn.store(txn, std::memory_order_relaxed);
  s.meta.store((arg << 16) | (static_cast<uint64_t>(span) << 8) |
                   static_cast<uint64_t>(phase),
               std::memory_order_relaxed);
  // Publish: a reader that observes this head sees the slot's fields.
  head_.store(h + 1, std::memory_order_release);
}

uint64_t TraceRing::Collect(uint16_t shard,
                            std::vector<TraceEvent>* out) const {
  uint64_t h = head_.load(std::memory_order_acquire);
  uint64_t n = std::min<uint64_t>(h, cap_);
  uint64_t first = h - n;  // oldest surviving event
  out->reserve(out->size() + n);
  for (uint64_t i = first; i < h; ++i) {
    const Slot& s = slots_[i & mask_];
    TraceEvent e;
    e.ts_ns = s.ts.load(std::memory_order_relaxed);
    e.txn = s.txn.load(std::memory_order_relaxed);
    uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.arg = meta >> 16;
    uint8_t span = static_cast<uint8_t>((meta >> 8) & 0xff);
    e.span = span < static_cast<uint8_t>(SpanId::kCount)
                 ? static_cast<SpanId>(span)
                 : SpanId::kTxn;
    e.phase = static_cast<TracePhase>(meta & 0x3);
    e.shard = shard;
    out->push_back(e);
  }
  return h;
}

bool WriteChromeTrace(const std::string& path,
                      std::vector<TraceEvent> events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
    return false;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  std::fputc('[', f);
  bool first = true;
  for (const TraceEvent& e : events) {
    // chrome://tracing wants microsecond timestamps; keep sub-us detail.
    double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    const char* name = SpanName(e.span);
    if (!first) std::fputc(',', f);
    first = false;
    std::fputc('\n', f);
    switch (e.phase) {
      case TracePhase::kBegin:
      case TracePhase::kEnd:
        std::fprintf(f,
                     "{\"name\":\"%s\",\"cat\":\"txn\",\"ph\":\"%s\","
                     "\"id\":%llu,\"pid\":1,\"tid\":%u,\"ts\":%.3f}",
                     name, e.phase == TracePhase::kBegin ? "b" : "e",
                     static_cast<unsigned long long>(e.txn), e.shard, ts_us);
        break;
      case TracePhase::kComplete: {
        double dur_us = static_cast<double>(e.arg) / 1000.0;
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                     "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"txn\":%llu}}",
                     name, e.shard, ts_us, dur_us,
                     static_cast<unsigned long long>(e.txn));
        break;
      }
      case TracePhase::kInstant:
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                     "\"tid\":%u,\"ts\":%.3f,\"args\":{\"txn\":%llu,"
                     "\"arg\":%llu}}",
                     name, e.shard, ts_us,
                     static_cast<unsigned long long>(e.txn),
                     static_cast<unsigned long long>(e.arg));
        break;
    }
  }
  std::fputs("\n]\n", f);
  std::fclose(f);
  return true;
}

}  // namespace atrapos::obs
