#include "obs/sampler.h"

#include <iterator>
#include <sstream>
#include <utility>

namespace atrapos::obs {

namespace {

/// The snapshot-derived series, in emission order. Kept cumulative where
/// the underlying metric is cumulative (consumers difference adjacent
/// points for rates — that way a ring that wraps still yields correct
/// rates everywhere it has data).
struct Builtin {
  const char* name;
  double (*get)(const StatsSnapshot&);
};

double Counter(const StatsSnapshot& s, CounterId c) {
  return static_cast<double>(s.counter(c));
}

constexpr Builtin kBuiltins[] = {
    {"txn_submitted",
     [](const StatsSnapshot& s) { return Counter(s, CounterId::kTxnSubmitted); }},
    {"txn_committed",
     [](const StatsSnapshot& s) { return Counter(s, CounterId::kTxnCommitted); }},
    {"txn_aborted",
     [](const StatsSnapshot& s) { return Counter(s, CounterId::kTxnAborted); }},
    {"durable_acks",
     [](const StatsSnapshot& s) { return Counter(s, CounterId::kDurableAcks); }},
    {"commit_p50_us",
     [](const StatsSnapshot& s) {
       return static_cast<double>(s.hist(HistId::kCommitLatencyUs).Quantile(0.5));
     }},
    {"commit_p99_us",
     [](const StatsSnapshot& s) {
       return static_cast<double>(
           s.hist(HistId::kCommitLatencyUs).Quantile(0.99));
     }},
    {"queue_depth_total",
     [](const StatsSnapshot& s) {
       return static_cast<double>(s.gauge(GaugeId::kQueueDepthTotal));
     }},
    {"net_inflight_txns",
     [](const StatsSnapshot& s) {
       return static_cast<double>(s.gauge(GaugeId::kNetInflightTxns));
     }},
    {"log_bytes",
     [](const StatsSnapshot& s) { return static_cast<double>(s.log_bytes); }},
    {"remote_traffic_ratio",
     [](const StatsSnapshot& s) { return s.remote_traffic_ratio; }},
    {"trace_dropped",
     [](const StatsSnapshot& s) {
       return static_cast<double>(s.trace_events_dropped);
     }},
};

void JsonEscapeTo(std::ostringstream& os, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    if (static_cast<unsigned char>(ch) < 0x20) continue;  // our strings: skip
    os << ch;
  }
}

}  // namespace

Sampler::Sampler(SnapshotFn snapshot, Options opt)
    : snapshot_(std::move(snapshot)),
      opt_(opt),
      epoch_(std::chrono::steady_clock::now()),
      ts_(opt.capacity == 0 ? 1 : opt.capacity) {
  if (opt_.capacity == 0) opt_.capacity = 1;
  for (const Builtin& b : kBuiltins) {
    names_.emplace_back(b.name);
    values_.emplace_back(opt_.capacity);
  }
}

Sampler::~Sampler() { Stop(); }

void Sampler::AddSeries(std::string name, SeriesFn fn) {
  std::lock_guard lk(mu_);
  // Column order is builtins, customs, hw — always, so insert before any
  // hw columns created meanwhile. Zero-backfilled (count matches) so
  // every ring keeps the same length and columns stay aligned.
  size_t pos = std::size(kBuiltins) + custom_.size();
  names_.insert(names_.begin() + static_cast<ptrdiff_t>(pos), name);
  Ring r(opt_.capacity);
  r.count = ts_.count;
  values_.insert(values_.begin() + static_cast<ptrdiff_t>(pos), std::move(r));
  custom_.emplace_back(std::move(name), std::move(fn));
}

void Sampler::Annotate(std::string label) {
  uint64_t t_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  std::lock_guard lk(mu_);
  if (annotations_.size() >= kMaxAnnotations) return;
  annotations_.emplace_back(t_ms, std::move(label));
}

void Sampler::Start() {
  if (!opt_.start_thread) return;
  std::lock_guard life(lifecycle_mu_);
  if (running_) return;
  {
    std::lock_guard lk(run_mu_);
    stop_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { Run(); });
}

void Sampler::Stop() {
  std::lock_guard life(lifecycle_mu_);
  if (!running_) return;
  {
    std::lock_guard lk(run_mu_);
    stop_ = true;
  }
  run_cv_.notify_all();
  thread_.join();
  running_ = false;
}

void Sampler::Tick() {
  TickAt(samples_.load(std::memory_order_relaxed) * opt_.interval_ms);
}

void Sampler::TickAt(uint64_t t_ms) {
  StatsSnapshot s = snapshot_();
  std::lock_guard lk(mu_);
  if (s.hw_available && !hw_series_added_) {
    // First sight of hardware counters: one ring per (island, counter)
    // pair — ALL islands × ALL counters, zero-backfilled, recorded in
    // hw_cols_. The island count (num_sockets) is final by now, but the
    // valid set can still grow (workers open perf groups asynchronously,
    // Repartition/KillIsland change which islands have open groups), so
    // columns must be preassigned: a pair that turns valid later fills
    // its own column instead of shifting its neighbors'. One-time
    // allocation, then steady state; never-valid pairs stay zero.
    for (size_t i = 0; i < s.hw_islands.size(); ++i) {
      for (size_t c = 0; c < kNumHwCounters; ++c) {
        names_.push_back("hw_" +
                         std::string(HwCounterName(static_cast<HwCounterId>(c))) +
                         "_island" + std::to_string(i));
        values_.emplace_back(opt_.capacity);
        values_.back().count = ts_.count;
        hw_cols_.emplace_back(i, c);
      }
    }
    hw_series_added_ = true;
  }
  ts_.Push(static_cast<double>(t_ms));
  size_t col = 0;
  for (const Builtin& b : kBuiltins) values_[col++].Push(b.get(s));
  for (auto& [name, fn] : custom_) values_[col++].Push(fn());
  // Hardware columns sit after the customs, exactly the hw_cols_ pairs
  // in creation order; a currently-invalid (or absent) pair reads 0.
  for (auto [i, c] : hw_cols_) {
    double v = (i < s.hw_islands.size() && s.hw_islands[i].valid[c])
                   ? static_cast<double>(s.hw_islands[i].v[c])
                   : 0.0;
    values_[col++].Push(v);
  }
  samples_.fetch_add(1, std::memory_order_release);
}

void Sampler::Run() {
  const auto interval = std::chrono::milliseconds(
      opt_.interval_ms == 0 ? 1 : opt_.interval_ms);
  const uint64_t interval_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(interval).count());
  uint64_t k = 0;
  std::unique_lock lk(run_mu_);
  while (!stop_) {
    auto deadline = epoch_ + (k + 1) * interval;
    if (run_cv_.wait_until(lk, deadline, [this] { return stop_; })) break;
    auto now = std::chrono::steady_clock::now();
    uint64_t now_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
            .count());
    // Absolute-deadline schedule: this wake consumes the last deadline
    // that has elapsed — deadline k+1 when on time (NextTickIndex points
    // at the next FUTURE index, so taken is one less), later after a
    // stalled scrape, whose skipped deadlines are counted instead of
    // firing a burst of stale ticks.
    uint64_t taken = NextTickIndex(0, now_ns, interval_ns) - 1;
    if (taken < k + 1) taken = k + 1;  // spurious-early wake: still tick k+1
    if (taken > k + 1)
      ticks_missed_.fetch_add(taken - (k + 1), std::memory_order_release);
    k = taken;
    lk.unlock();
    TickAt(now_ns / 1'000'000);
    lk.lock();
  }
}

std::vector<double> Sampler::Unwrap(const Ring& r) {
  std::vector<double> out;
  size_t cap = r.buf.size();
  size_t n = r.count < cap ? static_cast<size_t>(r.count) : cap;
  out.reserve(n);
  size_t start = r.count < cap ? 0 : static_cast<size_t>(r.count % cap);
  for (size_t i = 0; i < n; ++i) out.push_back(r.buf[(start + i) % cap]);
  return out;
}

Sampler::Collected Sampler::Collect() const {
  Collected out;
  out.interval_ms = opt_.interval_ms;
  out.samples = samples();
  out.ticks_missed = ticks_missed();
  std::lock_guard lk(mu_);
  for (double t : Unwrap(ts_)) out.t_ms.push_back(static_cast<uint64_t>(t));
  for (size_t i = 0; i < names_.size(); ++i)
    out.series.push_back({names_[i], Unwrap(values_[i])});
  out.annotations = annotations_;
  return out;
}

std::string Sampler::ToJson() const {
  Collected c = Collect();
  std::ostringstream os;
  os << "{\"interval_ms\":" << c.interval_ms << ",\"samples\":" << c.samples
     << ",\"ticks_missed\":" << c.ticks_missed << ",\"t_ms\":[";
  for (size_t i = 0; i < c.t_ms.size(); ++i)
    os << (i ? "," : "") << c.t_ms[i];
  os << "],\"series\":{";
  for (size_t s = 0; s < c.series.size(); ++s) {
    if (s) os << ",";
    os << "\"";
    JsonEscapeTo(os, c.series[s].name);
    os << "\":[";
    for (size_t i = 0; i < c.series[s].v.size(); ++i)
      os << (i ? "," : "") << c.series[s].v[i];
    os << "]";
  }
  os << "},\"annotations\":[";
  for (size_t a = 0; a < c.annotations.size(); ++a) {
    if (a) os << ",";
    os << "{\"t_ms\":" << c.annotations[a].first << ",\"label\":\"";
    JsonEscapeTo(os, c.annotations[a].second);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string Sampler::ToCsv() const {
  Collected c = Collect();
  std::ostringstream os;
  os << "t_ms";
  for (const Series& s : c.series) os << "," << s.name;
  os << "\n";
  for (size_t i = 0; i < c.t_ms.size(); ++i) {
    os << c.t_ms[i];
    for (const Series& s : c.series)
      os << "," << (i < s.v.size() ? s.v[i] : 0.0);
    os << "\n";
  }
  return os.str();
}

}  // namespace atrapos::obs
