#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace atrapos::obs {

int BucketOf(uint64_t v) {
  int b = v == 0 ? 0 : 64 - std::countl_zero(v);
  return b >= kHistogramBuckets ? kHistogramBuckets - 1 : b;
}

uint64_t BucketLo(int b) { return b == 0 ? 0 : (uint64_t{1} << (b - 1)); }

uint64_t BucketHi(int b) { return b == 0 ? 1 : (uint64_t{1} << b); }

void Histogram::Add(uint64_t v) {
  if (total_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++total_;
  sum_ += static_cast<double>(v);
  ++buckets_[static_cast<size_t>(BucketOf(v))];
}

uint64_t Histogram::Quantile(double q) const {
  if (total_ == 0) return 0;
  auto target = static_cast<uint64_t>(q * static_cast<double>(total_));
  if (target >= total_) target = total_ - 1;
  uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    uint64_t n = buckets_[static_cast<size_t>(b)];
    if (seen + n > target) {
      uint64_t lo = BucketLo(b);
      uint64_t hi = BucketHi(b);
      double frac = n == 0 ? 0.0
                           : static_cast<double>(target - seen) /
                                 static_cast<double>(n);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += n;
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
  for (int b = 0; b < kHistogramBuckets; ++b)
    buckets_[static_cast<size_t>(b)] += other.buckets_[static_cast<size_t>(b)];
}

void Histogram::Reset() {
  buckets_.fill(0);
  total_ = min_ = max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << total_ << " mean=" << mean() << " p50=" << Quantile(0.5)
     << " p99=" << Quantile(0.99) << " max=" << max();
  return os.str();
}

void AtomicHistogram::Record(uint64_t v) {
  buckets_[static_cast<size_t>(BucketOf(v))].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // min/max update only on a new extreme — zero steady-state cost.
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  // The release publish the snapshot's acquire load pairs with: every bin
  // write above happens-before a snapshot that observed this count.
  total_.fetch_add(1, std::memory_order_release);
}

void AtomicHistogram::MergeInto(Histogram* out) const {
  uint64_t total = total_.load(std::memory_order_acquire);
  if (total == 0) return;
  Histogram h;
  h.total_ = total;
  h.sum_ = static_cast<double>(sum_.load(std::memory_order_relaxed));
  h.min_ = min_.load(std::memory_order_relaxed);
  h.max_ = max_.load(std::memory_order_relaxed);
  uint64_t binned = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    h.buckets_[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    binned += h.buckets_[static_cast<size_t>(b)];
  }
  // Bins are written before the count publishes, so a concurrent snapshot
  // can observe bin increments whose count publish it missed — take the
  // larger so quantile mass is never dropped mid-flight.
  if (binned > h.total_) h.total_ = binned;
  if (h.min_ > h.max_) h.min_ = h.max_;  // racing first Record
  out->Merge(h);
}

Histogram AtomicHistogram::Snapshot() const {
  Histogram out;
  MergeInto(&out);
  return out;
}

void AtomicHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_release);
}

}  // namespace atrapos::obs
