#include "obs/registry.h"

#include <sstream>

#include "fault/injector.h"

namespace atrapos::obs {

const char* CounterName(CounterId c) {
  switch (c) {
    case CounterId::kTxnSubmitted: return "txn_submitted";
    case CounterId::kTxnCommitted: return "txn_committed";
    case CounterId::kTxnAborted: return "txn_aborted";
    case CounterId::kBatchesDrained: return "batches_drained";
    case CounterId::kCommitMarkersAppended: return "commit_markers_appended";
    case CounterId::kDurableAcks: return "durable_acks";
    case CounterId::kLogFlushes: return "log_flushes";
    case CounterId::kRepartitions: return "repartitions";
    case CounterId::kNetAccepts: return "net_accepts";
    case CounterId::kNetFramesIn: return "net_frames_in";
    case CounterId::kNetFramesOut: return "net_frames_out";
    case CounterId::kNetBytesIn: return "net_bytes_in";
    case CounterId::kNetBytesOut: return "net_bytes_out";
    case CounterId::kNetTxnsShed: return "net_txns_shed";
    case CounterId::kNetProtocolErrors: return "net_protocol_errors";
    case CounterId::kFaultIslandKills: return "fault_island_kills";
    case CounterId::kFaultPartitionsEvacuated:
      return "fault_partitions_evacuated";
    case CounterId::kFaultTxnsUnavailable: return "fault_txns_unavailable";
    case CounterId::kInterleaveSuspensions: return "interleave_suspensions";
    case CounterId::kCount: break;
  }
  return "?";
}

const char* CounterHelp(CounterId c) {
  switch (c) {
    case CounterId::kTxnSubmitted:
      return "Action graphs accepted by Submit/SubmitBatch.";
    case CounterId::kTxnCommitted: return "Futures completed OK.";
    case CounterId::kTxnAborted:
      return "Futures completed with an error status.";
    case CounterId::kBatchesDrained: return "Worker inbox drains.";
    case CounterId::kCommitMarkersAppended:
      return "Per-partition commit markers staged by workers.";
    case CounterId::kDurableAcks:
      return "Commit acks delivered (group or async durability).";
    case CounterId::kLogFlushes: return "Group-commit passes over the shards.";
    case CounterId::kRepartitions:
      return "Schemes applied by the adaptive manager.";
    case CounterId::kNetAccepts:
      return "Connections accepted across all listeners.";
    case CounterId::kNetFramesIn: return "Request frames decoded off sockets.";
    case CounterId::kNetFramesOut: return "Response frames queued for write.";
    case CounterId::kNetBytesIn: return "Request bytes read off sockets.";
    case CounterId::kNetBytesOut: return "Response bytes written to sockets.";
    case CounterId::kNetTxnsShed:
      return "Requests shed by admission control (OVERLOADED).";
    case CounterId::kNetProtocolErrors:
      return "Malformed or oversized frames and unknown opcodes.";
    case CounterId::kFaultIslandKills:
      return "Islands fail-stopped (injected or KillIsland).";
    case CounterId::kFaultPartitionsEvacuated:
      return "Partitions re-homed off a failed island.";
    case CounterId::kFaultTxnsUnavailable:
      return "Actions failed kUnavailable by a quarantined worker.";
    case CounterId::kInterleaveSuspensions:
      return "Warm-pipeline suspend/resume hops (interleaved execution).";
    case CounterId::kCount: break;
  }
  return "?";
}

const char* GaugeName(GaugeId g) {
  switch (g) {
    case GaugeId::kQueueDepthTotal: return "queue_depth_total";
    case GaugeId::kDurableLagEpochs: return "durable_lag_epochs";
    case GaugeId::kNetOpenConnections: return "net_open_connections";
    case GaugeId::kNetInflightTxns: return "net_inflight_txns";
    case GaugeId::kInterleaveDepth: return "interleave_depth";
    case GaugeId::kCount: break;
  }
  return "?";
}

const char* GaugeHelp(GaugeId g) {
  switch (g) {
    case GaugeId::kQueueDepthTotal:
      return "Tasks published but not yet drained, summed over all inboxes.";
    case GaugeId::kDurableLagEpochs:
      return "Last commit epoch minus the durable epoch watermark.";
    case GaugeId::kNetOpenConnections:
      return "Wire-tier connections currently open.";
    case GaugeId::kNetInflightTxns:
      return "Wire-tier requests submitted whose response is not yet queued.";
    case GaugeId::kInterleaveDepth:
      return "Configured in-flight actions per worker (1 = serial drain).";
    case GaugeId::kCount: break;
  }
  return "?";
}

const char* HistName(HistId h) {
  switch (h) {
    case HistId::kCommitLatencyUs: return "commit_latency_us";
    case HistId::kDrainBatchUs: return "drain_batch_us";
    case HistId::kDrainBatchSize: return "drain_batch_size";  // actions, not markers
    case HistId::kActionAvgUs: return "action_avg_us";
    case HistId::kSubmitPublishUs: return "submit_publish_us";
    case HistId::kLogFlushUs: return "log_flush_us";
    case HistId::kWireLatencyUs: return "wire_latency_us";
    case HistId::kEvacuationUs: return "evacuation_us";
    case HistId::kCount: break;
  }
  return "?";
}

const char* HistHelp(HistId h) {
  switch (h) {
    case HistId::kCommitLatencyUs:
      return "Submit to completion ack, per transaction.";
    case HistId::kDrainBatchUs: return "One drained inbox batch.";
    case HistId::kDrainBatchSize:
      return "Actions per drained batch (commit markers excluded, matching "
             "the action_avg_us basis).";
    case HistId::kActionAvgUs:
      return "Batch-average per-action cost, per batch.";
    case HistId::kSubmitPublishUs:
      return "Stage-0 bucket plus publish wave, per wave.";
    case HistId::kLogFlushUs:
      return "One group-commit pass over all active shards.";
    case HistId::kWireLatencyUs:
      return "Wire transaction: decode/submit to response queued.";
    case HistId::kEvacuationUs:
      return "KillIsland: quarantine to repartitioned onto survivors.";
    case HistId::kCount: break;
  }
  return "?";
}

namespace {
/// Monotonically increasing registry ids so a thread's cached shard can
/// never be mistaken for one belonging to a registry reallocated at the
/// same address.
std::atomic<uint64_t> g_next_registry_id{1};
}  // namespace

Registry::Registry(Options opt)
    : opt_(opt),
      id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      metrics_on_(opt.metrics),
      trace_on_(false) {
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  if (opt_.max_shards == 0) opt_.max_shards = 1;
  if (opt.trace) SetTraceEnabled(true);
}

Registry::~Registry() = default;

Registry::Shard& Registry::Local() {
  thread_local uint64_t cached_id = 0;
  thread_local Shard* cached = nullptr;
  if (cached_id != id_ || cached == nullptr) {
    cached = &AssignShard();
    cached_id = id_;
  }
  return *cached;
}

Registry::Shard& Registry::AssignShard() {
  std::lock_guard lk(mu_);
  size_t idx = next_shard_++;
  if (idx >= shards_.size() && shards_.size() < opt_.max_shards) {
    shards_.push_back(std::make_unique<Shard>());
    if (trace_on_.load(std::memory_order_relaxed)) {
      rings_.push_back(std::make_unique<TraceRing>(opt_.trace_capacity));
      shards_.back()->ring.store(rings_.back().get(),
                                 std::memory_order_release);
    }
    return *shards_.back();
  }
  return *shards_[idx % shards_.size()];
}

void Registry::SetTraceEnabled(bool on) {
  std::lock_guard lk(mu_);
  if (on) {
    // Late ring allocation: shards assigned while tracing was off get
    // their ring now; shards assigned later get one in AssignShard.
    for (auto& s : shards_) {
      if (s->ring.load(std::memory_order_relaxed) == nullptr) {
        rings_.push_back(std::make_unique<TraceRing>(opt_.trace_capacity));
        s->ring.store(rings_.back().get(), std::memory_order_release);
      }
    }
  }
  trace_on_.store(on, std::memory_order_release);
}

void Registry::TraceSlow(SpanId span, TracePhase phase, uint64_t txn,
                         uint64_t arg) {
  TraceRing* ring = Local().ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;  // shard predates enable; next enable fixes it
  ring->Record(NowNs(), span, phase, txn, arg);
}

int Registry::AddSource(Source src) {
  std::lock_guard lk(mu_);
  int id = next_source_++;
  sources_.emplace_back(id, std::move(src));
  return id;
}

void Registry::RemoveSource(int id) {
  std::unique_lock lk(mu_);
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].first == id) {
      sources_.erase(sources_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  // A concurrent Snapshot may have copied the source before the erase;
  // wait until every in-flight source pass finished so the caller can
  // free whatever the source captured.
  sources_cv_.wait(lk, [this] { return sources_running_ == 0; });
}

size_t Registry::num_shards() const {
  std::lock_guard lk(mu_);
  return shards_.size();
}

StatsSnapshot Registry::Snapshot() {
  StatsSnapshot out;
  out.seq = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  out.uptime_ns = NowNs();
  std::vector<std::pair<int, Source>> sources;
  {
    std::lock_guard lk(mu_);
    bool any_ring = false;
    for (const auto& s : shards_) {
      for (size_t c = 0; c < kNumCounters; ++c)
        out.counters[c] += s->counters[c].load(std::memory_order_acquire);
      for (size_t h = 0; h < kNumHists; ++h)
        s->hists[h].MergeInto(&out.hists[h]);
      uint64_t shard_dropped = 0;
      if (TraceRing* r = s->ring.load(std::memory_order_acquire)) {
        out.trace_events_recorded += r->recorded();
        out.trace_events_dropped += r->dropped();
        shard_dropped = r->dropped();
        any_ring = true;
      }
      out.trace_dropped_per_shard.push_back(shard_dropped);
    }
    if (!any_ring) out.trace_dropped_per_shard.clear();
    sources = sources_;
    ++sources_running_;
  }
  for (size_t g = 0; g < kNumGauges; ++g)
    out.gauges[g] = gauges_[g].load(std::memory_order_acquire);
  // Sources run outside mu_: they take their own subsystem locks (e.g.
  // the executor's scheme gate) and must not nest under the shard mutex.
  for (auto& [id, src] : sources) src(out);
  // Fault-injection sites record into the process-global injector (the mem
  // and log layers have no registry handle); fold the fires in here so
  // they surface as atrapos_fault_* like every other metric.
  if (fault::Injector* inj = fault::Get()) {
    for (size_t s = 0; s < fault::kNumSites; ++s) {
      auto site = static_cast<fault::SiteId>(s);
      if (inj->evaluations(site) == 0) continue;
      out.fault_site_fires.emplace_back(fault::SiteName(site),
                                        inj->fires(site));
    }
  }
  {
    std::lock_guard lk(mu_);
    --sources_running_;
  }
  sources_cv_.notify_all();
  return out;
}

std::vector<TraceEvent> Registry::CollectTrace() const {
  std::vector<TraceEvent> out;
  std::lock_guard lk(mu_);
  uint16_t shard = 0;
  for (const auto& s : shards_) {
    if (TraceRing* r = s->ring.load(std::memory_order_acquire))
      r->Collect(shard, &out);
    ++shard;
  }
  return out;
}

bool Registry::DumpChromeTrace(const std::string& path) const {
  return WriteChromeTrace(path, CollectTrace());
}

namespace {

bool MetricNameCharOk(char ch, bool first) {
  if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch == '_' ||
      ch == ':')
    return true;
  return !first && ch >= '0' && ch <= '9';
}

/// Emits one metric's # HELP / # TYPE header with the name forced into
/// grammar, and returns the sanitized name for the sample lines.
std::string EmitHeader(std::ostringstream& os, const std::string& name,
                       const char* type, const char* help) {
  std::string n = SanitizeMetricName(name);
  os << "# HELP " << n << " " << help << "\n";
  os << "# TYPE " << n << " " << type << "\n";
  return n;
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (size_t i = 0; i < out.size(); ++i)
    if (!MetricNameCharOk(out[i], i == 0)) out[i] = '_';
  return out;
}

std::string StatsSnapshot::ToPrometheus() const {
  std::ostringstream os;
  for (size_t c = 0; c < kNumCounters; ++c) {
    auto id = static_cast<CounterId>(c);
    std::string n = EmitHeader(os, std::string("atrapos_") + CounterName(id),
                               "counter", CounterHelp(id));
    os << n << " " << counters[c] << "\n";
  }
  for (size_t g = 0; g < kNumGauges; ++g) {
    auto id = static_cast<GaugeId>(g);
    std::string n = EmitHeader(os, std::string("atrapos_") + GaugeName(id),
                               "gauge", GaugeHelp(id));
    os << n << " " << gauges[g] << "\n";
  }
  for (size_t h = 0; h < kNumHists; ++h) {
    auto id = static_cast<HistId>(h);
    const Histogram& hist = hists[h];
    std::string n = EmitHeader(os, std::string("atrapos_") + HistName(id),
                               "summary", HistHelp(id));
    for (double q : {0.5, 0.95, 0.99}) {
      os << n << "{quantile=\"" << q << "\"} " << hist.Quantile(q) << "\n";
    }
    os << n << "_sum "
       << static_cast<uint64_t>(hist.mean() * static_cast<double>(hist.count()))
       << "\n";
    os << n << "_count " << hist.count() << "\n";
  }
  {
    std::string n = EmitHeader(os, "atrapos_queue_depth", "gauge",
                               "Published-but-undrained tasks per partition.");
    for (size_t p = 0; p < queue_depths.size(); ++p)
      os << n << "{partition=\"" << p << "\"} " << queue_depths[p] << "\n";
  }
  if (!net_island_accepts.empty()) {
    std::string n = EmitHeader(os, "atrapos_net_island_accepts", "counter",
                               "Connections accepted per island listener.");
    for (size_t i = 0; i < net_island_accepts.size(); ++i)
      os << n << "{island=\"" << i << "\"} " << net_island_accepts[i] << "\n";
  }
  if (!fault_site_fires.empty()) {
    std::string n = EmitHeader(os, "atrapos_fault_injected_total", "counter",
                               "Fault-injection fires per armed site.");
    for (const auto& [site, fires] : fault_site_fires)
      os << n << "{site=\"" << site << "\"} " << fires << "\n";
  }
  if (hw_available) {
    for (size_t c = 0; c < kNumHwCounters; ++c) {
      auto id = static_cast<HwCounterId>(c);
      std::string n =
          EmitHeader(os, std::string("atrapos_hw_") + HwCounterName(id),
                     "counter",
                     "perf_event_open hardware counter, summed per island.");
      for (size_t i = 0; i < hw_islands.size(); ++i) {
        if (!hw_islands[i].valid[c]) continue;
        os << n << "{island=\"" << i << "\"} " << hw_islands[i].v[c] << "\n";
      }
    }
    std::string n = EmitHeader(
        os, "atrapos_hw_remote_dram_ratio", "gauge",
        "Remote fraction of measured DRAM accesses per island (NODE "
        "events; hardware ground truth for atrapos_remote_traffic_ratio).");
    for (size_t i = 0; i < hw_islands.size(); ++i) {
      double r = hw_remote_dram_ratio(i);
      if (r >= 0.0) os << n << "{island=\"" << i << "\"} " << r << "\n";
    }
  }
  os << EmitHeader(os, "atrapos_executed_actions", "counter",
                   "Actions executed by partition workers.")
     << " " << executed_actions << "\n";
  os << EmitHeader(os, "atrapos_log_records", "counter",
                   "Records appended across all log shards.")
     << " " << log_records << "\n";
  os << EmitHeader(os, "atrapos_log_bytes", "counter",
                   "Bytes appended across all log shards.")
     << " " << log_bytes << "\n";
  os << EmitHeader(os, "atrapos_durable_epoch", "gauge",
                   "Distributed durable-point epoch watermark.")
     << " " << durable_epoch << "\n";
  os << EmitHeader(os, "atrapos_remote_traffic_ratio", "gauge",
                   "Software-accounted remote fraction of memory accesses.")
     << " " << remote_traffic_ratio << "\n";
  os << EmitHeader(os, "atrapos_alloc_remote_ratio", "gauge",
                   "Software-accounted remote fraction of allocations.")
     << " " << alloc_remote_ratio << "\n";
  os << EmitHeader(os, "atrapos_migrated_bytes", "counter",
                   "Bytes moved between islands by repartitioning.")
     << " " << migrated_bytes << "\n";
  os << EmitHeader(os, "atrapos_trace_events_recorded", "counter",
                   "Trace events recorded across all shard rings.")
     << " " << trace_events_recorded << "\n";
  {
    std::string n = EmitHeader(
        os, "atrapos_trace_dropped_total", "counter",
        "Trace events lost to keep-newest ring overwrite, per writer shard.");
    os << n << " " << trace_events_dropped << "\n";
    for (size_t sh = 0; sh < trace_dropped_per_shard.size(); ++sh)
      os << n << "{shard=\"" << sh << "\"} " << trace_dropped_per_shard[sh]
         << "\n";
  }
  return os.str();
}

}  // namespace atrapos::obs
