// Data-oriented execution engines: PLP and ATraPos (paper §III-A, §IV, §V).
//
// Both decompose transactions into actions routed to partition workers
// (each logical partition is pinned to a core; its multi-rooted B-tree
// subtree and lock table are accessed only by that worker). They differ in:
//
//   PLP      — system state is centralized: one global list of active
//              transactions (one CAS-hot cache line), one global volume
//              rwlock. Scales on one socket, convoys across sockets.
//   ATraPos  — per-socket transaction lists and partitioned rwlocks
//              (§IV), plus — when `adaptive` is set — the monitoring,
//              cost-model search and repartitioning machinery of §V.
#pragma once

#include "core/adaptive_controller.h"
#include "core/scheme.h"
#include "hw/topology.h"
#include "simengine/common.h"

namespace atrapos::simengine {

struct DoraOptions {
  RunOptions run;
  /// ATraPos §IV: per-socket transaction lists + partitioned volume lock.
  bool numa_aware_state = false;
  /// Record per-partition monitoring arrays (costs monitor_overhead/action).
  bool monitoring = false;
  /// Full ATraPos: monitor thread + cost model + repartitioning.
  bool adaptive = false;
  /// Initial partitioning/placement; empty => naive (one partition of each
  /// table per core).
  core::Scheme initial;
  /// Closed-loop client/dispatcher coroutines per core. More than one keeps
  /// partition workers saturated while a client waits on action completion.
  int drivers_per_core = 2;
  /// Adaptive-controller options (benches scale these for compressed
  /// timeline experiments).
  core::AdaptiveController::Options controller;
  /// Per-action monitoring cost in cycles (Table II's overhead source).
  Tick monitor_overhead = 350;
  /// Repartitioning action costs, simulated as machine pause time. The
  /// defaults mirror the real-storage measurements of bench/fig09.
  double split_ms = 1.6;
  double merge_ms = 1.2;
  double move_ms = 0.05;
  /// Cost model evaluation time charged to the monitoring thread.
  double decide_ms = 2.0;
  /// Thread context-switch penalty when a core's lease changes hands
  /// (drives oversaturation losses: Fig. 6 "HW-aware", Fig. 12 overload).
  Tick core_switch_cost = sim::UsToCycles(3);
  /// Inject a socket failure at this simulated time (Fig. 12); <0 = never.
  double fail_socket_at_s = -1.0;
  hw::SocketId fail_socket = 0;
};

RunMetrics RunDora(const hw::Topology& topo, const sim::CostParams& params,
                   const core::WorkloadSpec& spec, const DoraOptions& opt);

/// Convenience wrappers for the two named designs.
inline RunMetrics RunPlp(const hw::Topology& topo,
                         const sim::CostParams& params,
                         const core::WorkloadSpec& spec, DoraOptions opt) {
  opt.numa_aware_state = false;
  opt.adaptive = false;
  return RunDora(topo, params, spec, opt);
}

inline RunMetrics RunAtrapos(const hw::Topology& topo,
                             const sim::CostParams& params,
                             const core::WorkloadSpec& spec, DoraOptions opt) {
  opt.numa_aware_state = true;
  return RunDora(topo, params, spec, opt);
}

}  // namespace atrapos::simengine
