#include "simengine/dora.h"

#include <algorithm>
#include <memory>

#include "core/cost_model.h"
#include "core/monitor.h"
#include "core/repartitioner.h"
#include "core/search.h"
#include "sim/cache_line.h"
#include "sim/locks.h"
#include "sim/resource.h"

namespace atrapos::simengine {

namespace {

using core::ActionSpec;
using core::OpType;

sim::Tick WorkFor(const sim::CostParams& p, OpType op) {
  switch (op) {
    case OpType::kRead: return p.row_read_work;
    case OpType::kUpdate: return p.row_update_work;
    case OpType::kInsert: return p.row_insert_work;
    case OpType::kDelete: return p.row_update_work;
  }
  return p.row_read_work;
}

struct TxnState;

/// One routed action.
struct ActionMsg {
  TxnState* txn = nullptr;  ///< nullptr == stop sentinel for the worker
  uint64_t key = 0;
  uint64_t nrows = 1;
  OpType op = OpType::kRead;
  bool rendezvous = false;  ///< multi-action txn: join at the driver's line
  uint64_t sync_bytes = 0;  ///< data exchanged at the synchronization point
  /// Socket of the transaction's primary partition: sync-point data flows
  /// between the dependent partitions, so the exchange is free when they
  /// share a socket — the locality Algorithm 2 optimizes for.
  hw::SocketId sync_home = 0;
};

/// Per-driver transaction completion state (reused across its txns).
struct TxnState {
  int remaining = 0;
  std::coroutine_handle<> waiter;
  sim::Machine* mach = nullptr;
  std::unique_ptr<sim::CacheLine> rendezvous;  // homed at the driver's socket
  hw::SocketId driver_socket = 0;

  struct Awaiter {
    TxnState* st;
    bool await_ready() const noexcept {
      return st->remaining == 0 || !st->mach->running();
    }
    void await_suspend(std::coroutine_handle<> h) { st->waiter = h; }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{this}; }

  void Finish() {
    if (--remaining == 0 && waiter) {
      auto h = waiter;
      waiter = nullptr;
      mach->ResumeAt(mach->now(), h);
    }
  }
};

/// One logical partition: queue + worker + monitor, pinned to a core.
struct Partition {
  int table = 0;
  uint64_t key_lo = 0, key_hi = 0;
  hw::CoreId core = 0;
  hw::SocketId mem_socket = 0;  ///< where its memory was allocated
  std::unique_ptr<sim::SimQueue<ActionMsg>> queue;
  std::unique_ptr<core::PartitionMonitor> monitor;
};

/// Pause gate for repartitioning: drivers enter per transaction; the
/// repartitioner closes the gate and waits for in-flight work to drain.
struct Gate {
  sim::Machine* m = nullptr;
  bool closed = false;
  uint64_t in_flight = 0;
  std::deque<sim::Waiter> waiting;

  struct Awaiter {
    Gate* g;
    sim::Ctx* ctx;
    bool await_ready() const noexcept {
      return !g->closed || !g->m->running();
    }
    void await_suspend(std::coroutine_handle<> h) {
      g->waiting.push_back(sim::Waiter{h, ctx, g->m->now()});
    }
    void await_resume() const noexcept {}
  };
  Awaiter Enter(sim::Ctx& ctx) { return Awaiter{this, &ctx}; }
  void Open() {
    closed = false;
    while (!waiting.empty()) {
      auto w = waiting.front();
      waiting.pop_front();
      m->ResumeAt(m->now(), w.h);
    }
  }
};

struct Engine {
  sim::Machine* m = nullptr;
  hw::Topology* topo = nullptr;  // engine-owned mutable copy (Fig. 12)
  const core::WorkloadSpec* spec = nullptr;
  const DoraOptions* opt = nullptr;
  Tick end = 0;

  core::Scheme scheme;
  std::vector<std::vector<std::unique_ptr<Partition>>> parts;  // [table][p]
  std::vector<std::unique_ptr<Partition>> graveyard;  // keep drainers alive

  // System state structures. Besides the transaction list, Shore-MT's
  // begin/commit path touches further globally shared lines (transaction
  // object free-list, statistics); `aux` models them as one more hot line.
  std::unique_ptr<sim::CacheLine> global_txn_list;           // PLP
  std::unique_ptr<sim::CacheLine> global_aux;                // PLP
  std::vector<std::unique_ptr<sim::CacheLine>> socket_lists;  // ATraPos
  std::vector<std::unique_ptr<sim::CacheLine>> socket_aux;    // ATraPos
  std::unique_ptr<sim::SimRWLock> global_volume_lock;         // PLP
  std::unique_ptr<sim::PartitionedRWLock> part_volume_lock;   // ATraPos
  std::unique_ptr<sim::Resource> log;
  std::vector<std::unique_ptr<sim::SimMutex>> core_lease;  // per core
  std::vector<int> core_last_user;  // partition identity for switch cost

  Gate gate;
  /// Engine-owned per-driver transaction states: they must outlive the
  /// driver coroutine frames because queued actions and machine drainers
  /// reference them through shutdown.
  std::vector<std::unique_ptr<TxnState>> txn_states;
  std::vector<double> class_count;  // since last harvest (monitoring)
  int prev_available_cores = 0;
  RunMetrics* metrics = nullptr;
  std::vector<double> latest_weights;
  uint64_t next_partition_uid = 1;
};

sim::Task PartitionWorker(Engine& eng, Partition* part, int uid);

void BuildPartitions(Engine& eng) {
  auto& m = *eng.m;
  eng.parts.clear();
  eng.parts.resize(eng.spec->tables.size());
  for (size_t t = 0; t < eng.spec->tables.size(); ++t) {
    const core::TableScheme& ts = eng.scheme.tables[t];
    uint64_t rows = eng.spec->tables[t].num_rows;
    for (size_t pi = 0; pi < ts.num_partitions(); ++pi) {
      auto part = std::make_unique<Partition>();
      part->table = static_cast<int>(t);
      part->key_lo = ts.boundaries[pi];
      part->key_hi =
          pi + 1 < ts.num_partitions() ? ts.boundaries[pi + 1] : rows;
      part->core = ts.placement[pi];
      part->mem_socket = eng.topo->socket_of(part->core);
      part->queue = std::make_unique<sim::SimQueue<ActionMsg>>(
          &m, part->mem_socket);
      part->monitor = std::make_unique<core::PartitionMonitor>(
          part->key_lo, part->key_hi);
      PartitionWorker(eng, part.get(),
                      static_cast<int>(eng.next_partition_uid++));
      eng.parts[t].push_back(std::move(part));
    }
  }
}

void RetirePartitions(Engine& eng) {
  for (auto& tp : eng.parts) {
    for (auto& p : tp) {
      p->queue->Push(ActionMsg{});  // stop sentinel wakes the worker
      eng.graveyard.push_back(std::move(p));
    }
    tp.clear();
  }
}

sim::Task PartitionWorker(Engine& eng, Partition* part, int uid) {
  auto& m = *eng.m;
  const sim::CostParams& p = m.params();
  sim::Ctx ctx = m.MakeCtx(part->core);
  while (m.running()) {
    auto msg = co_await part->queue->Pop(ctx);
    if (!msg || msg->txn == nullptr) break;  // shutdown or stop sentinel

    // The partition may have been migrated (Fig. 12): always lease the
    // current core.
    hw::CoreId core = part->core;
    ctx = m.MakeCtx(core);
    auto& lease = *eng.core_lease[static_cast<size_t>(core)];
    co_await lease.Acquire(ctx);
    if (eng.core_last_user[static_cast<size_t>(core)] != uid) {
      eng.core_last_user[static_cast<size_t>(core)] = uid;
      co_await m.Compute(ctx, eng.opt->core_switch_cost);
    }

    Tick t0 = m.now();
    // Partition-local lock: no shared state (PLP's whole point).
    Tick tl = m.now();
    co_await m.Compute(ctx, p.local_lock_work);
    m.counters().breakdown().locking += m.now() - tl;

    Tick tx = m.now();
    co_await m.MemAccess(ctx, part->mem_socket, msg->nrows,
                         WorkFor(p, msg->op));
    m.counters().breakdown().xct_exec += m.now() - tx;

    if (eng.opt->monitoring) {
      co_await m.Compute(ctx, eng.opt->monitor_overhead);
      part->monitor->RecordAction(msg->key,
                                  static_cast<double>(m.now() - t0));
    }

    if (msg->rendezvous) {
      // Synchronization point: update the transaction's rendezvous line
      // (cross-socket when this partition is far from the driver) and ship
      // the exchanged data.
      Tick ts = m.now();
      co_await m.Compute(ctx, p.syncpoint_work);
      co_await msg->txn->rendezvous->Atomic(ctx);
      int hops = eng.topo->Distance(ctx.socket, msg->sync_home);
      if (hops > 0 && msg->sync_bytes > 0) {
        uint64_t lines = (msg->sync_bytes + 63) / 64;
        Tick xfer = lines * (p.cas_remote_base +
                             static_cast<Tick>(hops) * p.cas_remote_per_hop);
        co_await m.Stall(ctx, xfer);
        m.counters().AddQpiBytes(ctx.socket, msg->sync_home,
                                 msg->sync_bytes);
      }
      if (eng.opt->monitoring) part->monitor->RecordSync(msg->key);
      m.counters().breakdown().communication += m.now() - ts;
    }

    lease.Release();
    msg->txn->Finish();
  }
}

sim::Task Driver(Engine& eng, hw::CoreId core, TxnState& st, uint64_t seed) {
  auto& m = *eng.m;
  const sim::CostParams& p = m.params();
  sim::Ctx ctx = m.MakeCtx(core);
  Rng rng(seed);
  ClassPicker picker(eng.spec);

  while (m.running() && m.now() < eng.end) {
    co_await eng.gate.Enter(ctx);
    if (!m.running() || m.now() >= eng.end) break;
    ++eng.gate.in_flight;

    std::vector<double> weights;
    if (eng.opt->run.weights_fn) weights = eng.opt->run.weights_fn(m.now());
    int cls = picker.Pick(rng, eng.opt->run.weights_fn ? &weights : nullptr);
    const core::TxnClass& c = eng.spec->classes[static_cast<size_t>(cls)];

    // Dispatcher work happens on this core: lease it (released while the
    // transaction's actions execute on the partition workers).
    auto& lease = *eng.core_lease[static_cast<size_t>(ctx.core)];
    co_await lease.Acquire(ctx);

    // ---- begin: transaction list + volume lock ---------------------------
    Tick t0 = m.now();
    if (eng.opt->numa_aware_state) {
      co_await eng.socket_lists[static_cast<size_t>(ctx.socket)]->Atomic(ctx);
      co_await eng.socket_aux[static_cast<size_t>(ctx.socket)]->Atomic(ctx);
      co_await eng.part_volume_lock->AcquireRead(ctx);
      co_await eng.part_volume_lock->ReleaseRead(ctx);
    } else {
      co_await eng.global_txn_list->Atomic(ctx);
      co_await eng.global_aux->Atomic(ctx);
      co_await eng.global_volume_lock->Acquire(ctx, false);
      co_await eng.global_volume_lock->Release(ctx);
    }
    co_await m.Compute(ctx, p.txn_mgmt_work / 2);
    m.counters().breakdown().xct_mgmt += m.now() - t0;

    uint64_t routing =
        eng.opt->run.routing_fn
            ? eng.opt->run.routing_fn(rng, m.now(),
                                      eng.spec->tables[0].num_rows)
            : rng.Uniform(eng.spec->tables[0].num_rows
                              ? eng.spec->tables[0].num_rows
                              : 1);

    // ---- route actions ----------------------------------------------------
    struct Routed {
      Partition* part;
      ActionMsg msg;
    };
    std::vector<Routed> routed;
    bool wrote = false;
    uint64_t log_records = 0;
    for (const ActionSpec& a : c.actions) {
      int reps =
          static_cast<int>(rng.UniformRange(a.repeat_lo, a.repeat_hi));
      for (int r = 0; r < reps; ++r) {
        uint64_t rows_in_table =
            eng.spec->tables[static_cast<size_t>(a.table)].num_rows;
        uint64_t key = a.aligned
                           ? AlignKey(*eng.spec, a.table, routing)
                           : rng.Uniform(rows_in_table ? rows_in_table : 1);
        auto& ts = eng.scheme.tables[static_cast<size_t>(a.table)];
        size_t pi = ts.PartitionOf(key);
        ActionMsg msg;
        msg.txn = &st;
        msg.key = key;
        msg.nrows = static_cast<uint64_t>(a.rows < 1 ? 1 : a.rows);
        msg.op = a.op;
        if (a.op != OpType::kRead) {
          wrote = true;
          log_records += msg.nrows;
        }
        routed.push_back(
            Routed{eng.parts[static_cast<size_t>(a.table)][pi].get(), msg});
      }
    }
    bool multi = routed.size() > 1;
    uint64_t sync_bytes = 0;
    for (const auto& sp : c.sync_points) sync_bytes += sp.data_bytes;
    st.remaining = static_cast<int>(routed.size());

    hw::SocketId sync_home =
        routed.empty()
            ? ctx.socket
            : eng.topo->socket_of(routed.front().part->core);
    Tick tr = m.now();
    for (auto& r : routed) {
      r.msg.rendezvous = multi;
      r.msg.sync_home = sync_home;
      r.msg.sync_bytes =
          multi ? sync_bytes / (routed.size() ? routed.size() : 1) : 0;
      co_await m.Compute(ctx, p.action_route_work);
      co_await r.part->queue->line().Atomic(ctx);
      r.part->queue->Push(r.msg);
    }
    m.counters().breakdown().communication += m.now() - tr;

    // ---- wait for all actions (core yielded meanwhile) --------------------
    lease.Release();
    co_await st.Wait();
    co_await lease.Acquire(ctx);

    // ---- commit ------------------------------------------------------------
    if (wrote && m.running()) {
      Tick tg = m.now();
      // One consolidated log-buffer reservation per transaction (Aether
      // batches records); the force is a group commit: the driver waits for
      // the flush without occupying either the log or its core.
      co_await eng.log->Use(
          ctx, p.log_insert_service + log_records * p.log_insert_service / 8);
      lease.Release();
      co_await m.Delay(p.log_force_service);
      co_await lease.Acquire(ctx);
      m.counters().breakdown().logging += m.now() - tg;
    }
    Tick tc = m.now();
    if (eng.opt->numa_aware_state) {
      co_await eng.socket_lists[static_cast<size_t>(ctx.socket)]->Atomic(ctx);
      co_await eng.socket_aux[static_cast<size_t>(ctx.socket)]->Atomic(ctx);
    } else {
      co_await eng.global_txn_list->Atomic(ctx);
      co_await eng.global_aux->Atomic(ctx);
    }
    co_await m.Compute(ctx, p.txn_mgmt_work / 2);
    m.counters().breakdown().xct_mgmt += m.now() - tc;

    m.counters().AddCommit();
    eng.class_count[static_cast<size_t>(cls)] += 1.0;
    --eng.gate.in_flight;
    lease.Release();
  }
}

/// Harvests monitors into WorkloadStats and resets them.
core::WorkloadStats Harvest(Engine& eng, double window_s) {
  core::MonitorAggregator agg(eng.spec->tables.size(),
                              eng.spec->classes.size());
  for (size_t t = 0; t < eng.parts.size(); ++t) {
    for (auto& part : eng.parts[t]) {
      agg.AddPartition(static_cast<int>(t), *part->monitor);
      part->monitor->Reset();
    }
  }
  for (size_t c = 0; c < eng.class_count.size(); ++c) {
    agg.AddClassCount(static_cast<int>(c), eng.class_count[c]);
    eng.class_count[c] = 0.0;
  }
  return agg.Build(window_s);
}

/// The ATraPos monitoring thread (paper §V-D).
sim::Task MonitorThread(Engine& eng, core::AdaptiveController* controller) {
  auto& m = *eng.m;
  uint64_t last_committed = 0;
  // At startup the system runs the naive scheme with no trace information;
  // the first window with real traces triggers one unconditional evaluation
  // (paper §V-D, "Detecting changes").
  bool first_eval_done = false;
  // After a repartition, re-evaluate on the next window too: the previous
  // decision was made from traces polluted by the transition.
  bool post_repartition_check = false;
  while (m.running() && m.now() < eng.end) {
    double interval = controller->interval_s();
    co_await m.Delay(sim::SecToCycles(interval));
    if (!m.running() || m.now() >= eng.end) break;

    uint64_t cur = m.counters().committed();
    double tps = static_cast<double>(cur - last_committed) / interval;
    last_committed = cur;
    if (eng.metrics) {
      eng.metrics->interval_t.push_back(sim::CyclesToSec(m.now()));
      eng.metrics->interval_s.push_back(interval);
    }

    bool hw_changed =
        eng.topo->num_available_cores() != eng.prev_available_cores;
    auto action = controller->OnMeasurement(tps);
    if (action != core::AdaptiveController::Action::kEvaluate &&
        !hw_changed && first_eval_done && !post_repartition_check)
      continue;
    post_repartition_check = false;

    // ---- evaluate the cost model -----------------------------------------
    core::WorkloadStats stats = Harvest(eng, interval);
    core::MonitorAggregator::Coarsen(&stats);
    if (stats.TotalLoad() <= 0 && !hw_changed) {
      controller->OnEvaluatedNoChange();
      continue;
    }
    first_eval_done = true;
    co_await m.Delay(sim::MsToCycles(eng.opt->decide_ms));
    core::CostModel model(eng.topo, eng.spec);
    core::Scheme target = core::ChooseScheme(model, stats);
    auto plan = core::PlanRepartition(eng.scheme, target);
    // Hysteresis: repartition only when the model predicts a material
    // improvement (or the hardware changed and the old scheme references
    // dead cores).
    if (!hw_changed && !plan.empty()) {
      double ru_old = model.ResourceImbalance(eng.scheme, stats);
      double ru_new = model.ResourceImbalance(target, stats);
      double ts_old = model.SyncCost(eng.scheme, stats);
      double ts_new = model.SyncCost(target, stats);
      // Material improvement only: at least 15% relative AND 2% of total
      // load absolute, so an already-balanced scheme is left alone.
      double floor = 0.02 * stats.TotalLoad();
      bool better = ru_new < 0.85 * ru_old - floor ||
                    ts_new < 0.85 * ts_old - 1e-9;
      if (!better) plan.clear();
    }
    if (plan.empty()) {
      controller->OnEvaluatedNoChange();
      continue;
    }

    // ---- repartition: pause, apply, resume (paper §V-D) -------------------
    eng.gate.closed = true;
    while (eng.gate.in_flight > 0 && m.running()) {
      co_await m.Delay(sim::UsToCycles(20));
    }
    if (!m.running()) break;
    core::PlanSummary sum = core::Summarize(plan);
    double pause_ms = static_cast<double>(sum.splits) * eng.opt->split_ms +
                      static_cast<double>(sum.merges) * eng.opt->merge_ms +
                      static_cast<double>(sum.moves) * eng.opt->move_ms;
    co_await m.Delay(sim::MsToCycles(pause_ms));
    RetirePartitions(eng);
    eng.scheme = std::move(target);
    eng.prev_available_cores = eng.topo->num_available_cores();
    BuildPartitions(eng);
    eng.gate.Open();
    controller->OnRepartitioned();
    post_repartition_check = true;
    if (eng.metrics) ++eng.metrics->repartitions;
  }
}

/// Fig. 12: fail a socket at a given time; its partitions' workers are
/// rescheduled by the OS onto the next socket's cores (overloading them).
void InjectFailure(Engine& eng) {
  const DoraOptions& opt = *eng.opt;
  eng.m->At(sim::SecToCycles(opt.fail_socket_at_s), [&eng] {
    hw::SocketId failed = eng.opt->fail_socket;
    eng.topo->FailSocket(failed);
    hw::SocketId fallback =
        (failed + 1) % eng.topo->num_sockets();
    if (!eng.topo->IsSocketAlive(fallback)) fallback = 0;
    int cps = eng.topo->cores_per_socket();
    for (auto& tp : eng.parts) {
      for (auto& part : tp) {
        if (eng.topo->socket_of(part->core) == failed) {
          part->core = eng.topo->first_core(fallback) + part->core % cps;
          // Memory stays on the failed socket's node: DRAM outlives cores.
        }
      }
    }
    // The static scheme's placement is stale too; keep it consistent for
    // any later lookups.
    for (auto& ts : eng.scheme.tables)
      for (auto& c : ts.placement)
        if (eng.topo->socket_of(c) == failed)
          c = eng.topo->first_core(fallback) + c % cps;
  });
}

}  // namespace

RunMetrics RunDora(const hw::Topology& topo, const sim::CostParams& params,
                   const core::WorkloadSpec& spec, const DoraOptions& opt) {
  hw::Topology topo_copy = topo;  // engine may fail sockets (Fig. 12)
  sim::Machine m(topo_copy, params);

  Engine eng;
  eng.m = &m;
  eng.topo = &topo_copy;
  eng.spec = &spec;
  eng.opt = &opt;
  eng.end = sim::SecToCycles(opt.run.duration_s);
  eng.gate.m = &m;
  eng.class_count.assign(spec.classes.size(), 0.0);
  eng.prev_available_cores = topo_copy.num_available_cores();

  // System state structures.
  eng.global_txn_list = std::make_unique<sim::CacheLine>(&m, 0);
  eng.global_aux = std::make_unique<sim::CacheLine>(&m, 0);
  eng.global_volume_lock = std::make_unique<sim::SimRWLock>(&m, 0);
  for (int s = 0; s < topo_copy.num_sockets(); ++s) {
    eng.socket_lists.push_back(std::make_unique<sim::CacheLine>(&m, s));
    eng.socket_aux.push_back(std::make_unique<sim::CacheLine>(&m, s));
  }
  eng.part_volume_lock = std::make_unique<sim::PartitionedRWLock>(&m);
  // Aether-style consolidated log buffer: one-line handoffs.
  eng.log = std::make_unique<sim::Resource>(&m, 0, /*spin=*/true,
                                            /*handoff_lines=*/1);
  for (hw::CoreId c = 0; c < topo_copy.num_cores(); ++c) {
    eng.core_lease.push_back(std::make_unique<sim::SimMutex>(&m));
    eng.core_last_user.push_back(-1);
  }

  // Initial scheme: supplied or naive (§IV).
  if (!opt.initial.tables.empty()) {
    eng.scheme = opt.initial;
  } else {
    std::vector<uint64_t> rows;
    for (const auto& t : spec.tables) rows.push_back(t.num_rows);
    eng.scheme = core::NaiveScheme(topo_copy, rows);
  }
  BuildPartitions(eng);

  RunMetrics metrics;
  eng.metrics = &metrics;

  // Client/dispatcher coroutines per available core.
  auto cores = topo_copy.AvailableCores();
  int dpc = std::max(1, opt.drivers_per_core);
  for (size_t i = 0; i < cores.size(); ++i) {
    for (int d = 0; d < dpc; ++d) {
      auto st = std::make_unique<TxnState>();
      st->mach = &m;
      st->driver_socket = topo_copy.socket_of(cores[i]);
      st->rendezvous =
          std::make_unique<sim::CacheLine>(&m, st->driver_socket);
      TxnState* st_raw = st.get();
      m.RegisterDrainer([st_raw] {
        if (st_raw->waiter) {
          auto h = st_raw->waiter;
          st_raw->waiter = nullptr;
          h.resume();
        }
      });
      eng.txn_states.push_back(std::move(st));
      Driver(eng, cores[i], *st_raw,
             opt.run.seed * 131 + i * 7 + static_cast<size_t>(d) * 7919);
    }
  }

  core::AdaptiveController controller(opt.controller);
  if (opt.adaptive) MonitorThread(eng, &controller);
  if (opt.run.sample_interval_s > 0)
    Sampler(m, sim::SecToCycles(opt.run.sample_interval_s), eng.end,
            &metrics);
  if (opt.fail_socket_at_s >= 0) InjectFailure(eng);

  m.RunUntil(eng.end);
  Tick elapsed = m.now();
  m.Shutdown();
  FinalizeMetrics(m, elapsed, static_cast<int>(cores.size()), &metrics);
  return metrics;
}

}  // namespace atrapos::simengine
