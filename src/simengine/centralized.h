// Centralized shared-everything engine (paper §III-A): one instance using
// all cores; every transaction goes through the centralized lock manager,
// the global list of active transactions, the volume read/write lock, and
// the shared log — exactly the structures whose contention the paper blames.
#pragma once

#include "hw/topology.h"
#include "simengine/common.h"

namespace atrapos::simengine {

struct CentralizedOptions {
  RunOptions run;
};

RunMetrics RunCentralized(const hw::Topology& topo,
                          const sim::CostParams& params,
                          const core::WorkloadSpec& spec,
                          const CentralizedOptions& opt);

}  // namespace atrapos::simengine
