#include "simengine/common.h"

namespace atrapos::simengine {

void FinalizeMetrics(const sim::Machine& m, Tick elapsed, int active_cores,
                     RunMetrics* metrics) {
  const sim::Counters& c = m.counters();
  metrics->committed = c.committed();
  metrics->seconds = sim::CyclesToSec(elapsed);
  metrics->tps =
      metrics->seconds > 0 ? static_cast<double>(c.committed()) / metrics->seconds : 0;
  metrics->mtps = metrics->tps / 1e6;
  metrics->ipc = c.Ipc(elapsed, active_cores);
  metrics->qpi_imc_ratio = c.QpiImcRatio();
  metrics->breakdown = c.breakdown();
  if (c.committed() > 0)
    metrics->avg_txn_us = sim::CyclesToUs(c.breakdown().total()) /
                          static_cast<double>(c.committed());
  // Interconnect utilization: bytes / time vs a 25.6 GB/s QPI link.
  double secs = metrics->seconds;
  if (secs > 0) {
    metrics->qpi_gbps =
        static_cast<double>(c.total_qpi_bytes()) * 8.0 / secs / 1e9;
    uint64_t busiest = 0;
    for (size_t l = 0; l < c.num_links(); ++l)
      busiest = std::max(busiest, c.link_bytes(l));
    metrics->max_link_util =
        static_cast<double>(busiest) / secs / (25.6e9 / 8.0);
  }
}

sim::Task Sampler(sim::Machine& m, Tick interval, Tick end,
                  RunMetrics* metrics) {
  uint64_t last = 0;
  while (m.running() && m.now() < end) {
    co_await m.Delay(interval);
    uint64_t cur = m.counters().committed();
    metrics->timeline_t.push_back(sim::CyclesToSec(m.now()));
    metrics->timeline_tps.push_back(
        static_cast<double>(cur - last) / sim::CyclesToSec(interval));
    last = cur;
  }
}

}  // namespace atrapos::simengine
