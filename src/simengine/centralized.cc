#include "simengine/centralized.h"

#include <memory>

#include "sim/cache_line.h"
#include "sim/locks.h"
#include "sim/resource.h"

namespace atrapos::simengine {

namespace {

using core::ActionSpec;
using core::OpType;

/// Shared state of the centralized instance.
struct Shared {
  Shared(sim::Machine* m, const core::WorkloadSpec* /*spec*/)
      : txn_list(m, 0),
        volume_lock(m, 0),
        table_lock_mutex(m, 0, /*spin_wait=*/true),
        log(m, 0, /*spin_wait=*/true) {
    // One row-lock hash bucket per 8 cores keeps row-lock buckets off the
    // critical path; the table-level intent-lock mutex stays singular —
    // Shore-MT's actual hot spot.
    int buckets = std::max(8, m->topology().num_cores() / 2);
    for (int b = 0; b < buckets; ++b)
      row_buckets.push_back(std::make_unique<sim::Resource>(m, 0, true));
  }
  sim::CacheLine txn_list;
  sim::SimRWLock volume_lock;
  sim::Resource table_lock_mutex;
  std::vector<std::unique_ptr<sim::Resource>> row_buckets;
  sim::Resource log;
  const std::vector<double>* weights = nullptr;
};

sim::Tick WorkFor(const sim::CostParams& p, OpType op) {
  switch (op) {
    case OpType::kRead: return p.row_read_work;
    case OpType::kUpdate: return p.row_update_work;
    case OpType::kInsert: return p.row_insert_work;
    case OpType::kDelete: return p.row_update_work;
  }
  return p.row_read_work;
}

sim::Task Worker(sim::Machine& m, sim::Ctx ctx, Shared& sh,
                 const core::WorkloadSpec& spec, const RunOptions& run,
                 Tick end, uint64_t seed) {
  Rng rng(seed);
  ClassPicker picker(&spec);
  const sim::CostParams& p = m.params();
  int nsockets = m.topology().num_sockets();

  while (m.running() && m.now() < end) {
    std::vector<double> weights;
    if (run.weights_fn) weights = run.weights_fn(m.now());
    int cls = picker.Pick(rng, run.weights_fn ? &weights : nullptr);
    const core::TxnClass& c = spec.classes[static_cast<size_t>(cls)];

    // ---- begin: volume lock (shared) + global transaction list ----------
    Tick t0 = m.now();
    co_await sh.volume_lock.Acquire(ctx, false);
    co_await sh.volume_lock.Release(ctx);
    co_await sh.txn_list.Atomic(ctx);
    // The centralized code path carries heavier bookkeeping than the
    // partitioned designs (latching, global statistics).
    co_await m.Compute(ctx, p.txn_mgmt_work * 2);
    m.counters().breakdown().xct_mgmt += m.now() - t0;

    bool wrote = false;
    uint64_t routing =
        run.routing_fn
            ? run.routing_fn(rng, m.now(), spec.tables[0].num_rows)
            : rng.Uniform(spec.tables[0].num_rows ? spec.tables[0].num_rows
                                                  : 1);

    for (const ActionSpec& a : c.actions) {
      int reps = static_cast<int>(
          rng.UniformRange(a.repeat_lo, a.repeat_hi));
      for (int r = 0; r < reps; ++r) {
        uint64_t rows_in_table =
            spec.tables[static_cast<size_t>(a.table)].num_rows;
        uint64_t key = a.aligned
                           ? AlignKey(spec, a.table, routing)
                           : rng.Uniform(rows_in_table ? rows_in_table : 1);
        auto nrows = static_cast<uint64_t>(a.rows < 1 ? 1 : a.rows);

        // ---- locking: table intent lock + row locks ----------------------
        Tick tl = m.now();
        co_await sh.table_lock_mutex.Use(ctx, p.lockmgr_service);
        size_t bucket = (key * 0x9e3779b97f4a7c15ULL) % sh.row_buckets.size();
        co_await sh.row_buckets[bucket]->Use(ctx, p.lockmgr_service / 4);
        m.counters().breakdown().locking += m.now() - tl;

        // ---- execution: buffer pool pages striped over NUMA nodes --------
        Tick tx = m.now();
        auto home = static_cast<hw::SocketId>(
            rows_in_table ? key * static_cast<uint64_t>(nsockets) /
                                rows_in_table
                          : 0);
        if (home >= nsockets) home = nsockets - 1;
        co_await m.MemAccess(ctx, home, nrows, WorkFor(p, a.op));
        m.counters().breakdown().xct_exec += m.now() - tx;

        // ---- logging ------------------------------------------------------
        if (a.op != OpType::kRead) {
          wrote = true;
          Tick tg = m.now();
          co_await sh.log.Use(ctx, p.log_insert_service * nrows);
          m.counters().breakdown().logging += m.now() - tg;
        }
      }
    }

    // ---- commit ----------------------------------------------------------
    if (wrote) {
      Tick tg = m.now();
      co_await sh.log.Use(ctx, p.log_force_service);
      m.counters().breakdown().logging += m.now() - tg;
    }
    Tick tc = m.now();
    co_await sh.txn_list.Atomic(ctx);
    co_await m.Compute(ctx, p.txn_mgmt_work / 2);
    m.counters().breakdown().xct_mgmt += m.now() - tc;
    m.counters().AddCommit();
  }
}

}  // namespace

RunMetrics RunCentralized(const hw::Topology& topo,
                          const sim::CostParams& params,
                          const core::WorkloadSpec& spec,
                          const CentralizedOptions& opt) {
  sim::Machine m(topo, params);
  Shared sh(&m, &spec);
  Tick end = sim::SecToCycles(opt.run.duration_s);

  RunMetrics metrics;
  auto cores = topo.AvailableCores();
  for (size_t i = 0; i < cores.size(); ++i) {
    sim::Ctx ctx = m.MakeCtx(cores[i]);
    Worker(m, ctx, sh, spec, opt.run, end, opt.run.seed * 7919 + i);
  }
  if (opt.run.sample_interval_s > 0)
    Sampler(m, sim::SecToCycles(opt.run.sample_interval_s), end, &metrics);

  m.RunUntil(end);
  Tick elapsed = m.now();
  m.Shutdown();
  FinalizeMetrics(m, elapsed, static_cast<int>(cores.size()), &metrics);
  return metrics;
}

}  // namespace atrapos::simengine
