#include "simengine/shared_nothing.h"

#include <algorithm>
#include <map>
#include <memory>

#include "sim/cache_line.h"
#include "sim/channel.h"
#include "sim/locks.h"
#include "sim/resource.h"

namespace atrapos::simengine {

namespace {

using core::ActionSpec;
using core::OpType;

enum MsgKind : int { kReq = 1, kVote = 2, kCommit = 3 };

/// One database instance: socket-local structures plus a request mailbox.
struct Instance {
  int id;
  hw::SocketId socket;
  hw::SocketId mem_node;
  uint64_t key_lo, key_hi;  // slice of the (single) table
  std::unique_ptr<sim::CacheLine> txn_list;
  std::unique_ptr<sim::Resource> log;
  std::vector<std::unique_ptr<sim::Resource>> lock_buckets;
  std::unique_ptr<sim::Channel> req;
  uint64_t committed = 0;
};

struct Cluster {
  std::vector<std::unique_ptr<Instance>> instances;
  std::vector<std::unique_ptr<sim::Channel>> reply;  // per core
  // Per-core lease: the driver and the 2PC participant server of a core
  // time-share it, so remote work displaces local progress (a participant
  // instance is genuinely busy while serving sub-transactions).
  std::vector<std::unique_ptr<sim::SimMutex>> lease;
  uint64_t table_rows = 0;

  size_t InstanceOf(uint64_t key) const {
    size_t n = instances.size();
    size_t i = static_cast<size_t>(
        static_cast<unsigned __int128>(key) * n / (table_rows ? table_rows : 1));
    return i >= n ? n - 1 : i;
  }
};

sim::Tick WorkFor(const sim::CostParams& p, OpType op) {
  switch (op) {
    case OpType::kRead: return p.row_read_work;
    case OpType::kUpdate: return p.row_update_work;
    case OpType::kInsert: return p.row_insert_work;
    case OpType::kDelete: return p.row_update_work;
  }
  return p.row_read_work;
}

/// Executes `nrows` rows locally inside `inst` (lock + access + log insert).
/// `dist` marks rows belonging to a distributed transaction (extra lock
/// bookkeeping). Accounts breakdown slices.
sim::Task ServeLoop(sim::Machine& m, sim::Ctx ctx, Cluster& cl, Instance& inst,
                    const SharedNothingOptions& /*opt*/, OpType op) {
  const sim::CostParams& p = m.params();
  while (m.running()) {
    auto msg = co_await inst.req->Recv(ctx);
    if (!msg) break;
    auto& lease = *cl.lease[static_cast<size_t>(ctx.core)];
    co_await lease.Acquire(ctx);
    if (msg->kind == kReq) {
      uint64_t nrows = msg->a;
      // Locking with 2PC bookkeeping.
      Tick tl = m.now();
      size_t bucket = msg->b % inst.lock_buckets.size();
      co_await inst.lock_buckets[bucket]->Use(
          ctx, static_cast<Tick>(static_cast<double>(p.lockmgr_service) *
                                 p.dist_lock_factor));
      m.counters().breakdown().locking += m.now() - tl;
      // Execute.
      Tick tx = m.now();
      co_await m.MemAccess(ctx, inst.mem_node, nrows, WorkFor(p, op));
      m.counters().breakdown().xct_exec += m.now() - tx;
      // Log the updates + prepare record (forced: participant must be able
      // to commit after a coordinator decision).
      Tick tg = m.now();
      co_await inst.log->Use(ctx, p.log_insert_service * nrows +
                                      p.log_force_service);
      m.counters().breakdown().logging += m.now() - tg;
      // Vote yes.
      Tick ts = m.now();
      co_await cl.reply[static_cast<size_t>(msg->from)]->Send(
          ctx, sim::Msg{.kind = kVote, .from = inst.id, .a = 1, .b = 0,
                        .payload = nullptr});
      m.counters().breakdown().communication += m.now() - ts;
    } else if (msg->kind == kCommit) {
      // Decision record + lock release.
      Tick tg = m.now();
      co_await inst.log->Use(ctx, p.log_insert_service);
      m.counters().breakdown().logging += m.now() - tg;
      Tick tl = m.now();
      size_t bucket = msg->b % inst.lock_buckets.size();
      co_await inst.lock_buckets[bucket]->Use(ctx, p.lockmgr_service / 4);
      m.counters().breakdown().locking += m.now() - tl;
    }
    lease.Release();
  }
}

sim::Task Driver(sim::Machine& m, sim::Ctx ctx, Cluster& cl, Instance& inst,
                 const core::WorkloadSpec& spec,
                 const SharedNothingOptions& opt, Tick end, uint64_t seed) {
  Rng rng(seed);
  ClassPicker picker(&spec);
  const sim::CostParams& p = m.params();

  while (m.running() && m.now() < end) {
    std::vector<double> weights;
    if (opt.run.weights_fn) weights = opt.run.weights_fn(m.now());
    int cls = picker.Pick(rng, opt.run.weights_fn ? &weights : nullptr);
    const core::TxnClass& c = spec.classes[static_cast<size_t>(cls)];

    auto& lease = *cl.lease[static_cast<size_t>(ctx.core)];
    co_await lease.Acquire(ctx);

    // ---- begin (instance-local: always a socket-local CAS) --------------
    Tick t0 = m.now();
    co_await inst.txn_list->Atomic(ctx);
    co_await m.Compute(ctx, p.txn_mgmt_work / 2);
    m.counters().breakdown().xct_mgmt += m.now() - t0;

    uint64_t slice = inst.key_hi - inst.key_lo;
    bool wrote = false;
    // Remote work grouped per participant instance: instance -> row count.
    std::map<size_t, uint64_t> remote;

    for (const ActionSpec& a : c.actions) {
      auto nrows = static_cast<uint64_t>(a.rows < 1 ? 1 : a.rows);
      if (a.op != OpType::kRead) wrote = true;
      if (a.aligned) {
        // Local-site rows.
        uint64_t key = inst.key_lo + rng.Uniform(slice ? slice : 1);
        if (opt.lock_reads || a.op != OpType::kRead) {
          Tick tl = m.now();
          size_t bucket = key % inst.lock_buckets.size();
          co_await inst.lock_buckets[bucket]->Use(ctx, p.lockmgr_service);
          m.counters().breakdown().locking += m.now() - tl;
        }
        Tick tx = m.now();
        co_await m.MemAccess(ctx, inst.mem_node, nrows, WorkFor(p, a.op));
        m.counters().breakdown().xct_exec += m.now() - tx;
        if (a.op != OpType::kRead) {
          Tick tg = m.now();
          co_await inst.log->Use(ctx, p.log_insert_service * nrows);
          m.counters().breakdown().logging += m.now() - tg;
        }
      } else {
        // Rows chosen uniformly from the whole dataset.
        for (uint64_t r = 0; r < nrows; ++r) {
          uint64_t key = rng.Uniform(cl.table_rows ? cl.table_rows : 1);
          size_t owner = cl.InstanceOf(key);
          if (owner == static_cast<size_t>(inst.id)) {
            if (opt.lock_reads || a.op != OpType::kRead) {
              Tick tl = m.now();
              size_t bucket = key % inst.lock_buckets.size();
              co_await inst.lock_buckets[bucket]->Use(ctx, p.lockmgr_service);
              m.counters().breakdown().locking += m.now() - tl;
            }
            Tick tx = m.now();
            co_await m.MemAccess(ctx, inst.mem_node, 1, WorkFor(p, a.op));
            m.counters().breakdown().xct_exec += m.now() - tx;
            if (a.op != OpType::kRead) {
              Tick tg = m.now();
              co_await inst.log->Use(ctx, p.log_insert_service);
              m.counters().breakdown().logging += m.now() - tg;
            }
          } else {
            remote[owner] += 1;
          }
        }
      }
    }

    if (!remote.empty()) {
      // ---- distributed transaction: two-phase commit ---------------------
      Tick ts = m.now();
      for (auto [owner, nrows] : remote) {
        co_await cl.instances[owner]->req->Send(
            ctx, sim::Msg{.kind = kReq, .from = ctx.core, .a = nrows,
                          .b = static_cast<uint64_t>(inst.id),
                          .payload = nullptr});
      }
      // Collect votes (the core is yielded while blocked on 2PC, so the
      // instance's server can process other coordinators' requests).
      lease.Release();
      for (size_t i = 0; i < remote.size(); ++i) {
        auto vote = co_await cl.reply[static_cast<size_t>(ctx.core)]->Recv(ctx);
        if (!vote) break;
      }
      co_await lease.Acquire(ctx);
      m.counters().breakdown().communication += m.now() - ts;
      // Decision: force the distributed-commit record.
      Tick tg = m.now();
      co_await inst.log->Use(ctx, p.log_force_service +
                                      p.log_insert_service *
                                          (1 + remote.size()));
      m.counters().breakdown().logging += m.now() - tg;
      // Broadcast commit (presumed-commit: no acks).
      Tick tb = m.now();
      for (auto [owner, nrows] : remote) {
        co_await cl.instances[owner]->req->Send(
            ctx, sim::Msg{.kind = kCommit, .from = ctx.core, .a = 0,
                          .b = static_cast<uint64_t>(inst.id),
                          .payload = nullptr});
      }
      m.counters().breakdown().communication += m.now() - tb;
    } else if (wrote) {
      Tick tg = m.now();
      co_await inst.log->Use(ctx, p.log_force_service);
      m.counters().breakdown().logging += m.now() - tg;
    }

    // ---- commit ----------------------------------------------------------
    Tick tc = m.now();
    co_await inst.txn_list->Atomic(ctx);
    co_await m.Compute(ctx, p.txn_mgmt_work / 2);
    m.counters().breakdown().xct_mgmt += m.now() - tc;
    m.counters().AddCommit();
    ++inst.committed;
    lease.Release();
  }
}

}  // namespace

RunMetrics RunSharedNothing(const hw::Topology& topo,
                            const sim::CostParams& params,
                            const core::WorkloadSpec& spec,
                            const SharedNothingOptions& opt) {
  // The shared-nothing engines model single-table microbenchmarks (the
  // paper evaluates them on exactly those: Figs. 1-4 and Table I).
  sim::Machine m(topo, params);
  Cluster cl;
  cl.table_rows = spec.tables[0].num_rows;

  auto cores = topo.AvailableCores();
  int n_inst = opt.per_socket_instances
                   ? topo.num_sockets()
                   : static_cast<int>(cores.size());

  for (int i = 0; i < n_inst; ++i) {
    auto inst = std::make_unique<Instance>();
    inst->id = i;
    inst->socket = opt.per_socket_instances
                       ? static_cast<hw::SocketId>(i)
                       : topo.socket_of(cores[static_cast<size_t>(i)]);
    inst->mem_node =
        opt.mem_policy ? opt.mem_policy(inst->socket) : inst->socket;
    inst->key_lo = cl.table_rows * static_cast<uint64_t>(i) /
                   static_cast<uint64_t>(n_inst);
    inst->key_hi = cl.table_rows * static_cast<uint64_t>(i + 1) /
                   static_cast<uint64_t>(n_inst);
    inst->txn_list = std::make_unique<sim::CacheLine>(&m, inst->socket);
    inst->log =
        std::make_unique<sim::Resource>(&m, inst->socket, /*spin=*/true);
    int buckets = opt.per_socket_instances ? 16 : 4;
    for (int b = 0; b < buckets; ++b)
      inst->lock_buckets.push_back(
          std::make_unique<sim::Resource>(&m, inst->socket, true));
    inst->req = std::make_unique<sim::Channel>(&m, inst->socket);
    cl.instances.push_back(std::move(inst));
  }
  for (hw::CoreId c = 0; c < topo.num_cores(); ++c) {
    cl.reply.push_back(std::make_unique<sim::Channel>(&m, topo.socket_of(c)));
    cl.lease.push_back(std::make_unique<sim::SimMutex>(&m));
  }

  Tick end = sim::SecToCycles(opt.run.duration_s);
  RunMetrics metrics;

  // Spawn drivers and servers.
  for (size_t ci = 0; ci < cores.size(); ++ci) {
    hw::CoreId c = cores[ci];
    size_t inst_idx = opt.per_socket_instances
                          ? static_cast<size_t>(topo.socket_of(c))
                          : ci;
    Instance& inst = *cl.instances[inst_idx];
    sim::Ctx dctx = m.MakeCtx(c);
    Driver(m, dctx, cl, inst, spec, opt, end, opt.run.seed * 31 + ci);
    // Servers: workload classes with unaligned actions need participants.
    sim::Ctx sctx = m.MakeCtx(c);
    OpType remote_op = OpType::kUpdate;
    for (const auto& cc : spec.classes)
      for (const auto& a : cc.actions)
        if (!a.aligned) remote_op = a.op;
    ServeLoop(m, sctx, cl, inst, opt, remote_op);
  }
  if (opt.run.sample_interval_s > 0)
    Sampler(m, sim::SecToCycles(opt.run.sample_interval_s), end, &metrics);

  m.RunUntil(end);
  Tick elapsed = m.now();
  m.Shutdown();
  FinalizeMetrics(m, elapsed, static_cast<int>(cores.size()), &metrics);
  metrics.per_instance_committed.clear();
  for (const auto& inst : cl.instances)
    metrics.per_instance_committed.push_back(inst->committed);
  return metrics;
}

}  // namespace atrapos::simengine
