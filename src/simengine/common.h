// Shared infrastructure for the simulated execution engines.
//
// The four system designs of the paper (§III-A) are implemented as
// coroutine programs over sim::Machine:
//   - centralized shared-everything      (centralized.cc)
//   - extreme / coarse shared-nothing    (shared_nothing.cc, with 2PC)
//   - PLP and ATraPos                    (dora.cc; ATraPos = PLP +
//     NUMA-aware state + adaptive partitioning/placement)
#pragma once

#include <functional>
#include <vector>

#include "core/flow_graph.h"
#include "sim/counters.h"
#include "sim/machine.h"
#include "util/rng.h"

namespace atrapos::simengine {

using sim::Tick;

/// Options common to every engine run.
struct RunOptions {
  /// Simulated run length in seconds.
  double duration_s = 0.02;
  uint64_t seed = 1;
  /// >0: sample a throughput timeline at this simulated period (Figs 10-13).
  double sample_interval_s = 0.0;
  /// Optional dynamic class-weight override (phase changes, Figs 10/13).
  std::function<std::vector<double>(Tick)> weights_fn;
  /// Optional routing-key generator override (skew, Fig 11). Takes the RNG,
  /// the current simulated time and the routing domain size.
  std::function<uint64_t(Rng&, Tick, uint64_t)> routing_fn;
};

/// Results of one engine run.
struct RunMetrics {
  uint64_t committed = 0;
  double seconds = 0;
  double tps = 0;
  double mtps = 0;
  double ipc = 0;
  double qpi_imc_ratio = 0;
  double qpi_gbps = 0;
  double max_link_util = 0;  ///< share of the busiest link's modeled 25.6 GB/s
  double avg_txn_us = 0;     ///< breakdown total / committed
  sim::Breakdown breakdown;  ///< cycle totals by component
  std::vector<double> timeline_tps;
  std::vector<double> timeline_t;    ///< sample timestamps (seconds)
  /// Monitoring-interval history (ATraPos adaptive runs; Fig. 13).
  std::vector<double> interval_t;
  std::vector<double> interval_s;
  std::vector<uint64_t> per_instance_committed;
  uint64_t repartitions = 0;
};

/// Weighted class picker over the workload spec.
class ClassPicker {
 public:
  explicit ClassPicker(const core::WorkloadSpec* spec) : spec_(spec) {}

  int Pick(Rng& rng, const std::vector<double>* weights_override) const {
    double total = 0;
    auto weight = [&](size_t i) {
      return weights_override ? (*weights_override)[i]
                              : spec_->classes[i].weight;
    };
    for (size_t i = 0; i < spec_->classes.size(); ++i) total += weight(i);
    double x = rng.NextDouble() * total;
    for (size_t i = 0; i < spec_->classes.size(); ++i) {
      x -= weight(i);
      if (x <= 0) return static_cast<int>(i);
    }
    return static_cast<int>(spec_->classes.size()) - 1;
  }

 private:
  const core::WorkloadSpec* spec_;
};

/// Maps an aligned routing key (in table 0's domain) into table t's domain.
inline uint64_t AlignKey(const core::WorkloadSpec& spec, int table,
                         uint64_t routing) {
  uint64_t base = spec.tables[0].num_rows;
  uint64_t rows = spec.tables[static_cast<size_t>(table)].num_rows;
  if (base == 0) return 0;
  return routing * (rows / base ? rows / base : 1) % (rows ? rows : 1);
}

/// Fills `metrics` fields computed from machine counters.
void FinalizeMetrics(const sim::Machine& m, Tick elapsed, int active_cores,
                     RunMetrics* metrics);

/// Timeline sampler: appends a TPS sample every `interval`.
sim::Task Sampler(sim::Machine& m, Tick interval, Tick end,
                  RunMetrics* metrics);

}  // namespace atrapos::simengine
