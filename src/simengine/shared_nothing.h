// Shared-nothing engines (paper §III-A): multiple independent instances
// each owning a key slice, joined by a thin distributed-transaction layer
// (two-phase commit over shared-memory channels).
//
//   extreme: one instance per core (H-Store style); locking/latching
//            disabled for read-only work.
//   coarse:  one instance per socket; locking/latching on.
//
// Multi-site transactions run 2PC: the coordinator executes its local rows,
// ships sub-transactions to participant instances, collects votes, logs the
// decision, and broadcasts commit — holding locks until the decision, with
// extra distributed-transaction log records (§III-C).
#pragma once

#include <functional>

#include "hw/topology.h"
#include "simengine/common.h"

namespace atrapos::simengine {

struct SharedNothingOptions {
  RunOptions run;
  /// false: extreme (instance per core); true: coarse (instance per socket).
  bool per_socket_instances = false;
  /// Extreme shared-nothing disables locking for read-only workloads.
  bool lock_reads = false;
  /// Memory-allocation policy (Table I): maps an instance's socket to the
  /// NUMA node its memory is allocated on. Default: local allocation.
  std::function<hw::SocketId(hw::SocketId)> mem_policy;
};

RunMetrics RunSharedNothing(const hw::Topology& topo,
                            const sim::CostParams& params,
                            const core::WorkloadSpec& spec,
                            const SharedNothingOptions& opt);

}  // namespace atrapos::simengine
