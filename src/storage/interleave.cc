#include "storage/interleave.h"

#include <cstdint>
#include <new>

#include "mem/chunk_pool.h"

namespace atrapos::storage {

namespace {

thread_local mem::ChunkPool* t_frame_pool = nullptr;

/// Prefix stamped in front of every coroutine frame: the pool the block
/// came from (nullptr = global heap). 16 bytes keeps the frame at the
/// pool block's 16-byte alignment, which covers the default coroutine
/// frame alignment (__STDCPP_DEFAULT_NEW_ALIGNMENT__).
struct FrameHeader {
  mem::ChunkPool* pool;
};
constexpr std::size_t kFrameHeaderBytes = 16;
static_assert(sizeof(FrameHeader) <= kFrameHeaderBytes);
static_assert(kFrameHeaderBytes % 16 == 0);

}  // namespace

void SetThreadFramePool(mem::ChunkPool* pool) { t_frame_pool = pool; }
mem::ChunkPool* ThreadFramePool() { return t_frame_pool; }

void* PrefetchChain::promise_type::operator new(std::size_t n) {
  mem::ChunkPool* pool = t_frame_pool;
  void* raw;
  if (pool != nullptr && n + kFrameHeaderBytes <= pool->payload_bytes()) {
    raw = pool->Get();
  } else {
    pool = nullptr;  // oversized frame (or no pool): heap fallback
    raw = ::operator new(n + kFrameHeaderBytes);
  }
  static_cast<FrameHeader*>(raw)->pool = pool;
  return static_cast<uint8_t*>(raw) + kFrameHeaderBytes;
}

void PrefetchChain::promise_type::operator delete(void* p,
                                                  std::size_t) noexcept {
  void* raw = static_cast<uint8_t*>(p) - kFrameHeaderBytes;
  if (mem::ChunkPool* pool = static_cast<FrameHeader*>(raw)->pool)
    pool->Put(raw);
  else
    ::operator delete(raw);
}

}  // namespace atrapos::storage
