#include "storage/page.h"

#include "mem/arena.h"

namespace atrapos::storage {

namespace {
uint8_t* AllocFrame(mem::Arena* arena) {
  uint8_t* f = arena ? static_cast<uint8_t*>(arena->Allocate(kPageSize))
                     : new uint8_t[kPageSize];
  std::memset(f, 0, kPageSize);
  return f;
}
}  // namespace

Page::Page(mem::Arena* arena) : arena_(arena), frame_(AllocFrame(arena)) {}

void Page::FreeFrame() {
  if (!frame_) return;
  if (arena_)
    arena_->Deallocate(frame_, kPageSize);
  else
    delete[] frame_;
  frame_ = nullptr;
}

Page::~Page() { FreeFrame(); }

void Page::Reseat(mem::Arena* arena) {
  if (arena == arena_) return;
  uint8_t* nf = arena ? static_cast<uint8_t*>(arena->Allocate(kPageSize))
                      : new uint8_t[kPageSize];
  std::memcpy(nf, frame_, kPageSize);
  // The frame copy is interconnect traffic of the migration itself —
  // charged separately from steady-state accesses so repartition cost is
  // visible in the stats (paper Fig. 9).
  if (arena != nullptr && arena->stats() != nullptr) {
    arena->stats()->RecordMigration(
        arena_ != nullptr ? arena_->home_socket() : arena->home_socket(),
        arena->home_socket(), kPageSize);
  }
  FreeFrame();
  arena_ = arena;
  frame_ = nf;
}

uint32_t Page::free_space() const {
  uint32_t slot_dir_end =
      static_cast<uint32_t>(slots_.size() * sizeof(Slot)) + 16;
  return heap_top_ > slot_dir_end ? heap_top_ - slot_dir_end : 0;
}

Result<uint32_t> Page::Insert(const uint8_t* data, uint32_t len) {
  // Reuse a tombstone of the same length first (fixed-size records make
  // this the common case after deletes).
  for (uint32_t i = 0; i < num_slots_; ++i) {
    if (slots_[i].len == 0 && slots_[i].off != 0) {
      // Tombstone; its original extent is unknown to us, but with fixed-size
      // records per table the extent always fits `len`.
      std::memcpy(frame_ + slots_[i].off, data, len);
      slots_[i].len = len;
      ++live_;
      return i;
    }
  }
  if (free_space() < len + sizeof(Slot)) {
    return Status::ResourceExhausted("page full");
  }
  heap_top_ -= len;
  std::memcpy(frame_ + heap_top_, data, len);
  slots_.push_back(Slot{heap_top_, len});
  ++live_;
  return num_slots_++;
}

const uint8_t* Page::Get(uint32_t slot, uint32_t* len) const {
  if (slot >= num_slots_ || slots_[slot].len == 0) return nullptr;
  if (len) *len = slots_[slot].len;
  return frame_ + slots_[slot].off;
}

Status Page::Update(uint32_t slot, const uint8_t* data, uint32_t len) {
  if (slot >= num_slots_ || slots_[slot].len == 0)
    return Status::NotFound("no such slot");
  if (slots_[slot].len != len)
    return Status::InvalidArgument("update must preserve record size");
  std::memcpy(frame_ + slots_[slot].off, data, len);
  return Status::OK();
}

Status Page::UpdateRange(uint32_t slot, uint32_t offset, const uint8_t* data,
                         uint32_t len) {
  if (slot >= num_slots_ || slots_[slot].len == 0)
    return Status::NotFound("no such slot");
  if (static_cast<uint64_t>(offset) + len > slots_[slot].len)
    return Status::InvalidArgument("delta range exceeds record");
  if (len > 0) std::memcpy(frame_ + slots_[slot].off + offset, data, len);
  return Status::OK();
}

Status Page::Delete(uint32_t slot) {
  if (slot >= num_slots_ || slots_[slot].len == 0)
    return Status::NotFound("no such slot");
  slots_[slot].len = 0;  // keep off as tombstone marker
  --live_;
  return Status::OK();
}

}  // namespace atrapos::storage
