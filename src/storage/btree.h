// In-memory B+-tree mapping uint64 keys to uint64 values (encoded Rids).
// This is the index substrate under both the centralized engine (one tree
// per table, externally latched) and the multi-rooted B-tree of PLP/ATraPos
// (one tree per logical partition, accessed single-threaded by its owner
// worker, hence latch-free — paper §III-A).
//
// Deletes are lazy (no rebalancing): workload deletes are rare and
// repartitioning rebuilds subtrees wholesale via ExtractRange/BulkLoad.
//
// Nodes are allocated from a mem::Arena when one is attached, placing the
// subtree on its partition's hardware island (paper §II-B); each node
// remembers the arena it came from, so a tree can hold a mix while it is
// being migrated. Descents charge every node they touch to the node's
// island (mem::AllocStats), so index traversals contribute to the measured
// remote-traffic ratio alongside heap record accesses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "storage/interleave.h"
#include "util/status.h"

namespace atrapos::mem {
class Arena;
}  // namespace atrapos::mem

namespace atrapos::storage {

class BPlusTree {
 public:
  static constexpr int kOrder = 64;  ///< max children per internal node

  /// Nodes allocate from `arena` when given, else from the global heap.
  explicit BPlusTree(mem::Arena* arena = nullptr);
  ~BPlusTree();
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts key -> value. AlreadyExists if the key is present.
  Status Insert(uint64_t key, uint64_t value);
  /// Inserts or overwrites.
  void Upsert(uint64_t key, uint64_t value);
  std::optional<uint64_t> Get(uint64_t key) const;
  /// Overwrites the value of an existing key. NotFound otherwise.
  Status Update(uint64_t key, uint64_t value);
  Status Delete(uint64_t key);

  /// Visits [lo, hi] in key order; return false from `fn` to stop early.
  void Scan(uint64_t lo, uint64_t hi,
            const std::function<bool(uint64_t, uint64_t)>& fn) const;

  /// Resumable warm descent for interleaved execution (interleave.h): the
  /// same root-to-leaf walk as FindLeaf, but each hop prefetches the next
  /// node's cache lines and suspends at a StallPoint so the worker can
  /// rotate to another in-flight action while the lines travel. When the
  /// chain completes, `*value_out` holds the key's value as of the final
  /// resume slice (nullopt if absent) — callers use it to chain a heap
  /// warm, never as the authoritative read. Advisory only: nothing is
  /// charged to AllocStats (the action body's real descent pays), and a
  /// concurrent same-thread mutation between slices at worst wastes a
  /// prefetch — nodes are never freed outside BulkLoad/MigrateTo, which
  /// only run with workers stopped, so revisited pointers stay valid.
  PrefetchChain WarmDescent(uint64_t key,
                            std::optional<uint64_t>* value_out) const;

  /// Removes all entries with key >= `from` and returns them sorted —
  /// the physical half of a partition split.
  std::vector<std::pair<uint64_t, uint64_t>> ExtractFrom(uint64_t from);

  /// Appends sorted entries (all keys must exceed the current max).
  void BulkAppend(const std::vector<std::pair<uint64_t, uint64_t>>& sorted);

  /// Builds a tree from sorted entries (replaces current contents).
  void BulkLoad(std::vector<std::pair<uint64_t, uint64_t>> sorted);

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::optional<uint64_t> MinKey() const;
  std::optional<uint64_t> MaxKey() const;
  int height() const;

  // ---- Island placement ---------------------------------------------------

  /// Future node allocations come from `arena` (existing nodes stay where
  /// they are; use MigrateTo to move the whole tree).
  void set_arena(mem::Arena* arena) { arena_ = arena; }
  mem::Arena* arena() const { return arena_; }

  /// Rebuilds every node of the tree in `arena` (contents preserved) — the
  /// physical index move of an island-to-island partition migration.
  void MigrateTo(mem::Arena* arena);

 private:
  struct Node;
  struct Leaf;
  struct Internal;

  /// Root-to-leaf descent; charges every node touched to its arena's
  /// island in mem::AllocStats (index-access traffic accounting).
  Leaf* FindLeaf(uint64_t key) const;
  static void ChargeNodeTouch(const Node* n);
  void InsertIntoParent(Node* left, uint64_t key, Node* right);
  Leaf* NewLeaf();
  Internal* NewInternal();
  void FreeNode(Node* n);
  void FreeTree(Node* n);

  mem::Arena* arena_ = nullptr;
  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  uint64_t size_ = 0;
};

}  // namespace atrapos::storage
