// Heap file: an append-friendly collection of slotted pages. Memory
// resident, matching the paper's setup ("memory mapped disks for both data
// and log files"). Thread safety: a heap file is protected by one
// shared_mutex; partitioned engines give each partition its own heap so the
// latch is never contended in the critical path.
//
// When an arena is attached, new page frames come from it (placing the heap
// on the arena's island) and every record access is charged to the
// requesting thread's socket in the arena's AllocStats — the traffic signal
// behind the paper's Table I QPI/IMC ratios.
#pragma once

#include <memory>
#include <shared_mutex>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace atrapos::storage {

class HeapFile {
 public:
  explicit HeapFile(mem::Arena* arena = nullptr) : arena_(arena) {}

  /// Appends a record, returning its Rid.
  Result<Rid> Insert(const uint8_t* data, uint32_t len);

  /// Copies the record into `out` (must hold `len` bytes). NotFound if gone.
  Status Read(Rid rid, uint8_t* out, uint32_t len) const;

  /// In-place overwrite (fixed-size records).
  Status Update(Rid rid, const uint8_t* data, uint32_t len);

  Status Delete(Rid rid);

  /// Future pages allocate from `arena` (existing pages stay put; use
  /// MigrateTo to move them).
  void SetArena(mem::Arena* arena);
  mem::Arena* arena() const;

  /// Reseats every page frame into `arena` and adopts it for future pages —
  /// the physical page move of an island-to-island partition migration.
  void MigrateTo(mem::Arena* arena);

  uint64_t num_records() const;
  size_t num_pages() const;

 private:
  mutable std::shared_mutex mu_;
  mem::Arena* arena_ = nullptr;
  std::vector<std::unique_ptr<Page>> pages_;
  size_t insert_hint_ = 0;  // page most likely to have space
};

}  // namespace atrapos::storage
