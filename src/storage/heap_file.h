// Heap file: an append-friendly collection of slotted pages. Memory
// resident, matching the paper's setup ("memory mapped disks for both data
// and log files"). Thread safety: a heap file is protected by one
// shared_mutex; partitioned engines give each partition its own heap so the
// latch is never contended in the critical path.
//
// Since the per-partition split (ROADMAP "Per-partition heap files"), a
// heap file carries a table-stable `heap id` — the partition bits of every
// Rid it hands out — and every access is validated against it, so a stale
// Rid (wrong heap, out-of-range page, vacated slot) returns NotFound
// instead of reading another partition's bytes.
//
// When an arena is attached, new page frames come from it (placing the heap
// on the arena's island) and every record access is charged to the
// requesting thread's socket in the arena's AllocStats — the traffic signal
// behind the paper's Table I QPI/IMC ratios.
#pragma once

#include <memory>
#include <shared_mutex>
#include <vector>

#include "storage/interleave.h"
#include "storage/page.h"
#include "util/status.h"

namespace atrapos::storage {

class HeapFile {
 public:
  /// `heap_id` becomes the partition bits of every Rid this file returns.
  explicit HeapFile(uint32_t heap_id = 0, mem::Arena* arena = nullptr)
      : heap_id_(heap_id), arena_(arena) {}

  uint32_t heap_id() const { return heap_id_; }

  /// Appends a record, returning its Rid (partition bits = heap id).
  Result<Rid> Insert(const uint8_t* data, uint32_t len);

  /// Copies the record into `out` (must hold `len` bytes). NotFound if gone
  /// or the Rid names another heap / an out-of-range page.
  Status Read(Rid rid, uint8_t* out, uint32_t len) const;

  /// Migration-path variants of Read/Insert: identical behavior but the
  /// copy is NOT charged to the steady-state access matrix — callers
  /// charge AllocStats::RecordMigration instead, keeping one-off
  /// repartition traffic out of the remote-ratio signal (Table I).
  Status ReadForMigration(Rid rid, uint8_t* out, uint32_t len) const;
  Result<Rid> InsertForMigration(const uint8_t* data, uint32_t len);

  /// In-place overwrite (fixed-size records).
  Status Update(Rid rid, const uint8_t* data, uint32_t len);

  /// Update that first copies the pre-update bytes into `before` (must
  /// hold `len` bytes) — one latch acquisition for the diff-encoding
  /// read-modify-write instead of a Read + Update round-trip.
  Status UpdateCapturingBefore(Rid rid, const uint8_t* data, uint32_t len,
                               uint8_t* before);

  /// In-place partial overwrite of `len` bytes at `offset` within the
  /// record — the replay primitive of diff-encoded log records.
  /// InvalidArgument when the range exceeds the stored record.
  Status ApplyDelta(Rid rid, uint32_t offset, const uint8_t* data,
                    uint32_t len);

  Status Delete(Rid rid);

  /// Resumable record warm for interleaved execution (interleave.h):
  /// pulls the page object, its slot-directory entry, and finally the
  /// record bytes toward the core one prefetch-and-suspend hop at a time.
  /// Advisory only — nothing is charged to AllocStats and the latch is
  /// held only inside the first slice (never across a suspension, which
  /// would self-deadlock against a neighbor action's unique_lock on the
  /// same thread). Safe latch-free afterwards: page frames are
  /// address-stable for the heap's lifetime and Reset/MigrateTo only run
  /// with workers stopped.
  PrefetchChain WarmRecord(Rid rid) const;

  /// Future pages allocate from `arena` (existing pages stay put; use
  /// MigrateTo to move them).
  void SetArena(mem::Arena* arena);
  mem::Arena* arena() const;

  /// Reseats every page frame into `arena` and adopts it for future pages —
  /// the physical page move of an island-to-island partition migration.
  void MigrateTo(mem::Arena* arena);

  /// Frees every page (a retired heap after Merge/Repartition moved its
  /// records away). The heap id stays valid; subsequent reads of old Rids
  /// return NotFound.
  void Reset();

  uint64_t num_records() const;
  size_t num_pages() const;

 private:
  /// NotFound unless `rid` names this heap and an existing page; caller
  /// holds mu_.
  Status CheckRid(Rid rid) const;
  Result<Rid> InsertImpl(const uint8_t* data, uint32_t len, bool charge);
  Status ReadImpl(Rid rid, uint8_t* out, uint32_t len, bool charge) const;

  const uint32_t heap_id_;
  mutable std::shared_mutex mu_;
  mem::Arena* arena_ = nullptr;
  std::vector<std::unique_ptr<Page>> pages_;
  size_t insert_hint_ = 0;  // page most likely to have space
};

}  // namespace atrapos::storage
