// A table: schema + heap file + multi-rooted primary index. The logical
// partitioning lives in the index's fence keys; the engine maps partitions
// to worker threads/cores.
#pragma once

#include <memory>
#include <string>

#include "storage/heap_file.h"
#include "storage/mrbtree.h"
#include "storage/schema.h"
#include "util/status.h"

namespace atrapos::storage {

using TableId = int32_t;

/// Observes successful mutations on the calling thread. The durability
/// subsystem registers one per partition worker (thread-local, so the
/// storage layer needs no per-table wiring and pays one branch when no
/// observer is installed) and turns every insert/update/delete into a log
/// record carrying the after-image.
class MutationObserver {
 public:
  virtual ~MutationObserver() = default;
  virtual void OnInsert(TableId table, uint64_t key, const Tuple& row) = 0;
  virtual void OnUpdate(TableId table, uint64_t key, const Tuple& row) = 0;
  virtual void OnDelete(TableId table, uint64_t key) = 0;
};

/// Installs `obs` for the calling thread (nullptr uninstalls).
void SetThreadMutationObserver(MutationObserver* obs);
MutationObserver* ThreadMutationObserver();

class Table {
 public:
  Table(TableId id, std::string name, Schema schema,
        std::vector<uint64_t> boundaries = {0});

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  MultiRootedBTree& index() { return index_; }
  const MultiRootedBTree& index() const { return index_; }
  HeapFile& heap() { return heap_; }

  /// Inserts a row under primary key `key`.
  Status Insert(uint64_t key, const Tuple& row);

  /// Reads the row with primary key `key` into `out`.
  Status Read(uint64_t key, Tuple* out) const;

  /// Replaces the row with primary key `key`.
  Status Update(uint64_t key, const Tuple& row);

  Status Delete(uint64_t key);

  uint64_t num_rows() const { return index_.total_size(); }

 private:
  TableId id_;
  std::string name_;
  Schema schema_;
  HeapFile heap_;
  MultiRootedBTree index_;
};

}  // namespace atrapos::storage
