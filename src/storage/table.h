// A table: schema + one heap file per partition + multi-rooted primary
// index. The logical partitioning lives in the index's fence keys; the
// engine maps partitions to worker threads/cores. Tuple pages live in the
// owning partition's heap, so heap storage migrates with partition
// ownership exactly like B-tree subtrees do (paper §II-B: *all* partition
// state on the owning island).
//
// Heap ids are table-stable: every Rid's partition bits name the heap file
// that created it, and splits/merges allocate or retire heap ids without
// renumbering the survivors — only records that physically move between
// heaps get new Rids (and their index values are rewritten in the same
// repartitioning action).
#pragma once

#include <memory>
#include <string>

#include "storage/heap_file.h"
#include "storage/mrbtree.h"
#include "storage/schema.h"
#include "util/status.h"

namespace atrapos::storage {

using TableId = int32_t;

/// Observes successful mutations on the calling thread. The durability
/// subsystem registers one per partition worker (thread-local, so the
/// storage layer needs no per-table wiring and pays one branch when no
/// observer is installed) and turns every insert/update/delete into a log
/// record. Updates carry the Rid plus the before-image so the observer can
/// emit a diff-encoded record instead of a full after-image (see src/log/).
class MutationObserver {
 public:
  virtual ~MutationObserver() = default;
  virtual void OnInsert(TableId table, uint64_t key, Rid rid,
                        const Tuple& row) = 0;
  /// `before` points at a copy of the pre-update bytes (same length as
  /// `after`), valid only for the duration of the call — or nullptr when
  /// WantsBeforeImage() returned false.
  virtual void OnUpdate(TableId table, uint64_t key, Rid rid,
                        const uint8_t* before, const Tuple& after) = 0;
  virtual void OnDelete(TableId table, uint64_t key, Rid rid) = 0;
  /// Override to return false to skip the before-image capture (an extra
  /// heap read per update) when OnUpdate will not diff.
  virtual bool WantsBeforeImage() const { return true; }
};

/// Installs `obs` for the calling thread (nullptr uninstalls).
void SetThreadMutationObserver(MutationObserver* obs);
MutationObserver* ThreadMutationObserver();

class Table {
 public:
  Table(TableId id, std::string name, Schema schema,
        std::vector<uint64_t> boundaries = {0});

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  MultiRootedBTree& index() { return index_; }
  const MultiRootedBTree& index() const { return index_; }

  size_t num_partitions() const { return index_.num_partitions(); }
  /// Partition ordinal p's heap file (valid until the next Split/Merge/
  /// Repartition changes the partitioning).
  HeapFile& heap(size_t p) { return *heaps_[part_heap_[p]]; }
  const HeapFile& heap(size_t p) const { return *heaps_[part_heap_[p]]; }
  /// Live records summed over every partition heap.
  uint64_t num_heap_records() const;

  /// Inserts a row under primary key `key` (heap of the owning partition).
  Status Insert(uint64_t key, const Tuple& row);

  /// Reads the row with primary key `key` into `out`.
  Status Read(uint64_t key, Tuple* out) const;

  /// Replaces the row with primary key `key`.
  Status Update(uint64_t key, const Tuple& row);

  Status Delete(uint64_t key);

  /// In-place partial overwrite of the row with primary key `key` — the
  /// replay primitive for diff-encoded log records. The Rid is resolved
  /// through the index (logged Rids go stale across repartition
  /// generations), then the bytes are patched directly in the heap: no
  /// re-insert, no full-tuple rebuild.
  Status ApplyDiff(uint64_t key, uint32_t offset, const uint8_t* data,
                   uint32_t len);

  // ---- Repartitioning (index + heap move together) ------------------------
  // Callers must have quiesced concurrent access (the executor runs these
  // with workers stopped, as for the index-only actions before).

  /// Splits partition p at `key`: the new right partition gets a fresh
  /// heap and its records move there (index values rewritten).
  Status Split(size_t p, uint64_t key);

  /// Merges partition p with p+1: p+1's records move into p's heap and its
  /// heap is retired (id recycled once empty).
  Status Merge(size_t p);

  /// Replaces the whole partitioning, redistributing index entries and
  /// heap records. Linear in total rows, like the index-only counterpart.
  void Repartition(const std::vector<uint64_t>& boundaries);

  uint64_t num_rows() const { return index_.total_size(); }

 private:
  /// The heap a (validated) rid lives in, or nullptr for a stale id.
  HeapFile* HeapOf(Rid rid);
  const HeapFile* HeapOf(Rid rid) const;
  /// Allocates a heap id (recycling retired ones) and creates its file.
  uint32_t NewHeap(mem::Arena* arena);
  /// Moves every record of partition ordinal `p` into heap `dst_id`,
  /// rewriting the index values. Records already in `dst_id` stay put.
  void MoveRecords(size_t p, uint32_t dst_id);
  /// Resets heap `id` and returns it to the free list.
  void RetireHeap(uint32_t id);

  TableId id_;
  std::string name_;
  Schema schema_;
  MultiRootedBTree index_;
  std::vector<std::unique_ptr<HeapFile>> heaps_;  ///< by stable heap id
  std::vector<uint32_t> part_heap_;  ///< partition ordinal -> heap id
  std::vector<uint32_t> free_heap_ids_;
};

}  // namespace atrapos::storage
