#include "storage/heap_file.h"

#include <mutex>

#include "mem/arena.h"

namespace atrapos::storage {

namespace {
/// Charges `len` bytes of traffic to the page's home island, if placed.
inline void ChargeAccess(const Page& page, uint32_t len) {
  if (mem::Arena* a = page.arena()) a->RecordAccess(len);
}
}  // namespace

Result<Rid> HeapFile::Insert(const uint8_t* data, uint32_t len) {
  return InsertImpl(data, len, /*charge=*/true);
}

Result<Rid> HeapFile::InsertForMigration(const uint8_t* data, uint32_t len) {
  return InsertImpl(data, len, /*charge=*/false);
}

Result<Rid> HeapFile::InsertImpl(const uint8_t* data, uint32_t len,
                                 bool charge) {
  std::unique_lock lk(mu_);
  if (insert_hint_ < pages_.size()) {
    auto r = pages_[insert_hint_]->Insert(data, len);
    if (r.ok()) {
      if (charge) ChargeAccess(*pages_[insert_hint_], len);
      return Rid{heap_id_, static_cast<uint32_t>(insert_hint_), r.value()};
    }
  }
  if (pages_.size() > Rid::kMaxPage) {
    // Rid page bits would overflow into the partition/version fields —
    // refuse loudly instead of corrupting the encoding.
    return Status::ResourceExhausted("heap page-id space exhausted");
  }
  pages_.push_back(std::make_unique<Page>(arena_));
  insert_hint_ = pages_.size() - 1;
  auto r = pages_.back()->Insert(data, len);
  if (!r.ok()) return r.status();  // record larger than a page
  if (charge) ChargeAccess(*pages_.back(), len);
  return Rid{heap_id_, static_cast<uint32_t>(insert_hint_), r.value()};
}

Status HeapFile::CheckRid(Rid rid) const {
  // Stale Rids are reachable input once partition bits exist (a crash-cut
  // log replayed against a repartitioned table, a corrupt index value):
  // every lookup validates heap id and page range before touching pages_.
  if (rid.partition != heap_id_) return Status::NotFound("wrong heap");
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  return Status::OK();
}

Status HeapFile::Read(Rid rid, uint8_t* out, uint32_t len) const {
  return ReadImpl(rid, out, len, /*charge=*/true);
}

Status HeapFile::ReadForMigration(Rid rid, uint8_t* out, uint32_t len) const {
  return ReadImpl(rid, out, len, /*charge=*/false);
}

Status HeapFile::ReadImpl(Rid rid, uint8_t* out, uint32_t len,
                          bool charge) const {
  std::shared_lock lk(mu_);
  ATRAPOS_RETURN_NOT_OK(CheckRid(rid));
  uint32_t stored = 0;
  const uint8_t* p = pages_[rid.page]->Get(rid.slot, &stored);
  if (!p) return Status::NotFound("empty slot");
  std::memcpy(out, p, std::min(len, stored));
  if (charge) ChargeAccess(*pages_[rid.page], std::min(len, stored));
  return Status::OK();
}

PrefetchChain HeapFile::WarmRecord(Rid rid) const {
  const Page* page = nullptr;
  {
    std::shared_lock lk(mu_);
    if (CheckRid(rid).ok()) page = pages_[rid.page].get();
  }  // latch released before the first suspension
  if (page == nullptr) co_return;
  // Hop 1: the Page object itself (holds the slot-directory pointer).
  __builtin_prefetch(page, 0, 3);
  co_await StallPoint{};
  // Hop 2: the slot-directory entry naming the record's offset/length.
  const void* entry = page->SlotEntryAddr(rid.slot);
  if (entry == nullptr) co_return;
  __builtin_prefetch(entry, 0, 3);
  co_await StallPoint{};
  // Hop 3: the record bytes inside the 8 KiB frame. Page::Get charges
  // nothing (HeapFile does), so the warm stays out of AllocStats.
  uint32_t stored = 0;
  const uint8_t* rec = page->Get(rid.slot, &stored);
  if (rec == nullptr) co_return;
  PrefetchSpan(rec, stored);
  co_await StallPoint{};  // give the lines time before the body runs
}

Status HeapFile::Update(Rid rid, const uint8_t* data, uint32_t len) {
  std::unique_lock lk(mu_);
  ATRAPOS_RETURN_NOT_OK(CheckRid(rid));
  Status s = pages_[rid.page]->Update(rid.slot, data, len);
  if (s.ok()) ChargeAccess(*pages_[rid.page], len);  // failed writes touch nothing
  return s;
}

Status HeapFile::UpdateCapturingBefore(Rid rid, const uint8_t* data,
                                       uint32_t len, uint8_t* before) {
  std::unique_lock lk(mu_);
  ATRAPOS_RETURN_NOT_OK(CheckRid(rid));
  uint32_t stored = 0;
  const uint8_t* p = pages_[rid.page]->Get(rid.slot, &stored);
  if (!p) return Status::NotFound("empty slot");
  std::memcpy(before, p, std::min(len, stored));
  Status s = pages_[rid.page]->Update(rid.slot, data, len);
  // One charge for the read-modify-write pair, like Update.
  if (s.ok()) ChargeAccess(*pages_[rid.page], len);
  return s;
}

Status HeapFile::ApplyDelta(Rid rid, uint32_t offset, const uint8_t* data,
                            uint32_t len) {
  std::unique_lock lk(mu_);
  ATRAPOS_RETURN_NOT_OK(CheckRid(rid));
  Status s = pages_[rid.page]->UpdateRange(rid.slot, offset, data, len);
  if (s.ok() && len > 0) ChargeAccess(*pages_[rid.page], len);
  return s;
}

Status HeapFile::Delete(Rid rid) {
  std::unique_lock lk(mu_);
  ATRAPOS_RETURN_NOT_OK(CheckRid(rid));
  return pages_[rid.page]->Delete(rid.slot);
}

void HeapFile::SetArena(mem::Arena* arena) {
  std::unique_lock lk(mu_);
  arena_ = arena;
}

mem::Arena* HeapFile::arena() const {
  std::shared_lock lk(mu_);
  return arena_;
}

void HeapFile::MigrateTo(mem::Arena* arena) {
  std::unique_lock lk(mu_);
  arena_ = arena;
  for (auto& p : pages_) p->Reseat(arena);
}

void HeapFile::Reset() {
  std::unique_lock lk(mu_);
  pages_.clear();
  insert_hint_ = 0;
}

uint64_t HeapFile::num_records() const {
  std::shared_lock lk(mu_);
  uint64_t n = 0;
  for (const auto& p : pages_) n += p->live_records();
  return n;
}

size_t HeapFile::num_pages() const {
  std::shared_lock lk(mu_);
  return pages_.size();
}

}  // namespace atrapos::storage
