#include "storage/heap_file.h"

#include <mutex>

#include "mem/arena.h"

namespace atrapos::storage {

namespace {
/// Charges `len` bytes of traffic to the page's home island, if placed.
inline void ChargeAccess(const Page& page, uint32_t len) {
  if (mem::Arena* a = page.arena()) a->RecordAccess(len);
}
}  // namespace

Result<Rid> HeapFile::Insert(const uint8_t* data, uint32_t len) {
  std::unique_lock lk(mu_);
  if (insert_hint_ < pages_.size()) {
    auto r = pages_[insert_hint_]->Insert(data, len);
    if (r.ok()) {
      ChargeAccess(*pages_[insert_hint_], len);
      return Rid{static_cast<uint32_t>(insert_hint_), r.value()};
    }
  }
  pages_.push_back(std::make_unique<Page>(arena_));
  insert_hint_ = pages_.size() - 1;
  auto r = pages_.back()->Insert(data, len);
  if (!r.ok()) return r.status();  // record larger than a page
  ChargeAccess(*pages_.back(), len);
  return Rid{static_cast<uint32_t>(insert_hint_), r.value()};
}

Status HeapFile::Read(Rid rid, uint8_t* out, uint32_t len) const {
  std::shared_lock lk(mu_);
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  uint32_t stored = 0;
  const uint8_t* p = pages_[rid.page]->Get(rid.slot, &stored);
  if (!p) return Status::NotFound("empty slot");
  std::memcpy(out, p, std::min(len, stored));
  ChargeAccess(*pages_[rid.page], std::min(len, stored));
  return Status::OK();
}

Status HeapFile::Update(Rid rid, const uint8_t* data, uint32_t len) {
  std::unique_lock lk(mu_);
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  Status s = pages_[rid.page]->Update(rid.slot, data, len);
  if (s.ok()) ChargeAccess(*pages_[rid.page], len);  // failed writes touch nothing
  return s;
}

Status HeapFile::Delete(Rid rid) {
  std::unique_lock lk(mu_);
  if (rid.page >= pages_.size()) return Status::NotFound("bad page");
  return pages_[rid.page]->Delete(rid.slot);
}

void HeapFile::SetArena(mem::Arena* arena) {
  std::unique_lock lk(mu_);
  arena_ = arena;
}

mem::Arena* HeapFile::arena() const {
  std::shared_lock lk(mu_);
  return arena_;
}

void HeapFile::MigrateTo(mem::Arena* arena) {
  std::unique_lock lk(mu_);
  arena_ = arena;
  for (auto& p : pages_) p->Reseat(arena);
}

uint64_t HeapFile::num_records() const {
  std::shared_lock lk(mu_);
  uint64_t n = 0;
  for (const auto& p : pages_) n += p->live_records();
  return n;
}

size_t HeapFile::num_pages() const {
  std::shared_lock lk(mu_);
  return pages_.size();
}

}  // namespace atrapos::storage
