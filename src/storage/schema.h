// Table schemas and fixed-width tuples.
//
// All workload tables (micro, TATP, TPC-C) use Int64 and fixed-width string
// columns, so records are fixed-size: the record layout is computed once per
// schema and tuples serialize to flat byte arrays stored in slotted pages.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace atrapos::storage {

enum class ColumnType : uint8_t {
  kInt64,
  kFixedString,  ///< fixed capacity, NUL-padded
};

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  uint32_t size = 8;  ///< bytes; 8 for Int64, capacity for FixedString

  static Column Int64(std::string name) {
    return Column{std::move(name), ColumnType::kInt64, 8};
  }
  static Column FixedString(std::string name, uint32_t cap) {
    return Column{std::move(name), ColumnType::kFixedString, cap};
  }
};

/// Immutable column layout; computes offsets and the record size.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols);

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  uint32_t offset(size_t i) const { return offsets_[i]; }
  uint32_t record_size() const { return record_size_; }
  /// Index of a column by name; -1 if absent.
  int FindColumn(std::string_view name) const;

 private:
  std::vector<Column> cols_;
  std::vector<uint32_t> offsets_;
  uint32_t record_size_ = 0;
};

/// A mutable record bound to a schema. Stores the flat serialized form.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(const Schema* schema)
      : schema_(schema), data_(schema->record_size(), 0) {}
  /// Wraps existing serialized bytes (copies them).
  Tuple(const Schema* schema, const uint8_t* bytes)
      : schema_(schema),
        data_(bytes, bytes + schema->record_size()) {}

  const Schema* schema() const { return schema_; }
  const uint8_t* data() const { return data_.data(); }
  uint8_t* mutable_data() { return data_.data(); }
  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

  int64_t GetInt(size_t col) const {
    int64_t v;
    std::memcpy(&v, data_.data() + schema_->offset(col), sizeof(v));
    return v;
  }
  void SetInt(size_t col, int64_t v) {
    std::memcpy(data_.data() + schema_->offset(col), &v, sizeof(v));
  }
  std::string GetString(size_t col) const;
  void SetString(size_t col, std::string_view v);

 private:
  const Schema* schema_ = nullptr;
  std::vector<uint8_t> data_;
};

}  // namespace atrapos::storage
