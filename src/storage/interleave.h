// Coroutine substrate for interleaved (AMAC-style) storage accesses.
//
// ATraPos pays a cache-miss-shaped penalty on every remote-island node and
// page touch (paper §II, Table I). A worker that executes each action to
// completion eats those misses serially; a worker that keeps K actions in
// flight can overlap them: each action *warms* its key path — issuing a
// `__builtin_prefetch` for the next B-tree node or heap record line, then
// suspending — while the lines of its K-1 neighbors travel. This header
// provides the pieces shared by storage and engine:
//
//  - PrefetchChain: a minimal resumable coroutine. Runs eagerly to its
//    first suspension on creation (so construction already issues the
//    first prefetch), then advances one hop per Resume(). Storage exposes
//    its warm accessors (BPlusTree::WarmDescent, HeapFile::WarmRecord) as
//    PrefetchChains; the engine's per-worker round-robin scheduler drives
//    one chain per in-flight action.
//  - StallPoint: the awaitable marking a memory-latency-bound point. The
//    coroutine has just prefetched what it needs next and parks; control
//    returns to the resumer (the worker's scheduler), which rotates to the
//    next in-flight action.
//  - SetThreadFramePool: coroutine frames allocate from the installed
//    mem::ChunkPool (the worker's partition pool) instead of the global
//    heap, so steady-state interleaving allocates nothing — the same
//    discipline as inbox chunks and log buffers. Frames larger than a
//    pool block (or allocated with no pool installed) fall back to the
//    heap; each frame remembers its origin, so creation and destruction
//    need not see the same installation.
//
// Warm chains are advisory: they only prefetch and never charge
// mem::AllocStats or take latches across a suspension, so a stale path
// (a neighbor's insert split a node mid-warm) costs at worst a useless
// prefetch. The authoritative access still happens in the action body.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

namespace atrapos::mem {
class ChunkPool;
}  // namespace atrapos::mem

namespace atrapos::storage {

/// Installs `pool` as the calling thread's coroutine-frame pool (nullptr
/// uninstalls). Engine workers install their partition's pool for the
/// lifetime of an interleaved drain.
void SetThreadFramePool(mem::ChunkPool* pool);
mem::ChunkPool* ThreadFramePool();

/// Awaitable marking a memory-latency-bound point: the issuing coroutine
/// has prefetched the line(s) it needs next and parks until its scheduler
/// resumes it. Suspension transfers control back to the resumer — there
/// is no queue and no handoff, which is exactly right for the worker's
/// cooperative single-threaded round-robin.
struct StallPoint {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

/// Prefetches the cache lines of [p, p+bytes), capped at 8 lines (a full
/// kOrder=64 B-tree key array is 512 B = 8 lines; records are smaller).
/// nullptr/empty spans are no-ops — prefetch never faults.
inline void PrefetchSpan(const void* p, std::size_t bytes) {
  const char* addr = static_cast<const char*>(p);
  std::size_t lines = (bytes + 63) / 64;
  if (lines > 8) lines = 8;
  for (std::size_t i = 0; i < lines; ++i)
    __builtin_prefetch(addr + i * 64, /*rw=*/0, /*locality=*/3);
}

/// Owning handle for one resumable prefetch pipeline. Move-only; destroys
/// the frame on destruction (whether or not the chain ran to completion,
/// so an abandoned warm — e.g. a zombie batch — leaks nothing).
class PrefetchChain {
 public:
  struct promise_type {
    /// Frames come from the thread's installed ChunkPool when they fit;
    /// the block's origin is stashed in a 16-byte header so delete works
    /// regardless of what is installed by then.
    static void* operator new(std::size_t n);
    static void operator delete(void* p, std::size_t n) noexcept;

    PrefetchChain get_return_object() {
      return PrefetchChain(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    /// Eager start: creation runs to the first StallPoint, issuing the
    /// first prefetch before the scheduler ever touches the chain.
    std::suspend_never initial_suspend() noexcept { return {}; }
    /// Suspend at the end so done() is observable; the owner destroys.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    /// Warm bodies only prefetch and compare — they cannot meaningfully
    /// throw, and an exception escaping a worker loop would kill the
    /// process anyway.
    void unhandled_exception() noexcept { std::terminate(); }
  };

  PrefetchChain() = default;
  ~PrefetchChain() {
    if (h_) h_.destroy();
  }
  PrefetchChain(PrefetchChain&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  PrefetchChain& operator=(PrefetchChain&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  PrefetchChain(const PrefetchChain&) = delete;
  PrefetchChain& operator=(const PrefetchChain&) = delete;

  /// True when the chain finished (or was default-constructed empty).
  bool done() const { return !h_ || h_.done(); }
  /// Advances to the next StallPoint (no-op when done).
  void Resume() {
    if (h_ && !h_.done()) h_.resume();
  }

 private:
  explicit PrefetchChain(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace atrapos::storage
