// Slotted data page. Fixed 8 KiB frames; records are fixed-size per table
// (see Schema) but the slot directory keeps the page format general.
//
// Layout:  [header][slot directory ...] ... free ... [records grow down]
//
// Frames are allocated from a mem::Arena when one is supplied, so a page
// physically lives on the hardware island that owns its partition (paper
// §II-B); without an arena the frame comes from the global heap.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "util/status.h"

namespace atrapos::mem {
class Arena;
}  // namespace atrapos::mem

namespace atrapos::storage {

constexpr uint32_t kPageSize = 8192;

/// Record identifier: heap id (the "partition bits" — a table-stable id of
/// the per-partition heap file the record lives in), page number within
/// that heap, and slot index within the page.
///
/// Encode() packs all three into the 64-bit value stored in the primary
/// index, tagged with a version so a stale encoding from the pre-partition
/// layout (page<<32|slot, version bits 00) fails loudly instead of being
/// misread as a (partition, page, slot) triple:
///
///   bits 63-62  version (0b01)
///   bits 61-48  partition / heap id   (14 bits, 16383 heaps per table)
///   bits 47-24  page                  (24 bits, 128 GiB per heap)
///   bits 23-0   slot                  (24 bits)
struct Rid {
  static constexpr uint32_t kPartitionBits = 14;
  static constexpr uint32_t kPageBits = 24;
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint32_t kMaxPartition = (1u << kPartitionBits) - 1;
  static constexpr uint32_t kMaxPage = (1u << kPageBits) - 1;
  static constexpr uint32_t kMaxSlot = (1u << kSlotBits) - 1;
  static constexpr uint64_t kVersion = 1;
  static constexpr uint32_t kVersionShift = 62;

  uint32_t partition = 0;
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid&) const = default;

  uint64_t Encode() const {
    return (kVersion << kVersionShift) |
           (static_cast<uint64_t>(partition) << (kPageBits + kSlotBits)) |
           (static_cast<uint64_t>(page) << kSlotBits) |
           static_cast<uint64_t>(slot);
  }

  /// Version-checked decode: nullopt when `v` does not carry the current
  /// version tag (e.g. a pre-partition page<<32|slot encoding).
  static std::optional<Rid> TryDecode(uint64_t v) {
    if ((v >> kVersionShift) != kVersion) return std::nullopt;
    return Rid{
        static_cast<uint32_t>((v >> (kPageBits + kSlotBits)) & kMaxPartition),
        static_cast<uint32_t>((v >> kSlotBits) & kMaxPage),
        static_cast<uint32_t>(v & kMaxSlot)};
  }

  /// Decode that fails loudly: a version mismatch is a corrupted index
  /// value or a stale pre-partition encoding — aborting beats silently
  /// dereferencing the wrong (partition, page, slot).
  static Rid Decode(uint64_t v) {
    std::optional<Rid> r = TryDecode(v);
    if (!r.has_value()) {
      std::fprintf(stderr,
                   "Rid::Decode: value %#llx lacks version tag %llu "
                   "(stale or corrupt encoding)\n",
                   static_cast<unsigned long long>(v),
                   static_cast<unsigned long long>(kVersion));
      std::abort();
    }
    return *r;
  }
};

/// A single slotted page. Not thread-safe; callers latch externally.
class Page {
 public:
  /// Allocates the frame from `arena` when given, else from the heap.
  explicit Page(mem::Arena* arena = nullptr);
  ~Page();

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  /// Inserts a record; returns the slot index or ResourceExhausted when the
  /// page cannot fit it.
  Result<uint32_t> Insert(const uint8_t* data, uint32_t len);

  /// Reads the record in `slot`; nullptr if the slot is empty/invalid.
  const uint8_t* Get(uint32_t slot, uint32_t* len = nullptr) const;

  /// Overwrites a record in place (same length only — fixed-size records).
  Status Update(uint32_t slot, const uint8_t* data, uint32_t len);

  /// Overwrites `len` bytes at `offset` within the record — the in-place
  /// application of a diff-encoded log record. InvalidArgument when the
  /// range does not fit the stored record; len 0 is a validated no-op.
  Status UpdateRange(uint32_t slot, uint32_t offset, const uint8_t* data,
                     uint32_t len);

  /// Deletes the record (slot becomes reusable tombstone).
  Status Delete(uint32_t slot);

  /// Moves the frame into `arena` (copying its contents and freeing the old
  /// frame) — the physical half of migrating a partition to a new island.
  void Reseat(mem::Arena* arena);

  /// Address of `slot`'s directory entry (nullptr when out of range) —
  /// prefetch target for the warm pipeline (storage/interleave.h), which
  /// wants the slot line in flight before Get() reads it.
  const void* SlotEntryAddr(uint32_t slot) const {
    return slot < num_slots_ ? static_cast<const void*>(&slots_[slot])
                             : nullptr;
  }

  mem::Arena* arena() const { return arena_; }
  uint32_t num_slots() const { return num_slots_; }
  uint32_t live_records() const { return live_; }
  uint32_t free_space() const;

 private:
  struct Slot {
    uint32_t off = 0;
    uint32_t len = 0;  // 0 => tombstone
  };
  void FreeFrame();

  // The 8 KiB frame holds the record heap, mirroring the on-disk layout of
  // Shore-MT pages; the slot directory is kept aside as plain metadata.
  mem::Arena* arena_ = nullptr;
  uint8_t* frame_ = nullptr;
  std::vector<Slot> slots_;
  uint32_t num_slots_ = 0;
  uint32_t live_ = 0;
  uint32_t heap_top_ = kPageSize;  // records grow down from the end
};

}  // namespace atrapos::storage
