// Slotted data page. Fixed 8 KiB frames; records are fixed-size per table
// (see Schema) but the slot directory keeps the page format general.
//
// Layout:  [header][slot directory ...] ... free ... [records grow down]
//
// Frames are allocated from a mem::Arena when one is supplied, so a page
// physically lives on the hardware island that owns its partition (paper
// §II-B); without an arena the frame comes from the global heap.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "util/status.h"

namespace atrapos::mem {
class Arena;
}  // namespace atrapos::mem

namespace atrapos::storage {

constexpr uint32_t kPageSize = 8192;

/// Record identifier: page number within a heap file + slot index.
struct Rid {
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid&) const = default;
  uint64_t Encode() const {
    return (static_cast<uint64_t>(page) << 32) | slot;
  }
  static Rid Decode(uint64_t v) {
    return Rid{static_cast<uint32_t>(v >> 32), static_cast<uint32_t>(v)};
  }
};

/// A single slotted page. Not thread-safe; callers latch externally.
class Page {
 public:
  /// Allocates the frame from `arena` when given, else from the heap.
  explicit Page(mem::Arena* arena = nullptr);
  ~Page();

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  /// Inserts a record; returns the slot index or ResourceExhausted when the
  /// page cannot fit it.
  Result<uint32_t> Insert(const uint8_t* data, uint32_t len);

  /// Reads the record in `slot`; nullptr if the slot is empty/invalid.
  const uint8_t* Get(uint32_t slot, uint32_t* len = nullptr) const;

  /// Overwrites a record in place (same length only — fixed-size records).
  Status Update(uint32_t slot, const uint8_t* data, uint32_t len);

  /// Deletes the record (slot becomes reusable tombstone).
  Status Delete(uint32_t slot);

  /// Moves the frame into `arena` (copying its contents and freeing the old
  /// frame) — the physical half of migrating a partition to a new island.
  void Reseat(mem::Arena* arena);

  mem::Arena* arena() const { return arena_; }
  uint32_t num_slots() const { return num_slots_; }
  uint32_t live_records() const { return live_; }
  uint32_t free_space() const;

 private:
  struct Slot {
    uint32_t off = 0;
    uint32_t len = 0;  // 0 => tombstone
  };
  void FreeFrame();

  // The 8 KiB frame holds the record heap, mirroring the on-disk layout of
  // Shore-MT pages; the slot directory is kept aside as plain metadata.
  mem::Arena* arena_ = nullptr;
  uint8_t* frame_ = nullptr;
  std::vector<Slot> slots_;
  uint32_t num_slots_ = 0;
  uint32_t live_ = 0;
  uint32_t heap_top_ = kPageSize;  // records grow down from the end
};

}  // namespace atrapos::storage
