// Slotted data page. Fixed 8 KiB frames; records are fixed-size per table
// (see Schema) but the slot directory keeps the page format general.
//
// Layout:  [header][slot directory ...] ... free ... [records grow down]
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "util/status.h"

namespace atrapos::storage {

constexpr uint32_t kPageSize = 8192;

/// Record identifier: page number within a heap file + slot index.
struct Rid {
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid&) const = default;
  uint64_t Encode() const {
    return (static_cast<uint64_t>(page) << 32) | slot;
  }
  static Rid Decode(uint64_t v) {
    return Rid{static_cast<uint32_t>(v >> 32), static_cast<uint32_t>(v)};
  }
};

/// A single slotted page. Not thread-safe; callers latch externally.
class Page {
 public:
  Page();

  /// Inserts a record; returns the slot index or ResourceExhausted when the
  /// page cannot fit it.
  Result<uint32_t> Insert(const uint8_t* data, uint32_t len);

  /// Reads the record in `slot`; nullptr if the slot is empty/invalid.
  const uint8_t* Get(uint32_t slot, uint32_t* len = nullptr) const;

  /// Overwrites a record in place (same length only — fixed-size records).
  Status Update(uint32_t slot, const uint8_t* data, uint32_t len);

  /// Deletes the record (slot becomes reusable tombstone).
  Status Delete(uint32_t slot);

  uint32_t num_slots() const { return num_slots_; }
  uint32_t live_records() const { return live_; }
  uint32_t free_space() const;

 private:
  struct Slot {
    uint32_t off = 0;
    uint32_t len = 0;  // 0 => tombstone
  };
  // In-memory representation: the slot directory and heap area are kept in
  // one contiguous buffer, mirroring the on-disk layout of Shore-MT pages.
  std::vector<uint8_t> data_;
  std::vector<Slot> slots_;
  uint32_t num_slots_ = 0;
  uint32_t live_ = 0;
  uint32_t heap_top_ = kPageSize;  // records grow down from the end
};

}  // namespace atrapos::storage
