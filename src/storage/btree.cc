#include "storage/btree.h"

#include <algorithm>
#include <cassert>

#include "mem/arena.h"

namespace atrapos::storage {

struct BPlusTree::Node {
  bool leaf;
  mem::Arena* owner = nullptr;  ///< arena the node was allocated from
  Internal* parent = nullptr;
  std::vector<uint64_t> keys;
  explicit Node(bool l) : leaf(l) {}
  virtual ~Node() = default;
};

struct BPlusTree::Leaf : Node {
  std::vector<uint64_t> vals;
  Leaf* next = nullptr;
  Leaf() : Node(true) {}
};

struct BPlusTree::Internal : Node {
  std::vector<Node*> children;  // children.size() == keys.size() + 1
  Internal() : Node(false) {}
  // Children are freed by FreeTree (they may live in a different arena).
};

BPlusTree::Leaf* BPlusTree::NewLeaf() {
  if (!arena_) return new Leaf();
  auto* l = new (arena_->Allocate(sizeof(Leaf))) Leaf();
  l->owner = arena_;
  return l;
}

BPlusTree::Internal* BPlusTree::NewInternal() {
  if (!arena_) return new Internal();
  auto* in = new (arena_->Allocate(sizeof(Internal))) Internal();
  in->owner = arena_;
  return in;
}

void BPlusTree::FreeNode(Node* n) {
  if (mem::Arena* a = n->owner) {
    size_t sz = n->leaf ? sizeof(Leaf) : sizeof(Internal);
    n->~Node();
    a->Deallocate(n, sz);
  } else {
    delete n;
  }
}

void BPlusTree::FreeTree(Node* n) {
  if (!n) return;
  if (!n->leaf)
    for (Node* c : static_cast<Internal*>(n)->children) FreeTree(c);
  FreeNode(n);
}

BPlusTree::BPlusTree(mem::Arena* arena) : arena_(arena) {
  auto* l = NewLeaf();
  root_ = l;
  first_leaf_ = l;
}

BPlusTree::~BPlusTree() { FreeTree(root_); }

BPlusTree::BPlusTree(BPlusTree&& o) noexcept
    : arena_(o.arena_),
      root_(o.root_),
      first_leaf_(o.first_leaf_),
      size_(o.size_) {
  o.root_ = nullptr;
  o.first_leaf_ = nullptr;
  o.size_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& o) noexcept {
  if (this != &o) {
    FreeTree(root_);
    arena_ = o.arena_;
    root_ = o.root_;
    first_leaf_ = o.first_leaf_;
    size_ = o.size_;
    o.root_ = nullptr;
    o.first_leaf_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

void BPlusTree::MigrateTo(mem::Arena* arena) {
  if (arena == arena_) return;
  std::vector<std::pair<uint64_t, uint64_t>> all;
  all.reserve(size_);
  Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    all.emplace_back(k, v);
    return true;
  });
  arena_ = arena;
  BulkLoad(std::move(all));
}

// Every node touched by a descent charges its size to the island the node
// lives on (requesting socket = calling thread, serving socket = arena
// home) — the index-traversal share of the paper's Table I QPI/IMC traffic
// signal. Nodes on the global heap (no arena) are unplaced and charge
// nothing.
void BPlusTree::ChargeNodeTouch(const Node* n) {
  if (n->owner)
    n->owner->RecordAccess(n->leaf ? sizeof(Leaf) : sizeof(Internal));
}

BPlusTree::Leaf* BPlusTree::FindLeaf(uint64_t key) const {
  Node* n = root_;
  ChargeNodeTouch(n);
  while (!n->leaf) {
    auto* in = static_cast<Internal*>(n);
    size_t i = static_cast<size_t>(
        std::upper_bound(in->keys.begin(), in->keys.end(), key) -
        in->keys.begin());
    n = in->children[i];
    ChargeNodeTouch(n);
  }
  return static_cast<Leaf*>(n);
}

void BPlusTree::InsertIntoParent(Node* left, uint64_t key, Node* right) {
  Internal* parent = left->parent;
  if (!parent) {
    auto* nr = NewInternal();
    nr->keys.push_back(key);
    nr->children = {left, right};
    left->parent = nr;
    right->parent = nr;
    root_ = nr;
    return;
  }
  size_t i = static_cast<size_t>(
      std::upper_bound(parent->keys.begin(), parent->keys.end(), key) -
      parent->keys.begin());
  parent->keys.insert(parent->keys.begin() + static_cast<long>(i), key);
  parent->children.insert(parent->children.begin() + static_cast<long>(i) + 1,
                          right);
  right->parent = parent;
  if (parent->children.size() > kOrder) {
    // Split the internal node.
    auto* sib = NewInternal();
    size_t mid = parent->keys.size() / 2;
    uint64_t up_key = parent->keys[mid];
    sib->keys.assign(parent->keys.begin() + static_cast<long>(mid) + 1,
                     parent->keys.end());
    sib->children.assign(parent->children.begin() + static_cast<long>(mid) + 1,
                         parent->children.end());
    for (Node* c : sib->children) c->parent = sib;
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);
    InsertIntoParent(parent, up_key, sib);
  }
}

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  Leaf* lf = FindLeaf(key);
  auto it = std::lower_bound(lf->keys.begin(), lf->keys.end(), key);
  size_t i = static_cast<size_t>(it - lf->keys.begin());
  if (it != lf->keys.end() && *it == key)
    return Status::AlreadyExists("duplicate key");
  lf->keys.insert(it, key);
  lf->vals.insert(lf->vals.begin() + static_cast<long>(i), value);
  ++size_;
  if (lf->keys.size() > kOrder) {
    auto* sib = NewLeaf();
    size_t mid = lf->keys.size() / 2;
    sib->keys.assign(lf->keys.begin() + static_cast<long>(mid), lf->keys.end());
    sib->vals.assign(lf->vals.begin() + static_cast<long>(mid), lf->vals.end());
    lf->keys.resize(mid);
    lf->vals.resize(mid);
    sib->next = lf->next;
    lf->next = sib;
    InsertIntoParent(lf, sib->keys.front(), sib);
  }
  return Status::OK();
}

void BPlusTree::Upsert(uint64_t key, uint64_t value) {
  Leaf* lf = FindLeaf(key);
  auto it = std::lower_bound(lf->keys.begin(), lf->keys.end(), key);
  if (it != lf->keys.end() && *it == key) {
    lf->vals[static_cast<size_t>(it - lf->keys.begin())] = value;
    return;
  }
  Status s = Insert(key, value);
  (void)s;
}

std::optional<uint64_t> BPlusTree::Get(uint64_t key) const {
  Leaf* lf = FindLeaf(key);
  auto it = std::lower_bound(lf->keys.begin(), lf->keys.end(), key);
  if (it == lf->keys.end() || *it != key) return std::nullopt;
  return lf->vals[static_cast<size_t>(it - lf->keys.begin())];
}

Status BPlusTree::Update(uint64_t key, uint64_t value) {
  Leaf* lf = FindLeaf(key);
  auto it = std::lower_bound(lf->keys.begin(), lf->keys.end(), key);
  if (it == lf->keys.end() || *it != key) return Status::NotFound("no key");
  lf->vals[static_cast<size_t>(it - lf->keys.begin())] = value;
  return Status::OK();
}

Status BPlusTree::Delete(uint64_t key) {
  Leaf* lf = FindLeaf(key);
  auto it = std::lower_bound(lf->keys.begin(), lf->keys.end(), key);
  if (it == lf->keys.end() || *it != key) return Status::NotFound("no key");
  size_t i = static_cast<size_t>(it - lf->keys.begin());
  lf->keys.erase(it);
  lf->vals.erase(lf->vals.begin() + static_cast<long>(i));
  --size_;
  return Status::OK();
}

// Warm counterpart of FindLeaf for the interleaved worker loop. Each
// resume slice reads only memory whose lines the previous slice
// prefetched, issues the next prefetch, and parks — the AMAC pattern.
// Reads within one slice are consistent (resumes are interleaved with
// whole action bodies on one thread, never mid-mutation); across slices
// the tree may have shifted under a neighbor's insert/delete, which can
// make the walk stale but never unsafe (normal operation only allocates
// nodes; see the header comment). Deliberately never calls
// ChargeNodeTouch: the authoritative descent in the action body does.
PrefetchChain BPlusTree::WarmDescent(uint64_t key,
                                     std::optional<uint64_t>* value_out) const {
  value_out->reset();
  const Node* n = root_;
  while (n != nullptr && !n->leaf) {
    const auto* in = static_cast<const Internal*>(n);
    // The node struct is resident (the previous hop prefetched it); its
    // key/child arrays live in their own heap blocks behind pointers we
    // can now read.
    PrefetchSpan(in->keys.data(), in->keys.size() * sizeof(uint64_t));
    PrefetchSpan(in->children.data(), in->children.size() * sizeof(Node*));
    co_await StallPoint{};
    size_t i = static_cast<size_t>(
        std::upper_bound(in->keys.begin(), in->keys.end(), key) -
        in->keys.begin());
    if (i >= in->children.size()) co_return;  // stale view: stop warming
    const Node* child = in->children[i];
    __builtin_prefetch(child, 0, 3);
    co_await StallPoint{};
    n = child;
  }
  if (n == nullptr) co_return;
  const auto* lf = static_cast<const Leaf*>(n);
  PrefetchSpan(lf->keys.data(), lf->keys.size() * sizeof(uint64_t));
  PrefetchSpan(lf->vals.data(), lf->vals.size() * sizeof(uint64_t));
  co_await StallPoint{};
  auto it = std::lower_bound(lf->keys.begin(), lf->keys.end(), key);
  if (it != lf->keys.end() && *it == key)
    *value_out = lf->vals[static_cast<size_t>(it - lf->keys.begin())];
}

void BPlusTree::Scan(uint64_t lo, uint64_t hi,
                     const std::function<bool(uint64_t, uint64_t)>& fn) const {
  Leaf* lf = FindLeaf(lo);
  while (lf) {
    for (size_t i = 0; i < lf->keys.size(); ++i) {
      uint64_t k = lf->keys[i];
      if (k < lo) continue;
      if (k > hi) return;
      if (!fn(k, lf->vals[i])) return;
    }
    lf = lf->next;
  }
}

std::vector<std::pair<uint64_t, uint64_t>> BPlusTree::ExtractFrom(
    uint64_t from) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  Scan(from, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    out.emplace_back(k, v);
    return true;
  });
  // Rebuild this tree with the remaining prefix. Simple and O(n) — the
  // linear cost is precisely the linear trend of Fig. 9.
  std::vector<std::pair<uint64_t, uint64_t>> keep;
  keep.reserve(size_ - out.size());
  Scan(0, from == 0 ? 0 : from - 1, [&](uint64_t k, uint64_t v) {
    keep.emplace_back(k, v);
    return true;
  });
  BulkLoad(std::move(keep));
  return out;
}

void BPlusTree::BulkAppend(
    const std::vector<std::pair<uint64_t, uint64_t>>& sorted) {
  for (auto [k, v] : sorted) {
    Status s = Insert(k, v);
    assert(s.ok());
    (void)s;
  }
}

void BPlusTree::BulkLoad(std::vector<std::pair<uint64_t, uint64_t>> sorted) {
  FreeTree(root_);
  auto* l = NewLeaf();
  root_ = l;
  first_leaf_ = l;
  size_ = 0;
  // Fill leaves to ~3/4 capacity left to right, then build internals by
  // plain inserts of separators (cheap relative to the data movement).
  Leaf* cur = l;
  constexpr size_t kFill = kOrder * 3 / 4;
  std::vector<Leaf*> leaves{cur};
  for (auto& [k, v] : sorted) {
    if (cur->keys.size() >= kFill) {
      auto* nl = NewLeaf();
      cur->next = nl;
      cur = nl;
      leaves.push_back(nl);
    }
    cur->keys.push_back(k);
    cur->vals.push_back(v);
  }
  size_ = sorted.size();
  if (leaves.size() == 1) return;
  // Build one level of internals at a time.
  std::vector<Node*> level(leaves.begin(), leaves.end());
  while (level.size() > 1) {
    std::vector<Node*> next_level;
    size_t i = 0;
    while (i < level.size()) {
      auto* in = NewInternal();
      size_t take = std::min<size_t>(kOrder, level.size() - i);
      // Avoid a trailing single-child internal node.
      if (level.size() - i - take == 1) --take;
      for (size_t j = 0; j < take; ++j) {
        Node* c = level[i + j];
        c->parent = in;
        if (j > 0) {
          // Separator = smallest key in subtree c.
          Node* n = c;
          while (!n->leaf) n = static_cast<Internal*>(n)->children[0];
          in->keys.push_back(n->keys.front());
        }
        in->children.push_back(c);
      }
      i += take;
      next_level.push_back(in);
    }
    level = std::move(next_level);
  }
  root_ = level[0];
  root_->parent = nullptr;
}

std::optional<uint64_t> BPlusTree::MinKey() const {
  Node* n = root_;
  while (!n->leaf) n = static_cast<Internal*>(n)->children[0];
  auto* lf = static_cast<Leaf*>(n);
  // The leftmost leaf can be empty after deletes; walk forward.
  while (lf && lf->keys.empty()) lf = lf->next;
  if (!lf) return std::nullopt;
  return lf->keys.front();
}

std::optional<uint64_t> BPlusTree::MaxKey() const {
  Node* n = root_;
  while (!n->leaf) n = static_cast<Internal*>(n)->children.back();
  auto* lf = static_cast<Leaf*>(n);
  if (lf->keys.empty()) {
    // Rare (rightmost leaf drained by deletes): fall back to a scan.
    std::optional<uint64_t> last;
    Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t) {
      last = k;
      return true;
    });
    return last;
  }
  return lf->keys.back();
}

int BPlusTree::height() const {
  int h = 1;
  Node* n = root_;
  while (!n->leaf) {
    n = static_cast<Internal*>(n)->children[0];
    ++h;
  }
  return h;
}

}  // namespace atrapos::storage
