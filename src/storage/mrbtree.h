// Multi-rooted B+-tree (paper §III-A, PLP): the original B-tree is split
// into one root per logical partition, with fence keys deciding which root
// serves a key. Because each partition is accessed only by its owner worker
// thread, subtree accesses need no latches in the critical path.
//
// Repartitioning actions (paper §V-D) operate on this structure:
//   Split(p, key)  — divide partition p into two at `key`
//   Merge(p)       — fuse partitions p and p+1
//   Rearrange      — one split plus one merge (composed by the caller)
// These mutate physical subtrees and the fence-key table; callers must have
// paused the affected partitions' workers first.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/btree.h"
#include "util/status.h"

namespace atrapos::storage {

class MultiRootedBTree {
 public:
  /// Creates `boundaries.size()` partitions; partition i serves keys in
  /// [boundaries[i], boundaries[i+1]) — the last one up to UINT64_MAX.
  /// boundaries[0] must be 0.
  explicit MultiRootedBTree(std::vector<uint64_t> boundaries = {0});

  size_t num_partitions() const { return parts_.size(); }
  /// Partition serving `key`.
  size_t PartitionOf(uint64_t key) const;
  uint64_t partition_start(size_t p) const { return parts_[p].start; }
  uint64_t partition_size(size_t p) const { return parts_[p].tree->size(); }
  uint64_t total_size() const;
  std::vector<uint64_t> Boundaries() const;

  // ---- Key operations (routed to the owning subtree) ---------------------
  Status Insert(uint64_t key, uint64_t value);
  std::optional<uint64_t> Get(uint64_t key) const;
  Status Update(uint64_t key, uint64_t value);
  Status Delete(uint64_t key);
  void Scan(uint64_t lo, uint64_t hi,
            const std::function<bool(uint64_t, uint64_t)>& fn) const;

  /// Direct subtree access for a partition's owner worker (latch-free path).
  BPlusTree& subtree(size_t p) { return *parts_[p].tree; }
  const BPlusTree& subtree(size_t p) const { return *parts_[p].tree; }

  // ---- Island placement (paper §II-B) ------------------------------------

  /// Future node allocations of partition p come from `arena`.
  void SetPartitionArena(size_t p, mem::Arena* arena) {
    parts_[p].tree->set_arena(arena);
  }
  mem::Arena* partition_arena(size_t p) const {
    return parts_[p].tree->arena();
  }
  /// Rebuilds partition p's subtree in `arena` (used when repartitioning
  /// hands the partition to a worker on another island).
  void MigratePartition(size_t p, mem::Arena* arena) {
    parts_[p].tree->MigrateTo(arena);
  }

  // ---- Repartitioning actions --------------------------------------------

  /// Splits partition p at `key` (strictly inside its range): p keeps
  /// [start, key), a new partition p+1 owns [key, next_start).
  Status Split(size_t p, uint64_t key);

  /// Merges partition p with p+1 (entries of p+1 are appended to p).
  Status Merge(size_t p);

  /// Replaces the whole partitioning with `boundaries`, redistributing all
  /// entries. Convenience for engine-level repartitioning to an arbitrary
  /// target; cost is linear in total entries.
  void Repartition(const std::vector<uint64_t>& boundaries);

 private:
  struct Part {
    uint64_t start;
    std::unique_ptr<BPlusTree> tree;
  };
  std::vector<Part> parts_;
};

}  // namespace atrapos::storage
