#include "storage/schema.h"

#include <algorithm>

namespace atrapos::storage {

Schema::Schema(std::vector<Column> cols) : cols_(std::move(cols)) {
  offsets_.reserve(cols_.size());
  uint32_t off = 0;
  for (const auto& c : cols_) {
    offsets_.push_back(off);
    off += c.size;
  }
  record_size_ = off;
}

int Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < cols_.size(); ++i)
    if (cols_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::string Tuple::GetString(size_t col) const {
  const Column& c = schema_->column(col);
  const char* p =
      reinterpret_cast<const char*>(data_.data() + schema_->offset(col));
  size_t len = 0;
  while (len < c.size && p[len] != '\0') ++len;
  return std::string(p, len);
}

void Tuple::SetString(size_t col, std::string_view v) {
  const Column& c = schema_->column(col);
  uint8_t* p = data_.data() + schema_->offset(col);
  size_t n = std::min<size_t>(v.size(), c.size);
  std::memcpy(p, v.data(), n);
  std::memset(p + n, 0, c.size - n);
}

}  // namespace atrapos::storage
