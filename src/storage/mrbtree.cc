#include "storage/mrbtree.h"

#include <algorithm>
#include <cassert>

namespace atrapos::storage {

MultiRootedBTree::MultiRootedBTree(std::vector<uint64_t> boundaries) {
  assert(!boundaries.empty() && boundaries[0] == 0);
  assert(std::is_sorted(boundaries.begin(), boundaries.end()));
  parts_.reserve(boundaries.size());
  for (uint64_t b : boundaries)
    parts_.push_back(Part{b, std::make_unique<BPlusTree>()});
}

size_t MultiRootedBTree::PartitionOf(uint64_t key) const {
  // Last partition whose start <= key.
  size_t lo = 0, hi = parts_.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (parts_[mid].start <= key)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

uint64_t MultiRootedBTree::total_size() const {
  uint64_t n = 0;
  for (const auto& p : parts_) n += p.tree->size();
  return n;
}

std::vector<uint64_t> MultiRootedBTree::Boundaries() const {
  std::vector<uint64_t> out;
  out.reserve(parts_.size());
  for (const auto& p : parts_) out.push_back(p.start);
  return out;
}

Status MultiRootedBTree::Insert(uint64_t key, uint64_t value) {
  return parts_[PartitionOf(key)].tree->Insert(key, value);
}

std::optional<uint64_t> MultiRootedBTree::Get(uint64_t key) const {
  return parts_[PartitionOf(key)].tree->Get(key);
}

Status MultiRootedBTree::Update(uint64_t key, uint64_t value) {
  return parts_[PartitionOf(key)].tree->Update(key, value);
}

Status MultiRootedBTree::Delete(uint64_t key) {
  return parts_[PartitionOf(key)].tree->Delete(key);
}

void MultiRootedBTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& fn) const {
  bool more = true;
  for (size_t p = PartitionOf(lo); p < parts_.size() && more; ++p) {
    if (parts_[p].start > hi) break;
    parts_[p].tree->Scan(lo, hi, [&](uint64_t k, uint64_t v) {
      more = fn(k, v);
      return more;
    });
  }
}

Status MultiRootedBTree::Split(size_t p, uint64_t key) {
  if (p >= parts_.size()) return Status::OutOfRange("no such partition");
  uint64_t start = parts_[p].start;
  uint64_t end = p + 1 < parts_.size() ? parts_[p + 1].start : UINT64_MAX;
  if (key <= start || key >= end)
    return Status::InvalidArgument("split key outside partition range");
  auto moved = parts_[p].tree->ExtractFrom(key);
  // The new right partition starts on its parent's island; the engine
  // re-places it once the new scheme's ownership is known.
  auto tree = std::make_unique<BPlusTree>(parts_[p].tree->arena());
  tree->BulkLoad(std::move(moved));
  parts_.insert(parts_.begin() + static_cast<long>(p) + 1,
                Part{key, std::move(tree)});
  return Status::OK();
}

Status MultiRootedBTree::Merge(size_t p) {
  if (p + 1 >= parts_.size()) return Status::OutOfRange("no right neighbor");
  // Append the right subtree's entries (all keys larger than p's max).
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(parts_[p + 1].tree->size());
  parts_[p + 1].tree->Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    entries.emplace_back(k, v);
    return true;
  });
  parts_[p].tree->BulkAppend(entries);
  parts_.erase(parts_.begin() + static_cast<long>(p) + 1);
  return Status::OK();
}

void MultiRootedBTree::Repartition(const std::vector<uint64_t>& boundaries) {
  assert(!boundaries.empty() && boundaries[0] == 0);
  std::vector<std::pair<uint64_t, uint64_t>> all;
  all.reserve(total_size());
  Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    all.emplace_back(k, v);
    return true;
  });
  std::vector<Part> np;
  np.reserve(boundaries.size());
  size_t i = 0;
  for (size_t b = 0; b < boundaries.size(); ++b) {
    uint64_t end = b + 1 < boundaries.size() ? boundaries[b + 1] : UINT64_MAX;
    std::vector<std::pair<uint64_t, uint64_t>> chunk;
    while (i < all.size() &&
           (all[i].first < end || end == UINT64_MAX)) {
      chunk.push_back(all[i]);
      ++i;
    }
    // Each new partition starts on the island that served its start key.
    auto tree = std::make_unique<BPlusTree>(
        parts_[PartitionOf(boundaries[b])].tree->arena());
    tree->BulkLoad(std::move(chunk));
    np.push_back(Part{boundaries[b], std::move(tree)});
  }
  parts_ = std::move(np);
}

}  // namespace atrapos::storage
