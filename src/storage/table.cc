#include "storage/table.h"

#include "mem/arena.h"

namespace atrapos::storage {

namespace {
thread_local MutationObserver* t_observer = nullptr;

/// Reusable pre-image buffer for the observer's diff encoding; records are
/// small and fixed-size, so one thread-local vector never reallocates in
/// steady state.
thread_local std::vector<uint8_t> t_before;
}  // namespace

void SetThreadMutationObserver(MutationObserver* obs) { t_observer = obs; }
MutationObserver* ThreadMutationObserver() { return t_observer; }

Table::Table(TableId id, std::string name, Schema schema,
             std::vector<uint64_t> boundaries)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      index_(std::move(boundaries)) {
  part_heap_.reserve(index_.num_partitions());
  for (size_t p = 0; p < index_.num_partitions(); ++p)
    part_heap_.push_back(NewHeap(nullptr));
}

uint32_t Table::NewHeap(mem::Arena* arena) {
  if (!free_heap_ids_.empty()) {
    uint32_t id = free_heap_ids_.back();
    free_heap_ids_.pop_back();
    heaps_[id] = std::make_unique<HeapFile>(id, arena);
    return id;
  }
  uint32_t id = static_cast<uint32_t>(heaps_.size());
  if (id > Rid::kMaxPartition) {
    std::fprintf(stderr, "Table %s: heap id space exhausted (%u heaps)\n",
                 name_.c_str(), id);
    std::abort();
  }
  heaps_.push_back(std::make_unique<HeapFile>(id, arena));
  return id;
}

void Table::RetireHeap(uint32_t id) {
  heaps_[id]->Reset();
  free_heap_ids_.push_back(id);
}

HeapFile* Table::HeapOf(Rid rid) {
  return rid.partition < heaps_.size() ? heaps_[rid.partition].get() : nullptr;
}

const HeapFile* Table::HeapOf(Rid rid) const {
  return rid.partition < heaps_.size() ? heaps_[rid.partition].get() : nullptr;
}

uint64_t Table::num_heap_records() const {
  uint64_t n = 0;
  for (size_t p = 0; p < num_partitions(); ++p) n += heap(p).num_records();
  return n;
}

Status Table::Insert(uint64_t key, const Tuple& row) {
  HeapFile& h = heap(index_.PartitionOf(key));
  auto rid = h.Insert(row.data(), row.size());
  if (!rid.ok()) return rid.status();
  Status s = index_.Insert(key, rid.value().Encode());
  if (!s.ok()) {
    // Roll the heap insert back so the table stays consistent.
    (void)h.Delete(rid.value());
    return s;
  }
  if (t_observer != nullptr)
    t_observer->OnInsert(id_, key, rid.value(), row);
  return Status::OK();
}

Status Table::Read(uint64_t key, Tuple* out) const {
  auto v = index_.Get(key);
  if (!v) return Status::NotFound("no such key");
  Rid rid = Rid::Decode(*v);
  const HeapFile* h = HeapOf(rid);
  if (h == nullptr) return Status::NotFound("stale heap id");
  *out = Tuple(&schema_);
  return h->Read(rid, out->mutable_data(), out->size());
}

Status Table::Update(uint64_t key, const Tuple& row) {
  auto v = index_.Get(key);
  if (!v) return Status::NotFound("no such key");
  Rid rid = Rid::Decode(*v);
  HeapFile* h = HeapOf(rid);
  if (h == nullptr) return Status::NotFound("stale heap id");
  if (t_observer != nullptr) {
    // Capture the before-image (one latch round-trip, same acquisition as
    // the write) so the observer can diff-encode the log record. Only
    // paid when the installed observer will diff.
    const uint8_t* before = nullptr;
    if (t_observer->WantsBeforeImage()) {
      t_before.resize(row.size());
      ATRAPOS_RETURN_NOT_OK(h->UpdateCapturingBefore(rid, row.data(),
                                                     row.size(),
                                                     t_before.data()));
      before = t_before.data();
    } else {
      ATRAPOS_RETURN_NOT_OK(h->Update(rid, row.data(), row.size()));
    }
    t_observer->OnUpdate(id_, key, rid, before, row);
    return Status::OK();
  }
  return h->Update(rid, row.data(), row.size());
}

Status Table::Delete(uint64_t key) {
  auto v = index_.Get(key);
  if (!v) return Status::NotFound("no such key");
  Rid rid = Rid::Decode(*v);
  HeapFile* h = HeapOf(rid);
  if (h == nullptr) return Status::NotFound("stale heap id");
  ATRAPOS_RETURN_NOT_OK(h->Delete(rid));
  ATRAPOS_RETURN_NOT_OK(index_.Delete(key));
  if (t_observer != nullptr) t_observer->OnDelete(id_, key, rid);
  return Status::OK();
}

Status Table::ApplyDiff(uint64_t key, uint32_t offset, const uint8_t* data,
                        uint32_t len) {
  auto v = index_.Get(key);
  if (!v) return Status::NotFound("no such key");
  Rid rid = Rid::Decode(*v);
  HeapFile* h = HeapOf(rid);
  if (h == nullptr) return Status::NotFound("stale heap id");
  return h->ApplyDelta(rid, offset, data, len);
}

void Table::MoveRecords(size_t p, uint32_t dst_id) {
  // Collect first: rewriting index values while scanning the same subtree
  // would invalidate the iteration.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(index_.partition_size(p));
  index_.subtree(p).Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    entries.emplace_back(k, v);
    return true;
  });
  HeapFile& dst = *heaps_[dst_id];
  std::vector<uint8_t> buf(schema_.record_size());
  for (auto [k, v] : entries) {
    Rid old = Rid::Decode(v);
    if (old.partition == dst_id) continue;  // already home
    HeapFile* src = HeapOf(old);
    // Migration-path copies: charged to the migration channel below, not
    // the steady-state access matrix the remote-traffic ratio reads. A
    // failure here is an invariant violation (the index references a
    // committed row we cannot re-home) — the caller may retire the source
    // heap next, so dropping the record silently would be data loss.
    Status moved_s = src == nullptr
                         ? Status::NotFound("stale heap id")
                         : src->ReadForMigration(old, buf.data(),
                                                 schema_.record_size());
    Result<Rid> moved = moved_s.ok()
                            ? dst.InsertForMigration(buf.data(),
                                                     schema_.record_size())
                            : Result<Rid>(moved_s);
    if (!moved.ok()) {
      std::fprintf(stderr,
                   "Table %s: cannot migrate key %llu between heaps: %s\n",
                   name_.c_str(), static_cast<unsigned long long>(k),
                   moved.status().ToString().c_str());
      std::abort();
    }
    (void)src->Delete(old);
    (void)index_.subtree(p).Update(k, moved.value().Encode());
    if (dst.arena() != nullptr && dst.arena()->stats() != nullptr) {
      mem::Arena* sa = src->arena();
      dst.arena()->stats()->RecordMigration(
          sa != nullptr ? sa->home_socket() : dst.arena()->home_socket(),
          dst.arena()->home_socket(), schema_.record_size());
    }
  }
}

Status Table::Split(size_t p, uint64_t key) {
  ATRAPOS_RETURN_NOT_OK(index_.Split(p, key));
  // The new right partition starts on its parent's island (like the
  // subtree); the engine re-places it once ownership is known.
  uint32_t h = NewHeap(heaps_[part_heap_[p]]->arena());
  part_heap_.insert(part_heap_.begin() + static_cast<long>(p) + 1, h);
  MoveRecords(p + 1, h);
  return Status::OK();
}

Status Table::Merge(size_t p) {
  if (p + 1 >= part_heap_.size()) return Status::OutOfRange("no right neighbor");
  uint32_t keep = part_heap_[p];
  uint32_t retire = part_heap_[p + 1];
  ATRAPOS_RETURN_NOT_OK(index_.Merge(p));
  part_heap_.erase(part_heap_.begin() + static_cast<long>(p) + 1);
  MoveRecords(p, keep);
  RetireHeap(retire);
  return Status::OK();
}

void Table::Repartition(const std::vector<uint64_t>& boundaries) {
  // Each new partition claims the heap of the old partition that served
  // its start key (first claimant wins), so records whose partition
  // assignment is unchanged keep their heap — and their Rids. Resolved
  // through the index *before* it is repartitioned.
  std::vector<uint32_t> old_heaps = std::move(part_heap_);
  std::vector<bool> claimed(old_heaps.size(), false);
  part_heap_.clear();
  for (uint64_t start : boundaries) {
    size_t op = index_.PartitionOf(start);
    if (!claimed[op]) {
      claimed[op] = true;
      part_heap_.push_back(old_heaps[op]);
    } else {
      // A fresh heap, starting on the island that served its start key
      // (like MultiRootedBTree::Repartition does for subtrees).
      part_heap_.push_back(NewHeap(heaps_[old_heaps[op]]->arena()));
    }
  }
  index_.Repartition(boundaries);
  // Records that changed partitions are re-homed; unclaimed heaps are
  // retired once emptied.
  for (size_t p = 0; p < part_heap_.size(); ++p) MoveRecords(p, part_heap_[p]);
  for (size_t i = 0; i < old_heaps.size(); ++i)
    if (!claimed[i]) RetireHeap(old_heaps[i]);
}

}  // namespace atrapos::storage
