#include "storage/table.h"

namespace atrapos::storage {

namespace {
thread_local MutationObserver* t_observer = nullptr;
}  // namespace

void SetThreadMutationObserver(MutationObserver* obs) { t_observer = obs; }
MutationObserver* ThreadMutationObserver() { return t_observer; }

Table::Table(TableId id, std::string name, Schema schema,
             std::vector<uint64_t> boundaries)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      index_(std::move(boundaries)) {}

Status Table::Insert(uint64_t key, const Tuple& row) {
  auto rid = heap_.Insert(row.data(), row.size());
  if (!rid.ok()) return rid.status();
  Status s = index_.Insert(key, rid.value().Encode());
  if (!s.ok()) {
    // Roll the heap insert back so the table stays consistent.
    (void)heap_.Delete(rid.value());
    return s;
  }
  if (t_observer != nullptr) t_observer->OnInsert(id_, key, row);
  return Status::OK();
}

Status Table::Read(uint64_t key, Tuple* out) const {
  auto rid = index_.Get(key);
  if (!rid) return Status::NotFound("no such key");
  *out = Tuple(&schema_);
  return heap_.Read(Rid::Decode(*rid), out->mutable_data(), out->size());
}

Status Table::Update(uint64_t key, const Tuple& row) {
  auto rid = index_.Get(key);
  if (!rid) return Status::NotFound("no such key");
  ATRAPOS_RETURN_NOT_OK(heap_.Update(Rid::Decode(*rid), row.data(),
                                     row.size()));
  if (t_observer != nullptr) t_observer->OnUpdate(id_, key, row);
  return Status::OK();
}

Status Table::Delete(uint64_t key) {
  auto rid = index_.Get(key);
  if (!rid) return Status::NotFound("no such key");
  ATRAPOS_RETURN_NOT_OK(heap_.Delete(Rid::Decode(*rid)));
  ATRAPOS_RETURN_NOT_OK(index_.Delete(key));
  if (t_observer != nullptr) t_observer->OnDelete(id_, key);
  return Status::OK();
}

}  // namespace atrapos::storage
