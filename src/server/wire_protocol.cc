#include "server/wire_protocol.h"

#include "workload/tatp.h"

namespace atrapos::server {

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kNotFound: return "NotFound";
    case WireStatus::kAlreadyExists: return "AlreadyExists";
    case WireStatus::kOverloaded: return "Overloaded";
    case WireStatus::kShutdown: return "Shutdown";
    case WireStatus::kError: return "Error";
    case WireStatus::kUnavailable: return "Unavailable";
  }
  return "?";
}

WireStatus ToWireStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk: return WireStatus::kOk;
    case StatusCode::kNotFound: return WireStatus::kNotFound;
    case StatusCode::kAlreadyExists: return WireStatus::kAlreadyExists;
    // Retryable transient outage: island quarantine aborts and the sealed
    // intake racing a shutdown. Clients back off and retry; a genuinely
    // draining server answers kShutdown at admission instead.
    case StatusCode::kUnavailable: return WireStatus::kUnavailable;
    case StatusCode::kResourceExhausted: return WireStatus::kOverloaded;
    default: return WireStatus::kError;
  }
}

TxnRequest DrawTatpMix(Rng& rng, uint64_t subscribers) {
  using workload::TatpTxn;
  TxnRequest r;
  r.s_id = rng.Uniform(subscribers);
  // Argument draws mirror TatpActionGraphs::Mix exactly, so a wire client
  // generates the same distribution an in-process driver does.
  uint64_t sf_type = rng.Uniform(4);
  r.sf_type = static_cast<uint8_t>(sf_type);
  int draw = static_cast<int>(rng.Uniform(100));
  if (draw < 35) {
    r.txn_class = TatpTxn::kGetSubData;
  } else if (draw < 45) {
    r.txn_class = TatpTxn::kGetNewDest;
    r.start_time = static_cast<uint32_t>(rng.Uniform(3) * 8);
    r.end_time = 1;
  } else if (draw < 80) {
    r.txn_class = TatpTxn::kGetAccData;
    r.a = static_cast<int64_t>(rng.Uniform(4));
  } else if (draw < 82) {
    r.txn_class = TatpTxn::kUpdSubData;
    r.a = static_cast<int64_t>(rng.Uniform(2));
    r.b = static_cast<int64_t>(rng.Uniform(256));
  } else if (draw < 96) {
    r.txn_class = TatpTxn::kUpdLocation;
    r.a = static_cast<int64_t>(rng.Next() % (1ULL << 31));
  } else if (draw < 98) {
    r.txn_class = TatpTxn::kInsCallFwd;
    r.start_time = static_cast<uint32_t>(rng.Uniform(4) * 8);
    r.end_time = static_cast<uint32_t>(rng.Uniform(24) + 8);
    r.numberx = "555-0199";
  } else {
    r.txn_class = TatpTxn::kDelCallFwd;
    r.start_time = static_cast<uint32_t>(rng.Uniform(4) * 8);
  }
  return r;
}

Result<engine::ActionGraph> BuildGraph(const workload::TatpActionGraphs& g,
                                       const TxnRequest& req) {
  using workload::TatpTxn;
  switch (req.txn_class) {
    case TatpTxn::kGetSubData:
      return g.GetSubscriberData(req.s_id);
    case TatpTxn::kGetNewDest:
      return g.GetNewDestination(req.s_id, req.sf_type, req.start_time,
                                 req.end_time);
    case TatpTxn::kGetAccData:
      return g.GetAccessData(req.s_id, static_cast<uint64_t>(req.a));
    case TatpTxn::kUpdSubData:
      return g.UpdateSubscriberData(req.s_id, req.a, req.sf_type, req.b);
    case TatpTxn::kUpdLocation:
      return g.UpdateLocation(req.s_id, req.a);
    case TatpTxn::kInsCallFwd:
      return g.InsertCallForwarding(req.s_id, req.sf_type, req.start_time,
                                    req.end_time, req.numberx);
    case TatpTxn::kDelCallFwd:
      return g.DeleteCallForwarding(req.s_id, req.sf_type, req.start_time);
    default:
      return Status::InvalidArgument("unknown txn_class " +
                                     std::to_string(req.txn_class));
  }
}

void EncodeHello(std::vector<uint8_t>* out, uint32_t requested_window) {
  FrameBuilder f(out, Op::kHello);
  PutU32(out, kMagic);
  PutU16(out, kVersion);
  PutU32(out, requested_window);
  f.End();
}

void EncodeHelloAck(std::vector<uint8_t>* out, uint32_t granted_window,
                    uint16_t num_islands, uint64_t subscribers) {
  FrameBuilder f(out, Op::kHelloAck);
  PutU32(out, kMagic);
  PutU16(out, kVersion);
  PutU32(out, granted_window);
  PutU16(out, num_islands);
  PutU64(out, subscribers);
  f.End();
}

void EncodeTxnBody(std::vector<uint8_t>* out, const TxnRequest& req) {
  PutU8(out, req.txn_class);
  PutU64(out, req.s_id);
  PutU8(out, req.sf_type);
  PutU32(out, req.start_time);
  PutU32(out, req.end_time);
  PutI64(out, req.a);
  PutI64(out, req.b);
  PutU8(out, static_cast<uint8_t>(req.numberx.size() & 0xff));
  for (char c : req.numberx) PutU8(out, static_cast<uint8_t>(c));
}

void EncodeTxn(std::vector<uint8_t>* out, uint64_t req_id,
               const TxnRequest& req) {
  FrameBuilder f(out, Op::kTxn);
  PutU64(out, req_id);
  EncodeTxnBody(out, req);
  f.End();
}

void EncodeTxnBatch(std::vector<uint8_t>* out,
                    const std::vector<uint64_t>& ids,
                    const std::vector<TxnRequest>& reqs) {
  FrameBuilder f(out, Op::kTxnBatch);
  PutU16(out, static_cast<uint16_t>(reqs.size()));
  for (size_t i = 0; i < reqs.size(); ++i) {
    PutU64(out, ids[i]);
    EncodeTxnBody(out, reqs[i]);
  }
  f.End();
}

void EncodeTxnAck(std::vector<uint8_t>* out, uint64_t req_id, WireStatus s) {
  FrameBuilder f(out, Op::kTxnAck);
  PutU64(out, req_id);
  PutU8(out, static_cast<uint8_t>(s));
  f.End();
}

void EncodePkRead(std::vector<uint8_t>* out, uint64_t req_id, uint8_t table,
                  uint8_t column, const std::vector<uint64_t>& keys) {
  FrameBuilder f(out, Op::kPkRead);
  PutU64(out, req_id);
  PutU8(out, table);
  PutU8(out, column);
  PutU16(out, static_cast<uint16_t>(keys.size()));
  for (uint64_t k : keys) PutU64(out, k);
  f.End();
}

void EncodePkReadAck(std::vector<uint8_t>* out, uint64_t req_id,
                     const std::vector<std::pair<WireStatus, int64_t>>& rows) {
  FrameBuilder f(out, Op::kPkReadAck);
  PutU64(out, req_id);
  PutU16(out, static_cast<uint16_t>(rows.size()));
  for (const auto& [st, v] : rows) {
    PutU8(out, static_cast<uint8_t>(st));
    PutI64(out, v);
  }
  f.End();
}

void EncodeStats(std::vector<uint8_t>* out) {
  FrameBuilder f(out, Op::kStats);
  f.End();
}

void EncodeStatsAck(std::vector<uint8_t>* out, const std::string& text) {
  FrameBuilder f(out, Op::kStatsAck);
  PutU32(out, static_cast<uint32_t>(text.size()));
  for (char c : text) PutU8(out, static_cast<uint8_t>(c));
  f.End();
}

void EncodeStatsSeries(std::vector<uint8_t>* out) {
  FrameBuilder f(out, Op::kStatsSeries);
  f.End();
}

void EncodeStatsSeriesAck(std::vector<uint8_t>* out, const std::string& json) {
  FrameBuilder f(out, Op::kStatsSeriesAck);
  PutU32(out, static_cast<uint32_t>(json.size()));
  for (char c : json) PutU8(out, static_cast<uint8_t>(c));
  f.End();
}

void EncodeGoodbye(std::vector<uint8_t>* out) {
  FrameBuilder f(out, Op::kGoodbye);
  f.End();
}

namespace {

bool DecodeTxnBody(WireReader* r, TxnRequest* req) {
  uint8_t nlen = 0;
  if (!r->U8(&req->txn_class) || !r->U64(&req->s_id) ||
      !r->U8(&req->sf_type) || !r->U32(&req->start_time) ||
      !r->U32(&req->end_time) || !r->I64(&req->a) || !r->I64(&req->b) ||
      !r->U8(&nlen)) {
    return false;
  }
  return r->Bytes(nlen, &req->numberx);
}

DecodedFrame Bad(std::string why) {
  DecodedFrame f;
  f.kind = DecodedFrame::Kind::kBad;
  f.error = std::move(why);
  return f;
}

}  // namespace

DecodedFrame DecodeRequestFrame(const uint8_t* p, size_t n) {
  WireReader r(p, n);
  uint8_t op = 0;
  if (!r.U8(&op)) return Bad("empty frame");
  DecodedFrame out;
  switch (static_cast<Op>(op)) {
    case Op::kHello: {
      uint32_t magic = 0;
      uint16_t version = 0;
      if (!r.U32(&magic) || !r.U16(&version) || !r.U32(&out.requested_window) ||
          !r.Done()) {
        return Bad("malformed HELLO");
      }
      if (magic != kMagic) return Bad("bad magic");
      if (version != kVersion) return Bad("unsupported protocol version");
      out.kind = DecodedFrame::Kind::kHello;
      return out;
    }
    case Op::kTxn: {
      DecodedTxn t;
      if (!r.U64(&t.req_id) || !DecodeTxnBody(&r, &t.req) || !r.Done())
        return Bad("malformed TXN");
      out.kind = DecodedFrame::Kind::kTxns;
      out.txns.push_back(std::move(t));
      return out;
    }
    case Op::kTxnBatch: {
      uint16_t count = 0;
      if (!r.U16(&count) || count == 0) return Bad("malformed TXN_BATCH");
      out.txns.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        DecodedTxn t;
        if (!r.U64(&t.req_id) || !DecodeTxnBody(&r, &t.req))
          return Bad("truncated TXN_BATCH");
        out.txns.push_back(std::move(t));
      }
      if (!r.Done()) return Bad("trailing bytes in TXN_BATCH");
      out.kind = DecodedFrame::Kind::kTxns;
      return out;
    }
    case Op::kPkRead: {
      uint16_t count = 0;
      if (!r.U64(&out.pk.req_id) || !r.U8(&out.pk.table) ||
          !r.U8(&out.pk.column) || !r.U16(&count) || count == 0) {
        return Bad("malformed PK_READ");
      }
      out.pk.keys.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        uint64_t k = 0;
        if (!r.U64(&k)) return Bad("truncated PK_READ");
        out.pk.keys.push_back(k);
      }
      if (!r.Done()) return Bad("trailing bytes in PK_READ");
      out.kind = DecodedFrame::Kind::kPkRead;
      return out;
    }
    case Op::kStats:
      if (!r.Done()) return Bad("trailing bytes in STATS");
      out.kind = DecodedFrame::Kind::kStats;
      return out;
    case Op::kStatsSeries:
      if (!r.Done()) return Bad("trailing bytes in STATS_SERIES");
      out.kind = DecodedFrame::Kind::kStatsSeries;
      return out;
    case Op::kGoodbye:
      if (!r.Done()) return Bad("trailing bytes in GOODBYE");
      out.kind = DecodedFrame::Kind::kGoodbye;
      return out;
    default:
      return Bad("unknown opcode " + std::to_string(op));
  }
}

}  // namespace atrapos::server
