// The wire tier's compact binary protocol (ROADMAP "networked transaction
// service front-end"; the batched-pk-read request form follows RonDB's
// batchpkread REST tier, the service framing "Towards Transaction as a
// Service").
//
// Every message is one length-prefixed frame:
//
//     +----------------+----------------------------------------+
//     | u32 len (LE)   | payload: u8 opcode + opcode body       |
//     +----------------+----------------------------------------+
//
// `len` counts payload bytes only; a frame longer than the server's
// max_frame_bytes is a protocol error (connection closed). All integers
// are little-endian. Opcode bodies:
//
//   HELLO       c→s  u32 magic 'ATRP', u16 version, u32 requested_window
//   HELLO_ACK   s→c  u32 magic, u16 version, u32 granted_window,
//                    u16 num_islands, u64 subscribers
//   TXN         c→s  u64 req_id, TxnBody
//   TXN_BATCH   c→s  u16 count, count × (u64 req_id, TxnBody)
//   TXN_ACK     s→c  u64 req_id, u8 WireStatus
//   PK_READ     c→s  u64 req_id, u8 table, u8 column, u16 count,
//                    count × u64 key          (occupies ONE window slot)
//   PK_READ_ACK s→c  u64 req_id, u16 count, count × (u8 status, i64 value)
//   STATS       c→s  (empty)
//   STATS_ACK   s→c  u32 len, len bytes of Prometheus text
//   GOODBYE     c→s  (empty; server closes once outstanding drains)
//   STATS_SERIES     c→s  (empty)
//   STATS_SERIES_ACK s→c  u32 len, len bytes of time-series JSON
//                         (obs::Sampler::ToJson; "{}" when sampling is off)
//
//   TxnBody: u8 txn_class (workload::TatpTxn), u64 s_id, u8 sf_type,
//            u32 start_time, u32 end_time, i64 a, i64 b,
//            u8 nlen, nlen bytes numberx
//
// Handshake/window semantics: the first frame on a connection MUST be
// HELLO. The server grants min(requested_window, Options::max_window) and
// the client may keep at most that many request frames outstanding
// (a TXN_BATCH of n transactions consumes n slots, a PK_READ one).
// Requests beyond the window — and requests arriving while the global
// in-flight cap is reached — are shed immediately with WireStatus
// kOverloaded instead of queueing. A draining server answers kShutdown.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "engine/action_graph.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/tatp_graphs.h"

namespace atrapos::server {

inline constexpr uint32_t kMagic = 0x41545250;  // "ATRP"
inline constexpr uint16_t kVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 4;
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

enum class Op : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kTxn = 3,
  kTxnBatch = 4,
  kTxnAck = 5,
  kPkRead = 6,
  kPkReadAck = 7,
  kStats = 8,
  kStatsAck = 9,
  kGoodbye = 10,
  kStatsSeries = 11,
  kStatsSeriesAck = 12,
};

/// Trace correlation id for one wire request: the client's req_id moved
/// into a namespace disjoint from engine-assigned txn ids, so the chrome
/// dump links client send → server decode → engine spans → durable ack
/// without ever colliding with an in-process transaction's id. Chains
/// from different clients stay distinct because req_ids themselves are
/// salted per Client instance (a process-wide nonce in bits 32..61, the
/// sequence number in the low 32 — see Client::req_id_base()); bit 62 is
/// only the wire-vs-engine namespace tag.
inline uint64_t WireTraceId(uint64_t req_id) {
  return req_id | (1ull << 62);
}

/// Per-request status on the wire. kOverloaded is admission control's shed
/// verdict and kUnavailable a transient engine-side outage (island
/// quarantine/evacuation in flight) — both retryable with backoff;
/// kShutdown means the server is draining for good (do not retry).
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,       ///< spec-conformant TATP miss
  kAlreadyExists = 2,  ///< spec-conformant TATP duplicate insert
  kOverloaded = 3,
  kShutdown = 4,
  kError = 5,
  kUnavailable = 6,
};
const char* WireStatusName(WireStatus s);
WireStatus ToWireStatus(const Status& s);
/// The statuses a TATP driver counts as successful execution (mirrors
/// workload::TatpActionGraphs::CountsAsSuccess).
inline bool WireCountsAsSuccess(WireStatus s) {
  return s == WireStatus::kOk || s == WireStatus::kNotFound ||
         s == WireStatus::kAlreadyExists;
}

/// One decoded transaction request: a TATP procedure id plus its
/// arguments, the unit the server translates into an
/// engine::ActionGraph. Field use per class (unused fields are zero):
///   kGetSubData:  s_id
///   kGetNewDest:  s_id, sf_type, start_time, end_time
///   kGetAccData:  s_id, a = ai_type
///   kUpdSubData:  s_id, sf_type, a = bit, b = data_a
///   kUpdLocation: s_id, a = vlr_location
///   kInsCallFwd:  s_id, sf_type, start_time, end_time, numberx
///   kDelCallFwd:  s_id, sf_type, start_time
struct TxnRequest {
  uint8_t txn_class = 0;
  uint64_t s_id = 0;
  uint8_t sf_type = 0;
  uint32_t start_time = 0;
  uint32_t end_time = 0;
  int64_t a = 0;
  int64_t b = 0;
  std::string numberx;
};

/// Draws one request from the standard TATP mix (35/10/35/2/14/2/2),
/// argument-for-argument the distribution TatpActionGraphs::Mix uses.
TxnRequest DrawTatpMix(Rng& rng, uint64_t subscribers);

/// Translates a decoded request into the executable graph (the server's
/// decode → ActionGraph step). InvalidArgument for an unknown txn_class.
Result<engine::ActionGraph> BuildGraph(const workload::TatpActionGraphs& g,
                                       const TxnRequest& req);

// ---- little-endian primitives ----------------------------------------------

inline void PutU8(std::vector<uint8_t>* b, uint8_t v) { b->push_back(v); }
inline void PutU16(std::vector<uint8_t>* b, uint16_t v) {
  b->push_back(static_cast<uint8_t>(v));
  b->push_back(static_cast<uint8_t>(v >> 8));
}
inline void PutU32(std::vector<uint8_t>* b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutU64(std::vector<uint8_t>* b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutI64(std::vector<uint8_t>* b, int64_t v) {
  PutU64(b, static_cast<uint64_t>(v));
}

/// Bounds-checked sequential reader over one frame payload. Every getter
/// returns false once the payload is exhausted; Done() is the
/// trailing-garbage check decoders run after the last field.
class WireReader {
 public:
  WireReader(const uint8_t* p, size_t n) : p_(p), n_(n) {}

  bool U8(uint8_t* v) { return Fixed(v, 1); }
  bool U16(uint16_t* v) { return Fixed(v, 2); }
  bool U32(uint32_t* v) { return Fixed(v, 4); }
  bool U64(uint64_t* v) { return Fixed(v, 8); }
  bool I64(int64_t* v) { return Fixed(v, 8); }
  bool Bytes(size_t n, std::string* out) {
    if (n_ - off_ < n) return false;
    out->assign(reinterpret_cast<const char*>(p_ + off_), n);
    off_ += n;
    return true;
  }
  bool Done() const { return off_ == n_; }
  size_t remaining() const { return n_ - off_; }

 private:
  template <typename T>
  bool Fixed(T* v, size_t n) {
    if (n_ - off_ < n) return false;
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i)
      acc |= static_cast<uint64_t>(p_[off_ + i]) << (8 * i);
    std::memcpy(v, &acc, sizeof(T));
    off_ += n;
    return true;
  }

  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
};

/// Appends one framed payload to `out`: writes the length prefix + opcode,
/// lets the caller append the body, then patches the length in End().
class FrameBuilder {
 public:
  FrameBuilder(std::vector<uint8_t>* out, Op op) : out_(out), at_(out->size()) {
    PutU32(out_, 0);  // patched by End()
    PutU8(out_, static_cast<uint8_t>(op));
  }
  /// Returns the total frame size (header + payload).
  size_t End() {
    uint32_t len =
        static_cast<uint32_t>(out_->size() - at_ - kFrameHeaderBytes);
    for (int i = 0; i < 4; ++i)
      (*out_)[at_ + static_cast<size_t>(i)] =
          static_cast<uint8_t>(len >> (8 * i));
    return static_cast<size_t>(len) + kFrameHeaderBytes;
  }

 private:
  std::vector<uint8_t>* out_;
  size_t at_;
};

// ---- frame encoders (both sides) -------------------------------------------

void EncodeHello(std::vector<uint8_t>* out, uint32_t requested_window);
void EncodeHelloAck(std::vector<uint8_t>* out, uint32_t granted_window,
                    uint16_t num_islands, uint64_t subscribers);
void EncodeTxnBody(std::vector<uint8_t>* out, const TxnRequest& req);
void EncodeTxn(std::vector<uint8_t>* out, uint64_t req_id,
               const TxnRequest& req);
/// reqs/ids must have equal length; emits one TXN_BATCH frame.
void EncodeTxnBatch(std::vector<uint8_t>* out,
                    const std::vector<uint64_t>& ids,
                    const std::vector<TxnRequest>& reqs);
void EncodeTxnAck(std::vector<uint8_t>* out, uint64_t req_id, WireStatus s);
void EncodePkRead(std::vector<uint8_t>* out, uint64_t req_id, uint8_t table,
                  uint8_t column, const std::vector<uint64_t>& keys);
void EncodePkReadAck(std::vector<uint8_t>* out, uint64_t req_id,
                     const std::vector<std::pair<WireStatus, int64_t>>& rows);
void EncodeStats(std::vector<uint8_t>* out);
void EncodeStatsAck(std::vector<uint8_t>* out, const std::string& text);
void EncodeStatsSeries(std::vector<uint8_t>* out);
void EncodeStatsSeriesAck(std::vector<uint8_t>* out, const std::string& json);
void EncodeGoodbye(std::vector<uint8_t>* out);

// ---- frame decoding (server side) ------------------------------------------

struct DecodedTxn {
  uint64_t req_id = 0;
  TxnRequest req;
};

struct DecodedPkRead {
  uint64_t req_id = 0;
  uint8_t table = 0;
  uint8_t column = 0;
  std::vector<uint64_t> keys;
};

/// One request frame after payload decoding. kBad carries a human-readable
/// reason; the server closes the connection on it.
struct DecodedFrame {
  enum class Kind {
    kHello,
    kTxns,
    kPkRead,
    kStats,
    kStatsSeries,
    kGoodbye,
    kBad,
  };
  Kind kind = Kind::kBad;
  uint32_t requested_window = 0;       // kHello
  std::vector<DecodedTxn> txns;        // kTxns (TXN and TXN_BATCH)
  DecodedPkRead pk;                    // kPkRead
  std::string error;                   // kBad
};

/// Decodes one request-frame payload (everything after the length prefix).
DecodedFrame DecodeRequestFrame(const uint8_t* p, size_t n);

}  // namespace atrapos::server
