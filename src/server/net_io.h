// Thin syscall wrappers for the wire tier: every read/write/accept the
// server or client issues goes through here so (a) EINTR is retried in
// exactly one place instead of ad hoc at each call site, and (b) the
// fault-injection sites kNetRead/kNetWrite/kNetAccept can surface
// realistic transient socket errors (ECONNRESET / ECONNABORTED) on any
// code path without touching the kernel.
//
// The wrappers preserve the raw syscall contract — return value and errno
// — so call sites keep their existing EAGAIN/short-count handling.
#pragma once

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

#include "fault/injector.h"

namespace atrapos::server::net {

/// ::read with EINTR retried and kNetRead injection (-1/ECONNRESET).
inline ssize_t ReadSome(int fd, void* buf, size_t n) {
  if (fault::Should(fault::SiteId::kNetRead)) {
    errno = ECONNRESET;
    return -1;
  }
  for (;;) {
    ssize_t r = ::read(fd, buf, n);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

/// ::write with EINTR retried and kNetWrite injection (-1/ECONNRESET).
/// Short writes are NOT completed here — non-blocking callers need the
/// partial count to re-arm EPOLLOUT; blocking callers loop themselves.
inline ssize_t WriteSome(int fd, const void* buf, size_t n) {
  if (fault::Should(fault::SiteId::kNetWrite)) {
    errno = ECONNRESET;
    return -1;
  }
  for (;;) {
    ssize_t r = ::write(fd, buf, n);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

/// ::accept4 with EINTR retried and kNetAccept injection (-1/ECONNABORTED
/// — the error a real listener sees when the peer resets mid-handshake;
/// accept loops must treat it as "skip this one", not close the listener).
inline ssize_t Accept4(int listen_fd, int flags) {
  if (fault::Should(fault::SiteId::kNetAccept)) {
    errno = ECONNABORTED;
    return -1;
  }
  for (;;) {
    int fd = ::accept4(listen_fd, nullptr, nullptr, flags);
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

/// Full-buffer blocking write: loops over WriteSome until every byte is
/// out or a real error (not EINTR) surfaces. For blocking sockets only.
inline bool WriteAll(int fd, const uint8_t* p, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = WriteSome(fd, p + off, n - off);
    if (w <= 0) return false;
    off += static_cast<size_t>(w);
  }
  return true;
}

/// eventfd wake: an 8-byte counter write, EINTR retried. Never injected —
/// the wake channel is process-internal plumbing, not a network surface,
/// and a lost wake turns into a missed-deadline hang rather than a
/// recoverable socket error.
inline void EventfdSignal(int fd) {
  uint64_t one = 1;
  for (;;) {
    ssize_t r = ::write(fd, &one, sizeof(one));
    if (r < 0 && errno == EINTR) continue;
    return;
  }
}

}  // namespace atrapos::server::net
