// server::Server — the networked transaction service front-end.
//
// One listener/worker thread per island, each owning its own epoll set and
// its own SO_REUSEPORT listen socket on the shared port (the kernel
// spreads incoming connections across them), optionally bound to a core of
// its island so a connection's decode → submit path stays island-local
// ("OLTP on Hardware Islands": topology-blind placement squanders
// locality). The thread reads non-blocking sockets, decodes the
// length-prefixed frames of wire_protocol.h, translates every transaction
// request of one epoll wave into a workload::TatpActionGraphs graph, and
// hands the whole wave to PartitionedExecutor::SubmitBatch — one inbox
// publish per destination partition per wave, so a network round trip
// carrying a TXN_BATCH amortizes exactly like an in-process batched
// submission.
//
// Completions never block engine workers: TxnFuture::OnComplete runs on
// the completing worker, encodes the TXN_ACK into the connection's
// outgoing buffer under a short mutex, and pokes the owning I/O thread's
// eventfd; the I/O thread writes the socket.
//
// Admission control (see wire_protocol.h for the handshake): bounded
// per-connection outstanding requests (window granted in HELLO_ACK), a
// global in-flight cap, shed-on-overload with WireStatus::kOverloaded, and
// kShutdown while draining. Stop() is a graceful drain: stop accepting,
// answer new requests with kShutdown, wait until every submitted
// transaction's response is queued, flush, close — then the owner runs
// Database::Drain() before destroying the executor (the documented
// shutdown sequence in engine/database.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "server/wire_protocol.h"
#include "workload/tatp_graphs.h"

namespace atrapos::server {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; read the bound port with port() after Start().
    uint16_t port = 0;
    /// Listener/worker threads per island (each gets its own epoll +
    /// SO_REUSEPORT listen socket).
    int listeners_per_island = 1;
    /// Per-connection outstanding-request cap; HELLO_ACK grants
    /// min(requested, max_window).
    uint32_t max_window = 256;
    /// Global in-flight transaction cap across all connections; requests
    /// beyond it are shed with kOverloaded.
    uint64_t max_inflight = 8192;
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Bind each listener thread to a core of its island.
    bool bind_listeners = true;
  };

  /// The server does not own db/exec; both must outlive it (destroy the
  /// server — or call Stop() — first). `subscribers` sizes the TATP graph
  /// builders and is echoed in HELLO_ACK.
  Server(engine::Database* db, engine::PartitionedExecutor* exec,
         uint64_t subscribers, Options opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, spawns the per-island I/O threads. Registers the wire
  /// tier's snapshot source (per-island accepts, open connections) with
  /// the database's obs::Registry.
  Status Start();

  /// Graceful drain (idempotent): stop accepting, answer further requests
  /// with kShutdown, wait for in-flight transactions, flush responses,
  /// close connections, join the I/O threads.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  uint64_t open_connections() const {
    return open_conns_.load(std::memory_order_relaxed);
  }
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  /// Connections accepted by island `i`'s listeners.
  uint64_t accepts(int island) const;

 private:
  struct Conn;
  struct IoThread;

  Status StartListener(IoThread* t);
  void IoLoop(IoThread* t);
  void AcceptReady(IoThread* t);
  /// Reads everything available; decodes frames; buckets the wave's
  /// transaction graphs for one SubmitBatch per loop pass. Returns false
  /// when the connection died (closed by peer or protocol error).
  bool ReadConn(IoThread* t, const std::shared_ptr<Conn>& c);
  void HandleFrame(IoThread* t, const std::shared_ptr<Conn>& c,
                   const uint8_t* payload, size_t n);
  void HandlePkRead(const std::shared_ptr<Conn>& c, DecodedPkRead pk);
  /// Submits the wave buffered by ReadConn/HandleFrame and attaches the
  /// completion-to-response callbacks.
  void SubmitWave(IoThread* t);
  /// Appends encoded response bytes to c's outgoing buffer and schedules
  /// the owning I/O thread to flush it. Safe from any thread; never
  /// blocks beyond the short per-connection buffer mutex.
  void QueueResponse(const std::shared_ptr<Conn>& c,
                     std::vector<uint8_t> bytes);
  /// I/O-thread only: writes c's buffered output to the socket; arms
  /// EPOLLOUT on a partial write. Returns false when the connection died.
  bool FlushConn(IoThread* t, const std::shared_ptr<Conn>& c);
  /// Flushes every connection queued by QueueResponse since the last pass.
  void FlushDirty(IoThread* t);
  void CloseConn(IoThread* t, const std::shared_ptr<Conn>& c);
  void ReleaseInflight(uint64_t n);

  engine::Database* db_;
  engine::PartitionedExecutor* exec_;
  workload::TatpActionGraphs graphs_;
  Options opt_;
  obs::Registry* obs_;
  int obs_source_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<IoThread>> io_threads_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> island_accepts_;

  std::atomic<uint64_t> open_conns_{0};
  /// Transactions submitted into the executor whose response is not yet
  /// queued. Admission control's global cap; Stop() waits for 0.
  std::atomic<uint64_t> inflight_{0};
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;

  /// Draining: new transaction requests answered with kShutdown.
  std::atomic<bool> draining_{false};
  /// Terminal: I/O threads flush, close and exit.
  std::atomic<bool> stop_{false};
};

}  // namespace atrapos::server
