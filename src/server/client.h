// server::Client — the in-process loopback client of the wire tier.
//
// A deliberately simple single-threaded multiplexer over N blocking
// sockets: Submit() buffers transaction requests per connection and flushes
// them as TXN_BATCH frames once `Options::batch` accumulate (the
// round-trip-amortization knob the server's wave submission is built for);
// Poll() reads whatever acks arrived and fires the registered callbacks.
// Tests and bench/wire_tatp drive it; it is not a production client.
//
// Window discipline: with enforce_window (default) Submit blocks in Poll()
// until a slot frees, implementing a well-behaved closed loop. Disable it
// to deliberately overrun the server's granted window and observe
// kOverloaded sheds (the backpressure tests do).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "server/wire_protocol.h"
#include "util/status.h"

namespace atrapos::server {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    int connections = 1;
    /// Requested per-connection window (HELLO); the server may grant less.
    uint32_t window = 64;
    /// Transactions buffered per connection before a TXN_BATCH frame is
    /// written. 1 = one TXN frame per request (the unbatched contrast).
    size_t batch = 1;
    /// Block in Submit() until a window slot frees. Off = requests go out
    /// regardless, so the server's admission control does the shedding.
    bool enforce_window = true;
    /// Per-request deadline for every blocking wait (handshake, window
    /// gate, Call, QueryStats). 0 = no deadline (block forever, the
    /// pre-fault-tolerance behavior). On expiry the wait returns
    /// kDeadlineExceeded and the abandoned request's callback is
    /// unregistered — a late ack is silently dropped, never double-fired.
    int64_t deadline_ms = 0;
    /// Call() retry budget for kOverloaded/kUnavailable answers (transient
    /// shed / island evacuation in flight). kShutdown is never retried —
    /// the server is going away for good. Each retry is a fresh request id
    /// separated by util::Backoff's jittered exponential delay.
    int retries = 0;
    uint64_t backoff_base_us = 200;
    uint64_t backoff_cap_us = 50'000;
    uint64_t backoff_seed = 1;
    /// When set, every submitted transaction records a kClientSend instant
    /// tagged WireTraceId(req_id) into this registry — the first link of
    /// the client→durable-ack span chain. Loopback harnesses pass the
    /// server database's registry; no-op while its tracing is off.
    obs::Registry* trace = nullptr;
  };

  /// Call()'s cumulative outcome counters (single-threaded, like the
  /// client itself). `attempts` counts wire round trips, so
  /// attempts - calls = total retries taken.
  struct CallStats {
    uint64_t calls = 0;                ///< Call() invocations
    uint64_t attempts = 0;             ///< round trips (first try + retries)
    uint64_t retries = 0;              ///< re-submissions after a shed
    uint64_t retries_overloaded = 0;   ///< ...answered kOverloaded
    uint64_t retries_unavailable = 0;  ///< ...answered kUnavailable
    uint64_t deadline_exceeded = 0;    ///< Call() returns kDeadlineExceeded
    uint64_t failures = 0;             ///< Call() returns any non-OK Status
  };

  /// Fired by Poll() when the TXN_ACK for a submitted request arrives.
  using TxnCallback = std::function<void(WireStatus)>;
  using PkRows = std::vector<std::pair<WireStatus, int64_t>>;
  using PkCallback = std::function<void(const PkRows&)>;

  explicit Client(Options opt);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and handshakes every connection.
  Status Connect();

  int connections() const { return static_cast<int>(conns_.size()); }
  /// The window HELLO_ACK granted connection `conn`.
  uint32_t granted_window(int conn) const;
  uint16_t num_islands() const { return num_islands_; }
  uint64_t subscribers() const { return subscribers_; }
  /// Requests submitted whose ack has not arrived (all connections).
  size_t outstanding() const { return outstanding_; }
  bool alive(int conn) const;

  /// This client's request-id salt: ids are allocated sequentially as
  /// req_id_base() + 1, + 2, ... The base carries a process-wide
  /// per-Client nonce in bits 32..61 so concurrent Client instances
  /// never reuse each other's ids — and WireTraceId chains from
  /// different clients never merge in a trace dump.
  uint64_t req_id_base() const { return req_id_base_; }

  /// Buffers one transaction on connection `conn`; flushes the batch frame
  /// once Options::batch accumulated. `cb` fires from Poll().
  Status Submit(int conn, const TxnRequest& req, TxnCallback cb);
  /// One batched-pk-read frame (always flushed immediately).
  Status PkRead(int conn, uint8_t table, uint8_t column,
                const std::vector<uint64_t>& keys, PkCallback cb);

  /// Writes out every partially-filled batch.
  void FlushAll();

  /// Reads available acks and fires their callbacks. timeout_ms < 0 blocks
  /// until at least one connection is readable. Returns callbacks fired.
  size_t Poll(int timeout_ms);

  /// Synchronous convenience: Submit + flush + Poll until this request's
  /// ack arrived (callbacks of other in-flight requests fire meanwhile).
  /// Honors Options::deadline_ms (kDeadlineExceeded on expiry) and retries
  /// kOverloaded/kUnavailable answers up to Options::retries times with
  /// jittered exponential backoff.
  Result<WireStatus> Call(int conn, const TxnRequest& req);

  /// STATS round trip: the server's Prometheus text exposition.
  Result<std::string> QueryStats(int conn = 0);

  /// STATS_SERIES round trip: the server sampler's time-series JSON
  /// (obs::Sampler::ToJson; "{}" when the server samples nothing).
  Result<std::string> QuerySeries(int conn = 0);

  const CallStats& call_stats() const { return call_stats_; }

  /// Test hook: writes raw bytes straight to the socket (malformed-frame
  /// and mid-frame-disconnect tests).
  Status SendRaw(int conn, const void* p, size_t n);
  /// Test hook: abrupt close, no GOODBYE (mid-frame disconnect).
  void Kill(int conn);

  /// GOODBYE on every live connection, then close all sockets. Pending
  /// callbacks are dropped.
  void CloseAll();

 private:
  struct Conn {
    int fd = -1;
    bool dead = true;
    uint32_t window = 0;
    std::vector<uint8_t> in;
    std::vector<uint64_t> pending_ids;
    std::vector<TxnRequest> pending_reqs;
    std::unordered_map<uint64_t, TxnCallback> txn_cbs;
    std::unordered_map<uint64_t, PkCallback> pk_cbs;
    /// Last STATS_ACK payload (QueryStats consumes it).
    std::string stats;
    bool stats_ready = false;
    /// Last STATS_SERIES_ACK payload (QuerySeries consumes it).
    std::string series;
    bool series_ready = false;
  };

  Status WriteAll(Conn* c, const uint8_t* p, size_t n);
  Status FlushBatch(Conn* c);
  /// Submit + report the request id allocated (Call's retry/abandon path
  /// needs it; Submit passes nullptr). May fire other callbacks if the
  /// batch boundary triggers the window gate's internal Poll.
  Status SubmitWithId(int conn, const TxnRequest& req, TxnCallback cb,
                      uint64_t* id_out);
  /// Drops an abandoned request: unregisters the callback and unbuffers
  /// the request if still unsent. No-op if the ack already fired.
  void AbandonTxn(Conn* c, uint64_t id);
  /// FlushBatch behind the window gate: with enforce_window, parks in
  /// Poll until the buffered batch fits under the granted window.
  Status GatedFlush(Conn* c);
  /// Drains one readable socket into c->in and dispatches completed
  /// frames. Returns callbacks fired; marks the connection dead on EOF
  /// (pending callbacks fire with kError so no caller hangs).
  size_t DrainConn(Conn* c);
  size_t DispatchFrames(Conn* c);
  void FailPending(Conn* c);
  Conn* conn(int i);

  Options opt_;
  std::vector<std::unique_ptr<Conn>> conns_;
  uint16_t num_islands_ = 0;
  uint64_t subscribers_ = 0;
  uint64_t req_id_base_ = 0;  // per-client nonce << 32 (set in ctor)
  uint64_t next_req_id_ = 1;
  size_t outstanding_ = 0;
  CallStats call_stats_;
};

}  // namespace atrapos::server
