#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "server/net_io.h"
#include "util/backoff.h"

namespace atrapos::server {

namespace {

uint32_t ReadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

/// One blocking wait's budget. Disabled (deadline_ms <= 0) reproduces the
/// old block-forever behavior; enabled, every Poll gets the remaining
/// time so a server that dies mid-request can never wedge the client.
struct Deadline {
  explicit Deadline(int64_t deadline_ms) : enabled(deadline_ms > 0) {
    if (enabled)
      at = std::chrono::steady_clock::now() +
           std::chrono::milliseconds(deadline_ms);
  }
  bool expired() const {
    return enabled && std::chrono::steady_clock::now() >= at;
  }
  /// poll(2) timeout: -1 (forever) when disabled, else remaining ms
  /// rounded UP — truncation would turn the final sub-millisecond of
  /// budget into Poll(0) busy-spinning until the clock crosses `at`.
  int poll_timeout() const {
    if (!enabled) return -1;
    auto left_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       at - std::chrono::steady_clock::now())
                       .count();
    if (left_us <= 0) return 0;
    return static_cast<int>(std::min<int64_t>((left_us + 999) / 1000,
                                              1'000'000));
  }

  bool enabled;
  std::chrono::steady_clock::time_point at;
};

}  // namespace

namespace {
/// Salts each Client instance's request ids (see Client::req_id_base):
/// req_ids are echoed back by the server and double as trace-id
/// material, so two clients counting 1, 2, 3... independently would
/// merge their span chains into one bogus dump.
std::atomic<uint64_t> g_client_nonce{0};
}  // namespace

Client::Client(Options opt) : opt_(std::move(opt)) {
  if (opt_.batch == 0) opt_.batch = 1;
  if (opt_.connections < 1) opt_.connections = 1;
  // 30-bit nonce in bits 32..61: below WireTraceId's bit-62 namespace
  // tag, above the 32-bit per-client sequence numbers.
  req_id_base_ = ((g_client_nonce.fetch_add(1, std::memory_order_relaxed) + 1) &
                  ((1ull << 30) - 1))
                 << 32;
  next_req_id_ = req_id_base_ + 1;
}

Client::~Client() { CloseAll(); }

Client::Conn* Client::conn(int i) {
  if (i < 0 || static_cast<size_t>(i) >= conns_.size()) return nullptr;
  return conns_[static_cast<size_t>(i)].get();
}

uint32_t Client::granted_window(int i) const {
  if (i < 0 || static_cast<size_t>(i) >= conns_.size()) return 0;
  return conns_[static_cast<size_t>(i)]->window;
}

bool Client::alive(int i) const {
  if (i < 0 || static_cast<size_t>(i) >= conns_.size()) return false;
  return !conns_[static_cast<size_t>(i)]->dead;
}

Status Client::Connect() {
  CloseAll();
  conns_.clear();
  for (int i = 0; i < opt_.connections; ++i) {
    auto c = std::make_unique<Conn>();
    c->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (c->fd < 0) return Status::Internal("socket: " + std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.port);
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(c->fd);
      return Status::InvalidArgument("bad host " + opt_.host);
    }
    if (::connect(c->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(c->fd);
      return Status::Internal("connect: " + std::string(std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(c->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    c->dead = false;
    conns_.push_back(std::move(c));
  }
  // Handshake: HELLO out, then block in Poll until every HELLO_ACK landed
  // (DispatchFrames fills window/num_islands_/subscribers_).
  for (auto& c : conns_) {
    std::vector<uint8_t> hello;
    EncodeHello(&hello, opt_.window);
    ATRAPOS_RETURN_NOT_OK(WriteAll(c.get(), hello.data(), hello.size()));
  }
  Deadline dl(opt_.deadline_ms);
  for (auto& c : conns_) {
    for (int spin = 0; !c->dead && c->window == 0; ++spin) {
      if (dl.expired())
        return Status::DeadlineExceeded("HELLO_ACK not received in time");
      if (spin > 100) return Status::Internal("handshake timed out");
      Poll(dl.enabled ? std::min(100, dl.poll_timeout()) : 100);
    }
    if (c->dead || c->window == 0)
      return Status::Internal("handshake failed (connection closed)");
  }
  return Status::OK();
}

Status Client::WriteAll(Conn* c, const uint8_t* p, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = net::WriteSome(c->fd, p + off, n - off);
    if (w < 0) {
      c->dead = true;
      FailPending(c);
      return Status::Internal("write: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Client::FlushBatch(Conn* c) {
  if (c->pending_ids.empty()) return Status::OK();
  std::vector<uint8_t> buf;
  if (c->pending_ids.size() == 1 && opt_.batch == 1) {
    EncodeTxn(&buf, c->pending_ids[0], c->pending_reqs[0]);
  } else {
    EncodeTxnBatch(&buf, c->pending_ids, c->pending_reqs);
  }
  c->pending_ids.clear();
  c->pending_reqs.clear();
  return WriteAll(c, buf.data(), buf.size());
}

Status Client::Submit(int i, const TxnRequest& req, TxnCallback cb) {
  return SubmitWithId(i, req, std::move(cb), nullptr);
}

Status Client::SubmitWithId(int i, const TxnRequest& req, TxnCallback cb,
                            uint64_t* id_out) {
  Conn* c = conn(i);
  if (!c || c->dead) return Status::InvalidArgument("connection not open");
  uint64_t id = next_req_id_++;
  if (id_out) *id_out = id;
  // The client-side start of the span chain; buffered requests count as
  // "sent" here — the batch flush follows within the same call tree.
  if (opt_.trace != nullptr)
    opt_.trace->Trace(obs::SpanId::kClientSend, obs::TracePhase::kInstant,
                      WireTraceId(id));
  c->txn_cbs.emplace(id, std::move(cb));
  ++outstanding_;
  c->pending_ids.push_back(id);
  c->pending_reqs.push_back(req);
  // Requests buffered but not yet written don't occupy server window
  // slots, so batching is free; the window gate runs at flush time.
  size_t flush_at = opt_.batch;
  if (opt_.enforce_window && c->window > 0)
    flush_at = std::min<size_t>(flush_at, c->window);
  if (c->pending_ids.size() >= flush_at) return GatedFlush(c);
  return Status::OK();
}

Status Client::GatedFlush(Conn* c) {
  if (opt_.enforce_window) {
    // Closed loop: park in Poll until the whole buffered batch fits in
    // the window — the server sheds anything beyond it, so a
    // well-behaved client never sends more than window unacked.
    auto sent_unacked = [&] {
      return c->txn_cbs.size() + c->pk_cbs.size() - c->pending_ids.size();
    };
    Deadline dl(opt_.deadline_ms);
    while (!c->dead && sent_unacked() + c->pending_ids.size() > c->window) {
      if (dl.expired())
        return Status::DeadlineExceeded("window gate: no ack in time");
      Poll(dl.poll_timeout());
    }
    if (c->dead) return Status::Unavailable("connection closed");
  }
  return FlushBatch(c);
}

Status Client::PkRead(int i, uint8_t table, uint8_t column,
                      const std::vector<uint64_t>& keys, PkCallback cb) {
  Conn* c = conn(i);
  if (!c || c->dead) return Status::InvalidArgument("connection not open");
  ATRAPOS_RETURN_NOT_OK(FlushBatch(c));  // preserve submission order
  uint64_t id = next_req_id_++;
  c->pk_cbs.emplace(id, std::move(cb));
  ++outstanding_;
  std::vector<uint8_t> buf;
  EncodePkRead(&buf, id, table, column, keys);
  return WriteAll(c, buf.data(), buf.size());
}

void Client::FlushAll() {
  for (auto& c : conns_) {
    if (!c->dead) GatedFlush(c.get());
  }
}

size_t Client::Poll(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<Conn*> who;
  for (auto& c : conns_) {
    if (c->dead) continue;
    fds.push_back({c->fd, POLLIN, 0});
    who.push_back(c.get());
  }
  if (fds.empty()) return 0;
  int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n <= 0) return 0;
  size_t fired = 0;
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
      fired += DrainConn(who[i]);
  }
  return fired;
}

size_t Client::DrainConn(Conn* c) {
  constexpr size_t kChunk = 64 * 1024;
  size_t old = c->in.size();
  c->in.resize(old + kChunk);
  ssize_t n = net::ReadSome(c->fd, c->in.data() + old, kChunk);
  if (n <= 0) {
    c->in.resize(old);
    if (n < 0 && errno == EAGAIN) return 0;
    c->dead = true;
    size_t fired = DispatchFrames(c);  // acks that landed before the close
    FailPending(c);
    return fired;
  }
  c->in.resize(old + static_cast<size_t>(n));
  return DispatchFrames(c);
}

size_t Client::DispatchFrames(Conn* c) {
  size_t fired = 0;
  size_t off = 0;
  while (c->in.size() - off >= kFrameHeaderBytes) {
    uint32_t len = ReadLE32(c->in.data() + off);
    if (c->in.size() - off - kFrameHeaderBytes < len) break;
    WireReader r(c->in.data() + off + kFrameHeaderBytes, len);
    off += kFrameHeaderBytes + len;
    uint8_t op = 0;
    if (!r.U8(&op)) continue;
    switch (static_cast<Op>(op)) {
      case Op::kHelloAck: {
        uint32_t magic = 0, window = 0;
        uint16_t version = 0;
        if (r.U32(&magic) && r.U16(&version) && r.U32(&window) &&
            r.U16(&num_islands_) && r.U64(&subscribers_) &&
            magic == kMagic) {
          c->window = window;
        }
        break;
      }
      case Op::kTxnAck: {
        uint64_t id = 0;
        uint8_t st = 0;
        if (!r.U64(&id) || !r.U8(&st)) break;
        auto it = c->txn_cbs.find(id);
        if (it == c->txn_cbs.end()) break;
        TxnCallback cb = std::move(it->second);
        c->txn_cbs.erase(it);
        --outstanding_;
        ++fired;
        if (cb) cb(static_cast<WireStatus>(st));
        break;
      }
      case Op::kPkReadAck: {
        uint64_t id = 0;
        uint16_t count = 0;
        if (!r.U64(&id) || !r.U16(&count)) break;
        PkRows rows;
        rows.reserve(count);
        bool good = true;
        for (uint16_t k = 0; k < count; ++k) {
          uint8_t st = 0;
          int64_t v = 0;
          if (!r.U8(&st) || !r.I64(&v)) {
            good = false;
            break;
          }
          rows.emplace_back(static_cast<WireStatus>(st), v);
        }
        auto it = c->pk_cbs.find(id);
        if (!good || it == c->pk_cbs.end()) break;
        PkCallback cb = std::move(it->second);
        c->pk_cbs.erase(it);
        --outstanding_;
        ++fired;
        if (cb) cb(rows);
        break;
      }
      case Op::kStatsAck: {
        uint32_t len32 = 0;
        if (!r.U32(&len32)) break;
        c->stats.clear();
        if (r.Bytes(len32, &c->stats)) c->stats_ready = true;
        break;
      }
      case Op::kStatsSeriesAck: {
        uint32_t len32 = 0;
        if (!r.U32(&len32)) break;
        c->series.clear();
        if (r.Bytes(len32, &c->series)) c->series_ready = true;
        break;
      }
      default:
        break;  // unexpected server frame: ignore
    }
  }
  c->in.erase(c->in.begin(), c->in.begin() + static_cast<ptrdiff_t>(off));
  return fired;
}

void Client::FailPending(Conn* c) {
  auto txn_cbs = std::move(c->txn_cbs);
  auto pk_cbs = std::move(c->pk_cbs);
  c->txn_cbs.clear();
  c->pk_cbs.clear();
  outstanding_ -= txn_cbs.size() + pk_cbs.size();
  for (auto& [id, cb] : txn_cbs) {
    if (cb) cb(WireStatus::kError);
  }
  PkRows empty;
  for (auto& [id, cb] : pk_cbs) {
    if (cb) cb(empty);
  }
}

void Client::AbandonTxn(Conn* c, uint64_t id) {
  auto it = c->txn_cbs.find(id);
  if (it == c->txn_cbs.end()) return;  // ack already fired (or FailPending)
  c->txn_cbs.erase(it);
  --outstanding_;
  for (size_t k = 0; k < c->pending_ids.size(); ++k) {
    if (c->pending_ids[k] != id) continue;
    c->pending_ids.erase(c->pending_ids.begin() + static_cast<ptrdiff_t>(k));
    c->pending_reqs.erase(c->pending_reqs.begin() + static_cast<ptrdiff_t>(k));
    break;
  }
}

Result<WireStatus> Client::Call(int i, const TxnRequest& req) {
  Conn* c = conn(i);
  if (!c || c->dead) return Status::InvalidArgument("connection not open");
  ++call_stats_.calls;
  util::Backoff backoff(opt_.backoff_base_us, opt_.backoff_cap_us,
                        opt_.backoff_seed);
  for (int attempt = 0;; ++attempt) {
    ++call_stats_.attempts;
    Deadline dl(opt_.deadline_ms);
    WireStatus out = WireStatus::kError;
    bool done = false;
    uint64_t id = 0;
    // The stack-capturing callback must never outlive this iteration:
    // every early return below first unregisters it via AbandonTxn.
    Status s = SubmitWithId(i, req,
                            [&](WireStatus ws) {
                              out = ws;
                              done = true;
                            },
                            &id);
    if (!s.ok()) {
      AbandonTxn(c, id);
      ++call_stats_.failures;
      if (s.code() == StatusCode::kDeadlineExceeded)
        ++call_stats_.deadline_exceeded;
      return s;
    }
    s = FlushBatch(c);
    if (!s.ok()) {
      AbandonTxn(c, id);
      ++call_stats_.failures;
      return s;
    }
    while (!done && !c->dead) {
      if (dl.expired()) {
        AbandonTxn(c, id);
        ++call_stats_.failures;
        ++call_stats_.deadline_exceeded;
        return Status::DeadlineExceeded("no TXN_ACK in time");
      }
      Poll(dl.poll_timeout());
    }
    if (!done) {
      ++call_stats_.failures;
      return Status::Unavailable("connection closed mid-call");
    }
    // kOverloaded (admission shed) and kUnavailable (island evacuation in
    // flight) are transient: back off and retry within the budget.
    // kShutdown means the server is draining for good — never retried.
    const bool retryable =
        out == WireStatus::kOverloaded || out == WireStatus::kUnavailable;
    if (!retryable || attempt >= opt_.retries) return out;
    ++call_stats_.retries;
    if (out == WireStatus::kOverloaded) ++call_stats_.retries_overloaded;
    if (out == WireStatus::kUnavailable) ++call_stats_.retries_unavailable;
    std::this_thread::sleep_for(
        std::chrono::microseconds(backoff.NextDelayUs()));
  }
}

Result<std::string> Client::QueryStats(int i) {
  Conn* c = conn(i);
  if (!c || c->dead) return Status::InvalidArgument("connection not open");
  c->stats_ready = false;
  std::vector<uint8_t> buf;
  EncodeStats(&buf);
  ATRAPOS_RETURN_NOT_OK(WriteAll(c, buf.data(), buf.size()));
  Deadline dl(opt_.deadline_ms);
  while (!c->stats_ready && !c->dead) {
    if (dl.expired())
      return Status::DeadlineExceeded("no STATS_ACK in time");
    Poll(dl.poll_timeout());
  }
  if (!c->stats_ready) return Status::Unavailable("connection closed");
  return c->stats;
}

Result<std::string> Client::QuerySeries(int i) {
  Conn* c = conn(i);
  if (!c || c->dead) return Status::InvalidArgument("connection not open");
  c->series_ready = false;
  std::vector<uint8_t> buf;
  EncodeStatsSeries(&buf);
  ATRAPOS_RETURN_NOT_OK(WriteAll(c, buf.data(), buf.size()));
  Deadline dl(opt_.deadline_ms);
  while (!c->series_ready && !c->dead) {
    if (dl.expired())
      return Status::DeadlineExceeded("no STATS_SERIES_ACK in time");
    Poll(dl.poll_timeout());
  }
  if (!c->series_ready) return Status::Unavailable("connection closed");
  return c->series;
}

Status Client::SendRaw(int i, const void* p, size_t n) {
  Conn* c = conn(i);
  if (!c || c->dead) return Status::InvalidArgument("connection not open");
  return WriteAll(c, static_cast<const uint8_t*>(p), n);
}

void Client::Kill(int i) {
  Conn* c = conn(i);
  if (!c || c->dead) return;
  c->dead = true;
  ::close(c->fd);
  c->fd = -1;
  FailPending(c);
}

void Client::CloseAll() {
  for (auto& c : conns_) {
    if (c->dead) continue;
    FlushBatch(c.get());
    std::vector<uint8_t> bye;
    EncodeGoodbye(&bye);
    WriteAll(c.get(), bye.data(), bye.size());
    c->dead = true;
    ::close(c->fd);
    c->fd = -1;
  }
  for (auto& c : conns_) FailPending(c.get());
}

}  // namespace atrapos::server
