#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "fault/injector.h"
#include "hw/binding.h"
#include "server/net_io.h"

namespace atrapos::server {

namespace {

/// Per-key result board of one in-flight PK_READ: every action writes only
/// its own slot, the graph's completion orders the writes before the
/// encoding callback reads them (same discipline as the payload board).
struct PkState {
  std::vector<std::pair<WireStatus, int64_t>> rows;
};

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

uint32_t ReadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

/// One accepted connection. The owning I/O thread is the only toucher of
/// fd/in/saw_goodbye/writing; `out` is the cross-thread handoff buffer
/// engine workers append responses to under out_mu.
struct Server::Conn {
  int fd = -1;
  IoThread* owner = nullptr;

  // ---- I/O-thread-only state ---------------------------------------------
  std::vector<uint8_t> in;       ///< unparsed request bytes
  std::vector<uint8_t> writing;  ///< response bytes being written
  size_t writing_off = 0;
  bool want_write = false;  ///< EPOLLOUT armed
  bool saw_goodbye = false;
  bool proto_error = false;  ///< close after the current read pass
  uint32_t window = 0;
  bool handshaken = false;

  // ---- shared state -------------------------------------------------------
  std::mutex out_mu;
  std::vector<uint8_t> out;  ///< responses queued, not yet picked up
  bool queued = false;       ///< in owner's dirty list (guarded by out_mu)
  /// Requests admitted, response not yet queued (window accounting).
  std::atomic<uint32_t> outstanding{0};
  std::atomic<bool> closed{false};
};

/// An island's listener/worker: its own SO_REUSEPORT listen socket, epoll
/// set, eventfd wake channel, connection table, and the wave buffers one
/// epoll pass fills before the single SubmitBatch.
struct Server::IoThread {
  int island = 0;
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  std::mutex dirty_mu;
  std::vector<std::shared_ptr<Conn>> dirty;  ///< have queued output

  /// One decoded-request wave (cleared after every SubmitBatch).
  struct WaveItem {
    std::shared_ptr<Conn> conn;
    uint64_t req_id = 0;
    uint64_t t0_ns = 0;
    std::shared_ptr<PkState> pk;  ///< null for plain transactions
    uint64_t trace_id = 0;        ///< WireTraceId(req_id) when tracing
  };
  std::vector<engine::ActionGraph> wave_graphs;
  std::vector<WaveItem> wave_items;
};

Server::Server(engine::Database* db, engine::PartitionedExecutor* exec,
               uint64_t subscribers, Options opt)
    : db_(db),
      exec_(exec),
      graphs_(subscribers),
      opt_(std::move(opt)),
      obs_(&db->observability()) {
  if (opt_.max_window == 0) opt_.max_window = 1;
  if (opt_.listeners_per_island < 1) opt_.listeners_per_island = 1;
}

Server::~Server() { Stop(); }

uint64_t Server::accepts(int island) const {
  if (island < 0 || static_cast<size_t>(island) >= island_accepts_.size())
    return 0;
  return island_accepts_[static_cast<size_t>(island)]->load(
      std::memory_order_relaxed);
}

Status Server::StartListener(IoThread* t) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Every listener binds the same port; the kernel spreads incoming
  // connections across the per-island sockets.
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    return Errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host " + opt_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind");
  }
  if (port_ == 0) {  // first listener chose the ephemeral port
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      return Errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(fd, 512) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  t->listen_fd = fd;

  t->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  t->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (t->epoll_fd < 0 || t->wake_fd < 0) return Errno("epoll/eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = t->listen_fd;
  ::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, t->listen_fd, &ev);
  ev.data.fd = t->wake_fd;
  ::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, t->wake_fd, &ev);
  return Status::OK();
}

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  port_ = opt_.port;
  const int islands = db_->num_sockets();
  island_accepts_.clear();
  for (int i = 0; i < islands; ++i)
    island_accepts_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  draining_.store(false, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  for (int i = 0; i < islands; ++i) {
    for (int l = 0; l < opt_.listeners_per_island; ++l) {
      auto t = std::make_unique<IoThread>();
      t->island = i;
      Status s = StartListener(t.get());
      if (!s.ok()) {
        io_threads_.push_back(std::move(t));  // so Stop() reaps the fds
        Stop();
        return s;
      }
      io_threads_.push_back(std::move(t));
    }
  }
  for (auto& t : io_threads_)
    t->thread = std::thread([this, tp = t.get()] { IoLoop(tp); });
  obs_source_ = obs_->AddSource([this](obs::StatsSnapshot& s) {
    s.net_island_accepts.clear();
    for (const auto& a : island_accepts_)
      s.net_island_accepts.push_back(a->load(std::memory_order_relaxed));
    int64_t open = static_cast<int64_t>(open_conns_.load());
    int64_t inflight = static_cast<int64_t>(inflight_.load());
    s.gauges[static_cast<size_t>(obs::GaugeId::kNetOpenConnections)] = open;
    s.gauges[static_cast<size_t>(obs::GaugeId::kNetInflightTxns)] = inflight;
    obs_->SetGauge(obs::GaugeId::kNetOpenConnections, open);
    obs_->SetGauge(obs::GaugeId::kNetInflightTxns, inflight);
  });
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (started_) {
    // Phase 1: drain. Listeners close, new requests answer kShutdown, and
    // every admitted transaction's response gets queued (engine callbacks
    // release inflight_ only after QueueResponse).
    draining_.store(true, std::memory_order_release);
    for (auto& t : io_threads_) net::EventfdSignal(t->wake_fd);
    {
      std::unique_lock lk(inflight_mu_);
      inflight_cv_.wait(lk, [this] {
        return inflight_.load(std::memory_order_acquire) == 0;
      });
    }
    // Phase 2: stop. I/O threads flush what is queued, close, exit.
    stop_.store(true, std::memory_order_release);
    for (auto& t : io_threads_) net::EventfdSignal(t->wake_fd);
  }
  for (auto& t : io_threads_) {
    if (t->thread.joinable()) t->thread.join();
    if (t->listen_fd >= 0) ::close(t->listen_fd);
    if (t->wake_fd >= 0) ::close(t->wake_fd);
    if (t->epoll_fd >= 0) ::close(t->epoll_fd);
    t->listen_fd = t->wake_fd = t->epoll_fd = -1;
  }
  io_threads_.clear();
  if (obs_source_ >= 0) {
    obs_->RemoveSource(obs_source_);
    obs_source_ = -1;
  }
  started_ = false;
}

void Server::IoLoop(IoThread* t) {
  if (opt_.bind_listeners) {
    const hw::Topology& topo = db_->topology();
    int cps = topo.num_cores() / topo.num_sockets();
    hw::BindCurrentThread(topo, t->island * cps);
  }
  std::vector<epoll_event> evs(128);
  while (!stop_.load(std::memory_order_acquire)) {
    // A draining server stops accepting: deregister + close the listener.
    if (draining_.load(std::memory_order_acquire) && t->listen_fd >= 0) {
      ::epoll_ctl(t->epoll_fd, EPOLL_CTL_DEL, t->listen_fd, nullptr);
      ::close(t->listen_fd);
      t->listen_fd = -1;
    }
    int n = ::epoll_wait(t->epoll_fd, evs.data(),
                         static_cast<int>(evs.size()), 100);
    for (int i = 0; i < n; ++i) {
      int fd = evs[i].data.fd;
      if (fd == t->wake_fd) {
        uint64_t drain = 0;
        while (::read(t->wake_fd, &drain, sizeof(drain)) > 0 ||
               errno == EINTR) {
        }
        continue;
      }
      if (fd == t->listen_fd) {
        AcceptReady(t);
        continue;
      }
      auto it = t->conns.find(fd);
      if (it == t->conns.end()) continue;
      std::shared_ptr<Conn> c = it->second;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(t, c);
        continue;
      }
      if ((evs[i].events & EPOLLIN) && !ReadConn(t, c)) {
        CloseConn(t, c);
        continue;
      }
      if ((evs[i].events & EPOLLOUT) && !FlushConn(t, c)) CloseConn(t, c);
    }
    // One SubmitBatch for everything this pass decoded — the wire tier's
    // counterpart of the executor's one-publish-per-partition batching.
    SubmitWave(t);
    FlushDirty(t);
  }
  // Terminal flush: anything still queued (e.g. shutdown acks) goes out
  // best-effort, then every connection closes.
  FlushDirty(t);
  std::vector<std::shared_ptr<Conn>> remaining;
  remaining.reserve(t->conns.size());
  for (auto& [fd, c] : t->conns) remaining.push_back(c);
  for (auto& c : remaining) {
    FlushConn(t, c);
    CloseConn(t, c);
  }
}

void Server::AcceptReady(IoThread* t) {
  for (;;) {
    int fd = static_cast<int>(
        net::Accept4(t->listen_fd, SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (fd < 0 && errno == ECONNABORTED) continue;  // peer reset mid-handshake
    if (fd < 0) return;  // EAGAIN or a transient error; epoll re-arms
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->owner = t;
    t->conns[fd] = c;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    island_accepts_[static_cast<size_t>(t->island)]->fetch_add(
        1, std::memory_order_relaxed);
    obs_->Count(obs::CounterId::kNetAccepts);
  }
}

bool Server::ReadConn(IoThread* t, const std::shared_ptr<Conn>& c) {
  constexpr size_t kReadChunk = 64 * 1024;
  // Peer closed: still parse the complete frames that arrived before the
  // close below — a protocol error from a hit-and-run client must be
  // counted (and a valid last request processed) whether or not the close
  // raced our read — then drop the connection.
  bool eof = false;
  for (;;) {
    size_t old = c->in.size();
    c->in.resize(old + kReadChunk);
    ssize_t n = net::ReadSome(c->fd, c->in.data() + old, kReadChunk);
    if (n > 0) {
      c->in.resize(old + static_cast<size_t>(n));
      obs_->Count(obs::CounterId::kNetBytesIn, static_cast<uint64_t>(n));
      continue;
    }
    c->in.resize(old);
    if (n == 0) {  // possibly mid-frame: the partial tail stays unparsed
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  size_t off = 0;
  while (c->in.size() - off >= kFrameHeaderBytes) {
    uint32_t len = ReadLE32(c->in.data() + off);
    if (len > opt_.max_frame_bytes) {
      obs_->Count(obs::CounterId::kNetProtocolErrors);
      return false;  // oversized frame: close, don't try to resync
    }
    if (c->in.size() - off - kFrameHeaderBytes < len) break;  // partial
    obs_->Count(obs::CounterId::kNetFramesIn);
    HandleFrame(t, c, c->in.data() + off + kFrameHeaderBytes, len);
    off += kFrameHeaderBytes + len;
    if (c->proto_error) return false;
  }
  c->in.erase(c->in.begin(), c->in.begin() + static_cast<ptrdiff_t>(off));
  return !eof;
}

void Server::HandleFrame(IoThread* t, const std::shared_ptr<Conn>& c,
                         const uint8_t* payload, size_t n) {
  DecodedFrame f = DecodeRequestFrame(payload, n);
  if (f.kind == DecodedFrame::Kind::kBad ||
      (!c->handshaken && f.kind != DecodedFrame::Kind::kHello) ||
      (c->handshaken && f.kind == DecodedFrame::Kind::kHello)) {
    // Malformed frame, unknown opcode, or handshake-order violation: a
    // per-connection error. Close this connection; everyone else is
    // untouched, and any in-flight transactions of this connection still
    // release their admission slots through their completion callbacks.
    obs_->Count(obs::CounterId::kNetProtocolErrors);
    c->proto_error = true;
    return;
  }
  const bool draining = draining_.load(std::memory_order_acquire);
  switch (f.kind) {
    case DecodedFrame::Kind::kHello: {
      c->window = std::min(std::max(f.requested_window, 1u), opt_.max_window);
      c->handshaken = true;
      std::vector<uint8_t> ack;
      EncodeHelloAck(&ack, c->window,
                     static_cast<uint16_t>(db_->num_sockets()),
                     graphs_.subscribers());
      QueueResponse(c, std::move(ack));
      return;
    }
    case DecodedFrame::Kind::kTxns: {
      for (DecodedTxn& txn : f.txns) {
        if (draining) {
          std::vector<uint8_t> ack;
          EncodeTxnAck(&ack, txn.req_id, WireStatus::kShutdown);
          QueueResponse(c, std::move(ack));
          continue;
        }
        // Island quarantine in flight: shed, don't queue. Admitting now
        // would park this I/O thread on the executor's scheme gate behind
        // the evacuation — every connection on this island would stall.
        // kUnavailable tells the client to back off and retry.
        if (exec_->quarantining()) {
          obs_->Count(obs::CounterId::kNetTxnsShed);
          std::vector<uint8_t> ack;
          EncodeTxnAck(&ack, txn.req_id, WireStatus::kUnavailable);
          QueueResponse(c, std::move(ack));
          continue;
        }
        // Admission control. Outstanding counts admitted-not-yet-answered
        // requests, so a whole burst beyond the window sheds
        // deterministically: nothing admitted in this wave can complete
        // before the wave is submitted.
        if (c->outstanding.load(std::memory_order_acquire) >= c->window) {
          obs_->Count(obs::CounterId::kNetTxnsShed);
          std::vector<uint8_t> ack;
          EncodeTxnAck(&ack, txn.req_id, WireStatus::kOverloaded);
          QueueResponse(c, std::move(ack));
          continue;
        }
        if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
            opt_.max_inflight) {
          ReleaseInflight(1);
          obs_->Count(obs::CounterId::kNetTxnsShed);
          std::vector<uint8_t> ack;
          EncodeTxnAck(&ack, txn.req_id, WireStatus::kOverloaded);
          QueueResponse(c, std::move(ack));
          continue;
        }
        auto g = BuildGraph(graphs_, txn.req);
        if (!g.ok()) {
          ReleaseInflight(1);
          std::vector<uint8_t> ack;
          EncodeTxnAck(&ack, txn.req_id, WireStatus::kError);
          QueueResponse(c, std::move(ack));
          continue;
        }
        c->outstanding.fetch_add(1, std::memory_order_acq_rel);
        engine::ActionGraph graph = g.take();
        uint64_t trace_id = 0;
        if (obs_->trace_enabled()) {
          // Stamp the request's wire trace id on the graph so every engine
          // span of this transaction correlates back to the client req_id,
          // and mark the decode+admit instant on the server timeline.
          trace_id = WireTraceId(txn.req_id);
          graph.set_trace_id(trace_id);
          obs_->Trace(obs::SpanId::kWireDecode, obs::TracePhase::kInstant,
                      trace_id);
        }
        t->wave_graphs.push_back(std::move(graph));
        t->wave_items.push_back(
            {c, txn.req_id, obs_->NowNs(), nullptr, trace_id});
      }
      return;
    }
    case DecodedFrame::Kind::kPkRead:
      HandlePkRead(c, std::move(f.pk));
      return;
    case DecodedFrame::Kind::kStats: {
      std::vector<uint8_t> ack;
      EncodeStatsAck(&ack, db_->StatsSnapshot().ToPrometheus());
      QueueResponse(c, std::move(ack));
      return;
    }
    case DecodedFrame::Kind::kStatsSeries: {
      std::vector<uint8_t> ack;
      const obs::Sampler* sampler = db_->sampler();
      EncodeStatsSeriesAck(&ack, sampler != nullptr ? sampler->ToJson()
                                                    : std::string("{}"));
      QueueResponse(c, std::move(ack));
      return;
    }
    case DecodedFrame::Kind::kGoodbye:
      c->saw_goodbye = true;  // FlushConn closes once outstanding drains
      return;
    case DecodedFrame::Kind::kBad:
      return;  // handled above
  }
}

void Server::HandlePkRead(const std::shared_ptr<Conn>& c, DecodedPkRead pk) {
  auto answer_all = [&](WireStatus ws) {
    std::vector<std::pair<WireStatus, int64_t>> rows(pk.keys.size(),
                                                     {ws, 0});
    std::vector<uint8_t> ack;
    EncodePkReadAck(&ack, pk.req_id, rows);
    QueueResponse(c, std::move(ack));
  };
  if (draining_.load(std::memory_order_acquire)) {
    answer_all(WireStatus::kShutdown);
    return;
  }
  if (exec_->quarantining()) {  // shed during evacuation, as for TXN
    obs_->Count(obs::CounterId::kNetTxnsShed);
    answer_all(WireStatus::kUnavailable);
    return;
  }
  // One window slot and one global in-flight slot per PK_READ frame, no
  // matter how many keys it batches — the batch is the amortization unit.
  if (c->outstanding.load(std::memory_order_acquire) >= c->window) {
    obs_->Count(obs::CounterId::kNetTxnsShed);
    answer_all(WireStatus::kOverloaded);
    return;
  }
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      opt_.max_inflight) {
    ReleaseInflight(1);
    obs_->Count(obs::CounterId::kNetTxnsShed);
    answer_all(WireStatus::kOverloaded);
    return;
  }
  const int table = pk.table;
  const size_t column = pk.column;
  bool valid = table >= 0 && static_cast<size_t>(table) < db_->num_tables();
  if (valid) {
    const storage::Schema& schema = db_->table(table)->schema();
    valid = column < schema.num_columns() &&
            schema.column(column).type == storage::ColumnType::kInt64;
  }
  if (!valid) {
    ReleaseInflight(1);
    answer_all(WireStatus::kError);
    return;
  }
  auto state = std::make_shared<PkState>();
  state->rows.assign(pk.keys.size(), {WireStatus::kError, 0});
  engine::ActionGraph g;
  for (size_t i = 0; i < pk.keys.size(); ++i) {
    uint64_t key = pk.keys[i];
    g.Add(table, key,
          [state, i, key, column](storage::Table* tb, engine::ActionCtx&) {
            storage::Tuple row;
            Status s = tb->Read(key, &row);
            (*state).rows[i] = s.ok()
                                   ? std::make_pair(WireStatus::kOk,
                                                    row.GetInt(column))
                                   : std::make_pair(WireStatus::kNotFound,
                                                    int64_t{0});
            return Status::OK();  // per-key misses are per-row statuses
          });
  }
  c->outstanding.fetch_add(1, std::memory_order_acq_rel);
  c->owner->wave_graphs.push_back(std::move(g));
  c->owner->wave_items.push_back({c, pk.req_id, obs_->NowNs(), state});
}

void Server::SubmitWave(IoThread* t) {
  if (t->wave_graphs.empty()) return;
  // A quarantine that started after this wave's requests were admitted:
  // answer locally instead of submitting. SubmitBatch would block on the
  // scheme gate until the evacuation's Repartition finishes, freezing this
  // I/O thread (and every connection it owns) for the whole outage.
  bool unavailable = exec_->quarantining();
  if (unavailable) {
    obs_->Count(obs::CounterId::kNetTxnsShed,
                static_cast<uint64_t>(t->wave_items.size()));
  }
  Result<std::vector<engine::TxnFuture>> futures =
      unavailable
          ? Result<std::vector<engine::TxnFuture>>(
                Status::Unavailable("island quarantine in progress"))
          : exec_->SubmitBatch(t->wave_graphs);
  if (!futures.ok()) {
    // Sealed executor, quarantine, or a validation surprise: answer every
    // admitted request and release its slots — nothing leaks.
    WireStatus ws = ToWireStatus(futures.status());
    for (IoThread::WaveItem& item : t->wave_items) {
      std::vector<uint8_t> ack;
      if (item.pk) {
        for (auto& row : item.pk->rows) row = {ws, 0};
        EncodePkReadAck(&ack, item.req_id, item.pk->rows);
      } else {
        EncodeTxnAck(&ack, item.req_id, ws);
      }
      QueueResponse(item.conn, std::move(ack));
      item.conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
      ReleaseInflight(1);
    }
  } else {
    auto& fs = futures.value();
    for (size_t i = 0; i < fs.size(); ++i) {
      // Runs on the completing engine worker: encode, queue, poke the I/O
      // thread — never block.
      fs[i].OnComplete([this, item = std::move(t->wave_items[i])](
                           const Status& s) mutable {
        std::vector<uint8_t> ack;
        if (item.pk) {
          EncodePkReadAck(&ack, item.req_id, item.pk->rows);
        } else {
          EncodeTxnAck(&ack, item.req_id, ToWireStatus(s));
        }
        obs_->RecordLatency(obs::HistId::kWireLatencyUs,
                            (obs_->NowNs() - item.t0_ns) / 1000);
        if (item.trace_id != 0)
          obs_->Trace(obs::SpanId::kWireAck, obs::TracePhase::kInstant,
                      item.trace_id);
        QueueResponse(item.conn, std::move(ack));
        item.conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
        ReleaseInflight(1);
      });
    }
  }
  t->wave_graphs.clear();
  t->wave_items.clear();
}

void Server::QueueResponse(const std::shared_ptr<Conn>& c,
                           std::vector<uint8_t> bytes) {
  if (c->closed.load(std::memory_order_acquire)) return;  // response dropped
  obs_->Count(obs::CounterId::kNetFramesOut);
  bool enqueue = false;
  {
    std::lock_guard lk(c->out_mu);
    c->out.insert(c->out.end(), bytes.begin(), bytes.end());
    if (!c->queued) {
      c->queued = true;
      enqueue = true;
    }
  }
  if (enqueue) {
    IoThread* t = c->owner;
    {
      std::lock_guard lk(t->dirty_mu);
      t->dirty.push_back(c);
    }
    net::EventfdSignal(t->wake_fd);
  }
}

bool Server::FlushConn(IoThread* t, const std::shared_ptr<Conn>& c) {
  if (c->closed.load(std::memory_order_relaxed)) return true;
  for (;;) {
    if (c->writing_off == c->writing.size()) {
      c->writing.clear();
      c->writing_off = 0;
      std::lock_guard lk(c->out_mu);
      if (c->out.empty()) {
        c->queued = false;
        break;
      }
      c->writing.swap(c->out);
    }
    // Injected stall: pretend the socket would block. The connection is
    // actually writable and EPOLLOUT is level-triggered, so the next epoll
    // pass completes the flush — a delay, never a loss. Exercises the
    // re-arm path that only congested peers hit organically.
    ssize_t w;
    if (fault::Should(fault::SiteId::kNetStall)) {
      w = -1;
      errno = EAGAIN;
    } else {
      w = net::WriteSome(c->fd, c->writing.data() + c->writing_off,
                         c->writing.size() - c->writing_off);
    }
    if (w > 0) {
      c->writing_off += static_cast<size_t>(w);
      obs_->Count(obs::CounterId::kNetBytesOut, static_cast<uint64_t>(w));
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c->want_write) {
        c->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = c->fd;
        ::epoll_ctl(t->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
      }
      return true;
    }
    return false;  // EPIPE / reset: the close path releases nothing extra
  }
  if (c->want_write) {
    c->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = c->fd;
    ::epoll_ctl(t->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }
  // GOODBYE drain: close once every admitted request answered and the
  // answers are written. `outstanding` is decremented only after the
  // response was queued, so 0 + empty buffers means fully answered.
  if (c->saw_goodbye &&
      c->outstanding.load(std::memory_order_acquire) == 0) {
    bool empty;
    {
      std::lock_guard lk(c->out_mu);
      empty = c->out.empty() && c->writing.empty();
    }
    if (empty) CloseConn(t, c);
  }
  return true;
}

void Server::FlushDirty(IoThread* t) {
  std::vector<std::shared_ptr<Conn>> dirty;
  {
    std::lock_guard lk(t->dirty_mu);
    dirty.swap(t->dirty);
  }
  for (auto& c : dirty) {
    if (c->closed.load(std::memory_order_relaxed)) continue;
    if (!FlushConn(t, c)) CloseConn(t, c);
  }
}

void Server::CloseConn(IoThread* t, const std::shared_ptr<Conn>& c) {
  if (c->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::epoll_ctl(t->epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  t->conns.erase(c->fd);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  // In-flight transactions of this connection keep running; their
  // completion callbacks see `closed`, drop the response bytes, and still
  // release the window + global slots — no leak on mid-frame disconnect.
}

void Server::ReleaseInflight(uint64_t n) {
  if (inflight_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard lk(inflight_mu_);
    inflight_cv_.notify_all();
  }
}

}  // namespace atrapos::server
