// The discrete-event machine simulator.
//
// Simulated workers are C++20 coroutines. They advance simulated time by
// awaiting primitives (Delay / Compute / Stall / MemAccess and the
// synchronization objects in cache_line.h, locks.h, resource.h, channel.h).
// A single real thread drives the event queue, so simulations are fully
// deterministic.
//
// Cancellation protocol: Machine::Shutdown() flips running() to false and
// drains every parked coroutine. Awaitables complete immediately (zero cost)
// once the machine is stopped, so worker loops written as
// `while (ctx.mach->running()) { ... co_await ...; }` unwind cleanly and
// all coroutine frames are destroyed.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <vector>

#include "hw/topology.h"
#include "sim/cost_params.h"
#include "sim/counters.h"
#include "sim/time.h"

namespace atrapos::sim {

class Machine;

/// Fire-and-forget coroutine. Starts eagerly; the frame self-destructs when
/// the coroutine runs to completion.
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Execution context of a simulated worker: which core it is pinned to.
/// Mirrors the paper's thread binding (§IV): a worker's socket identity
/// decides which partition of every NUMA-aware structure it touches.
struct Ctx {
  Machine* mach = nullptr;
  hw::CoreId core = 0;
  hw::SocketId socket = 0;
};

/// Waiter bookkeeping shared by all blocking primitives.
struct Waiter {
  std::coroutine_handle<> h;
  Ctx* ctx = nullptr;
  Tick enqueued_at = 0;
};

class Machine {
 public:
  Machine(const hw::Topology& topo, CostParams params = CostParams{});

  const hw::Topology& topology() const { return *topo_; }
  const CostParams& params() const { return params_; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  Tick now() const { return now_; }
  bool running() const { return running_; }

  /// Makes a worker context pinned to `core`.
  Ctx MakeCtx(hw::CoreId core) {
    return Ctx{this, core, topo_->socket_of(core)};
  }

  // ---- Scheduling --------------------------------------------------------

  /// Runs `fn` at simulated time `t` (>= now).
  void At(Tick t, std::function<void()> fn);
  /// Resumes `h` at simulated time `t`.
  void ResumeAt(Tick t, std::coroutine_handle<> h);

  /// Drives the event loop until simulated time `t` (events at exactly `t`
  /// are executed). Returns the number of events processed.
  size_t RunUntil(Tick t);
  /// Drives the event loop until no events remain.
  size_t RunUntilIdle();

  /// Stops the simulation: running() becomes false, all queued events run,
  /// and blocking primitives drain their waiters so coroutine frames are
  /// reclaimed. Must be called from outside the event loop.
  void Shutdown();

  /// Blocking primitives register themselves to be drained at Shutdown().
  using Drainer = std::function<void()>;
  void RegisterDrainer(Drainer d) { drainers_.push_back(std::move(d)); }

  // ---- Timed awaitables ---------------------------------------------------

  struct DelayAwaiter {
    Machine* m;
    Tick t_resume;
    bool await_ready() const noexcept { return !m->running(); }
    void await_suspend(std::coroutine_handle<> h) { m->ResumeAt(t_resume, h); }
    void await_resume() const noexcept {}
  };

  /// Pure wall-clock delay (no accounting): used by monitoring threads.
  DelayAwaiter Delay(Tick d) { return {this, now_ + d}; }

  /// Useful execution work: occupies `cycles`, retires instructions at
  /// params().work_ipc.
  DelayAwaiter Compute(Ctx& ctx, Tick cycles) {
    auto& cc = counters_.core(ctx.core);
    cc.busy += cycles;
    cc.instr += static_cast<uint64_t>(static_cast<double>(cycles) *
                                      params_.work_ipc);
    return {this, now_ + cycles};
  }

  /// Stall: cycles pass, almost no instructions retire (cache-line
  /// transfers, DRAM waits).
  DelayAwaiter Stall(Ctx& ctx, Tick cycles, uint64_t instr = 0) {
    auto& cc = counters_.core(ctx.core);
    cc.stall += cycles;
    cc.instr += instr;
    return {this, now_ + cycles};
  }

  /// Accounts `cycles` of spin-waiting (high IPC, no progress) ending now.
  /// Called by locks when a waiter is granted.
  void AccountSpin(Ctx& ctx, Tick cycles) {
    auto& cc = counters_.core(ctx.core);
    cc.spin += cycles;
    cc.instr += static_cast<uint64_t>(static_cast<double>(cycles) *
                                      params_.spin_ipc);
  }

  /// Row accesses against memory homed on `mem_node`: per-row CPU work plus
  /// LLC-miss DRAM latency (local or remote), with IMC/QPI traffic
  /// accounting. `work_per_row` is one of params().row_*_work.
  DelayAwaiter MemAccess(Ctx& ctx, hw::SocketId mem_node, uint64_t rows,
                         Tick work_per_row);

  /// Deterministic per-machine hash stream for miss-ratio draws.
  uint64_t NextHash() {
    hash_state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t x = hash_state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  struct Event {
    Tick t;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  const hw::Topology* topo_;
  CostParams params_;
  Counters counters_;
  Tick now_ = 0;
  uint64_t seq_ = 0;
  bool running_ = true;
  uint64_t hash_state_ = 0x853c49e6748fea9bULL;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<Drainer> drainers_;
};

}  // namespace atrapos::sim
