#include "sim/resource.h"

namespace atrapos::sim {

Resource::Resource(Machine* m, hw::SocketId home, bool spin_wait,
                   int handoff_lines)
    : mach_(m),
      last_socket_(home),
      spin_wait_(spin_wait),
      handoff_lines_(handoff_lines) {
  mach_->RegisterDrainer([this] {
    while (!waiters_.empty()) {
      auto p = waiters_.front();
      waiters_.pop_front();
      p.w.h.resume();
    }
  });
}

void Resource::Awaiter::await_suspend(std::coroutine_handle<> h) {
  res->waiters_.push_back(
      Pending{Waiter{h, ctx, res->mach_->now()}, service});
  if (!res->busy_) res->Grant();
}

void Resource::Grant() {
  if (waiters_.empty() || !mach_->running()) return;
  Pending p = waiters_.front();
  waiters_.pop_front();
  busy_ = true;
  ++uses_;

  const CostParams& prm = mach_->params();
  Ctx* ctx = p.w.ctx;

  // Time spent queued.
  Tick waited = mach_->now() - p.w.enqueued_at;
  total_wait_ += waited;
  if (waited > 0) {
    if (spin_wait_) {
      mach_->AccountSpin(*ctx, waited);
    } else {
      mach_->counters().core(ctx->core).stall += waited;
    }
  }

  // Service time; a cross-socket handoff drags every line the critical
  // section touches over QPI (coherence misses inside the CS).
  Tick service = p.service;
  int lines =
      handoff_lines_ >= 0 ? handoff_lines_ : prm.resource_handoff_lines;
  if (ctx->socket != last_socket_) {
    int hops = mach_->topology().Distance(ctx->socket, last_socket_);
    service += static_cast<Tick>(lines) *
               (prm.cas_remote_base +
                static_cast<Tick>(hops) * prm.cas_remote_per_hop);
    mach_->counters().AddQpiBytes(
        last_socket_, ctx->socket,
        static_cast<uint64_t>(lines) * prm.cache_line_bytes);
  } else {
    service += prm.cas_local;
  }
  last_socket_ = ctx->socket;

  auto& cc = mach_->counters().core(ctx->core);
  cc.busy += service;
  cc.instr += static_cast<uint64_t>(static_cast<double>(service) *
                                    prm.work_ipc * 0.5);

  mach_->At(mach_->now() + service, [this, h = p.w.h] {
    busy_ = false;
    h.resume();
    Grant();
  });
}

}  // namespace atrapos::sim
