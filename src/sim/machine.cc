#include "sim/machine.h"

#include <cassert>

namespace atrapos::sim {

Machine::Machine(const hw::Topology& topo, CostParams params)
    : topo_(&topo), params_(params), counters_(topo) {}

void Machine::At(Tick t, std::function<void()> fn) {
  assert(t >= now_ || !running_);
  events_.push(Event{t < now_ ? now_ : t, seq_++, std::move(fn)});
}

void Machine::ResumeAt(Tick t, std::coroutine_handle<> h) {
  At(t, [h] { h.resume(); });
}

size_t Machine::RunUntil(Tick t) {
  size_t n = 0;
  while (!events_.empty() && events_.top().t <= t) {
    Event e = events_.top();
    events_.pop();
    now_ = e.t;
    e.fn();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

size_t Machine::RunUntilIdle() {
  size_t n = 0;
  while (!events_.empty()) {
    Event e = events_.top();
    events_.pop();
    now_ = e.t;
    e.fn();
    ++n;
  }
  return n;
}

void Machine::Shutdown() {
  running_ = false;
  // Drain in rounds: draining a primitive may resume coroutines that then
  // park on other primitives or schedule events; iterate to a fixed point.
  for (int round = 0; round < 64; ++round) {
    RunUntilIdle();
    for (auto& d : drainers_) d();
    if (events_.empty()) break;
  }
  RunUntilIdle();
}

Machine::DelayAwaiter Machine::MemAccess(Ctx& ctx, hw::SocketId mem_node,
                                         uint64_t rows, Tick work_per_row) {
  auto& cc = counters_.core(ctx.core);
  int hops = topo_->Distance(ctx.socket, mem_node);
  // Each row operation touches lines_per_row distinct cache lines (B-tree
  // nodes, page header, record, lock word...); each either hits the LLC or
  // stalls on (possibly remote) DRAM.
  uint64_t lines = rows * static_cast<uint64_t>(params_.lines_per_row);
  // Expected-value miss count with one stochastic draw for the fractional
  // part (cheaper than per-line draws, same mean, still deterministic).
  double expected = static_cast<double>(lines) * params_.llc_miss_ratio;
  auto misses = static_cast<uint64_t>(expected);
  double frac = expected - static_cast<double>(misses);
  if ((NextHash() & 1023) < static_cast<uint64_t>(frac * 1024.0)) ++misses;
  Tick miss_lat =
      params_.dram_local + static_cast<Tick>(hops) * params_.dram_per_hop;
  Tick stall = misses * miss_lat + (lines - misses) * params_.l3_hit;
  Tick busy = rows * work_per_row;
  cc.busy += busy;
  cc.stall += stall;
  cc.instr +=
      static_cast<uint64_t>(static_cast<double>(busy) * params_.work_ipc);
  if (misses > 0) {
    counters_.AddImcBytes(mem_node, misses * params_.line_bytes);
    if (hops > 0)
      counters_.AddQpiBytes(ctx.socket, mem_node, misses * params_.line_bytes);
  }
  return {this, now_ + busy + stall};
}

}  // namespace atrapos::sim
