// Contended cache-line model — the mechanism behind the paper's central
// observation (§III-B): atomic operations are cheap while the line is owned
// by the local socket and very expensive across sockets, and *any*
// centralized data structure in the critical path eventually becomes the
// bottleneck as sockets are added.
//
// Model: the line has one exclusive owner socket at a time. Atomic RMW
// operations serialize FIFO. The cost of an operation granted to socket s is
//   cas_local                                  if owner == s
//   cas_remote_base + hops*cas_remote_per_hop  otherwise
// plus cas_queue_penalty per contender queued behind it (CAS retry storms:
// every failed contender steals the line and forces a re-transfer).
// Ownership moves to the requester. Remote grants count 64 B of QPI traffic.
#pragma once

#include <coroutine>
#include <deque>

#include "sim/machine.h"

namespace atrapos::sim {

class CacheLine {
 public:
  /// `home` is the socket whose LLC initially owns the line.
  CacheLine(Machine* m, hw::SocketId home = 0);

  CacheLine(const CacheLine&) = delete;
  CacheLine& operator=(const CacheLine&) = delete;

  struct Awaiter {
    CacheLine* line;
    Ctx* ctx;
    bool await_ready() const noexcept { return !line->mach_->running(); }
    void await_suspend(std::coroutine_handle<> h) {
      line->Enqueue(Waiter{h, ctx, line->mach_->now()});
    }
    void await_resume() const noexcept {}
  };

  /// Performs one atomic RMW on this line from ctx's socket.
  Awaiter Atomic(Ctx& ctx) { return Awaiter{this, &ctx}; }

  hw::SocketId owner() const { return owner_; }
  uint64_t ops() const { return ops_; }

 private:
  friend struct Awaiter;
  void Enqueue(Waiter w);
  void Grant();

  Machine* mach_;
  hw::SocketId owner_;
  bool busy_ = false;
  uint64_t ops_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace atrapos::sim
