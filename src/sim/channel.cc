#include "sim/channel.h"

namespace atrapos::sim {

Channel::Channel(Machine* m, hw::SocketId home) : mach_(m), home_(home) {
  mach_->RegisterDrainer([this] {
    while (!consumers_.empty()) {
      auto w = consumers_.front();
      consumers_.pop_front();
      w.h.resume();
    }
  });
}

void Channel::SendAwaiter::await_suspend(std::coroutine_handle<> h) {
  Machine* m = ch->mach_;
  const CostParams& p = m->params();
  // Sender-side cost.
  auto& cc = m->counters().core(ctx->core);
  cc.busy += p.channel_send_work;
  cc.instr += static_cast<uint64_t>(
      static_cast<double>(p.channel_send_work) * p.work_ipc);

  int hops = m->topology().Distance(ctx->socket, ch->home_);
  Tick latency = p.channel_same_socket +
                 static_cast<Tick>(hops) * p.channel_per_hop;
  if (hops > 0)
    m->counters().AddQpiBytes(ctx->socket, ch->home_, 4 * p.cache_line_bytes);

  m->At(m->now() + latency, [c = ch, msg = std::move(msg)]() mutable {
    c->Deliver(std::move(msg));
  });
  // Sender resumes after its local send work.
  m->ResumeAt(m->now() + p.channel_send_work, h);
}

void Channel::Deliver(Msg msg) {
  ++delivered_;
  msgs_.push_back(std::move(msg));
  if (!consumers_.empty()) {
    Waiter w = consumers_.front();
    consumers_.pop_front();
    const CostParams& p = mach_->params();
    auto& cc = mach_->counters().core(w.ctx->core);
    cc.busy += p.channel_recv_work;
    mach_->ResumeAt(mach_->now() + p.channel_recv_work, w.h);
  }
}

void Channel::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  Machine* m = ch->mach_;
  if (!ch->msgs_.empty()) {
    const CostParams& p = m->params();
    auto& cc = m->counters().core(ctx->core);
    cc.busy += p.channel_recv_work;
    m->ResumeAt(m->now() + p.channel_recv_work, h);
    return;
  }
  ch->consumers_.push_back(Waiter{h, ctx, m->now()});
}

std::optional<Msg> Channel::RecvAwaiter::await_resume() noexcept {
  if (ch->msgs_.empty()) return std::nullopt;
  Msg v = std::move(ch->msgs_.front());
  ch->msgs_.pop_front();
  return v;
}

}  // namespace atrapos::sim
