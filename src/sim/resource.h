// A FIFO server resource: one holder at a time, explicit service time.
// Models critical sections guarded by a single mutex-protected structure:
// the log-buffer insert, a centralized lock-manager bucket, etc.
//
// Waiting is accounted as spin (high-IPC busy wait) or stall depending on
// `spin_wait` — Shore-MT's contended mutexes spin, which is what inflates
// the centralized design's IPC in Fig. 1 while throughput collapses.
#pragma once

#include <coroutine>
#include <deque>

#include "sim/machine.h"

namespace atrapos::sim {

class Resource {
 public:
  /// `spin_wait`: account queueing delay as spin cycles (true) or stall.
  /// `handoff_lines` overrides params().resource_handoff_lines (<0 = use
  /// the default): Aether-style consolidated structures hand off a single
  /// line; fat lock-manager critical sections drag many.
  Resource(Machine* m, hw::SocketId home = 0, bool spin_wait = true,
           int handoff_lines = -1);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  struct Awaiter {
    Resource* res;
    Ctx* ctx;
    Tick service;
    bool await_ready() const noexcept { return !res->mach_->running(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  /// Occupies the resource for `service` cycles (FIFO). The awaiting worker
  /// resumes when its own service completes. Cross-socket handoffs add a
  /// cache-line transfer to the service time and QPI traffic.
  Awaiter Use(Ctx& ctx, Tick service) { return Awaiter{this, &ctx, service}; }

  uint64_t uses() const { return uses_; }
  /// Total time requesters spent queued (contention signal).
  Tick total_wait() const { return total_wait_; }

 private:
  friend struct Awaiter;
  struct Pending {
    Waiter w;
    Tick service;
  };
  void Grant();

  Machine* mach_;
  hw::SocketId last_socket_;
  bool spin_wait_;
  int handoff_lines_;
  bool busy_ = false;
  uint64_t uses_ = 0;
  Tick total_wait_ = 0;
  std::deque<Pending> waiters_;
};

}  // namespace atrapos::sim
