// Shared-memory message channel between simulated workers. Used by the
// shared-nothing engines for the thin distributed-transaction layer (2PC).
// The paper (§III-C) uses shared-memory channels, "significantly faster than
// other communication mechanisms that involve the operating system" — the
// costs here model exactly that: a few microseconds, higher across sockets.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "sim/machine.h"

namespace atrapos::sim {

/// A small message: kind + two immediate words + optional shared payload.
struct Msg {
  int kind = 0;
  int from = 0;           ///< sender instance id (engine-defined)
  uint64_t a = 0, b = 0;  ///< immediates (txn id, row count, vote...)
  std::shared_ptr<void> payload;  ///< larger engine-defined payloads
};

/// Single-consumer mailbox owned by a worker on socket `home`.
class Channel {
 public:
  Channel(Machine* m, hw::SocketId home);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  hw::SocketId home() const { return home_; }

  struct SendAwaiter {
    Channel* ch;
    Ctx* ctx;
    Msg msg;
    bool await_ready() const noexcept { return !ch->mach_->running(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  /// Sends `msg`: the sender pays channel_send_work; the message arrives at
  /// the mailbox after the distance-dependent latency.
  SendAwaiter Send(Ctx& sender, Msg msg) {
    return SendAwaiter{this, &sender, std::move(msg)};
  }

  struct RecvAwaiter {
    Channel* ch;
    Ctx* ctx;
    bool await_ready() const noexcept { return !ch->mach_->running(); }
    void await_suspend(std::coroutine_handle<> h);
    std::optional<Msg> await_resume() noexcept;
  };

  /// Receives the next message (FIFO); parks until one arrives. The
  /// receiver pays channel_recv_work. Returns nullopt at shutdown.
  RecvAwaiter Recv(Ctx& receiver) { return RecvAwaiter{this, &receiver}; }

  size_t pending() const { return msgs_.size(); }
  uint64_t delivered() const { return delivered_; }

 private:
  friend struct SendAwaiter;
  friend struct RecvAwaiter;
  void Deliver(Msg msg);

  Machine* mach_;
  hw::SocketId home_;
  std::deque<Msg> msgs_;
  std::deque<Waiter> consumers_;
  uint64_t delivered_ = 0;
};

}  // namespace atrapos::sim
