// Calibration constants for the machine simulator (DESIGN.md §5).
//
// Values are cycle costs on the modeled 2.4 GHz Westmere-EX. They are drawn
// from the paper's qualitative observations (§II-A, §III-B, §III-D) and
// anchored against its absolute throughputs: extreme shared-nothing
// read-one-row ~6.5 MTPS on 80 cores (Fig. 2) implies ~30 K cycles per
// transaction through the full Shore-MT path; Table I's 100-row read
// transactions at ~700 TPS/core imply a similar per-row cost. Absolute
// matching is not the goal — the *shape* of each figure is.
#pragma once

#include "sim/time.h"

namespace atrapos::sim {

struct CostParams {
  // ---- Cache-coherence / atomic operations ------------------------------
  /// CAS on a line already owned by the local socket (hot in local LLC).
  Tick cas_local = 24;
  /// Base cost of an atomic on a line owned by another socket.
  Tick cas_remote_base = 220;
  /// Additional cost per QPI hop between requester and owner.
  Tick cas_remote_per_hop = 90;
  /// Extra cost per queued contender at grant time. Models CAS retry storms
  /// and coherence fan-out under contention: each waiter's failed attempt
  /// steals the line and forces a re-transfer.
  Tick cas_queue_penalty = 21;

  // ---- Plain memory accesses --------------------------------------------
  /// LLC hit on the local socket.
  Tick l3_hit = 42;
  /// DRAM access on the local memory node.
  Tick dram_local = 430;
  /// Additional DRAM latency per QPI hop to a remote memory node.
  /// Deliberately small: the paper measures <= 10% impact (§III-D).
  Tick dram_per_hop = 85;
  /// Probability that one cache-line touch misses the LLC.
  double llc_miss_ratio = 0.35;
  /// Distinct cache lines touched per logical row operation (B-tree nodes,
  /// page header, record, lock word, ...).
  int lines_per_row = 24;

  // ---- Execution work (per logical row operation, excluding memory) ------
  /// CPU work to execute one row read through index probe + tuple copy.
  Tick row_read_work = 22000;
  /// CPU work for one row update (read + modify + log-record construction).
  Tick row_update_work = 46000;
  /// CPU work for one row insert.
  Tick row_insert_work = 52000;
  /// Instructions retired per cycle of useful execution work (OLTP ~0.6).
  double work_ipc = 0.62;
  /// Instructions retired per cycle while spin-waiting on a cached lock
  /// word (tight loop hitting local cache: high IPC, no progress). This is
  /// what drives the counter-intuitive IPC rise of the centralized design
  /// in Fig. 1.
  double spin_ipc = 1.8;
  /// Instructions retired for an atomic op (few instructions, many cycles).
  Tick atomic_instr = 6;

  // ---- Transaction bookkeeping -------------------------------------------
  /// Begin+commit bookkeeping besides shared-structure accesses.
  Tick txn_mgmt_work = 3000;
  /// Service time of a log-buffer reservation + memcpy (per record).
  Tick log_insert_service = 700;
  /// Service time of a log force (commit/prepare/decision records must hit
  /// the memory-mapped log "disk").
  Tick log_force_service = UsToCycles(8);
  /// Service time of one centralized lock-manager bucket critical section.
  Tick lockmgr_service = 900;
  /// Cache lines a mutex-protected critical section touches. When the
  /// resource hands off across sockets, each of these lines is a coherence
  /// miss — the reason centralized structures degrade as soon as a second
  /// socket joins (§III-B), long before the queue saturates.
  int resource_handoff_lines = 12;
  /// Work to acquire a partition-local (DORA) lock: no shared state.
  Tick local_lock_work = 260;
  /// Work to route one action to a partition queue (enqueue cost).
  Tick action_route_work = 800;
  /// Cost of a rendezvous/synchronization point update (local part).
  Tick syncpoint_work = 800;

  // ---- Message channels (2PC, shared-memory IPC) -------------------------
  /// One-way shared-memory message latency between cores on one socket.
  Tick channel_same_socket = UsToCycles(12);
  /// Additional latency per QPI hop.
  Tick channel_per_hop = UsToCycles(8);
  /// Sender-side cost to produce/enqueue a message.
  Tick channel_send_work = UsToCycles(2.5);
  /// Receiver-side cost to consume a message.
  Tick channel_recv_work = UsToCycles(2);

  // ---- Two-phase commit --------------------------------------------------
  /// Extra lock-manager bookkeeping multiplier for rows touched by
  /// distributed transactions (2PC state tracked per lock).
  double dist_lock_factor = 2.5;

  /// Bytes per cache-line transfer (traffic accounting).
  Tick cache_line_bytes = 64;
  /// Bytes of DRAM traffic per missed line.
  Tick line_bytes = 64;
};

}  // namespace atrapos::sim
