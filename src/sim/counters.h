// Performance counters of the simulated machine: per-core cycle/instruction
// accounting (IPC, Fig. 1), per-socket memory-controller traffic and
// per-link interconnect traffic (Table I), and transaction outcomes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/topology.h"
#include "sim/time.h"

namespace atrapos::sim {

/// Cycle/instruction accounting for one simulated core.
struct CoreCounters {
  Tick busy = 0;    ///< executing useful work
  Tick stall = 0;   ///< waiting for cache-line transfers / DRAM
  Tick spin = 0;    ///< spin-waiting on contended locks
  uint64_t instr = 0;

  Tick active() const { return busy + stall + spin; }
};

/// Per-transaction-component time, microseconds-equivalent in cycles
/// (the Fig. 4 breakdown categories).
struct Breakdown {
  Tick xct_mgmt = 0;
  Tick xct_exec = 0;
  Tick communication = 0;
  Tick locking = 0;
  Tick logging = 0;

  Breakdown& operator+=(const Breakdown& o) {
    xct_mgmt += o.xct_mgmt;
    xct_exec += o.xct_exec;
    communication += o.communication;
    locking += o.locking;
    logging += o.logging;
    return *this;
  }
  Tick total() const {
    return xct_mgmt + xct_exec + communication + locking + logging;
  }
};

/// All counters of one simulation run.
class Counters {
 public:
  explicit Counters(const hw::Topology& topo);

  CoreCounters& core(hw::CoreId c) { return cores_[static_cast<size_t>(c)]; }
  const CoreCounters& core(hw::CoreId c) const {
    return cores_[static_cast<size_t>(c)];
  }

  /// DRAM traffic served by socket s's integrated memory controller.
  void AddImcBytes(hw::SocketId s, uint64_t bytes) {
    imc_bytes_[static_cast<size_t>(s)] += bytes;
  }
  /// Interconnect traffic between two sockets; attributed to every link on
  /// the (precomputed) shortest path.
  void AddQpiBytes(hw::SocketId from, hw::SocketId to, uint64_t bytes);

  uint64_t imc_bytes(hw::SocketId s) const {
    return imc_bytes_[static_cast<size_t>(s)];
  }
  uint64_t total_imc_bytes() const;
  uint64_t total_qpi_bytes() const;
  uint64_t link_bytes(size_t link_idx) const { return link_bytes_[link_idx]; }
  size_t num_links() const { return link_bytes_.size(); }

  /// QPI-to-IMC data traffic ratio (Table I reports 0.01 / 1.36 / 1.49).
  double QpiImcRatio() const;

  void AddCommit() { ++committed_; }
  void AddAbort() { ++aborted_; }
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }

  Breakdown& breakdown() { return breakdown_; }
  const Breakdown& breakdown() const { return breakdown_; }

  /// Aggregate IPC over the given elapsed simulated time and core set:
  /// instructions retired / (elapsed * active core count), i.e. exactly what
  /// a hardware profiler reports for the occupied cores.
  double Ipc(Tick elapsed, int num_cores) const;

  void Reset();
  std::string ToString(Tick elapsed) const;

 private:
  const hw::Topology* topo_;
  std::vector<CoreCounters> cores_;
  std::vector<uint64_t> imc_bytes_;   // per socket
  std::vector<uint64_t> link_bytes_;  // per topology link
  // next_hop_[a*S+b] = first link index on the shortest path a->b.
  std::vector<std::vector<int>> path_links_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  Breakdown breakdown_;
};

}  // namespace atrapos::sim
