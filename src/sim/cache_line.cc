#include "sim/cache_line.h"

namespace atrapos::sim {

CacheLine::CacheLine(Machine* m, hw::SocketId home) : mach_(m), owner_(home) {
  mach_->RegisterDrainer([this] {
    while (!waiters_.empty()) {
      auto w = waiters_.front();
      waiters_.pop_front();
      w.h.resume();
    }
  });
}

void CacheLine::Enqueue(Waiter w) {
  waiters_.push_back(w);
  if (!busy_) Grant();
}

void CacheLine::Grant() {
  if (waiters_.empty() || !mach_->running()) return;
  Waiter w = waiters_.front();
  waiters_.pop_front();
  busy_ = true;
  ++ops_;

  const CostParams& p = mach_->params();
  hw::SocketId s = w.ctx->socket;
  Tick cost;
  if (s == owner_) {
    cost = p.cas_local;
  } else {
    int hops = mach_->topology().Distance(s, owner_);
    cost = p.cas_remote_base +
           static_cast<Tick>(hops) * p.cas_remote_per_hop;
    mach_->counters().AddQpiBytes(owner_, s, p.cache_line_bytes);
  }
  cost += p.cas_queue_penalty * static_cast<Tick>(waiters_.size());
  owner_ = s;

  auto& cc = mach_->counters().core(w.ctx->core);
  cc.stall += cost;
  cc.instr += p.atomic_instr;

  mach_->At(mach_->now() + cost, [this, h = w.h] {
    busy_ = false;
    h.resume();
    Grant();
  });
}

}  // namespace atrapos::sim
