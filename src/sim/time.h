// Simulated time. The unit is one CPU cycle of the modeled machine
// (2.4 GHz Westmere-EX, matching the paper's Xeon E7-L8867).
#pragma once

#include <cstdint>

namespace atrapos::sim {

using Tick = uint64_t;

/// Modeled core frequency: cycles per microsecond.
constexpr Tick kCyclesPerUs = 2400;

constexpr Tick UsToCycles(double us) {
  return static_cast<Tick>(us * static_cast<double>(kCyclesPerUs));
}
constexpr Tick MsToCycles(double ms) { return UsToCycles(ms * 1000.0); }
constexpr Tick SecToCycles(double s) { return UsToCycles(s * 1e6); }

constexpr double CyclesToUs(Tick c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerUs);
}
constexpr double CyclesToSec(Tick c) { return CyclesToUs(c) / 1e6; }

}  // namespace atrapos::sim
