#include "sim/counters.h"

#include <deque>
#include <sstream>

namespace atrapos::sim {

Counters::Counters(const hw::Topology& topo)
    : topo_(&topo),
      cores_(static_cast<size_t>(topo.num_cores())),
      imc_bytes_(static_cast<size_t>(topo.num_sockets()), 0),
      link_bytes_(topo.links().size(), 0) {
  // Precompute, for each ordered socket pair, the list of link indices on
  // one BFS shortest path. Used to attribute interconnect traffic per link.
  int s_count = topo.num_sockets();
  path_links_.resize(static_cast<size_t>(s_count) * s_count);
  // adjacency with link ids
  std::vector<std::vector<std::pair<int, int>>> adj(s_count);  // (nbr, link)
  for (size_t li = 0; li < topo.links().size(); ++li) {
    auto [a, b] = topo.links()[li];
    adj[a].emplace_back(b, static_cast<int>(li));
    adj[b].emplace_back(a, static_cast<int>(li));
  }
  for (int src = 0; src < s_count; ++src) {
    std::vector<int> prev_node(s_count, -1), prev_link(s_count, -1);
    std::deque<int> q{src};
    prev_node[src] = src;
    while (!q.empty()) {
      int u = q.front();
      q.pop_front();
      for (auto [v, li] : adj[u]) {
        if (prev_node[v] < 0) {
          prev_node[v] = u;
          prev_link[v] = li;
          q.push_back(v);
        }
      }
    }
    for (int dst = 0; dst < s_count; ++dst) {
      if (dst == src || prev_node[dst] < 0) continue;
      auto& path = path_links_[static_cast<size_t>(src) * s_count + dst];
      for (int v = dst; v != src; v = prev_node[v]) path.push_back(prev_link[v]);
    }
  }
}

void Counters::AddQpiBytes(hw::SocketId from, hw::SocketId to, uint64_t bytes) {
  if (from == to) return;
  const auto& path =
      path_links_[static_cast<size_t>(from) * topo_->num_sockets() + to];
  for (int li : path) link_bytes_[static_cast<size_t>(li)] += bytes;
}

uint64_t Counters::total_imc_bytes() const {
  uint64_t t = 0;
  for (auto b : imc_bytes_) t += b;
  return t;
}

uint64_t Counters::total_qpi_bytes() const {
  uint64_t t = 0;
  for (auto b : link_bytes_) t += b;
  return t;
}

double Counters::QpiImcRatio() const {
  uint64_t imc = total_imc_bytes();
  return imc == 0 ? 0.0
                  : static_cast<double>(total_qpi_bytes()) /
                        static_cast<double>(imc);
}

double Counters::Ipc(Tick elapsed, int num_cores) const {
  if (elapsed == 0 || num_cores == 0) return 0.0;
  uint64_t instr = 0;
  for (const auto& c : cores_) instr += c.instr;
  return static_cast<double>(instr) /
         (static_cast<double>(elapsed) * num_cores);
}

void Counters::Reset() {
  for (auto& c : cores_) c = CoreCounters{};
  std::fill(imc_bytes_.begin(), imc_bytes_.end(), 0);
  std::fill(link_bytes_.begin(), link_bytes_.end(), 0);
  committed_ = aborted_ = 0;
  breakdown_ = Breakdown{};
}

std::string Counters::ToString(Tick elapsed) const {
  std::ostringstream os;
  os << "committed=" << committed_ << " aborted=" << aborted_
     << " ipc=" << Ipc(elapsed, static_cast<int>(cores_.size()))
     << " qpi/imc=" << QpiImcRatio();
  return os.str();
}

}  // namespace atrapos::sim
