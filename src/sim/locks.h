// Simulated read/write locks, centralized and NUMA-partitioned (paper §IV,
// "Shared locks"), plus the SimQueue used for DORA-style action routing.
//
// The centralized SimRWLock is a single lock word: every acquire/release is
// an atomic on one cache line — cheap on one socket, a convoy on eight.
// The PartitionedRWLock keeps one lock per socket: readers touch only their
// socket-local line (the critical-path case); writers — background tasks
// like checkpointing — grab every per-socket lock.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/cache_line.h"
#include "sim/machine.h"

namespace atrapos::sim {

/// Centralized read/write lock on one contended cache line.
class SimRWLock {
 public:
  explicit SimRWLock(Machine* m, hw::SocketId home = 0);

  SimRWLock(const SimRWLock&) = delete;
  SimRWLock& operator=(const SimRWLock&) = delete;

  struct AcquireAwaiter {
    SimRWLock* lk;
    Ctx* ctx;
    bool write;
    bool await_ready() const noexcept { return !lk->mach_->running(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  /// Acquire in read or write mode. The CAS on the lock word is charged via
  /// the underlying CacheLine; conflicts additionally spin-wait FIFO
  /// (with reader batching).
  AcquireAwaiter Acquire(Ctx& ctx, bool write) {
    return AcquireAwaiter{this, &ctx, write};
  }

  /// Release; charges one atomic on the lock word.
  CacheLine::Awaiter Release(Ctx& ctx);

  int readers() const { return readers_; }
  bool write_held() const { return write_held_; }

 private:
  friend struct AcquireAwaiter;
  struct Pending {
    Waiter w;
    bool write;
  };
  void GrantWaiters();

  Machine* mach_;
  CacheLine line_;
  int readers_ = 0;
  bool write_held_ = false;
  std::deque<Pending> waiters_;
};

/// NUMA-aware partitioned rwlock: one SimRWLock per socket (paper §IV).
class PartitionedRWLock {
 public:
  explicit PartitionedRWLock(Machine* m);

  /// Socket-local read acquire — the critical-path operation.
  SimRWLock::AcquireAwaiter AcquireRead(Ctx& ctx) {
    return locks_[static_cast<size_t>(ctx.socket)]->Acquire(ctx, false);
  }
  CacheLine::Awaiter ReleaseRead(Ctx& ctx) {
    return locks_[static_cast<size_t>(ctx.socket)]->Release(ctx);
  }

  /// Write mode grabs every per-socket lock (background tasks only).
  SimRWLock& socket_lock(hw::SocketId s) { return *locks_[static_cast<size_t>(s)]; }
  size_t num_partitions() const { return locks_.size(); }

 private:
  std::vector<std::unique_ptr<SimRWLock>> locks_;
};

/// Plain FIFO mutex with no cache-line cost: used as the per-core lease
/// that time-shares a simulated core among the workers placed on it
/// (oversaturation modeling — two partitions on one core halve each other's
/// throughput, the effect behind Fig. 6's "HW-aware" bar).
class SimMutex {
 public:
  explicit SimMutex(Machine* m);

  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  struct Awaiter {
    SimMutex* mu;
    Ctx* ctx;
    bool await_ready() const noexcept { return !mu->mach_->running(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  /// Acquire (FIFO). Waiting time is idle (the worker is descheduled).
  Awaiter Acquire(Ctx& ctx) { return Awaiter{this, &ctx}; }

  /// Release; wakes the next waiter at the current time.
  void Release();

  bool held() const { return held_; }

 private:
  friend struct Awaiter;
  Machine* mach_;
  bool held_ = false;
  std::deque<Waiter> waiters_;
};

/// Unbounded FIFO queue for routing DORA actions to partition workers.
/// A consumer parks on Pop() when empty; Push() wakes it. Pop returns
/// nullopt when the machine is shutting down. Producers pay the
/// cross-socket enqueue cost by awaiting line().Atomic(ctx) before Push.
template <typename T>
class SimQueue {
 public:
  explicit SimQueue(Machine* m, hw::SocketId home = 0)
      : mach_(m), line_(m, home) {
    mach_->RegisterDrainer([this] {
      while (!consumers_.empty()) {
        auto w = consumers_.front();
        consumers_.pop_front();
        w.h.resume();
      }
    });
  }

  CacheLine& line() { return line_; }

  void Push(T v) {
    items_.push_back(std::move(v));
    if (!consumers_.empty()) {
      auto w = consumers_.front();
      consumers_.pop_front();
      mach_->At(mach_->now(), [h = w.h] { h.resume(); });
    }
  }

  struct PopAwaiter {
    SimQueue* q;
    Ctx* ctx;
    bool await_ready() const noexcept {
      return !q->mach_->running() || !q->items_.empty();
    }
    void await_suspend(std::coroutine_handle<> h) {
      q->consumers_.push_back(Waiter{h, ctx, q->mach_->now()});
    }
    std::optional<T> await_resume() const noexcept {
      if (q->items_.empty()) return std::nullopt;
      T v = std::move(q->items_.front());
      q->items_.pop_front();
      return v;
    }
  };

  PopAwaiter Pop(Ctx& ctx) { return PopAwaiter{this, &ctx}; }

  size_t size() const { return items_.size(); }

 private:
  friend struct PopAwaiter;
  Machine* mach_;
  CacheLine line_;
  std::deque<T> items_;
  std::deque<Waiter> consumers_;
};

}  // namespace atrapos::sim
