#include "sim/locks.h"

namespace atrapos::sim {

SimRWLock::SimRWLock(Machine* m, hw::SocketId home)
    : mach_(m), line_(m, home) {
  mach_->RegisterDrainer([this] {
    while (!waiters_.empty()) {
      auto p = waiters_.front();
      waiters_.pop_front();
      p.w.h.resume();
    }
  });
}

void SimRWLock::AcquireAwaiter::await_suspend(std::coroutine_handle<> h) {
  SimRWLock* l = lk;
  Machine* m = l->mach_;
  // Step 1: the CAS on the lock word (always happens, grant or not).
  // We model it by scheduling through the cache line, then checking
  // admission. Implemented as: enqueue a proxy continuation on the line.
  Tick t0 = m->now();
  l->waiters_.push_back(Pending{Waiter{h, ctx, t0}, write});
  l->GrantWaiters();
}

void SimRWLock::GrantWaiters() {
  // FIFO with reader batching: grant readers until a writer is at the head;
  // grant a writer only when nothing is held.
  while (!waiters_.empty() && mach_->running()) {
    Pending& head = waiters_.front();
    if (head.write) {
      if (readers_ > 0 || write_held_) return;
      write_held_ = true;
    } else {
      if (write_held_) return;
      ++readers_;
    }
    Pending p = head;
    waiters_.pop_front();
    // Spin time while queued.
    Tick waited = mach_->now() - p.w.enqueued_at;
    if (waited > 0) mach_->AccountSpin(*p.w.ctx, waited);
    // The CAS itself: route through the shared line, then resume the waiter.
    struct Granter {
      SimRWLock* lk;
      Ctx* ctx;
      std::coroutine_handle<> target;
      CacheLine::Awaiter aw;
      // Drive the cache-line awaiter manually via a helper coroutine.
    };
    // Helper coroutine: pay the atomic, then resume the acquirer.
    auto helper = [](SimRWLock* lk, Ctx* ctx,
                     std::coroutine_handle<> target) -> Task {
      co_await lk->line_.Atomic(*ctx);
      target.resume();
    };
    helper(this, p.w.ctx, p.w.h);
  }
}

CacheLine::Awaiter SimRWLock::Release(Ctx& ctx) {
  if (write_held_) {
    write_held_ = false;
  } else if (readers_ > 0) {
    --readers_;
  }
  // Wake admissible waiters after the release CAS is charged.
  mach_->At(mach_->now(), [this] { GrantWaiters(); });
  return line_.Atomic(ctx);
}

SimMutex::SimMutex(Machine* m) : mach_(m) {
  mach_->RegisterDrainer([this] {
    while (!waiters_.empty()) {
      auto w = waiters_.front();
      waiters_.pop_front();
      w.h.resume();
    }
  });
}

void SimMutex::Awaiter::await_suspend(std::coroutine_handle<> h) {
  if (!mu->held_) {
    mu->held_ = true;
    mu->mach_->ResumeAt(mu->mach_->now(), h);
    return;
  }
  mu->waiters_.push_back(Waiter{h, ctx, mu->mach_->now()});
}

void SimMutex::Release() {
  if (waiters_.empty()) {
    held_ = false;
    return;
  }
  Waiter w = waiters_.front();
  waiters_.pop_front();
  mach_->ResumeAt(mach_->now(), w.h);
}

PartitionedRWLock::PartitionedRWLock(Machine* m) {
  int sockets = m->topology().num_sockets();
  locks_.reserve(static_cast<size_t>(sockets));
  for (hw::SocketId s = 0; s < sockets; ++s)
    locks_.push_back(std::make_unique<SimRWLock>(m, s));
}

}  // namespace atrapos::sim
