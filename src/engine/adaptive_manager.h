// The real-thread ATraPos adaptive daemon: monitoring thread + adaptive
// interval controller + cost-model search + online repartitioning, glued to
// a PartitionedExecutor. Mirrors simengine/dora.cc's MonitorThread.
//
// Workload class counts are populated from the executor's completion path:
// Start() registers the manager as the executor's TxnCompletionListener, so
// every submitted ActionGraph carrying a txn_class is counted when it
// completes — drivers no longer hand-report transactions.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "core/adaptive_controller.h"
#include "core/cost_model.h"
#include "engine/partitioned_executor.h"

namespace atrapos::engine {

class AdaptiveManager : public PartitionedExecutor::TxnCompletionListener {
 public:
  struct Options {
    core::AdaptiveController::Options controller;
    /// Minimum relative model improvement required to repartition.
    double hysteresis = 0.85;
  };

  AdaptiveManager(PartitionedExecutor* exec, const hw::Topology* topo,
                  const core::WorkloadSpec* spec, Options opt);
  ~AdaptiveManager() override;

  /// Starts the monitoring thread and registers for transaction
  /// completions; Stop() unregisters (waiting only for in-flight listener
  /// calls, not for the executor to go idle) and joins.
  void Start();
  void Stop();

  /// Completion path (invoked by the executor on a worker thread). Every
  /// completion counts toward its class — aborted graphs loaded the
  /// partitions just like committed ones, and the monitor recorded their
  /// actions, so counting both keeps class weights consistent with the
  /// measured per-partition load.
  void OnTxnComplete(int txn_class, const Status& status) override;

  uint64_t repartitions() const {
    return repartitions_.load(std::memory_order_relaxed);
  }
  uint64_t completed_transactions() const {
    return completed_.load(std::memory_order_relaxed);
  }
  double current_interval_s() const {
    return interval_s_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  PartitionedExecutor* exec_;
  const hw::Topology* topo_;
  const core::WorkloadSpec* spec_;
  Options opt_;
  core::AdaptiveController controller_;
  std::vector<std::atomic<uint64_t>> class_counts_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> repartitions_{0};
  std::atomic<double> interval_s_{1.0};
  std::atomic<bool> stop_{true};
  std::thread thread_;
};

}  // namespace atrapos::engine
