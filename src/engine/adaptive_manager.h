// The real-thread ATraPos adaptive daemon: monitoring thread + adaptive
// interval controller + cost-model search + online repartitioning, glued to
// a PartitionedExecutor. Mirrors simengine/dora.cc's MonitorThread.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "core/adaptive_controller.h"
#include "core/cost_model.h"
#include "engine/partitioned_executor.h"

namespace atrapos::engine {

class AdaptiveManager {
 public:
  struct Options {
    core::AdaptiveController::Options controller;
    /// Minimum relative model improvement required to repartition.
    double hysteresis = 0.85;
  };

  AdaptiveManager(PartitionedExecutor* exec, const hw::Topology* topo,
                  const core::WorkloadSpec* spec, Options opt);
  ~AdaptiveManager();

  /// Starts/stops the monitoring thread.
  void Start();
  void Stop();

  /// Workload drivers report each executed transaction here.
  void ReportTransaction(int cls) {
    class_counts_[static_cast<size_t>(cls)].fetch_add(
        1, std::memory_order_relaxed);
    committed_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t repartitions() const {
    return repartitions_.load(std::memory_order_relaxed);
  }
  double current_interval_s() const {
    return interval_s_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  PartitionedExecutor* exec_;
  const hw::Topology* topo_;
  const core::WorkloadSpec* spec_;
  Options opt_;
  core::AdaptiveController controller_;
  std::vector<std::atomic<uint64_t>> class_counts_;
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> repartitions_{0};
  std::atomic<double> interval_s_{1.0};
  std::atomic<bool> stop_{true};
  std::thread thread_;
};

}  // namespace atrapos::engine
