#include "engine/partitioned_executor.h"

#include <algorithm>
#include <chrono>

#include "core/repartitioner.h"
#include "hw/binding.h"

namespace atrapos::engine {

PartitionedExecutor::PartitionedExecutor(Database* db,
                                         const hw::Topology& topo,
                                         core::Scheme scheme)
    : db_(db), topo_(&topo), scheme_(std::move(scheme)) {
  StartWorkers();
}

PartitionedExecutor::~PartitionedExecutor() {
  // In-flight graphs must finish before workers stop: a worker reaching an
  // RVP enqueues the next stage onto sibling workers, which only drain
  // their queues while alive.
  Drain();
  StopWorkers();
}

void PartitionedExecutor::PlacePartitions() {
  mem::IslandAllocator& alloc = db_->memory();
  uint64_t seq = 0;
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    if (ts.num_partitions() == 0) continue;
    storage::Table* table = db_->table(static_cast<int>(t));
    storage::MultiRootedBTree& index = table->index();
    size_t n = std::min(ts.num_partitions(), index.num_partitions());
    for (size_t p = 0; p < n; ++p, ++seq) {
      hw::SocketId owner = topo_->socket_of(ts.placement[p]);
      mem::Arena* arena = alloc.arena(alloc.ResolveSeq(owner, seq));
      // MigratePartition is a no-op when the subtree already lives there.
      index.MigratePartition(p, arena);
    }
    // One heap per table: it follows the island of the first partition's
    // owner (finer-grained placement needs per-partition heaps — ROADMAP).
    // Seq = table index so kInterleaved spreads heaps across islands.
    hw::SocketId owner0 = topo_->socket_of(ts.placement[0]);
    mem::Arena* harena = alloc.arena(alloc.ResolveSeq(owner0, t));
    if (table->heap().arena() != harena) table->heap().MigrateTo(harena);
  }
}

void PartitionedExecutor::StartWorkers() {
  PlacePartitions();
  parts_.clear();
  parts_.resize(scheme_.tables.size());
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    uint64_t rows = db_->table(static_cast<int>(t))->num_rows();
    for (size_t p = 0; p < ts.num_partitions(); ++p) {
      auto part = std::make_unique<Partition>();
      part->table = static_cast<int>(t);
      part->lo = ts.boundaries[p];
      part->hi = p + 1 < ts.num_partitions() ? ts.boundaries[p + 1]
                                             : std::max(rows, part->lo + 1);
      part->core = ts.placement[p];
      part->monitor =
          std::make_unique<core::PartitionMonitor>(part->lo, part->hi);
      Partition* raw = part.get();
      const hw::Topology* topo = topo_;
      part->worker = std::thread([raw, topo] {
        hw::BindCurrentThread(*topo, raw->core);
        std::unique_lock lk(raw->mu);
        while (true) {
          raw->cv.wait(lk, [raw] { return raw->stop || !raw->queue.empty(); });
          if (raw->queue.empty() && raw->stop) return;
          auto fn = std::move(raw->queue.front());
          raw->queue.pop_front();
          lk.unlock();
          fn();
          lk.lock();
        }
      });
      parts_[t].push_back(std::move(part));
    }
  }
}

void PartitionedExecutor::StopWorkers() {
  for (auto& tp : parts_) {
    for (auto& p : tp) {
      {
        std::lock_guard lk(p->mu);
        p->stop = true;
      }
      p->cv.notify_all();
    }
  }
  for (auto& tp : parts_)
    for (auto& p : tp)
      if (p->worker.joinable()) p->worker.join();
}

PartitionedExecutor::Partition* PartitionedExecutor::Route(int table,
                                                           uint64_t key) {
  auto& tp = parts_[static_cast<size_t>(table)];
  const core::TableScheme& ts = scheme_.tables[static_cast<size_t>(table)];
  size_t p = ts.PartitionOf(key);
  // Clamp to the nearest materialized partition: PartitionOf already maps
  // keys below the first boundary to partition 0 and keys past the last
  // fence to the final slot, but a scheme may carry more boundaries than
  // the executor materialized workers for.
  if (p >= tp.size()) p = tp.size() - 1;
  return tp[p].get();
}

Result<TxnFuture> PartitionedExecutor::Submit(ActionGraph graph) {
  std::shared_lock gate(scheme_mu_);
  if (graph.empty())
    return Status::InvalidArgument("empty action graph");
  for (const auto& stage : graph.stages_) {
    for (const auto& a : stage) {
      if (a.table < 0 ||
          static_cast<size_t>(a.table) >= scheme_.tables.size() ||
          static_cast<size_t>(a.table) >= db_->num_tables() ||
          parts_[static_cast<size_t>(a.table)].empty()) {
        return Status::InvalidArgument("unknown table id " +
                                       std::to_string(a.table));
      }
    }
  }
  auto st = std::make_shared<internal::TxnState>(std::move(graph));
  inflight_.fetch_add(1, std::memory_order_relaxed);
  EnqueueStage(st, 0);
  return TxnFuture(st);
}

Status PartitionedExecutor::SubmitAndWait(ActionGraph graph) {
  auto f = Submit(std::move(graph));
  if (!f.ok()) return f.status();
  return f.value().Wait();
}

void PartitionedExecutor::EnqueueStage(
    const std::shared_ptr<internal::TxnState>& st, size_t idx) {
  auto& stage = st->graph.stages_[idx];
  st->next_stage = idx + 1;
  st->stage_remaining.store(stage.size(), std::memory_order_relaxed);
  for (auto& a : stage) {
    Partition* part = Route(a.table, a.key);
    storage::Table* table = db_->table(a.table);
    ActionGraph::Action* act = &a;  // stable: the graph lives in *st
    auto work = [this, st, act, part, table] {
      auto start = std::chrono::steady_clock::now();
      ActionCtx ctx(act->id, &st->payloads);
      Status s = act->fn ? act->fn(table, ctx) : Status::OK();
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      part->monitor->RecordAction(act->key, static_cast<double>(us) + 1.0);
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok()) {
        std::lock_guard lk(st->mu);
        if (st->first_error.ok()) st->first_error = std::move(s);
        st->failed.store(true, std::memory_order_release);
      }
      // The last action of a stage advances the graph: abort at the RVP on
      // the first failure, enqueue the next stage, or finalize.
      if (st->stage_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (st->failed.load(std::memory_order_acquire)) {
          Status err;
          {
            std::lock_guard lk(st->mu);
            err = st->first_error;
          }
          CompleteTxn(st, std::move(err));
        } else if (st->next_stage < st->graph.stages_.size() &&
                   !st->graph.stages_[st->next_stage].empty()) {
          EnqueueStage(st, st->next_stage);
        } else {
          Status fin = st->graph.finalizer_
                           ? st->graph.finalizer_(st->payloads)
                           : Status::OK();
          CompleteTxn(st, std::move(fin));
        }
      }
    };
    {
      std::lock_guard lk(part->mu);
      part->queue.push_back(std::move(work));
    }
    part->cv.notify_one();
  }
}

void PartitionedExecutor::CompleteTxn(
    const std::shared_ptr<internal::TxnState>& st, Status s) {
  if (st->completed.exchange(true)) return;  // exactly once
  // Listener first: once Wait() returns, the workload class has been
  // reported (AdaptiveManager's counts are populated from here). The
  // active-call count must be raised *before* loading the pointer so
  // SetCompletionListener(nullptr) either sees this call in flight or this
  // load sees the cleared pointer (seq_cst on both sides).
  listener_active_.fetch_add(1, std::memory_order_seq_cst);
  if (auto* l = listener_.load(std::memory_order_seq_cst))
    l->OnTxnComplete(st->graph.txn_class(), s);
  if (listener_active_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    std::lock_guard lk(listener_mu_);
    listener_cv_.notify_all();
  }
  std::function<void(const Status&)> cb;
  {
    std::lock_guard lk(st->mu);
    st->done = true;
    st->status = s;
    cb = std::move(st->callback);
  }
  st->cv.notify_all();
  if (cb) cb(s);
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lk(inflight_mu_);
    inflight_cv_.notify_all();
  }
}

void PartitionedExecutor::SetCompletionListener(TxnCompletionListener* l) {
  listener_.store(l, std::memory_order_seq_cst);
  if (l != nullptr) return;
  // Quiesce only the listener calls (not the whole executor): a client may
  // legitimately keep the pipeline full while the listener unregisters.
  std::unique_lock lk(listener_mu_);
  listener_cv_.wait(lk, [this] {
    return listener_active_.load(std::memory_order_seq_cst) == 0;
  });
}

void PartitionedExecutor::Drain() {
  std::unique_lock lk(inflight_mu_);
  inflight_cv_.wait(lk, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

core::Scheme PartitionedExecutor::scheme() const {
  std::shared_lock lk(scheme_mu_);
  return scheme_;
}

core::WorkloadStats PartitionedExecutor::HarvestStats(
    std::vector<double> class_counts, double window_seconds) {
  std::shared_lock gate(scheme_mu_);
  core::MonitorAggregator agg(parts_.size(), class_counts.size());
  for (size_t t = 0; t < parts_.size(); ++t) {
    for (auto& p : parts_[t]) {
      agg.AddPartition(static_cast<int>(t), *p->monitor);
      p->monitor->Reset();
    }
  }
  for (size_t c = 0; c < class_counts.size(); ++c)
    agg.AddClassCount(static_cast<int>(c), class_counts[c]);
  return agg.Build(window_seconds);
}

Result<size_t> PartitionedExecutor::Repartition(const core::Scheme& target) {
  // Pause intake: regular actions and repartitioning never interleave
  // (paper §V-D). Waiting Submit() calls resume under the new scheme.
  std::unique_lock gate(scheme_mu_);
  // In-flight graphs advance stages without the scheme gate; wait them out
  // before touching routing state. No new graph can enter: Submit
  // increments the in-flight count under the shared gate we now hold.
  Drain();
  StopWorkers();  // queues are empty: every in-flight graph completed
  auto plan = core::PlanRepartition(scheme_, target);
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    Status s = core::ApplyToTree(&db_->table(static_cast<int>(t))->index(),
                                 static_cast<int>(t), plan);
    if (!s.ok()) {
      // Restart workers under the old scheme before reporting failure.
      StartWorkers();
      return s;
    }
  }
  scheme_ = target;
  StartWorkers();
  return plan.size();
}

}  // namespace atrapos::engine
