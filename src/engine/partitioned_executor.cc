#include "engine/partitioned_executor.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include <vector>

#include "core/repartitioner.h"
#include "fault/injector.h"
#include "hw/binding.h"
#include "log/shard_writer.h"
#include "storage/interleave.h"

namespace atrapos::engine {

// One partition pool serves both the inbox chunks and the log shard's
// buffers (ROADMAP "inbox chunk pooling").
static_assert(sizeof(MpscChunkQueue<ActionTask>::Chunk) <=
                  mem::kPartitionChunkBytes,
              "partition chunk pool must fit an inbox chunk");

namespace {

/// Thread-local mutation observer a durability-enabled worker installs for
/// its lifetime: every successful insert/update/delete on this thread
/// becomes a staged log record, and the transaction's touched-partition
/// bit is set for the commit protocol. Against a kCompactDiffV2 shard,
/// updates are diff-encoded — only the contiguous byte range that changed
/// (plus the Rid locating it) is logged instead of the full after-image.
class WorkerLogObserver : public storage::MutationObserver {
 public:
  WorkerLogObserver(log::ShardWriter* writer, size_t seq, bool diff_updates)
      : writer_(writer), seq_(seq), diff_updates_(diff_updates) {}

  /// The transaction whose action is currently running on this worker.
  void set_txn(internal::TxnState* st) { st_ = st; }

  void OnInsert(storage::TableId table, uint64_t key, storage::Rid rid,
                const storage::Tuple& row) override {
    if (!Touch()) return;
    writer_->Add(st_->txn_id, txn::LogType::kInsert,
                 static_cast<uint32_t>(table), key, rid.Encode(), row.data(),
                 row.size());
  }
  void OnUpdate(storage::TableId table, uint64_t key, storage::Rid rid,
                const uint8_t* before, const storage::Tuple& after) override {
    if (!Touch()) return;
    if (!diff_updates_) {
      writer_->Add(st_->txn_id, txn::LogType::kUpdate,
                   static_cast<uint32_t>(table), key, rid.Encode(),
                   after.data(), after.size());
      return;
    }
    // Contiguous changed range [lo, hi). An unchanged row still logs a
    // zero-length diff: the record keeps the transaction in the commit
    // protocol and replay validates-then-patches nothing.
    uint32_t n = after.size();
    const uint8_t* now = after.data();
    uint32_t lo = 0;
    while (lo < n && before[lo] == now[lo]) ++lo;
    uint32_t hi = n;
    while (hi > lo && before[hi - 1] == now[hi - 1]) --hi;
    writer_->AddDiff(st_->txn_id, static_cast<uint32_t>(table), key,
                     rid.Encode(), static_cast<uint16_t>(lo), now + lo,
                     static_cast<uint16_t>(hi - lo));
  }
  void OnDelete(storage::TableId table, uint64_t key,
                storage::Rid rid) override {
    if (!Touch()) return;
    writer_->Add(st_->txn_id, txn::LogType::kDelete,
                 static_cast<uint32_t>(table), key, rid.Encode(), nullptr, 0);
  }
  bool WantsBeforeImage() const override { return diff_updates_; }

 private:
  /// Marks this partition touched; false when the mutation happened
  /// outside an action (e.g. load).
  bool Touch() {
    if (st_ == nullptr) return false;
    st_->touched[seq_ >> 6].fetch_or(uint64_t{1} << (seq_ & 63),
                                     std::memory_order_relaxed);
    return true;
  }

  log::ShardWriter* const writer_;
  const size_t seq_;
  const bool diff_updates_;
  internal::TxnState* st_ = nullptr;
};

}  // namespace

/// log::LogManager commit ack: the cookie is the TxnState whose markers
/// reached the configured durability point; completion was deferred in
/// FinishTxn and runs here (flusher thread in group mode, the appending
/// worker in async mode). pending_status is ordered by the marker-publish
/// / ticket-atomics chain.
class PartitionedExecutor::CommitAckSink : public log::LogManager::CommitSink {
 public:
  explicit CommitAckSink(PartitionedExecutor* ex) : ex_(ex) {}
  void OnCommitAcked(uint64_t epoch, void* cookie) override {
    auto* st = static_cast<internal::TxnState*>(cookie);
    ex_->obs_->Count(obs::CounterId::kDurableAcks);
    ex_->obs_->Trace(obs::SpanId::kDurableAck, obs::TracePhase::kInstant,
                     st->trace_id, epoch);
    ex_->CompleteTxn(st, st->pending_status);
  }

 private:
  PartitionedExecutor* const ex_;
};

/// Buckets one publish wave (a graph stage, a whole SubmitBatch's stage-0
/// actions, or a commit's marker fan-out) by destination partition.
/// PublishAll then performs one inbox push per chunk — one per partition
/// for groups of up to a chunk's capacity — and at most one wake per
/// partition, regardless of how many tasks the wave carried. Chunks come
/// from the destination partition's pool, so steady-state publishing
/// allocates nothing.
class PartitionedExecutor::Publisher {
 public:
  Publisher() { groups_.reserve(8); }

  ~Publisher() {
    // PublishAll always runs on every code path; free defensively anyway.
    for (auto& g : groups_)
      for (auto* c : g.chunks) g.part->inbox.ReleaseChunk(c);
  }

  void Add(Partition* p, ActionTask t) {
    for (auto& g : groups_) {
      if (g.part == p) {
        if (g.chunks.back()->full())
          g.chunks.push_back(p->inbox.AllocChunk());
        g.chunks.back()->Append(t);
        ++g.n;
        return;
      }
    }
    groups_.emplace_back();
    Group& g = groups_.back();
    g.part = p;
    g.chunks.push_back(p->inbox.AllocChunk());
    g.chunks.back()->Append(t);
    ++g.n;
  }

  void PublishAll(PartitionedExecutor* ex) {
    for (auto& g : groups_) {
      // Queue-depth credit lands before the tasks become visible, the
      // worker's debit after it popped them — the pending gauge never
      // goes negative.
      g.part->pending.fetch_add(static_cast<int64_t>(g.n),
                                std::memory_order_relaxed);
      // FIFO push order: the inbox's drain-and-reverse restores it.
      for (auto* c : g.chunks) g.part->inbox.Push(c);
      ex->Wake(g.part);
    }
    groups_.clear();
  }

 private:
  struct Group {
    Partition* part = nullptr;
    uint64_t n = 0;  ///< tasks bucketed for this partition
    std::vector<TaskQueue::Chunk*> chunks;  ///< FIFO; usually exactly one
  };
  std::vector<Group> groups_;
};

PartitionedExecutor::PartitionedExecutor(Database* db,
                                         const hw::Topology& topo,
                                         core::Scheme scheme)
    : PartitionedExecutor(db, topo, std::move(scheme), Options{}) {}

PartitionedExecutor::PartitionedExecutor(Database* db,
                                         const hw::Topology& topo,
                                         core::Scheme scheme, Options opt)
    : db_(db),
      topo_(topo),
      opt_(opt),
      obs_(&db->observability()),
      scheme_(std::move(scheme)) {
  if (opt_.durability != DurabilityMode::kOff) {
    log::LogManager::Options lopt;
    lopt.flush_interval_us = opt_.log_flush_interval_us;
    lopt.start_flusher = !opt_.log_manual_flush;
    lopt.wire = opt_.log_wire;
    lopt.registry = obs_;
    log_ = std::make_unique<log::LogManager>(lopt);
    ack_sink_ = std::make_unique<CommitAckSink>(this);
    log_->SetCommitSink(ack_sink_.get());
  }
  StartWorkers();
  // Config gauge: the interleave depth every worker drains with (1 =
  // serial), so a snapshot names the execution mode next to its effects
  // (kInterleaveSuspensions, the drain histograms).
  obs_->SetGauge(obs::GaugeId::kInterleaveDepth,
                 opt_.interleave_depth <= 1 ? 1 : opt_.interleave_depth);
  // The kill sentinel runs evacuations off the worker threads (a worker
  // cannot join itself); idle when no worker-kill fault ever fires.
  sentinel_ = std::thread([this] { SentinelLoop(); });
  db_->RegisterDrainable(this);
  // Snapshot-time source: per-partition queue depths and the executor/log
  // totals the registry should not double-count on the hot path. Runs on
  // the snapshotting thread under the shared scheme gate (so flat_parts_
  // is stable); removed before teardown.
  obs_source_ = obs_->AddSource([this](obs::StatsSnapshot& s) {
    std::shared_lock gate(scheme_mu_);
    s.queue_depths.clear();
    s.queue_depths.reserve(flat_parts_.size());
    int64_t total = 0;
    for (Partition* p : flat_parts_) {
      int64_t d = p->pending.load(std::memory_order_relaxed);
      s.queue_depths.push_back(d > 0 ? static_cast<uint64_t>(d) : 0);
      total += d > 0 ? d : 0;
    }
    s.gauges[static_cast<size_t>(obs::GaugeId::kQueueDepthTotal)] = total;
    obs_->SetGauge(obs::GaugeId::kQueueDepthTotal, total);
    s.executed_actions = executed_.load(std::memory_order_relaxed);
    if (log_ != nullptr) {
      s.log_records = log_->num_records();
      s.log_bytes = log_->bytes_logged();
      s.durable_epoch = log_->durable_epoch();
      s.last_epoch = log_->last_epoch();
      s.durable_lag_epochs = s.last_epoch > s.durable_epoch
                                 ? s.last_epoch - s.durable_epoch
                                 : 0;
    }
    // Hardware counters, aggregated per island: live workers' groups
    // plus the totals retired by StopWorkers (hw_retired_ is written
    // under the exclusive gate, so the shared gate above suffices).
    if (opt_.hw_counters && obs::PerfCounters::Available()) {
      size_t islands = static_cast<size_t>(topo_.num_sockets());
      s.hw_islands.assign(islands, obs::HwCounterValues{});
      bool any = false;
      for (size_t i = 0; i < hw_retired_.size() && i < islands; ++i) {
        s.hw_islands[i].Accumulate(hw_retired_[i]);
        for (bool v : hw_retired_[i].valid) any |= v;
      }
      for (Partition* p : flat_parts_) {
        if (!p->perf.open()) continue;
        size_t island = static_cast<size_t>(topo_.socket_of(p->core));
        if (island < islands) {
          s.hw_islands[island].Accumulate(p->perf.Read());
          any = true;  // only data that actually landed in hw_islands
        }
      }
      s.hw_available = any;
      if (!any) s.hw_islands.clear();
    }
  });
}

PartitionedExecutor::~PartitionedExecutor() {
  // Leave the database's drain set before teardown so a concurrent
  // Database::Drain() cannot reach into a dying executor.
  db_->UnregisterDrainable(this);
  // Source next: a snapshot racing teardown must not walk dying
  // partitions (RemoveSource waits out in-flight source calls).
  if (obs_source_ >= 0) obs_->RemoveSource(obs_source_);
  // Sentinel before the final drain: a mid-flight evacuation runs to
  // completion under the join; queued requests are processed, new ones
  // are no longer accepted. Zombies left unevacuated (e.g. every island
  // failed) still drain below — they complete everything kUnavailable.
  {
    std::lock_guard lk(kill_mu_);
    sentinel_stop_ = true;
  }
  kill_cv_.notify_all();
  if (sentinel_.joinable()) sentinel_.join();
  // In-flight graphs must finish before workers stop: a worker reaching an
  // RVP enqueues the next stage onto sibling workers, which only drain
  // their inboxes while alive — and deferred commits complete only once
  // their markers are appended (workers) and flushed (LogManager, which
  // outlives the partitions by member order).
  Drain();
  StopWorkers();
}

void PartitionedExecutor::PlacePartitions() {
  mem::IslandAllocator& alloc = db_->memory();
  uint64_t seq = 0;
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    if (ts.num_partitions() == 0) continue;
    storage::Table* table = db_->table(static_cast<int>(t));
    storage::MultiRootedBTree& index = table->index();
    size_t n = std::min(ts.num_partitions(), index.num_partitions());
    for (size_t p = 0; p < n; ++p, ++seq) {
      hw::SocketId owner = topo_.socket_of(ts.placement[p]);
      mem::Arena* arena = alloc.arena(alloc.ResolveSeq(owner, seq));
      // MigratePartition is a no-op when the subtree already lives there.
      index.MigratePartition(p, arena);
      // The partition's heap follows the same island: tuple pages migrate
      // with ownership exactly like subtrees (ROADMAP "Per-partition heap
      // files" — closed).
      if (table->heap(p).arena() != arena) table->heap(p).MigrateTo(arena);
    }
  }
}

void PartitionedExecutor::StartWorkers() {
  PlacePartitions();
  parts_.clear();
  flat_parts_.clear();
  const bool centralized = log_ != nullptr && opt_.log_shards == 1;
  mem::IslandAllocator& alloc = db_->memory();
  if (log_ != nullptr) {
    size_t total = 0;
    for (const auto& ts : scheme_.tables) total += ts.num_partitions();
    if (total > internal::kMaxLogPartitions) {
      std::fprintf(stderr,
                   "PartitionedExecutor: %zu partitions exceed the "
                   "durability limit of %zu\n",
                   total, internal::kMaxLogPartitions);
      std::abort();
    }
    if (centralized) {
      if (central_shard_ == nullptr) {
        // The centralized shard survives repartitioning — it is the
        // single scalar-LSN log the paper measures, not partition state.
        log_->EnsureCentralShard(alloc.arena(0));
        central_shard_ = log_->ActiveShard(0);
      }
    } else if (log_->num_active_shards() > 0) {
      // Repartition: log shards move with their partitions — seal the old
      // generation (kept for recovery) and place fresh shards below.
      log_->BeginGeneration();
    }
  }
  parts_.resize(scheme_.tables.size());
  size_t seq = 0;
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    uint64_t rows = db_->table(static_cast<int>(t))->num_rows();
    for (size_t p = 0; p < ts.num_partitions(); ++p, ++seq) {
      auto part = std::make_unique<Partition>();
      part->table = static_cast<int>(t);
      part->lo = ts.boundaries[p];
      part->hi = p + 1 < ts.num_partitions() ? ts.boundaries[p + 1]
                                             : std::max(rows, part->lo + 1);
      part->core = ts.placement[p];
      part->seq = seq;
      part->monitor =
          std::make_unique<core::PartitionMonitor>(part->lo, part->hi);
      hw::SocketId owner = topo_.socket_of(ts.placement[p]);
      mem::Arena* arena = alloc.arena(alloc.ResolveSeq(owner, seq));
      part->pool =
          std::make_shared<mem::ChunkPool>(mem::kPartitionChunkBytes, arena);
      part->inbox.SetPool(part->pool.get());
      if (log_ != nullptr) {
        part->shard = centralized
                          ? central_shard_
                          : log_->shard(log_->AddShard(part->pool, arena));
      }
      // Invariant: a partition placed on a failed island is born
      // quarantined (reachable when a repartition rollback restores a
      // pre-failure scheme) — its worker drains as a zombie, so nothing
      // routed there can hang.
      if ((failed_islands_.load(std::memory_order_relaxed) >> owner) & 1u)
        part->failed.store(true, std::memory_order_relaxed);
      Partition* raw = part.get();
      part->worker = std::thread([this, raw] { WorkerLoop(raw); });
      flat_parts_.push_back(raw);
      parts_[t].push_back(std::move(part));
    }
  }
}

void PartitionedExecutor::WorkerLoop(Partition* p) {
  hw::BindCurrentThread(topo_, p->core);
  // Hardware counters must be opened by the measured thread itself
  // (perf_event_open with pid=0); the capability probe inside makes this
  // a no-op where perf is unavailable. Read cross-thread by the
  // snapshot source once perf.open() flips.
  if (opt_.hw_counters) p->perf.OpenForCurrentThread();
  core::PartitionMonitor::BatchTally tally(*p->monitor);
  uint64_t drain_tick = 0;  // 1-in-8 sampling stride for the drain hists
  // Durability: this worker stages its drained batch's records (and the
  // commit markers routed to it) and appends them to its shard with one
  // reservation per batch; the centralized configuration appends per
  // record instead (the retired WAL's protocol).
  std::optional<log::ShardWriter> writer;
  std::optional<WorkerLogObserver> observer;
  if (log_ != nullptr) {
    writer.emplace(log_.get(), p->shard, /*immediate=*/opt_.log_shards == 1);
    observer.emplace(&*writer, p->seq,
                     opt_.log_wire == log::WireFormat::kCompactDiffV2);
    storage::SetThreadMutationObserver(&*observer);
  }
  for (;;) {
    TaskQueue::Chunk* chain = p->inbox.PopAll();
    if (chain == nullptr) {
      // Callers stop workers only after Drain(), so an empty grab with
      // stop set means no task can ever arrive again.
      if (p->stop.load(std::memory_order_acquire)) {
        if (observer) storage::SetThreadMutationObserver(nullptr);
        return;
      }
      // Park protocol (consumer side of the Dekker pair, see
      // mpsc_queue.h): declare intent, re-check inbox and stop with
      // seq_cst, only then sleep. Producers that published before the
      // re-check are seen; producers that publish after it see
      // parked == true and wake us.
      p->parked.store(true, std::memory_order_seq_cst);
      if (!p->inbox.Empty() || p->stop.load(std::memory_order_seq_cst)) {
        p->parked.store(false, std::memory_order_relaxed);
        continue;
      }
      std::unique_lock lk(p->mu);
      p->cv.wait(lk, [p] {
        return !p->parked.load(std::memory_order_relaxed) ||
               p->stop.load(std::memory_order_relaxed);
      });
      p->parked.store(false, std::memory_order_relaxed);
      continue;
    }
    // Count the batch *before* running it: a completion a client observed
    // then can never precede its action's executed_ credit, so after
    // Drain() the counter equals the actions actually executed.
    // Commit-marker tasks (act == nullptr) are not actions — they only
    // exist when durability is on, so the off path keeps the cheap
    // per-chunk count.
    uint64_t total = 0;
    for (TaskQueue::Chunk* c = chain; c != nullptr; c = c->next)
      total += c->count;
    uint64_t n = total;
    if (log_ != nullptr) {
      n = 0;
      for (TaskQueue::Chunk* c = chain; c != nullptr; c = c->next)
        for (uint32_t i = 0; i < c->count; ++i)
          if (c->items[i].act != nullptr) ++n;
    }
    // Queue-depth debit for everything just popped (markers included —
    // the publisher credited them too).
    p->pending.fetch_sub(static_cast<int64_t>(total),
                         std::memory_order_relaxed);
    // Island death (fault::kWorkerKill), checked once per drained batch:
    // this worker's island fail-stops. The worker itself turns zombie —
    // the whole batch below fails kUnavailable — and the sentinel
    // quarantines the siblings and runs the evacuation (a worker cannot
    // evacuate itself: Repartition joins its own thread).
    bool zombie = p->failed.load(std::memory_order_acquire);
    if (!zombie && fault::Should(fault::SiteId::kWorkerKill)) {
      p->failed.store(true, std::memory_order_release);
      zombie = true;
      RequestKillIsland(static_cast<int>(topo_.socket_of(p->core)));
    }
    // A zombie's actions never execute — they abort kUnavailable — so
    // they are phantom load: crediting them to executed_ (or Touch-ing
    // them into the monitor below) made the dead island look busy to
    // PartitionMonitor/AdaptiveManager during evacuation and could steer
    // repartitioning back toward it. Zombie batches keep only the
    // queue-depth debit and the marker appends.
    if (!zombie && n > 0) executed_.fetch_add(n, std::memory_order_relaxed);
    // One timestamp pair and one monitor flush per drained batch: each
    // action is charged the batch-average microseconds (clamped by the
    // monitor so bins never look idle), keeping monitoring cost per-batch
    // as the paper's Table 2 budget demands.
    auto t0 = std::chrono::steady_clock::now();
    uint64_t suspensions = 0;  // warm-pipeline resume hops this batch
    // One task, serial-path semantics. The interleaved path funnels
    // through this too (in admission order), so attribution is identical:
    // the observer is (re)pointed at the task's txn immediately before
    // its body runs and the body runs to completion on this thread —
    // a suspended neighbor can never interleave log records mid-action.
    auto run_task = [&](const ActionTask& task) {
      if (task.act == nullptr) {
        // This partition's commit marker for task.st: staged behind the
        // transaction's data records in this worker's append order, so
        // the shard's LSN order encodes write-ahead.
        writer->AddCommitMarker(task.st->txn_id, task.st->commit_epoch,
                                task.st->marker_expected, task.st->ticket);
        obs_->Count(obs::CounterId::kCommitMarkersAppended);
        obs_->Trace(obs::SpanId::kCommitMarker, obs::TracePhase::kInstant,
                    task.st->trace_id, p->seq);
        return;
      }
      if (observer) observer->set_txn(task.st);
      if (!zombie) tally.Touch(task.act->key);
      RunAction(task, zombie);
    };
    const size_t K = opt_.interleave_depth <= 1
                         ? 1
                         : static_cast<size_t>(opt_.interleave_depth);
    if (K == 1 || zombie) {
      // Serial drain — the exact pre-interleaving path, zero coroutine
      // overhead. Zombies take it too: prefetching for actions that will
      // only abort is wasted work.
      while (chain != nullptr) {
        TaskQueue::Chunk* c = chain;
        chain = chain->next;
        for (uint32_t i = 0; i < c->count; ++i) run_task(c->items[i]);
        p->inbox.ReleaseChunk(c);
      }
    } else {
      // Interleaved drain (AMAC-style software pipelining): up to K
      // actions keep their warm pipelines in flight, rotated round-robin
      // one prefetch hop per turn; each action's *body* still runs via
      // run_task strictly in admission order (the head of the FIFO ring,
      // only once its warm completed), so same-key ordering, marker
      // order, completion and attribution match the serial loop exactly.
      // The warm pipeline for one action: the index descent, then — when
      // the descent surfaced a Rid-encoded value — the heap-record walk,
      // one prefetch-and-suspend hop per turn. The two storage coroutines
      // are driven directly (no wrapper coroutine: one transition per
      // hop, one live frame per action). Purely advisory: warms never
      // mutate, never charge AllocStats, and never hold a latch across a
      // suspension; the body performs the authoritative access
      // afterwards, cache-warm. A stale view (a neighbor's body moved
      // the key between slices) just ends the warm early.
      struct Slot {
        storage::PrefetchChain warm;  ///< the current stage's chain
        const ActionTask* task = nullptr;
        storage::Table* table = nullptr;
        uint64_t key = 0;
        /// Descent result; written by the WarmDescent frame, so it must
        /// be address-stable — the ring is sized once and never moved.
        std::optional<uint64_t> val;
        uint64_t t0_ns = 0;
        enum : uint8_t { kDescent = 0, kRecord, kWarmed };
        uint8_t stage = kWarmed;
      };
      const bool tracing = obs_->trace_enabled();
      std::vector<Slot> ring(K);
      size_t head = 0, live = 0;
      // Coroutine frames recycle through the partition's chunk pool —
      // steady-state interleaving allocates nothing, like the inbox
      // chunks the tasks arrived in.
      storage::SetThreadFramePool(p->pool.get());
      TaskQueue::Chunk* c = chain;
      uint32_t ci = 0;
      auto next_task = [&]() -> const ActionTask* {
        while (c != nullptr && ci >= c->count) {
          c = c->next;
          ci = 0;
        }
        return c == nullptr ? nullptr : &c->items[ci++];
      };
      for (;;) {
        // Admit: fill free slots in arrival order. Markers admit as
        // already-done warms so they retire at their position in the
        // order (write-ahead: behind the data records before them).
        while (live < K) {
          const ActionTask* t = next_task();
          if (t == nullptr) break;
          Slot& s = ring[(head + live) % K];
          s.task = t;
          s.t0_ns = tracing ? obs_->NowNs() : 0;
          if (t->act != nullptr) {
            s.table = t->table;
            s.key = t->act->key;
            s.val.reset();
            size_t part = s.table->index().PartitionOf(s.key);
            // Eager start: creation already issues the root prefetch.
            s.warm = s.table->index().subtree(part).WarmDescent(s.key,
                                                                &s.val);
            s.stage = Slot::kDescent;
          } else {
            s.warm = storage::PrefetchChain();
            s.stage = Slot::kWarmed;
          }
          ++live;
        }
        if (live == 0) break;
        // Rotate: one prefetch hop per in-flight warm, oldest first. A
        // finished descent chains into the heap-record warm when it
        // surfaced a Rid-encoded value (micro tables store raw ints —
        // no heap hop for those).
        for (size_t i = 0; i < live; ++i) {
          Slot& s = ring[(head + i) % K];
          if (!s.warm.done()) {
            s.warm.Resume();
            ++suspensions;
          } else if (s.stage == Slot::kDescent) {
            s.stage = Slot::kRecord;
            std::optional<storage::Rid> rid =
                s.val.has_value() ? storage::Rid::TryDecode(*s.val)
                                  : std::nullopt;
            size_t part = s.table->index().PartitionOf(s.key);
            if (rid.has_value() && part < s.table->num_partitions())
              s.warm = s.table->heap(part).WarmRecord(*rid);
            else
              s.stage = Slot::kWarmed;
          } else if (s.stage == Slot::kRecord) {
            s.stage = Slot::kWarmed;
          }
        }
        // Retire: only the head may run its body, even when younger
        // slots finished warming first.
        while (live > 0 && ring[head].stage == Slot::kWarmed) {
          Slot& s = ring[head];
          if (tracing && s.task->act != nullptr)
            obs_->Trace(obs::SpanId::kInterleaveWarm,
                        obs::TracePhase::kComplete, s.task->st->trace_id,
                        obs_->NowNs() - s.t0_ns);
          run_task(*s.task);
          s.warm = storage::PrefetchChain();
          head = (head + 1) % K;
          --live;
        }
      }
      storage::SetThreadFramePool(nullptr);
      // Slots held pointers into the chunks; release only now.
      while (chain != nullptr) {
        TaskQueue::Chunk* done = chain;
        chain = chain->next;
        p->inbox.ReleaseChunk(done);
      }
    }
    if (writer) writer->Flush();  // one shard reservation for the batch
    if (n > 0) {
      double us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      // Zombie batches executed nothing: no monitor load, no drain-shape
      // samples (they would record near-zero abort costs).
      if (!zombie) p->monitor->RecordBatch(&tally, us / static_cast<double>(n));
      // Per-batch registry flush, same discipline as the monitor: the
      // observability cost scales with drains, not actions (Table 2).
      // The drain histograms are additionally sampled 1-in-8: when the
      // worker outpaces the client, drains are tiny and frequent, and
      // three histogram records per drain (cold shard lines each time)
      // were the single largest obs cost on the TATP hot path. The
      // batch counter stays exact; the first drain always samples.
      if (obs_->metrics_enabled()) {
        obs_->Count(obs::CounterId::kBatchesDrained);
        if (suspensions > 0)
          obs_->Count(obs::CounterId::kInterleaveSuspensions, suspensions);
        if (!zombie && (drain_tick++ & 7u) == 0) {
          obs_->RecordLatency(obs::HistId::kDrainBatchUs,
                              static_cast<uint64_t>(us));
          // Recorded on the action basis (n, markers excluded) — the
          // same basis kActionAvgUs divides by; see obs/registry.h.
          obs_->RecordLatency(obs::HistId::kDrainBatchSize, n);
          obs_->RecordLatency(
              obs::HistId::kActionAvgUs,
              static_cast<uint64_t>(us / static_cast<double>(n)));
        }
      }
      obs_->Trace(obs::SpanId::kDrain, obs::TracePhase::kComplete, 0,
                  static_cast<uint64_t>(us * 1000.0));
    }
  }
}

void PartitionedExecutor::Wake(Partition* p) {
  // Claim the wake: only one producer per park episode notifies, and
  // publishes onto a running worker notify nobody.
  if (p->parked.exchange(false, std::memory_order_seq_cst)) {
    {
      // Empty critical section: the worker is either before its
      // predicate check (it will see parked == false) or inside wait
      // (the notify reaches it).
      std::lock_guard lk(p->mu);
    }
    p->cv.notify_one();
  }
}

void PartitionedExecutor::StopWorkers() {
  for (auto& tp : parts_) {
    for (auto& p : tp) {
      p->stop.store(true, std::memory_order_seq_cst);
      {
        std::lock_guard lk(p->mu);  // close the check-then-wait window
      }
      p->cv.notify_all();
    }
  }
  for (auto& tp : parts_)
    for (auto& p : tp)
      if (p->worker.joinable()) p->worker.join();
  // Retire the joined workers' counter totals per island so Repartition
  // (which destroys these Partition objects) doesn't lose hardware history.
  // Callers hold the exclusive scheme gate (or run after RemoveSource), so
  // no snapshot source reads hw_retired_ concurrently.
  for (auto& tp : parts_) {
    for (auto& p : tp) {
      if (!p->perf.open()) continue;
      size_t island = static_cast<size_t>(topo_.socket_of(p->core));
      if (hw_retired_.size() <= island) hw_retired_.resize(island + 1);
      hw_retired_[island].Accumulate(p->perf.Read());
    }
  }
}

PartitionedExecutor::Partition* PartitionedExecutor::Route(int table,
                                                           uint64_t key) {
  auto& tp = parts_[static_cast<size_t>(table)];
  const core::TableScheme& ts = scheme_.tables[static_cast<size_t>(table)];
  size_t p = ts.PartitionOf(key);
  // Clamp to the nearest materialized partition: PartitionOf already maps
  // keys below the first boundary to partition 0 and keys past the last
  // fence to the final slot, but a scheme may carry more boundaries than
  // the executor materialized workers for.
  if (p >= tp.size()) p = tp.size() - 1;
  return tp[p].get();
}

Status PartitionedExecutor::ValidateGraph(const ActionGraph& graph) const {
  if (graph.empty()) return Status::InvalidArgument("empty action graph");
  for (const auto& stage : graph.stages_) {
    for (const auto& a : stage) {
      if (a.table < 0 ||
          static_cast<size_t>(a.table) >= scheme_.tables.size() ||
          static_cast<size_t>(a.table) >= db_->num_tables() ||
          parts_[static_cast<size_t>(a.table)].empty()) {
        return Status::InvalidArgument("unknown table id " +
                                       std::to_string(a.table));
      }
    }
  }
  return Status::OK();
}

Result<TxnFuture> PartitionedExecutor::Submit(ActionGraph graph) {
  std::shared_lock gate(scheme_mu_);
  if (sealed_.load(std::memory_order_acquire))
    return Status::Unavailable("executor intake sealed (shutting down)");
  Status v = ValidateGraph(graph);
  if (!v.ok()) return v;
  const bool metrics = obs_->metrics_enabled();
  const bool tracing = obs_->trace_enabled();
  const uint64_t t0 = (metrics || tracing) ? obs_->NowNs() : 0;
  auto st = std::make_shared<internal::TxnState>(std::move(graph));
  st->self = st;
  if (log_ != nullptr || tracing)
    st->txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Trace correlation: a caller-stamped graph id (the wire tier's
  // req-id-derived WireTraceId) wins over the engine txn id, so one
  // chrome dump links the whole client-send → durable-ack chain.
  st->trace_id = st->graph.trace_id() != 0 ? st->graph.trace_id() : st->txn_id;
  st->submit_ts_ns = t0;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (metrics) obs_->Count(obs::CounterId::kTxnSubmitted);
  if (tracing)
    obs_->Trace(obs::SpanId::kTxn, obs::TracePhase::kBegin, st->trace_id);
  Publisher pub;
  EnqueueStage(st.get(), 0, &pub);
  pub.PublishAll(this);
  if (metrics || tracing) {
    uint64_t dt = obs_->NowNs() - t0;
    if (metrics)
      obs_->RecordLatency(obs::HistId::kSubmitPublishUs, dt / 1000);
    if (tracing)
      obs_->Trace(obs::SpanId::kSubmitPublish, obs::TracePhase::kComplete,
                  st->trace_id, dt);
  }
  return TxnFuture(st);
}

Result<std::vector<TxnFuture>> PartitionedExecutor::SubmitBatch(
    std::span<ActionGraph> graphs) {
  std::shared_lock gate(scheme_mu_);
  if (sealed_.load(std::memory_order_acquire))
    return Status::Unavailable("executor intake sealed (shutting down)");
  // All-or-nothing: validate every graph before publishing anything.
  for (const ActionGraph& g : graphs) {
    Status v = ValidateGraph(g);
    if (!v.ok()) return v;
  }
  const bool metrics = obs_->metrics_enabled();
  const bool tracing = obs_->trace_enabled();
  const uint64_t t0 = (metrics || tracing) ? obs_->NowNs() : 0;
  std::vector<TxnFuture> futures;
  futures.reserve(graphs.size());
  Publisher pub;
  for (ActionGraph& g : graphs) {
    auto st = std::make_shared<internal::TxnState>(std::move(g));
    st->self = st;
    if (log_ != nullptr || tracing)
      st->txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    st->trace_id =
        st->graph.trace_id() != 0 ? st->graph.trace_id() : st->txn_id;
    st->submit_ts_ns = t0;
    inflight_.fetch_add(1, std::memory_order_relaxed);
    if (tracing)
      obs_->Trace(obs::SpanId::kTxn, obs::TracePhase::kBegin, st->trace_id);
    EnqueueStage(st.get(), 0, &pub);
    futures.emplace_back(TxnFuture(st));
  }
  // One push (or a few chunk pushes for oversized groups) and at most one
  // wake per destination partition for the whole batch.
  pub.PublishAll(this);
  if (metrics || tracing) {
    const uint64_t dt = obs_->NowNs() - t0;
    if (metrics) {
      obs_->Count(obs::CounterId::kTxnSubmitted, graphs.size());
      // One submit-publish sample per wave (not per graph): the wave is
      // the unit the batched path amortizes.
      obs_->RecordLatency(obs::HistId::kSubmitPublishUs, dt / 1000);
    }
    // One complete event per wave (arg = duration, like every kComplete).
    if (tracing)
      obs_->Trace(obs::SpanId::kSubmitPublish, obs::TracePhase::kComplete,
                  0, dt);
  }
  return futures;
}

Status PartitionedExecutor::SubmitAndWait(ActionGraph graph) {
  auto f = Submit(std::move(graph));
  if (!f.ok()) return f.status();
  return f.value().Wait();
}

void PartitionedExecutor::EnqueueStage(internal::TxnState* st, size_t idx,
                                       Publisher* pub) {
  auto& stage = st->graph.stages_[idx];
  st->next_stage = idx + 1;
  // Set before anything is published: an earlier-published sibling could
  // otherwise finish and advance the graph off an uninitialized count.
  st->stage_remaining.store(stage.size(), std::memory_order_relaxed);
  for (auto& a : stage)
    pub->Add(Route(a.table, a.key), ActionTask{st, &a, db_->table(a.table)});
}

void PartitionedExecutor::RunAction(const ActionTask& task, bool zombie) {
  internal::TxnState* st = task.st;
  ActionGraph::Action* act = task.act;
  // Per-action spans only exist under tracing — the metrics path keeps
  // its one-clock-pair-per-batch discipline (WorkerLoop).
  const bool tracing = obs_->trace_enabled();
  const uint64_t a0 = tracing ? obs_->NowNs() : 0;
  Status s;
  if (zombie) {
    // Quarantined partition: the action never runs — fail it so the
    // graph aborts through the normal RVP machinery, and every stage,
    // callback, and future settles exactly as on any other abort.
    s = Status::Unavailable("island failed: partition quarantined");
    obs_->Count(obs::CounterId::kFaultTxnsUnavailable);
  } else {
    ActionCtx ctx(act->id, &st->payloads);
    s = act->fn ? act->fn(task.table, ctx) : Status::OK();
  }
  if (tracing)
    obs_->Trace(obs::SpanId::kAction, obs::TracePhase::kComplete, st->trace_id,
                obs_->NowNs() - a0);
  if (!s.ok()) {
    std::lock_guard lk(st->mu);
    if (st->first_error.ok()) st->first_error = std::move(s);
    st->failed.store(true, std::memory_order_release);
  }
  // The last action of a stage advances the graph: abort at the RVP on
  // the first failure, fan out the next stage (grouped publish, one
  // enqueue + one wake per destination partition), or finalize.
  if (st->stage_remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return;
  if (tracing)
    obs_->Trace(obs::SpanId::kRvpResolve, obs::TracePhase::kInstant,
                st->trace_id, st->next_stage - 1);
  if (st->failed.load(std::memory_order_acquire)) {
    Status err;
    {
      std::lock_guard lk(st->mu);
      err = st->first_error;
    }
    FinishTxn(st, std::move(err));
  } else if (st->next_stage < st->graph.stages_.size() &&
             !st->graph.stages_[st->next_stage].empty()) {
    Publisher pub;
    EnqueueStage(st, st->next_stage, &pub);
    pub.PublishAll(this);
  } else {
    Status fin = st->graph.finalizer_ ? st->graph.finalizer_(st->payloads)
                                      : Status::OK();
    FinishTxn(st, std::move(fin));
  }
}

namespace {
/// Calls fn(seq) for every partition whose worker logged data records for
/// this transaction. The stage-completion release/acquire pair ordered
/// every bit before this read.
template <typename Fn>
void ForEachTouchedPartition(const internal::TxnState* st, Fn fn) {
  for (size_t w = 0; w < std::size(st->touched); ++w) {
    uint64_t bits = st->touched[w].load(std::memory_order_relaxed);
    while (bits != 0) {
      fn(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}
}  // namespace

void PartitionedExecutor::FinishTxn(internal::TxnState* st, Status s) {
  if (log_ == nullptr) {
    CompleteTxn(st, std::move(s));
    return;
  }
  int expected = 0;
  for (const auto& word : st->touched)
    expected += std::popcount(word.load(std::memory_order_relaxed));
  if (expected == 0) {
    // Read-only commit: nothing to force — real group commit skips the
    // log entirely here too.
    CompleteTxn(st, std::move(s));
    return;
  }
  if (!s.ok()) {
    // Abort markers decide the transaction at recovery (its data records
    // are discarded, wherever the crash cut fell) and need no durability
    // ack. Appended directly: order against still-buffered data records
    // does not matter for an abort decision.
    log::PendingRecord r;
    r.txn = st->txn_id;
    r.type = txn::LogType::kAbort;
    if (opt_.log_shards == 1) {
      // All partitions share the central shard; one record decides.
      central_shard_->AppendOne(r, nullptr, nullptr);
    } else {
      ForEachTouchedPartition(st, [&](size_t seq) {
        flat_parts_[seq]->shard->AppendOne(r, nullptr, nullptr);
      });
    }
    CompleteTxn(st, std::move(s));
    return;
  }
  if (opt_.log_shards == 1) {
    // Centralized compat — the retired WriteAheadLog's commit: one marker
    // in the single shard (all data records already hit it per-record),
    // and under kGroup the completing worker blocks in the group-commit
    // window, exactly the stall the per-partition design eliminates.
    log::CommitTicket* ticket = log_->BeginCommit(1, nullptr, false);
    log::PendingRecord r;
    r.txn = st->txn_id;
    r.type = txn::LogType::kCommit;
    r.epoch = ticket->epoch;
    r.marker_expected = 1;
    r.ticket = ticket;
    txn::Lsn lsn = central_shard_->AppendOne(r, nullptr, nullptr);
    if (opt_.durability == DurabilityMode::kGroup)
      central_shard_->WaitDurable(lsn);
    CompleteTxn(st, std::move(s));
    return;
  }
  // Per-partition commit: one marker per touched partition, routed
  // through that partition's inbox so its owning worker appends it after
  // the transaction's data records. Completion is deferred to the commit
  // ack — append-fired in async mode, durable-fired (flusher) in group
  // mode. Workers never block on a flush window.
  st->pending_status = std::move(s);
  log::CommitTicket* ticket = log_->BeginCommit(
      expected, st, /*fire_on_append=*/opt_.durability == DurabilityMode::kAsync);
  st->ticket = ticket;
  st->commit_epoch = ticket->epoch;
  st->marker_expected = static_cast<uint16_t>(expected);
  Publisher pub;
  ForEachTouchedPartition(st, [&](size_t seq) {
    pub.Add(flat_parts_[seq], ActionTask{st, nullptr, nullptr});
  });
  pub.PublishAll(this);
}

void PartitionedExecutor::CompleteTxn(internal::TxnState* st, Status s) {
  // Take over the executor's keep-alive reference: *st stays alive through
  // this call even if the client already dropped its future, and dies with
  // `keep` otherwise. Only the unique stage-finishing worker (or, for a
  // deferred durable commit, the unique ack) reaches here, so the move is
  // unsynchronized by design.
  std::shared_ptr<internal::TxnState> keep = std::move(st->self);
  if (st->completed.exchange(true)) return;  // exactly once
  if (obs_->metrics_enabled()) {
    // Commit latency is sampled 1-in-4 per completing thread (the first
    // completion always samples); the outcome counters stay exact. The
    // per-transaction clock read + histogram record were a measurable
    // slice of the TATP hot path, and the quantile estimate does not
    // need every commit.
    thread_local uint64_t commit_tick = 0;
    if (st->submit_ts_ns != 0 && (commit_tick++ & 3u) == 0)
      obs_->RecordLatency(obs::HistId::kCommitLatencyUs,
                          (obs_->NowNs() - st->submit_ts_ns) / 1000);
    obs_->Count(s.ok() ? obs::CounterId::kTxnCommitted
                       : obs::CounterId::kTxnAborted);
  }
  if (st->trace_id != 0)
    obs_->Trace(obs::SpanId::kTxn, obs::TracePhase::kEnd, st->trace_id);
  // Listener first: once Wait() returns, the workload class has been
  // reported (AdaptiveManager's counts are populated from here). The
  // active-call count must be raised *before* loading the pointer so
  // SetCompletionListener(nullptr) either sees this call in flight or this
  // load sees the cleared pointer (seq_cst on both sides).
  listener_active_.fetch_add(1, std::memory_order_seq_cst);
  if (auto* l = listener_.load(std::memory_order_seq_cst))
    l->OnTxnComplete(st->graph.txn_class(), s);
  if (listener_active_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    std::lock_guard lk(listener_mu_);
    listener_cv_.notify_all();
  }
  // Two-step publish (see TxnState): run the callback before `done` flips
  // so it completes strictly before Wait() returns; an OnComplete racing
  // in after `completing` runs the callback on the registering thread.
  std::function<void(const Status&)> cb;
  {
    std::lock_guard lk(st->mu);
    st->status = s;
    st->completing = true;
    cb = std::move(st->callback);
  }
  if (cb) cb(s);
  {
    std::lock_guard lk(st->mu);
    st->done = true;
  }
  st->cv.notify_all();
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lk(inflight_mu_);
    inflight_cv_.notify_all();
  }
}

void PartitionedExecutor::SetCompletionListener(TxnCompletionListener* l) {
  listener_.store(l, std::memory_order_seq_cst);
  if (l != nullptr) return;
  // Quiesce only the listener calls (not the whole executor): a client may
  // legitimately keep the pipeline full while the listener unregisters.
  std::unique_lock lk(listener_mu_);
  listener_cv_.wait(lk, [this] {
    return listener_active_.load(std::memory_order_seq_cst) == 0;
  });
}

void PartitionedExecutor::Drain() {
  std::unique_lock lk(inflight_mu_);
  inflight_cv_.wait(lk, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void PartitionedExecutor::SealIntake() {
  // The exclusive gate orders the seal against every Submit/SubmitBatch:
  // a submission either incremented inflight_ under the shared gate before
  // we acquired it (Drain will wait it out) or observes sealed_ and
  // returns Unavailable without creating a future.
  std::unique_lock gate(scheme_mu_);
  sealed_.store(true, std::memory_order_release);
}

core::Scheme PartitionedExecutor::scheme() const {
  std::shared_lock lk(scheme_mu_);
  return scheme_;
}

core::WorkloadStats PartitionedExecutor::HarvestStats(
    std::vector<double> class_counts, double window_seconds) {
  std::shared_lock gate(scheme_mu_);
  core::MonitorAggregator agg(parts_.size(), class_counts.size());
  for (size_t t = 0; t < parts_.size(); ++t) {
    for (auto& p : parts_[t]) {
      agg.AddPartition(static_cast<int>(t), *p->monitor);
      p->monitor->Reset();
    }
  }
  for (size_t c = 0; c < class_counts.size(); ++c)
    agg.AddClassCount(static_cast<int>(c), class_counts[c]);
  return agg.Build(window_seconds);
}

namespace {
/// Re-homes every placement on a failed island onto surviving islands'
/// cores, round-robin. The caller has verified a survivor exists. Returns
/// the number of placements changed.
size_t RemapFailedPlacements(core::Scheme* s, const hw::Topology& topo,
                             uint64_t failed_mask) {
  std::vector<hw::CoreId> survivors;
  for (int c = 0; c < topo.num_cores(); ++c) {
    if (((failed_mask >> topo.socket_of(c)) & 1u) == 0)
      survivors.push_back(static_cast<hw::CoreId>(c));
  }
  if (survivors.empty()) return 0;
  size_t moved = 0;
  size_t rr = 0;
  for (auto& ts : s->tables) {
    for (auto& core : ts.placement) {
      if ((failed_mask >> topo.socket_of(core)) & 1u) {
        core = survivors[rr++ % survivors.size()];
        ++moved;
      }
    }
  }
  return moved;
}

bool AnyIslandAlive(const hw::Topology& topo, uint64_t failed_mask) {
  for (int s = 0; s < topo.num_sockets(); ++s)
    if (((failed_mask >> s) & 1u) == 0) return true;
  return false;
}
}  // namespace

Result<size_t> PartitionedExecutor::Repartition(const core::Scheme& target) {
  // Pause intake: regular actions and repartitioning never interleave
  // (paper §V-D). Waiting Submit() calls resume under the new scheme.
  std::unique_lock gate(scheme_mu_);
  // Sanitize against fail-stopped islands: a caller (the adaptive
  // manager, a replayed plan) may name cores on a dead island; re-home
  // those placements onto survivors so no new worker is ever placed —
  // and silently quarantined — on failed hardware.
  core::Scheme applied = target;
  if (uint64_t mask = failed_islands_.load(std::memory_order_acquire)) {
    if (!AnyIslandAlive(topo_, mask))
      return Status::Unavailable("every island has failed");
    RemapFailedPlacements(&applied, topo_, mask);
  }
  // In-flight graphs advance stages without the scheme gate; wait them out
  // before touching routing state. No new graph can enter: Submit
  // increments the in-flight count under the shared gate we now hold.
  // (Deferred durable commits count as in flight, so shards quiesce too.)
  Drain();
  StopWorkers();  // inboxes are empty: every in-flight graph completed
  auto plan = core::PlanRepartition(scheme_, applied);
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    // Table-level actions: heap records move (and get re-Rid'd) with their
    // index subtrees, so the new owner island receives *all* the
    // partition's state when PlacePartitions runs in StartWorkers.
    Status s = core::ApplyToTable(db_->table(static_cast<int>(t)),
                                  static_cast<int>(t), plan);
    if (!s.ok()) {
      // Restart workers under the old scheme before reporting failure.
      StartWorkers();
      return s;
    }
  }
  scheme_ = applied;
  StartWorkers();
  return plan.size();
}

Result<size_t> PartitionedExecutor::KillIsland(int island) {
  if (island < 0 || island >= topo_.num_sockets())
    return Status::InvalidArgument("no such island: " + std::to_string(island));
  std::lock_guard evac_lk(evac_mu_);  // one evacuation at a time
  const uint64_t bit = uint64_t{1} << island;
  const uint64_t mask = failed_islands_.load(std::memory_order_relaxed) | bit;
  const bool first_kill =
      (failed_islands_.load(std::memory_order_relaxed) & bit) == 0;
  quarantining_.store(true, std::memory_order_release);
  // Phase 1 — quarantine, under the *shared* gate so it lands promptly
  // even while submitters stream in: every partition on the island turns
  // zombie. Its in-flight actions abort kUnavailable through the normal
  // RVP machinery, its commit markers still append (already-decided
  // deferred commits settle), so no future hangs and none completes twice.
  {
    std::shared_lock gate(scheme_mu_);
    for (Partition* p : flat_parts_) {
      if (topo_.socket_of(p->core) == island) {
        p->failed.store(true, std::memory_order_release);
        Wake(p);
      }
    }
  }
  failed_islands_.store(mask, std::memory_order_release);
  if (first_kill) obs_->Count(obs::CounterId::kFaultIslandKills);
  if (!AnyIslandAlive(topo_, mask)) {
    // Nothing to evacuate onto. Stay up, degraded: every current and
    // future transaction aborts kUnavailable; the caller decides whether
    // that is an outage or a restart.
    quarantining_.store(false, std::memory_order_release);
    return Status::Unavailable("no surviving island to evacuate onto");
  }
  // Phase 2 — evacuate through the regular repartition path: same
  // boundaries, failed placements re-homed round-robin onto survivors.
  // Repartition drains in-flight graphs (zombies guarantee progress),
  // seals the log-shard generation, migrates subtrees/heaps, and places
  // fresh shards with the re-homed partitions — recovery replays the
  // sealed generation exactly as after any repartition.
  const uint64_t t0 = obs_->NowNs();
  core::Scheme target;
  size_t moved = 0;
  {
    std::shared_lock gate(scheme_mu_);
    target = scheme_;
    moved = RemapFailedPlacements(&target, topo_, mask);
  }
  Result<size_t> applied = Repartition(target);
  quarantining_.store(false, std::memory_order_release);
  if (!applied.ok()) return applied.status();
  obs_->Count(obs::CounterId::kFaultPartitionsEvacuated, moved);
  obs_->RecordLatency(obs::HistId::kEvacuationUs, (obs_->NowNs() - t0) / 1000);
  return moved;
}

void PartitionedExecutor::RequestKillIsland(int island) {
  {
    std::lock_guard lk(kill_mu_);
    for (int queued : kill_requests_)
      if (queued == island) return;  // coalesce duplicate worker reports
    kill_requests_.push_back(island);
  }
  kill_cv_.notify_one();
}

void PartitionedExecutor::SentinelLoop() {
  for (;;) {
    int island;
    {
      std::unique_lock lk(kill_mu_);
      kill_cv_.wait(lk, [this] {
        return sentinel_stop_ || !kill_requests_.empty();
      });
      // Stop only once queued requests are processed: a kill reported just
      // before teardown still gets its partitions quarantined.
      if (kill_requests_.empty()) return;
      island = kill_requests_.front();
      kill_requests_.erase(kill_requests_.begin());
    }
    // The outcome (evacuated count, degraded-no-survivor) is recorded in
    // the registry; there is no caller to return it to.
    (void)KillIsland(island);
  }
}

}  // namespace atrapos::engine
