#include "engine/partitioned_executor.h"

#include <algorithm>
#include <chrono>

#include "core/repartitioner.h"
#include "hw/binding.h"

namespace atrapos::engine {

PartitionedExecutor::PartitionedExecutor(Database* db,
                                         const hw::Topology& topo,
                                         core::Scheme scheme)
    : db_(db), topo_(&topo), scheme_(std::move(scheme)) {
  StartWorkers();
}

PartitionedExecutor::~PartitionedExecutor() { StopWorkers(); }

void PartitionedExecutor::PlacePartitions() {
  mem::IslandAllocator& alloc = db_->memory();
  uint64_t seq = 0;
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    if (ts.num_partitions() == 0) continue;
    storage::Table* table = db_->table(static_cast<int>(t));
    storage::MultiRootedBTree& index = table->index();
    size_t n = std::min(ts.num_partitions(), index.num_partitions());
    for (size_t p = 0; p < n; ++p, ++seq) {
      hw::SocketId owner = topo_->socket_of(ts.placement[p]);
      mem::Arena* arena = alloc.arena(alloc.ResolveSeq(owner, seq));
      // MigratePartition is a no-op when the subtree already lives there.
      index.MigratePartition(p, arena);
    }
    // One heap per table: it follows the island of the first partition's
    // owner (finer-grained placement needs per-partition heaps — ROADMAP).
    // Seq = table index so kInterleaved spreads heaps across islands.
    hw::SocketId owner0 = topo_->socket_of(ts.placement[0]);
    mem::Arena* harena = alloc.arena(alloc.ResolveSeq(owner0, t));
    if (table->heap().arena() != harena) table->heap().MigrateTo(harena);
  }
}

void PartitionedExecutor::StartWorkers() {
  PlacePartitions();
  parts_.clear();
  parts_.resize(scheme_.tables.size());
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    uint64_t rows = db_->table(static_cast<int>(t))->num_rows();
    for (size_t p = 0; p < ts.num_partitions(); ++p) {
      auto part = std::make_unique<Partition>();
      part->table = static_cast<int>(t);
      part->lo = ts.boundaries[p];
      part->hi = p + 1 < ts.num_partitions() ? ts.boundaries[p + 1]
                                             : std::max(rows, part->lo + 1);
      part->core = ts.placement[p];
      part->monitor =
          std::make_unique<core::PartitionMonitor>(part->lo, part->hi);
      Partition* raw = part.get();
      const hw::Topology* topo = topo_;
      part->worker = std::thread([raw, topo] {
        hw::BindCurrentThread(*topo, raw->core);
        std::unique_lock lk(raw->mu);
        while (true) {
          raw->cv.wait(lk, [raw] { return raw->stop || !raw->queue.empty(); });
          if (raw->queue.empty() && raw->stop) return;
          auto fn = std::move(raw->queue.front());
          raw->queue.pop_front();
          lk.unlock();
          fn();
          lk.lock();
        }
      });
      parts_[t].push_back(std::move(part));
    }
  }
}

void PartitionedExecutor::StopWorkers() {
  for (auto& tp : parts_) {
    for (auto& p : tp) {
      {
        std::lock_guard lk(p->mu);
        p->stop = true;
      }
      p->cv.notify_all();
    }
  }
  for (auto& tp : parts_)
    for (auto& p : tp)
      if (p->worker.joinable()) p->worker.join();
}

PartitionedExecutor::Partition* PartitionedExecutor::Route(int table,
                                                           uint64_t key) {
  const core::TableScheme& ts = scheme_.tables[static_cast<size_t>(table)];
  size_t p = ts.PartitionOf(key);
  return parts_[static_cast<size_t>(table)][p].get();
}

void PartitionedExecutor::Execute(std::vector<Action> actions) {
  std::shared_lock gate(scheme_mu_);
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto join = std::make_shared<Join>();
  join->remaining = actions.size();

  for (auto& a : actions) {
    Partition* part = Route(a.table, a.key);
    storage::Table* table = db_->table(a.table);
    auto fn = std::move(a.fn);
    uint64_t key = a.key;
    auto work = [part, table, fn = std::move(fn), key, join, this] {
      auto start = std::chrono::steady_clock::now();
      fn(table);
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      part->monitor->RecordAction(key, static_cast<double>(us) + 1.0);
      executed_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard jlk(join->mu);
      if (--join->remaining == 0) join->cv.notify_all();
    };
    {
      std::lock_guard lk(part->mu);
      part->queue.push_back(std::move(work));
    }
    part->cv.notify_one();
  }
  std::unique_lock jlk(join->mu);
  join->cv.wait(jlk, [&] { return join->remaining == 0; });
}

core::Scheme PartitionedExecutor::scheme() const {
  std::shared_lock lk(scheme_mu_);
  return scheme_;
}

core::WorkloadStats PartitionedExecutor::HarvestStats(
    std::vector<double> class_counts, double window_seconds) {
  std::shared_lock gate(scheme_mu_);
  core::MonitorAggregator agg(parts_.size(), class_counts.size());
  for (size_t t = 0; t < parts_.size(); ++t) {
    for (auto& p : parts_[t]) {
      agg.AddPartition(static_cast<int>(t), *p->monitor);
      p->monitor->Reset();
    }
  }
  for (size_t c = 0; c < class_counts.size(); ++c)
    agg.AddClassCount(static_cast<int>(c), class_counts[c]);
  return agg.Build(window_seconds);
}

Result<size_t> PartitionedExecutor::Repartition(const core::Scheme& target) {
  // Pause intake: regular actions and repartitioning never interleave
  // (paper §V-D). Waiting Execute() calls resume under the new scheme.
  std::unique_lock gate(scheme_mu_);
  StopWorkers();  // drains queues: workers exit only when empty
  auto plan = core::PlanRepartition(scheme_, target);
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    Status s = core::ApplyToTree(&db_->table(static_cast<int>(t))->index(),
                                 static_cast<int>(t), plan);
    if (!s.ok()) {
      // Restart workers under the old scheme before reporting failure.
      StartWorkers();
      return s;
    }
  }
  scheme_ = target;
  StartWorkers();
  return plan.size();
}

}  // namespace atrapos::engine
