#include "engine/partitioned_executor.h"

#include <algorithm>
#include <chrono>

#include "core/repartitioner.h"
#include "hw/binding.h"

namespace atrapos::engine {

/// Buckets one publish wave (a graph stage, or a whole SubmitBatch's
/// stage-0 actions) by destination partition. PublishAll then performs one
/// inbox push per chunk — one per partition for groups of up to a chunk's
/// capacity — and at most one wake per partition, regardless of how many
/// actions the wave carried.
class PartitionedExecutor::Publisher {
 public:
  Publisher() { groups_.reserve(8); }

  ~Publisher() {
    // PublishAll always runs on every code path; free defensively anyway.
    for (auto& g : groups_)
      for (auto* c : g.chunks) TaskQueue::FreeChunk(c);
  }

  void Add(Partition* p, ActionTask t) {
    for (auto& g : groups_) {
      if (g.part == p) {
        if (g.chunks.back()->full()) g.chunks.push_back(TaskQueue::NewChunk());
        g.chunks.back()->Append(t);
        return;
      }
    }
    groups_.emplace_back();
    Group& g = groups_.back();
    g.part = p;
    g.chunks.push_back(TaskQueue::NewChunk());
    g.chunks.back()->Append(t);
  }

  void PublishAll(PartitionedExecutor* ex) {
    for (auto& g : groups_) {
      // FIFO push order: the inbox's drain-and-reverse restores it.
      for (auto* c : g.chunks) g.part->inbox.Push(c);
      ex->Wake(g.part);
    }
    groups_.clear();
  }

 private:
  struct Group {
    Partition* part = nullptr;
    std::vector<TaskQueue::Chunk*> chunks;  ///< FIFO; usually exactly one
  };
  std::vector<Group> groups_;
};

PartitionedExecutor::PartitionedExecutor(Database* db,
                                         const hw::Topology& topo,
                                         core::Scheme scheme)
    : db_(db), topo_(&topo), scheme_(std::move(scheme)) {
  StartWorkers();
}

PartitionedExecutor::~PartitionedExecutor() {
  // In-flight graphs must finish before workers stop: a worker reaching an
  // RVP enqueues the next stage onto sibling workers, which only drain
  // their inboxes while alive.
  Drain();
  StopWorkers();
}

void PartitionedExecutor::PlacePartitions() {
  mem::IslandAllocator& alloc = db_->memory();
  uint64_t seq = 0;
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    if (ts.num_partitions() == 0) continue;
    storage::Table* table = db_->table(static_cast<int>(t));
    storage::MultiRootedBTree& index = table->index();
    size_t n = std::min(ts.num_partitions(), index.num_partitions());
    for (size_t p = 0; p < n; ++p, ++seq) {
      hw::SocketId owner = topo_->socket_of(ts.placement[p]);
      mem::Arena* arena = alloc.arena(alloc.ResolveSeq(owner, seq));
      // MigratePartition is a no-op when the subtree already lives there.
      index.MigratePartition(p, arena);
    }
    // One heap per table: it follows the island of the first partition's
    // owner (finer-grained placement needs per-partition heaps — ROADMAP).
    // Seq = table index so kInterleaved spreads heaps across islands.
    hw::SocketId owner0 = topo_->socket_of(ts.placement[0]);
    mem::Arena* harena = alloc.arena(alloc.ResolveSeq(owner0, t));
    if (table->heap().arena() != harena) table->heap().MigrateTo(harena);
  }
}

void PartitionedExecutor::StartWorkers() {
  PlacePartitions();
  parts_.clear();
  parts_.resize(scheme_.tables.size());
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    const core::TableScheme& ts = scheme_.tables[t];
    uint64_t rows = db_->table(static_cast<int>(t))->num_rows();
    for (size_t p = 0; p < ts.num_partitions(); ++p) {
      auto part = std::make_unique<Partition>();
      part->table = static_cast<int>(t);
      part->lo = ts.boundaries[p];
      part->hi = p + 1 < ts.num_partitions() ? ts.boundaries[p + 1]
                                             : std::max(rows, part->lo + 1);
      part->core = ts.placement[p];
      part->monitor =
          std::make_unique<core::PartitionMonitor>(part->lo, part->hi);
      Partition* raw = part.get();
      part->worker = std::thread([this, raw] { WorkerLoop(raw); });
      parts_[t].push_back(std::move(part));
    }
  }
}

void PartitionedExecutor::WorkerLoop(Partition* p) {
  hw::BindCurrentThread(*topo_, p->core);
  core::PartitionMonitor::BatchTally tally(*p->monitor);
  for (;;) {
    TaskQueue::Chunk* chain = p->inbox.PopAll();
    if (chain == nullptr) {
      // Callers stop workers only after Drain(), so an empty grab with
      // stop set means no task can ever arrive again.
      if (p->stop.load(std::memory_order_acquire)) return;
      // Park protocol (consumer side of the Dekker pair, see
      // mpsc_queue.h): declare intent, re-check inbox and stop with
      // seq_cst, only then sleep. Producers that published before the
      // re-check are seen; producers that publish after it see
      // parked == true and wake us.
      p->parked.store(true, std::memory_order_seq_cst);
      if (!p->inbox.Empty() || p->stop.load(std::memory_order_seq_cst)) {
        p->parked.store(false, std::memory_order_relaxed);
        continue;
      }
      std::unique_lock lk(p->mu);
      p->cv.wait(lk, [p] {
        return !p->parked.load(std::memory_order_relaxed) ||
               p->stop.load(std::memory_order_relaxed);
      });
      p->parked.store(false, std::memory_order_relaxed);
      continue;
    }
    // Count the batch *before* running it: a completion a client observed
    // then can never precede its action's executed_ credit, so after
    // Drain() the counter equals the actions actually executed.
    uint64_t n = 0;
    for (TaskQueue::Chunk* c = chain; c != nullptr; c = c->next)
      n += c->count;
    executed_.fetch_add(n, std::memory_order_relaxed);
    // One timestamp pair and one monitor flush per drained batch: each
    // action is charged the batch-average microseconds (clamped by the
    // monitor so bins never look idle), keeping monitoring cost per-batch
    // as the paper's Table 2 budget demands.
    auto t0 = std::chrono::steady_clock::now();
    while (chain != nullptr) {
      TaskQueue::Chunk* c = chain;
      chain = chain->next;
      for (uint32_t i = 0; i < c->count; ++i) {
        tally.Touch(c->items[i].act->key);
        RunAction(c->items[i]);
      }
      TaskQueue::FreeChunk(c);
    }
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    p->monitor->RecordBatch(&tally, us / static_cast<double>(n));
  }
}

void PartitionedExecutor::Wake(Partition* p) {
  // Claim the wake: only one producer per park episode notifies, and
  // publishes onto a running worker notify nobody.
  if (p->parked.exchange(false, std::memory_order_seq_cst)) {
    {
      // Empty critical section: the worker is either before its
      // predicate check (it will see parked == false) or inside wait
      // (the notify reaches it).
      std::lock_guard lk(p->mu);
    }
    p->cv.notify_one();
  }
}

void PartitionedExecutor::StopWorkers() {
  for (auto& tp : parts_) {
    for (auto& p : tp) {
      p->stop.store(true, std::memory_order_seq_cst);
      {
        std::lock_guard lk(p->mu);  // close the check-then-wait window
      }
      p->cv.notify_all();
    }
  }
  for (auto& tp : parts_)
    for (auto& p : tp)
      if (p->worker.joinable()) p->worker.join();
}

PartitionedExecutor::Partition* PartitionedExecutor::Route(int table,
                                                           uint64_t key) {
  auto& tp = parts_[static_cast<size_t>(table)];
  const core::TableScheme& ts = scheme_.tables[static_cast<size_t>(table)];
  size_t p = ts.PartitionOf(key);
  // Clamp to the nearest materialized partition: PartitionOf already maps
  // keys below the first boundary to partition 0 and keys past the last
  // fence to the final slot, but a scheme may carry more boundaries than
  // the executor materialized workers for.
  if (p >= tp.size()) p = tp.size() - 1;
  return tp[p].get();
}

Status PartitionedExecutor::ValidateGraph(const ActionGraph& graph) const {
  if (graph.empty()) return Status::InvalidArgument("empty action graph");
  for (const auto& stage : graph.stages_) {
    for (const auto& a : stage) {
      if (a.table < 0 ||
          static_cast<size_t>(a.table) >= scheme_.tables.size() ||
          static_cast<size_t>(a.table) >= db_->num_tables() ||
          parts_[static_cast<size_t>(a.table)].empty()) {
        return Status::InvalidArgument("unknown table id " +
                                       std::to_string(a.table));
      }
    }
  }
  return Status::OK();
}

Result<TxnFuture> PartitionedExecutor::Submit(ActionGraph graph) {
  std::shared_lock gate(scheme_mu_);
  Status v = ValidateGraph(graph);
  if (!v.ok()) return v;
  auto st = std::make_shared<internal::TxnState>(std::move(graph));
  st->self = st;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  Publisher pub;
  EnqueueStage(st.get(), 0, &pub);
  pub.PublishAll(this);
  return TxnFuture(st);
}

Result<std::vector<TxnFuture>> PartitionedExecutor::SubmitBatch(
    std::span<ActionGraph> graphs) {
  std::shared_lock gate(scheme_mu_);
  // All-or-nothing: validate every graph before publishing anything.
  for (const ActionGraph& g : graphs) {
    Status v = ValidateGraph(g);
    if (!v.ok()) return v;
  }
  std::vector<TxnFuture> futures;
  futures.reserve(graphs.size());
  Publisher pub;
  for (ActionGraph& g : graphs) {
    auto st = std::make_shared<internal::TxnState>(std::move(g));
    st->self = st;
    inflight_.fetch_add(1, std::memory_order_relaxed);
    EnqueueStage(st.get(), 0, &pub);
    futures.emplace_back(TxnFuture(st));
  }
  // One push (or a few chunk pushes for oversized groups) and at most one
  // wake per destination partition for the whole batch.
  pub.PublishAll(this);
  return futures;
}

Status PartitionedExecutor::SubmitAndWait(ActionGraph graph) {
  auto f = Submit(std::move(graph));
  if (!f.ok()) return f.status();
  return f.value().Wait();
}

void PartitionedExecutor::EnqueueStage(internal::TxnState* st, size_t idx,
                                       Publisher* pub) {
  auto& stage = st->graph.stages_[idx];
  st->next_stage = idx + 1;
  // Set before anything is published: an earlier-published sibling could
  // otherwise finish and advance the graph off an uninitialized count.
  st->stage_remaining.store(stage.size(), std::memory_order_relaxed);
  for (auto& a : stage)
    pub->Add(Route(a.table, a.key), ActionTask{st, &a, db_->table(a.table)});
}

void PartitionedExecutor::RunAction(const ActionTask& task) {
  internal::TxnState* st = task.st;
  ActionGraph::Action* act = task.act;
  ActionCtx ctx(act->id, &st->payloads);
  Status s = act->fn ? act->fn(task.table, ctx) : Status::OK();
  if (!s.ok()) {
    std::lock_guard lk(st->mu);
    if (st->first_error.ok()) st->first_error = std::move(s);
    st->failed.store(true, std::memory_order_release);
  }
  // The last action of a stage advances the graph: abort at the RVP on
  // the first failure, fan out the next stage (grouped publish, one
  // enqueue + one wake per destination partition), or finalize.
  if (st->stage_remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return;
  if (st->failed.load(std::memory_order_acquire)) {
    Status err;
    {
      std::lock_guard lk(st->mu);
      err = st->first_error;
    }
    CompleteTxn(st, std::move(err));
  } else if (st->next_stage < st->graph.stages_.size() &&
             !st->graph.stages_[st->next_stage].empty()) {
    Publisher pub;
    EnqueueStage(st, st->next_stage, &pub);
    pub.PublishAll(this);
  } else {
    Status fin = st->graph.finalizer_ ? st->graph.finalizer_(st->payloads)
                                      : Status::OK();
    CompleteTxn(st, std::move(fin));
  }
}

void PartitionedExecutor::CompleteTxn(internal::TxnState* st, Status s) {
  // Take over the executor's keep-alive reference: *st stays alive through
  // this call even if the client already dropped its future, and dies with
  // `keep` otherwise. Only the unique stage-finishing worker reaches here,
  // so the move is unsynchronized by design.
  std::shared_ptr<internal::TxnState> keep = std::move(st->self);
  if (st->completed.exchange(true)) return;  // exactly once
  // Listener first: once Wait() returns, the workload class has been
  // reported (AdaptiveManager's counts are populated from here). The
  // active-call count must be raised *before* loading the pointer so
  // SetCompletionListener(nullptr) either sees this call in flight or this
  // load sees the cleared pointer (seq_cst on both sides).
  listener_active_.fetch_add(1, std::memory_order_seq_cst);
  if (auto* l = listener_.load(std::memory_order_seq_cst))
    l->OnTxnComplete(st->graph.txn_class(), s);
  if (listener_active_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    std::lock_guard lk(listener_mu_);
    listener_cv_.notify_all();
  }
  // Two-step publish (see TxnState): run the callback before `done` flips
  // so it completes strictly before Wait() returns; an OnComplete racing
  // in after `completing` runs the callback on the registering thread.
  std::function<void(const Status&)> cb;
  {
    std::lock_guard lk(st->mu);
    st->status = s;
    st->completing = true;
    cb = std::move(st->callback);
  }
  if (cb) cb(s);
  {
    std::lock_guard lk(st->mu);
    st->done = true;
  }
  st->cv.notify_all();
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lk(inflight_mu_);
    inflight_cv_.notify_all();
  }
}

void PartitionedExecutor::SetCompletionListener(TxnCompletionListener* l) {
  listener_.store(l, std::memory_order_seq_cst);
  if (l != nullptr) return;
  // Quiesce only the listener calls (not the whole executor): a client may
  // legitimately keep the pipeline full while the listener unregisters.
  std::unique_lock lk(listener_mu_);
  listener_cv_.wait(lk, [this] {
    return listener_active_.load(std::memory_order_seq_cst) == 0;
  });
}

void PartitionedExecutor::Drain() {
  std::unique_lock lk(inflight_mu_);
  inflight_cv_.wait(lk, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

core::Scheme PartitionedExecutor::scheme() const {
  std::shared_lock lk(scheme_mu_);
  return scheme_;
}

core::WorkloadStats PartitionedExecutor::HarvestStats(
    std::vector<double> class_counts, double window_seconds) {
  std::shared_lock gate(scheme_mu_);
  core::MonitorAggregator agg(parts_.size(), class_counts.size());
  for (size_t t = 0; t < parts_.size(); ++t) {
    for (auto& p : parts_[t]) {
      agg.AddPartition(static_cast<int>(t), *p->monitor);
      p->monitor->Reset();
    }
  }
  for (size_t c = 0; c < class_counts.size(); ++c)
    agg.AddClassCount(static_cast<int>(c), class_counts[c]);
  return agg.Build(window_seconds);
}

Result<size_t> PartitionedExecutor::Repartition(const core::Scheme& target) {
  // Pause intake: regular actions and repartitioning never interleave
  // (paper §V-D). Waiting Submit() calls resume under the new scheme.
  std::unique_lock gate(scheme_mu_);
  // In-flight graphs advance stages without the scheme gate; wait them out
  // before touching routing state. No new graph can enter: Submit
  // increments the in-flight count under the shared gate we now hold.
  Drain();
  StopWorkers();  // inboxes are empty: every in-flight graph completed
  auto plan = core::PlanRepartition(scheme_, target);
  for (size_t t = 0; t < scheme_.tables.size(); ++t) {
    Status s = core::ApplyToTree(&db_->table(static_cast<int>(t))->index(),
                                 static_cast<int>(t), plan);
    if (!s.ok()) {
      // Restart workers under the old scheme before reporting failure.
      StartWorkers();
      return s;
    }
  }
  scheme_ = target;
  StartWorkers();
  return plan.size();
}

}  // namespace atrapos::engine
