#include "engine/action_graph.h"

#include <algorithm>
#include <set>
#include <string>

namespace atrapos::engine {

Status ActionGraph::MatchesClass(const core::TxnClass& cls) const {
  std::set<int> want;
  for (const auto& a : cls.actions) want.insert(a.table);
  std::set<int> have;
  for (const auto& stage : stages_)
    for (const auto& a : stage) have.insert(a.table);
  if (want == have) return Status::OK();
  auto render = [](const std::set<int>& s) {
    std::string out = "{";
    for (int t : s) out += std::to_string(t) + ",";
    out += "}";
    return out;
  };
  return Status::InvalidArgument("graph touches tables " + render(have) +
                                 " but class '" + cls.name + "' declares " +
                                 render(want));
}

}  // namespace atrapos::engine
