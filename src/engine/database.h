// The real-thread storage manager facade: a shared-everything database with
// ACID-ish transactions over the storage/txn substrates. This is the
// "MiniShore" used by the examples and integration tests; the benchmark
// figures run on the deterministic simulated engines instead (DESIGN.md §1).
//
// Concurrency control: strict two-phase locking with wait-die; durability:
// the log subsystem's centralized 1-shard configuration (the retired
// txn::WriteAheadLog's group-commit protocol behind the same interface —
// per-record appends, blocking Commit); system state: the
// active-transaction list in either flavor (centralized or per-socket —
// paper §IV). The partitioned executor runs its own per-partition log
// shards instead (see src/log/ and PartitionedExecutor::Options).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "hw/topology.h"
#include "log/log_manager.h"
#include "mem/island_allocator.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "storage/table.h"
#include "sync/partitioned_rwlock.h"
#include "txn/lock_manager.h"
#include "txn/txn_list.h"
#include "util/status.h"

namespace atrapos::engine {

class Database {
 public:
  /// Memory placement knobs: which island's arena serves each partition's
  /// pages and B-tree nodes, and how allocation/access traffic is charged
  /// (paper §II-B, Table I).
  using MemoryOptions = mem::IslandAllocator::Options;

  struct Options {
    /// The machine the database runs on; sockets drive both the per-socket
    /// system state partitioning and the island arenas.
    hw::Topology topo = hw::Topology::SingleSocket(1);
    /// Use per-socket transaction lists + partitioned volume lock (ATraPos
    /// §IV) instead of centralized ones.
    bool partitioned_state = true;
    MemoryOptions mem;
    uint64_t wal_flush_interval_us = 50;
    /// Observability: per-worker metrics registry (on by default) and
    /// transaction lifecycle tracing (off by default; near-zero cost when
    /// off). See obs/registry.h.
    obs::Registry::Options obs;
    /// Continuous time-series telemetry (off by default): when
    /// sampler.enabled, a background thread scrapes StatsSnapshot() every
    /// sampler.interval_ms into ring-buffered series. See obs/sampler.h.
    obs::Sampler::Options sampler;
  };

  explicit Database(Options opt);

  /// Registers a table; the database takes ownership. Returns its id slot.
  int AddTable(std::unique_ptr<storage::Table> table);
  storage::Table* table(int idx) { return tables_[static_cast<size_t>(idx)].get(); }
  const storage::Table* table(int idx) const {
    return tables_[static_cast<size_t>(idx)].get();
  }
  size_t num_tables() const { return tables_.size(); }

  /// A transaction handle. Obtain with Begin(); finish with Commit/Abort.
  struct Txn {
    txn::TxnId id = 0;
    txn::TxnNode* node = nullptr;
    hw::SocketId socket = 0;
    bool wrote = false;
    bool open = false;
  };

  /// Starts a transaction on the calling thread (socket taken from the
  /// thread's placement; see hw::BindCurrentThread). `reuse_id` restarts an
  /// aborted transaction with its original wait-die timestamp — the
  /// textbook rule that makes wait-die starvation-free.
  Txn Begin(txn::TxnId reuse_id = 0);

  // All data operations lock first (S for reads, X for writes), then touch
  // the table; locks are held until Commit/Abort (strict 2PL). A
  // DeadlockAbort status means the caller must Abort() and may retry.
  Status Read(Txn* txn, int table, uint64_t key, storage::Tuple* out);
  /// Read with update intent: takes the X lock up front, avoiding the
  /// S->X upgrade storms wait-die is prone to in read-modify-write loops.
  Status ReadForUpdate(Txn* txn, int table, uint64_t key,
                       storage::Tuple* out);
  Status Update(Txn* txn, int table, uint64_t key, const storage::Tuple& row);
  Status Insert(Txn* txn, int table, uint64_t key, const storage::Tuple& row);
  Status Delete(Txn* txn, int table, uint64_t key);

  /// Commits: forces the commit record (group commit), releases locks,
  /// leaves the active list.
  Status Commit(Txn* txn);
  /// Aborts: releases locks, leaves the active list. (Updates are not
  /// rolled back — callers in this library use abort only for deadlock
  /// retry before any write, as the tests assert.)
  void Abort(Txn* txn);

  /// Runs `fn` as a transaction with automatic wait-die retry.
  Status RunTransaction(const std::function<Status(Txn*)>& fn,
                        int max_retries = 10);

  uint64_t active_transactions() const { return txn_list_->ActiveCount(); }
  /// The database's write-ahead log: a log::LogManager in the centralized
  /// 1-shard configuration, preserving the retired WAL's interface
  /// (Append / Commit / WaitDurable / durable_lsn / num_records).
  log::LogManager& wal() { return wal_; }

  /// The island-aware allocator owning one arena per socket; the executor
  /// uses it to place partition state, benchmarks read its AllocStats.
  mem::IslandAllocator& memory() { return mem_; }
  const mem::IslandAllocator& memory() const { return mem_; }

  /// The unified observability registry every layer records into
  /// (executor stage latencies and queue depths, log flush latencies and
  /// durable lag, adaptive repartition instants). See obs/registry.h.
  obs::Registry& observability() { return *obs_; }
  const obs::Registry& observability() const { return *obs_; }

  /// Merged point-in-time metrics: counters/histograms from every worker
  /// shard, queue depths and log totals from the registered executor/log
  /// sources, and the memory subsystem's remote-traffic ratio and
  /// migration bytes. Safe concurrently with a live run.
  obs::StatsSnapshot StatsSnapshot();

  /// Writes the collected transaction lifecycle trace as
  /// chrome://tracing-loadable JSON. Exact when the executor is drained;
  /// best-effort around live ring wrap points.
  bool DumpTrace(const std::string& path) const {
    return obs_->DumpChromeTrace(path);
  }

  /// The continuous sampler, or nullptr when Options::sampler.enabled was
  /// false. Benches hang custom series and annotations off this.
  obs::Sampler* sampler() { return sampler_.get(); }
  const obs::Sampler* sampler() const { return sampler_.get(); }

  /// Writes the sampler's collected time series to `path` — JSON by
  /// default, CSV when the path ends in ".csv". False when the sampler is
  /// off or the file cannot be written.
  bool DumpTimeSeries(const std::string& path) const;
  const hw::Topology& topology() const { return opt_.topo; }
  int num_sockets() const { return opt_.topo.num_sockets(); }

  /// Checkpoint: takes the volume lock exclusively (all socket partitions),
  /// scans the active list, and writes a checkpoint record. Returns the
  /// number of active transactions observed.
  uint64_t Checkpoint();

  // ---- shutdown ordering ---------------------------------------------------
  // The safe stop sequence for anything that submits into an executor from
  // outside (the network tier, background drivers) is:
  //
  //   1. stop producing new work (the server stops reading request frames),
  //   2. Database::Drain() — seals every registered executor's intake
  //      (further Submit/SubmitBatch return Unavailable) and waits until
  //      every in-flight TxnFuture has completed,
  //   3. destroy the submitters, then the executors, then the Database.
  //
  // After Drain() returns, no TxnFuture completion callback can fire
  // anymore: sealing is ordered before the drain wait, and a completion
  // only exists for a submission that made it past the seal check.

  /// An executor-like component that can seal its intake and wait out its
  /// in-flight work. PartitionedExecutor registers itself on construction.
  class Drainable {
   public:
    virtual ~Drainable() = default;
    /// After this returns, new submissions fail with Unavailable.
    virtual void SealIntake() = 0;
    /// Blocks until no sealed-before work is in flight.
    virtual void Drain() = 0;
  };
  void RegisterDrainable(Drainable* d);
  void UnregisterDrainable(Drainable* d);

  /// Seals every registered executor's intake, then waits until all their
  /// in-flight transactions completed (see the sequence above). Terminal:
  /// intake stays sealed, so this is a shutdown aid, not a pause.
  void Drain();

 private:
  Options opt_;
  /// First member: the registry outlives every subsystem that records
  /// into it during destruction.
  std::unique_ptr<obs::Registry> obs_;
  mem::IslandAllocator mem_;
  std::vector<std::unique_ptr<storage::Table>> tables_;
  txn::LockManager locks_;
  log::LogManager wal_;
  std::unique_ptr<txn::ActiveTxnList> txn_list_;
  sync::PartitionedRWLock volume_lock_;
  std::atomic<txn::TxnId> next_txn_{1};
  std::mutex drain_mu_;
  std::vector<Drainable*> drainables_;  // guarded by drain_mu_
  /// Last member: the sampler's scrape thread calls StatsSnapshot(), so it
  /// must stop before any subsystem it reads is torn down.
  std::unique_ptr<obs::Sampler> sampler_;
};

}  // namespace atrapos::engine
