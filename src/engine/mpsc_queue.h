// Chunked multi-producer/single-consumer inbox for the partitioned
// executor's submission fast path (ROADMAP: "Batched per-partition
// submission").
//
// Producers build chunks of lightweight POD tasks locally and publish each
// chunk with a single lock-free CAS — one shared-memory operation per
// *batch*, not per task — onto a Treiber-style stack. The single consumer
// (the partition's worker thread) grabs the whole stack with one exchange
// and reverses it, draining an entire batch per wake. Per-producer FIFO
// order is preserved: a producer's pushes are totally ordered in the
// stack, and reversing the grabbed chain restores first-pushed-first.
//
// This replaces the seed executor's mutex + condition_variable +
// deque<std::function> per partition, whose per-action lock acquire, wake,
// and closure allocation were exactly the critical-section bloat "OLTP on
// Hardware Islands" (Porobic et al., VLDB 2012) measures dominating on
// multisocket hosts.
//
// Memory-ordering note: Push's successful CAS and Empty's default load are
// seq_cst on purpose. The executor's park/wake protocol is a Dekker pair —
// producer: publish chunk, then read `parked`; consumer: write `parked`,
// then re-check Empty() — and both sides must agree on a single total
// order or a wake can be missed and the consumer sleeps forever.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "mem/chunk_pool.h"

namespace atrapos::engine {

template <typename T, size_t kChunkCapacity = 16>
class MpscChunkQueue {
 public:
  /// One batch node. Producers fill `items[0..count)` before publishing;
  /// after Push the chunk belongs to the queue and must not be touched.
  struct Chunk {
    Chunk* next = nullptr;
    uint32_t count = 0;
    T items[kChunkCapacity];

    bool full() const { return count == kChunkCapacity; }
    void Append(T item) { items[count++] = std::move(item); }
  };

  MpscChunkQueue() = default;
  ~MpscChunkQueue() {
    Chunk* c = top_.load(std::memory_order_relaxed);
    while (c != nullptr) {
      Chunk* next = c->next;
      ReleaseChunk(c);
      c = next;
    }
  }

  MpscChunkQueue(const MpscChunkQueue&) = delete;
  MpscChunkQueue& operator=(const MpscChunkQueue&) = delete;

  static Chunk* NewChunk() { return new Chunk(); }
  static void FreeChunk(Chunk* c) { delete c; }

  /// Backs chunk allocation with a per-partition freelist (ROADMAP "inbox
  /// chunk pooling") so publishing allocates nothing in steady state. Set
  /// before first use; the pool must outlive the queue. Pool-backed
  /// chunks require a trivially-destructible T (the pool recycles raw
  /// blocks) and a pool payload large enough to hold a Chunk.
  void SetPool(mem::ChunkPool* pool) { pool_ = pool; }
  mem::ChunkPool* pool() const { return pool_; }

  /// Pool-aware chunk allocation (any thread; lock-free once warm).
  Chunk* AllocChunk() {
    static_assert(std::is_trivially_destructible_v<T>,
                  "pooled chunks are recycled without running destructors");
    if (pool_ == nullptr) return NewChunk();
    return ::new (pool_->Get()) Chunk();
  }

  /// Returns a chunk obtained from AllocChunk (any thread).
  void ReleaseChunk(Chunk* c) {
    if (pool_ == nullptr) {
      FreeChunk(c);
      return;
    }
    pool_->Put(c);
  }

  /// Publishes one non-empty chunk (any thread, lock-free). Returns true
  /// when the queue was observed empty. Informational only: the
  /// executor's wake coalescing keys off its per-partition `parked` flag,
  /// not this return value.
  bool Push(Chunk* c) {
    Chunk* old = top_.load(std::memory_order_relaxed);
    do {
      c->next = old;
    } while (!top_.compare_exchange_weak(old, c, std::memory_order_seq_cst,
                                         std::memory_order_relaxed));
    return old == nullptr;
  }

  /// Consumer only: grabs everything published so far with one exchange
  /// and returns it as a FIFO chain (walk via Chunk::next, then FreeChunk
  /// each). Returns nullptr when nothing was pending.
  Chunk* PopAll() {
    Chunk* lifo = top_.exchange(nullptr, std::memory_order_acquire);
    Chunk* fifo = nullptr;
    while (lifo != nullptr) {
      Chunk* next = lifo->next;
      lifo->next = fifo;
      fifo = lifo;
      lifo = next;
    }
    return fifo;
  }

  /// Seq_cst by default: the consumer's post-park re-check relies on it
  /// (see the header comment).
  bool Empty() const {
    return top_.load(std::memory_order_seq_cst) == nullptr;
  }

 private:
  // Own cache line: partitions are hot on exactly this word.
  alignas(64) std::atomic<Chunk*> top_{nullptr};
  mem::ChunkPool* pool_ = nullptr;
};

}  // namespace atrapos::engine
