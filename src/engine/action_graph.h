// Transaction flow graphs for the real-thread engine (paper §V-A, Fig. 7).
//
// An ActionGraph is the executable counterpart of core::flow_graph's static
// TxnClass description: a staged DAG of typed actions separated by
// rendezvous points (RVPs). Every action targets one (table, key) — the
// executor routes it to the worker owning that partition — runs exactly
// once on that worker, and returns a Status plus an optional payload.
// Stage k+1 is enqueued only after every action of stages 0..k completed
// successfully; the first failing Status aborts the transaction at the RVP
// and cancels all downstream stages (abort-at-RVP).
//
// Payloads are the data exchanged at rendezvous points: each action owns
// one slot (its Add() id) on a per-transaction board, writes it with
// ActionCtx::Emit, and downstream stages read upstream slots with
// ActionCtx::In. The RVP barrier provides the happens-before edge, so no
// locking is needed as long as actions only write their own slot.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/flow_graph.h"
#include "util/status.h"

namespace atrapos::storage {
class Table;
}  // namespace atrapos::storage

namespace atrapos::engine {

class PartitionedExecutor;

/// Per-action view of the transaction's payload board, handed to the
/// action function by the executor.
class ActionCtx {
 public:
  ActionCtx(size_t self, std::vector<std::any>* payloads)
      : self_(self), payloads_(payloads) {}

  /// This action's id (== its payload slot).
  size_t id() const { return self_; }

  /// Publishes this action's payload for downstream stages (and for the
  /// TxnFuture holder).
  template <typename T>
  void Emit(T value) {
    (*payloads_)[self_] = std::move(value);
  }

  /// Reads the payload emitted by action `id` of an *earlier* stage (the
  /// RVP barrier orders the write). Returns nullptr if that action emitted
  /// nothing or a different type.
  template <typename T>
  const T* In(size_t id) const {
    return std::any_cast<T>(&(*payloads_)[id]);
  }

 private:
  size_t self_;
  std::vector<std::any>* payloads_;
};

class ActionGraph {
 public:
  /// The work of one action. Receives the owning table (safe to access
  /// without latches: the partition worker serializes all actions on its
  /// range) and the payload context. A non-OK return aborts the
  /// transaction at the next RVP.
  using Fn = std::function<Status(storage::Table*, ActionCtx&)>;

  /// Runs on the worker completing the last action, after every stage
  /// succeeded: joins the payloads into the transaction's final Status
  /// (e.g. "did any probe match"). Optional.
  using Finalizer = std::function<Status(std::vector<std::any>& payloads)>;

  static constexpr int kNoClass = -1;

  /// One routed unit of work. The executor's submission path publishes
  /// pointers to these (grouped by destination partition) into the MPSC
  /// partition inboxes as lightweight POD tasks: the graph owns the only
  /// std::function, so enqueueing copies pointers, never closures.
  struct Action {
    int table;
    uint64_t key;
    size_t id;  ///< payload slot
    Fn fn;
  };

  /// `txn_class` indexes the transaction's class in the workload's
  /// core::WorkloadSpec; the executor's completion path reports it to the
  /// registered listener (AdaptiveManager), so drivers never hand-count.
  explicit ActionGraph(int txn_class = kNoClass) : txn_class_(txn_class) {
    stages_.emplace_back();
  }

  /// Appends an action to the current stage; returns its id (payload slot).
  size_t Add(int table, uint64_t key, Fn fn) {
    stages_.back().push_back(
        Action{table, key, num_actions_, std::move(fn)});
    return num_actions_++;
  }

  /// Rendezvous point: seals the current stage. Actions added afterwards
  /// form the next stage and run only once every earlier action succeeded.
  void Rvp() {
    if (!stages_.back().empty()) stages_.emplace_back();
  }

  void SetFinalizer(Finalizer f) { finalizer_ = std::move(f); }

  size_t num_actions() const { return num_actions_; }
  size_t num_stages() const {
    return stages_.size() - (stages_.back().empty() ? 1 : 0);
  }
  bool empty() const { return num_actions_ == 0; }
  int txn_class() const { return txn_class_; }

  /// Caller-supplied trace correlation id. When nonzero, every trace
  /// event of this transaction carries it instead of the engine txn id —
  /// the wire tier stamps server::WireTraceId(req_id) here so one chrome
  /// dump links client send → decode → engine spans → durable ack.
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

  /// Flow-graph conformance check against the static class description
  /// (core::flow_graph): the graph must touch exactly the set of tables
  /// the class declares, so one workload description can drive both the
  /// simulated engines (which consume the TxnClass directly) and the real
  /// engine (which runs this graph). Repetition counts may differ — a
  /// class action with rows > 1 or repeat bounds expands into a variable
  /// number of routed probes.
  Status MatchesClass(const core::TxnClass& cls) const;

 private:
  friend class PartitionedExecutor;

  std::vector<std::vector<Action>> stages_;  ///< never empty; last may be open
  Finalizer finalizer_;
  int txn_class_;
  uint64_t trace_id_ = 0;
  size_t num_actions_ = 0;
};

}  // namespace atrapos::engine
