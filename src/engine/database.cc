#include "engine/database.h"

#include <cstdio>
#include <thread>

#include "hw/binding.h"

namespace atrapos::engine {

Database::Database(Options opt)
    : opt_(std::move(opt)),
      obs_(std::make_unique<obs::Registry>(opt_.obs)),
      mem_(opt_.topo, opt_.mem),
      wal_(log::LogManager::Options{
          .flush_interval_us = opt_.wal_flush_interval_us,
          .registry = obs_.get()}),
      volume_lock_(num_sockets()) {
  // The shared-everything transaction API keeps the centralized 1-shard
  // log (the retired WriteAheadLog protocol); its buffer chunks come from
  // socket 0's arena like any other centralized structure.
  wal_.EnsureCentralShard(mem_.arena(0));
  if (opt_.partitioned_state) {
    txn_list_ = std::make_unique<txn::PartitionedTxnList>(num_sockets());
  } else {
    txn_list_ = std::make_unique<txn::CentralizedTxnList>();
  }
  if (opt_.sampler.enabled) {
    sampler_ = std::make_unique<obs::Sampler>(
        [this] { return StatsSnapshot(); }, opt_.sampler);
    sampler_->Start();
  }
}

bool Database::DumpTimeSeries(const std::string& path) const {
  if (sampler_ == nullptr) return false;
  bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::string body = csv ? sampler_->ToCsv() : sampler_->ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write time series to %s\n",
                 path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

obs::StatsSnapshot Database::StatsSnapshot() {
  obs::StatsSnapshot s = obs_->Snapshot();
  const mem::AllocStats& ms = mem_.stats();
  s.remote_traffic_ratio = ms.AccessRemoteRatio();
  s.alloc_remote_ratio = ms.AllocRemoteRatio();
  s.migrated_bytes = ms.migrated_bytes();
  return s;
}

int Database::AddTable(std::unique_ptr<storage::Table> table) {
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

Database::Txn Database::Begin(txn::TxnId reuse_id) {
  Txn t;
  t.id = reuse_id != 0 ? reuse_id
                       : next_txn_.fetch_add(1, std::memory_order_relaxed);
  hw::SocketId s = hw::CurrentPlacement().socket;
  t.socket = (s >= 0 && s < num_sockets()) ? s : 0;
  volume_lock_.LockShared(t.socket);
  t.node = txn_list_->Add(t.id, t.socket);
  volume_lock_.UnlockShared(t.socket);
  wal_.Append(t.id, txn::LogType::kBegin);
  t.open = true;
  return t;
}

Status Database::Read(Txn* txn, int table, uint64_t key,
                      storage::Tuple* out) {
  ATRAPOS_RETURN_NOT_OK(locks_.Acquire(txn->id, txn::MakeLockId(table, key),
                                       txn::LockMode::kShared));
  return tables_[static_cast<size_t>(table)]->Read(key, out);
}

Status Database::ReadForUpdate(Txn* txn, int table, uint64_t key,
                               storage::Tuple* out) {
  ATRAPOS_RETURN_NOT_OK(locks_.Acquire(txn->id, txn::MakeLockId(table, key),
                                       txn::LockMode::kExclusive));
  return tables_[static_cast<size_t>(table)]->Read(key, out);
}

Status Database::Update(Txn* txn, int table, uint64_t key,
                        const storage::Tuple& row) {
  ATRAPOS_RETURN_NOT_OK(locks_.Acquire(txn->id, txn::MakeLockId(table, key),
                                       txn::LockMode::kExclusive));
  ATRAPOS_RETURN_NOT_OK(tables_[static_cast<size_t>(table)]->Update(key, row));
  wal_.Append(txn->id, txn::LogType::kUpdate, static_cast<uint64_t>(table),
              key);
  txn->wrote = true;
  return Status::OK();
}

Status Database::Insert(Txn* txn, int table, uint64_t key,
                        const storage::Tuple& row) {
  ATRAPOS_RETURN_NOT_OK(locks_.Acquire(txn->id, txn::MakeLockId(table, key),
                                       txn::LockMode::kExclusive));
  ATRAPOS_RETURN_NOT_OK(tables_[static_cast<size_t>(table)]->Insert(key, row));
  wal_.Append(txn->id, txn::LogType::kInsert, static_cast<uint64_t>(table),
              key);
  txn->wrote = true;
  return Status::OK();
}

Status Database::Delete(Txn* txn, int table, uint64_t key) {
  ATRAPOS_RETURN_NOT_OK(locks_.Acquire(txn->id, txn::MakeLockId(table, key),
                                       txn::LockMode::kExclusive));
  ATRAPOS_RETURN_NOT_OK(tables_[static_cast<size_t>(table)]->Delete(key));
  wal_.Append(txn->id, txn::LogType::kDelete, static_cast<uint64_t>(table),
              key);
  txn->wrote = true;
  return Status::OK();
}

Status Database::Commit(Txn* txn) {
  if (!txn->open) return Status::InvalidArgument("transaction not open");
  if (txn->wrote) {
    wal_.Commit(txn->id);  // append + wait durable (group commit)
  } else {
    wal_.Append(txn->id, txn::LogType::kCommit);
  }
  locks_.ReleaseAll(txn->id);
  txn_list_->Remove(txn->node, txn->socket);
  txn->open = false;
  return Status::OK();
}

void Database::Abort(Txn* txn) {
  if (!txn->open) return;
  wal_.Append(txn->id, txn::LogType::kAbort);
  locks_.ReleaseAll(txn->id);
  txn_list_->Remove(txn->node, txn->socket);
  txn->open = false;
}

Status Database::RunTransaction(const std::function<Status(Txn*)>& fn,
                                int max_retries) {
  txn::TxnId id = 0;
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    Txn t = Begin(id);
    id = t.id;  // restarts keep the original wait-die timestamp
    Status s = fn(&t);
    if (s.ok()) return Commit(&t);
    Abort(&t);
    if (!s.IsRetryableAbort()) return s;
    // Brief backoff so the conflicting older transaction can finish.
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min(20 * (attempt + 1), 500)));
  }
  return Status::DeadlockAbort("retries exhausted");
}

void Database::RegisterDrainable(Drainable* d) {
  std::lock_guard lk(drain_mu_);
  drainables_.push_back(d);
}

void Database::UnregisterDrainable(Drainable* d) {
  std::lock_guard lk(drain_mu_);
  for (size_t i = 0; i < drainables_.size(); ++i) {
    if (drainables_[i] == d) {
      drainables_.erase(drainables_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

void Database::Drain() {
  // Copy under the lock: Drain() must not hold drain_mu_ across the
  // potentially long waits (an executor destructor unregisters under it).
  std::vector<Drainable*> ds;
  {
    std::lock_guard lk(drain_mu_);
    ds = drainables_;
  }
  // Seal everything first, then wait: a transaction in flight on executor
  // A cannot sneak a new submission into already-drained executor B.
  for (Drainable* d : ds) d->SealIntake();
  for (Drainable* d : ds) d->Drain();
}

uint64_t Database::Checkpoint() {
  sync::ExclusiveGuard g(volume_lock_);
  uint64_t n = 0;
  txn_list_->ForEach([&](txn::TxnId) { ++n; });
  // The active-txn count rides in the key slot: the first Append argument
  // lands in the record's u16 table field on the v2 wire format.
  wal_.Append(0, txn::LogType::kCheckpoint, 0, n);
  return n;
}

}  // namespace atrapos::engine
