// TxnFuture: the completion handle PartitionedExecutor::Submit returns.
//
// Submission is pipelined: Submit enqueues the graph's first stage and
// returns immediately, so one client thread can keep many transactions in
// flight. The future completes exactly once — when the last stage's last
// action (and the finalizer, if any) finished, or when an action failed
// and the abort-at-RVP path cancelled the downstream stages — with the
// first failing Status. Completion callbacks and the executor's
// TxnCompletionListener run on the worker thread that completed the graph,
// strictly before Wait() returns.
#pragma once

#include <any>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/action_graph.h"
#include "util/status.h"

namespace atrapos::log {
struct CommitTicket;
}  // namespace atrapos::log

namespace atrapos::engine {

namespace internal {

/// Most partitions a durability-enabled executor supports (the touched-set
/// bitmask below is fixed-size so TxnState stays allocation-free).
inline constexpr size_t kMaxLogPartitions = 256;

/// Shared state of one in-flight transaction graph; owned jointly by the
/// executor's queued work items and the client's TxnFuture.
struct TxnState {
  explicit TxnState(ActionGraph g)
      : graph(std::move(g)), payloads(graph.num_actions()) {}

  ActionGraph graph;
  std::vector<std::any> payloads;  ///< one slot per action

  // Stage progress — touched only by the executor/workers.
  std::atomic<size_t> stage_remaining{0};
  std::atomic<bool> failed{false};
  size_t next_stage = 0;

  /// Executor-side keep-alive: set by Submit before the first stage is
  /// published, released by the worker that completes the transaction.
  /// Queued ActionTasks carry only a raw TxnState* — this single reference
  /// replaces a shared_ptr copy (two atomic refcount ops) per action. The
  /// inbox publish/drain pair orders the write against every reader, and
  /// only the unique stage-finishing worker moves it out.
  std::shared_ptr<TxnState> self;

  // ---- durability (set only when the executor logs; see src/log/) -------
  /// Engine-assigned transaction id for log records and trace events
  /// (0 when both logging and tracing are off).
  uint64_t txn_id = 0;
  /// Id stamped on this transaction's trace events: the graph's
  /// caller-supplied trace id when set (wire requests), else txn_id.
  uint64_t trace_id = 0;
  /// Submit timestamp (registry clock) for the commit-latency histogram
  /// and the transaction's async trace span; 0 when metrics and tracing
  /// are both off at submit time.
  uint64_t submit_ts_ns = 0;
  /// Bitmask of partition seqs whose workers logged data records for this
  /// transaction; the completing worker publishes one commit marker per
  /// set bit (the action-completion release/acquire pair orders the bits).
  std::atomic<uint64_t> touched[kMaxLogPartitions / 64] = {};
  /// Commit metadata the marker-staging workers read; written by the
  /// completing worker before the marker tasks are published.
  uint64_t commit_epoch = 0;
  uint16_t marker_expected = 0;
  log::CommitTicket* ticket = nullptr;
  /// Final status held until the commit ack defers CompleteTxn (group and
  /// async durability); ordered by the marker publish/ticket atomics.
  Status pending_status;

  std::atomic<bool> completed{false};  ///< exactly-once completion guard
  std::mutex mu;
  std::condition_variable cv;
  // Completion publishes in two steps so the callback runs strictly
  // before Wait() returns: `completing` flips (with the final status)
  // before the worker invokes the callback, `done` only after it
  // returned. OnComplete racing completion sees `completing` and runs the
  // callback itself.
  bool completing = false;           // guarded by mu
  bool done = false;                 // guarded by mu
  Status status;                     // guarded by mu; valid once completing
  Status first_error;                // guarded by mu
  std::function<void(const Status&)> callback;  // guarded by mu
};

}  // namespace internal

class TxnFuture {
 public:
  /// A default-constructed future is invalid: Done() is false, Wait() and
  /// status() return InvalidArgument immediately, payload() is nullptr,
  /// and OnComplete fires at once with the error.
  TxnFuture() = default;

  /// False for a default-constructed handle.
  bool valid() const { return state_ != nullptr; }

  bool Done() const {
    if (!state_) return false;
    std::lock_guard lk(state_->mu);
    return state_->done;
  }

  /// Blocks until the transaction completed; returns its final Status.
  Status Wait() {
    if (!state_) return InvalidFuture();
    std::unique_lock lk(state_->mu);
    state_->cv.wait(lk, [this] { return state_->done; });
    return state_->status;
  }

  /// Final status; only meaningful once Done().
  Status status() const {
    if (!state_) return InvalidFuture();
    std::lock_guard lk(state_->mu);
    return state_->status;
  }

  /// Payload emitted by action `id` (its Add() return value). Only
  /// meaningful once Done(); nullptr if the action emitted nothing or a
  /// different type.
  template <typename T>
  const T* payload(size_t id) const {
    if (!state_ || id >= state_->payloads.size()) return nullptr;
    return std::any_cast<T>(&state_->payloads[id]);
  }

  /// Registers a completion callback (at most one). Runs on the completing
  /// worker thread strictly before Wait() returns, or immediately on the
  /// caller when registration races with (or follows) completion.
  void OnComplete(std::function<void(const Status&)> cb) {
    if (!state_) {
      cb(InvalidFuture());
      return;
    }
    Status s;
    {
      std::lock_guard lk(state_->mu);
      if (!state_->completing) {
        state_->callback = std::move(cb);
        return;
      }
      s = state_->status;  // completion already consumed the callback slot
    }
    cb(s);
  }

 private:
  friend class PartitionedExecutor;
  explicit TxnFuture(std::shared_ptr<internal::TxnState> s)
      : state_(std::move(s)) {}

  static Status InvalidFuture() {
    return Status::InvalidArgument("invalid (default-constructed) TxnFuture");
  }

  std::shared_ptr<internal::TxnState> state_;
};

}  // namespace atrapos::engine
