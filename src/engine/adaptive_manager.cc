#include "engine/adaptive_manager.h"

#include <chrono>

#include "core/repartitioner.h"
#include "core/search.h"

namespace atrapos::engine {

AdaptiveManager::AdaptiveManager(PartitionedExecutor* exec,
                                 const hw::Topology* topo,
                                 const core::WorkloadSpec* spec, Options opt)
    : exec_(exec),
      topo_(topo),
      spec_(spec),
      opt_(opt),
      controller_(opt.controller),
      class_counts_(spec->classes.size()) {
  for (auto& c : class_counts_) c.store(0, std::memory_order_relaxed);
}

AdaptiveManager::~AdaptiveManager() { Stop(); }

void AdaptiveManager::Start() {
  if (!stop_.exchange(false)) return;  // already running
  exec_->SetCompletionListener(this);
  thread_ = std::thread([this] { Loop(); });
}

void AdaptiveManager::Stop() {
  if (stop_.exchange(true)) return;
  // Unregistering blocks only until in-flight *listener calls* return —
  // not until the executor is idle — so Stop() is safe to call while
  // clients still keep the submission pipeline full.
  exec_->SetCompletionListener(nullptr);
  if (thread_.joinable()) thread_.join();
}

void AdaptiveManager::OnTxnComplete(int txn_class, const Status& status) {
  (void)status;  // aborted graphs loaded the partitions too — count them
  if (txn_class < 0 ||
      static_cast<size_t>(txn_class) >= class_counts_.size())
    return;
  class_counts_[static_cast<size_t>(txn_class)].fetch_add(
      1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
}

void AdaptiveManager::Loop() {
  uint64_t last_committed = 0;
  bool first_eval_done = false;
  while (!stop_.load(std::memory_order_relaxed)) {
    double interval = controller_.interval_s();
    interval_s_.store(interval, std::memory_order_relaxed);
    // Sleep in small slices so Stop() is responsive.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(interval);
    while (!stop_.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (stop_.load(std::memory_order_relaxed)) return;

    uint64_t cur = completed_.load(std::memory_order_relaxed);
    double tps = static_cast<double>(cur - last_committed) / interval;
    last_committed = cur;

    auto action = controller_.OnMeasurement(tps);
    if (action != core::AdaptiveController::Action::kEvaluate &&
        first_eval_done)
      continue;

    std::vector<double> counts(class_counts_.size());
    for (size_t c = 0; c < counts.size(); ++c)
      counts[c] = static_cast<double>(
          class_counts_[c].exchange(0, std::memory_order_relaxed));
    core::WorkloadStats stats = exec_->HarvestStats(counts, interval);
    core::MonitorAggregator::Coarsen(&stats);
    if (stats.TotalLoad() <= 0) {
      controller_.OnEvaluatedNoChange();
      continue;
    }
    first_eval_done = true;

    core::CostModel model(topo_, spec_);
    core::Scheme current = exec_->scheme();
    core::Scheme target = core::ChooseScheme(model, stats);
    double ru_old = model.ResourceImbalance(current, stats);
    double ru_new = model.ResourceImbalance(target, stats);
    double ts_old = model.SyncCost(current, stats);
    double ts_new = model.SyncCost(target, stats);
    bool better = ru_new < opt_.hysteresis * ru_old - 1e-9 ||
                  ts_new < opt_.hysteresis * ts_old - 1e-9;
    if (!better || core::PlanRepartition(current, target).empty()) {
      controller_.OnEvaluatedNoChange();
      continue;
    }
    auto applied = exec_->Repartition(target);
    if (applied.ok() && applied.value() > 0) {
      repartitions_.fetch_add(1, std::memory_order_relaxed);
      exec_->registry()->Count(obs::CounterId::kRepartitions);
      exec_->registry()->Trace(obs::SpanId::kRepartition,
                               obs::TracePhase::kInstant, 0, applied.value());
      controller_.OnRepartitioned();
    } else {
      controller_.OnEvaluatedNoChange();
    }
  }
}

}  // namespace atrapos::engine
