// Real-thread data-oriented (DORA/PLP-style) executor: one worker thread
// per logical partition, each owning its subtree of the multi-rooted
// B-trees; transactions are submitted as ActionGraphs — staged DAGs of
// actions separated by rendezvous points — whose actions are routed to the
// owning workers. Includes the ATraPos monitoring hooks and online
// repartitioning.
//
// This is the functional counterpart of simengine/dora.cc: same core logic
// (scheme, monitors, search, repartition planning), real threads and real
// data. The examples and integration tests run on it.
//
// Submission is asynchronous: Submit enqueues the graph's first stage and
// returns a TxnFuture, so a single client thread can keep many
// transactions in flight (the scale lever the simulator's
// drivers_per_core knob models). Actions enqueued to the same partition
// run in submission order; stages of one graph are separated by RVP
// barriers; the first failing action aborts the graph at its RVP and
// cancels all downstream stages.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "core/scheme.h"
#include "engine/action_graph.h"
#include "engine/database.h"
#include "engine/txn_future.h"
#include "hw/topology.h"
#include "util/status.h"

namespace atrapos::engine {

class PartitionedExecutor {
 public:
  /// Observes every transaction completion (success or abort) on the
  /// completing worker thread. AdaptiveManager registers itself here so
  /// workload class counts flow from the completion path instead of from
  /// hand-reporting drivers.
  class TxnCompletionListener {
   public:
    virtual ~TxnCompletionListener() = default;
    virtual void OnTxnComplete(int txn_class, const Status& status) = 0;
  };

  PartitionedExecutor(Database* db, const hw::Topology& topo,
                      core::Scheme scheme);
  ~PartitionedExecutor();

  PartitionedExecutor(const PartitionedExecutor&) = delete;
  PartitionedExecutor& operator=(const PartitionedExecutor&) = delete;

  /// Submits one transaction graph for pipelined execution and returns its
  /// completion future. Enqueues only the first stage; later stages are
  /// enqueued by workers as each RVP is reached. Returns InvalidArgument
  /// (instead of crashing) when an action names a table the scheme or the
  /// database does not know, or an empty graph; keys outside every
  /// partition's [lo, hi) range clamp to the nearest partition.
  Result<TxnFuture> Submit(ActionGraph graph);

  /// Convenience: Submit + Wait (the old blocking Execute behavior).
  Status SubmitAndWait(ActionGraph graph);

  /// Blocks until no submitted graph is in flight.
  void Drain();

  /// Registers (or clears, with nullptr) the completion listener.
  /// Clearing blocks until every in-flight *listener call* returned (not
  /// until the executor is idle), so the previous listener can be
  /// destroyed safely immediately afterwards even while clients keep the
  /// submission pipeline full.
  void SetCompletionListener(TxnCompletionListener* l);

  /// Current scheme (copy).
  core::Scheme scheme() const;

  /// Harvests and resets the per-partition monitors into WorkloadStats
  /// (class counts must be supplied by the caller's own accounting).
  core::WorkloadStats HarvestStats(std::vector<double> class_counts,
                                   double window_seconds);

  /// Applies a new scheme: pauses intake, waits for in-flight graphs,
  /// drains workers, applies split/merge actions to every table's
  /// multi-rooted B-tree, migrates moved subtrees to their new owner
  /// island's arena, and restarts workers under the new routing. Returns
  /// the number of repartitioning actions applied.
  Result<size_t> Repartition(const core::Scheme& target);

  uint64_t executed_actions() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Partition {
    int table;
    uint64_t lo, hi;
    hw::CoreId core;
    std::unique_ptr<core::PartitionMonitor> monitor;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;
    std::thread worker;
  };

  void StartWorkers();
  void StopWorkers();
  /// Places every partition's subtree (and each table's heap) on the arena
  /// the database's placement policy selects for its owning island; called
  /// with workers stopped. Subtrees whose owner changed are migrated.
  void PlacePartitions();
  /// Routing: clamps out-of-range keys to the nearest partition. The table
  /// id must have been validated (see Submit).
  Partition* Route(int table, uint64_t key);
  /// Enqueues stage `idx` of `st`. Stage 0 is enqueued by Submit under the
  /// scheme gate; later stages by workers, which is safe without the gate
  /// because Repartition waits for in-flight graphs before mutating the
  /// scheme.
  void EnqueueStage(const std::shared_ptr<internal::TxnState>& st,
                    size_t idx);
  /// Exactly-once completion: listener, client-visible status, callback,
  /// in-flight accounting — in that order.
  void CompleteTxn(const std::shared_ptr<internal::TxnState>& st, Status s);

  Database* db_;
  const hw::Topology* topo_;
  mutable std::shared_mutex scheme_mu_;  // shared: Submit; unique: Repartition
  core::Scheme scheme_;
  std::vector<std::vector<std::unique_ptr<Partition>>> parts_;
  std::atomic<uint64_t> executed_{0};
  // Hot-path counters are lock-free; the mutex/cv pairs exist only for
  // the (rare) waiters: Drain/Repartition on inflight_, listener
  // unregistration on listener_active_.
  std::atomic<TxnCompletionListener*> listener_{nullptr};
  std::atomic<int> listener_active_{0};
  std::mutex listener_mu_;
  std::condition_variable listener_cv_;
  std::atomic<uint64_t> inflight_{0};
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
};

}  // namespace atrapos::engine
