// Real-thread data-oriented (DORA/PLP-style) executor: one worker thread
// per logical partition, each owning its subtree of the multi-rooted
// B-trees; transactions are decomposed into actions routed to the owning
// workers. Includes the ATraPos monitoring hooks and online repartitioning.
//
// This is the functional counterpart of simengine/dora.cc: same core logic
// (scheme, monitors, search, repartition planning), real threads and real
// data. The examples and integration tests run on it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "core/scheme.h"
#include "engine/database.h"
#include "hw/topology.h"
#include "util/status.h"

namespace atrapos::engine {

class PartitionedExecutor {
 public:
  /// One routed action: runs on the worker owning (table, key).
  struct Action {
    int table = 0;
    uint64_t key = 0;
    /// The work itself; receives the owning table. Runs exactly once, on
    /// the partition's worker thread.
    std::function<void(storage::Table*)> fn;
  };

  PartitionedExecutor(Database* db, const hw::Topology& topo,
                      core::Scheme scheme);
  ~PartitionedExecutor();

  PartitionedExecutor(const PartitionedExecutor&) = delete;
  PartitionedExecutor& operator=(const PartitionedExecutor&) = delete;

  /// Executes all actions of one transaction (blocking until every action
  /// completed). Actions on the same partition run in submission order.
  void Execute(std::vector<Action> actions);

  /// Current scheme (copy).
  core::Scheme scheme() const;

  /// Harvests and resets the per-partition monitors into WorkloadStats
  /// (class counts must be supplied by the caller's own accounting).
  core::WorkloadStats HarvestStats(std::vector<double> class_counts,
                                   double window_seconds);

  /// Applies a new scheme: pauses intake, drains workers, applies
  /// split/merge actions to every table's multi-rooted B-tree, migrates
  /// moved subtrees to their new owner island's arena, and restarts
  /// workers under the new routing. Returns the number of repartitioning
  /// actions applied.
  Result<size_t> Repartition(const core::Scheme& target);

  uint64_t executed_actions() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Partition {
    int table;
    uint64_t lo, hi;
    hw::CoreId core;
    std::unique_ptr<core::PartitionMonitor> monitor;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;
    std::thread worker;
  };

  void StartWorkers();
  void StopWorkers();
  /// Places every partition's subtree (and each table's heap) on the arena
  /// the database's placement policy selects for its owning island; called
  /// with workers stopped. Subtrees whose owner changed are migrated.
  void PlacePartitions();
  Partition* Route(int table, uint64_t key);

  Database* db_;
  const hw::Topology* topo_;
  mutable std::shared_mutex scheme_mu_;  // shared: Execute; unique: Repartition
  core::Scheme scheme_;
  std::vector<std::vector<std::unique_ptr<Partition>>> parts_;
  std::atomic<uint64_t> executed_{0};
};

}  // namespace atrapos::engine
