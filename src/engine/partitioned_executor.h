// Real-thread data-oriented (DORA/PLP-style) executor: one worker thread
// per logical partition, each owning its subtree of the multi-rooted
// B-trees; transactions are submitted as ActionGraphs — staged DAGs of
// actions separated by rendezvous points — whose actions are routed to the
// owning workers. Includes the ATraPos monitoring hooks and online
// repartitioning.
//
// This is the functional counterpart of simengine/dora.cc: same core logic
// (scheme, monitors, search, repartition planning), real threads and real
// data. The examples and integration tests run on it.
//
// Submission is asynchronous: Submit enqueues the graph's first stage and
// returns a TxnFuture, so a single client thread can keep many
// transactions in flight (the scale lever the simulator's
// drivers_per_core knob models). Actions enqueued to the same partition
// run in submission order; stages of one graph are separated by RVP
// barriers; the first failing action aborts the graph at its RVP and
// cancels all downstream stages.
//
// The submission path is the fast path (paper Table 2: monitoring and
// coordination must stay ≪2%): every partition owns a lock-free MPSC
// inbox of POD ActionTasks instead of a mutex + condition_variable +
// deque<std::function>. Producers — Submit, SubmitBatch, and RVP fan-out
// alike — group a stage's actions by destination partition and publish
// each group with a single enqueue plus a single coalesced wake (only a
// parked worker is notified, tracked by a per-partition `parked` flag).
// Workers drain a whole batch per wake, take one timestamp per batch, and
// flush monitoring and the executed-action counter once per batch. Inbox
// chunks come from a per-partition pool (mem::ChunkPool), so steady-state
// submission allocates nothing.
//
// Durability (Options::durability, src/log/): each partition owns a log
// shard on its island; workers stage their batch's after-images and
// append them with one reservation per batch, commit markers fan out
// through the partition inboxes, and TxnFuture completion is deferred
// until the transaction's markers reach the configured durability point
// (asynchronous acks — workers never block in a flush window, and the
// OnComplete-before-Wait ordering guarantee is preserved on the deferred
// path). Repartition() seals the shard generation and places fresh shards
// with the new partitions; log::Recover replays all generations.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "core/scheme.h"
#include "engine/action_graph.h"
#include "engine/database.h"
#include "engine/mpsc_queue.h"
#include "engine/txn_future.h"
#include "hw/topology.h"
#include "log/log_manager.h"
#include "mem/chunk_pool.h"
#include "obs/registry.h"
#include "util/status.h"

namespace atrapos::engine {

/// What a partition inbox carries: pointers only. The graph (and its
/// std::functions) lives in *st, which TxnState::self keeps alive until
/// the transaction completes — publishing an action allocates nothing and
/// copies no closure. A task with `act == nullptr` is a commit marker:
/// the receiving worker appends st's commit record to its own shard,
/// which — because the worker serializes its shard's appends — lands
/// after every data record the transaction wrote there (the write-ahead
/// invariant, kept without any cross-shard lock).
struct ActionTask {
  internal::TxnState* st;
  ActionGraph::Action* act;
  storage::Table* table;
};

/// How submitted transactions are made durable (see src/log/).
enum class DurabilityMode {
  kOff,    ///< no logging (the seed behavior)
  kAsync,  ///< log + commit markers; ack when the markers are appended
  kGroup,  ///< ack deferred until the markers are durable on every shard
};

class PartitionedExecutor : public Database::Drainable {
 public:
  struct Options {
    DurabilityMode durability = DurabilityMode::kOff;
    /// 0 = one log shard per partition, placed on the owner island and
    /// reassigned with it on Repartition. 1 = a single centralized shard
    /// running the retired txn::WriteAheadLog protocol (per-record
    /// appends under one mutex; under kGroup the completing worker blocks
    /// in the flush window like the old Commit did) — the baseline the
    /// paper's Fig. 4 logging slice measures against.
    int log_shards = 0;
    uint64_t log_flush_interval_us = 50;
    /// Log record serialization: kCompactDiffV2 (default) writes compact
    /// headers and diff-encodes updates as (Rid, changed-range) records;
    /// kAfterImageV1 keeps the PR 4 full after-image encoding — the
    /// baseline the log-bytes/txn comparison is measured against.
    log::WireFormat log_wire = log::WireFormat::kCompactDiffV2;
    /// Tests: no background flusher — drive group commit with
    /// log_manager()->FlushAll() for deterministic durable points. kGroup
    /// commits only ack on an explicit flush then.
    bool log_manual_flush = false;
    /// Interleaved action execution (storage/interleave.h): a worker keeps
    /// up to this many drained actions in flight, overlapping their warm
    /// phases — coroutine B-tree descents and heap-record walks that
    /// prefetch the next node/page line and suspend — round-robin, so one
    /// action's remote-island cache misses are hidden behind its
    /// neighbors' work (AMAC-style software pipelining). Action *bodies*
    /// still run strictly in admission order, so per-partition same-key
    /// ordering, TxnFuture completion, write-ahead marker order, and log
    /// attribution are identical to the serial loop. <= 1 keeps today's
    /// serial drain with zero coroutine overhead (the default until a
    /// deployment benches its own sweet spot — see bench/tatp_real_engine
    /// --interleave_sweep). K > 1 helps remote-heavy/cache-cold
    /// placements and hurts small cache-resident working sets.
    int interleave_depth = 1;
    /// Hardware-counter profiling (obs::PerfCounters): each worker opens
    /// a perf_event_open group on itself and the snapshot source
    /// aggregates per island (atrapos_hw_*). Gated by the capability
    /// probe — where perf is unavailable (containers, paranoid kernels)
    /// this silently degrades to hw_available=false. Off disables even
    /// the probe, for overhead A/B runs (bench/table2).
    bool hw_counters = true;
  };

  /// Observes every transaction completion (success or abort) on the
  /// completing worker thread. AdaptiveManager registers itself here so
  /// workload class counts flow from the completion path instead of from
  /// hand-reporting drivers.
  class TxnCompletionListener {
   public:
    virtual ~TxnCompletionListener() = default;
    virtual void OnTxnComplete(int txn_class, const Status& status) = 0;
  };

  PartitionedExecutor(Database* db, const hw::Topology& topo,
                      core::Scheme scheme);  // default Options
  PartitionedExecutor(Database* db, const hw::Topology& topo,
                      core::Scheme scheme, Options opt);
  ~PartitionedExecutor() override;

  PartitionedExecutor(const PartitionedExecutor&) = delete;
  PartitionedExecutor& operator=(const PartitionedExecutor&) = delete;

  /// Submits one transaction graph for pipelined execution and returns its
  /// completion future. Enqueues only the first stage; later stages are
  /// enqueued by workers as each RVP is reached. Returns InvalidArgument
  /// (instead of crashing) when an action names a table the scheme or the
  /// database does not know, or an empty graph; keys outside every
  /// partition's [lo, hi) range clamp to the nearest partition.
  Result<TxnFuture> Submit(ActionGraph graph);

  /// Batched submission: groups the stage-0 actions of *all* graphs by
  /// destination partition and publishes each group with one enqueue and
  /// at most one wake — the per-partition submission cost is paid per
  /// batch, not per transaction. Validation is all-or-nothing: if any
  /// graph is invalid (unknown table, empty graph), nothing is submitted
  /// and the error is returned. On success the graphs are consumed
  /// (moved from). Futures are returned in submission order;
  /// per-partition ordering across the batch follows graph order. An empty
  /// span yields an empty vector.
  Result<std::vector<TxnFuture>> SubmitBatch(std::span<ActionGraph> graphs);

  /// Convenience: Submit + Wait (the old blocking Execute behavior).
  Status SubmitAndWait(ActionGraph graph);

  /// Blocks until no submitted graph is in flight.
  void Drain() override;

  /// Seals intake permanently: Submit/SubmitBatch return Unavailable from
  /// here on. Part of the documented Database::Drain() shutdown sequence —
  /// sealing is ordered against every in-flight submission (it takes the
  /// scheme gate exclusively), so SealIntake(); Drain(); guarantees no
  /// TxnFuture completion fires afterwards.
  void SealIntake() override;
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  /// Registers (or clears, with nullptr) the completion listener.
  /// Clearing blocks until every in-flight *listener call* returned (not
  /// until the executor is idle), so the previous listener can be
  /// destroyed safely immediately afterwards even while clients keep the
  /// submission pipeline full.
  void SetCompletionListener(TxnCompletionListener* l);

  /// Current scheme (copy).
  core::Scheme scheme() const;

  /// Harvests and resets the per-partition monitors into WorkloadStats
  /// (class counts must be supplied by the caller's own accounting).
  core::WorkloadStats HarvestStats(std::vector<double> class_counts,
                                   double window_seconds);

  /// Applies a new scheme: pauses intake, waits for in-flight graphs,
  /// drains workers, applies split/merge actions to every table's
  /// multi-rooted B-tree, migrates moved subtrees to their new owner
  /// island's arena, and restarts workers under the new routing. Returns
  /// the number of repartitioning actions applied. Placements naming a
  /// failed island's cores are silently re-homed onto survivors first
  /// (the adaptive manager needs no failure awareness); Unavailable when
  /// every island has failed.
  Result<size_t> Repartition(const core::Scheme& target);

  /// Fail-stops one hardware island (fault::kWorkerKill fires this through
  /// the sentinel; tests and benches call it directly). Every partition
  /// placed on the island is quarantined — its worker turns zombie:
  /// in-flight actions abort with kUnavailable (never hang, never complete
  /// twice) while commit markers still append, so already-decided deferred
  /// commits settle instead of stranding their futures. The quarantined
  /// partitions are then evacuated through the Repartition path onto the
  /// surviving islands (same boundaries, placements re-homed round-robin),
  /// which seals the log-shard generation and re-homes the shards —
  /// log::Recover stays crash-consistent across the failure. Returns the
  /// number of partitions evacuated; Unavailable when no island survives
  /// (the engine stays up, degraded: everything aborts kUnavailable).
  /// Must not be called from a worker thread (evacuation joins workers);
  /// workers use the sentinel.
  Result<size_t> KillIsland(int island);

  /// True while KillIsland is quarantining/evacuating. The server sheds
  /// load (kUnavailable, retryable) instead of queuing behind the scheme
  /// gate while this is set.
  bool quarantining() const {
    return quarantining_.load(std::memory_order_acquire);
  }
  /// Bitmask of fail-stopped islands (bit i = island i).
  uint64_t failed_islands() const {
    return failed_islands_.load(std::memory_order_acquire);
  }

  /// Actions accepted for execution, counted once per drained batch (a
  /// worker counts a batch *before* running it and always finishes a
  /// drained batch, so after Drain() this equals the actions actually
  /// executed). Commit-marker tasks are not actions and are not counted;
  /// neither are a zombie worker's aborted actions — a quarantined
  /// partition fails everything kUnavailable without executing, and
  /// counting those made a dead island look loaded (phantom load).
  uint64_t executed_actions() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// The durability subsystem, or nullptr when durability is kOff.
  /// Exposes the distributed durable point and SnapshotDurable() for
  /// log::Recover.
  log::LogManager* log_manager() { return log_ ? log_.get() : nullptr; }
  DurabilityMode durability() const { return opt_.durability; }

  /// The database's observability registry this executor records into
  /// (never null). AdaptiveManager uses it for repartition instants.
  obs::Registry* registry() const { return obs_; }

 private:
  using TaskQueue = MpscChunkQueue<ActionTask>;

  struct Partition {
    int table;
    uint64_t lo, hi;
    hw::CoreId core;
    size_t seq;  ///< global partition index (touched-bitmask bit, shard id)
    std::unique_ptr<core::PartitionMonitor> monitor;
    /// Backs the inbox chunks and this partition's log-shard buffers from
    /// the owner island's arena; shared so a sealed shard outlives the
    /// partition after Repartition.
    std::shared_ptr<mem::ChunkPool> pool;
    /// This partition's log shard (nullptr when durability is off).
    log::LogShard* shard = nullptr;
    /// Lock-free MPSC inbox; mu/cv exist only for parking an idle worker.
    TaskQueue inbox;
    /// Tasks published but not yet drained (producers add before Push,
    /// the worker subtracts after PopAll — never negative). Snapshot-time
    /// queue depth; per-partition because several producers feed one inbox.
    std::atomic<int64_t> pending{0};
    /// True while the worker is (about to be) blocked on cv. Producers
    /// claim the wake with exchange(false), so a burst of publishes while
    /// the worker runs performs zero notifies (wake coalescing).
    std::atomic<bool> parked{false};
    std::atomic<bool> stop{false};
    /// Island quarantine (KillIsland / fault::kWorkerKill): the worker
    /// keeps draining but fails every action task with kUnavailable while
    /// still appending commit markers — no future ever hangs on a dead
    /// island. Set once, never cleared (evacuation replaces the partition).
    std::atomic<bool> failed{false};
    /// Hardware counter group, opened by the worker on itself (perf
    /// requires the measured thread to be the opener); read cross-thread
    /// by the snapshot source once perf.open() is true.
    obs::PerfCounters perf;
    std::mutex mu;
    std::condition_variable cv;
    std::thread worker;
  };

  /// Per-call scratch that buckets one publish wave's tasks by destination
  /// partition, so each partition sees one inbox push (chain of chunks for
  /// oversized groups) and at most one wake.
  class Publisher;

  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(Partition* p);
  /// Runs one task; the stage's last finisher advances the graph (abort at
  /// RVP, next-stage fan-out, or completion). A quarantined partition's
  /// worker passes `zombie`: the action body is skipped and fails with
  /// kUnavailable, driving the graph through the normal abort-at-RVP path.
  void RunAction(const ActionTask& task, bool zombie);
  /// Worker-side kill handoff: a worker whose kWorkerKill fault fires
  /// cannot evacuate itself (Repartition joins its own thread), so it
  /// marks its partition failed and hands the island to the sentinel.
  void RequestKillIsland(int island);
  /// Processes queued kill requests (KillIsland) off the worker threads.
  void SentinelLoop();
  /// Notifies p's worker iff it is parked (producer side of the Dekker
  /// pair documented in mpsc_queue.h).
  void Wake(Partition* p);
  /// Places every partition's subtree (and each table's heap) on the arena
  /// the database's placement policy selects for its owning island; called
  /// with workers stopped. Subtrees whose owner changed are migrated.
  void PlacePartitions();
  /// Routing: clamps out-of-range keys to the nearest partition. The table
  /// id must have been validated (see Submit).
  Partition* Route(int table, uint64_t key);
  /// InvalidArgument when the graph is empty or names an unknown table.
  Status ValidateGraph(const ActionGraph& graph) const;
  /// Buckets stage `idx` of *st into `pub`. Stage 0 is staged by
  /// Submit/SubmitBatch under the scheme gate; later stages by workers,
  /// which is safe without the gate because Repartition waits for
  /// in-flight graphs before mutating the scheme.
  void EnqueueStage(internal::TxnState* st, size_t idx, Publisher* pub);
  /// Exactly-once completion: listener, client-visible status, callback,
  /// in-flight accounting — in that order. Releases the executor's
  /// keep-alive reference (TxnState::self).
  void CompleteTxn(internal::TxnState* st, Status s);
  /// Durability-aware epilogue of RunAction: completes immediately when
  /// nothing was logged (or durability is off / the transaction failed,
  /// after appending abort markers), otherwise runs the commit protocol —
  /// publish one marker per touched partition and defer CompleteTxn to
  /// the commit ack (per-partition shards), or append the single marker
  /// and optionally block in the flush window (centralized compat).
  void FinishTxn(internal::TxnState* st, Status s);

  /// log::LogManager ack: cookie is the TxnState whose commit markers
  /// reached the configured durability point.
  class CommitAckSink;

  Database* db_;
  // Stored by value: workers read the topology from their own threads
  // (core binding, socket lookups), so the executor must not depend on the
  // lifetime of the caller's Topology object.
  hw::Topology topo_;
  Options opt_;
  /// The database's registry (owned by Database, outlives the executor).
  obs::Registry* obs_;
  int obs_source_ = -1;  ///< AddSource id of the queue-depth/log source
  std::unique_ptr<CommitAckSink> ack_sink_;
  std::unique_ptr<log::LogManager> log_;
  log::LogShard* central_shard_ = nullptr;  ///< log_shards == 1 fast path
  std::atomic<uint64_t> next_txn_id_{0};
  /// Partitions flattened by seq — marker publishing indexes it.
  std::vector<Partition*> flat_parts_;
  mutable std::shared_mutex scheme_mu_;  // shared: Submit; unique: Repartition
  core::Scheme scheme_;
  std::vector<std::vector<std::unique_ptr<Partition>>> parts_;
  std::atomic<uint64_t> executed_{0};
  /// Hardware-counter totals of partitions already destroyed (StopWorkers
  /// folds each dying partition's final reading into its island's slot
  /// here), so the per-island aggregation stays monotone across
  /// Repartition/KillIsland. Indexed by island; guarded by scheme_mu_
  /// (written under the exclusive gate, read under the shared one).
  std::vector<obs::HwCounterValues> hw_retired_;
  // Hot-path counters are lock-free; the mutex/cv pairs exist only for
  // the (rare) waiters: Drain/Repartition on inflight_, listener
  // unregistration on listener_active_.
  std::atomic<TxnCompletionListener*> listener_{nullptr};
  std::atomic<int> listener_active_{0};
  std::mutex listener_mu_;
  std::condition_variable listener_cv_;
  std::atomic<uint64_t> inflight_{0};
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  /// Set (under the exclusive scheme gate) by SealIntake; checked by
  /// Submit/SubmitBatch under the shared gate.
  std::atomic<bool> sealed_{false};

  // ---- island failure (KillIsland / fault::kWorkerKill) -------------------
  std::atomic<bool> quarantining_{false};
  std::atomic<uint64_t> failed_islands_{0};
  std::mutex evac_mu_;  ///< serializes concurrent KillIsland calls
  /// Kill requests from workers, drained by the sentinel thread.
  std::mutex kill_mu_;
  std::condition_variable kill_cv_;
  std::vector<int> kill_requests_;  // guarded by kill_mu_
  bool sentinel_stop_ = false;      // guarded by kill_mu_
  std::thread sentinel_;
};

}  // namespace atrapos::engine
