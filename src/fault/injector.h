// Deterministic, seed-driven fault injection (the robustness dual of the
// obs tracing hooks: always compiled in, one relaxed load when disarmed).
//
// Every risky layer declares named *sites* — points where the real world
// can fail — and asks `fault::Should(site)` before the risky step:
//
//   mem    kArenaAlloc     chunk-pool slab carve fails → heap overflow path
//   log    kLogTornTail    append crosses a torn tail: recovery (and only
//                          recovery) sees the shard cut mid-record
//   log    kLogShortFlush  flush advances the durable LSN only part-way
//   server kNetRead        read() fails with ECONNRESET
//   server kNetWrite       write() fails with ECONNRESET
//   server kNetAccept      accept4() fails with ECONNABORTED
//   server kNetStall       server-side flush sees a spurious EAGAIN
//                          (stalled peer; exercises the EPOLLOUT path)
//   engine kWorkerKill     a partition worker's island fail-stops
//
// Evaluation is deterministic: fire/no-fire is a pure function of
// (seed, site, per-site evaluation index), so a failing schedule replays
// exactly — modulo thread interleaving deciding which evaluation lands
// where, which is why destructive sites are usually armed with
// `trigger_at` (fire on the Nth evaluation) rather than a probability.
//
// When no injector is installed, `Should()` is a single relaxed atomic
// load returning false — cheap enough to leave in every hot path, like
// the obs registry's metrics_enabled() gate.
//
// CI arming: the environment variable ATRAPOS_FAULT_SCHEDULE installs a
// process-global injector before main(), e.g.
//   ATRAPOS_FAULT_SCHEDULE="seed=42;arena_alloc=0.05;net_read=0.001"
// Site values are either a probability ("0.05") or a trigger count
// ("@128" = fire on the 128th evaluation), optionally with a fire cap
// ("0.05x3" = at most 3 fires).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace atrapos::fault {

enum class SiteId : uint8_t {
  kArenaAlloc = 0,
  kLogTornTail,
  kLogShortFlush,
  kNetRead,
  kNetWrite,
  kNetAccept,
  kNetStall,
  kWorkerKill,
  kCount
};
inline constexpr size_t kNumSites = static_cast<size_t>(SiteId::kCount);

/// snake_case site name (the schedule-string and Prometheus-label
/// vocabulary).
const char* SiteName(SiteId site);

/// When and how often a site fires. Either mechanism may be used;
/// `trigger_at` wins on its exact evaluation, `probability` covers the
/// rest.
struct SiteSchedule {
  double probability = 0.0;  ///< per-evaluation Bernoulli draw
  uint64_t trigger_at = 0;   ///< 1-based evaluation index to fire on (0=off)
  uint64_t max_fires = UINT64_MAX;  ///< stop firing after this many
};

class Injector {
 public:
  explicit Injector(uint64_t seed) : seed_(seed) {}

  /// Arms one site. Not thread-safe against concurrent Evaluate — arm
  /// before handing the injector to Install().
  void Arm(SiteId site, SiteSchedule sched);

  /// One evaluation of `site`: counts it, draws deterministically, counts
  /// the fire. Thread-safe; each concurrent caller gets a distinct
  /// evaluation index.
  bool Evaluate(SiteId site);

  uint64_t evaluations(SiteId site) const {
    return sites_[static_cast<size_t>(site)].evals.load(
        std::memory_order_relaxed);
  }
  uint64_t fires(SiteId site) const {
    return sites_[static_cast<size_t>(site)].fires.load(
        std::memory_order_relaxed);
  }
  uint64_t total_fires() const;
  uint64_t seed() const { return seed_; }

 private:
  struct Site {
    SiteSchedule sched;
    bool armed = false;
    std::atomic<uint64_t> evals{0};
    std::atomic<uint64_t> fires{0};
  };
  uint64_t seed_;
  Site sites_[kNumSites];
};

namespace internal {
extern std::atomic<Injector*> g_injector;
}  // namespace internal

/// Installs `inj` process-globally (nullptr disarms). The caller keeps
/// ownership and must keep `inj` alive until it is uninstalled and every
/// thread that might be mid-Should() has quiesced — in practice: install
/// before starting the system under test, uninstall after joining it.
void Install(Injector* inj);

/// The installed injector, or nullptr when disarmed.
inline Injector* Get() {
  return internal::g_injector.load(std::memory_order_relaxed);
}

/// The hot-path gate: false (one relaxed load) when no injector is
/// installed, otherwise one deterministic evaluation of `site`.
inline bool Should(SiteId site) {
  Injector* inj = internal::g_injector.load(std::memory_order_relaxed);
  if (inj == nullptr) return false;
  return inj->Evaluate(site);
}

/// Parses an ATRAPOS_FAULT_SCHEDULE-style string
/// ("seed=N;site=prob|@trigger[xmax];...") into a fresh heap injector, or
/// nullptr on empty/malformed input. Exposed for tests; the env hook uses
/// it at static-init time.
Injector* ParseSchedule(const std::string& spec);

}  // namespace atrapos::fault
