#include "fault/injector.h"

#include <cstdlib>
#include <cstring>
#include <vector>

namespace atrapos::fault {

namespace internal {
std::atomic<Injector*> g_injector{nullptr};
}  // namespace internal

const char* SiteName(SiteId site) {
  switch (site) {
    case SiteId::kArenaAlloc: return "arena_alloc";
    case SiteId::kLogTornTail: return "log_torn_tail";
    case SiteId::kLogShortFlush: return "log_short_flush";
    case SiteId::kNetRead: return "net_read";
    case SiteId::kNetWrite: return "net_write";
    case SiteId::kNetAccept: return "net_accept";
    case SiteId::kNetStall: return "net_stall";
    case SiteId::kWorkerKill: return "worker_kill";
    case SiteId::kCount: break;
  }
  return "unknown";
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void Injector::Arm(SiteId site, SiteSchedule sched) {
  Site& s = sites_[static_cast<size_t>(site)];
  s.sched = sched;
  s.armed = true;
}

bool Injector::Evaluate(SiteId site) {
  Site& s = sites_[static_cast<size_t>(site)];
  // Count before the armed check: an installed injector records which
  // sites the run actually reached (coverage in the obs fold), armed or
  // not. The disarmed process still pays only Should()'s single load.
  uint64_t idx = s.evals.fetch_add(1, std::memory_order_relaxed);
  if (!s.armed) return false;
  bool hit = false;
  if (s.sched.trigger_at != 0 && idx + 1 == s.sched.trigger_at) {
    hit = true;
  } else if (s.sched.probability > 0.0) {
    // Pure function of (seed, site, evaluation index): the draw replays
    // exactly under a fixed schedule.
    uint64_t h = SplitMix64(seed_ ^ (static_cast<uint64_t>(site) << 56) ^
                            (idx * 0xd1342543de82ef95ULL));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    hit = u < s.sched.probability;
  }
  if (!hit) return false;
  uint64_t prev = s.fires.fetch_add(1, std::memory_order_relaxed);
  if (prev >= s.sched.max_fires) {
    s.fires.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

uint64_t Injector::total_fires() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumSites; ++i)
    n += sites_[i].fires.load(std::memory_order_relaxed);
  return n;
}

void Install(Injector* inj) {
  internal::g_injector.store(inj, std::memory_order_release);
}

Injector* ParseSchedule(const std::string& spec) {
  if (spec.empty()) return nullptr;
  uint64_t seed = 1;
  struct Armed {
    SiteId site;
    SiteSchedule sched;
  };
  std::vector<Armed> armed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string tok = spec.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    size_t eq = tok.find('=');
    if (eq == std::string::npos) return nullptr;
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    if (key == "seed") {
      seed = std::strtoull(val.c_str(), nullptr, 10);
      continue;
    }
    SiteId site = SiteId::kCount;
    for (size_t i = 0; i < kNumSites; ++i) {
      if (key == SiteName(static_cast<SiteId>(i))) {
        site = static_cast<SiteId>(i);
        break;
      }
    }
    if (site == SiteId::kCount || val.empty()) return nullptr;
    SiteSchedule sched;
    size_t x = val.find('x');
    if (x != std::string::npos) {
      sched.max_fires = std::strtoull(val.c_str() + x + 1, nullptr, 10);
      if (sched.max_fires == 0) sched.max_fires = UINT64_MAX;
      val = val.substr(0, x);
    }
    if (!val.empty() && val[0] == '@') {
      sched.trigger_at = std::strtoull(val.c_str() + 1, nullptr, 10);
      if (sched.trigger_at == 0) return nullptr;
    } else {
      char* endp = nullptr;
      sched.probability = std::strtod(val.c_str(), &endp);
      if (endp == val.c_str() || sched.probability < 0.0 ||
          sched.probability > 1.0) {
        return nullptr;
      }
    }
    armed.push_back({site, sched});
  }
  if (armed.empty()) return nullptr;
  auto* inj = new Injector(seed);
  for (const Armed& a : armed) inj->Arm(a.site, a.sched);
  return inj;
}

namespace {

// Installs the env-configured injector before main() so test binaries and
// benches run under a CI fault schedule with no code changes. The injector
// leaks by design: Should() may race process teardown.
struct EnvSchedule {
  EnvSchedule() {
    const char* spec = std::getenv("ATRAPOS_FAULT_SCHEDULE");
    if (spec == nullptr || spec[0] == '\0') return;
    if (Injector* inj = ParseSchedule(spec)) Install(inj);
  }
};
EnvSchedule g_env_schedule;

}  // namespace

}  // namespace atrapos::fault
