// TATP — Telecom Application Transaction Processing benchmark (§VI-A).
//
// Four tables, perfectly partitionable on SubscriberID; seven transactions
// in three classes (single-table read, multi-table read, update). The
// standard mix is GetSubscriberData 35%, GetNewDestination 10%,
// GetAccessData 35%, UpdateSubscriberData 2%, UpdateLocation 14%,
// InsertCallForwarding 2%, DeleteCallForwarding 2%.
#pragma once

#include <memory>
#include <vector>

#include "core/flow_graph.h"
#include "storage/table.h"
#include "util/rng.h"

namespace atrapos::workload {

/// Table indices in the TATP spec.
enum TatpTable : int {
  kSubscriber = 0,
  kAccessInfo = 1,
  kSpecialFacility = 2,
  kCallForwarding = 3,
};

/// Transaction class indices in the TATP spec.
enum TatpTxn : int {
  kGetSubData = 0,
  kGetNewDest = 1,
  kGetAccData = 2,
  kUpdSubData = 3,
  kUpdLocation = 4,
  kInsCallFwd = 5,
  kDelCallFwd = 6,
};

// Column indices of the four tables (see BuildTatpTables schemas); shared
// by the Database-backed procedures and the ActionGraph builders.
enum SubCol : int { kSubId = 0, kSubNbr, kBit1, kHex1, kByte2, kMscLoc, kVlrLoc };
enum AiCol : int { kAiSId = 0, kAiType, kAiData1, kAiData2, kAiData3, kAiData4 };
enum SfCol : int { kSfSId = 0, kSfType, kSfActive, kSfErr, kSfDataA, kSfDataB };
enum CfCol : int { kCfSId = 0, kCfType, kCfStart, kCfEnd, kCfNumber };

/// The TATP workload spec with the standard mix and `subscribers` rows.
core::WorkloadSpec TatpSpec(uint64_t subscribers = 800000);

/// A spec restricted to a single transaction class at weight 1 (the
/// per-transaction bars of Fig. 8 and the phase workloads of Figs. 10-13).
core::WorkloadSpec TatpSingleTxnSpec(TatpTxn txn,
                                     uint64_t subscribers = 800000);

/// Builds and populates the four real TATP tables (for the real engine and
/// the examples). Row counts follow the spec ratios: ~2.5 AccessInfo and
/// ~2.5 SpecialFacility rows per subscriber, ~1.5 CallForwarding per SF.
/// Composite keys are encoded into the 48-bit key space via
/// TatpEncode{Ai,Sf,Cf}Key.
std::vector<std::unique_ptr<storage::Table>> BuildTatpTables(
    uint64_t subscribers, std::vector<uint64_t> boundaries = {0},
    uint64_t seed = 42);

/// Composite-key encodings (sub-id in high bits keeps partitioning aligned
/// with the Subscriber key domain).
constexpr uint64_t TatpEncodeAiKey(uint64_t s_id, uint64_t ai_type) {
  return s_id * 4 + (ai_type & 3);
}
constexpr uint64_t TatpEncodeSfKey(uint64_t s_id, uint64_t sf_type) {
  return s_id * 4 + (sf_type & 3);
}
constexpr uint64_t TatpEncodeCfKey(uint64_t s_id, uint64_t sf_type,
                                   uint64_t start_time) {
  return s_id * 32 + (sf_type & 3) * 8 + (start_time / 8 % 8);
}

}  // namespace atrapos::workload
