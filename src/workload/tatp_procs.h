// The seven TATP stored procedures implemented against the real engine
// (engine::Database): the workload's functional counterpart to the
// simulated flow graphs. Follows the TATP specification's semantics at the
// row level (wait-die retry handled by the caller or RunMix).
#pragma once

#include <string>

#include "engine/database.h"
#include "util/rng.h"
#include "workload/tatp.h"

namespace atrapos::workload {

class TatpProcedures {
 public:
  /// `db` must contain the four TATP tables at indices kSubscriber..
  /// kCallForwarding (as produced by BuildTatpTables + Database::AddTable).
  TatpProcedures(engine::Database* db, uint64_t subscribers)
      : db_(db), subscribers_(subscribers) {}

  // ---- read-only, single table ------------------------------------------
  Status GetSubscriberData(uint64_t s_id, storage::Tuple* out);
  Status GetAccessData(uint64_t s_id, uint64_t ai_type, int64_t* data1);

  // ---- read-only, multi table -------------------------------------------
  /// Returns the forwarding number if an active SpecialFacility with a
  /// matching CallForwarding window exists (NotFound otherwise, as in the
  /// spec where ~76.5% of calls find a destination).
  Status GetNewDestination(uint64_t s_id, uint64_t sf_type,
                           uint64_t start_time, uint64_t end_time,
                           std::string* numberx);

  // ---- updates ------------------------------------------------------------
  Status UpdateSubscriberData(uint64_t s_id, int64_t bit, uint64_t sf_type,
                              int64_t data_a);
  Status UpdateLocation(uint64_t s_id, int64_t vlr_location);
  Status InsertCallForwarding(uint64_t s_id, uint64_t sf_type,
                              uint64_t start_time, uint64_t end_time,
                              const std::string& numberx);
  Status DeleteCallForwarding(uint64_t s_id, uint64_t sf_type,
                              uint64_t start_time);

  /// Draws a transaction from the standard TATP mix and executes it with
  /// retry. Returns the class index executed (TatpTxn), or an error status
  /// for non-retryable failures. Spec-conformant "expected" misses
  /// (NotFound on probes) count as success.
  Result<int> RunMix(Rng& rng);

  uint64_t subscribers() const { return subscribers_; }

 private:
  engine::Database* db_;
  uint64_t subscribers_;
};

}  // namespace atrapos::workload
