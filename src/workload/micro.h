// The paper's microbenchmarks (§III, §IV, §V-A).
#pragma once

#include "core/flow_graph.h"
#include "storage/schema.h"

namespace atrapos::workload {

/// The microbenchmark table: 10 integer columns (c0 is the key).
storage::Schema MicroTableSchema();

/// §III-B / §IV / Fig. 1, 2, 5: perfectly partitionable workload — each
/// transaction reads one row from one table (800 K rows by default).
core::WorkloadSpec ReadOneSpec(uint64_t rows = 800000);

/// §III-C / Fig. 3, 4: two transaction classes on one table —
///   local:      update 10 rows from the local site
///   multi-site: update 1 local row + 9 rows uniform over the whole dataset
/// `multisite_pct` in [0,100] sets the class weights.
core::WorkloadSpec MultisiteUpdateSpec(double multisite_pct,
                                       uint64_t rows = 800000);

/// §III-D / Table I: read 100 rows chosen randomly from a 1 M-row table.
core::WorkloadSpec Read100Spec(uint64_t rows = 1000000);

/// §V-A Fig. 6: the simple two-table transaction — read one row of A, then
/// the dependent row of B (same key domain, foreign-key aligned).
core::WorkloadSpec SimpleTwoTableSpec(uint64_t rows = 800000);

}  // namespace atrapos::workload
