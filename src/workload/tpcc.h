// TPC-C (§VI-A): 9 tables, 5 transactions; every transaction touches data
// from 3+ tables. Warehouse-keyed tables share an aligned key domain
// (partitioning by warehouse); ITEM has its own domain, so ITEM/STOCK
// probes by item id are unaligned — the adversarial part of NewOrder's
// flow graph (Fig. 7).
#pragma once

#include <memory>
#include <vector>

#include "core/flow_graph.h"
#include "storage/table.h"

namespace atrapos::workload {

enum TpccTable : int {
  kWarehouse = 0,
  kDistrict = 1,
  kCustomer = 2,
  kHistory = 3,
  kNewOrder = 4,
  kOrder = 5,
  kOrderLine = 6,
  kItem = 7,
  kStock = 8,
};

enum TpccTxn : int {
  kNewOrderTxn = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
};

/// The TPC-C workload spec at `warehouses` scale with the standard mix
/// (NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%).
core::WorkloadSpec TpccSpec(int warehouses = 80);

/// Single-transaction spec (Fig. 8 per-transaction bars).
core::WorkloadSpec TpccSingleTxnSpec(TpccTxn txn, int warehouses = 80);

/// Builds and populates real TPC-C tables at a (scaled-down) row count per
/// warehouse, for the real engine and examples. `cust_per_district` scales
/// CUSTOMER/STOCK rows to keep example runtimes short.
std::vector<std::unique_ptr<storage::Table>> BuildTpccTables(
    int warehouses, int districts_per_wh = 10, int cust_per_district = 30,
    int items = 1000, uint64_t seed = 42);

// Composite-key encodings (warehouse id in the high bits keeps the aligned
// tables partitionable by warehouse).
constexpr uint64_t kTpccDistrictsPerWh = 10;

constexpr uint64_t TpccDistrictKey(uint64_t w, uint64_t d) {
  return w * kTpccDistrictsPerWh + d;
}
constexpr uint64_t TpccCustomerKey(uint64_t w, uint64_t d, uint64_t c) {
  return (w * kTpccDistrictsPerWh + d) * 100000 + c;
}
constexpr uint64_t TpccOrderKey(uint64_t w, uint64_t d, uint64_t o) {
  return (w * kTpccDistrictsPerWh + d) * 10000000 + o;
}
constexpr uint64_t TpccOrderLineKey(uint64_t w, uint64_t d, uint64_t o,
                                    uint64_t l) {
  return TpccOrderKey(w, d, o) * 16 + l;
}
constexpr uint64_t TpccStockKey(uint64_t w, uint64_t i) {
  return w * 100000 + i;
}

}  // namespace atrapos::workload
