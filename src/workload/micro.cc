#include "workload/micro.h"

namespace atrapos::workload {

using core::ActionSpec;
using core::OpType;
using core::SyncPointSpec;
using core::TxnClass;
using core::WorkloadSpec;

storage::Schema MicroTableSchema() {
  std::vector<storage::Column> cols;
  for (int i = 0; i < 10; ++i)
    cols.push_back(storage::Column::Int64("c" + std::to_string(i)));
  return storage::Schema(cols);
}

core::WorkloadSpec ReadOneSpec(uint64_t rows) {
  WorkloadSpec spec;
  spec.name = "read-one";
  spec.tables = {{"T", rows}};
  TxnClass cls;
  cls.name = "ReadOne";
  cls.actions = {ActionSpec{0, OpType::kRead, 1, 1, 1, true}};
  cls.weight = 1.0;
  spec.classes.push_back(cls);
  return spec;
}

core::WorkloadSpec MultisiteUpdateSpec(double multisite_pct, uint64_t rows) {
  WorkloadSpec spec;
  spec.name = "multisite-update";
  spec.tables = {{"T", rows}};

  TxnClass local;
  local.name = "LocalUpdate10";
  local.actions = {ActionSpec{0, OpType::kUpdate, 10, 1, 1, true}};
  local.weight = 100.0 - multisite_pct;
  spec.classes.push_back(local);

  TxnClass multi;
  multi.name = "MultisiteUpdate";
  // 1 local row + 9 rows uniform over the whole dataset (unaligned).
  multi.actions = {ActionSpec{0, OpType::kUpdate, 1, 1, 1, true},
                   ActionSpec{0, OpType::kUpdate, 9, 1, 1, false}};
  multi.sync_points = {SyncPointSpec{{0, 1}, 128}};
  multi.weight = multisite_pct;
  spec.classes.push_back(multi);
  return spec;
}

core::WorkloadSpec Read100Spec(uint64_t rows) {
  WorkloadSpec spec;
  spec.name = "read-100";
  spec.tables = {{"T", rows}};
  TxnClass cls;
  cls.name = "Read100";
  cls.actions = {ActionSpec{0, OpType::kRead, 100, 1, 1, false}};
  cls.weight = 1.0;
  spec.classes.push_back(cls);
  return spec;
}

core::WorkloadSpec SimpleTwoTableSpec(uint64_t rows) {
  WorkloadSpec spec;
  spec.name = "simple-two-table";
  spec.tables = {{"A", rows}, {"B", rows}};
  TxnClass cls;
  cls.name = "ReadAB";
  cls.actions = {ActionSpec{0, OpType::kRead, 1, 1, 1, true},
                 ActionSpec{1, OpType::kRead, 1, 1, 1, true}};
  // The dependent read ships the first row's relevant columns plus probe
  // state between the two partitions.
  cls.sync_points = {SyncPointSpec{{0, 1}, 512}};
  cls.weight = 1.0;
  spec.classes.push_back(cls);
  return spec;
}

}  // namespace atrapos::workload
