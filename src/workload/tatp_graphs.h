// The seven TATP stored procedures decomposed into routed transaction flow
// graphs (engine::ActionGraph) for the partitioned executor — the
// data-oriented counterpart of TatpProcedures, which runs the same
// procedures against the shared-everything Database.
//
// Each builder mirrors the static TxnClass of workload::TatpSpec (same
// class indices, same table sets — asserted by ActionGraph::MatchesClass),
// so one workload description drives the simulator (simengine/dora.cc
// consumes the spec) and the real engine (the executor runs these graphs).
// Actions touch storage::Table directly: the owning partition worker
// serializes all access to its key range, so no 2PL is needed on this path
// (DORA's thread-to-data model, paper §III).
#pragma once

#include <memory>
#include <string>

#include "engine/action_graph.h"
#include "util/rng.h"
#include "workload/tatp.h"

namespace atrapos::workload {

class TatpActionGraphs {
 public:
  explicit TatpActionGraphs(uint64_t subscribers)
      : subscribers_(subscribers) {}

  // Output parameters are shared_ptrs captured by the graph's actions —
  // read them only after the returned graph's TxnFuture is Done. All may
  // be null when the caller only needs the Status.

  // ---- read-only, single table ------------------------------------------
  engine::ActionGraph GetSubscriberData(
      uint64_t s_id, std::shared_ptr<storage::Tuple> out = nullptr) const;
  engine::ActionGraph GetAccessData(
      uint64_t s_id, uint64_t ai_type,
      std::shared_ptr<int64_t> data1 = nullptr) const;

  // ---- read-only, multi table: SF probe, RVP, CF window probes ----------
  /// Completes NotFound when the SpecialFacility is inactive (aborting at
  /// the RVP, so the CallForwarding stage never runs) or when no
  /// forwarding window covers [start_time, end_time) — the spec's ~76.5%
  /// hit rate appears as the OK fraction.
  engine::ActionGraph GetNewDestination(
      uint64_t s_id, uint64_t sf_type, uint64_t start_time, uint64_t end_time,
      std::shared_ptr<std::string> numberx = nullptr) const;

  // ---- updates ----------------------------------------------------------
  /// Two parallel update actions (Subscriber + SpecialFacility) joined at
  /// the final RVP.
  engine::ActionGraph UpdateSubscriberData(uint64_t s_id, int64_t bit,
                                           uint64_t sf_type,
                                           int64_t data_a) const;
  engine::ActionGraph UpdateLocation(uint64_t s_id,
                                     int64_t vlr_location) const;
  /// Reads Subscriber + SpecialFacility in stage 1; inserts the
  /// CallForwarding row in stage 2 (cancelled when either read misses).
  engine::ActionGraph InsertCallForwarding(uint64_t s_id, uint64_t sf_type,
                                           uint64_t start_time,
                                           uint64_t end_time,
                                           std::string numberx) const;
  /// Reads Subscriber in stage 1; deletes the CallForwarding row in
  /// stage 2.
  engine::ActionGraph DeleteCallForwarding(uint64_t s_id, uint64_t sf_type,
                                           uint64_t start_time) const;

  /// Draws one transaction from the standard TATP mix
  /// (35/10/35/2/14/2/2). The returned graph's txn_class() identifies the
  /// class drawn (TatpTxn); spec-conformant misses surface as NotFound /
  /// AlreadyExists statuses, which callers should count as success.
  engine::ActionGraph Mix(Rng& rng) const;
  /// Same mix but against a caller-chosen subscriber — drivers use this to
  /// apply skew to every transaction class, not just to reads.
  engine::ActionGraph Mix(Rng& rng, uint64_t s_id) const;

  /// True for the statuses a TATP driver counts as successful execution
  /// (OK plus the spec's expected misses).
  static bool CountsAsSuccess(const Status& s) {
    return s.ok() || s.code() == StatusCode::kNotFound ||
           s.code() == StatusCode::kAlreadyExists;
  }

  uint64_t subscribers() const { return subscribers_; }

 private:
  uint64_t subscribers_;
};

}  // namespace atrapos::workload
