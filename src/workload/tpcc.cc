#include "workload/tpcc.h"

#include "util/rng.h"

namespace atrapos::workload {

using core::ActionSpec;
using core::OpType;
using core::SyncPointSpec;
using core::TxnClass;
using core::WorkloadSpec;

namespace {

/// The NewOrder flow graph of Fig. 7:
///   fixed part:    R(WH) R(DIST) R(CUST) -> U(DIST) -> I(NORD) I(ORD)
///   variable part: R(ITEM) -> R(STO) -> U(STO) -> I(OL), x(5-15)
/// Four synchronization points; all but the second involve a variable
/// number of partitions.
TxnClass MakeNewOrder() {
  TxnClass c;
  c.name = "NewOrder";
  c.actions = {
      /*0*/ ActionSpec{kWarehouse, OpType::kRead, 1, 1, 1, true},
      /*1*/ ActionSpec{kDistrict, OpType::kRead, 1, 1, 1, true},
      /*2*/ ActionSpec{kCustomer, OpType::kRead, 1, 1, 1, true},
      /*3*/ ActionSpec{kDistrict, OpType::kUpdate, 1, 1, 1, true},
      /*4*/ ActionSpec{kNewOrder, OpType::kInsert, 1, 1, 1, true},
      /*5*/ ActionSpec{kOrder, OpType::kInsert, 1, 1, 1, true},
      /*6*/ ActionSpec{kItem, OpType::kRead, 1, 5, 15, false},
      /*7*/ ActionSpec{kStock, OpType::kRead, 1, 5, 15, false},
      /*8*/ ActionSpec{kStock, OpType::kUpdate, 1, 5, 15, false},
      /*9*/ ActionSpec{kOrderLine, OpType::kInsert, 1, 5, 15, true},
  };
  c.sync_points = {
      SyncPointSpec{{0, 1, 2, 6}, 256},  // input gather (variable: items)
      SyncPointSpec{{3, 4, 5}, 128},     // the fixed one
      SyncPointSpec{{6, 7, 8}, 192},     // per-item stock check (variable)
      SyncPointSpec{{8, 9}, 192},        // order-line emit (variable)
  };
  c.weight = 45;
  return c;
}

TxnClass MakePayment() {
  TxnClass c;
  c.name = "Payment";
  c.actions = {
      ActionSpec{kWarehouse, OpType::kUpdate, 1, 1, 1, true},
      ActionSpec{kDistrict, OpType::kUpdate, 1, 1, 1, true},
      ActionSpec{kCustomer, OpType::kUpdate, 1, 1, 1, true},
      ActionSpec{kHistory, OpType::kInsert, 1, 1, 1, true},
  };
  c.sync_points = {SyncPointSpec{{0, 1, 2}, 128}, SyncPointSpec{{2, 3}, 64}};
  c.weight = 43;
  return c;
}

TxnClass MakeOrderStatus() {
  TxnClass c;
  c.name = "OrderStatus";
  c.actions = {
      ActionSpec{kCustomer, OpType::kRead, 1, 1, 1, true},
      ActionSpec{kOrder, OpType::kRead, 1, 1, 1, true},
      ActionSpec{kOrderLine, OpType::kRead, 10, 1, 1, true},
  };
  c.sync_points = {SyncPointSpec{{0, 1}, 64}, SyncPointSpec{{1, 2}, 128}};
  c.weight = 4;
  return c;
}

TxnClass MakeDelivery() {
  TxnClass c;
  c.name = "Delivery";
  c.actions = {
      ActionSpec{kNewOrder, OpType::kDelete, 1, 10, 10, true},
      ActionSpec{kOrder, OpType::kUpdate, 1, 10, 10, true},
      ActionSpec{kOrderLine, OpType::kUpdate, 10, 10, 10, true},
      ActionSpec{kCustomer, OpType::kUpdate, 1, 10, 10, true},
  };
  c.sync_points = {SyncPointSpec{{0, 1, 2}, 128}, SyncPointSpec{{2, 3}, 64}};
  c.weight = 4;
  return c;
}

TxnClass MakeStockLevel() {
  TxnClass c;
  c.name = "StockLevel";
  c.actions = {
      ActionSpec{kDistrict, OpType::kRead, 1, 1, 1, true},
      ActionSpec{kOrderLine, OpType::kRead, 200, 1, 1, true},
      // The join probes stock by item id: unaligned.
      ActionSpec{kStock, OpType::kRead, 200, 1, 1, false},
  };
  c.sync_points = {SyncPointSpec{{0, 1}, 64}, SyncPointSpec{{1, 2}, 2048}};
  c.weight = 4;
  return c;
}

}  // namespace

core::WorkloadSpec TpccSpec(int warehouses) {
  WorkloadSpec spec;
  spec.name = "tpcc";
  auto w = static_cast<uint64_t>(warehouses);
  spec.tables = {
      {"WAREHOUSE", w},         {"DISTRICT", w * 10},
      {"CUSTOMER", w * 300000}, {"HISTORY", w * 300000},
      {"NEWORDER", w * 90000},  {"ORDER", w * 300000},
      {"ORDERLINE", w * 3000000}, {"ITEM", 100000},
      {"STOCK", w * 100000},
  };
  spec.classes = {MakeNewOrder(), MakePayment(), MakeOrderStatus(),
                  MakeDelivery(), MakeStockLevel()};
  return spec;
}

core::WorkloadSpec TpccSingleTxnSpec(TpccTxn txn, int warehouses) {
  WorkloadSpec spec = TpccSpec(warehouses);
  for (size_t i = 0; i < spec.classes.size(); ++i)
    spec.classes[i].weight = (static_cast<int>(i) == txn) ? 1.0 : 0.0;
  spec.name = "tpcc-" + spec.classes[static_cast<size_t>(txn)].name;
  return spec;
}

std::vector<std::unique_ptr<storage::Table>> BuildTpccTables(
    int warehouses, int districts_per_wh, int cust_per_district, int items,
    uint64_t seed) {
  using storage::Column;
  using storage::Schema;
  using storage::Table;
  using storage::Tuple;
  Rng rng(seed);
  std::vector<std::unique_ptr<Table>> tables;
  auto wn = static_cast<uint64_t>(warehouses);

  Schema wh_schema({Column::Int64("w_id"), Column::FixedString("w_name", 10),
                    Column::Int64("w_tax"), Column::Int64("w_ytd")});
  auto wh = std::make_unique<Table>(kWarehouse, "WAREHOUSE", wh_schema);
  for (uint64_t w = 0; w < wn; ++w) {
    Tuple t(&wh->schema());
    t.SetInt(0, static_cast<int64_t>(w));
    t.SetString(1, "WH" + std::to_string(w));
    t.SetInt(2, static_cast<int64_t>(rng.Uniform(2000)));
    (void)wh->Insert(w, t);
  }
  tables.push_back(std::move(wh));

  Schema d_schema({Column::Int64("d_w_id"), Column::Int64("d_id"),
                   Column::Int64("d_tax"), Column::Int64("d_next_o_id")});
  auto dist = std::make_unique<Table>(kDistrict, "DISTRICT", d_schema);
  for (uint64_t w = 0; w < wn; ++w)
    for (uint64_t d = 0; d < static_cast<uint64_t>(districts_per_wh); ++d) {
      Tuple t(&dist->schema());
      t.SetInt(0, static_cast<int64_t>(w));
      t.SetInt(1, static_cast<int64_t>(d));
      t.SetInt(3, 1);
      (void)dist->Insert(TpccDistrictKey(w, d), t);
    }
  tables.push_back(std::move(dist));

  Schema c_schema({Column::Int64("c_w_id"), Column::Int64("c_d_id"),
                   Column::Int64("c_id"), Column::FixedString("c_last", 16),
                   Column::Int64("c_balance")});
  auto cust = std::make_unique<Table>(kCustomer, "CUSTOMER", c_schema);
  for (uint64_t w = 0; w < wn; ++w)
    for (uint64_t d = 0; d < static_cast<uint64_t>(districts_per_wh); ++d)
      for (uint64_t cid = 0; cid < static_cast<uint64_t>(cust_per_district);
           ++cid) {
        Tuple t(&cust->schema());
        t.SetInt(0, static_cast<int64_t>(w));
        t.SetInt(1, static_cast<int64_t>(d));
        t.SetInt(2, static_cast<int64_t>(cid));
        t.SetString(3, "Cust" + std::to_string(cid));
        t.SetInt(4, -10);
        (void)cust->Insert(TpccCustomerKey(w, d, cid), t);
      }
  tables.push_back(std::move(cust));

  Schema h_schema({Column::Int64("h_c_id"), Column::Int64("h_amount")});
  tables.push_back(
      std::make_unique<Table>(kHistory, "HISTORY", h_schema));

  Schema no_schema({Column::Int64("no_w_id"), Column::Int64("no_d_id"),
                    Column::Int64("no_o_id")});
  tables.push_back(std::make_unique<Table>(kNewOrder, "NEWORDER", no_schema));

  Schema o_schema({Column::Int64("o_w_id"), Column::Int64("o_d_id"),
                   Column::Int64("o_id"), Column::Int64("o_c_id"),
                   Column::Int64("o_ol_cnt")});
  tables.push_back(std::make_unique<Table>(kOrder, "ORDER", o_schema));

  Schema ol_schema({Column::Int64("ol_w_id"), Column::Int64("ol_d_id"),
                    Column::Int64("ol_o_id"), Column::Int64("ol_number"),
                    Column::Int64("ol_i_id"), Column::Int64("ol_quantity")});
  tables.push_back(
      std::make_unique<Table>(kOrderLine, "ORDERLINE", ol_schema));

  Schema i_schema({Column::Int64("i_id"), Column::FixedString("i_name", 14),
                   Column::Int64("i_price")});
  auto item = std::make_unique<Table>(kItem, "ITEM", i_schema);
  for (uint64_t i = 0; i < static_cast<uint64_t>(items); ++i) {
    Tuple t(&item->schema());
    t.SetInt(0, static_cast<int64_t>(i));
    t.SetString(1, "Item" + std::to_string(i));
    t.SetInt(2, static_cast<int64_t>(100 + rng.Uniform(9900)));
    (void)item->Insert(i, t);
  }
  tables.push_back(std::move(item));

  Schema s_schema({Column::Int64("s_w_id"), Column::Int64("s_i_id"),
                   Column::Int64("s_quantity"), Column::Int64("s_ytd")});
  auto stock = std::make_unique<Table>(kStock, "STOCK", s_schema);
  for (uint64_t w = 0; w < wn; ++w)
    for (uint64_t i = 0; i < static_cast<uint64_t>(items); ++i) {
      Tuple t(&stock->schema());
      t.SetInt(0, static_cast<int64_t>(w));
      t.SetInt(1, static_cast<int64_t>(i));
      t.SetInt(2, static_cast<int64_t>(10 + rng.Uniform(90)));
      (void)stock->Insert(TpccStockKey(w, i), t);
    }
  tables.push_back(std::move(stock));
  return tables;
}

}  // namespace atrapos::workload
