#include "workload/tatp_procs.h"

namespace atrapos::workload {

Status TatpProcedures::GetSubscriberData(uint64_t s_id, storage::Tuple* out) {
  return db_->RunTransaction([&](engine::Database::Txn* txn) {
    return db_->Read(txn, kSubscriber, s_id, out);
  });
}

Status TatpProcedures::GetAccessData(uint64_t s_id, uint64_t ai_type,
                                     int64_t* data1) {
  return db_->RunTransaction([&](engine::Database::Txn* txn) {
    storage::Tuple row;
    ATRAPOS_RETURN_NOT_OK(
        db_->Read(txn, kAccessInfo, TatpEncodeAiKey(s_id, ai_type), &row));
    *data1 = row.GetInt(kAiData1);
    return Status::OK();
  });
}

Status TatpProcedures::GetNewDestination(uint64_t s_id, uint64_t sf_type,
                                         uint64_t start_time,
                                         uint64_t end_time,
                                         std::string* numberx) {
  return db_->RunTransaction([&](engine::Database::Txn* txn) {
    storage::Tuple sf;
    ATRAPOS_RETURN_NOT_OK(
        db_->Read(txn, kSpecialFacility, TatpEncodeSfKey(s_id, sf_type), &sf));
    if (sf.GetInt(kSfActive) == 0) return Status::NotFound("inactive SF");
    // CallForwarding windows start at multiples of 8; probe the covering
    // candidates at or before start_time.
    for (uint64_t start = 0; start <= start_time; start += 8) {
      storage::Tuple cf;
      Status s = db_->Read(txn, kCallForwarding,
                           TatpEncodeCfKey(s_id, sf_type, start), &cf);
      if (!s.ok()) {
        if (s.code() == StatusCode::kNotFound) continue;
        return s;
      }
      if (static_cast<uint64_t>(cf.GetInt(kCfStart)) <= start_time &&
          static_cast<uint64_t>(cf.GetInt(kCfEnd)) > end_time) {
        *numberx = cf.GetString(kCfNumber);
        return Status::OK();
      }
    }
    return Status::NotFound("no matching forwarding window");
  });
}

Status TatpProcedures::UpdateSubscriberData(uint64_t s_id, int64_t bit,
                                            uint64_t sf_type,
                                            int64_t data_a) {
  return db_->RunTransaction([&](engine::Database::Txn* txn) {
    storage::Tuple sub;
    ATRAPOS_RETURN_NOT_OK(db_->ReadForUpdate(txn, kSubscriber, s_id, &sub));
    sub.SetInt(kBit1, bit);
    ATRAPOS_RETURN_NOT_OK(db_->Update(txn, kSubscriber, s_id, sub));
    storage::Tuple sf;
    uint64_t sf_key = TatpEncodeSfKey(s_id, sf_type);
    ATRAPOS_RETURN_NOT_OK(
        db_->ReadForUpdate(txn, kSpecialFacility, sf_key, &sf));
    sf.SetInt(kSfDataA, data_a);
    return db_->Update(txn, kSpecialFacility, sf_key, sf);
  });
}

Status TatpProcedures::UpdateLocation(uint64_t s_id, int64_t vlr_location) {
  return db_->RunTransaction([&](engine::Database::Txn* txn) {
    storage::Tuple sub;
    ATRAPOS_RETURN_NOT_OK(db_->ReadForUpdate(txn, kSubscriber, s_id, &sub));
    sub.SetInt(kVlrLoc, vlr_location);
    return db_->Update(txn, kSubscriber, s_id, sub);
  });
}

Status TatpProcedures::InsertCallForwarding(uint64_t s_id, uint64_t sf_type,
                                            uint64_t start_time,
                                            uint64_t end_time,
                                            const std::string& numberx) {
  return db_->RunTransaction([&](engine::Database::Txn* txn) {
    // Spec: the subscriber and an SF row are read first.
    storage::Tuple sub, sf;
    ATRAPOS_RETURN_NOT_OK(db_->Read(txn, kSubscriber, s_id, &sub));
    ATRAPOS_RETURN_NOT_OK(
        db_->Read(txn, kSpecialFacility, TatpEncodeSfKey(s_id, sf_type), &sf));
    storage::Tuple cf(&db_->table(kCallForwarding)->schema());
    cf.SetInt(kCfSId, static_cast<int64_t>(s_id));
    cf.SetInt(kCfType, static_cast<int64_t>(sf_type));
    cf.SetInt(kCfStart, static_cast<int64_t>(start_time));
    cf.SetInt(kCfEnd, static_cast<int64_t>(end_time));
    cf.SetString(kCfNumber, numberx);
    return db_->Insert(txn, kCallForwarding,
                       TatpEncodeCfKey(s_id, sf_type, start_time), cf);
  });
}

Status TatpProcedures::DeleteCallForwarding(uint64_t s_id, uint64_t sf_type,
                                            uint64_t start_time) {
  return db_->RunTransaction([&](engine::Database::Txn* txn) {
    return db_->Delete(txn, kCallForwarding,
                       TatpEncodeCfKey(s_id, sf_type, start_time));
  });
}

Result<int> TatpProcedures::RunMix(Rng& rng) {
  uint64_t s_id = rng.Uniform(subscribers_);
  uint64_t sf_type = rng.Uniform(4);
  int draw = static_cast<int>(rng.Uniform(100));
  auto ok_or_miss = [](Status s) {
    return s.ok() || s.code() == StatusCode::kNotFound ||
                   s.code() == StatusCode::kAlreadyExists
               ? Status::OK()
               : s;
  };
  // Standard mix: 35 / 10 / 35 / 2 / 14 / 2 / 2.
  if (draw < 35) {
    storage::Tuple row;
    ATRAPOS_RETURN_NOT_OK(ok_or_miss(GetSubscriberData(s_id, &row)));
    return kGetSubData;
  }
  if (draw < 45) {
    std::string number;
    ATRAPOS_RETURN_NOT_OK(ok_or_miss(
        GetNewDestination(s_id, sf_type, rng.Uniform(3) * 8, 1, &number)));
    return kGetNewDest;
  }
  if (draw < 80) {
    int64_t d1 = 0;
    ATRAPOS_RETURN_NOT_OK(
        ok_or_miss(GetAccessData(s_id, rng.Uniform(4), &d1)));
    return kGetAccData;
  }
  if (draw < 82) {
    ATRAPOS_RETURN_NOT_OK(ok_or_miss(UpdateSubscriberData(
        s_id, static_cast<int64_t>(rng.Uniform(2)), sf_type,
        static_cast<int64_t>(rng.Uniform(256)))));
    return kUpdSubData;
  }
  if (draw < 96) {
    ATRAPOS_RETURN_NOT_OK(ok_or_miss(UpdateLocation(
        s_id, static_cast<int64_t>(rng.Next() % (1ULL << 31)))));
    return kUpdLocation;
  }
  if (draw < 98) {
    ATRAPOS_RETURN_NOT_OK(ok_or_miss(InsertCallForwarding(
        s_id, sf_type, rng.Uniform(4) * 8, rng.Uniform(24) + 8, "555-0199")));
    return kInsCallFwd;
  }
  ATRAPOS_RETURN_NOT_OK(
      ok_or_miss(DeleteCallForwarding(s_id, sf_type, rng.Uniform(4) * 8)));
  return kDelCallFwd;
}

}  // namespace atrapos::workload
