#include "workload/tatp_graphs.h"

#include <vector>

#include "storage/table.h"

namespace atrapos::workload {

using engine::ActionCtx;
using engine::ActionGraph;
using storage::Table;
using storage::Tuple;

ActionGraph TatpActionGraphs::GetSubscriberData(
    uint64_t s_id, std::shared_ptr<Tuple> out) const {
  ActionGraph g(kGetSubData);
  g.Add(kSubscriber, s_id, [s_id, out](Table* t, ActionCtx& ctx) {
    Tuple row;
    ATRAPOS_RETURN_NOT_OK(t->Read(s_id, &row));
    if (out) *out = row;
    ctx.Emit(std::move(row));
    return Status::OK();
  });
  return g;
}

ActionGraph TatpActionGraphs::GetAccessData(
    uint64_t s_id, uint64_t ai_type, std::shared_ptr<int64_t> data1) const {
  ActionGraph g(kGetAccData);
  uint64_t key = TatpEncodeAiKey(s_id, ai_type);
  g.Add(kAccessInfo, key, [key, data1](Table* t, ActionCtx& ctx) {
    Tuple row;
    ATRAPOS_RETURN_NOT_OK(t->Read(key, &row));
    int64_t d1 = row.GetInt(kAiData1);
    if (data1) *data1 = d1;
    ctx.Emit(d1);
    return Status::OK();
  });
  return g;
}

ActionGraph TatpActionGraphs::GetNewDestination(
    uint64_t s_id, uint64_t sf_type, uint64_t start_time, uint64_t end_time,
    std::shared_ptr<std::string> numberx) const {
  ActionGraph g(kGetNewDest);
  uint64_t sf_key = TatpEncodeSfKey(s_id, sf_type);
  g.Add(kSpecialFacility, sf_key, [sf_key](Table* t, ActionCtx&) {
    Tuple sf;
    ATRAPOS_RETURN_NOT_OK(t->Read(sf_key, &sf));
    if (sf.GetInt(kSfActive) == 0) return Status::NotFound("inactive SF");
    return Status::OK();
  });
  g.Rvp();
  // CallForwarding windows start at multiples of 8; probe every covering
  // candidate at or before start_time. Each probe routes by its own key —
  // a repartitioning fence may fall between two windows of one subscriber.
  // A miss is not an error: the RVP join (finalizer) decides.
  std::vector<size_t> probes;
  for (uint64_t start = 0; start <= start_time; start += 8) {
    uint64_t cf_key = TatpEncodeCfKey(s_id, sf_type, start);
    probes.push_back(
        g.Add(kCallForwarding, cf_key, [cf_key](Table* t, ActionCtx& ctx) {
          Tuple cf;
          Status s = t->Read(cf_key, &cf);
          if (s.code() == StatusCode::kNotFound) return Status::OK();
          ATRAPOS_RETURN_NOT_OK(s);
          ctx.Emit(std::move(cf));
          return Status::OK();
        }));
  }
  g.SetFinalizer([probes, start_time, end_time,
                  numberx](std::vector<std::any>& payloads) {
    for (size_t id : probes) {
      const auto* cf = std::any_cast<Tuple>(&payloads[id]);
      if (!cf) continue;
      if (static_cast<uint64_t>(cf->GetInt(kCfStart)) <= start_time &&
          static_cast<uint64_t>(cf->GetInt(kCfEnd)) > end_time) {
        if (numberx) *numberx = cf->GetString(kCfNumber);
        return Status::OK();
      }
    }
    return Status::NotFound("no matching forwarding window");
  });
  return g;
}

ActionGraph TatpActionGraphs::UpdateSubscriberData(uint64_t s_id, int64_t bit,
                                                   uint64_t sf_type,
                                                   int64_t data_a) const {
  ActionGraph g(kUpdSubData);
  g.Add(kSubscriber, s_id, [s_id, bit](Table* t, ActionCtx&) {
    Tuple sub;
    ATRAPOS_RETURN_NOT_OK(t->Read(s_id, &sub));
    sub.SetInt(kBit1, bit);
    return t->Update(s_id, sub);
  });
  uint64_t sf_key = TatpEncodeSfKey(s_id, sf_type);
  g.Add(kSpecialFacility, sf_key, [sf_key, data_a](Table* t, ActionCtx&) {
    Tuple sf;
    ATRAPOS_RETURN_NOT_OK(t->Read(sf_key, &sf));
    sf.SetInt(kSfDataA, data_a);
    return t->Update(sf_key, sf);
  });
  return g;
}

ActionGraph TatpActionGraphs::UpdateLocation(uint64_t s_id,
                                             int64_t vlr_location) const {
  ActionGraph g(kUpdLocation);
  g.Add(kSubscriber, s_id, [s_id, vlr_location](Table* t, ActionCtx&) {
    Tuple sub;
    ATRAPOS_RETURN_NOT_OK(t->Read(s_id, &sub));
    sub.SetInt(kVlrLoc, vlr_location);
    return t->Update(s_id, sub);
  });
  return g;
}

ActionGraph TatpActionGraphs::InsertCallForwarding(uint64_t s_id,
                                                   uint64_t sf_type,
                                                   uint64_t start_time,
                                                   uint64_t end_time,
                                                   std::string numberx) const {
  ActionGraph g(kInsCallFwd);
  // Spec: the subscriber and an SF row are read first; either miss aborts
  // at the RVP and the insert never runs.
  g.Add(kSubscriber, s_id, [s_id](Table* t, ActionCtx&) {
    Tuple sub;
    return t->Read(s_id, &sub);
  });
  uint64_t sf_key = TatpEncodeSfKey(s_id, sf_type);
  g.Add(kSpecialFacility, sf_key, [sf_key](Table* t, ActionCtx&) {
    Tuple sf;
    return t->Read(sf_key, &sf);
  });
  g.Rvp();
  uint64_t cf_key = TatpEncodeCfKey(s_id, sf_type, start_time);
  g.Add(kCallForwarding, cf_key,
        [s_id, sf_type, start_time, end_time, cf_key,
         numberx = std::move(numberx)](Table* t, ActionCtx&) {
          Tuple cf(&t->schema());
          cf.SetInt(kCfSId, static_cast<int64_t>(s_id));
          cf.SetInt(kCfType, static_cast<int64_t>(sf_type));
          cf.SetInt(kCfStart, static_cast<int64_t>(start_time));
          cf.SetInt(kCfEnd, static_cast<int64_t>(end_time));
          cf.SetString(kCfNumber, numberx);
          return t->Insert(cf_key, cf);
        });
  return g;
}

ActionGraph TatpActionGraphs::DeleteCallForwarding(uint64_t s_id,
                                                   uint64_t sf_type,
                                                   uint64_t start_time) const {
  ActionGraph g(kDelCallFwd);
  g.Add(kSubscriber, s_id, [s_id](Table* t, ActionCtx&) {
    Tuple sub;
    return t->Read(s_id, &sub);
  });
  g.Rvp();
  uint64_t cf_key = TatpEncodeCfKey(s_id, sf_type, start_time);
  g.Add(kCallForwarding, cf_key,
        [cf_key](Table* t, ActionCtx&) { return t->Delete(cf_key); });
  return g;
}

ActionGraph TatpActionGraphs::Mix(Rng& rng) const {
  return Mix(rng, rng.Uniform(subscribers_));
}

ActionGraph TatpActionGraphs::Mix(Rng& rng, uint64_t s_id) const {
  uint64_t sf_type = rng.Uniform(4);
  int draw = static_cast<int>(rng.Uniform(100));
  // Standard mix: 35 / 10 / 35 / 2 / 14 / 2 / 2.
  if (draw < 35) return GetSubscriberData(s_id);
  if (draw < 45)
    return GetNewDestination(s_id, sf_type, rng.Uniform(3) * 8, 1);
  if (draw < 80) return GetAccessData(s_id, rng.Uniform(4));
  if (draw < 82)
    return UpdateSubscriberData(s_id, static_cast<int64_t>(rng.Uniform(2)),
                                sf_type,
                                static_cast<int64_t>(rng.Uniform(256)));
  if (draw < 96)
    return UpdateLocation(s_id,
                          static_cast<int64_t>(rng.Next() % (1ULL << 31)));
  if (draw < 98)
    return InsertCallForwarding(s_id, sf_type, rng.Uniform(4) * 8,
                                rng.Uniform(24) + 8, "555-0199");
  return DeleteCallForwarding(s_id, sf_type, rng.Uniform(4) * 8);
}

}  // namespace atrapos::workload
