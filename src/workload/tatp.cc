#include "workload/tatp.h"

namespace atrapos::workload {

using core::ActionSpec;
using core::OpType;
using core::SyncPointSpec;
using core::TxnClass;
using core::WorkloadSpec;

namespace {

/// Key-domain sizes relative to `subscribers` (aligned domains: the cost
/// model reasons about all four tables in the Subscriber key space scaled
/// by these factors; we expose row counts directly).
WorkloadSpec TatpSkeleton(uint64_t subscribers) {
  WorkloadSpec spec;
  spec.name = "tatp";
  spec.tables = {{"Subscriber", subscribers},
                 {"AccessInfo", subscribers * 4},
                 {"SpecialFacility", subscribers * 4},
                 {"CallForwarding", subscribers * 32}};
  return spec;
}

TxnClass MakeGetSubData() {
  TxnClass c;
  c.name = "GetSubData";
  c.actions = {ActionSpec{kSubscriber, OpType::kRead, 1, 1, 1, true}};
  c.weight = 35;
  return c;
}

TxnClass MakeGetNewDest() {
  TxnClass c;
  c.name = "GetNewDest";
  c.actions = {
      ActionSpec{kSpecialFacility, OpType::kRead, 1, 1, 1, true},
      ActionSpec{kCallForwarding, OpType::kRead, 1.5, 1, 1, true},
  };
  c.sync_points = {SyncPointSpec{{0, 1}, 96}};
  c.weight = 10;
  return c;
}

TxnClass MakeGetAccData() {
  TxnClass c;
  c.name = "GetAccData";
  c.actions = {ActionSpec{kAccessInfo, OpType::kRead, 1, 1, 1, true}};
  c.weight = 35;
  return c;
}

TxnClass MakeUpdSubData() {
  TxnClass c;
  c.name = "UpdSubData";
  c.actions = {
      ActionSpec{kSubscriber, OpType::kUpdate, 1, 1, 1, true},
      ActionSpec{kSpecialFacility, OpType::kUpdate, 1, 1, 1, true},
  };
  c.sync_points = {SyncPointSpec{{0, 1}, 64}};
  c.weight = 2;
  return c;
}

TxnClass MakeUpdLocation() {
  TxnClass c;
  c.name = "UpdLocation";
  c.actions = {ActionSpec{kSubscriber, OpType::kUpdate, 1, 1, 1, true}};
  c.weight = 14;
  return c;
}

TxnClass MakeInsCallFwd() {
  TxnClass c;
  c.name = "InsCallFwd";
  c.actions = {
      ActionSpec{kSubscriber, OpType::kRead, 1, 1, 1, true},
      ActionSpec{kSpecialFacility, OpType::kRead, 1, 1, 1, true},
      ActionSpec{kCallForwarding, OpType::kInsert, 1, 1, 1, true},
  };
  c.sync_points = {SyncPointSpec{{0, 1}, 64}, SyncPointSpec{{1, 2}, 96}};
  c.weight = 2;
  return c;
}

TxnClass MakeDelCallFwd() {
  TxnClass c;
  c.name = "DelCallFwd";
  c.actions = {
      ActionSpec{kSubscriber, OpType::kRead, 1, 1, 1, true},
      ActionSpec{kCallForwarding, OpType::kDelete, 1, 1, 1, true},
  };
  c.sync_points = {SyncPointSpec{{0, 1}, 64}};
  c.weight = 2;
  return c;
}

}  // namespace

core::WorkloadSpec TatpSpec(uint64_t subscribers) {
  WorkloadSpec spec = TatpSkeleton(subscribers);
  spec.classes = {MakeGetSubData(), MakeGetNewDest(), MakeGetAccData(),
                  MakeUpdSubData(), MakeUpdLocation(), MakeInsCallFwd(),
                  MakeDelCallFwd()};
  return spec;
}

core::WorkloadSpec TatpSingleTxnSpec(TatpTxn txn, uint64_t subscribers) {
  WorkloadSpec spec = TatpSpec(subscribers);
  for (size_t i = 0; i < spec.classes.size(); ++i)
    spec.classes[i].weight = (static_cast<int>(i) == txn) ? 1.0 : 0.0;
  spec.name = "tatp-" + spec.classes[static_cast<size_t>(txn)].name;
  return spec;
}

std::vector<std::unique_ptr<storage::Table>> BuildTatpTables(
    uint64_t subscribers, std::vector<uint64_t> boundaries, uint64_t seed) {
  using storage::Column;
  using storage::Schema;
  using storage::Table;
  using storage::Tuple;
  Rng rng(seed);
  std::vector<std::unique_ptr<Table>> tables;

  // Subscriber(s_id, sub_nbr, bits, hex, byte2, msc_location, vlr_location)
  Schema sub_schema({Column::Int64("s_id"), Column::FixedString("sub_nbr", 16),
                     Column::Int64("bit_1"), Column::Int64("hex_1"),
                     Column::Int64("byte2_1"), Column::Int64("msc_location"),
                     Column::Int64("vlr_location")});
  auto sub = std::make_unique<Table>(kSubscriber, "Subscriber", sub_schema,
                                     boundaries);
  for (uint64_t s = 0; s < subscribers; ++s) {
    Tuple t(&sub->schema());
    t.SetInt(0, static_cast<int64_t>(s));
    t.SetString(1, std::to_string(s));
    t.SetInt(2, static_cast<int64_t>(rng.Uniform(2)));
    t.SetInt(3, static_cast<int64_t>(rng.Uniform(16)));
    t.SetInt(4, static_cast<int64_t>(rng.Uniform(256)));
    t.SetInt(5, static_cast<int64_t>(rng.Next() % (1ULL << 31)));
    t.SetInt(6, static_cast<int64_t>(rng.Next() % (1ULL << 31)));
    (void)sub->Insert(s, t);
  }
  tables.push_back(std::move(sub));

  // AccessInfo(s_id, ai_type, data1, data2, data3, data4): 1-4 per sub.
  Schema ai_schema({Column::Int64("s_id"), Column::Int64("ai_type"),
                    Column::Int64("data1"), Column::Int64("data2"),
                    Column::FixedString("data3", 4),
                    Column::FixedString("data4", 8)});
  std::vector<uint64_t> scaled;
  for (uint64_t b : boundaries) scaled.push_back(b * 4);
  auto ai = std::make_unique<Table>(kAccessInfo, "AccessInfo", ai_schema,
                                    scaled);
  for (uint64_t s = 0; s < subscribers; ++s) {
    uint64_t n = 1 + rng.Uniform(4);
    for (uint64_t k = 0; k < n; ++k) {
      Tuple t(&ai->schema());
      t.SetInt(0, static_cast<int64_t>(s));
      t.SetInt(1, static_cast<int64_t>(k));
      t.SetInt(2, static_cast<int64_t>(rng.Uniform(256)));
      t.SetInt(3, static_cast<int64_t>(rng.Uniform(256)));
      (void)ai->Insert(TatpEncodeAiKey(s, k), t);
    }
  }
  tables.push_back(std::move(ai));

  // SpecialFacility(s_id, sf_type, is_active, error_cntrl, data_a, data_b).
  Schema sf_schema({Column::Int64("s_id"), Column::Int64("sf_type"),
                    Column::Int64("is_active"), Column::Int64("error_cntrl"),
                    Column::Int64("data_a"), Column::FixedString("data_b", 8)});
  auto sf = std::make_unique<Table>(kSpecialFacility, "SpecialFacility",
                                    sf_schema, scaled);
  std::vector<std::vector<uint64_t>> sf_types(subscribers);
  for (uint64_t s = 0; s < subscribers; ++s) {
    uint64_t n = 1 + rng.Uniform(4);
    for (uint64_t k = 0; k < n; ++k) {
      Tuple t(&sf->schema());
      t.SetInt(0, static_cast<int64_t>(s));
      t.SetInt(1, static_cast<int64_t>(k));
      t.SetInt(2, rng.Chance(0.85) ? 1 : 0);
      t.SetInt(4, static_cast<int64_t>(rng.Uniform(256)));
      (void)sf->Insert(TatpEncodeSfKey(s, k), t);
      sf_types[s].push_back(k);
    }
  }
  tables.push_back(std::move(sf));

  // CallForwarding(s_id, sf_type, start_time, end_time, numberx): 0-3 per SF.
  Schema cf_schema({Column::Int64("s_id"), Column::Int64("sf_type"),
                    Column::Int64("start_time"), Column::Int64("end_time"),
                    Column::FixedString("numberx", 16)});
  std::vector<uint64_t> cf_scaled;
  for (uint64_t b : boundaries) cf_scaled.push_back(b * 32);
  auto cf = std::make_unique<Table>(kCallForwarding, "CallForwarding",
                                    cf_schema, cf_scaled);
  for (uint64_t s = 0; s < subscribers; ++s) {
    for (uint64_t k : sf_types[s]) {
      uint64_t n = rng.Uniform(4);
      for (uint64_t j = 0; j < n; ++j) {
        uint64_t start = j * 8;
        Tuple t(&cf->schema());
        t.SetInt(0, static_cast<int64_t>(s));
        t.SetInt(1, static_cast<int64_t>(k));
        t.SetInt(2, static_cast<int64_t>(start));
        t.SetInt(3, static_cast<int64_t>(start + 1 + rng.Uniform(8)));
        t.SetString(4, std::to_string(rng.Next() % 1000000));
        (void)cf->Insert(TatpEncodeCfKey(s, k, start), t);
      }
    }
  }
  tables.push_back(std::move(cf));
  return tables;
}

}  // namespace atrapos::workload
