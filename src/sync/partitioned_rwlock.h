// NUMA-aware partitioned read/write lock (paper §IV, "Shared locks") — the
// real-thread counterpart of sim::PartitionedRWLock.
//
// One reader/writer lock per socket. The critical-path operation, a shared
// (read) acquire, touches only the calling thread's socket-local lock, so
// it never drags cache lines across the interconnect and contends only with
// threads of the same socket. Exclusive (write) acquires — background tasks
// like checkpointing — take every per-socket lock in order.
//
// Each per-socket lock is padded to its own cache line to prevent false
// sharing between sockets.
#pragma once

#include <memory>
#include <shared_mutex>
#include <vector>

#include "hw/binding.h"
#include "hw/topology.h"

namespace atrapos::sync {

class PartitionedRWLock {
 public:
  explicit PartitionedRWLock(int num_sockets);

  /// Shared acquire on the caller's socket partition (from thread-local
  /// placement; socket 0 if the thread was never bound).
  void LockShared();
  void UnlockShared();
  /// Shared acquire on an explicit socket (for engines managing placement
  /// themselves).
  void LockShared(hw::SocketId s);
  void UnlockShared(hw::SocketId s);

  /// Exclusive acquire: grabs all per-socket locks in ascending order
  /// (deadlock-free by global order).
  void LockExclusive();
  void UnlockExclusive();

  int num_partitions() const { return static_cast<int>(locks_.size()); }

 private:
  struct alignas(64) PaddedLock {
    std::shared_mutex mu;
  };
  hw::SocketId CallerSocket() const;
  std::vector<std::unique_ptr<PaddedLock>> locks_;
};

/// RAII shared guard.
class SharedGuard {
 public:
  explicit SharedGuard(PartitionedRWLock& l) : l_(&l) { l_->LockShared(); }
  ~SharedGuard() { l_->UnlockShared(); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  PartitionedRWLock* l_;
};

/// RAII exclusive guard.
class ExclusiveGuard {
 public:
  explicit ExclusiveGuard(PartitionedRWLock& l) : l_(&l) {
    l_->LockExclusive();
  }
  ~ExclusiveGuard() { l_->UnlockExclusive(); }
  ExclusiveGuard(const ExclusiveGuard&) = delete;
  ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

 private:
  PartitionedRWLock* l_;
};

}  // namespace atrapos::sync
