#include "sync/partitioned_rwlock.h"

namespace atrapos::sync {

PartitionedRWLock::PartitionedRWLock(int num_sockets) {
  locks_.reserve(static_cast<size_t>(num_sockets));
  for (int i = 0; i < num_sockets; ++i)
    locks_.push_back(std::make_unique<PaddedLock>());
}

hw::SocketId PartitionedRWLock::CallerSocket() const {
  hw::SocketId s = hw::CurrentPlacement().socket;
  if (s < 0 || s >= static_cast<hw::SocketId>(locks_.size())) s = 0;
  return s;
}

void PartitionedRWLock::LockShared() { LockShared(CallerSocket()); }
void PartitionedRWLock::UnlockShared() { UnlockShared(CallerSocket()); }

void PartitionedRWLock::LockShared(hw::SocketId s) {
  locks_[static_cast<size_t>(s)]->mu.lock_shared();
}
void PartitionedRWLock::UnlockShared(hw::SocketId s) {
  locks_[static_cast<size_t>(s)]->mu.unlock_shared();
}

void PartitionedRWLock::LockExclusive() {
  for (auto& l : locks_) l->mu.lock();
}
void PartitionedRWLock::UnlockExclusive() {
  for (auto it = locks_.rbegin(); it != locks_.rend(); ++it)
    (*it)->mu.unlock();
}

}  // namespace atrapos::sync
