// Lightweight workload monitoring (paper §V-D).
//
// Each partition owns small fixed-size arrays — one cost counter and one
// synchronization counter per sub-partition (10 sub-partitions by default).
// Workers write only their own partition's arrays (thread-local by the
// data-oriented execution design), so monitoring adds no inter-socket
// accesses in the critical path. A monitoring thread periodically harvests
// all arrays into a WorkloadStats, and the traces are discarded after each
// computation.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/stats.h"
#include "obs/histogram.h"

namespace atrapos::core {

constexpr int kDefaultSubPartitions = 10;

/// Per-partition trace arrays. One worker writes each array
/// (data-oriented execution) while the harvest thread reads and resets it
/// concurrently. The bins delegate to obs::AtomicDoubleBins /
/// obs::AtomicCountBins (the registry's shared cell implementation):
/// writers fetch_add with release ordering and the harvest reads with
/// acquire, so a harvest that observed a batch's completion also observes
/// that batch's cost updates — the all-relaxed bins this replaces could
/// legally return stale costs on another core. The only remaining
/// imprecision is benign: an action recorded between the harvester's read
/// and its Reset is dropped with the discarded trace.
class PartitionMonitor {
 public:
  /// Floor for a recorded per-action cost: a sub-partition that executed
  /// actions must never show zero cost (the scheme search would treat it
  /// as idle), but measured microseconds are otherwise recorded honestly —
  /// this replaces the executor's old hidden `us + 1.0` fudge.
  static constexpr double kMinActionCost = 1e-3;

  PartitionMonitor(uint64_t start_key, uint64_t end_key,
                   int num_subs = kDefaultSubPartitions);

  /// Records `cost` units of work for the action that touched `key`,
  /// clamped up to kMinActionCost.
  void RecordAction(uint64_t key, double cost) {
    cost_.Add(SubOf(key), ClampCost(cost));
  }

  /// Thread-local tally of one drained batch: the worker counts which
  /// sub-partitions its actions touched (plain increments, no atomics, no
  /// clock reads), then flushes once per batch with RecordBatch. Bound to
  /// the monitor it was created from.
  class BatchTally {
   public:
    explicit BatchTally(const PartitionMonitor& m)
        : monitor_(&m), counts_(m.cost_.size(), 0) {}

    void Touch(uint64_t key) { ++counts_[monitor_->SubOf(key)]; }

   private:
    friend class PartitionMonitor;
    const PartitionMonitor* monitor_;
    std::vector<uint64_t> counts_;
  };

  /// Flushes a batch tally: every touched sub-partition gets
  /// `count * max(cost_per_action, kMinActionCost)` in one fetch_add —
  /// monitoring cost scales with batches and touched bins, not actions.
  /// Clears the tally for reuse. The tally must have been created from
  /// this monitor.
  void RecordBatch(BatchTally* tally, double cost_per_action);

  /// Records one synchronization-point participation for `key`.
  void RecordSync(uint64_t key) { syncs_.Add(SubOf(key)); }

  uint64_t start_key() const { return start_; }
  uint64_t end_key() const { return end_; }
  int num_subs() const { return static_cast<int>(cost_.size()); }
  /// Fence key of sub-partition `i`.
  uint64_t sub_start(size_t i) const {
    return start_ + span_ * i / cost_.size();
  }
  // Snapshot reads: acquire-paired with the recorders' release adds.
  double sub_cost(size_t i) const { return cost_.Read(i); }
  uint64_t sub_syncs(size_t i) const { return syncs_.Read(i); }
  double TotalCost() const;

  /// Clears the arrays (after every aggregation — traces are discarded).
  void Reset();

 private:
  static double ClampCost(double cost) {
    return cost > kMinActionCost ? cost : kMinActionCost;
  }

  size_t SubOf(uint64_t key) const {
    if (key <= start_) return 0;
    if (key >= end_) return cost_.size() - 1;
    return static_cast<size_t>((key - start_) * cost_.size() / span_);
  }

  uint64_t start_, end_, span_;
  obs::AtomicDoubleBins cost_;
  obs::AtomicCountBins syncs_;
};

/// Builds a WorkloadStats from harvested partition monitors.
class MonitorAggregator {
 public:
  explicit MonitorAggregator(size_t num_tables, size_t num_classes);

  /// Folds one partition's arrays in (and leaves resetting to the caller).
  void AddPartition(int table, const PartitionMonitor& pm);

  void AddClassCount(int cls, double count) {
    class_counts_[static_cast<size_t>(cls)] += count;
  }

  /// Produces the stats; sub bins are sorted per table.
  WorkloadStats Build(double window_seconds) const;

 public:
  /// Merges adjacent bins so no table carries more than `max_bins` —
  /// harvests from many partitions (10 sub-partitions each) otherwise make
  /// the search quadratically slow for no added signal.
  static void Coarsen(WorkloadStats* stats, size_t max_bins = 160);

 private:
  struct Bin {
    uint64_t start;
    double cost;
  };
  std::vector<std::vector<Bin>> bins_;
  std::vector<double> class_counts_;
};

}  // namespace atrapos::core
