// Dynamic workload statistics consumed by the cost model (paper §V-A,
// "Dynamic workload information"): per-sub-partition observed cost and
// per-class execution frequencies. Produced by aggregating the per-partition
// Monitor arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "core/flow_graph.h"

namespace atrapos::core {

/// Observed load of one table at sub-partition granularity. `sub_starts`
/// are fence keys of the observation bins; `sub_cost` is the execution cost
/// (cycle or microsecond units — the model only needs proportions)
/// accumulated per bin during the monitoring window.
struct TableLoadStats {
  std::vector<uint64_t> sub_starts;
  std::vector<double> sub_cost;

  double Total() const {
    double t = 0;
    for (double c : sub_cost) t += c;
    return t;
  }
};

/// Aggregated statistics for one monitoring window.
struct WorkloadStats {
  std::vector<TableLoadStats> tables;   ///< by table index
  std::vector<double> class_counts;     ///< executions per class
  double window_seconds = 1.0;

  double TotalLoad() const {
    double t = 0;
    for (const auto& tl : tables) t += tl.Total();
    return t;
  }
};

}  // namespace atrapos::core
