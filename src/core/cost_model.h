// The ATraPos cost model (paper §V-B).
//
// Two metrics guide the search:
//
//   RU(S,W) = sum_c | RU(c) - RU_avg |           (resource-utilization
//     imbalance; RU(c) = sum of the costs of all actions hitting the
//     partitions placed on core c)
//
//   TS(S,W) = sum_T sum_s C(s)                   (synchronization overhead)
//     C(s)    = (nsocket(s) - 1) * Data(s)
//     Data(s) = Distance(s) * Size(s)
//
// nsocket(s) and Distance(s) for a candidate scheme are estimated from the
// static flow graphs plus the observed key distribution: aligned actions of
// a sync point touch the partitions covering the same key; unaligned
// actions touch partitions at random, weighted by observed load.
#pragma once

#include "core/flow_graph.h"
#include "core/scheme.h"
#include "core/stats.h"
#include "hw/topology.h"

namespace atrapos::core {

class CostModel {
 public:
  CostModel(const hw::Topology* topo, const WorkloadSpec* spec)
      : topo_(topo), spec_(spec) {}

  /// Resource-utilization imbalance RU(S,W): lower is better, 0 is perfect.
  double ResourceImbalance(const Scheme& s, const WorkloadStats& w) const;

  /// Per-core utilization vector RU(c) (for diagnostics and benches).
  std::vector<double> CoreUtilization(const Scheme& s,
                                      const WorkloadStats& w) const;

  /// Transaction-synchronization overhead TS(S,W): lower is better.
  double SyncCost(const Scheme& s, const WorkloadStats& w) const;

  /// Expected cost of one synchronization point of one class under `s`.
  double SyncPointCost(const Scheme& s, const WorkloadStats& w, int cls,
                       int sp) const;

  const hw::Topology& topology() const { return *topo_; }
  const WorkloadSpec& spec() const { return *spec_; }

 private:
  /// Probability weight of socket k for an unaligned action on a table
  /// with `rows` rows (fraction of observed load served by partitions
  /// placed on socket k).
  std::vector<double> SocketWeights(const TableScheme& ts,
                                    const TableLoadStats& tl,
                                    uint64_t rows) const;

  const hw::Topology* topo_;
  const WorkloadSpec* spec_;
};

}  // namespace atrapos::core
