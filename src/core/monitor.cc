#include "core/monitor.h"

#include <algorithm>
#include <cassert>

namespace atrapos::core {

PartitionMonitor::PartitionMonitor(uint64_t start_key, uint64_t end_key,
                                   int num_subs)
    : start_(start_key),
      end_(end_key),
      span_(end_key > start_key ? end_key - start_key : 1),
      cost_(static_cast<size_t>(num_subs)),
      syncs_(static_cast<size_t>(num_subs)) {
  assert(num_subs >= 1);
  Reset();
}

void PartitionMonitor::RecordBatch(BatchTally* tally, double cost_per_action) {
  assert(tally->monitor_ == this);
  double per = ClampCost(cost_per_action);
  for (size_t i = 0; i < tally->counts_.size(); ++i) {
    if (tally->counts_[i] == 0) continue;
    cost_.Add(i, per * static_cast<double>(tally->counts_[i]));
    tally->counts_[i] = 0;
  }
}

double PartitionMonitor::TotalCost() const {
  double t = 0;
  for (size_t i = 0; i < cost_.size(); ++i) t += cost_.Read(i);
  return t;
}

void PartitionMonitor::Reset() {
  cost_.Reset();
  syncs_.Reset();
}

MonitorAggregator::MonitorAggregator(size_t num_tables, size_t num_classes)
    : bins_(num_tables), class_counts_(num_classes, 0.0) {}

void MonitorAggregator::AddPartition(int table, const PartitionMonitor& pm) {
  auto& tb = bins_[static_cast<size_t>(table)];
  for (size_t i = 0; i < static_cast<size_t>(pm.num_subs()); ++i) {
    tb.push_back(Bin{pm.sub_start(i), pm.sub_cost(i)});
  }
}

void MonitorAggregator::Coarsen(WorkloadStats* stats, size_t max_bins) {
  for (auto& tl : stats->tables) {
    size_t n = tl.sub_starts.size();
    if (n <= max_bins) continue;
    size_t group = (n + max_bins - 1) / max_bins;
    std::vector<uint64_t> starts;
    std::vector<double> costs;
    for (size_t i = 0; i < n; i += group) {
      starts.push_back(tl.sub_starts[i]);
      double c = 0;
      for (size_t j = i; j < std::min(n, i + group); ++j) c += tl.sub_cost[j];
      costs.push_back(c);
    }
    tl.sub_starts = std::move(starts);
    tl.sub_cost = std::move(costs);
  }
}

WorkloadStats MonitorAggregator::Build(double window_seconds) const {
  WorkloadStats out;
  out.window_seconds = window_seconds;
  out.tables.resize(bins_.size());
  for (size_t t = 0; t < bins_.size(); ++t) {
    auto sorted = bins_[t];
    std::sort(sorted.begin(), sorted.end(),
              [](const Bin& a, const Bin& b) { return a.start < b.start; });
    auto& tl = out.tables[t];
    for (const Bin& b : sorted) {
      if (!tl.sub_starts.empty() && tl.sub_starts.back() == b.start) {
        tl.sub_cost.back() += b.cost;  // merged duplicate fence
      } else {
        tl.sub_starts.push_back(b.start);
        tl.sub_cost.push_back(b.cost);
      }
    }
  }
  out.class_counts = class_counts_;
  return out;
}

}  // namespace atrapos::core
