// Repartitioning actions (paper §V-D, "Repartitioning").
//
// Moving from the current scheme to a newly chosen one is expressed as a
// sequence of split and merge actions (a "rearrange" is one split plus one
// merge), plus placement moves. Regular action execution is paused while
// the sequence runs — the paper found interleaving adds unpredictable
// delays — and the partition-local monitoring arrays are reset afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.h"
#include "storage/mrbtree.h"
#include "storage/table.h"
#include "util/status.h"

namespace atrapos::core {

struct RepartitionAction {
  enum class Kind { kSplit, kMerge, kMove };
  Kind kind;
  int table = 0;
  /// kSplit: the new fence key. kMerge: the fence key being removed (the
  /// partition starting at `key` is merged into its left neighbor).
  uint64_t key = 0;
  /// kMove: index of the partition (under the *final* boundaries) and the
  /// core it moves to.
  size_t partition = 0;
  hw::CoreId core = hw::kInvalidCore;
};

/// Computes the split/merge/move sequence that transforms `from` into `to`.
/// Splits are emitted in ascending key order first, then merges in
/// ascending order, then moves — applying them in sequence yields exactly
/// the boundary set and placement of `to`.
std::vector<RepartitionAction> PlanRepartition(const Scheme& from,
                                               const Scheme& to);

/// Applies the physical part (splits/merges) of a plan to one table's
/// multi-rooted B-tree. Placement moves are routing-level and handled by
/// the engine.
Status ApplyToTree(storage::MultiRootedBTree* tree, int table,
                   const std::vector<RepartitionAction>& plan);

/// Table-level counterpart: splits/merges move the index subtrees AND the
/// per-partition heap records together (Rids are rewritten for moved
/// records), so tuple storage follows ownership like subtrees do.
Status ApplyToTable(storage::Table* tbl, int table,
                    const std::vector<RepartitionAction>& plan);

/// Counts by kind (diagnostics; Fig. 9 reports cost per action kind).
struct PlanSummary {
  size_t splits = 0;
  size_t merges = 0;
  size_t moves = 0;
};
PlanSummary Summarize(const std::vector<RepartitionAction>& plan);

}  // namespace atrapos::core
