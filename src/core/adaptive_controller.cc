#include "core/adaptive_controller.h"

#include <algorithm>
#include <cmath>

namespace atrapos::core {

AdaptiveController::AdaptiveController(Options opt)
    : opt_(opt), interval_(opt.initial_interval_s), window_(opt.window) {}

AdaptiveController::Action AdaptiveController::OnMeasurement(
    double throughput) {
  if (window_.size() < 2) {
    // Not enough history to judge stability yet.
    window_.Add(throughput);
    return Action::kContinue;
  }
  double avg = window_.Average();
  window_.Add(throughput);
  double deviation = avg > 0 ? std::abs(throughput - avg) / avg : 0.0;
  if (deviation <= opt_.threshold) {
    interval_ = std::min(interval_ * 2.0, opt_.max_interval_s);
    return Action::kContinue;
  }
  return Action::kEvaluate;
}

void AdaptiveController::OnRepartitioned() {
  interval_ = opt_.initial_interval_s;
  window_.Reset();
}

void AdaptiveController::OnEvaluatedNoChange() {
  // Accept the new throughput level as baseline but stay alert: the window
  // already contains the new measurement; the interval is left unchanged.
  interval_ = std::max(interval_ / 2.0, opt_.initial_interval_s);
}

}  // namespace atrapos::core
