// Transaction flow graphs (paper §V-A, Fig. 7).
//
// Every transaction class is described statically as a set of actions —
// each touching one table — plus synchronization points where actions must
// rendezvous and exchange data. ATraPos derives from this, automatically:
//   a) the number of actions that access each table,
//   b) dependencies between pairs of actions (via foreign keys), and
//   c) the number and shape of synchronization points.
// The dynamic side (how often each class runs, which sub-partitions it
// touches) is captured at runtime by the monitor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atrapos::core {

enum class OpType : uint8_t { kRead, kUpdate, kInsert, kDelete };

inline const char* OpName(OpType op) {
  switch (op) {
    case OpType::kRead: return "R";
    case OpType::kUpdate: return "U";
    case OpType::kInsert: return "I";
    case OpType::kDelete: return "D";
  }
  return "?";
}

/// One action: an operation against one table.
struct ActionSpec {
  int table = 0;        ///< index into WorkloadSpec::tables
  OpType op = OpType::kRead;
  double rows = 1;      ///< average rows touched per execution
  /// Repetition count bounds: fixed actions have lo == hi == 1; the
  /// variable part of TPC-C NewOrder has lo=5, hi=15 ("x(5-15)" in Fig. 7).
  int repeat_lo = 1;
  int repeat_hi = 1;
  /// True when this action's key equals the transaction's routing key
  /// (foreign-key aligned with table 0's key domain). Aligned actions of a
  /// sync point land on co-locatable partitions; unaligned ones (e.g.
  /// TPC-C ITEM/STOCK probes) hit effectively random partitions.
  bool aligned = true;

  double AvgRepeat() const { return (repeat_lo + repeat_hi) / 2.0; }
};

/// A synchronization point: the listed actions exchange `data_bytes`.
struct SyncPointSpec {
  std::vector<int> actions;  ///< indices into TxnClass::actions
  uint64_t data_bytes = 64;
};

/// A parameterized stored procedure (paper: all transactions fall into
/// predefined classes).
struct TxnClass {
  std::string name;
  std::vector<ActionSpec> actions;
  std::vector<SyncPointSpec> sync_points;
  double weight = 1.0;  ///< share in the workload mix

  /// Static info (a): actions per table.
  std::vector<int> ActionsPerTable(int num_tables) const {
    std::vector<int> n(static_cast<size_t>(num_tables), 0);
    for (const auto& a : actions) ++n[static_cast<size_t>(a.table)];
    return n;
  }
};

struct TableSpec {
  std::string name;
  uint64_t num_rows = 0;
};

/// A complete workload description: schema-level table list + classes.
struct WorkloadSpec {
  std::string name;
  std::vector<TableSpec> tables;
  std::vector<TxnClass> classes;

  double TotalWeight() const {
    double w = 0;
    for (const auto& c : classes) w += c.weight;
    return w;
  }
};

/// Renders a transaction flow graph in the style of the paper's Fig. 7
/// (used by bench/fig07_flowgraph).
std::string RenderFlowGraph(const WorkloadSpec& spec, const TxnClass& cls);

}  // namespace atrapos::core
