// Adaptive monitoring-interval controller (paper §V-D, §VI-D4).
//
// ATraPos starts with a 1-second monitoring interval. When throughput stays
// within 10% of the average of the previous 5 measurements, the interval
// doubles (up to 8 s). When the deviation exceeds the threshold, the cost
// model is evaluated; if that leads to repartitioning, the interval resets
// to 1 s so the system stays alert while the workload is in flux.
#pragma once

#include <cstddef>

#include "util/stats.h"

namespace atrapos::core {

class AdaptiveController {
 public:
  struct Options {
    double initial_interval_s = 1.0;
    double max_interval_s = 8.0;
    double threshold = 0.10;  ///< relative throughput deviation
    size_t window = 5;        ///< previous measurements to average
  };

  enum class Action {
    kContinue,  ///< stable — keep (possibly lengthened) interval
    kEvaluate,  ///< deviation exceeded — evaluate the cost model
  };

  AdaptiveController() : AdaptiveController(Options{}) {}
  explicit AdaptiveController(Options opt);

  /// Feeds one end-of-interval throughput measurement.
  Action OnMeasurement(double throughput);

  /// The engine repartitioned: reset to the initial interval and restart
  /// the stability window.
  void OnRepartitioned();

  /// The evaluation decided the current scheme is still best: treat the
  /// new level as the baseline going forward.
  void OnEvaluatedNoChange();

  double interval_s() const { return interval_; }

 private:
  Options opt_;
  double interval_;
  SlidingWindow window_;
};

}  // namespace atrapos::core
