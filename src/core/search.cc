#include "core/search.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace atrapos::core {

namespace {

/// Work list entry used during partitioning: one observed sub-partition.
struct Sub {
  int table;
  uint64_t start;
  double cost;
};

/// Assigns each table's partitions to cores round-robin over sockets so
/// every table's partitions are spread evenly ("hardware-oblivious" even
/// spread — Algorithm 2's documented starting point).
void SpreadPlacement(const hw::Topology& topo, Scheme* s) {
  auto cores = topo.AvailableCores();
  size_t next = 0;
  for (auto& ts : s->tables) {
    ts.placement.resize(ts.boundaries.size());
    for (size_t p = 0; p < ts.boundaries.size(); ++p) {
      ts.placement[p] = cores[next % cores.size()];
      ++next;
    }
  }
}

}  // namespace

Scheme NaiveScheme(const hw::Topology& topo,
                   const std::vector<uint64_t>& table_rows) {
  Scheme s;
  auto cores = topo.AvailableCores();
  size_t n = cores.size();
  for (uint64_t rows : table_rows) {
    TableScheme ts;
    ts.boundaries.reserve(n);
    ts.placement.reserve(n);
    for (size_t p = 0; p < n; ++p) {
      ts.boundaries.push_back(rows * p / n);
      ts.placement.push_back(cores[p]);
    }
    // Deduplicate any equal boundaries (tiny tables on many cores).
    for (size_t p = 1; p < ts.boundaries.size();) {
      if (ts.boundaries[p] == ts.boundaries[p - 1]) {
        ts.boundaries.erase(ts.boundaries.begin() + static_cast<long>(p));
        ts.placement.erase(ts.placement.begin() + static_cast<long>(p));
      } else {
        ++p;
      }
    }
    s.tables.push_back(std::move(ts));
  }
  return s;
}

std::string Scheme::ToString() const {
  std::string out;
  for (size_t t = 0; t < tables.size(); ++t) {
    out += "table " + std::to_string(t) + ": ";
    for (size_t p = 0; p < tables[t].boundaries.size(); ++p) {
      out += "[" + std::to_string(tables[t].boundaries[p]) + "@c" +
             std::to_string(tables[t].placement[p]) + "] ";
    }
    out += "\n";
  }
  return out;
}

Scheme ChoosePartitioning(const CostModel& model, const WorkloadStats& stats,
                          const SearchOptions& opts) {
  const hw::Topology& topo = model.topology();
  auto cores = topo.AvailableCores();
  size_t ncores = cores.size();
  size_t ntables = model.spec().tables.size();

  // Per-table sub-partition lists from the observations.
  std::vector<std::vector<Sub>> subs(ntables);
  double total_cost = 0;
  for (size_t t = 0; t < ntables && t < stats.tables.size(); ++t) {
    const TableLoadStats& tl = stats.tables[t];
    for (size_t i = 0; i < tl.sub_starts.size(); ++i) {
      subs[t].push_back(
          Sub{static_cast<int>(t), tl.sub_starts[i], tl.sub_cost[i]});
      total_cost += tl.sub_cost[i];
    }
  }

  // Greedy initial packing: walk tables' subs in key order, filling one
  // core's budget (the target average utilization) at a time. Each table
  // starts a new partition whenever the core advances.
  double target = ncores > 0 ? total_cost / static_cast<double>(ncores) : 0;
  // part_of[t][i] = partition ordinal of sub i of table t.
  std::vector<std::vector<int>> part_of(ntables);
  std::vector<int> parts_per_table(ntables, 0);
  size_t core_idx = 0;
  double core_load = 0;
  for (size_t t = 0; t < ntables; ++t) {
    part_of[t].resize(subs[t].size(), 0);
    if (subs[t].empty()) continue;
    int cur_part = parts_per_table[t]++;
    for (size_t i = 0; i < subs[t].size(); ++i) {
      if (core_load >= target - 1e-9 && core_idx + 1 < ncores && i > 0) {
        ++core_idx;
        core_load = 0;
        cur_part = parts_per_table[t]++;
      }
      part_of[t][i] = cur_part;
      core_load += subs[t][i].cost;
    }
    // A table boundary also advances the core so unrelated tables do not
    // share the greedy bucket unless the improvement loop decides so.
    if (core_idx + 1 < ncores && core_load > 0.5 * target) {
      ++core_idx;
      core_load = 0;
    }
  }

  // Materialize a Scheme from part_of (boundaries snap to sub starts).
  auto materialize = [&]() {
    Scheme s;
    s.tables.resize(ntables);
    for (size_t t = 0; t < ntables; ++t) {
      TableScheme& ts = s.tables[t];
      if (subs[t].empty()) {
        ts.boundaries = {0};
        continue;
      }
      int prev = -1;
      for (size_t i = 0; i < subs[t].size(); ++i) {
        if (part_of[t][i] != prev) {
          ts.boundaries.push_back(i == 0 ? 0 : subs[t][i].start);
          prev = part_of[t][i];
        }
      }
    }
    SpreadPlacement(topo, &s);
    return s;
  };

  Scheme best = materialize();
  double best_ru = model.ResourceImbalance(best, stats);

  // Iterative improvement: move one sub-partition across the boundary of
  // adjacent partitions of the same table (grow the partition on the more
  // under-utilized side), keep when RU improves. This is Algorithm 1's
  // "move a sub-partition to c" specialized to range partitioning, where
  // only boundary-adjacent moves preserve contiguous key ranges.
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    bool improved = false;
    for (size_t t = 0; t < ntables && !improved; ++t) {
      if (subs[t].size() < 2) continue;
      for (size_t i = 1; i < subs[t].size() && !improved; ++i) {
        if (part_of[t][i] == part_of[t][i - 1]) continue;
        // Try moving sub i to the left partition...
        for (int dir = 0; dir < 2 && !improved; ++dir) {
          std::vector<int> saved = part_of[t];
          if (dir == 0) {
            part_of[t][i] = part_of[t][i - 1];
            // keep contiguity: nothing else to do (single sub moves left)
          } else {
            part_of[t][i - 1] = part_of[t][i];
          }
          Scheme cand = materialize();
          double ru = model.ResourceImbalance(cand, stats);
          if (ru + opts.min_gain < best_ru) {
            best_ru = ru;
            best = std::move(cand);
            improved = true;
          } else {
            part_of[t] = std::move(saved);
          }
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

Scheme ChoosePlacement(const CostModel& model, const WorkloadStats& stats,
                       Scheme scheme, const SearchOptions& opts) {
  double best_ts = model.SyncCost(scheme, stats);
  if (best_ts <= 0) return scheme;

  // Candidate moves: swap the cores of two partitions (of any tables).
  // Swapping keeps the per-core partition count intact, so RU changes stay
  // bounded while TS can drop when dependent partitions land together.
  // The evaluation budget bounds decision latency; the scan restarts after
  // every accepted swap, so the budget limits total work, not quality of
  // individual moves.
  int evals = 0;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    bool improved = false;
    for (size_t t1 = 0; t1 < scheme.tables.size() && !improved; ++t1) {
      auto& a = scheme.tables[t1];
      for (size_t p1 = 0; p1 < a.placement.size() && !improved; ++p1) {
        for (size_t t2 = t1; t2 < scheme.tables.size() && !improved; ++t2) {
          auto& b = scheme.tables[t2];
          size_t p2_start = t1 == t2 ? p1 + 1 : 0;
          for (size_t p2 = p2_start; p2 < b.placement.size() && !improved;
               ++p2) {
            if (a.placement[p1] == b.placement[p2]) continue;
            if (++evals > opts.max_evaluations) return scheme;
            std::swap(a.placement[p1], b.placement[p2]);
            double ts = model.SyncCost(scheme, stats);
            if (ts + opts.min_gain < best_ts) {
              best_ts = ts;
              improved = true;  // keep and restart scan
            } else {
              std::swap(a.placement[p1], b.placement[p2]);
            }
          }
        }
      }
    }
    if (!improved) break;
  }
  return scheme;
}

}  // namespace atrapos::core
