// A partitioning-and-placement scheme S (paper §V-B): for every table, the
// fence keys of its logical partitions and the core each partition is
// assigned to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/topology.h"

namespace atrapos::core {

/// One table's partitioning: partition i serves [boundaries[i],
/// boundaries[i+1]) and runs on core placement[i].
struct TableScheme {
  std::vector<uint64_t> boundaries;  ///< sorted, boundaries[0] == 0
  std::vector<hw::CoreId> placement;

  size_t num_partitions() const { return boundaries.size(); }
  size_t PartitionOf(uint64_t key) const {
    size_t lo = 0, hi = boundaries.size();
    while (hi - lo > 1) {
      size_t mid = (lo + hi) / 2;
      if (boundaries[mid] <= key)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }
};

struct Scheme {
  std::vector<TableScheme> tables;

  std::string ToString() const;
};

/// The naive hardware-aware scheme of §IV: every table range-partitioned
/// into one partition per available core, partition i of every table on
/// core i. (This is also PLP's standard partitioning.)
Scheme NaiveScheme(const hw::Topology& topo,
                   const std::vector<uint64_t>& table_rows);

}  // namespace atrapos::core
