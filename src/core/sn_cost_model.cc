#include "core/sn_cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace atrapos::core {

void SharedNothingCostModel::ClassSpanProbabilities(const Scheme& s,
                                                    const WorkloadStats& /*w*/,
                                                    int cls, double* p_multi,
                                                    double* p_multi_near) const {
  const hw::Topology& topo = model_.topology();
  const WorkloadSpec& spec = model_.spec();
  const TxnClass& c = spec.classes[static_cast<size_t>(cls)];
  int sockets = topo.num_sockets();
  *p_multi = 0;
  *p_multi_near = 0;
  if (sockets <= 1 || c.actions.empty()) return;

  // Aligned actions all follow the routing key; unaligned actions pick
  // instances weighted by observed load. A transaction is single-site when
  // every action lands on the aligned "home" instance.
  // P(all unaligned picks hit the home instance) summed over homes.
  double p_single = 0;
  double p_span_near = 0;  // multi-instance but all within 1 hop
  for (int home = 0; home < sockets; ++home) {
    // Probability the routing key's aligned partition chain sits on `home`:
    // approximate with the aligned tables' load share on that socket.
    double p_home = 1.0 / sockets;
    double p_rest_local = 1.0;
    double p_rest_near = 1.0;
    for (const auto& a : c.actions) {
      if (a.aligned) continue;
      const TableScheme& ts = s.tables[static_cast<size_t>(a.table)];
      // Load-weighted socket distribution of this action's partitions.
      double local = 0, near = 0, total = 0;
      for (size_t p = 0; p < ts.num_partitions(); ++p) {
        hw::SocketId sk = topo.socket_of(ts.placement[p]);
        total += 1.0;
        if (sk == home) local += 1.0;
        if (topo.Distance(sk, home) <= 1) near += 1.0;
      }
      if (total == 0) continue;
      double reps = a.AvgRepeat() * std::max(1.0, a.rows);
      p_rest_local *= std::pow(local / total, reps);
      p_rest_near *= std::pow(near / total, reps);
    }
    p_single += p_home * p_rest_local;
    p_span_near += p_home * (p_rest_near - p_rest_local);
  }
  *p_multi = std::clamp(1.0 - p_single, 0.0, 1.0);
  *p_multi_near = std::clamp(p_span_near, 0.0, *p_multi);
}

double SharedNothingCostModel::DistributedFraction(
    const Scheme& s, const WorkloadStats& w) const {
  const WorkloadSpec& spec = model_.spec();
  double total = 0, dist = 0;
  for (size_t cls = 0; cls < spec.classes.size(); ++cls) {
    double count = cls < w.class_counts.size() ? w.class_counts[cls] : 0;
    if (count <= 0) continue;
    double p_multi = 0, p_near = 0;
    ClassSpanProbabilities(s, w, static_cast<int>(cls), &p_multi, &p_near);
    total += count;
    dist += count * p_multi;
  }
  return total > 0 ? dist / total : 0.0;
}

double SharedNothingCostModel::DistributedCost(const Scheme& s,
                                               const WorkloadStats& w) const {
  const WorkloadSpec& spec = model_.spec();
  double cost = 0;
  for (size_t cls = 0; cls < spec.classes.size(); ++cls) {
    double count = cls < w.class_counts.size() ? w.class_counts[cls] : 0;
    if (count <= 0) continue;
    double p_multi = 0, p_near = 0;
    ClassSpanProbabilities(s, w, static_cast<int>(cls), &p_multi, &p_near);
    double far = p_multi - p_near;
    cost += count * opt_.dist_txn_cost *
            (far + opt_.local_dist_factor * p_near);
  }
  return cost;
}

double SharedNothingCostModel::RepartitionCost(
    const Scheme& from, const Scheme& to,
    const std::vector<uint64_t>& table_rows) const {
  const hw::Topology& topo = model_.topology();
  double moved = 0;
  size_t ntables = std::min(from.tables.size(), to.tables.size());
  for (size_t t = 0; t < ntables; ++t) {
    uint64_t rows = t < table_rows.size() ? table_rows[t] : 0;
    if (rows == 0) continue;
    // Walk the merged boundary set; rows whose owning instance changes
    // must physically move.
    std::set<uint64_t> cuts(from.tables[t].boundaries.begin(),
                            from.tables[t].boundaries.end());
    cuts.insert(to.tables[t].boundaries.begin(),
                to.tables[t].boundaries.end());
    std::vector<uint64_t> cut_list(cuts.begin(), cuts.end());
    for (size_t i = 0; i < cut_list.size(); ++i) {
      uint64_t lo = cut_list[i];
      uint64_t hi = i + 1 < cut_list.size() ? cut_list[i + 1] : rows;
      if (hi <= lo) continue;
      size_t pf = from.tables[t].PartitionOf(lo);
      size_t pt = to.tables[t].PartitionOf(lo);
      hw::SocketId sf = topo.socket_of(from.tables[t].placement[pf]);
      hw::SocketId st = topo.socket_of(to.tables[t].placement[pt]);
      if (sf != st) moved += static_cast<double>(hi - lo);
    }
  }
  return moved * opt_.move_cost_per_row;
}

}  // namespace atrapos::core
