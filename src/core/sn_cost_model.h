// Future-work extension (paper §VII): applying the ATraPos cost model to
// shared-nothing architectures.
//
// Coarse-grained shared-nothing: data is physically partitioned across
// instances, so the primary cost becomes the *distributed transaction*
// (2PC), and repartitioning includes physical data movement between
// instances — much more expensive than logical repartitioning.
//
// Fine-grained shared-nothing: topology-aware systems can detect that all
// participants of a distributed transaction live on one machine and switch
// to a cheaper shared-memory channel; the model then distinguishes the two
// kinds of distributed transactions and prefers schemes that turn expensive
// (cross-machine) ones into cheap (same-machine) ones.
#pragma once

#include "core/cost_model.h"
#include "core/scheme.h"
#include "core/stats.h"
#include "hw/topology.h"

namespace atrapos::core {

struct SnCostOptions {
  /// Cost of one distributed transaction over the generic channel
  /// (arbitrary work units; only ratios matter).
  double dist_txn_cost = 100.0;
  /// Fine-grained topology-aware systems: relative cost of a distributed
  /// transaction whose participants share a machine/socket (shared-memory
  /// channel). 1.0 disables the distinction (coarse-grained model).
  double local_dist_factor = 0.25;
  /// Cost of physically moving one row between instances during
  /// repartitioning.
  double move_cost_per_row = 1.0;
};

/// The shared-nothing flavor of the ATraPos model: instances are sockets;
/// a partition's instance is the socket of its placement core.
class SharedNothingCostModel {
 public:
  SharedNothingCostModel(const hw::Topology* topo, const WorkloadSpec* spec,
                         SnCostOptions opt = {})
      : model_(topo, spec), opt_(opt) {}

  /// Expected fraction of transactions (weighted by class frequency) whose
  /// actions span more than one instance — i.e., must run as distributed
  /// transactions.
  double DistributedFraction(const Scheme& s, const WorkloadStats& w) const;

  /// Expected distributed-transaction cost per unit time under `s`:
  /// cross-machine and same-machine distributed transactions weighted per
  /// SnCostOptions. This is the TS(S,W) analogue of §VII.
  double DistributedCost(const Scheme& s, const WorkloadStats& w) const;

  /// Physical repartitioning cost: rows that change instance between the
  /// two schemes, times move_cost_per_row. (Logical repartitioning inside
  /// one instance is free by comparison.)
  double RepartitionCost(const Scheme& from, const Scheme& to,
                         const std::vector<uint64_t>& table_rows) const;

  /// Resource-utilization imbalance is inherited unchanged from the
  /// shared-everything model (paper: "the resource estimation part of the
  /// model can be used to determine sizes of individual instances").
  double ResourceImbalance(const Scheme& s, const WorkloadStats& w) const {
    return model_.ResourceImbalance(s, w);
  }

  const CostModel& base() const { return model_; }

 private:
  /// Probability that one transaction of class `cls` spans >1 instance,
  /// and (jointly) the probability its span stays within one "machine"
  /// group (for the fine-grained channel distinction, we treat socket
  /// pairs at distance 1 as same-machine).
  void ClassSpanProbabilities(const Scheme& s, const WorkloadStats& w,
                              int cls, double* p_multi,
                              double* p_multi_near) const;

  CostModel model_;
  SnCostOptions opt_;
};

}  // namespace atrapos::core
