#include "core/repartitioner.h"

#include <algorithm>
#include <set>

namespace atrapos::core {

std::vector<RepartitionAction> PlanRepartition(const Scheme& from,
                                               const Scheme& to) {
  std::vector<RepartitionAction> plan;
  size_t ntables = std::min(from.tables.size(), to.tables.size());
  for (size_t t = 0; t < ntables; ++t) {
    std::set<uint64_t> old_b(from.tables[t].boundaries.begin(),
                             from.tables[t].boundaries.end());
    std::set<uint64_t> new_b(to.tables[t].boundaries.begin(),
                             to.tables[t].boundaries.end());
    // Splits: fences to add.
    for (uint64_t k : new_b) {
      if (!old_b.count(k))
        plan.push_back(RepartitionAction{RepartitionAction::Kind::kSplit,
                                         static_cast<int>(t), k, 0,
                                         hw::kInvalidCore});
    }
    // Merges: fences to remove.
    for (uint64_t k : old_b) {
      if (!new_b.count(k) && k != 0)
        plan.push_back(RepartitionAction{RepartitionAction::Kind::kMerge,
                                         static_cast<int>(t), k, 0,
                                         hw::kInvalidCore});
    }
  }
  // Moves: compare placement under the final boundaries.
  for (size_t t = 0; t < ntables; ++t) {
    const TableScheme& nt = to.tables[t];
    const TableScheme& ot = from.tables[t];
    for (size_t p = 0; p < nt.num_partitions(); ++p) {
      // The partition's previous core: whichever old partition covered the
      // new partition's start key.
      size_t op = ot.PartitionOf(nt.boundaries[p]);
      hw::CoreId prev =
          op < ot.placement.size() ? ot.placement[op] : hw::kInvalidCore;
      if (p < nt.placement.size() && nt.placement[p] != prev) {
        plan.push_back(RepartitionAction{RepartitionAction::Kind::kMove,
                                         static_cast<int>(t), 0, p,
                                         nt.placement[p]});
      }
    }
  }
  return plan;
}

namespace {

/// Shared split-then-merge application. `Target` needs Split(p, key) and
/// Merge(p); `part_of` maps a fence key to its current partition ordinal.
/// Splits first (ascending), then merges (ascending): the plan generator
/// emits them in that order already, but re-filtering keeps this safe for
/// hand-built plans.
template <typename Target, typename PartOf>
Status ApplyPlanImpl(Target* target, int table,
                     const std::vector<RepartitionAction>& plan,
                     PartOf part_of) {
  for (const auto& a : plan) {
    if (a.table != table || a.kind != RepartitionAction::Kind::kSplit)
      continue;
    ATRAPOS_RETURN_NOT_OK(target->Split(part_of(a.key), a.key));
  }
  for (const auto& a : plan) {
    if (a.table != table || a.kind != RepartitionAction::Kind::kMerge)
      continue;
    // `key` is the fence being removed: partition p starts at key; merge it
    // into its left neighbor.
    size_t p = part_of(a.key);
    if (p == 0) return Status::InvalidArgument("cannot merge first fence");
    ATRAPOS_RETURN_NOT_OK(target->Merge(p - 1));
  }
  return Status::OK();
}

}  // namespace

Status ApplyToTree(storage::MultiRootedBTree* tree, int table,
                   const std::vector<RepartitionAction>& plan) {
  return ApplyPlanImpl(tree, table, plan,
                       [tree](uint64_t k) { return tree->PartitionOf(k); });
}

Status ApplyToTable(storage::Table* tbl, int table,
                    const std::vector<RepartitionAction>& plan) {
  return ApplyPlanImpl(tbl, table, plan, [tbl](uint64_t k) {
    return tbl->index().PartitionOf(k);
  });
}

PlanSummary Summarize(const std::vector<RepartitionAction>& plan) {
  PlanSummary s;
  for (const auto& a : plan) {
    switch (a.kind) {
      case RepartitionAction::Kind::kSplit: ++s.splits; break;
      case RepartitionAction::Kind::kMerge: ++s.merges; break;
      case RepartitionAction::Kind::kMove: ++s.moves; break;
    }
  }
  return s;
}

}  // namespace atrapos::core
