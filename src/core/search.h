// The two-step search strategy (paper §V-C).
//
// Step 1 — Algorithm 1, "Choose Partitioning": group observed sub-partitions
// into new partitions that balance core utilization. Greedy initial packing
// toward the target average utilization, then iterative improvement: move a
// sub-partition of the same table toward the most under-utilized core and
// keep the move whenever the global RU imbalance improves.
//
// Step 2 — Algorithm 2, "Choose Placement": start from a placement that
// spreads every table's partitions across sockets evenly, then repeatedly
// pick a costly synchronization point and try switching partitions so its
// participants share a socket; keep the switch whenever global TS improves.
#pragma once

#include "core/cost_model.h"
#include "core/scheme.h"
#include "core/stats.h"

namespace atrapos::core {

struct SearchOptions {
  /// Safety valve on the improvement loops.
  int max_iterations = 2000;
  /// Relative improvement below which a move does not count.
  double min_gain = 1e-9;
  /// Budget on cost-model evaluations per search step: the placement
  /// search's swap neighborhood is O(P^2); the budget keeps decisions
  /// fast (the paper's monitoring thread decides in well under a second).
  int max_evaluations = 30000;
};

/// Algorithm 1. Returns the partition boundaries per table (placement is
/// filled with a socket-round-robin default so the result is usable before
/// step 2 runs).
Scheme ChoosePartitioning(const CostModel& model, const WorkloadStats& stats,
                          const SearchOptions& opts = {});

/// Algorithm 2. Takes the scheme from step 1 and optimizes placement
/// in-place; returns the improved scheme.
Scheme ChoosePlacement(const CostModel& model, const WorkloadStats& stats,
                       Scheme scheme, const SearchOptions& opts = {});

/// Convenience: both steps.
inline Scheme ChooseScheme(const CostModel& model, const WorkloadStats& stats,
                           const SearchOptions& opts = {}) {
  return ChoosePlacement(model, stats, ChoosePartitioning(model, stats, opts),
                         opts);
}

}  // namespace atrapos::core
