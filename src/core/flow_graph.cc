#include "core/flow_graph.h"

#include <sstream>

namespace atrapos::core {

std::string RenderFlowGraph(const WorkloadSpec& spec, const TxnClass& cls) {
  std::ostringstream os;
  os << "Transaction flow graph: " << cls.name << "\n";
  os << "  actions:\n";
  for (size_t i = 0; i < cls.actions.size(); ++i) {
    const ActionSpec& a = cls.actions[i];
    os << "    a" << i << ": " << OpName(a.op) << "("
       << spec.tables[static_cast<size_t>(a.table)].name << ")";
    if (a.repeat_hi > 1)
      os << "  x(" << a.repeat_lo << "-" << a.repeat_hi << ")";
    if (!a.aligned) os << "  [unaligned]";
    os << "\n";
  }
  os << "  synchronization points:\n";
  for (size_t s = 0; s < cls.sync_points.size(); ++s) {
    const SyncPointSpec& sp = cls.sync_points[s];
    os << "    s" << s << ": {";
    for (size_t j = 0; j < sp.actions.size(); ++j)
      os << (j ? ", " : "") << "a" << sp.actions[j];
    os << "}  " << sp.data_bytes << " B\n";
  }
  return os.str();
}

}  // namespace atrapos::core
