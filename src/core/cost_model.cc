#include "core/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace atrapos::core {

namespace {

/// Load of key range [lo, hi) under the observed bins, apportioning bins
/// that straddle the range proportionally to key overlap.
double RangeLoad(const TableLoadStats& tl, uint64_t rows, uint64_t lo,
                 uint64_t hi) {
  double total = 0;
  for (size_t i = 0; i < tl.sub_starts.size(); ++i) {
    uint64_t blo = tl.sub_starts[i];
    uint64_t bhi = i + 1 < tl.sub_starts.size() ? tl.sub_starts[i + 1] : rows;
    if (bhi <= blo) continue;
    uint64_t olo = std::max(lo, blo);
    uint64_t ohi = std::min(hi, bhi);
    if (ohi <= olo) continue;
    total += tl.sub_cost[i] * static_cast<double>(ohi - olo) /
             static_cast<double>(bhi - blo);
  }
  return total;
}

}  // namespace

std::vector<double> CostModel::CoreUtilization(const Scheme& s,
                                               const WorkloadStats& w) const {
  std::vector<double> ru(static_cast<size_t>(topo_->num_cores()), 0.0);
  for (size_t t = 0; t < s.tables.size(); ++t) {
    const TableScheme& ts = s.tables[t];
    if (t >= w.tables.size()) continue;
    const TableLoadStats& tl = w.tables[t];
    uint64_t rows = spec_->tables[t].num_rows;
    for (size_t p = 0; p < ts.num_partitions(); ++p) {
      uint64_t lo = ts.boundaries[p];
      uint64_t hi = p + 1 < ts.num_partitions() ? ts.boundaries[p + 1] : rows;
      ru[static_cast<size_t>(ts.placement[p])] += RangeLoad(tl, rows, lo, hi);
    }
  }
  return ru;
}

double CostModel::ResourceImbalance(const Scheme& s,
                                    const WorkloadStats& w) const {
  std::vector<double> ru = CoreUtilization(s, w);
  auto cores = topo_->AvailableCores();
  if (cores.empty()) return 0.0;
  double avg = 0;
  for (hw::CoreId c : cores) avg += ru[static_cast<size_t>(c)];
  avg /= static_cast<double>(cores.size());
  double imb = 0;
  for (hw::CoreId c : cores) imb += std::abs(ru[static_cast<size_t>(c)] - avg);
  return imb;
}

std::vector<double> CostModel::SocketWeights(const TableScheme& ts,
                                             const TableLoadStats& tl,
                                             uint64_t rows) const {
  std::vector<double> w(static_cast<size_t>(topo_->num_sockets()), 0.0);
  if (rows == 0) rows = UINT64_MAX;
  double total = 0;
  std::vector<double> pl(ts.num_partitions(), 0.0);
  for (size_t p = 0; p < ts.num_partitions(); ++p) {
    uint64_t lo = ts.boundaries[p];
    uint64_t hi = p + 1 < ts.num_partitions() ? ts.boundaries[p + 1] : rows;
    pl[p] = RangeLoad(tl, rows, lo, hi);
    total += pl[p];
  }
  if (total <= 0) {
    // No observations: weight uniformly by partition count.
    for (size_t p = 0; p < ts.num_partitions(); ++p) {
      hw::SocketId sk = topo_->socket_of(ts.placement[p]);
      w[static_cast<size_t>(sk)] += 1.0 / static_cast<double>(ts.num_partitions());
    }
    return w;
  }
  for (size_t p = 0; p < ts.num_partitions(); ++p) {
    hw::SocketId sk = topo_->socket_of(ts.placement[p]);
    w[static_cast<size_t>(sk)] += pl[p] / total;
  }
  return w;
}

double CostModel::SyncPointCost(const Scheme& s, const WorkloadStats& w,
                                int cls, int sp) const {
  const TxnClass& c = spec_->classes[static_cast<size_t>(cls)];
  const SyncPointSpec& spec = c.sync_points[static_cast<size_t>(sp)];
  int sockets = topo_->num_sockets();
  if (sockets <= 1) return 0.0;

  // Split participants into aligned and unaligned.
  std::vector<const ActionSpec*> aligned, unaligned;
  for (int ai : spec.actions) {
    const ActionSpec& a = c.actions[static_cast<size_t>(ai)];
    (a.aligned ? aligned : unaligned).push_back(&a);
  }

  // Socket inclusion probability from the unaligned side: an unaligned
  // action with average repeat r draws r independent partitions weighted by
  // observed load.
  std::vector<double> p_not(static_cast<size_t>(sockets), 1.0);
  for (const ActionSpec* a : unaligned) {
    const TableScheme& ts = s.tables[static_cast<size_t>(a->table)];
    const TableLoadStats& tl = w.tables[static_cast<size_t>(a->table)];
    std::vector<double> sw = SocketWeights(
        ts, tl, spec_->tables[static_cast<size_t>(a->table)].num_rows);
    double reps = a->AvgRepeat();
    for (int k = 0; k < sockets; ++k)
      p_not[static_cast<size_t>(k)] *=
          std::pow(1.0 - sw[static_cast<size_t>(k)], reps);
  }

  // Aligned side: iterate over segments of the shared key domain (union of
  // the aligned tables' fence keys), weighted by the observed key density
  // of the first aligned table.
  struct SegmentEval {
    double weight;
    std::vector<int> aligned_sockets;  // deduplicated
  };
  std::vector<SegmentEval> segs;
  if (aligned.empty()) {
    segs.push_back(SegmentEval{1.0, {}});
  } else {
    std::set<uint64_t> cuts;
    for (const ActionSpec* a : aligned) {
      const TableScheme& ts = s.tables[static_cast<size_t>(a->table)];
      cuts.insert(ts.boundaries.begin(), ts.boundaries.end());
    }
    uint64_t domain =
        spec_->tables[static_cast<size_t>(aligned[0]->table)].num_rows;
    if (domain == 0) domain = UINT64_MAX;
    const TableLoadStats& density =
        w.tables[static_cast<size_t>(aligned[0]->table)];
    std::vector<uint64_t> cut_list(cuts.begin(), cuts.end());
    double wtotal = 0;
    for (size_t i = 0; i < cut_list.size(); ++i) {
      uint64_t lo = cut_list[i];
      uint64_t hi = i + 1 < cut_list.size() ? cut_list[i + 1] : domain;
      if (hi <= lo) continue;
      double weight = RangeLoad(density, domain, lo, hi);
      if (weight <= 0)
        weight = static_cast<double>(hi - lo) / static_cast<double>(domain);
      SegmentEval se{weight, {}};
      std::set<int> socks;
      for (const ActionSpec* a : aligned) {
        const TableScheme& ts = s.tables[static_cast<size_t>(a->table)];
        size_t p = ts.PartitionOf(lo);
        socks.insert(topo_->socket_of(ts.placement[p]));
      }
      se.aligned_sockets.assign(socks.begin(), socks.end());
      segs.push_back(std::move(se));
      wtotal += weight;
    }
    for (auto& se : segs) se.weight = wtotal > 0 ? se.weight / wtotal : 0.0;
  }

  // Expected cost across segments.
  double cost = 0;
  for (const auto& se : segs) {
    // Inclusion probability per socket.
    std::vector<double> pk(static_cast<size_t>(sockets));
    for (int k = 0; k < sockets; ++k) {
      bool in_aligned =
          std::find(se.aligned_sockets.begin(), se.aligned_sockets.end(), k) !=
          se.aligned_sockets.end();
      pk[static_cast<size_t>(k)] =
          in_aligned ? 1.0 : 1.0 - p_not[static_cast<size_t>(k)];
    }
    double nsock = 0;
    for (double p : pk) nsock += p;
    if (nsock <= 1.0) continue;
    // Average pairwise distance weighted by inclusion probabilities.
    double dsum = 0, dw = 0;
    for (int a = 0; a < sockets; ++a)
      for (int b = a + 1; b < sockets; ++b) {
        double pw = pk[static_cast<size_t>(a)] * pk[static_cast<size_t>(b)];
        dsum += pw * topo_->Distance(a, b);
        dw += pw;
      }
    double dist = dw > 0 ? dsum / dw : 0.0;
    cost += se.weight * (nsock - 1.0) * dist *
            static_cast<double>(spec.data_bytes);
  }
  return cost;
}

double CostModel::SyncCost(const Scheme& s, const WorkloadStats& w) const {
  double total = 0;
  for (size_t cls = 0; cls < spec_->classes.size(); ++cls) {
    double count = cls < w.class_counts.size() ? w.class_counts[cls] : 0.0;
    if (count <= 0) continue;
    const TxnClass& c = spec_->classes[cls];
    for (size_t sp = 0; sp < c.sync_points.size(); ++sp) {
      total += count * SyncPointCost(s, w, static_cast<int>(cls),
                                     static_cast<int>(sp));
    }
  }
  return total;
}

}  // namespace atrapos::core
