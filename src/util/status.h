// Status / Result error handling, in the style of Arrow and RocksDB.
// The storage manager does not throw in the hot path; fallible operations
// return Status (or Result<T> when they produce a value).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace atrapos {

/// Error codes used across the library. Keep coarse: callers branch on
/// category, humans read the message.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kDeadlockAbort,   ///< transaction must abort (wait-die victim)
  kConflictAbort,   ///< 2PC participant voted no / validation failed
  kResourceExhausted,
  kInternal,
  kNotSupported,
  kUnavailable,     ///< intake sealed / island quarantined; retry elsewhere
  kDeadlineExceeded,  ///< blocking call ran past its caller-supplied deadline
};

/// Lightweight status object; cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status DeadlockAbort(std::string m = "wait-die abort") {
    return Status(StatusCode::kDeadlockAbort, std::move(m));
  }
  static Status ConflictAbort(std::string m = "conflict abort") {
    return Status(StatusCode::kConflictAbort, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m = "deadline exceeded") {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// True for the abort categories a transaction retry loop should handle.
  bool IsRetryableAbort() const {
    return code_ == StatusCode::kDeadlockAbort ||
           code_ == StatusCode::kConflictAbort;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kDeadlockAbort: return "DeadlockAbort";
      case StatusCode::kConflictAbort: return "ConflictAbort";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kNotSupported: return "NotSupported";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T>: either a value or an error Status. Minimal expected<> stand-in.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}             // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {}      // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const { return std::get<Status>(v_); }
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T take() { return std::move(std::get<T>(v_)); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace atrapos

/// Propagate a non-OK Status from the current function.
#define ATRAPOS_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::atrapos::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)
