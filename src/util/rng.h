// Deterministic random number generation for workloads and benchmarks.
// All benchmark harnesses seed explicitly so every run is bit-reproducible.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace atrapos {

/// xorshift128+ generator: fast, decent quality, fully deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to spread a small seed over the state.
    uint64_t z = seed;
    for (auto* s : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      *s = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n).
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive (TPC-C style).
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// TPC-C NURand(A, x, y) non-uniform random (spec clause 2.1.6).
  int64_t NURand(int64_t a, int64_t x, int64_t y, int64_t c = 42) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + c) % (y - x + 1)) + x;
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipf-distributed generator over [0, n). Uses the Gray et al. (SIGMOD'94)
/// rejection-free method with precomputed normalization constants, so a draw
/// is O(1) after O(1) setup (we avoid the O(n) harmonic sum via integral
/// approximation, which is accurate for the n >= 1000 used in workloads).
class ZipfRng {
 public:
  ZipfRng(uint64_t n, double theta, uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n >= 1);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Draw a rank in [0, n); rank 0 is the hottest item.
  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto v = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    // Exact for small n; integral approximation beyond 10000 terms.
    double sum = 0;
    uint64_t exact = n < 10000 ? n : 10000;
    for (uint64_t i = 1; i <= exact; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta);
    if (exact < n) {
      // integral of x^-theta from `exact` to n
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(exact), 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

/// "Hot set" skew generator: with probability `hot_prob` draw uniformly from
/// the first `hot_fraction` of the key space, otherwise uniformly from the
/// rest. This matches the paper's Fig. 11 skew ("50% of the requests go to
/// the 20% of the data").
class HotSetRng {
 public:
  HotSetRng(uint64_t n, double hot_fraction, double hot_prob, uint64_t seed = 1)
      : n_(n),
        hot_n_(static_cast<uint64_t>(static_cast<double>(n) * hot_fraction)),
        hot_prob_(hot_prob),
        rng_(seed) {
    if (hot_n_ == 0) hot_n_ = 1;
  }

  uint64_t Next() {
    if (rng_.NextDouble() < hot_prob_) return rng_.Uniform(hot_n_);
    if (hot_n_ >= n_) return rng_.Uniform(n_);
    return hot_n_ + rng_.Uniform(n_ - hot_n_);
  }

 private:
  uint64_t n_;
  uint64_t hot_n_;
  double hot_prob_;
  Rng rng_;
};

}  // namespace atrapos
