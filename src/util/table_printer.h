// Fixed-width table formatter used by every bench binary so the output
// mirrors the rows/series of the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace atrapos {

/// Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  /// Render to stdout with a separator under the header.
  void Print() const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atrapos
