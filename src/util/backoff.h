// Retry backoff with decorrelated jitter (the AWS architecture-blog
// variant): each delay is drawn uniformly from [base, 3 * previous] and
// capped, so concurrent retriers spread out instead of thundering in
// exponential lockstep. Deterministic given a seed — the server::Client
// retry tests and the fault-injection suites replay exact schedules.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace atrapos::util {

class Backoff {
 public:
  /// Delays are in microseconds; `base_us` is the first delay and the
  /// lower bound of every draw, `cap_us` the upper bound.
  Backoff(uint64_t base_us, uint64_t cap_us, uint64_t seed)
      : base_us_(base_us == 0 ? 1 : base_us),
        cap_us_(std::max(cap_us, base_us_)),
        rng_(seed),
        prev_us_(base_us_) {}

  /// The next delay: first call returns exactly base, then
  /// min(cap, uniform[base, 3 * previous]).
  uint64_t NextDelayUs() {
    uint64_t delay;
    if (attempts_ == 0) {
      delay = base_us_;
    } else {
      uint64_t hi = std::min(cap_us_, prev_us_ * 3);
      delay = hi <= base_us_ ? base_us_
                             : base_us_ + rng_.Next() % (hi - base_us_ + 1);
    }
    ++attempts_;
    prev_us_ = delay;
    return delay;
  }

  /// Forgets history (after a success) so the next delay is base again.
  void Reset() {
    attempts_ = 0;
    prev_us_ = base_us_;
  }

  uint64_t attempts() const { return attempts_; }
  uint64_t base_us() const { return base_us_; }
  uint64_t cap_us() const { return cap_us_; }

 private:
  uint64_t base_us_;
  uint64_t cap_us_;
  Rng rng_;
  uint64_t prev_us_;
  uint64_t attempts_ = 0;
};

}  // namespace atrapos::util
