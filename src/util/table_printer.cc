#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace atrapos {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(long long v) { return std::to_string(v); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> w(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) w[i] = header_[i].size();
  for (const auto& r : rows_)
    for (size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "  " : "");
      os << cells[i];
      os << std::string(w[i] - cells[i].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t i = 0; i < w.size(); ++i) total += w[i] + (i ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace atrapos
