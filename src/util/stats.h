// Streaming statistics, histograms, and the sliding throughput window used
// by the adaptive monitoring controller (paper §V-D).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace atrapos {

/// Welford streaming mean/variance plus min/max. O(1) per observation.
class StreamingStats {
 public:
  void Add(double x);
  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void Reset();

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram with power-of-two bucket boundaries. The binning
/// implementation lives in obs/histogram.h (shared with the concurrent
/// per-worker registry histograms); this alias keeps the long-standing
/// util spelling.
using Histogram = obs::Histogram;

/// Sliding window over the last N observations; the ATraPos adaptive
/// controller asks "is the current throughput within 10% of the average of
/// the previous 5 measurements?" (paper §V-D).
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity) : capacity_(capacity) {}
  void Add(double v);
  size_t size() const { return vals_.size(); }
  bool full() const { return vals_.size() == capacity_; }
  double Average() const;
  void Reset() { vals_.clear(); }

 private:
  size_t capacity_;
  std::deque<double> vals_;
};

}  // namespace atrapos
