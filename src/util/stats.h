// Streaming statistics, histograms, and the sliding throughput window used
// by the adaptive monitoring controller (paper §V-D).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace atrapos {

/// Welford streaming mean/variance plus min/max. O(1) per observation.
class StreamingStats {
 public:
  void Add(double x);
  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void Reset();

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram with power-of-two bucket boundaries, suitable for
/// latency distributions. Records values in [0, 2^63).
class Histogram {
 public:
  Histogram();
  void Add(uint64_t v);
  uint64_t count() const { return total_; }
  /// Approximate quantile (q in [0,1]) assuming uniform density in-bucket.
  uint64_t Quantile(double q) const;
  uint64_t min() const { return total_ ? min_ : 0; }
  uint64_t max() const { return total_ ? max_ : 0; }
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  void Merge(const Histogram& other);
  void Reset();
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Sliding window over the last N observations; the ATraPos adaptive
/// controller asks "is the current throughput within 10% of the average of
/// the previous 5 measurements?" (paper §V-D).
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity) : capacity_(capacity) {}
  void Add(double v);
  size_t size() const { return vals_.size(); }
  bool full() const { return vals_.size() == capacity_; }
  double Average() const;
  void Reset() { vals_.clear(); }

 private:
  size_t capacity_;
  std::deque<double> vals_;
};

}  // namespace atrapos
