#include "util/stats.h"

#include <bit>
#include <cmath>
#include <sstream>

namespace atrapos {

void StreamingStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::Reset() {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

Histogram::Histogram() : buckets_(kBuckets, 0) {}

namespace {
int BucketOf(uint64_t v) { return v == 0 ? 0 : 64 - std::countl_zero(v); }
}  // namespace

void Histogram::Add(uint64_t v) {
  if (total_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++total_;
  sum_ += static_cast<double>(v);
  int b = BucketOf(v);
  if (b >= kBuckets) b = kBuckets - 1;
  ++buckets_[b];
}

uint64_t Histogram::Quantile(double q) const {
  if (total_ == 0) return 0;
  auto target = static_cast<uint64_t>(q * static_cast<double>(total_));
  if (target >= total_) target = total_ - 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (seen + buckets_[b] > target) {
      uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
      uint64_t hi = b == 0 ? 1 : (1ULL << b);
      double frac = buckets_[b] == 0
                        ? 0.0
                        : static_cast<double>(target - seen) /
                              static_cast<double>(buckets_[b]);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += buckets_[b];
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = min_ = max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << total_ << " mean=" << mean() << " p50=" << Quantile(0.5)
     << " p99=" << Quantile(0.99) << " max=" << max_;
  return os.str();
}

void SlidingWindow::Add(double v) {
  vals_.push_back(v);
  if (vals_.size() > capacity_) vals_.pop_front();
}

double SlidingWindow::Average() const {
  if (vals_.empty()) return 0.0;
  double s = 0;
  for (double v : vals_) s += v;
  return s / static_cast<double>(vals_.size());
}

}  // namespace atrapos
