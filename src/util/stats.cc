#include "util/stats.h"

#include <cmath>

namespace atrapos {

void StreamingStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::Reset() {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

void SlidingWindow::Add(double v) {
  vals_.push_back(v);
  if (vals_.size() > capacity_) vals_.pop_front();
}

double SlidingWindow::Average() const {
  if (vals_.empty()) return 0.0;
  double s = 0;
  for (double v : vals_) s += v;
  return s / static_cast<double>(vals_.size());
}

}  // namespace atrapos
