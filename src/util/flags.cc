#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace atrapos {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", a);
      std::exit(2);
    }
    std::string s(a + 2);
    auto eq = s.find('=');
    if (eq != std::string::npos) {
      kv_[s.substr(0, eq)] = s.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      kv_[s] = argv[++i];
    } else {
      kv_[s] = "true";
    }
  }
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

}  // namespace atrapos
