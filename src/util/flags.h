// Minimal command-line flag parsing for bench/example binaries:
// --name=value or --name value. Unknown flags are an error so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace atrapos {

/// Parses argv into a key->value map and offers typed getters with defaults.
class Flags {
 public:
  /// Parse; exits with a message on malformed input.
  Flags(int argc, char** argv);

  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  bool Has(const std::string& name) const { return kv_.count(name) > 0; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace atrapos
