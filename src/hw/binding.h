// Thread-to-core binding (paper §IV, "Thread binding").
//
// ATraPos binds every worker thread to a specific core and caches its socket
// so the thread always touches the *same* per-socket partition of each
// NUMA-aware data structure. On hardware without that many cores (or without
// permission to set affinity) binding degrades gracefully to bookkeeping
// only: the logical core/socket identity is still tracked, which is all the
// partitioned data structures need for correctness.
#pragma once

#include "hw/topology.h"

namespace atrapos::hw {

/// Per-thread logical placement. Thread-local; set once at worker start.
struct ThreadPlacement {
  CoreId core = kInvalidCore;
  SocketId socket = kInvalidSocket;
};

/// Binds the calling thread to logical core `core` of `topo`. Attempts OS
/// affinity if the machine has a matching CPU; always records the logical
/// placement in thread-local storage. Returns true if OS affinity was set.
bool BindCurrentThread(const Topology& topo, CoreId core);

/// The calling thread's logical placement (kInvalidCore if never bound).
const ThreadPlacement& CurrentPlacement();

/// Clears the calling thread's placement (used by tests).
void ResetPlacement();

}  // namespace atrapos::hw
