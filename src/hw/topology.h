// Hardware-island topology description (paper §II-A).
//
// An "Island" is a group of cores that communicate fast with each other and
// several times slower with cores of other groups. On the paper's machine an
// Island is one processor socket; the eight sockets are connected by QPI
// links in a twisted-cube topology. The Topology object captures sockets,
// cores, and the inter-socket hop-distance matrix; both the simulator and
// the ATraPos cost model consume it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atrapos::hw {

using CoreId = int32_t;
using SocketId = int32_t;

constexpr CoreId kInvalidCore = -1;
constexpr SocketId kInvalidSocket = -1;

/// Immutable machine description: sockets, cores per socket, and a symmetric
/// inter-socket distance matrix in "hops" (0 = same socket).
class Topology {
 public:
  /// Builds a topology from an explicit inter-socket link list. Distances
  /// are computed as BFS hop counts over the links.
  Topology(int num_sockets, int cores_per_socket,
           const std::vector<std::pair<SocketId, SocketId>>& links);

  // ---- Presets ----------------------------------------------------------

  /// Single multicore socket (the paper's 1-socket baseline).
  static Topology SingleSocket(int cores);

  /// The paper's evaluation machine: 8 Intel Xeon E7-L8867 sockets, 10
  /// cores each, connected in a twisted cube (cube edges plus two diagonal
  /// links so the diameter is 2 hops).
  static Topology TwistedCube8x10();

  /// A cube of `2^dims` sockets (dims in [0,3]) with `cores` cores each;
  /// used for the 1/2/4/8-socket sweeps of Figs. 1, 2 and 5.
  static Topology Cube(int dims, int cores);

  /// Tilera-style on-chip mesh: rows x cols single-core "sockets" where the
  /// distance is Manhattan hop count (paper §II-A, islands within a chip).
  static Topology Mesh(int rows, int cols);

  // ---- Shape ------------------------------------------------------------

  int num_sockets() const { return num_sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int num_cores() const { return num_sockets_ * cores_per_socket_; }

  SocketId socket_of(CoreId core) const { return core / cores_per_socket_; }
  /// Cores of socket s are [s*cps, (s+1)*cps).
  CoreId first_core(SocketId s) const { return s * cores_per_socket_; }

  /// Hop distance between two sockets (0 on the same socket).
  int Distance(SocketId a, SocketId b) const {
    return dist_[static_cast<size_t>(a) * num_sockets_ + b];
  }
  int DistanceCores(CoreId a, CoreId b) const {
    return Distance(socket_of(a), socket_of(b));
  }
  int MaxDistance() const { return max_dist_; }

  /// Average hop distance over all distinct socket pairs.
  double AvgDistance() const;

  /// The raw link list (for interconnect-traffic accounting).
  const std::vector<std::pair<SocketId, SocketId>>& links() const {
    return links_;
  }

  // ---- Dynamic hardware changes (paper §VI-D3) --------------------------

  /// Marks a socket as failed; its cores become unavailable. Distances are
  /// unchanged (links through a failed socket still route in hardware).
  void FailSocket(SocketId s);
  bool IsSocketAlive(SocketId s) const { return alive_[s]; }
  bool IsCoreAvailable(CoreId c) const { return alive_[socket_of(c)]; }
  int num_available_cores() const;
  /// All available core ids, in socket order.
  std::vector<CoreId> AvailableCores() const;

  std::string ToString() const;

 private:
  int num_sockets_;
  int cores_per_socket_;
  std::vector<std::pair<SocketId, SocketId>> links_;
  std::vector<int> dist_;  // row-major num_sockets x num_sockets
  std::vector<bool> alive_;
  int max_dist_ = 0;
};

}  // namespace atrapos::hw
