#include "hw/topology.h"

#include <cassert>
#include <deque>
#include <sstream>

namespace atrapos::hw {

Topology::Topology(int num_sockets, int cores_per_socket,
                   const std::vector<std::pair<SocketId, SocketId>>& links)
    : num_sockets_(num_sockets),
      cores_per_socket_(cores_per_socket),
      links_(links),
      dist_(static_cast<size_t>(num_sockets) * num_sockets, -1),
      alive_(static_cast<size_t>(num_sockets), true) {
  assert(num_sockets >= 1 && cores_per_socket >= 1);
  // Adjacency.
  std::vector<std::vector<SocketId>> adj(num_sockets);
  for (auto [a, b] : links_) {
    assert(a >= 0 && a < num_sockets && b >= 0 && b < num_sockets);
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  // BFS from every socket.
  for (SocketId s = 0; s < num_sockets; ++s) {
    auto* row = &dist_[static_cast<size_t>(s) * num_sockets];
    row[s] = 0;
    std::deque<SocketId> q{s};
    while (!q.empty()) {
      SocketId u = q.front();
      q.pop_front();
      for (SocketId v : adj[u]) {
        if (row[v] < 0) {
          row[v] = row[u] + 1;
          q.push_back(v);
        }
      }
    }
    for (SocketId t = 0; t < num_sockets; ++t) {
      assert(row[t] >= 0 && "topology must be connected");
      max_dist_ = std::max(max_dist_, row[t]);
    }
  }
}

Topology Topology::SingleSocket(int cores) { return Topology(1, cores, {}); }

Topology Topology::Cube(int dims, int cores) {
  assert(dims >= 0 && dims <= 3);
  int n = 1 << dims;
  std::vector<std::pair<SocketId, SocketId>> links;
  for (SocketId s = 0; s < n; ++s)
    for (int d = 0; d < dims; ++d)
      if (s < (s ^ (1 << d))) links.emplace_back(s, s ^ (1 << d));
  return Topology(n, cores, links);
}

Topology Topology::TwistedCube8x10() {
  // Cube edges plus the four "twist" diagonals (each socket to its bitwise
  // complement). Every socket has 4 QPI links — as on Xeon E7 — and the
  // network diameter is 2 hops, matching the Westmere-EX 8-socket glueless
  // twisted-cube configuration.
  std::vector<std::pair<SocketId, SocketId>> links;
  for (SocketId s = 0; s < 8; ++s)
    for (int d = 0; d < 3; ++d)
      if (s < (s ^ (1 << d))) links.emplace_back(s, s ^ (1 << d));
  for (SocketId s = 0; s < 4; ++s) links.emplace_back(s, 7 - s);
  return Topology(8, 10, links);
}

Topology Topology::Mesh(int rows, int cols) {
  std::vector<std::pair<SocketId, SocketId>> links;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) links.emplace_back(id(r, c), id(r + 1, c));
    }
  return Topology(rows * cols, 1, links);
}

double Topology::AvgDistance() const {
  if (num_sockets_ == 1) return 0.0;
  double sum = 0;
  int pairs = 0;
  for (SocketId a = 0; a < num_sockets_; ++a)
    for (SocketId b = a + 1; b < num_sockets_; ++b) {
      sum += Distance(a, b);
      ++pairs;
    }
  return sum / pairs;
}

void Topology::FailSocket(SocketId s) {
  assert(s >= 0 && s < num_sockets_);
  alive_[s] = false;
}

int Topology::num_available_cores() const {
  int n = 0;
  for (SocketId s = 0; s < num_sockets_; ++s)
    if (alive_[s]) n += cores_per_socket_;
  return n;
}

std::vector<CoreId> Topology::AvailableCores() const {
  std::vector<CoreId> out;
  out.reserve(static_cast<size_t>(num_cores()));
  for (CoreId c = 0; c < num_cores(); ++c)
    if (IsCoreAvailable(c)) out.push_back(c);
  return out;
}

std::string Topology::ToString() const {
  std::ostringstream os;
  os << num_sockets_ << " sockets x " << cores_per_socket_
     << " cores, max hop distance " << max_dist_ << ", links:";
  for (auto [a, b] : links_) os << " " << a << "-" << b;
  return os.str();
}

}  // namespace atrapos::hw
