#include "hw/binding.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <thread>

namespace atrapos::hw {

namespace {
thread_local ThreadPlacement g_placement;
}  // namespace

bool BindCurrentThread(const Topology& topo, CoreId core) {
  g_placement.core = core;
  g_placement.socket = topo.socket_of(core);

  // Best-effort OS affinity: only if the host actually has that many CPUs.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || static_cast<unsigned>(core) >= hw) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

const ThreadPlacement& CurrentPlacement() { return g_placement; }

void ResetPlacement() { g_placement = ThreadPlacement{}; }

}  // namespace atrapos::hw
