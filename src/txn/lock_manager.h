// Centralized lock manager with shared/exclusive row locks and wait-die
// deadlock avoidance. This is the structure whose contention motivates PLP
// (paper §III-A): every lock acquisition hashes into a shared bucket table.
// Partitioned engines bypass it with per-partition local lock tables.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "txn/txn_list.h"
#include "util/status.h"

namespace atrapos::txn {

enum class LockMode : uint8_t { kShared, kExclusive };

/// Lock identifier: table id in the high 16 bits is conventional but the
/// manager treats it as opaque.
using LockId = uint64_t;

constexpr LockId MakeLockId(int32_t table, uint64_t key) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(table)) << 48) |
         (key & 0xFFFFFFFFFFFFULL);
}

class LockManager {
 public:
  explicit LockManager(size_t num_buckets = 1024);

  /// Acquires `id` in `mode` for transaction `txn` (its id doubles as the
  /// wait-die timestamp: lower id == older == may wait). Returns
  /// DeadlockAbort if wait-die chooses the caller as victim.
  Status Acquire(TxnId txn, LockId id, LockMode mode);

  /// Releases one lock.
  void Release(TxnId txn, LockId id);

  /// Releases everything held by `txn` (commit/abort path).
  void ReleaseAll(TxnId txn);

  /// Locks currently held by `txn` (diagnostics/tests).
  size_t HeldCount(TxnId txn) const;

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    bool granted;
  };
  struct Entry {
    std::deque<Request> queue;  // granted prefix, then waiters
  };
  struct alignas(64) Bucket {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<LockId, Entry> locks;
  };

  Bucket& BucketOf(LockId id) {
    return buckets_[static_cast<size_t>(id * 0x9e3779b97f4a7c15ULL %
                                        buckets_.size())];
  }
  static bool Compatible(const Entry& e, const Request& r);
  /// Grants any waiters now admissible; returns true if someone was granted.
  static bool Promote(Entry& e);

  std::vector<Bucket> buckets_;
  mutable std::mutex held_mu_;
  std::unordered_map<TxnId, std::vector<LockId>> held_;
};

}  // namespace atrapos::txn
