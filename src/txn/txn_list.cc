#include "txn/txn_list.h"

namespace atrapos::txn {

CentralizedTxnList::~CentralizedTxnList() {
  TxnNode* n = head_.load(std::memory_order_acquire);
  while (n) {
    TxnNode* next = n->next.load(std::memory_order_acquire);
    delete n;
    n = next;
  }
}

TxnNode* CentralizedTxnList::Add(TxnId id, hw::SocketId) {
  auto* node = new TxnNode();
  node->id = id;
  node->active.store(true, std::memory_order_release);
  // Lock-free push: exactly the single contended CAS the paper calls out.
  TxnNode* old = head_.load(std::memory_order_relaxed);
  do {
    node->next.store(old, std::memory_order_relaxed);
  } while (!head_.compare_exchange_weak(old, node, std::memory_order_release,
                                        std::memory_order_relaxed));
  return node;
}

void CentralizedTxnList::Remove(TxnNode* node, hw::SocketId) {
  // Logical removal; nodes are unlinked lazily by traversals and reclaimed
  // at list destruction (simple and safe without an epoch scheme).
  node->active.store(false, std::memory_order_release);
}

void CentralizedTxnList::ForEach(const std::function<void(TxnId)>& fn) const {
  for (TxnNode* n = head_.load(std::memory_order_acquire); n;
       n = n->next.load(std::memory_order_acquire)) {
    if (n->active.load(std::memory_order_acquire)) fn(n->id);
  }
}

uint64_t CentralizedTxnList::ActiveCount() const {
  uint64_t c = 0;
  ForEach([&](TxnId) { ++c; });
  return c;
}

PartitionedTxnList::PartitionedTxnList(int num_sockets) {
  lists_.reserve(static_cast<size_t>(num_sockets));
  for (int i = 0; i < num_sockets; ++i)
    lists_.push_back(std::make_unique<CentralizedTxnList>());
}

TxnNode* PartitionedTxnList::Add(TxnId id, hw::SocketId socket) {
  return lists_[static_cast<size_t>(socket)]->Add(id, socket);
}

void PartitionedTxnList::Remove(TxnNode* node, hw::SocketId socket) {
  lists_[static_cast<size_t>(socket)]->Remove(node, socket);
}

void PartitionedTxnList::ForEach(const std::function<void(TxnId)>& fn) const {
  for (const auto& l : lists_) l->ForEach(fn);
}

uint64_t PartitionedTxnList::ActiveCount() const {
  uint64_t c = 0;
  for (const auto& l : lists_) c += l->ActiveCount();
  return c;
}

}  // namespace atrapos::txn
