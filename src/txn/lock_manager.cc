#include "txn/lock_manager.h"

#include <algorithm>

namespace atrapos::txn {

LockManager::LockManager(size_t num_buckets) : buckets_(num_buckets) {}

bool LockManager::Compatible(const Entry& e, const Request& r) {
  for (const Request& g : e.queue) {
    if (!g.granted) break;  // waiters start after the granted prefix
    if (g.txn == r.txn) continue;
    if (g.mode == LockMode::kExclusive || r.mode == LockMode::kExclusive)
      return false;
  }
  return true;
}

bool LockManager::Promote(Entry& e) {
  bool any = false;
  for (auto& r : e.queue) {
    if (r.granted) continue;
    if (Compatible(e, r)) {
      r.granted = true;
      any = true;
    } else {
      break;  // strict FIFO beyond the first blocked waiter
    }
  }
  return any;
}

Status LockManager::Acquire(TxnId txn, LockId id, LockMode mode) {
  Bucket& b = BucketOf(id);
  std::unique_lock lk(b.mu);
  Entry& e = b.locks[id];

  // Re-entrant upgrade-free fast path: already granted in a covering mode.
  for (auto& g : e.queue) {
    if (!g.granted) break;
    if (g.txn == txn &&
        (g.mode == mode || g.mode == LockMode::kExclusive)) {
      return Status::OK();
    }
  }

  Request req{txn, mode, false};
  if (Compatible(e, req) &&
      std::none_of(e.queue.begin(), e.queue.end(),
                   [](const Request& r) { return !r.granted; })) {
    req.granted = true;
    e.queue.push_back(req);
  } else {
    // Wait-die: younger (higher id) requesters die instead of waiting on
    // older holders; older requesters may wait.
    for (const Request& g : e.queue) {
      if (!g.granted) break;
      bool conflict = g.txn != txn && (g.mode == LockMode::kExclusive ||
                                       mode == LockMode::kExclusive);
      if (conflict && txn > g.txn) {
        return Status::DeadlockAbort("wait-die: younger than holder");
      }
    }
    e.queue.push_back(req);
    b.cv.wait(lk, [&] {
      for (const Request& r : e.queue)
        if (r.txn == txn && r.mode == mode) return r.granted;
      return true;  // request vanished (should not happen)
    });
  }

  {
    std::lock_guard hlk(held_mu_);
    held_[txn].push_back(id);
  }
  return Status::OK();
}

void LockManager::Release(TxnId txn, LockId id) {
  Bucket& b = BucketOf(id);
  bool promoted = false;
  {
    std::lock_guard lk(b.mu);
    auto it = b.locks.find(id);
    if (it == b.locks.end()) return;
    auto& q = it->second.queue;
    for (auto qit = q.begin(); qit != q.end(); ++qit) {
      if (qit->txn == txn) {
        q.erase(qit);
        break;
      }
    }
    if (q.empty()) {
      b.locks.erase(it);
    } else {
      promoted = Promote(it->second);
    }
  }
  if (promoted) b.cv.notify_all();
  std::lock_guard hlk(held_mu_);
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    auto& v = hit->second;
    auto vit = std::find(v.begin(), v.end(), id);
    if (vit != v.end()) v.erase(vit);
    if (v.empty()) held_.erase(hit);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::vector<LockId> ids;
  {
    std::lock_guard hlk(held_mu_);
    auto it = held_.find(txn);
    if (it == held_.end()) return;
    ids = it->second;
  }
  for (LockId id : ids) Release(txn, id);
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard hlk(held_mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace atrapos::txn
