#include "txn/wal.h"

#include <chrono>

namespace atrapos::txn {

WriteAheadLog::WriteAheadLog(uint64_t flush_interval_us)
    : flush_interval_us_(flush_interval_us),
      flusher_([this] { FlusherLoop(); }) {}

WriteAheadLog::~WriteAheadLog() { Stop(); }

void WriteAheadLog::Stop() {
  stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) flusher_.join();
  {
    // Under mu_ so a WaitDurable between its predicate check and its sleep
    // cannot miss the wake (the store would otherwise race that window).
    std::lock_guard lk(mu_);
    stopped_.store(true, std::memory_order_release);
  }
  flushed_cv_.notify_all();
}

Lsn WriteAheadLog::Append(TxnId txn, LogType type, uint64_t a, uint64_t b) {
  std::lock_guard lk(mu_);
  Lsn lsn = next_lsn_++;
  records_.push_back(LogRecord{lsn, txn, type, a, b});
  return lsn;
}

Lsn WriteAheadLog::WaitDurable(Lsn lsn) {
  Lsn durable = durable_lsn_.load(std::memory_order_acquire);
  if (durable >= lsn) return durable;
  std::unique_lock lk(mu_);
  // `stopped_` (not `stop_`): during shutdown the final flush still runs;
  // only once it is done is the durable LSN frozen and waiting pointless.
  flushed_cv_.wait(lk, [&] {
    return durable_lsn_.load(std::memory_order_acquire) >= lsn ||
           stopped_.load(std::memory_order_acquire);
  });
  return durable_lsn_.load(std::memory_order_acquire);
}

Lsn WriteAheadLog::Commit(TxnId txn) {
  Lsn lsn = Append(txn, LogType::kCommit);
  Lsn durable = WaitDurable(lsn);
  // Post-stop the commit record can never become durable; report the last
  // durable LSN instead of an LSN we cannot vouch for.
  return durable >= lsn ? lsn : durable;
}

Lsn WriteAheadLog::tail_lsn() const {
  std::lock_guard lk(mu_);
  return next_lsn_ - 1;
}

uint64_t WriteAheadLog::num_records() const {
  std::lock_guard lk(mu_);
  return records_.size();
}

std::vector<LogRecord> WriteAheadLog::Read(Lsn from, Lsn to) const {
  std::lock_guard lk(mu_);
  std::vector<LogRecord> out;
  if (from > to || records_.empty()) return out;
  // LSNs are dense starting at 1 (record with LSN l sits at index l-1), so
  // a range read is direct indexing — after clamping both ends into the
  // valid range so out-of-range requests cannot index past the buffer.
  Lsn lo = from < 1 ? 1 : from;
  Lsn hi = to > next_lsn_ - 1 ? next_lsn_ - 1 : to;
  if (lo > hi) return out;
  out.reserve(static_cast<size_t>(hi - lo + 1));
  for (Lsn l = lo; l <= hi; ++l)
    out.push_back(records_[static_cast<size_t>(l - 1)]);
  return out;
}

void WriteAheadLog::FlusherLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Lsn tail;
    {
      std::lock_guard lk(mu_);
      tail = next_lsn_ - 1;
    }
    if (tail > durable_lsn_.load(std::memory_order_acquire)) {
      // The flush itself: with a memory-mapped log file this is a memcpy
      // plus fence; the group-commit window batches whatever accumulated.
      durable_lsn_.store(tail, std::memory_order_release);
      flushed_cv_.notify_all();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(flush_interval_us_));
  }
  // Final flush so no committer hangs at shutdown.
  std::lock_guard lk(mu_);
  durable_lsn_.store(next_lsn_ - 1, std::memory_order_release);
  flushed_cv_.notify_all();
}

}  // namespace atrapos::txn
