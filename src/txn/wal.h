// Write-ahead log with group commit.
//
// A single log-buffer mutex serializes inserts — by design: this is the
// centralized structure whose contention the paper measures (logging slice
// of Fig. 4; the "fewer partitions -> fewer threads competing for the log"
// effect behind Fig. 8). A background flusher makes commits durable in
// batches (group commit, as in Aether). Storage is an in-memory buffer,
// matching the paper's memory-mapped log disks.
//
// This class is retained as the reference mutex-per-record implementation
// (and for the contention comparison); the engine's durability now lives
// in log::LogManager, whose 1-shard centralized configuration preserves
// these semantics behind the same interface (see src/log/).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "txn/txn_list.h"
#include "util/status.h"

namespace atrapos::txn {

using Lsn = uint64_t;

enum class LogType : uint8_t {
  kBegin,
  kUpdate,
  kInsert,
  kDelete,
  kCommit,
  kAbort,
  kPrepare,      ///< 2PC participant vote record
  kDistCommit,   ///< 2PC decision record
  kCheckpoint,
};

struct LogRecord {
  Lsn lsn = 0;
  TxnId txn = 0;
  LogType type = LogType::kBegin;
  uint64_t payload_a = 0;  ///< e.g. lock id / key
  uint64_t payload_b = 0;  ///< e.g. encoded rid
};

class WriteAheadLog {
 public:
  /// `flush_interval_us`: group-commit window of the background flusher.
  explicit WriteAheadLog(uint64_t flush_interval_us = 100);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a record and returns its LSN (tail insert under the buffer
  /// mutex).
  Lsn Append(TxnId txn, LogType type, uint64_t a = 0, uint64_t b = 0);

  /// Blocks until `lsn` is durable (group commit) and returns the durable
  /// LSN at that point. Once the flusher has been stopped the durable LSN
  /// can never advance, so a post-stop waiter returns the last durable LSN
  /// immediately instead of hanging on a flush that will never come.
  Lsn WaitDurable(Lsn lsn);

  /// Appends a commit record and waits for it to become durable. Returns
  /// the commit record's LSN — or, after Stop(), the last durable LSN
  /// (the commit record is appended but will never be flushed).
  Lsn Commit(TxnId txn);

  /// Stops the background flusher after one final flush of everything
  /// appended so far, and wakes every waiter. Idempotent; also called by
  /// the destructor. Append stays legal afterwards but new records never
  /// become durable.
  void Stop();

  Lsn durable_lsn() const { return durable_lsn_.load(std::memory_order_acquire); }
  Lsn tail_lsn() const;
  uint64_t num_records() const;

  /// Snapshot of records in [from, to] for recovery-style scans and tests.
  std::vector<LogRecord> Read(Lsn from, Lsn to) const;

 private:
  void FlusherLoop();

  mutable std::mutex mu_;
  std::condition_variable flushed_cv_;
  std::vector<LogRecord> records_;  // the memory-mapped "disk"
  Lsn next_lsn_ = 1;
  std::atomic<Lsn> durable_lsn_{0};
  uint64_t flush_interval_us_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};  ///< final flush done, flusher joined
  std::thread flusher_;
};

}  // namespace atrapos::txn
