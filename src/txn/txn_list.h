// Active-transaction lists (paper §IV, "List of transactions").
//
// Shore-MT keeps one lock-free list of active transactions: beginning a
// transaction is a CAS on the global list head — fine on one socket, a
// convoy across eight. ATraPos keeps one list per socket: begin/end touch
// only the socket-local head, and background operations (checkpointing,
// page cleaning) traverse all per-socket lists.
//
// Both flavors are provided behind one interface so engines can switch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/topology.h"

namespace atrapos::txn {

using TxnId = uint64_t;

/// Node of the intrusive lock-free list.
struct TxnNode {
  TxnId id = 0;
  std::atomic<bool> active{false};
  std::atomic<TxnNode*> next{nullptr};
};

/// Interface: add on begin, remove on end, snapshot for background tasks.
class ActiveTxnList {
 public:
  virtual ~ActiveTxnList() = default;

  /// Registers a transaction; `socket` is the caller's socket (ignored by
  /// the centralized flavor). The returned node stays owned by the list.
  virtual TxnNode* Add(TxnId id, hw::SocketId socket) = 0;

  /// Marks the transaction finished. Must be called by the same thread
  /// (and hence socket) that called Add — the paper's thread-binding rule.
  virtual void Remove(TxnNode* node, hw::SocketId socket) = 0;

  /// Visits every active transaction (checkpointer path).
  virtual void ForEach(const std::function<void(TxnId)>& fn) const = 0;

  virtual uint64_t ActiveCount() const = 0;
};

/// Shore-MT style: one global lock-free list, CAS on a single head.
class CentralizedTxnList : public ActiveTxnList {
 public:
  CentralizedTxnList() = default;
  ~CentralizedTxnList() override;

  TxnNode* Add(TxnId id, hw::SocketId socket) override;
  void Remove(TxnNode* node, hw::SocketId socket) override;
  void ForEach(const std::function<void(TxnId)>& fn) const override;
  uint64_t ActiveCount() const override;

 private:
  std::atomic<TxnNode*> head_{nullptr};
};

/// ATraPos style: one lock-free list per socket.
class PartitionedTxnList : public ActiveTxnList {
 public:
  explicit PartitionedTxnList(int num_sockets);

  TxnNode* Add(TxnId id, hw::SocketId socket) override;
  void Remove(TxnNode* node, hw::SocketId socket) override;
  void ForEach(const std::function<void(TxnId)>& fn) const override;
  uint64_t ActiveCount() const override;

 private:
  std::vector<std::unique_ptr<CentralizedTxnList>> lists_;
};

}  // namespace atrapos::txn
