#include "mem/alloc_stats.h"

#include <sstream>

namespace atrapos::mem {

AllocStats::AllocStats(const hw::Topology& topo)
    : topo_(topo),
      n_(topo.num_sockets()),
      alloc_(static_cast<size_t>(n_) * n_),
      access_(static_cast<size_t>(n_) * n_),
      migrate_(static_cast<size_t>(n_) * n_),
      freed_(static_cast<size_t>(n_)) {
  Reset();
}

void AllocStats::RecordAlloc(hw::SocketId from, hw::SocketId to,
                             uint64_t bytes) {
  alloc_[Idx(from, to)].fetch_add(bytes, std::memory_order_relaxed);
}

void AllocStats::RecordFree(hw::SocketId to, uint64_t bytes) {
  freed_[static_cast<size_t>(Clamp(to))].fetch_add(bytes,
                                                   std::memory_order_relaxed);
}

void AllocStats::RecordAccess(hw::SocketId from, hw::SocketId to,
                              uint64_t bytes) {
  access_[Idx(from, to)].fetch_add(bytes, std::memory_order_relaxed);
}

void AllocStats::RecordMigration(hw::SocketId from, hw::SocketId to,
                                 uint64_t bytes) {
  migrate_[Idx(from, to)].fetch_add(bytes, std::memory_order_relaxed);
}

uint64_t AllocStats::alloc_bytes(hw::SocketId from, hw::SocketId to) const {
  return alloc_[Idx(from, to)].load(std::memory_order_relaxed);
}

uint64_t AllocStats::access_bytes(hw::SocketId from, hw::SocketId to) const {
  return access_[Idx(from, to)].load(std::memory_order_relaxed);
}

uint64_t AllocStats::migrated_bytes() const {
  return SumIf(migrate_, true) + SumIf(migrate_, false);
}

uint64_t AllocStats::cross_island_migrated_bytes() const {
  return SumIf(migrate_, false);
}

int64_t AllocStats::resident_bytes(hw::SocketId s) const {
  uint64_t in = 0;
  for (int f = 0; f < n_; ++f) in += alloc_bytes(f, s);
  uint64_t out =
      freed_[static_cast<size_t>(Clamp(s))].load(std::memory_order_relaxed);
  return static_cast<int64_t>(in) - static_cast<int64_t>(out);
}

uint64_t AllocStats::SumIf(const std::vector<std::atomic<uint64_t>>& m,
                           bool diagonal) const {
  uint64_t sum = 0;
  for (int f = 0; f < n_; ++f)
    for (int t = 0; t < n_; ++t)
      if ((f == t) == diagonal)
        sum += m[static_cast<size_t>(f) * n_ + t].load(
            std::memory_order_relaxed);
  return sum;
}

uint64_t AllocStats::LocalAllocBytes() const { return SumIf(alloc_, true); }
uint64_t AllocStats::RemoteAllocBytes() const { return SumIf(alloc_, false); }
uint64_t AllocStats::LocalAccessBytes() const { return SumIf(access_, true); }
uint64_t AllocStats::RemoteAccessBytes() const { return SumIf(access_, false); }

namespace {
double Ratio(uint64_t remote, uint64_t local) {
  if (remote == 0) return 0.0;
  if (local == 0) return static_cast<double>(remote);  // all-remote: >> 1
  return static_cast<double>(remote) / static_cast<double>(local);
}
}  // namespace

double AllocStats::AccessRemoteRatio() const {
  return Ratio(RemoteAccessBytes(), LocalAccessBytes());
}

double AllocStats::AllocRemoteRatio() const {
  return Ratio(RemoteAllocBytes(), LocalAllocBytes());
}

void AllocStats::Reset() {
  for (auto& a : alloc_) a.store(0, std::memory_order_relaxed);
  for (auto& a : access_) a.store(0, std::memory_order_relaxed);
  for (auto& a : migrate_) a.store(0, std::memory_order_relaxed);
  for (auto& a : freed_) a.store(0, std::memory_order_relaxed);
}

std::string AllocStats::ToString() const {
  std::ostringstream os;
  os << "alloc local=" << LocalAllocBytes()
     << " remote=" << RemoteAllocBytes()
     << " access local=" << LocalAccessBytes()
     << " remote=" << RemoteAccessBytes()
     << " access_ratio=" << AccessRemoteRatio();
  return os.str();
}

}  // namespace atrapos::mem
