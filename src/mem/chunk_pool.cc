#include "mem/chunk_pool.h"

#include <cstring>

#include "fault/injector.h"
#include "mem/arena.h"

namespace atrapos::mem {

namespace {
size_t RoundUp16(size_t n) { return (n + 15) & ~size_t{15}; }
}  // namespace

ChunkPool::ChunkPool(size_t payload_bytes, Arena* arena,
                     size_t blocks_per_slab)
    : payload_bytes_(RoundUp16(payload_bytes)),
      block_bytes_(kHeaderBytes + payload_bytes_),
      blocks_per_slab_(blocks_per_slab == 0 ? 1 : blocks_per_slab),
      arena_(arena) {}

ChunkPool::~ChunkPool() {
  for (size_t i = 0; i < num_slabs_; ++i) {
    uint8_t* slab = slabs_[i].load(std::memory_order_relaxed);
    if (arena_ != nullptr) {
      arena_->Deallocate(slab, blocks_per_slab_ * block_bytes_);
    } else {
      ::operator delete[](slab, std::align_val_t{16});
    }
  }
}

uint8_t* ChunkPool::BlockAt(uint32_t index) const {
  uint8_t* slab =
      slabs_[index / blocks_per_slab_].load(std::memory_order_acquire);
  return slab + static_cast<size_t>(index % blocks_per_slab_) * block_bytes_;
}

void ChunkPool::PushFree(uint32_t index) {
  std::atomic<uint32_t>* next = NextOf(BlockAt(index));
  uint64_t head = head_.load(std::memory_order_relaxed);
  for (;;) {
    next->store(static_cast<uint32_t>(head), std::memory_order_relaxed);
    uint64_t tag = (head >> 32) + 1;
    uint64_t want = (tag << 32) | (static_cast<uint64_t>(index) + 1);
    if (head_.compare_exchange_weak(head, want, std::memory_order_release,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

uint32_t ChunkPool::PopFree() {
  uint64_t head = head_.load(std::memory_order_acquire);
  for (;;) {
    uint32_t idx_plus1 = static_cast<uint32_t>(head);
    if (idx_plus1 == 0) return 0;
    // The tag CAS makes a stale `next` harmless: if another thread popped
    // and reused this block meanwhile, the tag moved and we retry.
    uint32_t next =
        NextOf(BlockAt(idx_plus1 - 1))->load(std::memory_order_relaxed);
    uint64_t tag = (head >> 32) + 1;
    uint64_t want = (tag << 32) | next;
    if (head_.compare_exchange_weak(head, want, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      return idx_plus1;
    }
  }
}

void* ChunkPool::Get() {
  uint32_t got = PopFree();
  if (got == 0) {
    std::lock_guard lk(grow_mu_);
    // Another grower may have refilled the list while we waited.
    got = PopFree();
    if (got == 0) {
      // kArenaAlloc models the slab carve failing (arena fragmented or
      // exhausted): degrade to the same one-off overflow blocks the full
      // slab table uses — the pool keeps serving, just without recycling.
      if (num_slabs_ >= kMaxSlabs ||
          fault::Should(fault::SiteId::kArenaAlloc)) {
        // Slab table full (an unbounded consumer such as a long-running
        // log shard outgrew the pooled working set): serve one-off
        // blocks directly. They bypass the freelist — Put frees them —
        // so the pool keeps working, just without recycling the excess.
        uint8_t* block =
            arena_ != nullptr
                ? static_cast<uint8_t*>(arena_->Allocate(block_bytes_))
                : static_cast<uint8_t*>(
                      ::operator new[](block_bytes_, std::align_val_t{16}));
        std::memcpy(block + sizeof(std::atomic<uint32_t>), &kOverflowIndex,
                    sizeof(kOverflowIndex));
        overflow_allocs_.fetch_add(1, std::memory_order_relaxed);
        blocks_out_.fetch_add(1, std::memory_order_relaxed);
        return block + kHeaderBytes;
      }
      size_t slab_bytes = blocks_per_slab_ * block_bytes_;
      uint8_t* slab =
          arena_ != nullptr
              ? static_cast<uint8_t*>(arena_->Allocate(slab_bytes))
              : static_cast<uint8_t*>(
                    ::operator new[](slab_bytes, std::align_val_t{16}));
      uint32_t base = static_cast<uint32_t>(num_slabs_ * blocks_per_slab_);
      for (size_t b = 0; b < blocks_per_slab_; ++b) {
        uint8_t* block = slab + b * block_bytes_;
        *reinterpret_cast<uint32_t*>(block + sizeof(std::atomic<uint32_t>)) =
            base + static_cast<uint32_t>(b);
      }
      slabs_[num_slabs_].store(slab, std::memory_order_release);
      ++num_slabs_;
      slab_allocs_.fetch_add(1, std::memory_order_relaxed);
      // Keep block 0 for the caller; the rest feed the freelist.
      for (size_t b = 1; b < blocks_per_slab_; ++b)
        PushFree(base + static_cast<uint32_t>(b));
      got = base + 1;
    }
  }
  blocks_out_.fetch_add(1, std::memory_order_relaxed);
  return BlockAt(got - 1) + kHeaderBytes;
}

void ChunkPool::Put(void* payload) {
  uint8_t* block = static_cast<uint8_t*>(payload) - kHeaderBytes;
  uint32_t index = *reinterpret_cast<uint32_t*>(
      block + sizeof(std::atomic<uint32_t>));
  blocks_out_.fetch_sub(1, std::memory_order_relaxed);
  if (index == kOverflowIndex) {
    if (arena_ != nullptr) {
      arena_->Deallocate(block, block_bytes_);
    } else {
      ::operator delete[](block, std::align_val_t{16});
    }
    return;
  }
  PushFree(index);
}

}  // namespace atrapos::mem
