// Per-partition block freelist (ROADMAP: "Inbox chunk pooling").
//
// The submission fast path publishes one MpscChunkQueue chunk per partition
// per wave, and the log subsystem fills one buffer chunk per shard flush
// batch — both previously hit the global heap for every chunk. A ChunkPool
// hands out fixed-size blocks from a lock-free freelist so both paths
// allocate nothing in steady state: blocks are carved from slabs (drawn
// from the owning partition's island arena, so they are placed — and
// charged to AllocStats — like B-tree nodes) and recycled forever.
//
// Concurrency: Get/Put are lock-free (any thread). The freelist is a
// Treiber stack over 32-bit block indices packed with a 32-bit ABA tag into
// one 64-bit head, so a stale pop can never re-link a block that was
// reused in the meantime. The per-block `next` link is a std::atomic so
// the benign read of a just-popped block's link is a race-free atomic
// load. Slab growth (the only allocation) takes a mutex and is amortized
// away after warm-up.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace atrapos::mem {

class Arena;

/// Default payload size shared by the executor's inbox chunks and the log
/// shards' buffer chunks, so one per-partition pool serves both.
inline constexpr size_t kPartitionChunkBytes = 4096;

class ChunkPool {
 public:
  /// `payload_bytes`: usable bytes per block handed to callers. `arena`:
  /// backs the slabs (island placement + accounting); nullptr falls back
  /// to the heap.
  explicit ChunkPool(size_t payload_bytes = kPartitionChunkBytes,
                     Arena* arena = nullptr, size_t blocks_per_slab = 64);
  ~ChunkPool();

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  /// A 16-byte-aligned block of payload_bytes(). Lock-free except when the
  /// freelist is empty (slab carve under mutex). Never nullptr. Once the
  /// slab table is full (the freelist can no longer grow), blocks come
  /// straight from the arena/heap instead — unbounded consumers like a
  /// long-running log shard degrade to plain allocation rather than
  /// crashing, while the pooled working set keeps recycling.
  void* Get();

  /// Recycles a block previously returned by Get (lock-free, any thread).
  void Put(void* payload);

  size_t payload_bytes() const { return payload_bytes_; }
  /// Slabs carved so far — flat across identical workloads once warm, the
  /// signal the "allocates nothing steady-state" tests assert on.
  uint64_t slab_allocs() const {
    return slab_allocs_.load(std::memory_order_relaxed);
  }
  /// Blocks currently handed out (Get minus Put).
  int64_t blocks_out() const {
    return blocks_out_.load(std::memory_order_relaxed);
  }
  /// Blocks served outside the freelist after the slab table filled.
  uint64_t overflow_allocs() const {
    return overflow_allocs_.load(std::memory_order_relaxed);
  }

 private:
  // Block layout: 16-byte header {atomic<uint32_t> next_plus1; uint32_t
  // self_index; 8 bytes pad} followed by the payload. `next_plus1` is live
  // only while the block sits in the freelist; `self_index` is written once
  // at carve time and lets Put map payload -> index without a lookup.
  // Overflow blocks carry kOverflowIndex so Put frees them directly.
  static constexpr size_t kHeaderBytes = 16;
  static constexpr size_t kMaxSlabs = 1024;
  static constexpr uint32_t kOverflowIndex = UINT32_MAX;

  std::atomic<uint32_t>* NextOf(uint8_t* block) const {
    return reinterpret_cast<std::atomic<uint32_t>*>(block);
  }
  uint8_t* BlockAt(uint32_t index) const;
  void PushFree(uint32_t index);
  uint32_t PopFree();  ///< returns index+1, 0 when empty

  const size_t payload_bytes_;
  const size_t block_bytes_;  ///< header + payload, 16-aligned
  const size_t blocks_per_slab_;
  Arena* const arena_;

  /// head packs {32-bit ABA tag, 32-bit index+1 (0 = empty)}.
  alignas(64) std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> slab_allocs_{0};
  std::atomic<int64_t> blocks_out_{0};
  std::atomic<uint64_t> overflow_allocs_{0};

  std::mutex grow_mu_;
  // Fixed-capacity slab table: entries are written once (release) before
  // any index pointing into them is published, so BlockAt never races a
  // vector reallocation.
  std::atomic<uint8_t*> slabs_[kMaxSlabs] = {};
  size_t num_slabs_ = 0;  // guarded by grow_mu_
};

}  // namespace atrapos::mem
