// Island-aware allocator (paper §II-B, Table I): one Arena per socket plus
// a placement policy deciding which island's arena serves a request.
//
// Policies mirror the paper's memory-allocation experiment:
//   Local       — serve from the requesting island (the paper's winner)
//   Central     — all requests served from one designated island
//   Remote      — serve from a *different* island (the farthest by hop
//                 distance; the paper's worst case)
//   Interleaved — round-robin across islands (OS numactl --interleave)
//   FirstTouch  — serve from the island of the thread making the call
//                 (Linux default first-touch; differs from Local when an
//                 owner socket is passed on behalf of another thread,
//                 e.g. during initial bulk load from the main thread)
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/topology.h"
#include "mem/alloc_stats.h"
#include "mem/arena.h"

namespace atrapos::mem {

enum class PlacementPolicy {
  kLocal,
  kCentral,
  kRemote,
  kInterleaved,
  kFirstTouch,
};

const char* ToString(PlacementPolicy p);
std::optional<PlacementPolicy> ParsePlacementPolicy(const std::string& name);

class IslandAllocator {
 public:
  struct Options {
    PlacementPolicy policy = PlacementPolicy::kLocal;
    size_t arena_chunk_bytes = 1 << 20;
    /// The island serving every request under kCentral.
    hw::SocketId central_socket = 0;
    /// See Arena: emulated interconnect latency per hop (0 = off).
    uint32_t emulate_ns_per_hop = 0;
  };

  explicit IslandAllocator(const hw::Topology& topo);
  IslandAllocator(const hw::Topology& topo, Options opt);

  /// The arena homed on socket `s` (clamped into range).
  Arena* arena(hw::SocketId s);

  /// The arena the current policy selects for a request on behalf of
  /// `requesting` (e.g. a partition's owner socket).
  Arena* ArenaFor(hw::SocketId requesting) {
    return arena(Resolve(requesting));
  }

  /// Pure policy resolution: which socket serves `requesting`.
  hw::SocketId Resolve(hw::SocketId requesting);

  /// Deterministic resolution for placing the `seq`-th object of a stable
  /// sequence (e.g. partition index): kInterleaved maps seq round-robin
  /// instead of consuming the internal counter, so re-placing the same
  /// sequence is idempotent. Other policies ignore `seq`.
  hw::SocketId ResolveSeq(hw::SocketId requesting, uint64_t seq);

  AllocStats& stats() { return stats_; }
  const AllocStats& stats() const { return stats_; }
  const hw::Topology& topology() const { return topo_; }
  PlacementPolicy policy() const { return opt_.policy; }
  int num_arenas() const { return static_cast<int>(arenas_.size()); }

 private:
  hw::SocketId Clamp(hw::SocketId s) const {
    int n = static_cast<int>(arenas_.size());
    return (s < 0 || s >= n) ? 0 : s;
  }

  hw::Topology topo_;
  Options opt_;
  AllocStats stats_;
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::atomic<uint64_t> interleave_{0};
};

}  // namespace atrapos::mem
