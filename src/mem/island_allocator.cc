#include "mem/island_allocator.h"

#include "hw/binding.h"

namespace atrapos::mem {

const char* ToString(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kLocal: return "Local";
    case PlacementPolicy::kCentral: return "Central";
    case PlacementPolicy::kRemote: return "Remote";
    case PlacementPolicy::kInterleaved: return "Interleaved";
    case PlacementPolicy::kFirstTouch: return "FirstTouch";
  }
  return "?";
}

std::optional<PlacementPolicy> ParsePlacementPolicy(const std::string& name) {
  if (name == "local" || name == "Local") return PlacementPolicy::kLocal;
  if (name == "central" || name == "Central") return PlacementPolicy::kCentral;
  if (name == "remote" || name == "Remote") return PlacementPolicy::kRemote;
  if (name == "interleaved" || name == "Interleaved")
    return PlacementPolicy::kInterleaved;
  if (name == "firsttouch" || name == "first_touch" || name == "FirstTouch")
    return PlacementPolicy::kFirstTouch;
  return std::nullopt;
}

IslandAllocator::IslandAllocator(const hw::Topology& topo)
    : IslandAllocator(topo, Options{}) {}

IslandAllocator::IslandAllocator(const hw::Topology& topo, Options opt)
    : topo_(topo), opt_(opt), stats_(topo) {
  arenas_.reserve(static_cast<size_t>(topo_.num_sockets()));
  for (int s = 0; s < topo_.num_sockets(); ++s) {
    arenas_.push_back(std::make_unique<Arena>(static_cast<hw::SocketId>(s),
                                              &stats_, opt_.arena_chunk_bytes,
                                              opt_.emulate_ns_per_hop));
  }
}

Arena* IslandAllocator::arena(hw::SocketId s) {
  return arenas_[static_cast<size_t>(Clamp(s))].get();
}

hw::SocketId IslandAllocator::ResolveSeq(hw::SocketId requesting,
                                         uint64_t seq) {
  if (opt_.policy == PlacementPolicy::kInterleaved) {
    return static_cast<hw::SocketId>(seq %
                                     static_cast<uint64_t>(arenas_.size()));
  }
  return Resolve(requesting);
}

hw::SocketId IslandAllocator::Resolve(hw::SocketId requesting) {
  hw::SocketId req = Clamp(requesting);
  int n = static_cast<int>(arenas_.size());
  switch (opt_.policy) {
    case PlacementPolicy::kLocal:
      return req;
    case PlacementPolicy::kCentral:
      return Clamp(opt_.central_socket);
    case PlacementPolicy::kRemote: {
      if (n == 1) return req;
      // The farthest island by hop distance; ties broken toward the next
      // socket so single-hop topologies still go off-island.
      hw::SocketId best = (req + 1) % n;
      int best_d = topo_.Distance(req, best);
      for (int s = 0; s < n; ++s) {
        if (s == req) continue;
        int d = topo_.Distance(req, static_cast<hw::SocketId>(s));
        if (d > best_d) {
          best = static_cast<hw::SocketId>(s);
          best_d = d;
        }
      }
      return best;
    }
    case PlacementPolicy::kInterleaved:
      return static_cast<hw::SocketId>(
          interleave_.fetch_add(1, std::memory_order_relaxed) %
          static_cast<uint64_t>(n));
    case PlacementPolicy::kFirstTouch: {
      hw::SocketId s = hw::CurrentPlacement().socket;
      return s == hw::kInvalidSocket ? req : Clamp(s);
    }
  }
  return req;
}

}  // namespace atrapos::mem
