// Per-socket memory arena: chunked bump-pointer allocation with
// free-listed recycling by power-of-two size class.
//
// An Arena is "homed" on one hardware island (socket). On a real NUMA
// machine its chunks would be bound there with mbind/numa_alloc_onnode —
// that backend is future work (ROADMAP); today the home socket drives the
// placement *accounting* (AllocStats) and the optional emulated
// interconnect latency, so policies are observable and testable on any
// host behind the same interface.
//
// Thread safety: Allocate/Deallocate take an internal mutex (allocation is
// off the per-action critical path — pages and B-tree nodes amortize it);
// RecordAccess is lock-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hw/topology.h"
#include "mem/alloc_stats.h"

namespace atrapos::mem {

class Arena {
 public:
  static constexpr size_t kMinBlock = 16;      ///< smallest size class
  static constexpr size_t kNumClasses = 33;    ///< classes 2^4 .. 2^36

  /// `home`: the socket this arena's memory belongs to. `stats` may be
  /// nullptr (no accounting). `emulate_ns_per_hop`: when >0, RecordAccess
  /// busy-waits hops * ns to emulate interconnect latency on hosts without
  /// real NUMA (used by benchmarks; off by default).
  Arena(hw::SocketId home, AllocStats* stats, size_t chunk_bytes = 1 << 20,
        uint32_t emulate_ns_per_hop = 0);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a block of at least `bytes` (rounded up to its size class),
  /// 16-byte aligned. Never returns nullptr (aborts on OOM like new).
  void* Allocate(size_t bytes);

  /// Recycles a block previously returned by Allocate with the same
  /// `bytes`. Memory is kept for reuse; chunks are never unmapped.
  void Deallocate(void* p, size_t bytes);

  /// Records `bytes` of traffic from the calling thread's socket (see
  /// hw::CurrentPlacement) to this arena's home socket, and applies the
  /// emulated interconnect latency if configured.
  void RecordAccess(uint64_t bytes) const;

  hw::SocketId home_socket() const { return home_; }
  AllocStats* stats() const { return stats_; }

  /// Bytes handed out minus bytes recycled (size-class granularity).
  uint64_t bytes_in_use() const;
  /// Bytes ever handed out (cumulative).
  uint64_t bytes_allocated() const;
  size_t num_chunks() const;

  /// Size class a request of `bytes` lands in (rounded-up block size).
  static size_t BlockSize(size_t bytes);

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  static size_t ClassOf(size_t bytes);
  void* AllocateLocked(size_t block, size_t cls);

  const hw::SocketId home_;
  AllocStats* const stats_;
  const size_t chunk_bytes_;
  const uint32_t emulate_ns_per_hop_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  uint8_t* cur_ = nullptr;     // bump pointer into the newest chunk
  size_t cur_left_ = 0;
  FreeBlock* free_[kNumClasses] = {};
  uint64_t in_use_ = 0;
  uint64_t total_ = 0;
};

}  // namespace atrapos::mem
