#include "mem/arena.h"

#include <bit>
#include <chrono>
#include <cstdlib>

#include "hw/binding.h"

namespace atrapos::mem {

Arena::Arena(hw::SocketId home, AllocStats* stats, size_t chunk_bytes,
             uint32_t emulate_ns_per_hop)
    : home_(home),
      stats_(stats),
      chunk_bytes_(chunk_bytes < 4096 ? 4096 : chunk_bytes),
      emulate_ns_per_hop_(emulate_ns_per_hop) {}

size_t Arena::BlockSize(size_t bytes) {
  if (bytes < kMinBlock) bytes = kMinBlock;
  return std::bit_ceil(bytes);
}

size_t Arena::ClassOf(size_t bytes) {
  // Class i holds blocks of 2^(i+4) bytes: class 0 = 16 B.
  size_t block = BlockSize(bytes);
  return static_cast<size_t>(std::countr_zero(block)) - 4;
}

namespace {
hw::SocketId RequestingSocket(hw::SocketId fallback) {
  hw::SocketId s = hw::CurrentPlacement().socket;
  return s == hw::kInvalidSocket ? fallback : s;
}
}  // namespace

void* Arena::Allocate(size_t bytes) {
  size_t block = BlockSize(bytes);
  size_t cls = ClassOf(bytes);
  void* p;
  {
    std::lock_guard lk(mu_);
    p = AllocateLocked(block, cls);
    in_use_ += block;
    total_ += block;
  }
  if (stats_) stats_->RecordAlloc(RequestingSocket(home_), home_, block);
  return p;
}

void* Arena::AllocateLocked(size_t block, size_t cls) {
  if (free_[cls]) {
    FreeBlock* b = free_[cls];
    free_[cls] = b->next;
    return b;
  }
  // for_overwrite: callers initialize their blocks (pages memset, nodes
  // placement-new); value-init would zero whole chunks redundantly.
  if (block > chunk_bytes_) {
    // Oversized request: dedicated chunk, still recyclable via its class.
    chunks_.push_back(std::make_unique_for_overwrite<uint8_t[]>(block));
    return chunks_.back().get();
  }
  if (cur_left_ < block) {
    chunks_.push_back(std::make_unique_for_overwrite<uint8_t[]>(chunk_bytes_));
    cur_ = chunks_.back().get();
    cur_left_ = chunk_bytes_;
  }
  uint8_t* p = cur_;
  cur_ += block;
  cur_left_ -= block;
  return p;
}

void Arena::Deallocate(void* p, size_t bytes) {
  if (!p) return;
  size_t block = BlockSize(bytes);
  size_t cls = ClassOf(bytes);
  {
    std::lock_guard lk(mu_);
    auto* b = static_cast<FreeBlock*>(p);
    b->next = free_[cls];
    free_[cls] = b;
    in_use_ -= block;
  }
  if (stats_) stats_->RecordFree(home_, block);
}

void Arena::RecordAccess(uint64_t bytes) const {
  if (!stats_) return;
  hw::SocketId from = RequestingSocket(home_);
  stats_->RecordAccess(from, home_, bytes);
  if (emulate_ns_per_hop_ == 0) return;
  int hops = stats_->Hops(from, home_);
  if (hops <= 0) return;
  // Busy-wait: emulated interconnect latency (per access, not per byte).
  auto until = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(
                   static_cast<uint64_t>(hops) * emulate_ns_per_hop_);
  while (std::chrono::steady_clock::now() < until) {
  }
}

uint64_t Arena::bytes_in_use() const {
  std::lock_guard lk(mu_);
  return in_use_;
}

uint64_t Arena::bytes_allocated() const {
  std::lock_guard lk(mu_);
  return total_;
}

size_t Arena::num_chunks() const {
  std::lock_guard lk(mu_);
  return chunks_.size();
}

}  // namespace atrapos::mem
