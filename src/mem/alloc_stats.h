// Allocation- and access-traffic accounting for the island-aware memory
// subsystem (paper §II-B, Table I).
//
// The paper's Table I distinguishes memory policies by the ratio of
// interconnect (QPI) to local memory-controller (IMC) traffic. We reproduce
// that signal in software: every arena allocation and every page access is
// charged to a (requesting socket, serving socket) pair, and the remote
// share of that matrix is the QPI/IMC-style ratio. Counters are relaxed
// atomics — workers on every socket record concurrently with readers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/topology.h"

namespace atrapos::mem {

class AllocStats {
 public:
  /// `topo` supplies the socket count and hop distances; the stats object
  /// keeps its own copy so it can outlive the caller's topology.
  explicit AllocStats(const hw::Topology& topo);

  // ---- Recording (relaxed atomics; callable from any thread) -------------

  /// Charges `bytes` of arena allocation requested by `from` and served by
  /// the arena on `to`.
  void RecordAlloc(hw::SocketId from, hw::SocketId to, uint64_t bytes);
  /// Returns `bytes` previously charged to `to` (arena recycling).
  void RecordFree(hw::SocketId to, uint64_t bytes);
  /// Charges `bytes` of memory traffic from a thread on `from` touching
  /// memory homed on `to`.
  void RecordAccess(hw::SocketId from, hw::SocketId to, uint64_t bytes);
  /// Charges `bytes` physically copied from island `from` to island `to`
  /// by a partition migration (heap pages / B-tree nodes reseated on
  /// Repartition). Kept apart from RecordAccess so steady-state traffic
  /// ratios are not polluted by one-off repartitioning cost (Fig. 9).
  void RecordMigration(hw::SocketId from, hw::SocketId to, uint64_t bytes);

  // ---- Reading ------------------------------------------------------------

  uint64_t alloc_bytes(hw::SocketId from, hw::SocketId to) const;
  uint64_t access_bytes(hw::SocketId from, hw::SocketId to) const;
  /// Total bytes moved by partition migrations (all island pairs).
  uint64_t migrated_bytes() const;
  /// Migration bytes that actually crossed islands (from != to).
  uint64_t cross_island_migrated_bytes() const;
  /// Net bytes currently resident on socket `s` (allocs minus frees).
  int64_t resident_bytes(hw::SocketId s) const;

  uint64_t LocalAllocBytes() const;
  uint64_t RemoteAllocBytes() const;
  uint64_t LocalAccessBytes() const;
  uint64_t RemoteAccessBytes() const;

  /// Remote/local traffic ratio over recorded accesses — the software
  /// analogue of the paper's QPI/IMC ratio (~0 for island-local placement,
  /// >1 when most traffic crosses sockets). Returns 0 when nothing local
  /// and nothing remote was recorded.
  double AccessRemoteRatio() const;
  /// Same ratio over allocation traffic.
  double AllocRemoteRatio() const;

  /// Hop distance between two sockets (0 on the same socket).
  int Hops(hw::SocketId from, hw::SocketId to) const {
    return topo_.Distance(Clamp(from), Clamp(to));
  }

  int num_sockets() const { return n_; }

  /// Zeroes every counter (e.g. after the load phase of a benchmark).
  void Reset();

  std::string ToString() const;

 private:
  hw::SocketId Clamp(hw::SocketId s) const {
    return (s < 0 || s >= n_) ? 0 : s;
  }
  size_t Idx(hw::SocketId from, hw::SocketId to) const {
    return static_cast<size_t>(Clamp(from)) * static_cast<size_t>(n_) +
           static_cast<size_t>(Clamp(to));
  }
  uint64_t SumIf(const std::vector<std::atomic<uint64_t>>& m,
                 bool diagonal) const;

  hw::Topology topo_;
  int n_;
  std::vector<std::atomic<uint64_t>> alloc_;   // n x n, row = requesting
  std::vector<std::atomic<uint64_t>> access_;  // n x n
  std::vector<std::atomic<uint64_t>> migrate_; // n x n, row = old island
  std::vector<std::atomic<uint64_t>> freed_;   // per serving socket
};

}  // namespace atrapos::mem
