#include "log/log_manager.h"

#include <algorithm>
#include <chrono>

#include "obs/registry.h"

namespace atrapos::log {

LogManager::LogManager() : LogManager(Options{}) {}

LogManager::LogManager(Options opt) : opt_(opt) {
  if (opt_.start_flusher) flusher_ = std::thread([this] { FlusherLoop(); });
}

LogManager::~LogManager() {
  Stop();
  // Markers appended after Stop() can never become durable; drop their
  // occurrences' references without acking or advancing the watermark.
  std::lock_guard lk(shards_mu_);
  for (auto& s : shards_) {
    for (CommitTicket* t : s->TakeUnsettledWaiters()) ReleaseCommitTicket(t);
  }
}

int LogManager::AddShard(std::shared_ptr<mem::ChunkPool> pool,
                         mem::Arena* arena) {
  if (pool == nullptr)
    pool = std::make_shared<mem::ChunkPool>(opt_.chunk_payload_bytes, arena);
  std::lock_guard lk(shards_mu_);
  int id = static_cast<int>(shards_.size());
  shards_.push_back(std::make_unique<LogShard>(id, generation_,
                                               std::move(pool), arena,
                                               opt_.wire));
  active_.push_back(shards_.back().get());
  return id;
}

void LogManager::BeginGeneration() {
  std::vector<CommitTicket*> fired;
  {
    std::lock_guard lk(shards_mu_);
    for (LogShard* s : active_) s->Seal(&fired);
    active_.clear();
    ++generation_;
  }
  SettleDurable(fired);
}

LogShard* LogManager::ActiveShard(size_t seq) {
  std::lock_guard lk(shards_mu_);
  if (active_.empty()) return nullptr;
  return active_[seq < active_.size() ? seq : 0];
}

LogShard* LogManager::shard(int id) {
  std::lock_guard lk(shards_mu_);
  if (id < 0 || static_cast<size_t>(id) >= shards_.size()) return nullptr;
  return shards_[static_cast<size_t>(id)].get();
}

size_t LogManager::num_shards() const {
  std::lock_guard lk(shards_mu_);
  return shards_.size();
}

size_t LogManager::num_active_shards() const {
  std::lock_guard lk(shards_mu_);
  return active_.size();
}

int LogManager::generation() const {
  std::lock_guard lk(shards_mu_);
  return generation_;
}

CommitTicket* LogManager::BeginCommit(int expected, void* cookie,
                                      bool fire_on_append) {
  uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  return new CommitTicket(expected, epoch, cookie, fire_on_append);
}

void LogManager::OnMarkersAppended(std::span<CommitTicket* const> tickets) {
  CommitSink* sink = sink_.load(std::memory_order_acquire);
  for (CommitTicket* t : tickets) {
    // Only append-fired (async) tickets reach here (see AppendBatch); the
    // append-side reference keeps *t alive against a racing flusher.
    if (t->cookie != nullptr && sink != nullptr)
      sink->OnCommitAcked(t->epoch, t->cookie);
    ReleaseCommitTicket(t);
  }
}

void LogManager::SettleDurable(const std::vector<CommitTicket*>& tickets) {
  CommitSink* sink = sink_.load(std::memory_order_acquire);
  for (CommitTicket* t : tickets) {
    if (t->remaining_durable.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last marker of this commit just became durable. Watermark first,
      // so an acked client observes a durable epoch covering its commit.
      MarkEpochDurable(t->epoch);
      if (!t->fire_on_append && t->cookie != nullptr && sink != nullptr)
        sink->OnCommitAcked(t->epoch, t->cookie);
    }
    ReleaseCommitTicket(t);  // one reference per settled occurrence
  }
}

void LogManager::MarkEpochDurable(uint64_t epoch) {
  std::lock_guard lk(epoch_mu_);
  uint64_t mark = durable_epoch_.load(std::memory_order_relaxed);
  if (epoch != mark + 1) {
    durable_out_of_order_.push_back(epoch);
    std::push_heap(durable_out_of_order_.begin(), durable_out_of_order_.end(),
                   std::greater<>());
    return;
  }
  mark = epoch;
  while (!durable_out_of_order_.empty() &&
         durable_out_of_order_.front() == mark + 1) {
    std::pop_heap(durable_out_of_order_.begin(), durable_out_of_order_.end(),
                  std::greater<>());
    durable_out_of_order_.pop_back();
    ++mark;
  }
  durable_epoch_.store(mark, std::memory_order_release);
}

void LogManager::FlushAll() {
  obs::Registry* reg = opt_.registry;
  const bool rec =
      reg != nullptr && (reg->metrics_enabled() || reg->trace_enabled());
  const uint64_t t0 = rec ? reg->NowNs() : 0;
  std::vector<CommitTicket*> fired;
  {
    std::lock_guard lk(shards_mu_);
    // Active shards only: Seal() already performed a sealed shard's final
    // flush and settled its waiters, and its durable point can never
    // advance — scanning old generations would make the flusher's
    // per-window work grow with every repartition.
    for (LogShard* s : active_) s->Flush(&fired);
  }
  SettleDurable(fired);
  if (rec) {
    const uint64_t dt = reg->NowNs() - t0;
    reg->Count(obs::CounterId::kLogFlushes);
    reg->RecordLatency(obs::HistId::kLogFlushUs, dt / 1000);
    const uint64_t last = last_epoch();
    const uint64_t durable = durable_epoch();
    reg->SetGauge(obs::GaugeId::kDurableLagEpochs,
                  static_cast<int64_t>(last > durable ? last - durable : 0));
    reg->Trace(obs::SpanId::kLogFlush, obs::TracePhase::kComplete, 0, dt);
  }
}

void LogManager::FlusherLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    FlushAll();
    std::this_thread::sleep_for(
        std::chrono::microseconds(opt_.flush_interval_us));
  }
}

void LogManager::Stop() {
  if (stopped_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) flusher_.join();
  // Final group commit: everything appended so far becomes durable and
  // every settled waiter is acked, so no committer hangs at shutdown.
  FlushAll();
  stopped_.store(true, std::memory_order_release);
  std::lock_guard lk(shards_mu_);
  for (auto& s : shards_) s->MarkStopped();
}

DurablePoint LogManager::durable_point() const {
  DurablePoint p;
  std::lock_guard lk(shards_mu_);
  p.shard_lsns.reserve(shards_.size());
  for (const auto& s : shards_) p.shard_lsns.push_back(s->durable_lsn());
  p.epoch = durable_epoch_.load(std::memory_order_acquire);
  return p;
}

std::vector<ShardSnapshot> LogManager::SnapshotDurable() const {
  std::lock_guard lk(shards_mu_);
  std::vector<ShardSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s->SnapshotDurable());
  return out;
}

// ---- centralized compat -----------------------------------------------------

void LogManager::EnsureCentralShard(mem::Arena* arena) {
  {
    std::lock_guard lk(shards_mu_);
    if (!shards_.empty()) return;
  }
  AddShard(nullptr, arena);
}

Lsn LogManager::Append(TxnId txn, LogType type, uint64_t a, uint64_t b) {
  LogShard* s = ActiveShard(0);
  if (s == nullptr) return 0;
  PendingRecord r;
  r.txn = txn;
  r.type = type;
  r.table = static_cast<uint32_t>(a);
  r.key = b;
  return s->AppendOne(r, nullptr, nullptr);
}

Lsn LogManager::Commit(TxnId txn) {
  LogShard* s = ActiveShard(0);
  if (s == nullptr) return 0;
  CommitTicket* t = BeginCommit(1, nullptr, false);
  PendingRecord r;
  r.txn = txn;
  r.type = LogType::kCommit;
  r.epoch = t->epoch;
  r.marker_expected = 1;
  r.ticket = t;
  Lsn lsn = s->AppendOne(r, nullptr, nullptr);
  Lsn durable = s->WaitDurable(lsn);
  return durable >= lsn ? lsn : durable;
}

Lsn LogManager::WaitDurable(Lsn lsn) {
  LogShard* s = ActiveShard(0);
  return s == nullptr ? 0 : s->WaitDurable(lsn);
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard lk(shards_mu_);
  return shards_.empty() ? 0 : shards_.front()->durable_lsn();
}

uint64_t LogManager::num_records() const {
  std::lock_guard lk(shards_mu_);
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->num_records();
  return n;
}

uint64_t LogManager::bytes_logged() const {
  std::lock_guard lk(shards_mu_);
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->bytes_logged();
  return n;
}

}  // namespace atrapos::log
