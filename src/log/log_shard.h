// One partition's write-ahead log shard.
//
// The buffer is a chain of fixed-size chunks drawn from the partition's
// ChunkPool (arena-backed on the owner island, charged to mem::AllocStats
// like B-tree nodes), standing in for a memory-mapped log disk. Inserts
// are lock-minimized in the spirit of mpsc_queue.h: a worker stages the
// records of a whole drained batch locally (ShardWriter) and appends them
// with ONE mutex acquisition — one LSN-range reservation per batch, not
// per record. The centralized 1-shard configuration keeps the retired
// txn::WriteAheadLog's per-record appends (ShardWriter immediate mode),
// which is exactly the contention the paper's Fig. 4 logging slice
// measures.
//
// Durability is per shard: a group-commit flusher (LogManager) advances
// `durable_lsn` and collects the commit tickets of markers that just
// became durable. Blocking waiters (the compat path) sleep on a cv; after
// Stop() the durable LSN is frozen and WaitDurable returns it immediately
// instead of hanging.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "log/log_record.h"
#include "mem/chunk_pool.h"

namespace atrapos::mem {
class Arena;
}  // namespace atrapos::mem

namespace atrapos::log {

class LogShard {
 public:
  /// `pool` backs the chunk chain (shared with the partition's inbox so a
  /// sealed shard keeps its blocks alive after the partition is gone);
  /// `arena` — when non-null — charges append traffic to the owner island;
  /// `wire` selects the serialization (see WireFormat).
  LogShard(int id, int generation, std::shared_ptr<mem::ChunkPool> pool,
           mem::Arena* arena,
           WireFormat wire = WireFormat::kCompactDiffV2);
  ~LogShard();

  LogShard(const LogShard&) = delete;
  LogShard& operator=(const LogShard&) = delete;

  /// Appends `n` staged records under one lock acquisition (one LSN-range
  /// reservation per drained batch). `images` is the writer's side buffer
  /// the records' image offsets index into. Commit markers decrement their
  /// ticket's `remaining_append`; tickets that hit zero are pushed onto
  /// `append_fired` (cleared first) for the caller to ack OUTSIDE the
  /// lock. Returns the first LSN of the batch (0 when n == 0).
  Lsn AppendBatch(const PendingRecord* recs, size_t n, const uint8_t* images,
                  std::vector<CommitTicket*>* append_fired);

  /// Single-record convenience: the per-record append path of the
  /// centralized configuration and the abort markers.
  Lsn AppendOne(const PendingRecord& rec, const uint8_t* image,
                std::vector<CommitTicket*>* append_fired);

  /// Group commit: advances the durable LSN to the current tail, wakes
  /// blocking waiters, and appends (never clears) the tickets of commit
  /// markers that just became durable to `durable_fired` for the flusher
  /// to settle outside the lock. Under an armed kLogShortFlush fault the
  /// durable LSN advances only part-way (a short write); the next flush
  /// pass completes the window, so group commit degrades to higher
  /// latency, never to a lost ack.
  void Flush(std::vector<CommitTicket*>* durable_fired);

  /// Blocks until `lsn` is durable and returns the durable LSN then —
  /// or, once the shard is stopped, returns the frozen durable LSN
  /// immediately (a stopped shard's durable point can never advance).
  Lsn WaitDurable(Lsn lsn);

  /// Final flush + no further appends (asserted). Sealed shards stay
  /// readable for recovery; Repartition seals a generation's shards when
  /// their partitions are reassigned.
  void Seal(std::vector<CommitTicket*>* durable_fired);

  /// Marks the shard stopped (durable LSN frozen) and wakes waiters.
  void MarkStopped();

  /// Drains the not-yet-durable commit tickets (markers appended after the
  /// final flush); the manager's destructor reclaims them.
  std::vector<CommitTicket*> TakeUnsettledWaiters();

  /// The durable prefix as recovery would see it after a crash: every
  /// record with LSN <= durable_lsn, parsed out of the chunk chain. When a
  /// kLogTornTail fault fired during an append, the shard carries a torn
  /// cut — a byte offset mid-record where the modeled disk write stopped —
  /// and the snapshot ends there instead, with `torn`/`torn_lsn`/
  /// `torn_cut_byte` reporting the cut point. The live engine never sees
  /// the tear; only recovery does, exactly like a crash mid-write.
  ShardSnapshot SnapshotDurable() const;

  /// The injected torn-tail cut in bytes (0 = none).
  uint64_t torn_cut_byte() const;

  int id() const { return id_; }
  int generation() const { return generation_; }
  WireFormat wire() const { return wire_; }
  bool sealed() const;
  Lsn durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  Lsn tail_lsn() const;
  uint64_t num_records() const {
    return num_records_.load(std::memory_order_relaxed);
  }
  /// Bytes appended so far (headers + images).
  uint64_t bytes_logged() const {
    return bytes_logged_.load(std::memory_order_relaxed);
  }

 private:
  struct Buf {
    uint8_t* data = nullptr;
    uint32_t used = 0;
  };

  /// Serialized size of one staged record under this shard's wire format.
  size_t WireSize(const PendingRecord& r) const;
  /// Copies one record into the chunk chain; caller holds mu_.
  void WriteLocked(const PendingRecord& r, Lsn lsn, const uint8_t* image);
  /// Ensures the chunk chain can take `need` contiguous bytes; caller
  /// holds mu_. Returns the write position.
  uint8_t* ReserveLocked(size_t need);
  /// Flush body; `allow_fault` gates the kLogShortFlush site (Seal's final
  /// flush must complete, or sealed shards would strand commit tickets).
  void FlushInternal(std::vector<CommitTicket*>* durable_fired,
                     bool allow_fault);

  const int id_;
  const int generation_;
  const WireFormat wire_;
  const std::shared_ptr<mem::ChunkPool> pool_;
  mem::Arena* const arena_;

  mutable std::mutex mu_;
  std::condition_variable flushed_cv_;
  std::vector<Buf> bufs_;           // the chunk chain (the "disk")
  Lsn next_lsn_ = 1;                // guarded by mu_
  bool sealed_ = false;             // guarded by mu_
  /// Commit markers awaiting durability, in LSN order (appended in LSN
  /// order under mu_; Flush pops the durable prefix).
  std::vector<std::pair<Lsn, CommitTicket*>> waiters_;
  size_t waiters_head_ = 0;

  /// Injected torn tail: byte offset (in cumulative record-wire bytes)
  /// where the modeled disk write stopped, and the first LSN it cuts.
  /// Guarded by mu_; 0 = no tear.
  uint64_t torn_cut_byte_ = 0;
  Lsn torn_lsn_ = 0;

  std::atomic<Lsn> durable_lsn_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> num_records_{0};
  std::atomic<uint64_t> bytes_logged_{0};
};

}  // namespace atrapos::log
