// LogManager: the island-partitioned durability subsystem's front door.
//
// Owns one LogShard per partition (executor configuration) or a single
// centralized shard (the retired txn::WriteAheadLog's protocol, kept
// behind the same interface for Database and for the contention
// comparison benches). A background group-commit flusher advances every
// shard's durable LSN each window and settles commit tickets; commit acks
// are asynchronous — the flusher (group mode) or the appending worker
// (async mode) notifies the registered CommitSink, and no worker ever
// blocks on a flush window.
//
// The durable point is distributed: a vector of per-shard LSNs plus a
// commit-epoch watermark. Epochs are drawn from one global counter at
// commit time (an atomic increment — the only shared write on the commit
// path, vs the retired WAL's mutex per record); the watermark advances
// once every transaction with a smaller epoch is durable on every shard
// it touched.
//
// Repartitioning seals the current generation's shards (they stay
// readable for recovery) and opens a new generation whose shards are
// placed with the new partitions. log::Recover replays all generations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "log/log_record.h"
#include "log/log_shard.h"

namespace atrapos::obs {
class Registry;
}  // namespace atrapos::obs

namespace atrapos::log {

class LogManager {
 public:
  struct Options {
    /// Group-commit window of the background flusher.
    uint64_t flush_interval_us = 50;
    /// Tests drive flushing manually with FlushAll() when false.
    bool start_flusher = true;
    /// Chunk payload for shards the manager creates its own pool for.
    size_t chunk_payload_bytes = mem::kPartitionChunkBytes;
    /// Serialization of every shard this manager creates. kCompactDiffV2
    /// (default) writes the slim Rid+diff records; kAfterImageV1 keeps the
    /// PR 4 after-image encoding for the log-bytes comparison.
    WireFormat wire = WireFormat::kCompactDiffV2;
    /// Observability registry for flush latency, flush count, and the
    /// durable-lag gauge (nullptr = no recording). Must outlive the
    /// manager; the executor passes its database's registry.
    obs::Registry* registry = nullptr;
  };

  /// Receives commit acks. Group mode: called on the flusher thread once
  /// the transaction's markers are durable on every shard it touched.
  /// Async mode: called on the worker appending the last marker.
  class CommitSink {
   public:
    virtual ~CommitSink() = default;
    virtual void OnCommitAcked(uint64_t epoch, void* cookie) = 0;
  };

  LogManager();  // default Options
  explicit LogManager(Options opt);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // ---- shard topology (workers must be stopped) ---------------------------

  /// Adds a shard to the current generation and returns its stable id.
  /// `pool` may be null (the manager creates a heap-backed pool); `arena`
  /// may be null (no island accounting).
  int AddShard(std::shared_ptr<mem::ChunkPool> pool, mem::Arena* arena);

  /// Seals every active shard (final flush; kept for recovery) and opens
  /// a new generation for subsequent AddShard calls.
  void BeginGeneration();

  /// The active shard serving partition `seq` of the current generation
  /// (clamped: the centralized configuration routes everything to its one
  /// shard).
  LogShard* ActiveShard(size_t seq);
  /// Any shard, sealed or active, by stable id.
  LogShard* shard(int id);
  size_t num_shards() const;       ///< all generations
  size_t num_active_shards() const;
  int generation() const;

  // ---- commit protocol ----------------------------------------------------

  void SetCommitSink(CommitSink* sink) { sink_ = sink; }

  /// Draws the next commit epoch and builds the ticket that tracks the
  /// transaction's markers across `expected` shards. The caller threads
  /// the ticket through the marker records it stages. The manager frees
  /// the ticket when the last marker is durable.
  CommitTicket* BeginCommit(int expected, void* cookie, bool fire_on_append);

  /// Ack path for append-fired tickets: the worker that appended a batch
  /// passes the tickets its shard reported (LogShard::AppendBatch). Must
  /// be called outside any shard lock.
  void OnMarkersAppended(std::span<CommitTicket* const> tickets);

  // ---- flushing / durability ---------------------------------------------

  /// One group-commit pass over every shard: advances durable LSNs,
  /// settles tickets (acks group-mode commits, advances the epoch
  /// watermark, frees tickets). The background flusher calls this every
  /// window; manual-mode tests call it directly.
  void FlushAll();

  /// Stops the flusher after a final FlushAll and freezes every shard's
  /// durable point; post-stop WaitDurable/Commit return the last durable
  /// LSN immediately. Idempotent; also run by the destructor.
  void Stop();

  DurablePoint durable_point() const;
  uint64_t durable_epoch() const {
    return durable_epoch_.load(std::memory_order_acquire);
  }
  uint64_t last_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  // ---- recovery -----------------------------------------------------------

  /// The durable prefix of every shard, all generations — what a crash at
  /// this instant would leave for log::Recover.
  std::vector<ShardSnapshot> SnapshotDurable() const;

  // ---- centralized compat (the retired WriteAheadLog interface) ----------

  /// Ensures the centralized 1-shard configuration exists (id 0). Called
  /// by Database; a no-op when shards were already added.
  void EnsureCentralShard(mem::Arena* arena);

  /// Appends one record to the central shard under its mutex — the
  /// per-record path whose contention Fig. 4 measures.
  Lsn Append(TxnId txn, LogType type, uint64_t a = 0, uint64_t b = 0);
  /// Appends a commit marker and blocks until it is durable (or the
  /// manager stopped — then returns the last durable LSN immediately).
  Lsn Commit(TxnId txn);
  Lsn WaitDurable(Lsn lsn);
  Lsn durable_lsn() const;         ///< central shard's durable LSN
  uint64_t num_records() const;    ///< summed over all shards
  uint64_t bytes_logged() const;   ///< headers + payloads, all shards
  WireFormat wire() const { return opt_.wire; }

 private:
  void FlusherLoop();
  /// Settles tickets whose last marker became durable: group-mode ack,
  /// epoch watermark, free. Runs on the flusher (or FlushAll caller).
  void SettleDurable(const std::vector<CommitTicket*>& tickets);
  void MarkEpochDurable(uint64_t epoch);

  Options opt_;
  std::atomic<CommitSink*> sink_{nullptr};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> durable_epoch_{0};

  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<LogShard>> shards_;  // stable ids, all gens
  std::vector<LogShard*> active_;                  // by partition seq
  int generation_ = 0;

  /// Out-of-order durable epochs waiting for the watermark to reach them.
  std::mutex epoch_mu_;
  std::vector<uint64_t> durable_out_of_order_;  // min-heap

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::thread flusher_;
};

}  // namespace atrapos::log
