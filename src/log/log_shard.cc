#include "log/log_shard.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/injector.h"
#include "mem/arena.h"

namespace atrapos::log {

LogShard::LogShard(int id, int generation,
                   std::shared_ptr<mem::ChunkPool> pool, mem::Arena* arena,
                   WireFormat wire)
    : id_(id), generation_(generation), wire_(wire), pool_(std::move(pool)),
      arena_(arena) {}

LogShard::~LogShard() {
  for (Buf& b : bufs_) pool_->Put(b.data);
}

size_t LogShard::WireSize(const PendingRecord& r) const {
  if (wire_ == WireFormat::kAfterImageV1)
    return sizeof(RecordHeader) + r.image_size;
  return (IsMarkerType(r.type) ? sizeof(MarkerHeaderV2)
                               : sizeof(DataHeaderV2)) +
         r.image_size;
}

uint8_t* LogShard::ReserveLocked(size_t need) {
  size_t cap = pool_->payload_bytes();
  if (need > cap) {
    // Records never span chunks; every workload's fixed-width tuples are
    // far below a chunk, so an oversized image is a programming error.
    std::fprintf(stderr, "LogShard: record of %zu bytes exceeds chunk %zu\n",
                 need, cap);
    std::abort();
  }
  if (bufs_.empty() || cap - bufs_.back().used < need) {
    bufs_.push_back(Buf{static_cast<uint8_t*>(pool_->Get()), 0});
  }
  uint8_t* p = bufs_.back().data + bufs_.back().used;
  bufs_.back().used += static_cast<uint32_t>(need);
  return p;
}

void LogShard::WriteLocked(const PendingRecord& r, Lsn lsn,
                           const uint8_t* image) {
  size_t need = WireSize(r);
  uint8_t* p = ReserveLocked(need);
  if (wire_ == WireFormat::kAfterImageV1) {
    // Diff payloads require the v2 headers that carry (rid, offset); a
    // diff staged against a v1 shard would serialize as a corrupt
    // partial after-image and silently vanish at recovery — fail loudly
    // (release builds included, like the u16 guards below).
    if (r.is_diff) {
      std::fprintf(stderr, "LogShard: diff record staged against a v1 "
                           "after-image shard\n");
      std::abort();
    }
    RecordHeader h;
    h.lsn = lsn;
    h.txn = r.txn;
    h.key = r.key;
    h.epoch = r.epoch;
    h.table = r.table;
    h.type = static_cast<uint16_t>(r.type);
    h.marker_expected = r.marker_expected;
    h.image_size = r.image_size;
    std::memcpy(p, &h, sizeof(h));
    p += sizeof(h);
  } else if (IsMarkerType(r.type)) {
    MarkerHeaderV2 h;
    h.type = static_cast<uint8_t>(r.type);
    h.marker_expected = r.marker_expected;
    h.txn = r.txn;
    h.epoch = r.epoch;
    std::memcpy(p, &h, sizeof(h));
    p += sizeof(h);
  } else {
    // v2 narrows table and payload size to u16; a value that does not fit
    // must fail loudly (like oversized records), not truncate silently.
    if (r.table > UINT16_MAX || r.image_size > UINT16_MAX) {
      std::fprintf(stderr,
                   "LogShard: record (table=%u, image=%u B) exceeds the v2 "
                   "u16 wire fields\n",
                   r.table, r.image_size);
      std::abort();
    }
    DataHeaderV2 h;
    h.type = static_cast<uint8_t>(r.type);
    h.flags = r.is_diff ? kRecFlagDiff : 0;
    h.table = static_cast<uint16_t>(r.table);
    h.diff_offset = r.diff_offset;
    h.image_size = static_cast<uint16_t>(r.image_size);
    h.txn = r.txn;
    h.key = r.key;
    h.rid = r.rid;
    std::memcpy(p, &h, sizeof(h));
    p += sizeof(h);
  }
  if (r.image_size > 0) std::memcpy(p, image, r.image_size);
  bytes_logged_.fetch_add(need, std::memory_order_relaxed);
}

Lsn LogShard::AppendBatch(const PendingRecord* recs, size_t n,
                          const uint8_t* images,
                          std::vector<CommitTicket*>* append_fired) {
  if (append_fired != nullptr) append_fired->clear();
  if (n == 0) return 0;
  Lsn first;
  uint64_t bytes = 0;
  {
    std::lock_guard lk(mu_);
    assert(!sealed_ && "append to a sealed shard");
    first = next_lsn_;
    for (size_t i = 0; i < n; ++i) {
      const PendingRecord& r = recs[i];
      Lsn lsn = next_lsn_++;
      if (torn_cut_byte_ == 0 &&
          fault::Should(fault::SiteId::kLogTornTail)) {
        // Torn tail: the modeled disk write stops mid-record. The live
        // chunk chain still gets the full record (the engine is not
        // crashing), but SnapshotDurable — the recovery view — cuts here.
        torn_cut_byte_ = bytes_logged_.load(std::memory_order_relaxed) +
                         WireSize(r) / 2;
        torn_lsn_ = lsn;
      }
      WriteLocked(r, lsn, images + r.image_offset);
      bytes += WireSize(r);
      if (r.ticket != nullptr) {
        waiters_.emplace_back(lsn, r.ticket);
        if (r.ticket->remaining_append.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          // Last marker appended. The append-side reference either rides
          // out to the caller (async tickets fire their ack outside the
          // lock via OnMarkersAppended, which releases it) or is dropped
          // here, where the ticket is still safely alive.
          if (r.ticket->fire_on_append && append_fired != nullptr) {
            append_fired->push_back(r.ticket);
          } else {
            ReleaseCommitTicket(r.ticket);
          }
        }
      }
    }
  }
  num_records_.fetch_add(n, std::memory_order_relaxed);
  // Log traffic shows up in the island traffic matrix like any other
  // partition-state access: local for per-partition shards, cross-island
  // for the centralized configuration.
  if (arena_ != nullptr) arena_->RecordAccess(bytes);
  return first;
}

Lsn LogShard::AppendOne(const PendingRecord& rec, const uint8_t* image,
                        std::vector<CommitTicket*>* append_fired) {
  PendingRecord r = rec;
  r.image_offset = 0;
  return AppendBatch(&r, 1, image, append_fired);
}

void LogShard::Flush(std::vector<CommitTicket*>* durable_fired) {
  FlushInternal(durable_fired, /*allow_fault=*/true);
}

void LogShard::FlushInternal(std::vector<CommitTicket*>* durable_fired,
                             bool allow_fault) {
  Lsn tail;
  bool advanced = false;
  {
    std::lock_guard lk(mu_);
    tail = next_lsn_ - 1;
    Lsn cur = durable_lsn_.load(std::memory_order_relaxed);
    if (allow_fault && tail > cur &&
        fault::Should(fault::SiteId::kLogShortFlush)) {
      // Short write: only part of the window reached the disk. The rest
      // stays buffered for the flusher's next pass.
      tail = cur + (tail - cur + 1) / 2;
    }
    if (tail > durable_lsn_.load(std::memory_order_relaxed)) {
      // The "flush": with a memory-mapped log disk this is a memcpy plus
      // fence; the group-commit window batches whatever accumulated.
      durable_lsn_.store(tail, std::memory_order_release);
      advanced = true;
    }
    while (waiters_head_ < waiters_.size() &&
           waiters_[waiters_head_].first <= tail) {
      if (durable_fired != nullptr)
        durable_fired->push_back(waiters_[waiters_head_].second);
      ++waiters_head_;
    }
    if (waiters_head_ == waiters_.size() && waiters_head_ > 0) {
      waiters_.clear();
      waiters_head_ = 0;
    }
  }
  if (advanced) flushed_cv_.notify_all();
}

Lsn LogShard::WaitDurable(Lsn lsn) {
  Lsn durable = durable_lsn_.load(std::memory_order_acquire);
  if (durable >= lsn) return durable;
  std::unique_lock lk(mu_);
  flushed_cv_.wait(lk, [&] {
    return durable_lsn_.load(std::memory_order_acquire) >= lsn ||
           stopped_.load(std::memory_order_acquire);
  });
  return durable_lsn_.load(std::memory_order_acquire);
}

void LogShard::Seal(std::vector<CommitTicket*>* durable_fired) {
  FlushInternal(durable_fired, /*allow_fault=*/false);
  std::lock_guard lk(mu_);
  sealed_ = true;
}

void LogShard::MarkStopped() {
  {
    // Under mu_ so a WaitDurable between predicate check and sleep cannot
    // miss the wake.
    std::lock_guard lk(mu_);
    stopped_.store(true, std::memory_order_release);
  }
  flushed_cv_.notify_all();
}

std::vector<CommitTicket*> LogShard::TakeUnsettledWaiters() {
  std::lock_guard lk(mu_);
  std::vector<CommitTicket*> out;
  out.reserve(waiters_.size() - waiters_head_);
  for (size_t i = waiters_head_; i < waiters_.size(); ++i)
    out.push_back(waiters_[i].second);
  waiters_.clear();
  waiters_head_ = 0;
  return out;
}

bool LogShard::sealed() const {
  std::lock_guard lk(mu_);
  return sealed_;
}

uint64_t LogShard::torn_cut_byte() const {
  std::lock_guard lk(mu_);
  return torn_cut_byte_;
}

Lsn LogShard::tail_lsn() const {
  std::lock_guard lk(mu_);
  return next_lsn_ - 1;
}

ShardSnapshot LogShard::SnapshotDurable() const {
  ShardSnapshot snap;
  snap.shard_id = id_;
  snap.generation = generation_;
  Lsn durable = durable_lsn_.load(std::memory_order_acquire);
  std::lock_guard lk(mu_);
  // The injected torn tail: cumulative record bytes written before the
  // modeled disk stopped. A record crossing it is unreadable — its header
  // fields would be garbage on a real device — so the parse ends there.
  const uint64_t cut =
      torn_cut_byte_ == 0 ? UINT64_MAX : torn_cut_byte_;
  uint64_t pos = 0;
  // v2 LSNs are implicit: records were written in LSN order starting at 1,
  // so the parse position IS the LSN (what a sequential log disk encodes
  // by construction).
  Lsn next = 1;
  for (const Buf& b : bufs_) {
    uint32_t off = 0;
    while (off < b.used) {
      RecoveredRecord r;
      uint32_t image_size = 0;
      size_t header = 0;
      if (wire_ == WireFormat::kAfterImageV1) {
        if (off + sizeof(RecordHeader) > b.used) break;
        RecordHeader h;
        std::memcpy(&h, b.data + off, sizeof(h));
        if (h.lsn == 0 || h.lsn > durable) return snap;  // crash cut
        r.lsn = h.lsn;
        r.txn = h.txn;
        r.type = static_cast<LogType>(h.type);
        r.table = h.table;
        r.key = h.key;
        r.epoch = h.epoch;
        r.marker_expected = h.marker_expected;
        image_size = h.image_size;
        header = sizeof(h);
      } else if (IsMarkerType(static_cast<LogType>(b.data[off]))) {
        if (off + sizeof(MarkerHeaderV2) > b.used) break;
        if (next > durable) return snap;  // crash cut
        MarkerHeaderV2 h;
        std::memcpy(&h, b.data + off, sizeof(h));
        r.lsn = next;
        r.txn = h.txn;
        r.type = static_cast<LogType>(h.type);
        r.epoch = h.epoch;
        r.marker_expected = h.marker_expected;
        header = sizeof(h);
      } else {
        if (off + sizeof(DataHeaderV2) > b.used) break;
        if (next > durable) return snap;  // crash cut
        DataHeaderV2 h;
        std::memcpy(&h, b.data + off, sizeof(h));
        r.lsn = next;
        r.txn = h.txn;
        r.type = static_cast<LogType>(h.type);
        r.table = h.table;
        r.key = h.key;
        r.rid = h.rid;
        r.diff_offset = h.diff_offset;
        r.is_diff = (h.flags & kRecFlagDiff) != 0;
        image_size = h.image_size;
        header = sizeof(h);
      }
      if (pos + header + image_size > cut) {
        snap.torn = true;
        snap.torn_lsn = torn_lsn_;
        snap.torn_cut_byte = cut;
        return snap;
      }
      pos += header + image_size;
      ++next;
      if (image_size > 0) {
        const uint8_t* img = b.data + off + header;
        r.image.assign(img, img + image_size);
      }
      snap.records.push_back(std::move(r));
      off += static_cast<uint32_t>(header + image_size);
    }
  }
  return snap;
}

}  // namespace atrapos::log
