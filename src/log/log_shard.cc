#include "log/log_shard.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mem/arena.h"

namespace atrapos::log {

LogShard::LogShard(int id, int generation,
                   std::shared_ptr<mem::ChunkPool> pool, mem::Arena* arena)
    : id_(id), generation_(generation), pool_(std::move(pool)),
      arena_(arena) {}

LogShard::~LogShard() {
  for (Buf& b : bufs_) pool_->Put(b.data);
}

void LogShard::WriteLocked(const RecordHeader& h, const uint8_t* image) {
  size_t need = sizeof(RecordHeader) + h.image_size;
  size_t cap = pool_->payload_bytes();
  if (need > cap) {
    // Records never span chunks; every workload's fixed-width tuples are
    // far below a chunk, so an oversized image is a programming error.
    std::fprintf(stderr, "LogShard: record of %zu bytes exceeds chunk %zu\n",
                 need, cap);
    std::abort();
  }
  if (bufs_.empty() || cap - bufs_.back().used < need) {
    bufs_.push_back(Buf{static_cast<uint8_t*>(pool_->Get()), 0});
  }
  Buf& buf = bufs_.back();
  std::memcpy(buf.data + buf.used, &h, sizeof(h));
  if (h.image_size > 0)
    std::memcpy(buf.data + buf.used + sizeof(h), image, h.image_size);
  buf.used += static_cast<uint32_t>(need);
  bytes_logged_.fetch_add(need, std::memory_order_relaxed);
}

Lsn LogShard::AppendBatch(const PendingRecord* recs, size_t n,
                          const uint8_t* images,
                          std::vector<CommitTicket*>* append_fired) {
  if (append_fired != nullptr) append_fired->clear();
  if (n == 0) return 0;
  Lsn first;
  uint64_t bytes = 0;
  {
    std::lock_guard lk(mu_);
    assert(!sealed_ && "append to a sealed shard");
    first = next_lsn_;
    for (size_t i = 0; i < n; ++i) {
      const PendingRecord& r = recs[i];
      RecordHeader h;
      h.lsn = next_lsn_++;
      h.txn = r.txn;
      h.key = r.key;
      h.epoch = r.epoch;
      h.table = r.table;
      h.type = static_cast<uint16_t>(r.type);
      h.marker_expected = r.marker_expected;
      h.image_size = r.image_size;
      WriteLocked(h, images + r.image_offset);
      bytes += sizeof(RecordHeader) + r.image_size;
      if (r.ticket != nullptr) {
        waiters_.emplace_back(h.lsn, r.ticket);
        if (r.ticket->remaining_append.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          // Last marker appended. The append-side reference either rides
          // out to the caller (async tickets fire their ack outside the
          // lock via OnMarkersAppended, which releases it) or is dropped
          // here, where the ticket is still safely alive.
          if (r.ticket->fire_on_append && append_fired != nullptr) {
            append_fired->push_back(r.ticket);
          } else {
            ReleaseCommitTicket(r.ticket);
          }
        }
      }
    }
  }
  num_records_.fetch_add(n, std::memory_order_relaxed);
  // Log traffic shows up in the island traffic matrix like any other
  // partition-state access: local for per-partition shards, cross-island
  // for the centralized configuration.
  if (arena_ != nullptr) arena_->RecordAccess(bytes);
  return first;
}

Lsn LogShard::AppendOne(const PendingRecord& rec, const uint8_t* image,
                        std::vector<CommitTicket*>* append_fired) {
  PendingRecord r = rec;
  r.image_offset = 0;
  return AppendBatch(&r, 1, image, append_fired);
}

void LogShard::Flush(std::vector<CommitTicket*>* durable_fired) {
  Lsn tail;
  bool advanced = false;
  {
    std::lock_guard lk(mu_);
    tail = next_lsn_ - 1;
    if (tail > durable_lsn_.load(std::memory_order_relaxed)) {
      // The "flush": with a memory-mapped log disk this is a memcpy plus
      // fence; the group-commit window batches whatever accumulated.
      durable_lsn_.store(tail, std::memory_order_release);
      advanced = true;
    }
    while (waiters_head_ < waiters_.size() &&
           waiters_[waiters_head_].first <= tail) {
      if (durable_fired != nullptr)
        durable_fired->push_back(waiters_[waiters_head_].second);
      ++waiters_head_;
    }
    if (waiters_head_ == waiters_.size() && waiters_head_ > 0) {
      waiters_.clear();
      waiters_head_ = 0;
    }
  }
  if (advanced) flushed_cv_.notify_all();
}

Lsn LogShard::WaitDurable(Lsn lsn) {
  Lsn durable = durable_lsn_.load(std::memory_order_acquire);
  if (durable >= lsn) return durable;
  std::unique_lock lk(mu_);
  flushed_cv_.wait(lk, [&] {
    return durable_lsn_.load(std::memory_order_acquire) >= lsn ||
           stopped_.load(std::memory_order_acquire);
  });
  return durable_lsn_.load(std::memory_order_acquire);
}

void LogShard::Seal(std::vector<CommitTicket*>* durable_fired) {
  Flush(durable_fired);
  std::lock_guard lk(mu_);
  sealed_ = true;
}

void LogShard::MarkStopped() {
  {
    // Under mu_ so a WaitDurable between predicate check and sleep cannot
    // miss the wake.
    std::lock_guard lk(mu_);
    stopped_.store(true, std::memory_order_release);
  }
  flushed_cv_.notify_all();
}

std::vector<CommitTicket*> LogShard::TakeUnsettledWaiters() {
  std::lock_guard lk(mu_);
  std::vector<CommitTicket*> out;
  out.reserve(waiters_.size() - waiters_head_);
  for (size_t i = waiters_head_; i < waiters_.size(); ++i)
    out.push_back(waiters_[i].second);
  waiters_.clear();
  waiters_head_ = 0;
  return out;
}

bool LogShard::sealed() const {
  std::lock_guard lk(mu_);
  return sealed_;
}

Lsn LogShard::tail_lsn() const {
  std::lock_guard lk(mu_);
  return next_lsn_ - 1;
}

ShardSnapshot LogShard::SnapshotDurable() const {
  ShardSnapshot snap;
  snap.shard_id = id_;
  snap.generation = generation_;
  Lsn durable = durable_lsn_.load(std::memory_order_acquire);
  std::lock_guard lk(mu_);
  for (const Buf& b : bufs_) {
    uint32_t off = 0;
    while (off + sizeof(RecordHeader) <= b.used) {
      RecordHeader h;
      std::memcpy(&h, b.data + off, sizeof(h));
      if (h.lsn == 0 || h.lsn > durable) return snap;  // crash cut
      RecoveredRecord r;
      r.lsn = h.lsn;
      r.txn = h.txn;
      r.type = static_cast<LogType>(h.type);
      r.table = h.table;
      r.key = h.key;
      r.epoch = h.epoch;
      r.marker_expected = h.marker_expected;
      if (h.image_size > 0) {
        const uint8_t* img = b.data + off + sizeof(h);
        r.image.assign(img, img + h.image_size);
      }
      snap.records.push_back(std::move(r));
      off += sizeof(h) + h.image_size;
    }
  }
  return snap;
}

}  // namespace atrapos::log
