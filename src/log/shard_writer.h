// ShardWriter: a partition worker's staging buffer for its log shard.
//
// Batched mode (per-partition shards): the worker stages every record its
// drained batch produces — data after-images and the commit markers routed
// to it through its inbox — and Flush() appends them with one shard-lock
// acquisition, preserving the order the worker executed them in (the
// write-ahead invariant: a transaction's marker is staged by the owning
// worker, so it always lands after the transaction's data records).
// Staging reuses the same vectors forever, so the logging fast path
// allocates nothing in steady state.
//
// Immediate mode (centralized 1-shard configuration): every Add goes
// straight to the shard under its mutex — the retired WriteAheadLog's
// per-record protocol, kept measurable for the Fig. 4 comparison.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "log/log_manager.h"
#include "log/log_record.h"
#include "log/log_shard.h"

namespace atrapos::log {

class ShardWriter {
 public:
  ShardWriter(LogManager* mgr, LogShard* shard, bool immediate)
      : mgr_(mgr), shard_(shard), immediate_(immediate) {
    pending_.reserve(64);
    images_.reserve(4096);
  }

  LogShard* shard() const { return shard_; }

  /// Stages one data record (after-image copied into the side buffer).
  void Add(TxnId txn, LogType type, uint32_t table, uint64_t key,
           uint64_t rid, const uint8_t* image, uint32_t image_size) {
    PendingRecord r;
    r.txn = txn;
    r.type = type;
    r.table = table;
    r.key = key;
    r.rid = rid;
    r.image_offset = static_cast<uint32_t>(images_.size());
    r.image_size = image_size;
    if (image_size > 0) images_.insert(images_.end(), image, image + image_size);
    pending_.push_back(r);
    if (immediate_) Flush();
  }

  /// Stages a diff-encoded update: only the `len` changed bytes at
  /// `offset` within the row are copied (len 0 is a valid no-op update —
  /// the record still decides commit protocol membership). Requires a
  /// kCompactDiffV2 shard.
  void AddDiff(TxnId txn, uint32_t table, uint64_t key, uint64_t rid,
               uint16_t offset, const uint8_t* bytes, uint16_t len) {
    PendingRecord r;
    r.txn = txn;
    r.type = LogType::kUpdate;
    r.table = table;
    r.key = key;
    r.rid = rid;
    r.is_diff = true;
    r.diff_offset = offset;
    r.image_offset = static_cast<uint32_t>(images_.size());
    r.image_size = len;
    if (len > 0) images_.insert(images_.end(), bytes, bytes + len);
    pending_.push_back(r);
    if (immediate_) Flush();
  }

  /// Stages this partition's commit marker for `txn`.
  void AddCommitMarker(TxnId txn, uint64_t epoch, uint16_t expected,
                       CommitTicket* ticket) {
    PendingRecord r;
    r.txn = txn;
    r.type = LogType::kCommit;
    r.epoch = epoch;
    r.marker_expected = expected;
    r.image_offset = static_cast<uint32_t>(images_.size());
    r.ticket = ticket;
    pending_.push_back(r);
    if (immediate_) Flush();
  }

  /// One reservation for everything staged since the last flush; acks
  /// append-fired (async-mode) tickets afterwards, outside the shard lock.
  void Flush() {
    if (pending_.empty()) return;
    shard_->AppendBatch(pending_.data(), pending_.size(), images_.data(),
                        &append_fired_);
    pending_.clear();
    images_.clear();
    if (!append_fired_.empty()) mgr_->OnMarkersAppended(append_fired_);
  }

 private:
  LogManager* const mgr_;
  LogShard* const shard_;
  const bool immediate_;
  std::vector<PendingRecord> pending_;
  std::vector<uint8_t> images_;
  std::vector<CommitTicket*> append_fired_;
};

}  // namespace atrapos::log
