// Crash recovery: rebuild table state from the durable prefixes of the
// log shards, merged by generation and commit epoch.
//
// Transaction fate is decided per shard-set: a transaction is COMMITTED
// when every one of its commit markers is durable (the marker carries how
// many partitions it touched, so a missing marker is detectable — no torn
// transactions across shards), ABORTED when an abort marker is present,
// and UNDECIDED otherwise (in flight at the crash).
//
// Replay applies the data records of committed transactions in per-shard
// LSN order (each key lives in exactly one shard of its generation, so
// per-shard order is per-key order). After-image records go through the
// table's insert/update path; diff-encoded records (kCompactDiffV2) are
// applied IN PLACE — the key resolves the row's current Rid through the
// index (the logged Rid goes stale across repartition generations) and
// the changed byte range is patched directly in the heap, with no
// re-insert and no full-tuple rebuild. Because partition workers execute
// without 2PL, a transaction may have observed the writes of an earlier
// transaction on the same partition whose commit did not survive the
// crash; including it would smuggle the lost write back in through the
// after-image. Recovery therefore closes the committed set under
// per-shard precedence: once an excluded (undecided or epoch-truncated)
// transaction's data record is passed in a shard, every later transaction
// writing in that shard is excluded too ("poisoned"), iterated to a
// fixpoint across shards. In steady state only the tail of the last
// group-commit window is affected. The surviving set is dependency-closed,
// so the rebuilt state equals a serial application of exactly those
// transactions — the property tests/log_recovery_test.cc asserts.
//
// Aborted transactions skip replay but do not poison. This is a
// deliberate asymmetry with a known consequence: the engine does not
// roll back, so an aborted transaction that wrote before failing (e.g.
// TATP's UpdateSubscriberData, whose Subscriber update can succeed in
// the same stage whose SpecialFacility update misses) leaves its effect
// in the live tables but is — correctly, by durability semantics —
// discarded at recovery, and a later committed transaction that read
// the aborted write replays it back in through its after-image. The
// recovered state therefore equals the serial application of the
// reported set only up to such dirty-read embeddings; poisoning on
// aborts instead would cascade-discard every later transaction in the
// shard for the lifetime of the log, which is far worse. The property
// tests pin the exact guarantee (and tests/log_recovery_test.cc's TATP
// test documents the bit1 divergence).
#pragma once

#include <cstdint>
#include <vector>

#include "log/log_record.h"

namespace atrapos::storage {
class Table;
}  // namespace atrapos::storage

namespace atrapos::log {

struct RecoveryOptions {
  /// Prefix-by-epoch replay: only transactions with commit epoch <= this
  /// are applied (with closure under per-shard precedence). Default:
  /// everything durable.
  uint64_t max_epoch = UINT64_MAX;
};

struct RecoveryReport {
  /// Committed transactions actually applied, sorted by commit epoch.
  std::vector<std::pair<TxnId, uint64_t>> applied;
  uint64_t records_applied = 0;
  /// Data records skipped because they carried no after-image (the
  /// centralized compat path logs keys only, like the retired WAL).
  uint64_t records_without_image = 0;
  /// Diff records applied in place (subset of records_applied).
  uint64_t records_diff_applied = 0;
  /// Diff records whose key did not resolve (the row's creating insert was
  /// excluded) or whose range did not fit — skipped, not fatal.
  uint64_t records_diff_missed = 0;
  uint64_t txns_undecided = 0;      ///< in flight at the crash
  uint64_t txns_epoch_truncated = 0;///< committed, epoch > max_epoch
  uint64_t txns_poisoned = 0;       ///< excluded by precedence closure
  uint64_t txns_aborted = 0;
  uint64_t max_epoch_applied = 0;
  /// Torn-tail cut points ((shard_id, first LSN lost), one per shard whose
  /// snapshot ended mid-record on an injected torn write).
  std::vector<std::pair<int, Lsn>> torn_cuts;
};

/// Replays `shards` (from LogManager::SnapshotDurable) into `tables`,
/// indexed by the logged table id. Tables must hold the pre-run state
/// (the load phase is not logged). Unknown table ids and image-less data
/// records are counted, not fatal; replay is idempotent-friendly
/// (insert-on-existing applies as update, delete-on-missing is a no-op).
RecoveryReport Recover(const std::vector<ShardSnapshot>& shards,
                       const std::vector<storage::Table*>& tables,
                       const RecoveryOptions& opt = {});

}  // namespace atrapos::log
