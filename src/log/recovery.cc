#include "log/recovery.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "storage/table.h"

namespace atrapos::log {

namespace {

enum class Fate { kCommitted, kAborted, kUndecided, kEpochTruncated,
                  kPoisoned };

bool IsData(LogType t) {
  return t == LogType::kInsert || t == LogType::kUpdate ||
         t == LogType::kDelete;
}

struct TxnInfo {
  uint32_t markers_found = 0;
  uint32_t markers_expected = 0;
  bool has_abort = false;
  bool has_data = false;
  uint64_t epoch = 0;
  Fate fate = Fate::kUndecided;
};

void ApplyRecord(const RecoveredRecord& r,
                 const std::vector<storage::Table*>& tables,
                 RecoveryReport* report) {
  if (r.table >= tables.size() || tables[r.table] == nullptr) return;
  storage::Table* t = tables[r.table];
  if (r.type == LogType::kDelete) {
    (void)t->Delete(r.key);  // delete-on-missing: no-op
    ++report->records_applied;
    return;
  }
  if (r.is_diff) {
    // In-place replay: the diff patches the row's bytes directly in the
    // heap — no re-insert through the index, no full-tuple rebuild. The
    // row's Rid is resolved through the recovery table's index rather
    // than trusted from the record: logged Rids go stale the moment a
    // repartition generation re-homes the row, while the key stays
    // authoritative across generations.
    Status s = t->ApplyDiff(r.key, r.diff_offset, r.image.data(),
                            static_cast<uint32_t>(r.image.size()));
    if (s.ok()) {
      ++report->records_applied;
      ++report->records_diff_applied;
    } else {
      ++report->records_diff_missed;
    }
    return;
  }
  if (r.image.empty() || r.image.size() != t->schema().record_size()) {
    ++report->records_without_image;
    return;
  }
  storage::Tuple row(&t->schema(), r.image.data());
  Status s = r.type == LogType::kInsert ? t->Insert(r.key, row)
                                        : t->Update(r.key, row);
  if (!s.ok()) {
    // The other mutation flavor: replay of a committed subset can land an
    // insert on a surviving row (or an update on a vacated key).
    s = r.type == LogType::kInsert ? t->Update(r.key, row)
                                   : t->Insert(r.key, row);
  }
  if (s.ok()) ++report->records_applied;
}

}  // namespace

RecoveryReport Recover(const std::vector<ShardSnapshot>& shards,
                       const std::vector<storage::Table*>& tables,
                       const RecoveryOptions& opt) {
  RecoveryReport report;

  // Report injected torn tails: the cut shard's missing suffix surfaces as
  // undecided/poisoned transactions below, exactly like a crash cut.
  for (const ShardSnapshot& s : shards)
    if (s.torn) report.torn_cuts.emplace_back(s.shard_id, s.torn_lsn);

  // Group shards by generation; generations replay in order (a generation
  // seals — fully durable, every transaction decided — before the next
  // one opens, so cross-generation precedence needs no closure).
  std::map<int, std::vector<const ShardSnapshot*>> gens;
  for (const ShardSnapshot& s : shards) gens[s.generation].push_back(&s);

  for (auto& [gen, gshards] : gens) {
    (void)gen;
    // Pass 1: transaction fate from the markers.
    std::unordered_map<TxnId, TxnInfo> txns;
    for (const ShardSnapshot* s : gshards) {
      for (const RecoveredRecord& r : s->records) {
        TxnInfo& info = txns[r.txn];
        if (r.type == LogType::kCommit && r.marker_expected > 0) {
          ++info.markers_found;
          info.markers_expected =
              std::max(info.markers_expected, r.marker_expected);
          info.epoch = std::max(info.epoch, r.epoch);
        } else if (r.type == LogType::kAbort) {
          info.has_abort = true;
        } else if (IsData(r.type)) {
          info.has_data = true;
        }
      }
    }
    for (auto& [id, info] : txns) {
      (void)id;
      if (info.has_abort) {
        info.fate = Fate::kAborted;
      } else if (info.markers_expected > 0 &&
                 info.markers_found >= info.markers_expected) {
        info.fate = info.epoch <= opt.max_epoch ? Fate::kCommitted
                                                : Fate::kEpochTruncated;
      } else {
        info.fate = Fate::kUndecided;  // includes torn commits
      }
    }

    // Pass 2: close the committed set under per-shard precedence (see
    // header). Iterate to a fixpoint: poisoning in one shard can exclude a
    // transaction whose records poison another shard.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const ShardSnapshot* s : gshards) {
        bool poisoned = false;
        for (const RecoveredRecord& r : s->records) {
          if (!IsData(r.type)) continue;
          TxnInfo& info = txns[r.txn];
          if (poisoned && info.fate == Fate::kCommitted) {
            info.fate = Fate::kPoisoned;
            changed = true;
          }
          if (info.fate == Fate::kUndecided ||
              info.fate == Fate::kEpochTruncated ||
              info.fate == Fate::kPoisoned) {
            poisoned = true;
          }
        }
      }
    }

    // Pass 3: replay committed data records in per-shard LSN order (each
    // key lives in exactly one shard of its generation).
    for (const ShardSnapshot* s : gshards) {
      for (const RecoveredRecord& r : s->records) {
        if (!IsData(r.type)) continue;
        if (txns[r.txn].fate != Fate::kCommitted) continue;
        ApplyRecord(r, tables, &report);
      }
    }

    for (const auto& [id, info] : txns) {
      switch (info.fate) {
        case Fate::kCommitted:
          if (info.has_data) {
            report.applied.emplace_back(id, info.epoch);
            report.max_epoch_applied =
                std::max(report.max_epoch_applied, info.epoch);
          }
          break;
        case Fate::kAborted: ++report.txns_aborted; break;
        case Fate::kUndecided:
          if (info.has_data || info.markers_found > 0)
            ++report.txns_undecided;
          break;
        case Fate::kEpochTruncated: ++report.txns_epoch_truncated; break;
        case Fate::kPoisoned: ++report.txns_poisoned; break;
      }
    }
  }

  std::sort(report.applied.begin(), report.applied.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return report;
}

}  // namespace atrapos::log
