// Record and commit-protocol types of the island-partitioned durability
// subsystem (src/log/).
//
// The subsystem replaces the single mutex-serialized txn::WriteAheadLog —
// the last centralized structure in the engine, whose contention the paper
// measures as the logging slice of Fig. 4 — with one LogShard per
// partition, placed on the owning island. Shard records are self-contained
// for recovery: data records carry the after-image of the row, commit
// markers carry the transaction's commit epoch and the number of
// partitions it touched, so replay can decide transaction fate without any
// central LSN.
//
// Commit protocol (Aether-style consolidated group commit, asynchronous
// acks): the completing worker draws a global commit epoch, then publishes
// one commit marker per touched partition *through that partition's
// inbox*, so every marker is appended by the shard's owning worker after
// the transaction's data records (per-shard LSN order encodes the
// write-ahead invariant). A CommitTicket counts markers across shards; the
// transaction is acknowledged when the ticket fires — at marker append
// (async mode) or when every marker is durable (group mode). Workers never
// block on a flush window.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "txn/wal.h"

namespace atrapos::log {

using txn::LogType;
using txn::Lsn;
using txn::TxnId;

/// One commit's cross-shard completion state. Created by
/// LogManager::BeginCommit; each appended marker decrements
/// `remaining_append`, each flushed marker decrements `remaining_durable`.
/// The ack fires at append-zero (fire_on_append, async mode) or
/// durable-zero (group mode and the blocking compat path); the ticket is
/// freed — and its epoch folded into the durable-epoch watermark — at
/// durable-zero, which always happens last.
struct CommitTicket {
  std::atomic<int> remaining_append;
  std::atomic<int> remaining_durable;
  /// Lifetime: one reference per marker occurrence (released when the
  /// flusher settles it — or the manager's destructor reclaims it) plus
  /// one for the append-side ack path, so neither side can free the
  /// ticket under the other.
  std::atomic<int> remaining_release;
  uint64_t epoch;
  void* cookie;        ///< opaque ack payload (engine: TxnState*); may be null
  bool fire_on_append; ///< async commit: ack when appended, not when durable

  CommitTicket(int expected, uint64_t e, void* c, bool on_append)
      : remaining_append(expected),
        remaining_durable(expected),
        remaining_release(expected + 1),
        epoch(e),
        cookie(c),
        fire_on_append(on_append) {}
};

/// Drops one reference; frees the ticket on the last. Returns true when
/// it was freed.
inline bool ReleaseCommitTicket(CommitTicket* t) {
  if (t->remaining_release.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return false;
  delete t;
  return true;
}

/// How a shard serializes its records (versioned wire format).
///
/// kAfterImageV1 is the PR 4 encoding kept byte-identical for the
/// log-bytes comparison: one 48-byte header per record, data records
/// followed by the full after-image of the row.
///
/// kCompactDiffV2 is the slimmed encoding the partition-bit Rids enable
/// (Aether-style log slimming): 32-byte data headers carrying the Rid and
/// a (diff offset, len) describing the payload — updates log only the
/// bytes that changed — and 24-byte commit/abort markers. LSNs are
/// implicit (records are parsed back in append order), which is what a
/// per-shard sequential log gives for free.
enum class WireFormat : uint8_t {
  kAfterImageV1 = 1,
  kCompactDiffV2 = 2,
};

/// A staged record, owned by a ShardWriter until its batch is appended.
/// Image bytes live in the writer's side buffer (`image_offset` indexes
/// it) so staging a record never allocates. For diff-encoded updates the
/// side-buffer bytes are the changed range and `diff_offset` locates it
/// within the record (`is_diff` set); otherwise they are the full image.
struct PendingRecord {
  TxnId txn = 0;
  LogType type = LogType::kBegin;
  uint32_t table = 0;
  uint64_t key = 0;
  uint64_t rid = 0;               ///< encoded Rid (0 when not applicable)
  uint64_t epoch = 0;             ///< commit markers only
  uint16_t marker_expected = 0;   ///< commit markers: #touched partitions
  uint16_t diff_offset = 0;       ///< diff records: byte offset in the row
  bool is_diff = false;           ///< image bytes are a partial-row diff
  uint32_t image_offset = 0;
  uint32_t image_size = 0;
  CommitTicket* ticket = nullptr; ///< commit markers only; may be null
};

/// On-"disk" v1 record header, memcpy'd into a shard's chunk buffer and
/// followed by `image_size` bytes of after-image.
struct RecordHeader {
  Lsn lsn = 0;
  TxnId txn = 0;
  uint64_t key = 0;
  uint64_t epoch = 0;
  uint32_t table = 0;
  uint16_t type = 0;
  uint16_t marker_expected = 0;
  uint32_t image_size = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(RecordHeader) == 48, "keep the v1 wire format stable");

/// v2 record flags.
inline constexpr uint8_t kRecFlagDiff = 0x1;  ///< payload is a partial diff

/// v2 data-record header (insert/update/delete and the key-only compat
/// records), followed by `image_size` payload bytes.
struct DataHeaderV2 {
  uint8_t type = 0;
  uint8_t flags = 0;
  uint16_t table = 0;
  uint16_t diff_offset = 0;
  uint16_t image_size = 0;
  TxnId txn = 0;
  uint64_t key = 0;
  uint64_t rid = 0;
};
static_assert(sizeof(DataHeaderV2) == 32, "keep the v2 wire format stable");

/// v2 commit/abort marker (no payload).
struct MarkerHeaderV2 {
  uint8_t type = 0;
  uint8_t flags = 0;
  uint16_t marker_expected = 0;
  uint32_t pad = 0;
  TxnId txn = 0;
  uint64_t epoch = 0;
};
static_assert(sizeof(MarkerHeaderV2) == 24, "keep the v2 wire format stable");

/// True for the record types serialized as v2 markers.
inline bool IsMarkerType(LogType t) {
  return t == LogType::kCommit || t == LogType::kAbort;
}

/// A parsed record, as recovery sees it.
struct RecoveredRecord {
  Lsn lsn = 0;
  TxnId txn = 0;
  LogType type = LogType::kBegin;
  uint32_t table = 0;
  uint64_t key = 0;
  uint64_t rid = 0;               ///< encoded Rid; 0 when not logged
  uint64_t epoch = 0;
  uint32_t marker_expected = 0;
  uint16_t diff_offset = 0;
  bool is_diff = false;           ///< `image` is a partial-row diff
  std::vector<uint8_t> image;
};

/// The durable prefix of one shard — what a crash would leave on disk.
struct ShardSnapshot {
  int shard_id = 0;
  int generation = 0;  ///< repartition seals a generation; replay merges
  std::vector<RecoveredRecord> records;
  /// Injected torn tail (fault::kLogTornTail): the shard's parse stopped
  /// mid-record at `torn_cut_byte`; `torn_lsn` is the first LSN lost to
  /// the tear. Recovery treats the cut like any crash cut and reports it.
  bool torn = false;
  Lsn torn_lsn = 0;
  uint64_t torn_cut_byte = 0;
};

/// Distributed durable point: per-shard durable LSNs plus the commit-epoch
/// watermark (every transaction with epoch <= `epoch` is durable on every
/// shard it touched). Replaces the retired WAL's single scalar LSN.
struct DurablePoint {
  std::vector<Lsn> shard_lsns;  ///< indexed by stable shard id
  uint64_t epoch = 0;
};

}  // namespace atrapos::log
