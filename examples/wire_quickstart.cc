// Minimal wire-tier walkthrough: start the networked front-end over a
// small TATP database, run a handful of transactions and a batched
// pk-read through the loopback client, print the server's Prometheus
// stats, and shut down in the documented order (Server::Stop, then
// Database::Drain, then destroy).
//
//   cmake -B build && cmake --build build --target wire_quickstart
//   ./build/examples/wire_quickstart
#include <cstdio>
#include <memory>

#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/tatp.h"
#include "workload/tatp_graphs.h"

using namespace atrapos;

namespace {

core::Scheme TatpScheme(uint64_t subscribers, int partitions) {
  core::Scheme scheme;
  for (int t = 0; t < 4; ++t) {
    uint64_t factor = t == 0 ? 1 : (t == 3 ? 32 : 4);
    core::TableScheme ts;
    for (int p = 0; p < partitions; ++p) {
      ts.boundaries.push_back(subscribers * factor *
                              static_cast<uint64_t>(p) /
                              static_cast<uint64_t>(partitions));
      ts.placement.push_back(p);
    }
    scheme.tables.push_back(ts);
  }
  return scheme;
}

}  // namespace

int main() {
  constexpr uint64_t kSubscribers = 5000;
  hw::Topology topo = hw::Topology::Cube(1, 2);  // 2 islands × 2 cores

  // Database + TATP tables partitioned across all cores.
  engine::Database db({.topo = topo});
  std::vector<uint64_t> bounds;
  for (int p = 0; p < topo.num_cores(); ++p)
    bounds.push_back(kSubscribers * static_cast<uint64_t>(p) /
                     static_cast<uint64_t>(topo.num_cores()));
  for (auto& t : workload::BuildTatpTables(kSubscribers, bounds, 42))
    db.AddTable(std::move(t));
  engine::PartitionedExecutor exec(&db, topo,
                                   TatpScheme(kSubscribers, topo.num_cores()));

  // The wire tier: one epoll listener thread per island, ephemeral port.
  server::Server::Options sopt;
  sopt.bind_listeners = false;
  server::Server server(&db, &exec, kSubscribers, sopt);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wire tier listening on 127.0.0.1:%u (%d islands)\n\n",
              server.port(), db.num_sockets());

  // Loopback client: handshake, then a few transactions from the TATP
  // mix — one TXN_BATCH frame carries all of them.
  server::Client::Options copt;
  copt.port = server.port();
  copt.batch = 8;
  server::Client client(copt);
  if (Status s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("handshake: window %u, %u islands, %llu subscribers\n",
              client.granted_window(0), client.num_islands(),
              static_cast<unsigned long long>(client.subscribers()));

  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    server::TxnRequest req = server::DrawTatpMix(rng, kSubscribers);
    (void)client.Submit(0, req, [req](server::WireStatus ws) {
      std::printf("  txn class %d -> %s\n", int(req.txn_class),
                  server::WireStatusName(ws));
    });
  }
  client.FlushAll();
  while (client.outstanding() > 0) client.Poll(-1);

  // Batched pk-read: Subscriber.vlr_location for three keys in one frame
  // (the last key does not exist — a per-row NotFound, not an error).
  bool done = false;
  (void)client.PkRead(
      0, workload::kSubscriber, workload::kVlrLoc,
      {1, 2, kSubscribers + 1}, [&](const server::Client::PkRows& rows) {
        for (size_t i = 0; i < rows.size(); ++i)
          std::printf("  pk_read[%zu]: %s value=%lld\n", i,
                      server::WireStatusName(rows[i].first),
                      static_cast<long long>(rows[i].second));
        done = true;
      });
  while (!done) client.Poll(-1);

  // The server's own observability, over the wire.
  auto stats = client.QueryStats(0);
  if (stats.ok()) {
    std::printf("\n--- Prometheus snapshot (wire-tier lines) ---\n");
    const std::string& text = stats.value();
    for (size_t pos = 0; pos < text.size();) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      std::string line = text.substr(pos, eol - pos);
      if (line.find("atrapos_net_") != std::string::npos ||
          line.find("wire_latency") != std::string::npos)
        std::printf("%s\n", line.c_str());
      pos = eol + 1;
    }
  }

  // Shutdown in the documented order (engine/database.h).
  client.CloseAll();
  server.Stop();
  db.Drain();
  std::printf("\ndrained; bye\n");
  return 0;
}
