// TATP on the real partitioned engine with the ATraPos adaptive manager:
// loads the four TATP tables, submits a skewed workload as routed
// ActionGraphs (asynchronous, pipelined), and watches the monitor + cost
// model + repartitioner rebalance the partitioning online. Transaction
// classes are reported to the adaptive manager by the executor's
// completion path — the driver below never hand-counts anything.
//
// Run: ./build/examples/tatp_adaptive
#include <chrono>
#include <cstdio>
#include <deque>

#include "engine/adaptive_manager.h"
#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "util/rng.h"
#include "workload/tatp.h"
#include "workload/tatp_graphs.h"

using namespace atrapos;

int main() {
  constexpr uint64_t kSubscribers = 20000;
  constexpr size_t kPipelineDepth = 16;
  auto topo = hw::Topology::SingleSocket(4);

  // Build the database with real TATP tables, 4 partitions each.
  engine::Database db({.topo = topo});
  std::vector<uint64_t> bounds;
  for (int p = 0; p < 4; ++p) bounds.push_back(kSubscribers * p / 4);
  auto tables = workload::BuildTatpTables(kSubscribers, bounds);
  std::printf("loaded TATP: %llu subscribers, %llu access-info, %llu "
              "special-facility, %llu call-forwarding rows\n",
              static_cast<unsigned long long>(tables[0]->num_rows()),
              static_cast<unsigned long long>(tables[1]->num_rows()),
              static_cast<unsigned long long>(tables[2]->num_rows()),
              static_cast<unsigned long long>(tables[3]->num_rows()));
  for (auto& t : tables) db.AddTable(std::move(t));

  // Partitioned executor: one worker per partition.
  core::Scheme scheme;
  for (int t = 0; t < 4; ++t) {
    core::TableScheme ts;
    uint64_t factor = t == 0 ? 1 : (t == 3 ? 32 : 4);
    for (int p = 0; p < 4; ++p) {
      ts.boundaries.push_back(bounds[static_cast<size_t>(p)] * factor);
      ts.placement.push_back(p);
    }
    scheme.tables.push_back(ts);
  }
  engine::PartitionedExecutor exec(&db, topo, scheme);

  auto spec = workload::TatpSpec(kSubscribers);
  engine::AdaptiveManager::Options mopt;
  mopt.controller.initial_interval_s = 0.1;
  mopt.controller.max_interval_s = 0.8;
  engine::AdaptiveManager mgr(&exec, &topo, &spec, mopt);
  mgr.Start();

  // Drive GetSubscriberData with heavy skew: 80% of lookups hit the first
  // 10% of subscribers. The single client thread keeps kPipelineDepth
  // transactions in flight — Submit returns a TxnFuture immediately, so
  // no thread blocks per in-flight transaction. The adaptive manager
  // should split the hot range.
  workload::TatpActionGraphs graphs(kSubscribers);
  Rng rng(42);
  uint64_t submitted = 0;
  std::deque<engine::TxnFuture> window;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (std::chrono::steady_clock::now() < deadline) {
    uint64_t s_id = rng.Chance(0.8) ? rng.Uniform(kSubscribers / 10)
                                    : rng.Uniform(kSubscribers);
    auto f = exec.Submit(graphs.GetSubscriberData(s_id));
    if (!f.ok()) break;
    window.push_back(f.take());
    ++submitted;
    while (window.size() >= kPipelineDepth) {
      (void)window.front().Wait();
      window.pop_front();
    }
    if (mgr.repartitions() > 0) break;
  }
  while (!window.empty()) {
    (void)window.front().Wait();
    window.pop_front();
  }
  mgr.Stop();

  std::printf("submitted %llu GetSubscriberData action graphs "
              "(%llu counted by the completion path)\n",
              static_cast<unsigned long long>(submitted),
              static_cast<unsigned long long>(mgr.completed_transactions()));
  std::printf("adaptive repartitions: %llu\n",
              static_cast<unsigned long long>(mgr.repartitions()));
  auto final_scheme = exec.scheme();
  std::printf("Subscriber partitioning after adaptation: %zu partitions\n",
              final_scheme.tables[0].num_partitions());
  std::printf("fence keys:");
  for (uint64_t b : final_scheme.tables[0].boundaries)
    std::printf(" %llu", static_cast<unsigned long long>(b));
  std::printf("\n(finer partitions over the hot low range = the ATraPos "
              "skew response of Fig. 11)\n");
  return 0;
}
