// Islands explorer: inspect hardware topologies, the ATraPos cost model,
// and the partitioning/placement search — no engine required. Useful for
// understanding what the cost model "sees" before deploying a scheme.
//
// Run: ./build/examples/islands_explorer
#include <cstdio>

#include "core/cost_model.h"
#include "core/repartitioner.h"
#include "core/search.h"
#include "util/table_printer.h"
#include "workload/tatp.h"

using namespace atrapos;

int main() {
  // 1) Topologies: the paper's machine and an on-chip mesh.
  auto cube = hw::Topology::TwistedCube8x10();
  auto mesh = hw::Topology::Mesh(6, 6);
  std::printf("paper machine : %s\n", cube.ToString().c_str());
  std::printf("tilera mesh   : %s\n\n", mesh.ToString().c_str());

  TablePrinter dist({"from\\to", "0", "1", "2", "3", "4", "5", "6", "7"});
  for (int a = 0; a < 8; ++a) {
    std::vector<std::string> row{std::to_string(a)};
    for (int b = 0; b < 8; ++b)
      row.push_back(std::to_string(cube.Distance(a, b)));
    dist.AddRow(row);
  }
  std::printf("twisted-cube hop distances:\n");
  dist.Print();

  // 2) The cost model on TATP with a skewed load.
  auto spec = workload::TatpSpec(800000);
  core::CostModel model(&cube, &spec);
  core::WorkloadStats stats;
  stats.tables.resize(spec.tables.size());
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    uint64_t rows = spec.tables[t].num_rows;
    for (size_t b = 0; b < 80; ++b) {
      stats.tables[t].sub_starts.push_back(rows * b / 80);
      // Hot head: the first quarter of every table carries 4x load.
      stats.tables[t].sub_cost.push_back(b < 20 ? 4.0 : 1.0);
    }
  }
  for (const auto& c : spec.classes) stats.class_counts.push_back(c.weight);

  std::vector<uint64_t> rows;
  for (const auto& t : spec.tables) rows.push_back(t.num_rows);
  core::Scheme naive = core::NaiveScheme(cube, rows);
  std::printf("\nnaive scheme    : RU imbalance %.1f, sync cost %.1f\n",
              model.ResourceImbalance(naive, stats),
              model.SyncCost(naive, stats));

  core::Scheme chosen = core::ChooseScheme(model, stats);
  std::printf("ATraPos scheme  : RU imbalance %.1f, sync cost %.1f\n",
              model.ResourceImbalance(chosen, stats),
              model.SyncCost(chosen, stats));

  auto plan = core::PlanRepartition(naive, chosen);
  auto sum = core::Summarize(plan);
  std::printf("repartition plan: %zu splits, %zu merges, %zu moves\n",
              sum.splits, sum.merges, sum.moves);

  // 3) What a socket failure does to the search (Fig. 12's mechanism).
  auto degraded = cube;
  degraded.FailSocket(3);
  core::CostModel dmodel(&degraded, &spec);
  core::Scheme after = core::ChooseScheme(dmodel, stats);
  std::printf("\nafter socket-3 failure the search uses %d cores; subscriber "
              "partitions: %zu\n",
              degraded.num_available_cores(),
              after.tables[0].num_partitions());
  return 0;
}
