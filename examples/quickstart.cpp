// Quickstart: create a database, run ACID transactions, inspect the WAL,
// then submit a transaction flow graph to the partitioned executor.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "storage/table.h"

using namespace atrapos;

int main() {
  // A database with ATraPos-style NUMA-aware system state (per-socket
  // transaction lists, partitioned volume lock, island-local memory
  // arenas) for a 2-socket machine.
  engine::Database db({.topo = hw::Topology::Cube(1, 2)});

  // Define a table: accounts(id, owner, balance), range-partitioned at 500.
  storage::Schema schema({storage::Column::Int64("id"),
                          storage::Column::FixedString("owner", 16),
                          storage::Column::Int64("balance")});
  int accounts = db.AddTable(
      std::make_unique<storage::Table>(0, "accounts", schema,
                                       std::vector<uint64_t>{0, 500}));

  // Load 1000 accounts with balance 100.
  for (uint64_t id = 0; id < 1000; ++id) {
    auto txn = db.Begin();
    storage::Tuple row(&db.table(accounts)->schema());
    row.SetInt(0, static_cast<int64_t>(id));
    row.SetString(1, "acct-" + std::to_string(id));
    row.SetInt(2, 100);
    if (!db.Insert(&txn, accounts, id, row).ok()) return 1;
    if (!db.Commit(&txn).ok()) return 1;
  }
  std::printf("loaded %llu accounts\n",
              static_cast<unsigned long long>(db.table(accounts)->num_rows()));

  // Transfer 25 from account 1 to account 900 — atomically, with automatic
  // wait-die retry.
  Status s = db.RunTransaction([&](engine::Database::Txn* txn) {
    storage::Tuple from, to;
    ATRAPOS_RETURN_NOT_OK(db.ReadForUpdate(txn, accounts, 1, &from));
    ATRAPOS_RETURN_NOT_OK(db.ReadForUpdate(txn, accounts, 900, &to));
    from.SetInt(2, from.GetInt(2) - 25);
    to.SetInt(2, to.GetInt(2) + 25);
    ATRAPOS_RETURN_NOT_OK(db.Update(txn, accounts, 1, from));
    return db.Update(txn, accounts, 900, to);
  });
  std::printf("transfer: %s\n", s.ToString().c_str());

  // Read both balances back.
  auto txn = db.Begin();
  storage::Tuple a, b;
  (void)db.Read(&txn, accounts, 1, &a);
  (void)db.Read(&txn, accounts, 900, &b);
  (void)db.Commit(&txn);
  std::printf("balance(1) = %lld, balance(900) = %lld\n",
              static_cast<long long>(a.GetInt(2)),
              static_cast<long long>(b.GetInt(2)));

  std::printf("WAL records written: %llu (durable LSN %llu)\n",
              static_cast<unsigned long long>(db.wal().num_records()),
              static_cast<unsigned long long>(db.wal().durable_lsn()));
  std::printf("active transactions at checkpoint: %llu\n",
              static_cast<unsigned long long>(db.Checkpoint()));

  // ---- The flow-graph API: asynchronous, routed, staged --------------------
  // The same transfer as above, expressed as an ActionGraph on the
  // partitioned executor: stage 1 reads both balances on their owning
  // partition workers (accounts < 500 and >= 500 live on different
  // workers), the rendezvous point joins the payloads, and stage 2 applies
  // both writes. Submit() returns a future immediately — a single client
  // thread can keep many such graphs in flight.
  engine::PartitionedExecutor exec(&db, db.topology(), [&] {
    core::Scheme scheme;
    core::TableScheme ts;
    ts.boundaries = {0, 500};
    ts.placement = {0, 1};
    scheme.tables.push_back(ts);
    return scheme;
  }());

  engine::ActionGraph transfer;
  size_t read_from = transfer.Add(
      accounts, 1, [](storage::Table* t, engine::ActionCtx& ctx) {
        storage::Tuple row;
        ATRAPOS_RETURN_NOT_OK(t->Read(1, &row));
        ctx.Emit(row.GetInt(2));
        return Status::OK();
      });
  size_t read_to = transfer.Add(
      accounts, 900, [](storage::Table* t, engine::ActionCtx& ctx) {
        storage::Tuple row;
        ATRAPOS_RETURN_NOT_OK(t->Read(900, &row));
        ctx.Emit(row.GetInt(2));
        return Status::OK();
      });
  transfer.Rvp();  // both reads complete (or the graph aborts) before writes
  transfer.Add(accounts, 1,
               [read_from](storage::Table* t, engine::ActionCtx& ctx) {
                 storage::Tuple row;
                 ATRAPOS_RETURN_NOT_OK(t->Read(1, &row));
                 row.SetInt(2, *ctx.In<int64_t>(read_from) - 25);
                 return t->Update(1, row);
               });
  transfer.Add(accounts, 900,
               [read_to](storage::Table* t, engine::ActionCtx& ctx) {
                 storage::Tuple row;
                 ATRAPOS_RETURN_NOT_OK(t->Read(900, &row));
                 row.SetInt(2, *ctx.In<int64_t>(read_to) + 25);
                 return t->Update(900, row);
               });

  auto future = exec.Submit(std::move(transfer));
  if (!future.ok()) return 1;
  std::printf("flow-graph transfer: %s\n",
              future.value().Wait().ToString().c_str());
  storage::Tuple a2, b2;
  (void)db.table(accounts)->Read(1, &a2);
  (void)db.table(accounts)->Read(900, &b2);
  std::printf("balance(1) = %lld, balance(900) = %lld\n",
              static_cast<long long>(a2.GetInt(2)),
              static_cast<long long>(b2.GetInt(2)));
  return 0;
}
