// Quickstart: create a database, run ACID transactions, inspect the WAL.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "engine/database.h"
#include "storage/table.h"

using namespace atrapos;

int main() {
  // A database with ATraPos-style NUMA-aware system state (per-socket
  // transaction lists, partitioned volume lock, island-local memory
  // arenas) for a 2-socket machine.
  engine::Database db({.topo = hw::Topology::Cube(1, 2)});

  // Define a table: accounts(id, owner, balance), range-partitioned at 500.
  storage::Schema schema({storage::Column::Int64("id"),
                          storage::Column::FixedString("owner", 16),
                          storage::Column::Int64("balance")});
  int accounts = db.AddTable(
      std::make_unique<storage::Table>(0, "accounts", schema,
                                       std::vector<uint64_t>{0, 500}));

  // Load 1000 accounts with balance 100.
  for (uint64_t id = 0; id < 1000; ++id) {
    auto txn = db.Begin();
    storage::Tuple row(&db.table(accounts)->schema());
    row.SetInt(0, static_cast<int64_t>(id));
    row.SetString(1, "acct-" + std::to_string(id));
    row.SetInt(2, 100);
    if (!db.Insert(&txn, accounts, id, row).ok()) return 1;
    if (!db.Commit(&txn).ok()) return 1;
  }
  std::printf("loaded %llu accounts\n",
              static_cast<unsigned long long>(db.table(accounts)->num_rows()));

  // Transfer 25 from account 1 to account 900 — atomically, with automatic
  // wait-die retry.
  Status s = db.RunTransaction([&](engine::Database::Txn* txn) {
    storage::Tuple from, to;
    ATRAPOS_RETURN_NOT_OK(db.ReadForUpdate(txn, accounts, 1, &from));
    ATRAPOS_RETURN_NOT_OK(db.ReadForUpdate(txn, accounts, 900, &to));
    from.SetInt(2, from.GetInt(2) - 25);
    to.SetInt(2, to.GetInt(2) + 25);
    ATRAPOS_RETURN_NOT_OK(db.Update(txn, accounts, 1, from));
    return db.Update(txn, accounts, 900, to);
  });
  std::printf("transfer: %s\n", s.ToString().c_str());

  // Read both balances back.
  auto txn = db.Begin();
  storage::Tuple a, b;
  (void)db.Read(&txn, accounts, 1, &a);
  (void)db.Read(&txn, accounts, 900, &b);
  (void)db.Commit(&txn);
  std::printf("balance(1) = %lld, balance(900) = %lld\n",
              static_cast<long long>(a.GetInt(2)),
              static_cast<long long>(b.GetInt(2)));

  std::printf("WAL records written: %llu (durable LSN %llu)\n",
              static_cast<unsigned long long>(db.wal().num_records()),
              static_cast<unsigned long long>(db.wal().durable_lsn()));
  std::printf("active transactions at checkpoint: %llu\n",
              static_cast<unsigned long long>(db.Checkpoint()));
  return 0;
}
