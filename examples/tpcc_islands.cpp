// TPC-C on hardware islands: compares the four system designs of the paper
// on the simulated 8-socket machine for the TPC-C mix, then prints the
// NewOrder flow graph that drives ATraPos' partitioning decisions.
//
// Run: ./build/examples/tpcc_islands
#include <cstdio>

#include "core/search.h"
#include "simengine/centralized.h"
#include "simengine/dora.h"
#include "util/table_printer.h"
#include "workload/tpcc.h"

using namespace atrapos;
using namespace atrapos::simengine;

int main() {
  auto topo = hw::Topology::TwistedCube8x10();
  auto spec = workload::TpccSpec(80);
  sim::CostParams params;
  double duration = 0.004;

  TablePrinter tp({"design", "throughput (KTPS)"});

  CentralizedOptions ce;
  ce.run.duration_s = duration;
  RunMetrics rce = RunCentralized(topo, params, spec, ce);
  tp.AddRow({"centralized shared-everything",
             TablePrinter::Num(rce.tps / 1e3, 1)});

  DoraOptions plp;
  plp.run.duration_s = duration;
  RunMetrics rplp = RunPlp(topo, params, spec, plp);
  tp.AddRow({"PLP", TablePrinter::Num(rplp.tps / 1e3, 1)});

  DoraOptions hw;
  hw.run.duration_s = duration;
  RunMetrics rhw = RunAtrapos(topo, params, spec, hw);
  tp.AddRow({"ATraPos (naive partitioning)",
             TablePrinter::Num(rhw.tps / 1e3, 1)});

  // ATraPos with its searched scheme (expected-load statistics).
  core::CostModel model(&topo, &spec);
  core::WorkloadStats stats;
  stats.tables.resize(spec.tables.size());
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    double load = 0;
    for (const auto& c : spec.classes)
      for (const auto& a : c.actions)
        if (a.table == static_cast<int>(t))
          load += c.weight * a.rows * a.AvgRepeat();
    uint64_t rows = spec.tables[t].num_rows;
    for (size_t b = 0; b < 160; ++b) {
      stats.tables[t].sub_starts.push_back(rows * b / 160);
      stats.tables[t].sub_cost.push_back(load / 160.0);
    }
  }
  for (const auto& c : spec.classes) stats.class_counts.push_back(c.weight);
  DoraOptions at;
  at.run.duration_s = duration;
  at.initial = core::ChooseScheme(model, stats);
  RunMetrics rat = RunAtrapos(topo, params, spec, at);
  tp.AddRow({"ATraPos (model-chosen scheme)",
             TablePrinter::Num(rat.tps / 1e3, 1)});
  tp.Print();

  std::printf("\npartitions per table under the model-chosen scheme:\n");
  for (size_t t = 0; t < at.initial.tables.size(); ++t)
    std::printf("  %-10s %zu\n", spec.tables[t].name.c_str(),
                at.initial.tables[t].num_partitions());

  std::printf("\n%s\n",
              core::RenderFlowGraph(
                  spec, spec.classes[workload::kNewOrderTxn]).c_str());
  return 0;
}
