#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/mrbtree.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "util/rng.h"

namespace atrapos::storage {
namespace {

Schema MicroSchema() {
  // The paper's microbenchmark table: 10 integer columns.
  std::vector<Column> cols;
  for (int i = 0; i < 10; ++i) cols.push_back(Column::Int64("c" + std::to_string(i)));
  return Schema(cols);
}

TEST(SchemaTest, LayoutAndAccessors) {
  Schema s({Column::Int64("id"), Column::FixedString("name", 16),
            Column::Int64("balance")});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.record_size(), 32u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 24u);
  EXPECT_EQ(s.FindColumn("balance"), 2);
  EXPECT_EQ(s.FindColumn("nope"), -1);

  Tuple t(&s);
  t.SetInt(0, 42);
  t.SetString(1, "alice");
  t.SetInt(2, -7);
  EXPECT_EQ(t.GetInt(0), 42);
  EXPECT_EQ(t.GetString(1), "alice");
  EXPECT_EQ(t.GetInt(2), -7);
}

TEST(SchemaTest, StringTruncatesAtCapacity) {
  Schema s({Column::FixedString("n", 4)});
  Tuple t(&s);
  t.SetString(0, "abcdefgh");
  EXPECT_EQ(t.GetString(0), "abcd");
}

TEST(SchemaTest, TupleRoundTripThroughBytes) {
  Schema s = MicroSchema();
  Tuple t(&s);
  for (int i = 0; i < 10; ++i) t.SetInt(static_cast<size_t>(i), i * 1000);
  Tuple u(&s, t.data());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(u.GetInt(static_cast<size_t>(i)), i * 1000);
}

TEST(PageTest, InsertGetUpdateDelete) {
  Page p;
  uint8_t rec[80];
  std::fill(rec, rec + 80, 0xAB);
  auto slot = p.Insert(rec, 80);
  ASSERT_TRUE(slot.ok());
  uint32_t len = 0;
  const uint8_t* got = p.Get(slot.value(), &len);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(len, 80u);
  EXPECT_EQ(got[0], 0xAB);

  uint8_t rec2[80];
  std::fill(rec2, rec2 + 80, 0xCD);
  EXPECT_TRUE(p.Update(slot.value(), rec2, 80).ok());
  EXPECT_EQ(p.Get(slot.value())[0], 0xCD);

  EXPECT_TRUE(p.Delete(slot.value()).ok());
  EXPECT_EQ(p.Get(slot.value()), nullptr);
  EXPECT_FALSE(p.Delete(slot.value()).ok());
}

TEST(PageTest, FillsUpThenRejects) {
  Page p;
  uint8_t rec[128] = {1};
  int inserted = 0;
  while (true) {
    auto s = p.Insert(rec, 128);
    if (!s.ok()) {
      EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ++inserted;
  }
  // ~8K / (128 + slot) -> around 60.
  EXPECT_GT(inserted, 50);
  EXPECT_EQ(p.live_records(), static_cast<uint32_t>(inserted));
}

TEST(PageTest, ReusesTombstones) {
  Page p;
  uint8_t rec[64] = {7};
  auto s1 = p.Insert(rec, 64);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(p.Delete(s1.value()).ok());
  auto s2 = p.Insert(rec, 64);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value(), s1.value());  // slot recycled
}

TEST(HeapFileTest, InsertReadAcrossPages) {
  HeapFile hf;
  Schema s = MicroSchema();
  std::vector<Rid> rids;
  for (int i = 0; i < 1000; ++i) {
    Tuple t(&s);
    t.SetInt(0, i);
    auto r = hf.Insert(t.data(), t.size());
    ASSERT_TRUE(r.ok());
    rids.push_back(r.value());
  }
  EXPECT_GT(hf.num_pages(), 1u);
  EXPECT_EQ(hf.num_records(), 1000u);
  for (int i = 0; i < 1000; i += 97) {
    Tuple t(&s);
    ASSERT_TRUE(hf.Read(rids[static_cast<size_t>(i)], t.mutable_data(), t.size()).ok());
    EXPECT_EQ(t.GetInt(0), i);
  }
}

// Regression (ISSUE 5 satellite): a stale or corrupt Rid — out-of-range
// page, vacated slot, or another heap's partition bits — must come back as
// NotFound from every HeapFile entry point, never as UB.
TEST(HeapFileTest, StaleRidsReturnNotFoundNotUB) {
  HeapFile hf(/*heap_id=*/3);
  Schema s = MicroSchema();
  Tuple t(&s);
  t.SetInt(0, 42);
  auto r = hf.Insert(t.data(), t.size());
  ASSERT_TRUE(r.ok());
  Rid good = r.value();
  uint8_t buf[512];

  Rid bad_page = good;
  bad_page.page = 1000;  // far past pages_.size()
  EXPECT_EQ(hf.Read(bad_page, buf, t.size()).code(), StatusCode::kNotFound);
  EXPECT_EQ(hf.Update(bad_page, t.data(), t.size()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(hf.ApplyDelta(bad_page, 0, buf, 1).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(hf.Delete(bad_page).code(), StatusCode::kNotFound);

  Rid bad_slot = good;
  bad_slot.slot = 9999;
  EXPECT_EQ(hf.Read(bad_slot, buf, t.size()).code(), StatusCode::kNotFound);
  EXPECT_EQ(hf.Update(bad_slot, t.data(), t.size()).code(),
            StatusCode::kNotFound);

  Rid wrong_heap = good;
  wrong_heap.partition = 7;  // Rid from another partition's heap
  EXPECT_EQ(hf.Read(wrong_heap, buf, t.size()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(hf.Update(wrong_heap, t.data(), t.size()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(hf.Delete(wrong_heap).code(), StatusCode::kNotFound);

  // The good Rid still works, and carries the heap's id.
  EXPECT_EQ(good.partition, 3u);
  EXPECT_TRUE(hf.Read(good, buf, t.size()).ok());
}

TEST(HeapFileTest, ApplyDeltaPatchesRangeAndValidatesBounds) {
  HeapFile hf;
  uint8_t rec[64];
  std::fill(rec, rec + 64, 0x11);
  auto r = hf.Insert(rec, 64);
  ASSERT_TRUE(r.ok());
  uint8_t patch[4] = {0xAA, 0xBB, 0xCC, 0xDD};
  ASSERT_TRUE(hf.ApplyDelta(r.value(), 60, patch, 4).ok());
  uint8_t out[64];
  ASSERT_TRUE(hf.Read(r.value(), out, 64).ok());
  EXPECT_EQ(out[59], 0x11);
  EXPECT_EQ(out[60], 0xAA);
  EXPECT_EQ(out[63], 0xDD);
  // Range past the record is rejected, len 0 is a validated no-op.
  EXPECT_EQ(hf.ApplyDelta(r.value(), 61, patch, 4).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(hf.ApplyDelta(r.value(), 64, patch, 0).ok());
}

TEST(BTreeTest, InsertGetSequential) {
  BPlusTree bt;
  for (uint64_t k = 0; k < 10000; ++k)
    ASSERT_TRUE(bt.Insert(k, k * 2).ok());
  EXPECT_EQ(bt.size(), 10000u);
  for (uint64_t k = 0; k < 10000; k += 37) {
    auto v = bt.Get(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k * 2);
  }
  EXPECT_FALSE(bt.Get(999999).has_value());
  EXPECT_GT(bt.height(), 1);
}

TEST(BTreeTest, InsertGetRandomOrder) {
  BPlusTree bt;
  std::vector<uint64_t> keys(20000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  std::mt19937_64 g(42);
  std::shuffle(keys.begin(), keys.end(), g);
  for (uint64_t k : keys) ASSERT_TRUE(bt.Insert(k, k + 1).ok());
  for (uint64_t k = 0; k < 20000; k += 111) {
    auto v = bt.Get(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k + 1);
  }
  EXPECT_EQ(*bt.MinKey(), 0u);
  EXPECT_EQ(*bt.MaxKey(), 19999u);
}

TEST(BTreeTest, DuplicateInsertRejected) {
  BPlusTree bt;
  ASSERT_TRUE(bt.Insert(5, 1).ok());
  EXPECT_EQ(bt.Insert(5, 2).code(), StatusCode::kAlreadyExists);
  bt.Upsert(5, 3);
  EXPECT_EQ(*bt.Get(5), 3u);
  EXPECT_EQ(bt.size(), 1u);
}

TEST(BTreeTest, UpdateAndDelete) {
  BPlusTree bt;
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(bt.Insert(k, k).ok());
  EXPECT_TRUE(bt.Update(50, 999).ok());
  EXPECT_EQ(*bt.Get(50), 999u);
  EXPECT_FALSE(bt.Update(1000, 1).ok());
  EXPECT_TRUE(bt.Delete(50).ok());
  EXPECT_FALSE(bt.Get(50).has_value());
  EXPECT_FALSE(bt.Delete(50).ok());
  EXPECT_EQ(bt.size(), 99u);
}

TEST(BTreeTest, ScanRangeInOrder) {
  BPlusTree bt;
  for (uint64_t k = 0; k < 1000; k += 2) ASSERT_TRUE(bt.Insert(k, k).ok());
  std::vector<uint64_t> seen;
  bt.Scan(100, 200, [&](uint64_t k, uint64_t) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 51u);  // 100,102,...,200
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 200u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(BTreeTest, ScanEarlyStop) {
  BPlusTree bt;
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(bt.Insert(k, k).ok());
  int count = 0;
  bt.Scan(0, 99, [&](uint64_t, uint64_t) { return ++count < 10; });
  EXPECT_EQ(count, 10);
}

TEST(BTreeTest, ExtractFromSplitsContents) {
  BPlusTree bt;
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(bt.Insert(k, k * 3).ok());
  auto moved = bt.ExtractFrom(600);
  EXPECT_EQ(moved.size(), 400u);
  EXPECT_EQ(bt.size(), 600u);
  EXPECT_EQ(moved.front().first, 600u);
  EXPECT_EQ(moved.back().first, 999u);
  EXPECT_TRUE(bt.Get(599).has_value());
  EXPECT_FALSE(bt.Get(600).has_value());
  // values preserved
  for (auto [k, v] : moved) EXPECT_EQ(v, k * 3);
}

TEST(BTreeTest, BulkLoadThenPointQueries) {
  std::vector<std::pair<uint64_t, uint64_t>> data;
  for (uint64_t k = 0; k < 50000; ++k) data.emplace_back(k, k ^ 0xFF);
  BPlusTree bt;
  bt.BulkLoad(data);
  EXPECT_EQ(bt.size(), 50000u);
  for (uint64_t k = 0; k < 50000; k += 503) EXPECT_EQ(*bt.Get(k), k ^ 0xFF);
  // Inserts still work after a bulk load.
  ASSERT_TRUE(bt.Insert(60000, 1).ok());
  EXPECT_EQ(*bt.Get(60000), 1u);
}

TEST(MrbTreeTest, RoutesKeysToPartitions) {
  MultiRootedBTree t({0, 100, 200, 300});
  EXPECT_EQ(t.num_partitions(), 4u);
  EXPECT_EQ(t.PartitionOf(0), 0u);
  EXPECT_EQ(t.PartitionOf(99), 0u);
  EXPECT_EQ(t.PartitionOf(100), 1u);
  EXPECT_EQ(t.PartitionOf(250), 2u);
  EXPECT_EQ(t.PartitionOf(1000000), 3u);
}

TEST(MrbTreeTest, OperationsAcrossPartitions) {
  MultiRootedBTree t({0, 500});
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(t.Insert(k, k).ok());
  EXPECT_EQ(t.total_size(), 1000u);
  EXPECT_EQ(t.partition_size(0), 500u);
  EXPECT_EQ(t.partition_size(1), 500u);
  EXPECT_EQ(*t.Get(499), 499u);
  EXPECT_EQ(*t.Get(500), 500u);
  EXPECT_TRUE(t.Update(750, 1).ok());
  EXPECT_EQ(*t.Get(750), 1u);
  EXPECT_TRUE(t.Delete(750).ok());
  EXPECT_FALSE(t.Get(750).has_value());
}

TEST(MrbTreeTest, ScanSpansPartitions) {
  MultiRootedBTree t({0, 100, 200});
  for (uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(t.Insert(k, k).ok());
  std::vector<uint64_t> seen;
  t.Scan(50, 250, [&](uint64_t k, uint64_t) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen.size(), 201u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(MrbTreeTest, SplitMovesUpperRange) {
  MultiRootedBTree t({0});
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(t.Insert(k, k).ok());
  ASSERT_TRUE(t.Split(0, 400).ok());
  EXPECT_EQ(t.num_partitions(), 2u);
  EXPECT_EQ(t.partition_start(1), 400u);
  EXPECT_EQ(t.partition_size(0), 400u);
  EXPECT_EQ(t.partition_size(1), 600u);
  // All keys still reachable.
  for (uint64_t k = 0; k < 1000; k += 99) EXPECT_EQ(*t.Get(k), k);
}

TEST(MrbTreeTest, SplitRejectsOutOfRangeKey) {
  MultiRootedBTree t({0, 500});
  EXPECT_FALSE(t.Split(0, 0).ok());
  EXPECT_FALSE(t.Split(0, 500).ok());
  EXPECT_FALSE(t.Split(0, 700).ok());
  EXPECT_FALSE(t.Split(5, 100).ok());
}

TEST(MrbTreeTest, MergeFusesNeighbors) {
  MultiRootedBTree t({0, 300, 600});
  for (uint64_t k = 0; k < 900; ++k) ASSERT_TRUE(t.Insert(k, k).ok());
  ASSERT_TRUE(t.Merge(0).ok());
  EXPECT_EQ(t.num_partitions(), 2u);
  EXPECT_EQ(t.partition_size(0), 600u);
  for (uint64_t k = 0; k < 900; k += 77) EXPECT_EQ(*t.Get(k), k);
  EXPECT_FALSE(t.Merge(1).ok());  // no right neighbor
}

TEST(MrbTreeTest, SplitMergeRoundTripPreservesData) {
  MultiRootedBTree t({0});
  Rng rng(7);
  for (uint64_t k = 0; k < 5000; ++k) ASSERT_TRUE(t.Insert(k, rng.Next()).ok());
  std::vector<uint64_t> before;
  t.Scan(0, UINT64_MAX, [&](uint64_t, uint64_t v) {
    before.push_back(v);
    return true;
  });
  ASSERT_TRUE(t.Split(0, 1000).ok());
  ASSERT_TRUE(t.Split(1, 3000).ok());
  ASSERT_TRUE(t.Merge(0).ok());
  ASSERT_TRUE(t.Merge(0).ok());
  EXPECT_EQ(t.num_partitions(), 1u);
  std::vector<uint64_t> after;
  t.Scan(0, UINT64_MAX, [&](uint64_t, uint64_t v) {
    after.push_back(v);
    return true;
  });
  EXPECT_EQ(before, after);
}

TEST(MrbTreeTest, RepartitionToArbitraryBoundaries) {
  MultiRootedBTree t({0, 100});
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(t.Insert(k, k).ok());
  t.Repartition({0, 250, 500, 750});
  EXPECT_EQ(t.num_partitions(), 4u);
  for (size_t p = 0; p < 4; ++p) EXPECT_EQ(t.partition_size(p), 250u);
  for (uint64_t k = 0; k < 1000; k += 33) EXPECT_EQ(*t.Get(k), k);
}

TEST(TableTest, CrudRoundTrip) {
  Schema s = MicroSchema();
  Table tbl(1, "micro", s, {0, 400});
  for (int64_t k = 0; k < 800; ++k) {
    Tuple t(&tbl.schema());
    t.SetInt(0, k);
    t.SetInt(1, k * 10);
    ASSERT_TRUE(tbl.Insert(static_cast<uint64_t>(k), t).ok());
  }
  EXPECT_EQ(tbl.num_rows(), 800u);

  Tuple out;
  ASSERT_TRUE(tbl.Read(123, &out).ok());
  EXPECT_EQ(out.GetInt(0), 123);
  EXPECT_EQ(out.GetInt(1), 1230);

  out.SetInt(1, -5);
  ASSERT_TRUE(tbl.Update(123, out).ok());
  Tuple out2;
  ASSERT_TRUE(tbl.Read(123, &out2).ok());
  EXPECT_EQ(out2.GetInt(1), -5);

  ASSERT_TRUE(tbl.Delete(123).ok());
  EXPECT_EQ(tbl.Read(123, &out2).code(), StatusCode::kNotFound);
  EXPECT_EQ(tbl.num_rows(), 799u);
}

TEST(TableTest, DuplicateKeyRejectedAndHeapRolledBack) {
  Schema s = MicroSchema();
  Table tbl(1, "micro", s);
  Tuple t(&tbl.schema());
  t.SetInt(0, 1);
  ASSERT_TRUE(tbl.Insert(7, t).ok());
  uint64_t heap_before = tbl.num_heap_records();
  EXPECT_EQ(tbl.Insert(7, t).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tbl.num_heap_records(), heap_before);
}

}  // namespace
}  // namespace atrapos::storage
