// Wire-tier tests: handshake + transaction round trips over real sockets,
// batched submission, batched pk-reads, deterministic admission-control
// backpressure (per-connection window and global in-flight cap), protocol
// hardening (malformed/truncated/oversized frames, unknown opcodes,
// mid-frame disconnects — fuzzed), the GOODBYE drain, the STATS round
// trip, and the documented shutdown ordering (engine-level Drain() race
// regression plus server-stop-under-churn).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/tatp.h"
#include "workload/tatp_graphs.h"

namespace atrapos::server {
namespace {

core::Scheme TatpScheme(uint64_t subscribers, int partitions) {
  core::Scheme scheme;
  for (int t = 0; t < 4; ++t) {
    uint64_t factor = t == 0 ? 1 : (t == 3 ? 32 : 4);
    core::TableScheme ts;
    for (int p = 0; p < partitions; ++p) {
      ts.boundaries.push_back(subscribers * factor *
                              static_cast<uint64_t>(p) /
                              static_cast<uint64_t>(partitions));
      ts.placement.push_back(p);
    }
    scheme.tables.push_back(ts);
  }
  return scheme;
}

/// A small TATP database + executor + running server, torn down in the
/// documented order: server.Stop(), db.Drain(), destroy executor, db.
struct Service {
  static constexpr uint64_t kSubscribers = 2000;

  explicit Service(Server::Options sopt = {},
                   hw::Topology topo = hw::Topology::Cube(1, 1),
                   engine::Database::Options dopt = {},
                   engine::PartitionedExecutor::Options eopt = {}) {
    dopt.topo = topo;
    db = std::make_unique<engine::Database>(dopt);
    std::vector<uint64_t> bounds;
    for (int p = 0; p < topo.num_cores(); ++p)
      bounds.push_back(kSubscribers * static_cast<uint64_t>(p) /
                       static_cast<uint64_t>(topo.num_cores()));
    for (auto& t : workload::BuildTatpTables(kSubscribers, bounds, 42))
      db->AddTable(std::move(t));
    exec = std::make_unique<engine::PartitionedExecutor>(
        db.get(), topo, TatpScheme(kSubscribers, topo.num_cores()), eopt);
    sopt.bind_listeners = false;  // CI machines are small
    server = std::make_unique<Server>(db.get(), exec.get(), kSubscribers,
                                      sopt);
    EXPECT_TRUE(server->Start().ok());
  }

  ~Service() {
    server->Stop();
    db->Drain();
    server.reset();
    exec.reset();
    db.reset();
  }

  Client::Options ClientOpts() {
    Client::Options o;
    o.port = server->port();
    return o;
  }

  std::unique_ptr<engine::Database> db;
  std::unique_ptr<engine::PartitionedExecutor> exec;
  std::unique_ptr<Server> server;
};

TEST(ServerTest, StartStopIdempotent) {
  Service s;
  EXPECT_NE(s.server->port(), 0);
  s.server->Stop();
  s.server->Stop();  // idempotent
  EXPECT_EQ(s.server->open_connections(), 0u);
}

TEST(ServerTest, HandshakeGrantsCappedWindow) {
  Server::Options sopt;
  sopt.max_window = 16;
  Service s(sopt);
  Client::Options copt = s.ClientOpts();
  copt.window = 1000;  // ask for more than the server grants
  Client c(copt);
  ASSERT_TRUE(c.Connect().ok());
  EXPECT_EQ(c.granted_window(0), 16u);
  EXPECT_EQ(c.num_islands(), static_cast<uint16_t>(s.db->num_sockets()));
  EXPECT_EQ(c.subscribers(), Service::kSubscribers);
}

TEST(ServerTest, AllTxnClassesRoundTrip) {
  Service s;
  Client c(s.ClientOpts());
  ASSERT_TRUE(c.Connect().ok());
  Rng rng(7);
  int per_class[7] = {0};
  // Draw from the mix until every class executed at least once; each
  // must come back with a TATP-success status over the wire.
  for (int i = 0; i < 400; ++i) {
    TxnRequest req = DrawTatpMix(rng, Service::kSubscribers);
    auto ws = c.Call(0, req);
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    EXPECT_TRUE(WireCountsAsSuccess(ws.value()))
        << "class " << int(req.txn_class) << ": "
        << WireStatusName(ws.value());
    per_class[req.txn_class]++;
  }
  for (int k = 0; k < 7; ++k) EXPECT_GT(per_class[k], 0) << "class " << k;
}

TEST(ServerTest, BatchedSubmissionOverManyConnections) {
  Service s(Server::Options{}, hw::Topology::Cube(1, 2));
  Client::Options copt = s.ClientOpts();
  copt.connections = 4;
  copt.batch = 16;
  copt.window = 64;
  Client c(copt);
  ASSERT_TRUE(c.Connect().ok());
  Rng rng(11);
  std::atomic<int> acked{0}, bad{0};
  constexpr int kPerConn = 200;
  for (int i = 0; i < kPerConn; ++i) {
    for (int conn = 0; conn < 4; ++conn) {
      ASSERT_TRUE(c.Submit(conn, DrawTatpMix(rng, Service::kSubscribers),
                           [&](WireStatus ws) {
                             ++acked;
                             if (!WireCountsAsSuccess(ws)) ++bad;
                           })
                      .ok());
    }
  }
  c.FlushAll();
  while (c.outstanding() > 0) c.Poll(-1);
  EXPECT_EQ(acked.load(), 4 * kPerConn);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ServerTest, PkReadBatchHitsMissesAndValidation) {
  Service s;
  Client c(s.ClientOpts());
  ASSERT_TRUE(c.Connect().ok());
  // Two hits + one definite miss against Subscriber.vlr_location; values
  // must equal a direct table read.
  std::vector<uint64_t> keys = {5, 17, Service::kSubscribers + 999};
  Client::PkRows rows;
  bool done = false;
  ASSERT_TRUE(c.PkRead(0, workload::kSubscriber, workload::kVlrLoc, keys,
                       [&](const Client::PkRows& r) {
                         rows = r;
                         done = true;
                       })
                  .ok());
  while (!done) c.Poll(-1);
  ASSERT_EQ(rows.size(), 3u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(rows[size_t(i)].first, WireStatus::kOk);
    storage::Tuple row;
    ASSERT_TRUE(
        s.db->table(workload::kSubscriber)->Read(keys[size_t(i)], &row).ok());
    EXPECT_EQ(rows[size_t(i)].second, row.GetInt(workload::kVlrLoc));
  }
  EXPECT_EQ(rows[2].first, WireStatus::kNotFound);

  // Unknown table and out-of-range column: every row answers kError, the
  // connection stays usable.
  for (auto [table, column] : {std::pair<uint8_t, uint8_t>{200, 0},
                               std::pair<uint8_t, uint8_t>{0, 99}}) {
    done = false;
    ASSERT_TRUE(c.PkRead(0, table, column, {1, 2}, [&](const Client::PkRows& r) {
                  rows = r;
                  done = true;
                }).ok());
    while (!done) c.Poll(-1);
    ASSERT_EQ(rows.size(), 2u);
    for (auto& [st, v] : rows) EXPECT_EQ(st, WireStatus::kError);
  }
  Rng rng(3);
  auto ws = c.Call(0, DrawTatpMix(rng, Service::kSubscribers));
  ASSERT_TRUE(ws.ok());
}

TEST(ServerTest, WindowOverrunShedsDeterministically) {
  Server::Options sopt;
  sopt.max_window = 8;
  Service s(sopt);
  Client::Options copt = s.ClientOpts();
  copt.window = 8;
  copt.batch = 20;            // one TXN_BATCH frame of 20
  copt.enforce_window = false;  // deliberately overrun
  Client c(copt);
  ASSERT_TRUE(c.Connect().ok());
  Rng rng(5);
  std::atomic<int> ok{0}, shed{0}, other{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(c.Submit(0, DrawTatpMix(rng, Service::kSubscribers),
                         [&](WireStatus ws) {
                           if (ws == WireStatus::kOverloaded)
                             ++shed;
                           else if (WireCountsAsSuccess(ws))
                             ++ok;
                           else
                             ++other;
                         })
                    .ok());
  }
  c.FlushAll();
  while (c.outstanding() > 0) c.Poll(-1);
  // The whole frame is decoded before the wave is submitted, so nothing
  // admitted can complete mid-frame: exactly window are admitted, the
  // rest shed with kOverloaded.
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(shed.load(), 12);
  EXPECT_EQ(other.load(), 0);
  obs::StatsSnapshot snap = s.db->StatsSnapshot();
  EXPECT_EQ(snap.counter(obs::CounterId::kNetTxnsShed), 12u);
}

TEST(ServerTest, GlobalInflightCapShedsInsteadOfQueueing) {
  Server::Options sopt;
  sopt.max_window = 256;
  sopt.max_inflight = 4;
  Service s(sopt);
  Client::Options copt = s.ClientOpts();
  copt.window = 256;
  copt.batch = 20;
  copt.enforce_window = false;
  Client c(copt);
  ASSERT_TRUE(c.Connect().ok());
  Rng rng(5);
  std::atomic<int> ok{0}, shed{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(c.Submit(0, DrawTatpMix(rng, Service::kSubscribers),
                         [&](WireStatus ws) {
                           if (ws == WireStatus::kOverloaded)
                             ++shed;
                           else if (WireCountsAsSuccess(ws))
                             ++ok;
                         })
                    .ok());
  }
  c.FlushAll();
  while (c.outstanding() > 0) c.Poll(-1);
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(shed.load(), 16);
  // Shed, not queued: once drained nothing is left in flight.
  EXPECT_EQ(s.server->inflight(), 0u);
}

TEST(ServerTest, ProtocolHardeningSurvivesMalformedInput) {
  Service s;
  auto probe_alive = [&] {
    Client c(s.ClientOpts());
    ASSERT_TRUE(c.Connect().ok());
    Rng rng(1);
    auto ws = c.Call(0, DrawTatpMix(rng, Service::kSubscribers));
    ASSERT_TRUE(ws.ok());
    EXPECT_TRUE(WireCountsAsSuccess(ws.value()));
  };

  // Handcrafted attacks, each on its own connection: the server must
  // close that connection only and keep serving everyone else.
  {
    // Oversized length prefix.
    Client c(s.ClientOpts());
    ASSERT_TRUE(c.Connect().ok());
    uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_TRUE(c.SendRaw(0, huge, sizeof(huge)).ok());
  }
  {
    // Unknown opcode.
    Client c(s.ClientOpts());
    ASSERT_TRUE(c.Connect().ok());
    uint8_t frame[5] = {1, 0, 0, 0, 0xee};
    ASSERT_TRUE(c.SendRaw(0, frame, sizeof(frame)).ok());
  }
  {
    // Truncated TXN payload (claims a body it doesn't carry).
    Client c(s.ClientOpts());
    ASSERT_TRUE(c.Connect().ok());
    uint8_t frame[7] = {3, 0, 0, 0,
                        static_cast<uint8_t>(Op::kTxn), 1, 2};
    ASSERT_TRUE(c.SendRaw(0, frame, sizeof(frame)).ok());
  }
  {
    // Mid-frame disconnect: half a frame header, then an abrupt close.
    Client c(s.ClientOpts());
    ASSERT_TRUE(c.Connect().ok());
    uint8_t partial[2] = {40, 0};
    ASSERT_TRUE(c.SendRaw(0, partial, sizeof(partial)).ok());
    c.Kill(0);
  }
  {
    // TXN before HELLO (handshake-order violation).
    Client::Options raw = s.ClientOpts();
    Client c(raw);
    // Bypass Connect's handshake by connecting a socket manually through
    // Connect and then... simplest: Connect (handshakes), then a second
    // HELLO — also an order violation the server must reject.
    ASSERT_TRUE(c.Connect().ok());
    std::vector<uint8_t> hello;
    EncodeHello(&hello, 4);
    ASSERT_TRUE(c.SendRaw(0, hello.data(), hello.size()).ok());
  }
  probe_alive();

  // Randomized fuzz: garbage frames with plausible small lengths. The
  // server must never crash and never leak an outstanding-txn slot.
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    Client c(s.ClientOpts());
    ASSERT_TRUE(c.Connect().ok());
    std::vector<uint8_t> junk;
    uint32_t len = static_cast<uint32_t>(rng.Uniform(64));
    PutU32(&junk, len);
    for (uint32_t b = 0; b < len; ++b)
      PutU8(&junk, static_cast<uint8_t>(rng.Uniform(256)));
    // Sometimes truncate mid-frame, sometimes send it whole.
    size_t n = rng.Chance(0.5) ? junk.size() : junk.size() / 2;
    (void)c.SendRaw(0, junk.data(), n);
    if (rng.Chance(0.5)) c.Kill(0);
  }
  probe_alive();
  // Every admitted request was answered: nothing left in flight.
  for (int spin = 0; s.server->inflight() != 0 && spin < 1000; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(s.server->inflight(), 0u);
  obs::StatsSnapshot snap = s.db->StatsSnapshot();
  EXPECT_GT(snap.counter(obs::CounterId::kNetProtocolErrors), 0u);
}

TEST(ServerTest, StatsRoundTripExposesWireMetrics) {
  Service s;
  Client c(s.ClientOpts());
  ASSERT_TRUE(c.Connect().ok());
  Rng rng(2);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(c.Call(0, DrawTatpMix(rng, Service::kSubscribers)).ok());
  auto stats = c.QueryStats(0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("atrapos_net_frames_in"), std::string::npos);
  EXPECT_NE(stats.value().find("atrapos_net_accepts"), std::string::npos);
  EXPECT_NE(stats.value().find("atrapos_net_island_accepts"),
            std::string::npos);
}

TEST(ServerTest, GoodbyeDrainsAndClosesConnection) {
  Service s;
  {
    Client::Options copt = s.ClientOpts();
    copt.batch = 8;
    Client c(copt);
    ASSERT_TRUE(c.Connect().ok());
    Rng rng(3);
    for (int i = 0; i < 8; ++i)
      ASSERT_TRUE(
          c.Submit(0, DrawTatpMix(rng, Service::kSubscribers), nullptr).ok());
    c.CloseAll();  // flushes the batch, sends GOODBYE, closes
  }
  // The server reaps the connection (the peer closed right after GOODBYE)
  // and every admitted transaction still releases its slot through its
  // completion callback — connection teardown and engine completion are
  // independently asynchronous, so wait out both.
  for (int spin = 0; (s.server->open_connections() != 0 ||
                      s.server->inflight() != 0) &&
                     spin < 2000;
       ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(s.server->open_connections(), 0u);
  EXPECT_EQ(s.server->inflight(), 0u);
}

// ---- shutdown ordering (satellite 1) ---------------------------------------

// Engine-level regression for the documented Database::Drain() sequence:
// submitter threads race Drain(); no completion callback may fire after
// Drain() returned, and post-drain submissions fail with Unavailable.
TEST(ServerShutdownTest, NoCompletionFiresAfterDatabaseDrain) {
  constexpr uint64_t kSubs = 2000;
  hw::Topology topo = hw::Topology::Cube(1, 1);
  engine::Database db({.topo = topo});
  std::vector<uint64_t> bounds;
  for (int p = 0; p < topo.num_cores(); ++p)
    bounds.push_back(kSubs * static_cast<uint64_t>(p) /
                     static_cast<uint64_t>(topo.num_cores()));
  for (auto& t : workload::BuildTatpTables(kSubs, bounds, 42))
    db.AddTable(std::move(t));
  engine::PartitionedExecutor exec(&db, topo,
                                   TatpScheme(kSubs, topo.num_cores()));
  workload::TatpActionGraphs graphs(kSubs);

  std::atomic<bool> drain_returned{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> late_completions{0};
  std::atomic<uint64_t> submitted{0}, rejected{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      const auto self = std::this_thread::get_id();
      while (!stop.load(std::memory_order_relaxed)) {
        auto f = exec.Submit(graphs.Mix(rng));
        if (!f.ok()) {
          EXPECT_EQ(f.status().code(), StatusCode::kUnavailable);
          ++rejected;
          continue;
        }
        ++submitted;
        f.value().OnComplete([&, self](const Status&) {
          // OnComplete on an already-complete future fires inline on the
          // registering (client) thread — documented, and legal after
          // Drain() when this thread was preempted between Submit() and
          // here. Late means the *engine* (a worker or the log flusher)
          // ran a completion after Drain() returned.
          if (drain_returned.load(std::memory_order_acquire) &&
              std::this_thread::get_id() != self)
            ++late_completions;
        });
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  db.Drain();  // races the submitters
  drain_returned.store(true, std::memory_order_release);
  stop.store(true, std::memory_order_relaxed);
  for (auto& c : clients) c.join();

  // Sealed-before-drained: every engine-side completion for an accepted
  // submission ran inside Drain()'s wait; none after.
  EXPECT_EQ(late_completions.load(), 0u);
  EXPECT_GT(submitted.load(), 0u);
  // Post-drain submission deterministically refused.
  Rng post_rng(1);
  auto f = exec.Submit(graphs.Mix(post_rng));
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kUnavailable);
}

// Wire-level: connect/submit churn racing Server::Stop() + Database::
// Drain() — every client unwinds (ack, kShutdown, or a closed socket),
// nothing crashes, nothing stays in flight.
TEST(ServerShutdownTest, StopUnderChurnDrainsCleanly) {
  auto s = std::make_unique<Service>(Server::Options{},
                                     hw::Topology::Cube(1, 2));
  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (int t = 0; t < 4; ++t) {
    churn.emplace_back([&, t] {
      Rng rng(200 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        Client::Options copt = s->ClientOpts();
        copt.batch = 4;
        copt.window = 16;
        Client c(copt);
        if (!c.Connect().ok()) continue;  // draining server refuses
        for (int i = 0; i < 40 && !stop.load(std::memory_order_relaxed);
             ++i) {
          if (!c.Submit(0, DrawTatpMix(rng, Service::kSubscribers), nullptr)
                   .ok())
            break;
          c.Poll(0);
        }
        c.FlushAll();
        for (int spin = 0; c.outstanding() > 0 && spin < 100; ++spin)
          c.Poll(10);
        if (rng.Chance(0.3)) c.Kill(0);  // some leave abruptly
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  s->server->Stop();  // graceful drain while clients churn
  EXPECT_EQ(s->server->inflight(), 0u);
  s->db->Drain();
  stop.store(true, std::memory_order_relaxed);
  for (auto& c : churn) c.join();
  s.reset();  // full teardown repeats Stop()/Drain(): both idempotent
}

// ---- client fault tolerance: deadlines, retries, island failure ------------

/// A scripted wire peer for the deadline/retry tests: accepts one
/// connection, optionally answers HELLO, then answers successive TXN
/// requests from a fixed status script (kOk once exhausted) — or stays
/// silent, for the deadline tests. Blocking I/O on its own thread.
class FakeServer {
 public:
  struct Options {
    bool answer_hello = true;
    bool answer_txns = true;
    std::vector<WireStatus> script;
  };

  explicit FakeServer(Options opt) : opt_(std::move(opt)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(listen_fd_, 1);
    th_ = std::thread([this] { Run(); });
  }

  ~FakeServer() {
    stop_.store(true, std::memory_order_relaxed);
    th_.join();
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }
  size_t txns_seen() const { return txns_seen_.load(); }

 private:
  bool WaitReadable(int fd) {
    while (!stop_.load(std::memory_order_relaxed)) {
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, 20) > 0) return true;
    }
    return false;
  }

  void Run() {
    if (!WaitReadable(listen_fd_)) return;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    std::vector<uint8_t> buf;
    uint8_t tmp[4096];
    size_t next = 0;
    while (WaitReadable(fd)) {
      ssize_t n = ::read(fd, tmp, sizeof(tmp));
      if (n <= 0) break;
      buf.insert(buf.end(), tmp, tmp + n);
      while (buf.size() >= kFrameHeaderBytes) {
        uint32_t flen = static_cast<uint32_t>(buf[0]) |
                        static_cast<uint32_t>(buf[1]) << 8 |
                        static_cast<uint32_t>(buf[2]) << 16 |
                        static_cast<uint32_t>(buf[3]) << 24;
        if (buf.size() < kFrameHeaderBytes + flen) break;
        DecodedFrame f =
            DecodeRequestFrame(buf.data() + kFrameHeaderBytes, flen);
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<ptrdiff_t>(kFrameHeaderBytes + flen));
        std::vector<uint8_t> out;
        if (f.kind == DecodedFrame::Kind::kHello && opt_.answer_hello) {
          EncodeHelloAck(&out, f.requested_window, 1, 100);
        } else if (f.kind == DecodedFrame::Kind::kTxns) {
          txns_seen_.fetch_add(f.txns.size());
          if (opt_.answer_txns) {
            for (const auto& t : f.txns) {
              WireStatus ws = next < opt_.script.size() ? opt_.script[next]
                                                        : WireStatus::kOk;
              ++next;
              EncodeTxnAck(&out, t.req_id, ws);
            }
          }
        } else if (f.kind == DecodedFrame::Kind::kGoodbye) {
          ::close(fd);
          return;
        }
        if (!out.empty()) {
          ssize_t w = ::write(fd, out.data(), out.size());
          (void)w;
        }
      }
    }
    ::close(fd);
  }

  Options opt_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> txns_seen_{0};
  std::thread th_;
};

TxnRequest AnyTxn() {
  TxnRequest req;
  req.txn_class = 0;  // kGetSubData
  req.s_id = 1;
  return req;
}

TEST(ClientFaultTest, CallDeadlineAgainstSilentServer) {
  FakeServer fs({.answer_txns = false});
  Client::Options o;
  o.port = fs.port();
  o.deadline_ms = 200;
  Client c(o);
  ASSERT_TRUE(c.Connect().ok());
  auto t0 = std::chrono::steady_clock::now();
  Result<WireStatus> r = c.Call(0, AnyTxn());
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(ms, 150);
  EXPECT_LT(ms, 5'000) << "deadline must bound the wait";
  // The abandoned request's callback is unregistered — the client is not
  // waiting on anything any more and a late ack would be dropped.
  EXPECT_EQ(c.outstanding(), 0u);
  c.CloseAll();
}

TEST(ClientFaultTest, ConnectDeadlineWhenHandshakeUnanswered) {
  FakeServer fs({.answer_hello = false});
  Client::Options o;
  o.port = fs.port();
  o.deadline_ms = 150;
  Client c(o);
  Status s = c.Connect();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

TEST(ClientFaultTest, CallRetriesTransientStatuses) {
  FakeServer fs({.script = {WireStatus::kOverloaded, WireStatus::kUnavailable,
                            WireStatus::kOk}});
  Client::Options o;
  o.port = fs.port();
  o.deadline_ms = 2'000;
  o.retries = 3;
  o.backoff_base_us = 100;
  o.backoff_cap_us = 2'000;
  Client c(o);
  ASSERT_TRUE(c.Connect().ok());
  Result<WireStatus> r = c.Call(0, AnyTxn());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), WireStatus::kOk);
  EXPECT_EQ(fs.txns_seen(), 3u);  // two shed answers retried, third landed
  c.CloseAll();
}

TEST(ClientFaultTest, ShutdownIsNeverRetried) {
  FakeServer fs({.script = {WireStatus::kShutdown, WireStatus::kOk}});
  Client::Options o;
  o.port = fs.port();
  o.retries = 5;
  o.backoff_base_us = 100;
  Client c(o);
  ASSERT_TRUE(c.Connect().ok());
  Result<WireStatus> r = c.Call(0, AnyTxn());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), WireStatus::kShutdown);
  EXPECT_EQ(fs.txns_seen(), 1u) << "the server is going away: do not retry";
  c.CloseAll();
}

TEST(ClientFaultTest, ExhaustedRetriesReturnLastAnswer) {
  FakeServer fs({.script = {WireStatus::kUnavailable, WireStatus::kUnavailable,
                            WireStatus::kUnavailable}});
  Client::Options o;
  o.port = fs.port();
  o.retries = 2;
  o.backoff_base_us = 100;
  o.backoff_cap_us = 1'000;
  Client c(o);
  ASSERT_TRUE(c.Connect().ok());
  Result<WireStatus> r = c.Call(0, AnyTxn());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), WireStatus::kUnavailable);
  EXPECT_EQ(fs.txns_seen(), 3u);  // initial attempt + 2 retries
  c.CloseAll();
}

// End-to-end graceful degradation: an island fail-stops under a live
// client mid-call stream; the server sheds kUnavailable during the
// quarantine/evacuation window and the client's retry budget carries
// every request through — no call fails, no call hangs.
TEST(ServerFaultTest, IslandKillShedsAndClientRetriesThrough) {
  Service s({}, hw::Topology::Cube(1, 2));
  Client::Options copt = s.ClientOpts();
  copt.deadline_ms = 10'000;
  copt.retries = 100;
  copt.backoff_base_us = 200;
  copt.backoff_cap_us = 10'000;
  Client c(copt);
  ASSERT_TRUE(c.Connect().ok());
  Rng rng(9);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto moved = s.exec->KillIsland(1);
    EXPECT_TRUE(moved.ok()) << moved.status().ToString();
  });
  for (int i = 0; i < 300; ++i) {
    Result<WireStatus> r =
        c.Call(0, DrawTatpMix(rng, Service::kSubscribers));
    ASSERT_TRUE(r.ok()) << "call " << i << ": " << r.status().ToString();
    EXPECT_TRUE(WireCountsAsSuccess(r.value()))
        << "call " << i << ": " << WireStatusName(r.value());
  }
  killer.join();
  EXPECT_EQ(s.exec->failed_islands(), 0b10u);
  EXPECT_FALSE(s.exec->quarantining());
  c.CloseAll();
}

// ---- time-series over the wire (STATS_SERIES) -------------------------------

TEST(ServerSeriesTest, StatsSeriesRoundTripExposesSamplerJson) {
  engine::Database::Options dopt;
  dopt.sampler.enabled = true;
  dopt.sampler.interval_ms = 5;
  Service s({}, hw::Topology::Cube(1, 1), dopt);
  Client c(s.ClientOpts());
  ASSERT_TRUE(c.Connect().ok());
  Rng rng(4);
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(c.Call(0, DrawTatpMix(rng, Service::kSubscribers)).ok());
  // Bounded wait for the 5 ms sampler thread to take at least one tick.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (s.db->sampler()->samples() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_GT(s.db->sampler()->samples(), 0u);
  auto r = c.QuerySeries(0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& j = r.value();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"t_ms\""), std::string::npos);
  EXPECT_NE(j.find("\"series\""), std::string::npos);
  EXPECT_NE(j.find("\"txn_committed\""), std::string::npos);
  EXPECT_NE(j.find("\"net_inflight_txns\""), std::string::npos);
  // The wire answer is exactly the sampler's serialization contract.
  EXPECT_NE(j.find("\"interval_ms\":5"), std::string::npos);
}

TEST(ServerSeriesTest, StatsSeriesWithoutSamplerAnswersEmptyObject) {
  Service s;  // no sampler configured
  ASSERT_EQ(s.db->sampler(), nullptr);
  Client c(s.ClientOpts());
  ASSERT_TRUE(c.Connect().ok());
  auto r = c.QuerySeries(0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "{}");
}

TEST(ServerSeriesTest, StatsSeriesWithTrailingBytesIsAProtocolError) {
  Service s;
  {
    // STATS_SERIES carries an empty body; a trailing byte must close the
    // connection, not be silently accepted.
    Client c(s.ClientOpts());
    ASSERT_TRUE(c.Connect().ok());
    std::vector<uint8_t> junk;
    PutU32(&junk, 2);
    PutU8(&junk, static_cast<uint8_t>(Op::kStatsSeries));
    PutU8(&junk, 0x5a);
    ASSERT_TRUE(c.SendRaw(0, junk.data(), junk.size()).ok());
    auto r = c.QuerySeries(0);
    EXPECT_FALSE(r.ok()) << "server must drop the connection";
  }
  obs::StatsSnapshot snap = s.db->StatsSnapshot();
  EXPECT_GT(snap.counter(obs::CounterId::kNetProtocolErrors), 0u);
  // Everyone else keeps being served.
  Client probe(s.ClientOpts());
  ASSERT_TRUE(probe.Connect().ok());
  auto r = probe.QuerySeries(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "{}");
}

// ---- wire-to-commit trace propagation ---------------------------------------

// The tentpole end-to-end assertion: one transaction submitted through a
// real socket leaves a single trace-id chain from the client's send
// instant to the durable ack — every hop in one chrome://tracing dump.
TEST(ServerTraceTest, WireTxnSpanChainClientSendToDurableAck) {
  engine::Database::Options dopt;
  dopt.obs.trace = true;
  engine::PartitionedExecutor::Options eopt;
  eopt.durability = engine::DurabilityMode::kGroup;
  Service s({}, hw::Topology::Cube(1, 1), dopt, eopt);
  Client::Options copt = s.ClientOpts();
  copt.trace = &s.db->observability();  // loopback: client taps the same registry
  Client c(copt);
  ASSERT_TRUE(c.Connect().ok());
  // Must be a WRITE: only writers append a commit marker and earn a
  // durable ack, the tail links of the chain.
  TxnRequest req;
  req.txn_class = workload::kUpdLocation;
  req.s_id = 1;
  req.a = 12345;  // new vlr_location
  auto ws = c.Call(0, req);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_TRUE(WireCountsAsSuccess(ws.value()));
  s.exec->Drain();  // flush group commit so the durable-ack span landed

  // First request id this client allocated (req ids are salted with a
  // per-Client nonce so concurrent clients' trace chains never merge).
  const uint64_t tid = WireTraceId(c.req_id_base() + 1);
  std::vector<obs::TraceEvent> events = s.db->observability().CollectTrace();
  uint64_t t_send = 0, t_decode = 0, t_begin = 0, t_end = 0, t_ack = 0;
  bool send = false, decode = false, begin = false, end = false;
  bool marker = false, durable = false, ack = false;
  for (const obs::TraceEvent& e : events) {
    if (e.txn != tid) continue;
    switch (e.span) {
      case obs::SpanId::kClientSend:
        send = true;
        t_send = e.ts_ns;
        break;
      case obs::SpanId::kWireDecode:
        decode = true;
        t_decode = e.ts_ns;
        break;
      case obs::SpanId::kTxn:
        if (e.phase == obs::TracePhase::kBegin) {
          begin = true;
          t_begin = e.ts_ns;
        } else if (e.phase == obs::TracePhase::kEnd) {
          end = true;
          t_end = e.ts_ns;
        }
        break;
      case obs::SpanId::kCommitMarker:
        marker = true;
        break;
      case obs::SpanId::kDurableAck:
        durable = true;
        break;
      case obs::SpanId::kWireAck:
        ack = true;
        t_ack = e.ts_ns;
        break;
      default:
        break;
    }
  }
  // Every hop present under ONE id...
  EXPECT_TRUE(send) << "client_send missing";
  EXPECT_TRUE(decode) << "wire_decode missing";
  EXPECT_TRUE(begin) << "txn begin missing";
  EXPECT_TRUE(end) << "txn end missing";
  EXPECT_TRUE(marker) << "commit_marker missing";
  EXPECT_TRUE(durable) << "durable_ack missing";
  EXPECT_TRUE(ack) << "wire_ack missing";
  // ...in causal order along the wire path.
  EXPECT_LE(t_send, t_decode);
  EXPECT_LE(t_decode, t_begin);
  EXPECT_LE(t_begin, t_end);
  EXPECT_LE(t_end, t_ack);

  // And the one dump is chrome://tracing-loadable with the chain visible.
  std::string path = testing::TempDir() + "wire_trace_chain.json";
  ASSERT_TRUE(s.db->DumpTrace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();
  while (!json.empty() && (json.back() == '\n' || json.back() == ' '))
    json.pop_back();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("client_send"), std::string::npos);
  EXPECT_NE(json.find("wire_decode"), std::string::npos);
  EXPECT_NE(json.find("wire_ack"), std::string::npos);
  EXPECT_NE(json.find("durable_ack"), std::string::npos);
}

TEST(ServerTraceTest, TraceOffLeavesWireIdsUnassigned) {
  Service s;  // tracing off (the default)
  Client::Options copt = s.ClientOpts();
  copt.trace = &s.db->observability();  // registered but disabled: no-op
  Client c(copt);
  ASSERT_TRUE(c.Connect().ok());
  ASSERT_TRUE(c.Call(0, AnyTxn()).ok());
  EXPECT_TRUE(s.db->observability().CollectTrace().empty());
}

// ---- client call-outcome counters -------------------------------------------

TEST(ClientFaultTest, CallStatsCountRetriesByCause) {
  FakeServer fs({.script = {WireStatus::kOverloaded, WireStatus::kUnavailable,
                            WireStatus::kOk}});
  Client::Options o;
  o.port = fs.port();
  o.deadline_ms = 5'000;
  o.retries = 3;
  o.backoff_base_us = 100;
  o.backoff_cap_us = 1'000;
  Client c(o);
  ASSERT_TRUE(c.Connect().ok());
  Result<WireStatus> r = c.Call(0, AnyTxn());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Client::CallStats& cs = c.call_stats();
  EXPECT_EQ(cs.calls, 1u);
  EXPECT_EQ(cs.attempts, 3u);  // attempts - calls == retries taken
  EXPECT_EQ(cs.retries, 2u);
  EXPECT_EQ(cs.retries_overloaded, 1u);
  EXPECT_EQ(cs.retries_unavailable, 1u);
  EXPECT_EQ(cs.deadline_exceeded, 0u);
  EXPECT_EQ(cs.failures, 0u);
  c.CloseAll();
}

TEST(ClientFaultTest, CallStatsCountDeadlineExpiryAsFailure) {
  FakeServer fs({.answer_txns = false});
  Client::Options o;
  o.port = fs.port();
  o.deadline_ms = 150;
  Client c(o);
  ASSERT_TRUE(c.Connect().ok());
  Result<WireStatus> r = c.Call(0, AnyTxn());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  const Client::CallStats& cs = c.call_stats();
  EXPECT_EQ(cs.calls, 1u);
  EXPECT_EQ(cs.attempts, 1u);
  EXPECT_EQ(cs.retries, 0u);
  EXPECT_EQ(cs.deadline_exceeded, 1u);
  EXPECT_EQ(cs.failures, 1u);
  c.CloseAll();
}

}  // namespace
}  // namespace atrapos::server
