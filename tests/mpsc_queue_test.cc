// Unit tests of the chunked MPSC inbox the partitioned executor's
// submission fast path is built on: FIFO per producer across chunk
// boundaries, exactly-once delivery under concurrent producers, and the
// was-empty signal Push feeds the wake-coalescing protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/mpsc_queue.h"

namespace atrapos::engine {
namespace {

struct Item {
  int producer = -1;
  int seq = -1;
};

using Queue = MpscChunkQueue<Item, 4>;  // small chunks to force chaining

TEST(MpscChunkQueueTest, PopAllOnEmptyReturnsNull) {
  Queue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PopAll(), nullptr);
}

TEST(MpscChunkQueueTest, SingleProducerFifoAcrossChunks) {
  Queue q;
  // 3 chunks of up to 4 items each, pushed in FIFO order.
  int next = 0;
  for (int c = 0; c < 3; ++c) {
    Queue::Chunk* chunk = Queue::NewChunk();
    for (int i = 0; i < 4 && next < 10; ++i) chunk->Append({0, next++});
    bool was_empty = q.Push(chunk);
    EXPECT_EQ(was_empty, c == 0);
  }
  EXPECT_FALSE(q.Empty());
  int expect = 0;
  Queue::Chunk* chain = q.PopAll();
  while (chain != nullptr) {
    Queue::Chunk* c = chain;
    chain = chain->next;
    for (uint32_t i = 0; i < c->count; ++i)
      EXPECT_EQ(c->items[i].seq, expect++);
    Queue::FreeChunk(c);
  }
  EXPECT_EQ(expect, 10);
  EXPECT_TRUE(q.Empty());
}

TEST(MpscChunkQueueTest, ConcurrentProducersDeliverEachExactlyOnceInOrder) {
  constexpr int kProducers = 4, kItems = 20000;
  Queue q;
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      int next = 0;
      while (next < kItems) {
        Queue::Chunk* chunk = Queue::NewChunk();
        while (!chunk->full() && next < kItems) chunk->Append({p, next++});
        q.Push(chunk);
      }
    });
  }
  // Single consumer drains concurrently, checking per-producer FIFO.
  std::vector<int> next_seq(kProducers, 0);
  std::thread consumer([&] {
    while (true) {
      Queue::Chunk* chain = q.PopAll();
      if (chain == nullptr) {
        if (done.load(std::memory_order_acquire) && q.Empty()) return;
        std::this_thread::yield();
        continue;
      }
      while (chain != nullptr) {
        Queue::Chunk* c = chain;
        chain = chain->next;
        for (uint32_t i = 0; i < c->count; ++i) {
          const Item& it = c->items[i];
          EXPECT_EQ(it.seq, next_seq[static_cast<size_t>(it.producer)]);
          ++next_seq[static_cast<size_t>(it.producer)];
        }
        Queue::FreeChunk(c);
      }
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kItems);
}

TEST(MpscChunkQueueTest, DestructorFreesUndrainedChunks) {
  // No leak under ASAN/valgrind; nothing to assert beyond not crashing.
  Queue q;
  for (int i = 0; i < 5; ++i) {
    Queue::Chunk* c = Queue::NewChunk();
    c->Append({0, i});
    q.Push(c);
  }
}

}  // namespace
}  // namespace atrapos::engine
