// Tests of the discrete-event machine simulator: determinism, cost
// accounting, the contended cache-line convoy, rwlocks, queues, channels.
#include <gtest/gtest.h>

#include <vector>

#include "hw/topology.h"
#include "sim/cache_line.h"
#include "sim/channel.h"
#include "sim/locks.h"
#include "sim/machine.h"
#include "sim/resource.h"

namespace atrapos::sim {
namespace {

hw::Topology Topo8() { return hw::Topology::TwistedCube8x10(); }

TEST(MachineTest, DelayAdvancesTime) {
  auto topo = hw::Topology::SingleSocket(4);
  Machine m(topo);
  Tick done = 0;
  auto worker = [](Machine& m, Ctx ctx, Tick* done) -> Task {
    co_await m.Delay(100);
    *done = m.now();
  };
  Ctx ctx = m.MakeCtx(0);
  worker(m, ctx, &done);
  m.RunUntilIdle();
  EXPECT_EQ(done, 100u);
}

TEST(MachineTest, EventsRunInTimeOrder) {
  auto topo = hw::Topology::SingleSocket(1);
  Machine m(topo);
  std::vector<int> order;
  m.At(50, [&] { order.push_back(2); });
  m.At(10, [&] { order.push_back(1); });
  m.At(90, [&] { order.push_back(3); });
  m.RunUntil(60);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(m.now(), 60u);
  m.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MachineTest, SameTimeEventsFifo) {
  auto topo = hw::Topology::SingleSocket(1);
  Machine m(topo);
  std::vector<int> order;
  m.At(10, [&] { order.push_back(1); });
  m.At(10, [&] { order.push_back(2); });
  m.At(10, [&] { order.push_back(3); });
  m.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MachineTest, ComputeAccountsBusyAndInstr) {
  auto topo = hw::Topology::SingleSocket(2);
  Machine m(topo);
  auto worker = [](Machine& m, Ctx ctx) -> Task {
    co_await m.Compute(ctx, 1000);
  };
  Ctx ctx = m.MakeCtx(1);
  worker(m, ctx);
  m.RunUntilIdle();
  EXPECT_EQ(m.counters().core(1).busy, 1000u);
  EXPECT_EQ(m.counters().core(1).instr,
            static_cast<uint64_t>(1000 * m.params().work_ipc));
  EXPECT_EQ(m.counters().core(0).busy, 0u);
}

TEST(MachineTest, MemAccessRemoteCostsMore) {
  auto topo = Topo8();
  // Deterministic: force every access to miss the LLC.
  CostParams p;
  p.llc_miss_ratio = 1.0;
  Tick local_done = 0, remote_done = 0;
  {
    Machine m(topo, p);
    auto w = [](Machine& m, Ctx ctx, hw::SocketId node, Tick* t) -> Task {
      co_await m.MemAccess(ctx, node, 100, m.params().row_read_work);
      *t = m.now();
    };
    Ctx ctx = m.MakeCtx(0);
    w(m, ctx, 0, &local_done);
    m.RunUntilIdle();
  }
  {
    Machine m(topo, p);
    auto w = [](Machine& m, Ctx ctx, hw::SocketId node, Tick* t) -> Task {
      co_await m.MemAccess(ctx, node, 100, m.params().row_read_work);
      *t = m.now();
    };
    Ctx ctx = m.MakeCtx(0);
    w(m, ctx, 7, &remote_done);  // socket 7 is 1 hop from 0 (twist link)
    m.RunUntilIdle();
  }
  EXPECT_GT(remote_done, local_done);
  // Remote DRAM penalty is bounded (paper §III-D: <10% on full txns; here
  // we check the raw memory-path inflation stays modest, under 25%).
  EXPECT_LT(static_cast<double>(remote_done),
            static_cast<double>(local_done) * 1.25);
}

TEST(MachineTest, MemAccessCountsTraffic) {
  auto topo = Topo8();
  CostParams p;
  p.llc_miss_ratio = 1.0;
  Machine m(topo, p);
  auto w = [](Machine& m, Ctx ctx) -> Task {
    co_await m.MemAccess(ctx, 7, 10, 100);
  };
  Ctx ctx = m.MakeCtx(0);
  w(m, ctx);
  m.RunUntilIdle();
  // With miss ratio 1.0 every touched line misses: rows * lines_per_row.
  EXPECT_EQ(m.counters().imc_bytes(7),
            10u * static_cast<uint64_t>(m.params().lines_per_row) *
                m.params().line_bytes);
  EXPECT_GT(m.counters().total_qpi_bytes(), 0u);
}

TEST(CacheLineTest, LocalAtomicCheap) {
  auto topo = Topo8();
  Machine m(topo);
  Tick done = 0;
  auto w = [](Machine& m, CacheLine& cl, Ctx ctx, Tick* t) -> Task {
    co_await cl.Atomic(ctx);
    *t = m.now();
  };
  CacheLine cl(&m, 0);
  Ctx ctx = m.MakeCtx(0);
  w(m, cl, ctx, &done);
  m.RunUntilIdle();
  EXPECT_EQ(done, m.params().cas_local);
}

TEST(CacheLineTest, RemoteAtomicExpensiveAndMovesOwnership) {
  auto topo = Topo8();
  Machine m(topo);
  Tick done = 0;
  auto w = [](Machine& m, CacheLine& cl, Ctx ctx, Tick* t) -> Task {
    co_await cl.Atomic(ctx);
    *t = m.now();
  };
  CacheLine cl(&m, 0);
  Ctx ctx = m.MakeCtx(topo.first_core(1));  // socket 1, 1 hop from 0
  w(m, cl, ctx, &done);
  m.RunUntilIdle();
  EXPECT_EQ(done, m.params().cas_remote_base + m.params().cas_remote_per_hop);
  EXPECT_EQ(cl.owner(), 1);
  EXPECT_GT(m.counters().total_qpi_bytes(), 0u);
}

TEST(CacheLineTest, ContendersSerializeFifo) {
  auto topo = Topo8();
  Machine m(topo);
  CacheLine cl(&m, 0);
  std::vector<int> order;
  auto w = [](Machine& m, CacheLine& cl, Ctx ctx, int id,
              std::vector<int>* order) -> Task {
    co_await cl.Atomic(ctx);
    order->push_back(id);
  };
  // Launch 8 contenders, one per socket, in id order.
  std::vector<Ctx> ctxs;
  for (int s = 0; s < 8; ++s) ctxs.push_back(m.MakeCtx(topo.first_core(s)));
  for (int s = 0; s < 8; ++s) w(m, cl, ctxs[s], s, &order);
  m.RunUntilIdle();
  ASSERT_EQ(order.size(), 8u);
  for (int s = 0; s < 8; ++s) EXPECT_EQ(order[s], s);
  EXPECT_EQ(cl.ops(), 8u);
  // All contenders' stall time serializes: total elapsed must exceed the
  // sum of 7 remote transfers (sockets 1..7 all steal the line).
  EXPECT_GT(m.now(), 7 * m.params().cas_remote_base);
}

TEST(CacheLineTest, SameSocketReuseIsCheapAfterFirstTransfer) {
  auto topo = Topo8();
  Machine m(topo);
  CacheLine cl(&m, 3);
  Tick first = 0, second = 0;
  auto w = [](Machine& m, CacheLine& cl, Ctx ctx, Tick* t) -> Task {
    co_await cl.Atomic(ctx);
    *t = m.now();
  };
  Ctx ctx = m.MakeCtx(0);
  w(m, cl, ctx, &first);
  m.RunUntilIdle();
  Tick t1 = m.now();
  w(m, cl, ctx, &second);
  m.RunUntilIdle();
  EXPECT_GT(first, m.params().cas_local);          // remote steal
  EXPECT_EQ(second - t1, m.params().cas_local);    // now local
}

TEST(ResourceTest, SerializesAndAccountsWait) {
  auto topo = hw::Topology::SingleSocket(4);
  Machine m(topo);
  Resource res(&m, 0, /*spin_wait=*/true);
  std::vector<Tick> done;
  auto w = [](Machine& m, Resource& r, Ctx ctx, std::vector<Tick>* d) -> Task {
    co_await r.Use(ctx, 1000);
    d->push_back(m.now());
  };
  std::vector<Ctx> ctxs;
  for (int i = 0; i < 3; ++i) ctxs.push_back(m.MakeCtx(i));
  for (int i = 0; i < 3; ++i) w(m, res, ctxs[i], &done);
  m.RunUntilIdle();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_LT(done[0], done[1]);
  EXPECT_LT(done[1], done[2]);
  EXPECT_EQ(res.uses(), 3u);
  EXPECT_GT(res.total_wait(), 0u);
  // Spin accounting went to the later cores.
  EXPECT_GT(m.counters().core(1).spin + m.counters().core(2).spin, 0u);
}

TEST(RWLockTest, ReadersShareWriterExcludes) {
  auto topo = hw::Topology::SingleSocket(4);
  Machine m(topo);
  SimRWLock lk(&m);
  std::vector<std::string> log;
  auto reader = [](Machine& m, SimRWLock& lk, Ctx ctx, Tick hold,
                   std::vector<std::string>* log) -> Task {
    co_await lk.Acquire(ctx, false);
    log->push_back("r+");
    co_await m.Delay(hold);
    log->push_back("r-");
    co_await lk.Release(ctx);
  };
  auto writer = [](Machine& m, SimRWLock& lk, Ctx ctx,
                   std::vector<std::string>* log) -> Task {
    co_await lk.Acquire(ctx, true);
    log->push_back("w+");
    co_await m.Delay(100);
    log->push_back("w-");
    co_await lk.Release(ctx);
  };
  Ctx c0 = m.MakeCtx(0), c1 = m.MakeCtx(1), c2 = m.MakeCtx(2);
  reader(m, lk, c0, 500, &log);
  reader(m, lk, c1, 500, &log);
  writer(m, lk, c2, &log);
  m.RunUntilIdle();
  // Both readers enter before the writer; writer enters only after both
  // release.
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], "r+");
  EXPECT_EQ(log[1], "r+");
  EXPECT_EQ(log[4], "w+");
  EXPECT_EQ(log[5], "w-");
}

TEST(PartitionedRWLockTest, LocalReadTouchesOwnSocketOnly) {
  auto topo = Topo8();
  Machine m(topo);
  PartitionedRWLock plk(&m);
  auto w = [](Machine& m, PartitionedRWLock& plk, Ctx ctx) -> Task {
    co_await plk.AcquireRead(ctx);
    co_await m.Delay(10);
    co_await plk.ReleaseRead(ctx);
  };
  Ctx ctx = m.MakeCtx(topo.first_core(5));
  w(m, plk, ctx);
  m.RunUntilIdle();
  // No cross-socket traffic: the per-socket lock line is homed at socket 5.
  EXPECT_EQ(m.counters().total_qpi_bytes(), 0u);
}

TEST(SimQueueTest, PushWakesParkedConsumer) {
  auto topo = hw::Topology::SingleSocket(2);
  Machine m(topo);
  SimQueue<int> q(&m);
  std::vector<int> got;
  auto consumer = [](Machine& m, SimQueue<int>& q, Ctx ctx,
                     std::vector<int>* got) -> Task {
    while (m.running()) {
      auto v = co_await q.Pop(ctx);
      if (!v) break;
      got->push_back(*v);
      if (*v == 3) break;
    }
  };
  Ctx ctx = m.MakeCtx(0);
  consumer(m, q, ctx, &got);
  m.At(10, [&] { q.Push(1); });
  m.At(20, [&] { q.Push(2); });
  m.At(30, [&] { q.Push(3); });
  m.RunUntilIdle();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SimQueueTest, PopReturnsNulloptAtShutdown) {
  auto topo = hw::Topology::SingleSocket(1);
  Machine m(topo);
  SimQueue<int> q(&m);
  bool saw_null = false;
  auto consumer = [](Machine& m, SimQueue<int>& q, Ctx ctx,
                     bool* saw) -> Task {
    auto v = co_await q.Pop(ctx);
    *saw = !v.has_value();
  };
  Ctx ctx = m.MakeCtx(0);
  consumer(m, q, ctx, &saw_null);
  m.RunUntil(100);
  m.Shutdown();
  EXPECT_TRUE(saw_null);
}

TEST(ChannelTest, DeliversWithDistanceLatency) {
  auto topo = Topo8();
  Machine m(topo);
  Channel ch(&m, /*home=*/7);
  Tick recv_time = 0;
  uint64_t got = 0;
  auto receiver = [](Machine& m, Channel& ch, Ctx ctx, Tick* t,
                     uint64_t* got) -> Task {
    auto msg = co_await ch.Recv(ctx);
    if (msg) {
      *t = m.now();
      *got = msg->a;
    }
  };
  auto sender = [](Machine& m, Channel& ch, Ctx ctx) -> Task {
    co_await ch.Send(ctx, Msg{.kind = 1, .from = 0, .a = 99});
  };
  Ctx rcv = m.MakeCtx(topo.first_core(7));
  Ctx snd = m.MakeCtx(0);
  receiver(m, ch, rcv, &recv_time, &got);
  sender(m, ch, snd);
  m.RunUntilIdle();
  EXPECT_EQ(got, 99u);
  // 0 -> 7 is one hop on the twisted cube.
  Tick expected = m.params().channel_same_socket + m.params().channel_per_hop +
                  m.params().channel_recv_work;
  EXPECT_EQ(recv_time, expected);
}

TEST(ChannelTest, FifoOrder) {
  auto topo = hw::Topology::SingleSocket(2);
  Machine m(topo);
  Channel ch(&m, 0);
  std::vector<uint64_t> got;
  auto receiver = [](Machine& m, Channel& ch, Ctx ctx,
                     std::vector<uint64_t>* got) -> Task {
    for (int i = 0; i < 3; ++i) {
      auto msg = co_await ch.Recv(ctx);
      if (!msg) break;
      got->push_back(msg->a);
    }
  };
  auto sender = [](Machine& m, Channel& ch, Ctx ctx) -> Task {
    for (uint64_t i = 1; i <= 3; ++i) {
      co_await ch.Send(ctx, Msg{.a = i});
    }
  };
  Ctx rcv = m.MakeCtx(0), snd = m.MakeCtx(1);
  receiver(m, ch, rcv, &got);
  sender(m, ch, snd);
  m.RunUntilIdle();
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(MachineTest, DeterministicAcrossRuns) {
  auto run = [] {
    auto topo = Topo8();
    Machine m(topo);
    CacheLine cl(&m, 0);
    auto w = [](Machine& m, CacheLine& cl, Ctx ctx, int n) -> Task {
      for (int i = 0; i < n; ++i) {
        co_await cl.Atomic(ctx);
        co_await m.Compute(ctx, 100);
      }
    };
    std::vector<Ctx> ctxs;
    for (int s = 0; s < 8; ++s) ctxs.push_back(m.MakeCtx(topo.first_core(s)));
    for (int s = 0; s < 8; ++s) w(m, cl, ctxs[s], 50);
    m.RunUntilIdle();
    return m.now();
  };
  Tick a = run(), b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

TEST(MachineTest, ShutdownDrainsParkedCoroutines) {
  auto topo = hw::Topology::SingleSocket(2);
  Machine m(topo);
  Channel ch(&m, 0);
  int finished = 0;
  auto receiver = [](Machine& m, Channel& ch, Ctx ctx, int* fin) -> Task {
    while (m.running()) {
      auto msg = co_await ch.Recv(ctx);
      if (!msg) break;
    }
    ++*fin;
  };
  Ctx ctx = m.MakeCtx(0);
  receiver(m, ch, ctx, &finished);
  m.RunUntil(1000);
  EXPECT_EQ(finished, 0);
  m.Shutdown();
  EXPECT_EQ(finished, 1);
}

}  // namespace
}  // namespace atrapos::sim
