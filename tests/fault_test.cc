// Fault-injection framework + island-failure graceful degradation tests
// (ISSUE 8): injector determinism and schedule parsing, the arena
// allocation-failure fallback, log short-flush convergence, the
// torn-tail crash-consistency property (a fault-injected short append
// never surfaces uncommitted data after Recover and reports its cut
// point), and the KillIsland quarantine/evacuation semantics — futures
// settle (kUnavailable, never hang, never complete twice), partitions
// evacuate onto survivors, committed transactions survive recovery, and
// a worker-side kWorkerKill fire drives the same path via the sentinel.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/partitioned_executor.h"
#include "fault/injector.h"
#include "log/recovery.h"
#include "mem/chunk_pool.h"
#include "util/rng.h"
#include "workload/micro.h"

namespace atrapos {
namespace {

using engine::ActionCtx;
using engine::ActionGraph;
using engine::Database;
using engine::DurabilityMode;
using engine::PartitionedExecutor;
using storage::Table;
using storage::Tuple;

/// Installs an injector for the test body and restores whatever was
/// installed before (the CI env schedule, usually nothing) on exit.
struct ScopedInjector {
  explicit ScopedInjector(fault::Injector* inj) : prev(fault::Get()) {
    fault::Install(inj);
  }
  ~ScopedInjector() { fault::Install(prev); }
  fault::Injector* prev;
};

// ---- injector unit tests ---------------------------------------------------

TEST(InjectorTest, DisarmedShouldIsOneLoad) {
  ScopedInjector off(nullptr);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(fault::Should(fault::SiteId::kNetRead));
}

TEST(InjectorTest, UnarmedSiteCountsButNeverFires) {
  fault::Injector inj(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(inj.Evaluate(fault::SiteId::kArenaAlloc));
  EXPECT_EQ(inj.evaluations(fault::SiteId::kArenaAlloc), 10u);
  EXPECT_EQ(inj.fires(fault::SiteId::kArenaAlloc), 0u);
}

TEST(InjectorTest, TriggerFiresOnExactEvaluation) {
  fault::Injector inj(7);
  inj.Arm(fault::SiteId::kWorkerKill, {.trigger_at = 5});
  for (int i = 1; i <= 10; ++i)
    EXPECT_EQ(inj.Evaluate(fault::SiteId::kWorkerKill), i == 5) << "eval " << i;
  EXPECT_EQ(inj.fires(fault::SiteId::kWorkerKill), 1u);
}

TEST(InjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto draw = [](uint64_t seed) {
    fault::Injector inj(seed);
    inj.Arm(fault::SiteId::kNetRead, {.probability = 0.3});
    std::vector<bool> fires;
    for (int i = 0; i < 1000; ++i)
      fires.push_back(inj.Evaluate(fault::SiteId::kNetRead));
    return fires;
  };
  auto a = draw(42), b = draw(42), c = draw(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  size_t n = 0;
  for (bool f : a) n += f;
  EXPECT_GT(n, 200u);  // ~300 expected
  EXPECT_LT(n, 400u);
}

TEST(InjectorTest, MaxFiresCapsTotal) {
  fault::Injector inj(1);
  inj.Arm(fault::SiteId::kNetWrite, {.probability = 1.0, .max_fires = 3});
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += inj.Evaluate(fault::SiteId::kNetWrite);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.fires(fault::SiteId::kNetWrite), 3u);
  EXPECT_EQ(inj.total_fires(), 3u);
}

TEST(InjectorTest, ParseScheduleGrammar) {
  fault::Injector* inj =
      fault::ParseSchedule("seed=42;arena_alloc=0.05;worker_kill=@3x1");
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->seed(), 42u);
  // worker_kill: fires exactly on the 3rd evaluation, capped at one fire.
  EXPECT_FALSE(inj->Evaluate(fault::SiteId::kWorkerKill));
  EXPECT_FALSE(inj->Evaluate(fault::SiteId::kWorkerKill));
  EXPECT_TRUE(inj->Evaluate(fault::SiteId::kWorkerKill));
  EXPECT_FALSE(inj->Evaluate(fault::SiteId::kWorkerKill));
  delete inj;

  EXPECT_EQ(fault::ParseSchedule(""), nullptr);
  EXPECT_EQ(fault::ParseSchedule("seed=1;no_such_site=0.5"), nullptr);
  EXPECT_EQ(fault::ParseSchedule("seed=1;net_read=1.5"), nullptr);  // p > 1
}

// ---- mem: arena allocation failure (kArenaAlloc) ---------------------------

TEST(FaultMemTest, ArenaAllocFaultDegradesToOverflowBlocks) {
  fault::Injector inj(3);
  // First slab carve "fails": the pool must hand out a one-off overflow
  // block instead of crashing, and recover on the next (unfaulted) carve.
  inj.Arm(fault::SiteId::kArenaAlloc, {.trigger_at = 1, .max_fires = 1});
  ScopedInjector scope(&inj);
  mem::ChunkPool pool(256);
  void* a = pool.Get();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.overflow_allocs(), 1u);
  void* b = pool.Get();  // freelist grows normally now
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.overflow_allocs(), 1u);
  EXPECT_GE(pool.slab_allocs(), 1u);
  pool.Put(a);
  pool.Put(b);
  EXPECT_EQ(pool.blocks_out(), 0);
  EXPECT_EQ(inj.fires(fault::SiteId::kArenaAlloc), 1u);
}

// ---- engine/log shared fixtures --------------------------------------------

constexpr uint64_t kKeys = 64;
constexpr int kParts = 4;
constexpr int64_t kInitial = 100;

std::vector<uint64_t> Bounds(uint64_t rows, int partitions) {
  std::vector<uint64_t> b;
  for (int p = 0; p < partitions; ++p)
    b.push_back(rows * static_cast<uint64_t>(p) /
                static_cast<uint64_t>(partitions));
  return b;
}

std::unique_ptr<Table> FreshTable() {
  auto t = std::make_unique<Table>(0, "T", workload::MicroTableSchema(),
                                   Bounds(kKeys, kParts));
  for (uint64_t k = 0; k < kKeys; ++k) {
    Tuple row(&t->schema());
    row.SetInt(0, static_cast<int64_t>(k));
    row.SetInt(1, kInitial);
    (void)t->Insert(k, row);
  }
  return t;
}

core::Scheme OneTableScheme(const std::vector<int>& placement) {
  core::Scheme scheme;
  core::TableScheme ts;
  ts.boundaries = Bounds(kKeys, static_cast<int>(placement.size()));
  for (int core : placement) ts.placement.push_back(core);
  scheme.tables.push_back(ts);
  return scheme;
}

ActionGraph WriteVal(uint64_t k, int64_t v) {
  ActionGraph g(0);
  g.Add(0, k, [k, v](Table* t, ActionCtx&) {
    Tuple row;
    ATRAPOS_RETURN_NOT_OK(t->Read(k, &row));
    row.SetInt(1, v);
    return t->Update(k, row);
  });
  return g;
}

ActionGraph Incr(uint64_t k) {
  ActionGraph g(0);
  g.Add(0, k, [k](Table* t, ActionCtx&) {
    Tuple row;
    ATRAPOS_RETURN_NOT_OK(t->Read(k, &row));
    row.SetInt(1, row.GetInt(1) + 1);
    return t->Update(k, row);
  });
  return g;
}

// ---- log: short flush (kLogShortFlush) -------------------------------------

// A faulted flush advances the durable LSN only part-way; repeated
// flusher passes must still converge, so every group commit eventually
// acks — degraded latency, never a stranded future.
TEST(FaultLogTest, ShortFlushesStillConvergeToDurable) {
  fault::Injector inj(9);
  inj.Arm(fault::SiteId::kLogShortFlush, {.probability = 1.0});
  ScopedInjector scope(&inj);

  hw::Topology topo = hw::Topology::SingleSocket(kParts);
  Database db({.topo = topo});
  db.AddTable(FreshTable());
  PartitionedExecutor::Options opt;
  opt.durability = DurabilityMode::kGroup;
  opt.log_manual_flush = true;  // we drive every (faulted) flush pass
  PartitionedExecutor exec(&db, topo, OneTableScheme({0, 1, 2, 3}), opt);

  std::vector<engine::TxnFuture> futures;
  for (uint64_t k = 0; k < 16; ++k) {
    auto f = exec.Submit(Incr(k));
    ASSERT_TRUE(f.ok());
    futures.push_back(f.take());
  }
  bool all_done = false;
  for (int pass = 0; pass < 200 && !all_done; ++pass) {
    exec.log_manager()->FlushAll();
    all_done = true;
    for (auto& f : futures) all_done &= f.Done();
    if (!all_done) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(all_done) << "short flushes must converge, not strand acks";
  for (auto& f : futures) EXPECT_TRUE(f.Wait().ok());
  EXPECT_GT(inj.fires(fault::SiteId::kLogShortFlush), 0u);
}

// ---- log: torn tail property (satellite: recovery after faulted append) ----

// Property: with a fault-injected torn append (the shard's tail cut
// mid-record), Recover (a) reports the cut shard and the first lost LSN,
// (b) never surfaces data of uncommitted transactions, and (c) yields
// only initial-or-committed values for every row. Committing writers set
// key k to 10000+k (idempotent across the committed subset); aborting
// writers set 77777 and then fail on another partition — that value must
// never be seen after recovery, torn tail or not.
TEST(FaultLogTornTailTest, RecoverNeverSurfacesUncommittedAndReportsCut) {
  constexpr int64_t kAborted = 77777;
  for (uint64_t trigger : {3u, 10u, 40u}) {
    fault::Injector inj(100 + trigger);
    inj.Arm(fault::SiteId::kLogTornTail, {.trigger_at = trigger});
    ScopedInjector scope(&inj);

    hw::Topology topo = hw::Topology::SingleSocket(kParts);
    Database db({.topo = topo});
    db.AddTable(FreshTable());
    PartitionedExecutor::Options opt;
    opt.durability = DurabilityMode::kGroup;
    opt.log_flush_interval_us = 20;
    PartitionedExecutor exec(&db, topo, OneTableScheme({0, 1, 2, 3}), opt);

    Rng rng(trigger);
    for (int i = 0; i < 300; ++i) {
      uint64_t k = rng.Uniform(kKeys);
      if (i % 5 == 4) {
        // Aborting writer: the write may execute before the companion
        // action fails at the RVP, but no commit marker ever follows.
        uint64_t other = (k + kKeys / kParts) % kKeys;
        ActionGraph g(0);
        g.Add(0, k, [k](Table* t, ActionCtx&) {
          Tuple row;
          ATRAPOS_RETURN_NOT_OK(t->Read(k, &row));
          row.SetInt(1, kAborted);
          return t->Update(k, row);
        });
        g.Add(0, other, [](Table*, ActionCtx&) {
          return Status::Internal("injected abort");
        });
        (void)exec.SubmitAndWait(std::move(g));
      } else {
        ASSERT_TRUE(
            exec.SubmitAndWait(WriteVal(k, 10000 + static_cast<int64_t>(k)))
                .ok());
      }
    }
    exec.Drain();
    exec.log_manager()->FlushAll();
    auto cut = exec.log_manager()->SnapshotDurable();

    size_t torn_shards = 0;
    for (const auto& s : cut) torn_shards += s.torn;
    ASSERT_EQ(torn_shards, 1u) << "trigger " << trigger;

    auto fresh = FreshTable();
    log::RecoveryReport report = log::Recover(cut, {fresh.get()});
    ASSERT_EQ(report.torn_cuts.size(), 1u);
    EXPECT_GT(report.torn_cuts[0].second, 0u) << "cut point must be reported";
    for (uint64_t k = 0; k < kKeys; ++k) {
      Tuple row;
      ASSERT_TRUE(fresh->Read(k, &row).ok());
      int64_t v = row.GetInt(1);
      EXPECT_TRUE(v == kInitial || v == 10000 + static_cast<int64_t>(k))
          << "key " << k << " recovered uncommitted/garbage value " << v;
    }
    // The torn fire surfaces in observability like every other metric.
    obs::StatsSnapshot snap = db.StatsSnapshot();
    bool seen = false;
    for (const auto& [site, fires] : snap.fault_site_fires)
      seen |= site == std::string("log_torn_tail") && fires == 1;
    EXPECT_TRUE(seen);
  }
}

// ---- engine: island kill, quarantine, evacuation ---------------------------

// KillIsland mid-load: every in-flight future settles (commit or
// kUnavailable — none hangs, none completes twice), the island's
// partitions evacuate onto the survivor, post-evacuation transactions
// commit, and recovery replays exactly the committed increments (zero
// lost committed transactions).
TEST(FaultKillIslandTest, EvacuatesAndSettlesAllFutures) {
  hw::Topology topo = hw::Topology::Cube(1, 2);  // 2 islands x 2 cores
  Database db({.topo = topo});
  db.AddTable(FreshTable());
  PartitionedExecutor::Options opt;
  opt.durability = DurabilityMode::kGroup;
  opt.log_flush_interval_us = 20;  // background flusher: kills need it
  PartitionedExecutor exec(&db, topo, OneTableScheme({0, 1, 2, 3}), opt);

  constexpr int kTxns = 2000;
  std::atomic<int> completions{0};
  std::atomic<int> ok{0}, unavailable{0}, other{0};
  auto account = [&](const Status& s) {
    ++completions;
    if (s.ok())
      ++ok;
    else if (s.code() == StatusCode::kUnavailable)
      ++unavailable;
    else
      ++other;
  };
  std::deque<engine::TxnFuture> window;
  Rng rng(21);
  auto pump = [&](size_t limit) {
    while (window.size() > limit) {
      (void)window.front().Wait();
      window.pop_front();
    }
  };
  for (int i = 0; i < kTxns; ++i) {
    auto f = exec.Submit(Incr(rng.Uniform(kKeys)));
    ASSERT_TRUE(f.ok());
    f.value().OnComplete(account);
    window.push_back(f.take());
    pump(32);
    if (i == 800) {
      auto moved = exec.KillIsland(1);
      ASSERT_TRUE(moved.ok()) << moved.status().ToString();
      EXPECT_EQ(moved.value(), 2u);  // both island-1 partitions re-homed
      EXPECT_FALSE(exec.quarantining());
      EXPECT_EQ(exec.failed_islands(), 0b10u);
    }
  }
  pump(0);
  EXPECT_EQ(completions.load(), kTxns) << "every future settles exactly once";
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  // After evacuation everything commits again, on any key.
  for (uint64_t k = 0; k < kKeys; ++k) {
    Status s = exec.SubmitAndWait(Incr(k));
    EXPECT_TRUE(s.ok()) << "key " << k << ": " << s.ToString();
    ++ok;
  }
  // Every partition now lives on the surviving island 0.
  core::Scheme scheme = exec.scheme();
  for (int core : scheme.tables[0].placement)
    EXPECT_EQ(topo.socket_of(core), 0);

  // Zero lost committed transactions: recovery replays exactly the
  // committed increments — live state equals recovered state (aborted
  // actions never executed), and the total matches the commit count.
  exec.Drain();
  exec.log_manager()->FlushAll();
  auto cut = exec.log_manager()->SnapshotDurable();
  auto fresh = FreshTable();
  log::RecoveryReport report = log::Recover(cut, {fresh.get()});
  EXPECT_EQ(report.torn_cuts.size(), 0u);
  int64_t total = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    Tuple live, rec;
    ASSERT_TRUE(db.table(0)->Read(k, &live).ok());
    ASSERT_TRUE(fresh->Read(k, &rec).ok());
    EXPECT_EQ(live.GetInt(1), rec.GetInt(1)) << "key " << k;
    total += rec.GetInt(1) - kInitial;
  }
  EXPECT_EQ(total, ok.load());

  obs::StatsSnapshot snap = db.StatsSnapshot();
  EXPECT_EQ(snap.counter(obs::CounterId::kFaultIslandKills), 1u);
  EXPECT_EQ(snap.counter(obs::CounterId::kFaultPartitionsEvacuated), 2u);
  EXPECT_EQ(snap.hist(obs::HistId::kEvacuationUs).count(), 1u);
}

// Killing the only island: no survivor to evacuate onto — the engine
// stays up, degraded, and everything aborts kUnavailable (never hangs).
TEST(FaultKillIslandTest, LastIslandDegradesToUnavailable) {
  hw::Topology topo = hw::Topology::SingleSocket(kParts);
  Database db({.topo = topo});
  db.AddTable(FreshTable());
  PartitionedExecutor exec(&db, topo, OneTableScheme({0, 1, 2, 3}));

  ASSERT_TRUE(exec.SubmitAndWait(Incr(1)).ok());
  auto r = exec.KillIsland(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(exec.quarantining());
  EXPECT_EQ(exec.failed_islands(), 0b1u);
  for (int i = 0; i < 8; ++i) {
    Status s = exec.SubmitAndWait(Incr(static_cast<uint64_t>(i * 8)));
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  }
}

TEST(FaultKillIslandTest, KillingUnknownIslandIsInvalid) {
  hw::Topology topo = hw::Topology::SingleSocket(2);
  Database db({.topo = topo});
  db.AddTable(FreshTable());
  PartitionedExecutor exec(&db, topo, OneTableScheme({0, 1}));
  EXPECT_EQ(exec.KillIsland(5).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(exec.KillIsland(-1).status().code(), StatusCode::kInvalidArgument);
}

// The full fault path: a kWorkerKill fire inside a worker marks its own
// partition failed, hands the island to the sentinel, and the sentinel
// evacuates — no caller ever invokes KillIsland.
TEST(FaultKillIslandTest, WorkerKillFaultEvacuatesThroughSentinel) {
  fault::Injector inj(5);
  inj.Arm(fault::SiteId::kWorkerKill, {.trigger_at = 5, .max_fires = 1});
  ScopedInjector scope(&inj);

  hw::Topology topo = hw::Topology::Cube(1, 2);
  Database db({.topo = topo});
  db.AddTable(FreshTable());
  PartitionedExecutor exec(&db, topo, OneTableScheme({0, 1, 2, 3}));

  // Drive batches until a worker's fault fires and the sentinel finishes
  // the evacuation (failed mask set, quarantine over).
  Rng rng(31);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((exec.failed_islands() == 0 || exec.quarantining()) &&
         std::chrono::steady_clock::now() < deadline) {
    Status s = exec.SubmitAndWait(Incr(rng.Uniform(kKeys)));
    ASSERT_TRUE(s.ok() || s.code() == StatusCode::kUnavailable)
        << s.ToString();
  }
  ASSERT_EQ(inj.fires(fault::SiteId::kWorkerKill), 1u);
  ASSERT_NE(exec.failed_islands(), 0u);
  ASSERT_FALSE(exec.quarantining());

  // The failed island holds no partitions any more; everything commits.
  const uint64_t mask = exec.failed_islands();
  core::Scheme scheme = exec.scheme();
  for (int core : scheme.tables[0].placement)
    EXPECT_EQ((mask >> topo.socket_of(core)) & 1u, 0u);
  for (uint64_t k = 0; k < kKeys; k += 7)
    EXPECT_TRUE(exec.SubmitAndWait(Incr(k)).ok());
}

}  // namespace
}  // namespace atrapos
